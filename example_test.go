package picpar_test

import (
	"fmt"

	"picpar"
)

// ExampleRun demonstrates the basic simulation loop: a small irregular
// plasma on four simulated processors with the dynamic (Stop-At-Rise)
// redistribution policy. Simulated times are deterministic, so the output
// is exact.
func ExampleRun() {
	res, err := picpar.Run(picpar.Config{
		Grid:         picpar.NewGrid(32, 16),
		P:            4,
		NumParticles: 2048,
		Distribution: picpar.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Policy:       picpar.DynamicPolicy(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("iterations: %d\n", len(res.Records))
	fmt.Printf("particles conserved: %v\n", res.FinalParticleCount == 2048)
	fmt.Printf("efficiency in (0,1]: %v\n", res.Efficiency > 0 && res.Efficiency <= 1)
	// Output:
	// iterations: 10
	// particles conserved: true
	// efficiency in (0,1]: true
}

// ExampleNewIndexer shows the Hilbert cell ordering the runtime keys
// particles by: consecutive indices are spatially adjacent cells.
func ExampleNewIndexer() {
	ix, err := picpar.NewIndexer(picpar.IndexHilbert, 4, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	for idx := 0; idx < 4; idx++ {
		x, y := ix.Coords(idx)
		fmt.Printf("index %d -> cell (%d,%d)\n", idx, x, y)
	}
	// Output:
	// index 0 -> cell (0,0)
	// index 1 -> cell (1,0)
	// index 2 -> cell (1,1)
	// index 3 -> cell (0,1)
}

// ExamplePeriodicPolicy shows policy construction; each rank of a
// simulation gets its own instance from the factory. A decision carries
// both whether to redistribute and which layout strategy to rebuild into.
func ExamplePeriodicPolicy() {
	factory := picpar.PeriodicPolicy(25)
	p := factory()
	fmt.Println(p.Name())
	d := p.Decide(24, 1.0) // iteration 24 completes the 25th step
	fmt.Println(d.Redistribute, d.Strategy)
	fmt.Println(p.Decide(25, 1.0).Redistribute)
	// Output:
	// periodic(25)
	// true equal-count
	// false
}
