// Command picserve is the fault-tolerant simulation-job daemon: a
// long-running HTTP service that accepts PIC simulation jobs, schedules
// them onto a bounded pool of supervised worker process groups, checkpoints
// them on the usual cadence, and survives worker death, disk sickness and
// its own restart — a daemon killed with -9 mid-job finishes the job after
// restart with the same Fingerprint an undisturbed run prints.
//
// Daemon:
//
//	picserve -addr 127.0.0.1:7070 -dir ./picserve-data
//
// The listen address falls back to $PICSERVE_ADDR, the data directory to
// $PICPAR_CKPT_DIR. SIGTERM or SIGINT drains gracefully: admission closes
// (503), running jobs checkpoint at their next iteration boundary and park
// as resumable, then the daemon exits; the next daemon life re-adopts them.
//
// Client:
//
//	picserve -server http://127.0.0.1:7070 -submit job.json   # prints the job id
//	picserve -server ... -wait j-1a2b3c4d                     # blocks; prints TotalTime/Fingerprint
//	picserve -server ... -status [j-1a2b3c4d]
//	picserve -server ... -cancel j-1a2b3c4d
//	picserve -server ... -events j-1a2b3c4d                   # tail the SSE diagnostics
//
// job.json is a jobspec.Spec document, e.g.:
//
//	{"mesh": "32x16", "particles": 2048, "ranks": 4, "iterations": 10,
//	 "distribution": "irregular", "seed": 7, "policy": "static"}
//
// Each job runs as one coordinator plus one OS process per rank (this
// binary re-executed in a hidden worker mode), all in their own process
// group. A rank killed mid-run is respawned with capped-exponential
// backoff until the attempt's respawn budget runs dry; spent budgets
// escalate to job-level retries and finally to a typed job failure — a
// sick job never wedges the pool.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"picpar"
	"picpar/internal/ckpt"
	"picpar/internal/jobspec"
	"picpar/internal/serve"
)

func main() {
	// Daemon flags.
	addr := flag.String("addr", "", "listen address (default $PICSERVE_ADDR or 127.0.0.1:7070)")
	dir := flag.String("dir", "", "data directory for job state and checkpoints (default $PICPAR_CKPT_DIR or ./picserve-data)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (for scripts using port 0)")
	local := flag.Bool("local", false, "run jobs in-process instead of as worker process worlds")
	maxQueue := flag.Int("max-queue", 0, "queued-job cap (429 beyond it; default 16)")
	maxActive := flag.Int("max-active", 0, "concurrently running jobs (default 2)")
	maxRanks := flag.Int("max-ranks", 0, "per-job rank cap (default 16)")
	maxIters := flag.Int("max-iters", 0, "per-job iteration cap (default 100000)")
	maxWall := flag.Duration("max-wall", 0, "per-job wall-clock deadline (default 15m)")
	maxAttempts := flag.Int("max-attempts", 0, "run attempts per job before a typed failure (default 3)")
	respawnBackoff := flag.Duration("respawn-backoff", 0, "wait before the first rank respawn, doubling per respawn (default 250ms)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a SIGTERM drain may take before the daemon gives up waiting")

	// Client flags.
	server := flag.String("server", "", "daemon base URL; presence selects client mode")
	submit := flag.String("submit", "", "submit the jobspec JSON document at this path (\"-\" for stdin); prints the job id")
	wait := flag.String("wait", "", "block until this job settles; prints TotalTime and Fingerprint like picsim")
	status := flag.String("status", "", "print this job's manifest (empty with -server alone lists all jobs)")
	cancel := flag.String("cancel", "", "cancel this job")
	events := flag.String("events", "", "stream this job's SSE diagnostics to stdout")

	// Hidden worker mode: one rank of one job's worker world.
	worker := flag.Bool("worker", false, "")
	coord := flag.String("coord", "", "")
	rank := flag.Int("rank", -1, "")
	ranks := flag.Int("p", 0, "")
	jobDir := flag.String("job", "", "")
	flag.Parse()

	switch {
	case *worker:
		if err := runWorker(*coord, *rank, *ranks, *jobDir); err != nil {
			fatal(err)
		}
	case *server != "":
		if err := runClient(*server, *submit, *wait, *status, *cancel, *events); err != nil {
			fatal(err)
		}
	default:
		lim := serve.Limits{
			MaxQueue:      *maxQueue,
			MaxActive:     *maxActive,
			MaxRanks:      *maxRanks,
			MaxIterations: *maxIters,
			MaxWall:       *maxWall,
			MaxAttempts:   *maxAttempts,
		}
		if err := runDaemon(*addr, *dir, *addrFile, lim, *local, *respawnBackoff, *drainTimeout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picserve:", err)
	os.Exit(1)
}

// ── daemon ──────────────────────────────────────────────────────────────

func runDaemon(addr, dir, addrFile string, lim serve.Limits, local bool, respawnBackoff, drainTimeout time.Duration) error {
	if addr == "" {
		addr = serve.EnvAddr("127.0.0.1:7070")
	}
	if dir == "" {
		dir = ckpt.EnvDir("./picserve-data")
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "picserve: "+format+"\n", args...)
	}

	var runner serve.Runner = serve.LocalRunner{}
	if !local {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("cannot re-execute self for workers: %v", err)
		}
		runner = serve.ProcessRunner{
			Command: func(rc serve.RunContext, coord string, rank int) *exec.Cmd {
				cmd := exec.Command(self, "-worker",
					"-coord", coord,
					"-rank", strconv.Itoa(rank),
					"-p", strconv.Itoa(workerRanks(rc)),
					"-job", rc.Dir)
				cmd.Stderr = os.Stderr
				return cmd
			},
			Backoff: respawnBackoff,
		}
	}

	s, err := serve.New(dir, runner, lim, logf)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logf("listening on %s, data in %s", ln.Addr(), dir)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logf("%v: draining (running jobs checkpoint and park; queued jobs stay queued)", got)
		dctx, dcancel := context.WithTimeout(context.Background(), drainTimeout)
		defer dcancel()
		if err := s.Drain(dctx); err != nil {
			logf("drain: %v", err)
		}
		_ = hs.Close()
		<-serveErr
		logf("drained, exiting")
		return nil
	case err := <-serveErr:
		return err
	}
}

// workerRanks resolves the world size of one job's worker world from its
// spec (pic's own default applies when the spec leaves it open).
func workerRanks(rc serve.RunContext) int {
	cfg, err := rc.Manifest.Spec.Config()
	if err != nil || cfg.P == 0 {
		return 4
	}
	return cfg.P
}

// ── worker mode ─────────────────────────────────────────────────────────

// runWorker is one rank of one job's process world. It reads the job's
// manifest, joins the coordinator, runs its rank with recovery on, and —
// on rank 0 — emits per-iteration IterEvent JSONL on stdout and writes
// result.json before exiting. SIGTERM (the daemon's drain) requests a stop
// at the next iteration boundary with a final checkpoint epoch.
func runWorker(coord string, rank, ranks int, jobDir string) error {
	if coord == "" || rank < 0 || ranks <= 0 || jobDir == "" {
		return fmt.Errorf("worker mode needs -coord, -rank, -p and -job")
	}
	m, err := serve.ReadManifest(jobDir)
	if err != nil {
		return err
	}
	cfg, err := m.Spec.Config()
	if err != nil {
		return err
	}
	cfg.CheckpointDir = serve.CheckpointDir(jobDir)
	cfg.Recover = true

	var stop atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	go func() {
		<-sig
		stop.Store(true)
	}()
	cfg.StopRequested = stop.Load

	out := bufio.NewWriter(os.Stdout)
	if rank == 0 {
		enc := json.NewEncoder(out)
		cfg.OnIteration = func(rec picpar.IterationRecord) {
			_ = enc.Encode(serve.IterEventOf(rec))
			_ = out.Flush()
		}
	}

	ncfg := picpar.NetConfig{Coordinator: coord, Rank: rank, Size: ranks}
	res, err := picpar.RunNet(ncfg, cfg)
	if err != nil {
		return fmt.Errorf("job %s rank %d: %w", m.ID, rank, err)
	}
	if res == nil {
		return nil // ranks >0 carry no result
	}
	return serve.WriteResult(jobDir, serve.ResultOf(res))
}

// ── client mode ─────────────────────────────────────────────────────────

func runClient(base, submit, wait, status, cancel, events string) error {
	base = strings.TrimRight(base, "/")
	switch {
	case submit != "":
		return clientSubmit(base, submit)
	case wait != "":
		return clientWait(base, wait)
	case cancel != "":
		return clientCancel(base, cancel)
	case events != "":
		return clientEvents(base, events)
	default:
		return clientStatus(base, status)
	}
}

// clientError turns a non-2xx daemon response into its typed reject.
func clientError(resp *http.Response) error {
	var re serve.RejectError
	body, _ := readAll(resp)
	if json.Unmarshal(body, &re) == nil && re.Reason != "" {
		return fmt.Errorf("%s (%s)", re.Msg, re.Reason)
	}
	return fmt.Errorf("daemon answered %s: %s", resp.Status, bytes.TrimSpace(body))
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func clientSubmit(base, path string) error {
	var spec []byte
	var err error
	if path == "-" {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(os.Stdin); err != nil {
			return err
		}
		spec = buf.Bytes()
	} else if spec, err = os.ReadFile(path); err != nil {
		return err
	}
	// Validate locally first for a better error than a bare 400.
	var s jobspec.Spec
	if err := json.Unmarshal(spec, &s); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return clientError(resp)
	}
	body, err := readAll(resp)
	if err != nil {
		return err
	}
	var m serve.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return err
	}
	fmt.Println(m.ID)
	return nil
}

func getManifest(base, id string) (*serve.Manifest, error) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, clientError(resp)
	}
	body, err := readAll(resp)
	if err != nil {
		return nil, err
	}
	var m serve.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// clientWait polls until the job settles. It rides out daemon restarts:
// connection errors are retried, because a daemon killed mid-job is
// expected to come back and finish it.
func clientWait(base, id string) error {
	lastState := serve.State("")
	for {
		m, err := getManifest(base, id)
		if err != nil {
			if strings.Contains(err.Error(), "connection refused") {
				time.Sleep(500 * time.Millisecond)
				continue
			}
			return err
		}
		if m.State != lastState {
			fmt.Fprintf(os.Stderr, "picserve: job %s %s\n", id, m.State)
			lastState = m.State
		}
		if m.State.Terminal() {
			if m.State != serve.StateDone {
				return fmt.Errorf("job %s %s (%s): %s", id, m.State, m.Reason, m.Detail)
			}
			// Full-precision pins, format-compatible with picsim's output so
			// the same golden greps work against either.
			fmt.Printf("  TotalTime %.7f\n", m.Result.TotalTime)
			fmt.Printf("  Fingerprint %s\n", m.Result.Fingerprint)
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func clientStatus(base, id string) error {
	url := base + "/jobz"
	if id != "" {
		url = base + "/jobs/" + id
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return clientError(resp)
	}
	body, err := readAll(resp)
	if err != nil {
		return err
	}
	os.Stdout.Write(append(bytes.TrimSpace(body), '\n'))
	return nil
}

func clientCancel(base, id string) error {
	resp, err := http.Post(base+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return clientError(resp)
	}
	fmt.Printf("cancelled %s\n", id)
	return nil
}

func clientEvents(base, id string) error {
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	return sc.Err()
}
