// Command picsim runs one parallel PIC simulation from flags and prints a
// summary plus (optionally) the per-iteration history.
//
// Example — the paper's irregular 32-node configuration under the dynamic
// redistribution policy:
//
//	picsim -mesh 128x64 -n 32768 -p 32 -iters 200 \
//	       -dist irregular -policy dynamic -history
//
// Or the same physics in three dimensions over the dimension-generic
// pipeline:
//
//	picsim -dim 3 -mesh 32x32x32 -n 32768 -p 32 -iters 200 \
//	       -dist irregular -policy dynamic
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"picpar"
)

func main() {
	dim := flag.Int("dim", 2, "spatial dimensionality: 2 or 3")
	meshFlag := flag.String("mesh", "", "mesh size NXxNY (2-D, default 128x64) or NXxNYxNZ (3-D, default 32x32x32)")
	n := flag.Int("n", 32768, "number of particles")
	p := flag.Int("p", 32, "number of ranks (processors)")
	iters := flag.Int("iters", 200, "iterations")
	dist := flag.String("dist", "irregular", "distribution: uniform|irregular|twostream|beam")
	indexing := flag.String("indexing", "hilbert", "particle ordering: hilbert|snake|rowmajor|morton")
	policyFlag := flag.String("policy", "dynamic", "redistribution policy: static|dynamic|periodic:<k>")
	table := flag.String("table", "direct", "duplicate-removal table: direct|hash")
	seed := flag.Int64("seed", 1, "random seed")
	thermal := flag.Float64("thermal", 0.3, "thermal momentum spread (p/mc)")
	modern := flag.Bool("modern", false, "use modern-cluster cost model instead of CM-5")
	history := flag.Bool("history", false, "print per-iteration history")
	phases := flag.Bool("phases", false, "print per-phase communication/computation breakdown")
	diag := flag.Bool("energies", false, "record and print energy diagnostics")
	flag.Parse()

	if *meshFlag == "" {
		if *dim == 3 {
			*meshFlag = "32x32x32"
		} else {
			*meshFlag = "128x64"
		}
	}
	ext, err := parseMesh(*meshFlag, *dim)
	if err != nil {
		fatal(err)
	}
	pol, err := parsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}
	cfg := picpar.Config{
		Dims:         *dim,
		P:            *p,
		NumParticles: *n,
		Distribution: *dist,
		Seed:         *seed,
		Iterations:   *iters,
		Indexing:     *indexing,
		Policy:       pol,
		Table:        *table,
		Thermal:      *thermal,
		Diagnostics:  *diag,
	}
	if *dim == 3 {
		cfg.Grid3 = picpar.NewGrid3(ext[0], ext[1], ext[2])
	} else {
		cfg.Grid = picpar.NewGrid(ext[0], ext[1])
	}
	if *modern {
		cfg.Machine = picpar.ModernMachine()
	}

	res, err := picpar.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("picsim: mesh=%s particles=%d ranks=%d iterations=%d dist=%s indexing=%s policy=%s table=%s\n",
		*meshFlag, *n, *p, *iters, *dist, *indexing, *policyFlag, *table)
	fmt.Printf("  initial distribution: %10.4f s\n", res.InitTime)
	fmt.Printf("  total execution:      %10.4f s (simulated)\n", res.TotalTime)
	fmt.Printf("  computation (max):    %10.4f s\n", res.ComputeMax)
	fmt.Printf("  overhead:             %10.4f s\n", res.Overhead)
	fmt.Printf("  efficiency:           %10.4f\n", res.Efficiency)
	fmt.Printf("  redistributions:      %10d (%.4f s)\n", res.NumRedistributions, res.RedistTime)
	fmt.Printf("  peak scatter traffic: %10d B, %d messages\n", res.MaxScatterBytes(), res.MaxScatterMsgs())

	if *phases {
		fmt.Printf("\nper-phase breakdown (max over ranks):\n%s", res.Stats.Format())
	}

	if *history {
		fmt.Printf("\n%6s %10s %10s %10s %8s %7s\n", "iter", "time(s)", "comp(s)", "maxBytes", "maxMsgs", "redist")
		for _, rec := range res.Records {
			mark := ""
			if rec.Redistributed {
				mark = fmt.Sprintf("* %.4fs", rec.RedistTime)
			}
			fmt.Printf("%6d %10.4f %10.4f %10d %8d %7s\n",
				rec.Iter, rec.Time, rec.Compute, rec.ScatterBytesSent, rec.ScatterMsgsSent, mark)
			if *diag && rec.FieldEnergy != 0 {
				fmt.Printf("       field energy %.6g, kinetic energy %.6g\n", rec.FieldEnergy, rec.KineticEnergy)
			}
		}
	}
}

func parseMesh(s string, dim int) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != dim {
		return nil, fmt.Errorf("picsim: mesh %q has %d extents, want %d for -dim %d",
			s, len(parts), dim, dim)
	}
	ext := make([]int, dim)
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("picsim: mesh extent %q: %v", part, err)
		}
		ext[i] = v
	}
	return ext, nil
}

func parsePolicy(s string) (picpar.PolicyFactory, error) {
	switch {
	case s == "static":
		return picpar.StaticPolicy(), nil
	case s == "dynamic":
		return picpar.DynamicPolicy(), nil
	case strings.HasPrefix(s, "periodic:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "periodic:"))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("picsim: bad period in %q", s)
		}
		return picpar.PeriodicPolicy(k), nil
	}
	return nil, fmt.Errorf("picsim: unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
