// Command picsim runs one parallel PIC simulation from flags and prints a
// summary plus (optionally) the per-iteration history.
//
// Example — the paper's irregular 32-node configuration under the dynamic
// redistribution policy:
//
//	picsim -mesh 128x64 -n 32768 -p 32 -iters 200 \
//	       -dist irregular -policy dynamic -history
//
// Or the same physics in three dimensions over the dimension-generic
// pipeline:
//
//	picsim -dim 3 -mesh 32x32x32 -n 32768 -p 32 -iters 200 \
//	       -dist irregular -policy dynamic
//
// With -net the same simulation runs over real TCP sockets, one OS process
// per rank. The launcher form starts a rendezvous coordinator, re-executes
// itself once per rank, and supervises the world:
//
//	picsim -net 127.0.0.1:0 -mesh 32x16 -n 2048 -p 4 -iters 10 \
//	       -dist irregular -seed 7 -policy static
//
// -topology selects the communication topology. Sparse topologies assemble
// only the stencil + skeleton sockets (O(P·k) instead of O(P²)) and route
// redistribution traffic over topology-native protocols; the physics and
// the simulated times are byte-identical to the full mesh:
//
//	picsim -net 127.0.0.1:0 -topology neighbor-sparse -mesh 32x16 -n 2048 \
//	       -p 4 -iters 10 -dist irregular -seed 7 -policy static
//
// Adding -checkpoint-dir makes every rank write a CRC-guarded shard of its
// state on a fixed iteration cadence, and -recover turns the launcher
// elastic: a rank killed mid-run (kill -9 included) is respawned, rejoins
// through the rendezvous, and the whole world rolls back in lockstep to
// the latest complete checkpoint epoch and continues — with the same final
// Fingerprint an undisturbed run prints:
//
//	picsim -net 127.0.0.1:0 -mesh 32x16 -n 2048 -p 4 -iters 20 \
//	       -dist irregular -seed 7 -policy static \
//	       -checkpoint-dir /tmp/ckpt -checkpoint-every 5 -recover
//
// A single rank joins an existing coordinator with -rank (normally only the
// launcher does this, but it is how a world spreads across hosts), and
// -coordinate runs just the rendezvous service for such a hand-assembled
// world:
//
//	picsim -net host0:9999 -coordinate -p 4          # on host0
//	picsim -net host0:9999 -rank 2 -p 4 ...same simulation flags...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"picpar"
	"picpar/internal/jobspec"
)

func main() {
	dim := flag.Int("dim", 2, "spatial dimensionality: 2 or 3")
	meshFlag := flag.String("mesh", "", "mesh size NXxNY (2-D, default 128x64) or NXxNYxNZ (3-D, default 32x32x32)")
	n := flag.Int("n", 32768, "number of particles")
	p := flag.Int("p", 32, "number of ranks (processors)")
	iters := flag.Int("iters", 200, "iterations")
	dist := flag.String("dist", "irregular", "distribution: uniform|irregular|twostream|beam|spike|collapse")
	indexing := flag.String("indexing", "hilbert", "particle ordering: hilbert|snake|rowmajor|morton")
	policyFlag := flag.String("policy", "dynamic", "redistribution policy: static|dynamic|periodic:<k>|adaptive|adaptive:<k>")
	strategyFlag := flag.String("strategy", "", "layout strategy the policy's firings rebuild into: equal-count|cost-weighted|eulerian (default equal-count; ignored by -policy adaptive, which chooses per firing)")
	table := flag.String("table", "direct", "duplicate-removal table: direct|hash")
	topology := flag.String("topology", "", "communication topology: full-mesh (default)|neighbor-sparse|systolic-ring|hierarchical[:hosts] (hierarchical is in-process only)")
	seed := flag.Int64("seed", 1, "random seed")
	thermal := flag.Float64("thermal", 0.3, "thermal momentum spread (p/mc)")
	modern := flag.Bool("modern", false, "use modern-cluster cost model instead of CM-5")
	history := flag.Bool("history", false, "print per-iteration history")
	phases := flag.Bool("phases", false, "print per-phase communication/computation breakdown")
	diag := flag.Bool("energies", false, "record and print energy diagnostics")
	verify := flag.Bool("verify", false, "enable per-iteration invariant checking (charged compute, changes timings)")
	procs := flag.Int("procs", 0, "shared-memory workers per rank for the physics kernels; 0 = $PICPAR_PROCS or 1 (results are byte-identical for any count)")
	netAddr := flag.String("net", "", "run over TCP: coordinator address (host:port, port 0 picks one); launcher mode unless -rank is given")
	rank := flag.Int("rank", -1, "with -net: join the coordinator as this rank instead of launching the world")
	wallclock := flag.Bool("wallclock", false, "with -net: charge real elapsed time instead of the simulated cost model")
	coordinate := flag.Bool("coordinate", false, "with -net: run only the rendezvous coordinator (for ranks started by hand, e.g. on other hosts)")
	ckptDir := flag.String("checkpoint-dir", "", "write CRC-guarded checkpoint epochs under this directory (default $PICPAR_CKPT_DIR; empty disables)")
	ckptEvery := flag.Int("checkpoint-every", 0, "iterations between checkpoints when checkpointing is on (default 10)")
	ckptKeep := flag.Int("checkpoint-keep", 0, "complete checkpoint epochs to retain (default 2)")
	recoverFlag := flag.Bool("recover", false, "with -net: elastic recovery — respawn dead ranks and roll the world back to the latest complete checkpoint epoch")
	flag.Parse()

	if *meshFlag == "" {
		if *dim == 3 {
			*meshFlag = "32x32x32"
		} else {
			*meshFlag = "128x64"
		}
	}
	// Flags become a jobspec.Spec — the same description a picserve job
	// submission carries — so every entrypoint shares one flag→Config path.
	spec := jobspec.Spec{
		Dims:         *dim,
		Mesh:         *meshFlag,
		Particles:    *n,
		Ranks:        *p,
		Iterations:   *iters,
		Distribution: *dist,
		Indexing:     *indexing,
		Table:        *table,
		Topology:     *topology,
		Policy:       *policyFlag,
		Strategy:     *strategyFlag,
		Seed:         *seed,
		Thermal:      *thermal,
		Modern:       *modern,
		Workers:      *procs,
		Diagnostics:  *diag,
		Verify:       *verify,

		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		CheckpointKeep:  *ckptKeep,
		Recover:         *recoverFlag,
	}
	cfg, err := spec.Config()
	if err != nil {
		fatal(err)
	}

	if *netAddr != "" && strings.HasPrefix(*topology, "hierarchical") {
		fatal(fmt.Errorf("picsim: -topology hierarchical runs on the in-process backend; drop -net or pick a flat topology"))
	}

	var res *picpar.Result
	switch {
	case *netAddr != "" && *coordinate:
		// Rendezvous-only mode: assemble one world of -p hand-started
		// ranks, then exit (the mesh does not route through us).
		co, err := picpar.StartCoordinator(*netAddr, *p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "picsim: coordinating world of %d ranks on %s\n", *p, co.Addr())
		if err := co.Serve(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "picsim: world assembled, coordinator done\n")
		return
	case *netAddr != "" && *rank >= 0:
		// One rank endpoint of a TCP world: join the coordinator and run.
		ncfg := picpar.NetConfig{Coordinator: *netAddr, Rank: *rank, Size: *p, WallClock: *wallclock}
		res, err = picpar.RunNet(ncfg, cfg)
		if err != nil {
			fatal(err)
		}
		if res == nil {
			return // only rank 0 reports
		}
	case *netAddr != "":
		// Launcher mode: coordinator plus one re-executed process per rank.
		// The -topology flag rides along to every rank child via childArgs;
		// the supervisor knows the world description so refused dials in a
		// sparse world are attributed to its configuration.
		if err := launchWorld(*netAddr, *p, *recoverFlag, *topology); err != nil {
			fatal(err)
		}
		return
	default:
		res, err = picpar.Run(cfg)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("picsim: mesh=%s particles=%d ranks=%d iterations=%d dist=%s indexing=%s policy=%s table=%s\n",
		*meshFlag, *n, *p, *iters, *dist, *indexing, *policyFlag, *table)
	fmt.Printf("  initial distribution: %10.4f s\n", res.InitTime)
	clockKind := "simulated"
	if *wallclock {
		clockKind = "wall-clock"
	}
	fmt.Printf("  total execution:      %10.4f s (%s)\n", res.TotalTime, clockKind)
	fmt.Printf("  computation (max):    %10.4f s\n", res.ComputeMax)
	fmt.Printf("  overhead:             %10.4f s\n", res.Overhead)
	fmt.Printf("  efficiency:           %10.4f\n", res.Efficiency)
	fmt.Printf("  redistributions:      %10d (%.4f s)\n", res.NumRedistributions, res.RedistTime)
	if len(res.RedistByStrategy) > 0 {
		names := make([]string, 0, len(res.RedistByStrategy))
		for name := range res.RedistByStrategy {
			names = append(names, name)
		}
		sort.Strings(names)
		var parts []string
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s:%d", name, res.RedistByStrategy[name]))
		}
		fmt.Printf("  redist strategies:    %10s\n", strings.Join(parts, " "))
	}
	fmt.Printf("  peak scatter traffic: %10d B, %d messages\n", res.MaxScatterBytes(), res.MaxScatterMsgs())
	// Full-precision pin for scripts (the golden gate greps this line).
	fmt.Printf("  TotalTime %.7f\n", res.TotalTime)
	// Physics fingerprint: order-sensitive FNV-64a over every rank's final
	// particle columns and field arrays. The recovery gate compares this
	// between a kill-and-recover run and an undisturbed one.
	fmt.Printf("  Fingerprint %016x\n", res.Fingerprint)

	if *phases {
		fmt.Printf("\nper-phase breakdown (max over ranks):\n%s", res.Stats.Format())
	}

	if *history {
		fmt.Printf("\n%6s %10s %10s %10s %8s %7s\n", "iter", "time(s)", "comp(s)", "maxBytes", "maxMsgs", "redist")
		for _, rec := range res.Records {
			mark := ""
			if rec.Redistributed {
				mark = fmt.Sprintf("* %.4fs", rec.RedistTime)
			}
			fmt.Printf("%6d %10.4f %10.4f %10d %8d %7s\n",
				rec.Iter, rec.Time, rec.Compute, rec.ScatterBytesSent, rec.ScatterMsgsSent, mark)
			if *diag && rec.FieldEnergy != 0 {
				fmt.Printf("       field energy %.6g, kinetic energy %.6g\n", rec.FieldEnergy, rec.KineticEnergy)
			}
		}
	}
}

// launchWorld is picsim's coordinator mode: it starts the rendezvous
// service on addr, re-executes this binary once per rank with the same
// simulation flags plus -net/-rank, prints each child's pid to stderr (so
// harnesses can kill a specific rank), and supervises the world. Without
// elastic recovery a dead rank surfaces as a nonzero exit with its peers'
// DeliveryError diagnostics on stderr within the backend's
// failure-detection window — never as a hang. With elastic recovery the
// coordinator keeps serving re-assembly rounds, a dead rank is respawned
// with its same identity, and the run continues from the latest complete
// checkpoint epoch.
func launchWorld(addr string, p int, elastic bool, topology string) error {
	co, err := picpar.StartCoordinator(addr, p)
	if err != nil {
		return err
	}
	defer co.Close()
	serveErr := make(chan error, 1)
	if elastic {
		go func() { serveErr <- co.ServeElastic() }()
	} else {
		go func() { serveErr <- co.Serve() }()
	}

	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("picsim: cannot re-execute self: %v", err)
	}
	base := childArgs()
	spawn := func(rank int) (*picpar.RankProc, error) {
		args := append(append([]string{}, base...),
			"-net", co.Addr(), "-rank", strconv.Itoa(rank), "-p", strconv.Itoa(p))
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "picsim: rank %d pid %d\n", rank, cmd.Process.Pid)
		return &picpar.RankProc{Rank: rank, Cmd: cmd}, nil
	}
	procs := make([]*picpar.RankProc, p)
	for k := 0; k < p; k++ {
		proc, err := spawn(k)
		if err != nil {
			for _, q := range procs[:k] {
				_ = q.Cmd.Process.Kill()
				_ = q.Cmd.Wait()
			}
			return fmt.Errorf("picsim: start rank %d: %v", k, err)
		}
		procs[k] = proc
	}
	var respawn picpar.RespawnFunc
	maxRespawns := 0
	if elastic {
		maxRespawns = 2 * p
		respawn = func(rank int) (*picpar.RankProc, error) {
			fmt.Fprintf(os.Stderr, "picsim: rank %d died, respawning\n", rank)
			return spawn(rank)
		}
	}
	worldDesc := fmt.Sprintf("topology %s, P=%d", topology, p)
	if topology == "" {
		worldDesc = fmt.Sprintf("topology full-mesh, P=%d", p)
	}
	if err := picpar.SuperviseRanksElastic(procs, 15*time.Second, respawn, maxRespawns, worldDesc); err != nil {
		return err
	}
	if elastic {
		// ServeElastic only returns once the listener closes; shut it down
		// now that every rank exited cleanly, then surface any serve error.
		co.Close()
		return <-serveErr
	}
	select {
	case err := <-serveErr:
		return err
	default:
		return nil
	}
}

// childArgs reproduces the explicitly-set simulation flags for a rank
// child, excluding the launcher-control flags that the child gets its own
// values for.
func childArgs() []string {
	var args []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "net", "rank", "p":
			return
		}
		args = append(args, "-"+f.Name+"="+f.Value.String())
	})
	return args
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
