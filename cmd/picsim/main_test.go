package main

import "testing"

func TestParseMesh(t *testing.T) {
	ext, err := parseMesh("128x64", 2)
	if err != nil || ext[0] != 128 || ext[1] != 64 {
		t.Errorf("parseMesh: %v %v", ext, err)
	}
	if _, err := parseMesh("128X64", 2); err != nil {
		t.Errorf("uppercase X should parse: %v", err)
	}
	ext, err = parseMesh("32x16x8", 3)
	if err != nil || ext[0] != 32 || ext[1] != 16 || ext[2] != 8 {
		t.Errorf("parseMesh 3-D: %v %v", ext, err)
	}
	for _, bad := range []string{"128", "ax64", "128xb", "1x2x3", ""} {
		if _, err := parseMesh(bad, 2); err == nil {
			t.Errorf("parseMesh(%q, 2) accepted", bad)
		}
	}
	for _, bad := range []string{"128x64", "1x2x3x4", "1x2xq", ""} {
		if _, err := parseMesh(bad, 3); err == nil {
			t.Errorf("parseMesh(%q, 3) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"static", "dynamic", "periodic:10"} {
		f, err := parsePolicy(good)
		if err != nil || f == nil {
			t.Errorf("parsePolicy(%q): %v", good, err)
		}
		if f().Name() == "" {
			t.Errorf("policy %q has empty name", good)
		}
	}
	for _, bad := range []string{"periodic:", "periodic:0", "periodic:-3", "periodic:x", "sar", ""} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}
