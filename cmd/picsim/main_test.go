package main

import "testing"

func TestParseMesh(t *testing.T) {
	nx, ny, err := parseMesh("128x64")
	if err != nil || nx != 128 || ny != 64 {
		t.Errorf("parseMesh: %d %d %v", nx, ny, err)
	}
	if _, _, err := parseMesh("128X64"); err != nil {
		t.Errorf("uppercase X should parse: %v", err)
	}
	for _, bad := range []string{"128", "ax64", "128xb", "1x2x3", ""} {
		if _, _, err := parseMesh(bad); err == nil {
			t.Errorf("parseMesh(%q) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"static", "dynamic", "periodic:10"} {
		f, err := parsePolicy(good)
		if err != nil || f == nil {
			t.Errorf("parsePolicy(%q): %v", good, err)
		}
		if f().Name() == "" {
			t.Errorf("policy %q has empty name", good)
		}
	}
	for _, bad := range []string{"periodic:", "periodic:0", "periodic:-3", "periodic:x", "sar", ""} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}
