package main

import (
	"testing"

	"picpar/internal/jobspec"
)

// picsim's mesh and policy spellings are the shared jobspec ones; these
// tests pin the semantics the CLI depends on.

func TestParseMesh(t *testing.T) {
	ext, err := jobspec.ParseMesh("128x64", 2)
	if err != nil || ext[0] != 128 || ext[1] != 64 {
		t.Errorf("ParseMesh: %v %v", ext, err)
	}
	if _, err := jobspec.ParseMesh("128X64", 2); err != nil {
		t.Errorf("uppercase X should parse: %v", err)
	}
	ext, err = jobspec.ParseMesh("32x16x8", 3)
	if err != nil || ext[0] != 32 || ext[1] != 16 || ext[2] != 8 {
		t.Errorf("ParseMesh 3-D: %v %v", ext, err)
	}
	for _, bad := range []string{"128", "ax64", "128xb", "1x2x3", ""} {
		if _, err := jobspec.ParseMesh(bad, 2); err == nil {
			t.Errorf("ParseMesh(%q, 2) accepted", bad)
		}
	}
	for _, bad := range []string{"128x64", "1x2x3x4", "1x2xq", ""} {
		if _, err := jobspec.ParseMesh(bad, 3); err == nil {
			t.Errorf("ParseMesh(%q, 3) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"static", "dynamic", "periodic:10"} {
		f, err := jobspec.ParsePolicy(good)
		if err != nil || f == nil {
			t.Errorf("ParsePolicy(%q): %v", good, err)
		}
		if f().Name() == "" {
			t.Errorf("policy %q has empty name", good)
		}
	}
	for _, bad := range []string{"periodic:", "periodic:0", "periodic:-3", "periodic:x", "sar", ""} {
		if _, err := jobspec.ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

// TestSpecBuildsTheCLIWorkload pins that the flag-shaped spec the CLI
// assembles produces the config picsim historically built by hand.
func TestSpecBuildsTheCLIWorkload(t *testing.T) {
	spec := jobspec.Spec{
		Mesh: "128x64", Particles: 32768, Ranks: 32, Iterations: 200,
		Distribution: "irregular", Indexing: "hilbert", Table: "direct",
		Policy: "dynamic", Seed: 1, Thermal: 0.3,
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Grid.Nx != 128 || cfg.Grid.Ny != 64 {
		t.Errorf("grid %dx%d", cfg.Grid.Nx, cfg.Grid.Ny)
	}
	if cfg.P != 32 || cfg.NumParticles != 32768 || cfg.Iterations != 200 {
		t.Errorf("P=%d n=%d iters=%d", cfg.P, cfg.NumParticles, cfg.Iterations)
	}
	if cfg.Policy == nil || cfg.Policy().Name() != "dynamic" {
		t.Errorf("policy not wired")
	}
	if _, err := (jobspec.Spec{Mesh: "banana"}).Config(); err == nil {
		t.Error("bad mesh accepted")
	}
	if _, err := (jobspec.Spec{Policy: "sar"}).Config(); err == nil {
		t.Error("bad policy accepted")
	}
}
