package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchSnapshot is the on-disk schema of a BENCH_<date>.json file. See
// README.md ("Performance regression harness") for the field-by-field
// description.
type benchSnapshot struct {
	Schema     string           `json:"schema"` // always "picpar-bench/v1"
	Date       string           `json:"date"`   // YYYY-MM-DD of the run
	GoVersion  string           `json:"go"`
	Pattern    string           `json:"pattern"`
	Benchtime  string           `json:"benchtime"`
	Benchmarks []benchmarkEntry `json:"benchmarks"`
}

// benchmarkEntry records one benchmark line of `go test -bench`, or one
// point of the -cpu intra-rank scaling sweep (Name "CPUSweep/workers=N",
// Cores set, throughput in Metrics).
type benchmarkEntry struct {
	Name        string             `json:"name"`  // e.g. "BenchmarkLocalSort-8"
	Iters       int64              `json:"iters"` // b.N of the final run
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Cores       int                `json:"cores,omitempty"`   // -cpu sweep worker count
	Metrics     map[string]float64 `json:"metrics,omitempty"` // b.ReportMetric extras
}

// runBench executes the hot-path benchmarks, writes BENCH_<date>.json into
// dir, and compares against the most recent previous snapshot with the
// given relative tolerance on ns/op (allocs/op must not grow at all).
// Returns an error when a regression is detected so main can exit non-zero.
func runBench(dir, pattern, benchtime string, tol float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	prev, prevPath, err := latestSnapshot(dir)
	if err != nil {
		return err
	}

	args := []string{"test", "-run", "NONE", "-bench", pattern, "-benchmem", "-benchtime", benchtime, "."}
	fmt.Printf("picbench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	entries := parseBenchOutput(string(out))
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark results matched pattern %q:\n%s", pattern, out)
	}

	snap := &benchSnapshot{
		Schema:     "picpar-bench/v1",
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		Pattern:    pattern,
		Benchtime:  benchtime,
		Benchmarks: entries,
	}
	path := filepath.Join(dir, "BENCH_"+snap.Date+".json")
	// Preserve any same-day -cpu sweep entries: the two harnesses share one
	// trajectory file per day.
	if prev != nil && prevPath == path {
		for _, e := range prev.Benchmarks {
			if strings.HasPrefix(e.Name, "CPUSweep/") {
				snap.Benchmarks = append(snap.Benchmarks, e)
			}
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("picbench: %d benchmarks written to %s\n", len(entries), path)

	if prev == nil {
		fmt.Println("picbench: no previous snapshot to compare against")
		return nil
	}
	if prevPath == path {
		// Same-day re-run: prev holds the just-overwritten contents, which
		// is still the right baseline.
		fmt.Println("picbench: comparing against the overwritten same-day snapshot")
	}
	return compareSnapshots(prev, snap, prevPath, tol)
}

// latestSnapshot loads the newest BENCH_*.json in dir (lexicographic order —
// the date-stamped names sort chronologically), or nil if none exist.
func latestSnapshot(dir string) (*benchSnapshot, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	if len(matches) == 0 {
		return nil, "", nil
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, "", fmt.Errorf("%s: %v", path, err)
	}
	return &snap, path, nil
}

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output. Each line is "Name iters v1 unit1 v2 unit2 ...".
func parseBenchOutput(out string) []benchmarkEntry {
	var entries []benchmarkEntry
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := benchmarkEntry{Name: fields[0], Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[fields[i+1]] = v
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// compareSnapshots reports per-benchmark deltas and returns an error if any
// benchmark got slower than tol allows or started allocating more.
func compareSnapshots(prev, cur *benchSnapshot, prevPath string, tol float64) error {
	fmt.Printf("picbench: comparing against %s (tolerance %.0f%%)\n", prevPath, tol*100)
	prevBy := map[string]benchmarkEntry{}
	for _, e := range prev.Benchmarks {
		prevBy[e.Name] = e
	}
	var regressions []string
	for _, e := range cur.Benchmarks {
		p, ok := prevBy[e.Name]
		if !ok {
			fmt.Printf("  %-48s %12.0f ns/op  (new)\n", e.Name, e.NsPerOp)
			continue
		}
		delta := 0.0
		if p.NsPerOp > 0 {
			delta = e.NsPerOp/p.NsPerOp - 1
		}
		fmt.Printf("  %-48s %12.0f ns/op  %+7.1f%%  allocs %g -> %g\n",
			e.Name, e.NsPerOp, delta*100, p.AllocsPerOp, e.AllocsPerOp)
		if p.NsPerOp > 0 && delta > tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% > %.0f%%)",
					e.Name, p.NsPerOp, e.NsPerOp, delta*100, tol*100))
		}
		// Allocation counts of the full-simulation benchmarks jitter ~1%
		// with sync.Pool GC timing; a 5% + 2 slack screens that out while
		// still catching a hot path that starts allocating.
		if e.AllocsPerOp > p.AllocsPerOp*1.05+2 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op grew %g -> %g", e.Name, p.AllocsPerOp, e.AllocsPerOp))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance regressions:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Println("picbench: no regressions")
	return nil
}
