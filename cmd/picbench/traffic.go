package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// trafficSnapshot is the on-disk schema of a TRAFFIC_<date>.json file: the
// per-phase message/byte totals of one deterministic traced reference
// simulation. Unlike the wall-clock bench snapshots, these numbers carry no
// noise at all — the simulated transport is fully deterministic — so the
// comparison tolerates zero inflation.
type trafficSnapshot struct {
	Schema    string              `json:"schema"` // always "picpar-traffic/v1"
	Date      string              `json:"date"`   // YYYY-MM-DD of the run
	GoVersion string              `json:"go"`
	Config    trafficConfig       `json:"config"`
	Phases    []trafficPhaseEntry `json:"phases"`
	// Topologies is the per-topology socket/message matrix (additive field;
	// snapshots predating the topology layer simply omit it).
	Topologies []trafficTopologyEntry `json:"topologies,omitempty"`
}

// trafficConfig pins the reference run so snapshots stay comparable; a
// mismatch against the previous snapshot resets the baseline instead of
// comparing apples to oranges.
type trafficConfig struct {
	Nx           int    `json:"nx"`
	Ny           int    `json:"ny"`
	P            int    `json:"p"`
	NumParticles int    `json:"num_particles"`
	Iterations   int    `json:"iterations"`
	Policy       string `json:"policy"`
	Seed         int64  `json:"seed"`
}

// trafficPhaseEntry is one accounting phase's traffic, summed over ranks.
type trafficPhaseEntry struct {
	Phase     string `json:"phase"`
	MsgsSent  int64  `json:"msgs_sent"`
	BytesSent int64  `json:"bytes_sent"`
	MsgsRecv  int64  `json:"msgs_recv"`
	BytesRecv int64  `json:"bytes_recv"`
}

// trafficTopologyEntry records one (topology, P) cell of the socket matrix:
// the descriptor's link count, the live TCP connection count a real loopback
// assembly of that topology opened (measured via comm.SocketCount, each
// linked pair sharing one socket), and — for topologies the simulation runs
// on — the traced total message count of the reference run. Sockets and
// Links are 0 for the hierarchical transport, which is in-process and opens
// no flat socket mesh.
type trafficTopologyEntry struct {
	Topology string `json:"topology"`
	P        int    `json:"p"`
	Links    int    `json:"links"`
	Sockets  int    `json:"sockets"`
	MsgsSent int64  `json:"msgs_sent,omitempty"`
}

// trafficReferenceConfig is the fixed simulation the gate measures: small
// enough to run in well under a second, irregular enough that every phase
// (halo exchange, reductions, redistribution all-to-many) moves real
// traffic. Periodic(3) pins the redistribution schedule so traffic cannot
// legitimately drift with timing.
func trafficReferenceConfig() (pic.Config, trafficConfig) {
	cfg := pic.Config{
		Grid:         mesh.NewGrid(32, 16),
		P:            4,
		NumParticles: 2048,
		Distribution: particle.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Policy:       policy.NewPeriodic(3),
	}
	meta := trafficConfig{
		Nx: 32, Ny: 16,
		P:            cfg.P,
		NumParticles: cfg.NumParticles,
		Iterations:   cfg.Iterations,
		Policy:       "periodic(3)",
		Seed:         cfg.Seed,
	}
	return cfg, meta
}

// runTraffic runs the traced reference simulation, writes
// TRAFFIC_<date>.json into dir, and fails on any per-phase message or byte
// increase over the most recent previous snapshot. It additionally measures
// the per-topology socket matrix over real loopback TCP assemblies and
// fails unless at least one sparse topology opened strictly fewer sockets
// than the full mesh at P ≥ 8 — the O(P²) → O(P·k) claim, gated. With
// requireBaseline, the absence of a previous snapshot is itself an error
// (CI runs this form, so a deleted baseline cannot silently pass).
func runTraffic(dir string, requireBaseline bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	prev, prevPath, err := latestTrafficSnapshot(dir)
	if err != nil {
		return err
	}
	if prev == nil && requireBaseline {
		return fmt.Errorf("no TRAFFIC_*.json baseline in %s; run scripts/bench.sh (or picbench -traffic) and commit the snapshot", dir)
	}

	cfg, meta := trafficReferenceConfig()
	tracer := comm.NewTracer()
	cfg.Transport = tracer.Wrap
	if _, err := pic.Run(cfg); err != nil {
		return fmt.Errorf("traced reference simulation failed: %v", err)
	}

	totals := tracer.PhaseTotals()
	snap := &trafficSnapshot{
		Schema:    "picpar-traffic/v1",
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Config:    meta,
	}
	for i, c := range totals {
		snap.Phases = append(snap.Phases, trafficPhaseEntry{
			Phase:     machine.Phase(i).String(),
			MsgsSent:  c.MsgsSent,
			BytesSent: c.BytesSent,
			MsgsRecv:  c.MsgsRecv,
			BytesRecv: c.BytesRecv,
		})
	}

	topos, gateErr := measureTopologies()
	snap.Topologies = topos
	fmt.Println("picbench: topology socket/message matrix")
	for _, e := range topos {
		fmt.Printf("  %-16s P=%-3d links %4d  sockets %4d  msgs %6d\n",
			e.Topology, e.P, e.Links, e.Sockets, e.MsgsSent)
	}

	path := filepath.Join(dir, "TRAFFIC_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("picbench: traffic snapshot written to %s\n", path)

	if gateErr != nil {
		return gateErr
	}
	if prev == nil {
		fmt.Println("picbench: no previous traffic snapshot to compare against")
		return nil
	}
	if prevPath == path {
		fmt.Println("picbench: comparing against the overwritten same-day snapshot")
	}
	return compareTraffic(prev, snap, prevPath)
}

// measureTopologies builds the per-topology socket/message matrix at P=8
// and P=16 on the 2-D reference geometry. Sockets are measured, not
// asserted: a real loopback TCP world is assembled under each descriptor
// and the live connections counted via comm.SocketCount, then checked
// against the descriptor's link count. The returned error is the sparsity
// gate: some sparse topology must open strictly fewer sockets than the
// full mesh at P ≥ 8. (At P=8 the 4×2 stencil ∪ collective skeleton is
// itself the full mesh — sparsity there comes from the ring descriptor;
// at P=16 the neighbor-sparse stencil is genuinely sparser.)
func measureTopologies() ([]trafficTopologyEntry, error) {
	var entries []trafficTopologyEntry
	sawSparser := false
	for _, p := range []int{8, 16} {
		base, _ := trafficReferenceConfig()
		base.P = p
		fullSockets := 0
		for _, topo := range []string{pic.TopologyFullMesh, pic.TopologyNeighborSparse, pic.TopologySystolicRing} {
			cfg := base
			cfg.Topology = topo
			tp, err := pic.TopologyFor(cfg)
			if err != nil {
				return entries, err
			}
			sockets, err := measureSockets(tp, p)
			if err != nil {
				return entries, err
			}
			msgs, err := traceMsgs(cfg)
			if err != nil {
				return entries, err
			}
			entries = append(entries, trafficTopologyEntry{
				Topology: topo, P: p, Links: tp.NumLinks(), Sockets: sockets, MsgsSent: msgs,
			})
			if sockets != tp.NumLinks() {
				return entries, fmt.Errorf("topology %s at P=%d assembled %d sockets, descriptor has %d links",
					topo, p, sockets, tp.NumLinks())
			}
			if topo == pic.TopologyFullMesh {
				fullSockets = sockets
				continue
			}
			if sockets > fullSockets {
				return entries, fmt.Errorf("topology %s at P=%d opened %d sockets, more than the full mesh's %d",
					topo, p, sockets, fullSockets)
			}
			if sockets < fullSockets {
				sawSparser = true
			}
		}
		// The pure ring descriptor carries no simulation (the CIC stencil
		// cannot ride it) but is the sparsest assembly the comm layer offers;
		// it shows the socket reduction already at P=8.
		ring := comm.NewRing(p)
		ringSockets, err := measureSockets(ring, p)
		if err != nil {
			return entries, err
		}
		entries = append(entries, trafficTopologyEntry{
			Topology: ring.Name(), P: p, Links: ring.NumLinks(), Sockets: ringSockets,
		})
		if ringSockets > fullSockets {
			return entries, fmt.Errorf("ring at P=%d opened %d sockets, more than the full mesh's %d",
				p, ringSockets, fullSockets)
		}
		if ringSockets < fullSockets {
			sawSparser = true
		}
		// The hierarchical transport is in-process — no flat socket mesh to
		// count — but its message totals belong in the matrix.
		hcfg := base
		hcfg.Topology = pic.TopologyHierarchical
		hmsgs, err := traceMsgs(hcfg)
		if err != nil {
			return entries, err
		}
		entries = append(entries, trafficTopologyEntry{
			Topology: pic.TopologyHierarchical, P: p, MsgsSent: hmsgs,
		})
	}
	if !sawSparser {
		return entries, fmt.Errorf("no sparse topology opened strictly fewer sockets than the full mesh at P >= 8")
	}
	return entries, nil
}

// measureSockets stands up a real loopback TCP world under tp and returns
// the number of distinct live connections (each linked pair shares one
// socket, counted once).
func measureSockets(tp *comm.Topology, p int) (int, error) {
	tmpl := commtest.NetTemplate(machine.CM5())
	tmpl.Topology = tp
	var mu sync.Mutex
	total := 0
	_, errs := comm.LaunchLoopback(tmpl, p, nil, func(tr comm.Transport) {
		comm.Barrier(tr) // every peer finished assembling before counting
		if c, ok := comm.SocketCount(tr); ok {
			mu.Lock()
			total += c
			mu.Unlock()
		}
	})
	for rank, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("socket probe rank %d (%s, P=%d): %v", rank, tp.Name(), p, err)
		}
	}
	return total / 2, nil
}

// traceMsgs runs the reference simulation under cfg's topology with a
// tracer installed and returns the world-total message count.
func traceMsgs(cfg pic.Config) (int64, error) {
	tracer := comm.NewTracer()
	cfg.Transport = tracer.Wrap
	cfg.Watchdog = commtest.DefaultWatchdog // a deadlock names its ranks instead of hanging the gate
	if _, err := pic.Run(cfg); err != nil {
		return 0, fmt.Errorf("traced %s simulation at P=%d failed: %v", cfg.Topology, cfg.P, err)
	}
	return tracer.Total().MsgsSent, nil
}

// latestTrafficSnapshot loads the newest TRAFFIC_*.json in dir (the
// date-stamped names sort chronologically), or nil if none exist.
func latestTrafficSnapshot(dir string) (*trafficSnapshot, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "TRAFFIC_*.json"))
	if err != nil {
		return nil, "", err
	}
	if len(matches) == 0 {
		return nil, "", nil
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var snap trafficSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, "", fmt.Errorf("%s: %v", path, err)
	}
	return &snap, path, nil
}

// compareTraffic fails on any per-phase increase in messages or bytes, in
// either direction of the wire. The simulated transport is deterministic,
// so any inflation is a real change someone must explain — by deleting the
// stale snapshot and committing the new baseline alongside the change that
// caused it.
func compareTraffic(prev, cur *trafficSnapshot, prevPath string) error {
	if prev.Config != cur.Config {
		fmt.Printf("picbench: previous snapshot %s used a different reference config; baseline reset\n", prevPath)
		return nil
	}
	fmt.Printf("picbench: comparing traffic against %s\n", prevPath)
	prevBy := map[string]trafficPhaseEntry{}
	for _, e := range prev.Phases {
		prevBy[e.Phase] = e
	}
	var inflations []string
	for _, e := range cur.Phases {
		p, ok := prevBy[e.Phase]
		if !ok {
			fmt.Printf("  %-14s %6d msgs %10d bytes sent  (new phase)\n", e.Phase, e.MsgsSent, e.BytesSent)
			continue
		}
		fmt.Printf("  %-14s msgs %6d -> %-6d  bytes %10d -> %-10d\n",
			e.Phase, p.MsgsSent, e.MsgsSent, p.BytesSent, e.BytesSent)
		check := func(name string, old, now int64) {
			if now > old {
				inflations = append(inflations,
					fmt.Sprintf("%s %s grew %d -> %d", e.Phase, name, old, now))
			}
		}
		check("msgs_sent", p.MsgsSent, e.MsgsSent)
		check("bytes_sent", p.BytesSent, e.BytesSent)
		check("msgs_recv", p.MsgsRecv, e.MsgsRecv)
		check("bytes_recv", p.BytesRecv, e.BytesRecv)
	}
	prevTopo := map[string]trafficTopologyEntry{}
	for _, e := range prev.Topologies {
		prevTopo[fmt.Sprintf("%s/%d", e.Topology, e.P)] = e
	}
	for _, e := range cur.Topologies {
		p, ok := prevTopo[fmt.Sprintf("%s/%d", e.Topology, e.P)]
		if !ok {
			continue // new cell (or pre-topology baseline): nothing to compare
		}
		if e.Sockets > p.Sockets {
			inflations = append(inflations,
				fmt.Sprintf("%s P=%d sockets grew %d -> %d", e.Topology, e.P, p.Sockets, e.Sockets))
		}
		if e.MsgsSent > p.MsgsSent {
			inflations = append(inflations,
				fmt.Sprintf("%s P=%d msgs_sent grew %d -> %d", e.Topology, e.P, p.MsgsSent, e.MsgsSent))
		}
	}
	if len(inflations) > 0 {
		return fmt.Errorf("unexplained traffic inflation:\n  %s", strings.Join(inflations, "\n  "))
	}
	fmt.Println("picbench: no traffic inflation")
	return nil
}
