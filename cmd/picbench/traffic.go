package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"picpar/internal/comm"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// trafficSnapshot is the on-disk schema of a TRAFFIC_<date>.json file: the
// per-phase message/byte totals of one deterministic traced reference
// simulation. Unlike the wall-clock bench snapshots, these numbers carry no
// noise at all — the simulated transport is fully deterministic — so the
// comparison tolerates zero inflation.
type trafficSnapshot struct {
	Schema    string              `json:"schema"` // always "picpar-traffic/v1"
	Date      string              `json:"date"`   // YYYY-MM-DD of the run
	GoVersion string              `json:"go"`
	Config    trafficConfig       `json:"config"`
	Phases    []trafficPhaseEntry `json:"phases"`
}

// trafficConfig pins the reference run so snapshots stay comparable; a
// mismatch against the previous snapshot resets the baseline instead of
// comparing apples to oranges.
type trafficConfig struct {
	Nx           int    `json:"nx"`
	Ny           int    `json:"ny"`
	P            int    `json:"p"`
	NumParticles int    `json:"num_particles"`
	Iterations   int    `json:"iterations"`
	Policy       string `json:"policy"`
	Seed         int64  `json:"seed"`
}

// trafficPhaseEntry is one accounting phase's traffic, summed over ranks.
type trafficPhaseEntry struct {
	Phase     string `json:"phase"`
	MsgsSent  int64  `json:"msgs_sent"`
	BytesSent int64  `json:"bytes_sent"`
	MsgsRecv  int64  `json:"msgs_recv"`
	BytesRecv int64  `json:"bytes_recv"`
}

// trafficReferenceConfig is the fixed simulation the gate measures: small
// enough to run in well under a second, irregular enough that every phase
// (halo exchange, reductions, redistribution all-to-many) moves real
// traffic. Periodic(3) pins the redistribution schedule so traffic cannot
// legitimately drift with timing.
func trafficReferenceConfig() (pic.Config, trafficConfig) {
	cfg := pic.Config{
		Grid:         mesh.NewGrid(32, 16),
		P:            4,
		NumParticles: 2048,
		Distribution: particle.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Policy:       policy.NewPeriodic(3),
	}
	meta := trafficConfig{
		Nx: 32, Ny: 16,
		P:            cfg.P,
		NumParticles: cfg.NumParticles,
		Iterations:   cfg.Iterations,
		Policy:       "periodic(3)",
		Seed:         cfg.Seed,
	}
	return cfg, meta
}

// runTraffic runs the traced reference simulation, writes
// TRAFFIC_<date>.json into dir, and fails on any per-phase message or byte
// increase over the most recent previous snapshot.
func runTraffic(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	prev, prevPath, err := latestTrafficSnapshot(dir)
	if err != nil {
		return err
	}

	cfg, meta := trafficReferenceConfig()
	tracer := comm.NewTracer()
	cfg.Transport = tracer.Wrap
	if _, err := pic.Run(cfg); err != nil {
		return fmt.Errorf("traced reference simulation failed: %v", err)
	}

	totals := tracer.PhaseTotals()
	snap := &trafficSnapshot{
		Schema:    "picpar-traffic/v1",
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Config:    meta,
	}
	for i, c := range totals {
		snap.Phases = append(snap.Phases, trafficPhaseEntry{
			Phase:     machine.Phase(i).String(),
			MsgsSent:  c.MsgsSent,
			BytesSent: c.BytesSent,
			MsgsRecv:  c.MsgsRecv,
			BytesRecv: c.BytesRecv,
		})
	}

	path := filepath.Join(dir, "TRAFFIC_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("picbench: traffic snapshot written to %s\n", path)

	if prev == nil {
		fmt.Println("picbench: no previous traffic snapshot to compare against")
		return nil
	}
	if prevPath == path {
		fmt.Println("picbench: comparing against the overwritten same-day snapshot")
	}
	return compareTraffic(prev, snap, prevPath)
}

// latestTrafficSnapshot loads the newest TRAFFIC_*.json in dir (the
// date-stamped names sort chronologically), or nil if none exist.
func latestTrafficSnapshot(dir string) (*trafficSnapshot, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "TRAFFIC_*.json"))
	if err != nil {
		return nil, "", err
	}
	if len(matches) == 0 {
		return nil, "", nil
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var snap trafficSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, "", fmt.Errorf("%s: %v", path, err)
	}
	return &snap, path, nil
}

// compareTraffic fails on any per-phase increase in messages or bytes, in
// either direction of the wire. The simulated transport is deterministic,
// so any inflation is a real change someone must explain — by deleting the
// stale snapshot and committing the new baseline alongside the change that
// caused it.
func compareTraffic(prev, cur *trafficSnapshot, prevPath string) error {
	if prev.Config != cur.Config {
		fmt.Printf("picbench: previous snapshot %s used a different reference config; baseline reset\n", prevPath)
		return nil
	}
	fmt.Printf("picbench: comparing traffic against %s\n", prevPath)
	prevBy := map[string]trafficPhaseEntry{}
	for _, e := range prev.Phases {
		prevBy[e.Phase] = e
	}
	var inflations []string
	for _, e := range cur.Phases {
		p, ok := prevBy[e.Phase]
		if !ok {
			fmt.Printf("  %-14s %6d msgs %10d bytes sent  (new phase)\n", e.Phase, e.MsgsSent, e.BytesSent)
			continue
		}
		fmt.Printf("  %-14s msgs %6d -> %-6d  bytes %10d -> %-10d\n",
			e.Phase, p.MsgsSent, e.MsgsSent, p.BytesSent, e.BytesSent)
		check := func(name string, old, now int64) {
			if now > old {
				inflations = append(inflations,
					fmt.Sprintf("%s %s grew %d -> %d", e.Phase, name, old, now))
			}
		}
		check("msgs_sent", p.MsgsSent, e.MsgsSent)
		check("bytes_sent", p.BytesSent, e.BytesSent)
		check("msgs_recv", p.MsgsRecv, e.MsgsRecv)
		check("bytes_recv", p.BytesRecv, e.BytesRecv)
	}
	if len(inflations) > 0 {
		return fmt.Errorf("unexplained traffic inflation:\n  %s", strings.Join(inflations, "\n  "))
	}
	fmt.Println("picbench: no traffic inflation")
	return nil
}
