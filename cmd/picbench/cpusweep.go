// The intra-rank scaling harness: -cpu "1,2,4" runs a single-rank,
// wall-clock-bound reference simulation at each worker count and records
// particles/sec and particles/sec-per-core into the same BENCH_<date>.json
// trajectory the -bench harness writes. The simulated TotalTime is asserted
// identical across the sweep (the cost model is worker-count-invariant), so
// the sweep doubles as a determinism check on real workloads.

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"picpar"
	"picpar/internal/jobspec"
)

// sweepParticles is the sweep's population size.
func sweepParticles(full bool) int {
	if full {
		return 262144
	}
	return 32768
}

// sweepConfig returns the sweep workload: one rank (so no transport noise),
// a dense uniform population, enough iterations that the physics kernels
// dominate the wall clock. Built through the shared jobspec path, like
// every other entrypoint.
func sweepConfig(workers, iters int, full bool) (picpar.Config, error) {
	spec := jobspec.Spec{
		Mesh:         "128x64",
		Ranks:        1,
		Particles:    sweepParticles(full),
		Distribution: "uniform",
		Seed:         11,
		Iterations:   iters,
		Policy:       "periodic:10",
		Workers:      workers,
	}
	return spec.Config()
}

// measureSweep times the physics loop at one worker count: wall time of a
// full run minus a zero-iteration run (generation + initial distribution
// cancel out), best of reps attempts. Returns the elapsed seconds and the
// run's simulated total for the invariance assertion.
func measureSweep(workers, iters int, full bool) (elapsed float64, simTotal float64, err error) {
	const reps = 3
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		cfg, err := sweepConfig(workers, 0, full)
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if _, err := picpar.Run(cfg); err != nil {
			return 0, 0, err
		}
		setup := time.Since(t0).Seconds()

		cfg, err = sweepConfig(workers, iters, full)
		if err != nil {
			return 0, 0, err
		}
		t0 = time.Now()
		res, runErr := picpar.Run(cfg)
		if runErr != nil {
			return 0, 0, runErr
		}
		run := time.Since(t0).Seconds()
		d := run - setup
		if d <= 0 {
			d = run // clock noise swallowed the setup; fall back to the full run
		}
		if best == 0 || d < best {
			best = d
		}
		simTotal = res.TotalTime
	}
	return best, simTotal, nil
}

// runCPUSweep executes the sweep over the comma-separated worker counts and
// merges the results into dir's BENCH_<date>.json (creating it when the
// -bench harness has not run today).
func runCPUSweep(dir, list string, full bool) error {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -cpu list %q: %q is not a positive worker count", list, part)
		}
		counts = append(counts, w)
	}
	iters := 12
	if full {
		iters = 40
	}

	fmt.Printf("picbench: cpu sweep (host %d cores, GOMAXPROCS %d, %d particles, %d iters)\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), sweepParticles(full), iters)
	fmt.Printf("  %8s %12s %16s %18s %9s\n", "workers", "wall (s)", "particles/sec", "per-core", "speedup")

	var entries []benchmarkEntry
	var base float64
	var simRef float64
	for i, w := range counts {
		elapsed, simTotal, err := measureSweep(w, iters, full)
		if err != nil {
			return err
		}
		if i == 0 {
			base = elapsed
			simRef = simTotal
		} else if simTotal != simRef {
			return fmt.Errorf("workers=%d changed the simulated total: %.17g vs %.17g — determinism broken",
				w, simTotal, simRef)
		}
		work := float64(sweepParticles(full)) * float64(iters)
		pps := work / elapsed
		speedup := base / elapsed
		fmt.Printf("  %8d %12.4f %16.0f %18.0f %8.2fx\n", w, elapsed, pps, pps/float64(w), speedup)
		entries = append(entries, benchmarkEntry{
			Name:  fmt.Sprintf("CPUSweep/workers=%d", w),
			Iters: int64(iters),
			Cores: w,
			Metrics: map[string]float64{
				"particles/sec":      pps,
				"particles/sec-core": pps / float64(w),
				"speedup":            speedup,
				"wall-s":             elapsed,
				"host-cpus":          float64(runtime.NumCPU()),
			},
		})
	}
	return mergeSweepEntries(dir, entries)
}

// mergeSweepEntries folds the sweep results into today's snapshot, replacing
// any previous CPUSweep entries, so -bench and -cpu share one trajectory
// file per day.
func mergeSweepEntries(dir string, entries []benchmarkEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	date := time.Now().Format("2006-01-02")
	path := filepath.Join(dir, "BENCH_"+date+".json")
	snap := &benchSnapshot{
		Schema:    "picpar-bench/v1",
		Date:      date,
		GoVersion: runtime.Version(),
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, snap); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		kept := snap.Benchmarks[:0]
		for _, e := range snap.Benchmarks {
			if !strings.HasPrefix(e.Name, "CPUSweep/") {
				kept = append(kept, e)
			}
		}
		snap.Benchmarks = kept
	}
	snap.Benchmarks = append(snap.Benchmarks, entries...)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("picbench: cpu sweep written to %s\n", path)
	return nil
}
