// Command picbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints a measured, paper-style text
// table and can additionally export its raw data as CSV.
//
// Usage:
//
//	picbench -exp all                  # every experiment, quick sizes
//	picbench -exp fig16 -full          # one experiment at the paper's full sizes
//	picbench -exp all -csv results/    # also write results/<exp>.csv
//
// Experiments: table1, fig16, fig17 (also covers figs 18–19), fig20,
// table2 (also covers figs 21–22 and table3), ablation, baseline, nd,
// strategy (layout-strategy comparison on the skewed spike workload), all.
//
// With -bench, picbench instead runs the wall-clock perf-regression
// harness: the hot-path benchmarks (with allocation counts) are executed
// via `go test -bench`, the results written to
// <bench-dir>/BENCH_<date>.json, and compared against the most recent
// previous snapshot; ns/op slowdowns beyond -bench-tol or any allocs/op
// growth exit non-zero. See README.md for the JSON schema.
//
// With -traffic, picbench runs the per-phase traffic-regression gate: a
// fixed reference simulation is traced through comm.Tracer, its per-phase
// message/byte totals written to <bench-dir>/TRAFFIC_<date>.json, and any
// increase over the previous snapshot exits non-zero — the simulated
// transport is deterministic, so the comparison tolerates zero inflation.
// The gate also measures the per-topology socket matrix over real loopback
// TCP assemblies (full-mesh, neighbor-sparse, systolic-ring, ring at P=8
// and P=16) and fails unless a sparse topology opens strictly fewer
// sockets than the full mesh — the O(P²) → O(P·k) assembly claim. With
// -require-baseline (the CI form) a missing baseline is itself an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"picpar/internal/experiments"
)

// csvWriter is implemented by every experiment result.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig16|fig17|fig20|table2|ablation|baseline|nd|strategy|all")
	full := flag.Bool("full", false, "use the paper's full problem sizes (slow)")
	csvDir := flag.String("csv", "", "directory to write <exp>.csv files into (created if absent)")
	bench := flag.Bool("bench", false, "run the perf-regression harness instead of the experiments")
	traffic := flag.Bool("traffic", false, "run the per-phase traffic-regression gate instead of the experiments")
	cpu := flag.String("cpu", "", "comma-separated worker counts (e.g. 1,2,4): run the intra-rank scaling sweep and record particles/sec into the bench trajectory")
	benchDir := flag.String("bench-dir", "bench", "directory for BENCH_<date>.json snapshots")
	benchPattern := flag.String("bench-pattern",
		"BenchmarkLocalSort|BenchmarkSampleSort|BenchmarkIncrementalRedistribute|BenchmarkSimulationIteration",
		"go test -bench regexp for the hot-path benchmarks")
	benchTime := flag.String("benchtime", "1s", "go test -benchtime value (e.g. 1s, 100x)")
	benchTol := flag.Float64("bench-tol", 0.3, "relative ns/op slowdown tolerated before flagging a regression")
	requireBaseline := flag.Bool("require-baseline", false, "with -traffic: fail if no previous TRAFFIC_*.json baseline exists (CI form)")
	flag.Parse()

	if *bench {
		if err := runBench(*benchDir, *benchPattern, *benchTime, *benchTol); err != nil {
			fmt.Fprintf(os.Stderr, "picbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traffic {
		if err := runTraffic(*benchDir, *requireBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "picbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cpu != "" {
		if err := runCPUSweep(*benchDir, *cpu, *full); err != nil {
			fmt.Fprintf(os.Stderr, "picbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	quick := !*full
	runners := map[string]func() csvWriter{
		"table1":   func() csvWriter { return experiments.Table1(os.Stdout, quick) },
		"fig16":    func() csvWriter { return experiments.Fig16(os.Stdout, quick) },
		"fig17":    func() csvWriter { return experiments.Fig17to19(os.Stdout, quick) },
		"fig20":    func() csvWriter { return experiments.Fig20(os.Stdout, quick) },
		"table2":   func() csvWriter { return experiments.Table2(os.Stdout, quick) },
		"ablation": func() csvWriter { return experiments.Ablation(os.Stdout, quick) },
		"baseline": func() csvWriter { return experiments.Baseline(os.Stdout, quick) },
		"nd":       func() csvWriter { return experiments.ND(os.Stdout, quick) },
		"strategy": func() csvWriter { return experiments.Strategies(os.Stdout, quick) },
	}
	order := []string{"table1", "fig16", "fig17", "fig20", "table2", "ablation", "baseline", "nd", "strategy"}

	var todo []string
	if *exp == "all" {
		todo = order
	} else if _, ok := runners[*exp]; ok {
		todo = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "picbench: unknown experiment %q (want one of %v or all)\n", *exp, order)
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "picbench: %v\n", err)
			os.Exit(1)
		}
	}

	mode := "quick"
	if *full {
		mode = "full (paper sizes)"
	}
	fmt.Printf("picbench: mode=%s\n\n", mode)
	for _, id := range todo {
		start := time.Now()
		res := runners[id]()
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			if err := writeCSVFile(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "picbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[%s data written to %s]\n\n", id, path)
		}
	}
}

func writeCSVFile(path string, res csvWriter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
