// Package diag renders text-mode diagnostics of simulation state: particle
// density maps, per-rank occupancy histograms, and time-series sparklines.
// The examples use it to make the alignment machinery visible; it has no
// effect on simulated time.
package diag

import (
	"fmt"
	"io"
	"math"
	"strings"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

// shades maps relative density to glyphs, light to dark.
var shades = []rune(" .:-=+*#%@")

// DensityMap renders an ASCII density plot of the particles on a character
// grid of width×height cells (each character bins a region of the domain).
func DensityMap(w io.Writer, g mesh.Grid, s *particle.Store, width, height int) {
	if width <= 0 || height <= 0 {
		return
	}
	bins := make([]int, width*height)
	max := 0
	for i := 0; i < s.Len(); i++ {
		bx := int(s.X[i] / g.Lx * float64(width))
		by := int(s.Y[i] / g.Ly * float64(height))
		if bx >= width {
			bx = width - 1
		}
		if by >= height {
			by = height - 1
		}
		bins[by*width+bx]++
		if bins[by*width+bx] > max {
			max = bins[by*width+bx]
		}
	}
	for y := height - 1; y >= 0; y-- {
		var b strings.Builder
		for x := 0; x < width; x++ {
			b.WriteRune(shade(bins[y*width+x], max))
		}
		fmt.Fprintln(w, b.String())
	}
}

func shade(v, max int) rune {
	if max == 0 || v == 0 {
		return shades[0]
	}
	idx := 1 + int(float64(v)/float64(max)*float64(len(shades)-2)+0.5)
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// RankHistogram prints a bar per rank of the given counts (e.g. particles
// per rank), annotated with the imbalance factor.
func RankHistogram(w io.Writer, label string, counts []int) {
	if len(counts) == 0 {
		return
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	fmt.Fprintf(w, "%s (imbalance %.2f):\n", label, imbalance(counts))
	for r, c := range counts {
		barLen := 0
		if max > 0 {
			barLen = c * 40 / max
		}
		fmt.Fprintf(w, "  rank %3d %6d %s\n", r, c, strings.Repeat("|", barLen))
	}
	_ = mean
}

func imbalance(counts []int) float64 {
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) / (float64(total) / float64(len(counts)))
}

// sparkGlyphs are eight vertical bar heights.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a compact one-line plot of a series.
func Sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Downsample reduces a series to at most n points by block averaging,
// keeping sparklines terminal-width friendly.
func Downsample(series []float64, n int) []float64 {
	if n <= 0 || len(series) <= n {
		return series
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(series) / n
		hi := (i + 1) * len(series) / n
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += series[j]
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
