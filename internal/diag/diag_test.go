package diag

import (
	"strings"
	"testing"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

func TestDensityMapShape(t *testing.T) {
	g := mesh.NewGrid(16, 16)
	s := particle.NewStore(4, -1, 1)
	// Cluster in the lower-left corner.
	for i := 0; i < 4; i++ {
		s.Append(1, 1, 0, 0, 0, float64(i))
	}
	var sb strings.Builder
	DensityMap(&sb, g, s, 8, 4)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d, want 4", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 8 {
			t.Fatalf("line width %d, want 8", len([]rune(l)))
		}
	}
	// Bottom row (printed last) has the dense glyph; top row is empty.
	if lines[3][0] == ' ' {
		t.Error("lower-left bin should be shaded")
	}
	if strings.TrimSpace(lines[0]) != "" {
		t.Error("top row should be empty")
	}
}

func TestDensityMapEmpty(t *testing.T) {
	var sb strings.Builder
	DensityMap(&sb, mesh.NewGrid(4, 4), particle.NewStore(0, -1, 1), 4, 2)
	for _, r := range sb.String() {
		if r != ' ' && r != '\n' {
			t.Fatalf("unexpected glyph %q for empty store", r)
		}
	}
	DensityMap(&sb, mesh.NewGrid(4, 4), particle.NewStore(0, -1, 1), 0, 0) // no panic
}

func TestRankHistogram(t *testing.T) {
	var sb strings.Builder
	RankHistogram(&sb, "particles", []int{10, 20, 10})
	out := sb.String()
	if !strings.Contains(out, "imbalance 1.50") {
		t.Errorf("missing imbalance: %s", out)
	}
	if !strings.Contains(out, "rank   1     20") {
		t.Errorf("missing rank row: %s", out)
	}
	RankHistogram(&sb, "empty", nil) // no panic
}

func TestImbalance(t *testing.T) {
	if got := imbalance([]int{5, 5, 5}); got != 1 {
		t.Errorf("balanced imbalance %g", got)
	}
	if got := imbalance([]int{0, 0}); got != 1 {
		t.Errorf("zero imbalance %g", got)
	}
	if got := imbalance([]int{0, 10}); got != 2 {
		t.Errorf("skewed imbalance %g", got)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty series should give empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render lowest glyph: %q", flat)
		}
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(in, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Downsample = %v", out)
		}
	}
	if got := Downsample(in, 10); len(got) != 6 {
		t.Error("no-op downsample changed length")
	}
}
