package replicated

import (
	"math"
	"testing"

	"picpar/internal/commtest"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
)

// TestCrossImplementationPhysics runs the same workload through the
// distributed simulation and the replicated-mesh baseline — two independent
// implementations of the same four-phase physics — and requires their final
// energies to agree to near machine precision.
func TestCrossImplementationPhysics(t *testing.T) {
	s := particle.NewStore(512, -0.1, 1)
	for i := 0; i < 512; i++ {
		// Deterministic lattice with a gentle shear flow.
		x := float64(i%32) + 0.25
		y := float64((i/32)%16) + 0.75
		s.Append(x, y, 0.05*math.Sin(x/5), 0.05*math.Cos(y/3), 0, float64(i))
	}
	cfg := pic.Config{
		Grid:            mesh.NewGrid(32, 16),
		P:               4,
		CustomParticles: s,
		Iterations:      20,
		Dt:              0.2,
		Diagnostics:     true,
		DiagEvery:       1,
		Watchdog:        commtest.Watchdog(),
	}
	d, err := pic.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The distributed run records diagnostics at the end of each full
	// iteration, so Records[19] holds the state after 20 complete steps —
	// the same point at which the replicated run reports its finals.
	rec := d.Records[19]

	if rel := relDiff(rec.KineticEnergy, r.FinalKineticEnergy); rel > 1e-9 {
		t.Errorf("kinetic energy: distributed %.12g vs replicated %.12g (rel %g)",
			rec.KineticEnergy, r.FinalKineticEnergy, rel)
	}
	if rel := relDiff(rec.FieldEnergy, r.FinalFieldEnergy); rel > 1e-9 {
		t.Errorf("field energy: distributed %.12g vs replicated %.12g (rel %g)",
			rec.FieldEnergy, r.FinalFieldEnergy, rel)
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}
