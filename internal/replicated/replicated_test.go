package replicated

import (
	"math"
	"testing"

	"picpar/internal/commtest"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
)

func base() pic.Config {
	return pic.Config{
		Grid:         mesh.NewGrid(32, 16),
		P:            4,
		NumParticles: 2048,
		Distribution: particle.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Watchdog:     commtest.Watchdog(),
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ComputeMax <= 0 {
		t.Fatalf("times: %+v", res)
	}
	if res.Overhead < 0 {
		t.Errorf("negative overhead %g", res.Overhead)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1.0001 {
		t.Errorf("efficiency %g", res.Efficiency)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := base()
	cfg.P = 64 // more ranks than mesh rows
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for p > Ny")
	}
	cfg = base()
	cfg.P = -1
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for negative p")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Errorf("non-deterministic: %g vs %g", a.TotalTime, b.TotalTime)
	}
}

func TestUnevenRowPartition(t *testing.T) {
	cfg := base()
	cfg.Grid = mesh.NewGrid(16, 13) // 13 rows over 4 ranks: 4,3,3,3
	cfg.P = 4
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalOpsOverheadGrowsWithP(t *testing.T) {
	// The Lubeck–Faber observation: the global operations on the full mesh
	// make overhead grow with the number of processors even though the
	// per-rank compute shrinks.
	over := map[int]float64{}
	for _, p := range []int{2, 8} {
		cfg := base()
		cfg.Grid = mesh.NewGrid(64, 32)
		cfg.NumParticles = 4096
		cfg.P = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		over[p] = res.Overhead
	}
	if over[8] <= over[2] {
		t.Errorf("replicated overhead should grow with p: p=2 %g, p=8 %g", over[2], over[8])
	}
}

func TestReplicatedMatchesDistributedPhysics(t *testing.T) {
	// Both methods implement the same physics; compare per-rank-count
	// invariant quantities via a distributed run with diagnostics. The
	// replicated code has no diagnostics hook, so instead check that the
	// replicated run's compute totals match the distributed run's particle
	// work within a reasonable factor (same kernels, same charges).
	cfgD := base()
	cfgD.Iterations = 5
	d, err := pic.Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	// Particle-phase compute (scatter+gather+push) should be close: same
	// particle counts and identical per-particle work constants. The
	// distributed run adds mesh-solve work for the same mesh, so totals are
	// comparable within 2x.
	ratio := d.ComputeSum / r.ComputeSum
	if math.Abs(math.Log(ratio)) > math.Log(2) {
		t.Errorf("compute totals diverge: distributed %g, replicated %g", d.ComputeSum, r.ComputeSum)
	}
}
