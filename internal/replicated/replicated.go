// Package replicated implements the replicated-mesh parallel PIC baseline
// of Lubeck and Faber (described in the paper's Section 3): a direct
// Lagrangian code in which every processor holds the entire mesh grid
// array.
//
// Scatter deposits locally into the full-mesh arrays and then element-wise
// sums them over all processors (a global reduction); the field solve is
// partitioned by rows and followed by a global concatenation that restores
// the full mesh everywhere; gather and push are purely local.
//
// The baseline needs no ghost points, no duplicate-removal tables, no
// redistribution — and, exactly as the paper recounts, its global
// operations on the whole mesh dominate execution as the machine grows.
// The experiments use it as the foil for the paper's distributed scheme.
package replicated

import (
	"fmt"

	"picpar/internal/comm"
	"picpar/internal/engine"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/pusher"
)

// Result summarises a replicated-mesh run with the same headline fields as
// the distributed simulation.
type Result struct {
	TotalTime  float64
	ComputeMax float64
	ComputeSum float64
	Overhead   float64
	Efficiency float64
	// FinalFieldEnergy and FinalKineticEnergy are global energies at the
	// end of the run, for cross-implementation physics checks.
	FinalFieldEnergy   float64
	FinalKineticEnergy float64
	Stats              machine.WorldStats
}

// Run executes cfg with the replicated-mesh method. Only the fields shared
// with the distributed simulation are honoured (Grid, P, NumParticles,
// Distribution, Seed, Iterations, Dt, Thermal, Drift, MacroCharge,
// Machine); partitioning options are meaningless here.
func Run(cfg pic.Config) (*Result, error) {
	if cfg.CustomParticles != nil {
		cfg.NumParticles = cfg.CustomParticles.Len()
		if cfg.CustomParticles.Charge != 0 {
			cfg.MacroCharge = cfg.CustomParticles.Charge
		}
	}
	cfg = fillDefaults(cfg)
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if cfg.P <= 0 || cfg.P > cfg.Grid.Ny {
		return nil, fmt.Errorf("replicated: cannot row-partition %d rows over %d ranks", cfg.Grid.Ny, cfg.P)
	}

	res := &Result{}
	w := comm.NewWorld(cfg.P, cfg.Machine)
	if cfg.Watchdog > 0 {
		w.SetWatchdog(cfg.Watchdog)
	}
	defer w.Close()
	ws := w.RunWrapped(cfg.Transport, func(r comm.Transport) { runRank(r, cfg, res) })
	res.Stats = ws
	res.ComputeSum = ws.TotalCompute()
	res.ComputeMax = ws.MaxCompute()
	res.Overhead = res.TotalTime - res.ComputeMax
	if res.TotalTime > 0 {
		res.Efficiency = res.ComputeSum / (float64(cfg.P) * res.TotalTime)
	}
	return res, nil
}

func fillDefaults(cfg pic.Config) pic.Config {
	if cfg.Grid.Nx == 0 {
		cfg.Grid = mesh.NewGrid(64, 32)
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.2
	}
	if cfg.Machine == (machine.Params{}) {
		cfg.Machine = machine.CM5()
	}
	if cfg.Distribution == "" {
		cfg.Distribution = particle.DistUniform
	}
	if cfg.Thermal == 0 {
		cfg.Thermal = 0.3
	}
	if cfg.MacroCharge == 0 {
		cfg.MacroCharge = -0.02
	}
	return cfg
}

// fullMesh is one rank's replica of every field on the whole grid.
type fullMesh struct {
	g               mesh.Grid
	Ex, Ey, Ez      []float64
	Bx, By, Bz      []float64
	Jx, Jy, Jz, Rho []float64
}

func newFullMesh(g mesh.Grid) *fullMesh {
	m := g.NumPoints()
	return &fullMesh{
		g:  g,
		Ex: make([]float64, m), Ey: make([]float64, m), Ez: make([]float64, m),
		Bx: make([]float64, m), By: make([]float64, m), Bz: make([]float64, m),
		Jx: make([]float64, m), Jy: make([]float64, m), Jz: make([]float64, m),
		Rho: make([]float64, m),
	}
}

const tagInit comm.Tag = comm.TagUser + 300

func runRank(r comm.Transport, cfg pic.Config, res *Result) {
	g := cfg.Grid
	m := g.NumPoints()
	fm := newFullMesh(g)

	// Deal particles: rank 0 generates, everyone gets a fixed (direct
	// Lagrangian) share. No alignment machinery — that is the point.
	r.SetPhase(machine.PhaseRedistribute)
	var store *particle.Store
	if r.Rank() == 0 {
		var global *particle.Store
		if cfg.CustomParticles != nil {
			global = cfg.CustomParticles.Clone()
		} else {
			var err error
			global, err = particle.Generate(particle.Config{
				N: cfg.NumParticles, Lx: g.Lx, Ly: g.Ly,
				Distribution: cfg.Distribution, Seed: cfg.Seed,
				Thermal: cfg.Thermal, Drift: cfg.Drift,
				Charge: cfg.MacroCharge, Mass: 1,
			})
			if err != nil {
				panic(err)
			}
		}
		for dst := r.Size() - 1; dst >= 0; dst-- {
			lo, hi := mesh.BlockRange(global.Len(), r.Size(), dst)
			if dst == 0 {
				store = particle.NewStore(hi-lo, global.Charge, global.Mass)
				for i := lo; i < hi; i++ {
					store.AppendFrom(global, i)
				}
				continue
			}
			comm.SendFloat64s(r, dst, tagInit, global.MarshalRange(nil, lo, hi))
		}
	} else {
		wire := comm.RecvFloat64s(r, 0, tagInit)
		store = particle.NewStore(len(wire)/particle.WireFloats, cfg.MacroCharge, 1)
		if err := store.AppendWire(wire); err != nil {
			panic(err)
		}
	}
	comm.Barrier(r)
	start := r.Clock().Now()

	// The field solve is row-partitioned; rows [j0, j1) belong to this rank.
	j0, j1 := mesh.BlockRange(g.Ny, r.Size(), r.Rank())

	// The baseline is an alternate composition of the same engine-layer
	// pipeline the distributed simulation uses: three phases, no trigger
	// (no redistribution exists here — that is the point).
	st := &replState{r: r, g: g, fm: fm, store: store, j0: j0, j1: j1, dt: cfg.Dt}
	pipe := engine.New(replScatter{st}, replFieldSolve{st}, replGatherPush{st})
	for iter := 0; iter < cfg.Iterations; iter++ {
		pipe.Step(iter)
		r.SetPhase(machine.PhaseCommSetup)
		comm.Barrier(r)
	}

	total := comm.ExposeMaxFloat64(r, r.Clock().Now()-start)
	kinetic := comm.ExposeSumFloat64(r, store.KineticEnergy())
	if r.Rank() == 0 {
		res.TotalTime = total
		res.FinalKineticEnergy = kinetic
		fieldE := 0.0
		for i := 0; i < m; i++ {
			fieldE += fm.Ex[i]*fm.Ex[i] + fm.Ey[i]*fm.Ey[i] + fm.Ez[i]*fm.Ez[i] +
				fm.Bx[i]*fm.Bx[i] + fm.By[i]*fm.By[i] + fm.Bz[i]*fm.Bz[i]
		}
		res.FinalFieldEnergy = fieldE / 2
	}
}

// replState bundles one rank's baseline state for the phase values.
type replState struct {
	r      comm.Transport
	g      mesh.Grid
	fm     *fullMesh
	store  *particle.Store
	j0, j1 int
	dt     float64
}

// replScatter is the replicated-mesh scatter as an engine.Phase.
type replScatter struct{ st *replState }

func (p replScatter) Name() string { return "scatter" }
func (p replScatter) Run(int) {
	scatterReplicated(p.st.r, p.st.g, p.st.fm, p.st.store)
}

// replFieldSolve is the row-partitioned field solve as an engine.Phase.
type replFieldSolve struct{ st *replState }

func (p replFieldSolve) Name() string { return "fieldsolve" }
func (p replFieldSolve) Run(int) {
	fieldSolveReplicated(p.st.r, p.st.g, p.st.fm, p.st.j0, p.st.j1, p.st.dt)
}

// replGatherPush is the local gather + push as an engine.Phase.
type replGatherPush struct{ st *replState }

func (p replGatherPush) Name() string { return "gatherpush" }
func (p replGatherPush) Run(int) {
	gatherPushReplicated(p.st.r, p.st.g, p.st.fm, p.st.store, p.st.dt)
}

// scatterReplicated deposits into the local full-mesh copy and element-wise
// sums J and Rho over all processors — the global operation Lubeck and
// Faber identified as the scalability bottleneck.
func scatterReplicated(r comm.Transport, g mesh.Grid, fm *fullMesh, s *particle.Store) {
	r.SetPhase(machine.PhaseScatter)
	for i := range fm.Jx {
		fm.Jx[i], fm.Jy[i], fm.Jz[i], fm.Rho[i] = 0, 0, 0, 0
	}
	for i := 0; i < s.Len(); i++ {
		w := pusher.Weights(g, s.X[i], s.Y[i])
		gamma := s.Gamma(i)
		vx, vy, vz := s.Px[i]/gamma, s.Py[i]/gamma, s.Pz[i]/gamma
		for k, off := range pusher.VertexOffsets {
			gid := g.PointIndex(w.CX+off[0], w.CY+off[1])
			wq := w.W[k] * s.Charge
			fm.Jx[gid] += wq * vx
			fm.Jy[gid] += wq * vy
			fm.Jz[gid] += wq * vz
			fm.Rho[gid] += wq
		}
	}
	r.Compute(s.Len() * 4 * pusher.ScatterWorkPerVertex)

	// Global element-wise sum of the source arrays (4·m values).
	// The reduction result is a broadcast body shared by all ranks, so
	// copy it into owned storage before anyone mutates their replica.
	copy(fm.Jx, comm.AllreduceSumFloat64s(r, fm.Jx))
	copy(fm.Jy, comm.AllreduceSumFloat64s(r, fm.Jy))
	copy(fm.Jz, comm.AllreduceSumFloat64s(r, fm.Jz))
	copy(fm.Rho, comm.AllreduceSumFloat64s(r, fm.Rho))
}

// fieldSolveWork mirrors the distributed solver's per-point cost.
const fieldSolveWork = 24

// fieldSolveReplicated updates rows [j0, j1) of the replica with the same
// central-difference scheme as the distributed solver, then globally
// concatenates the six field components so every rank again holds the full
// mesh.
func fieldSolveReplicated(r comm.Transport, g mesh.Grid, fm *fullMesh, j0, j1 int, dt float64) {
	r.SetPhase(machine.PhaseFieldSolve)
	nx := g.Nx
	rows := j1 - j0
	// Allgather needs equal block sizes; pad every rank's buffer to the
	// largest row count (the tail stays zero and is ignored on unpack).
	maxRows := (g.Ny + r.Size() - 1) / r.Size()
	// Update E on owned rows from the (globally consistent) B replica.
	eBuf := make([]float64, 3*maxRows*nx)
	for j := j0; j < j1; j++ {
		for i := 0; i < nx; i++ {
			c := j*nx + i
			xm, xp := g.PointIndex(i-1, j), g.PointIndex(i+1, j)
			ym, yp := g.PointIndex(i, j-1), g.PointIndex(i, j+1)
			dBzDy := (fm.Bz[yp] - fm.Bz[ym]) / 2
			dBzDx := (fm.Bz[xp] - fm.Bz[xm]) / 2
			dByDx := (fm.By[xp] - fm.By[xm]) / 2
			dBxDy := (fm.Bx[yp] - fm.Bx[ym]) / 2
			o := ((j-j0)*nx + i) * 3
			eBuf[o] = fm.Ex[c] + dt*(dBzDy-fm.Jx[c])
			eBuf[o+1] = fm.Ey[c] + dt*(-dBzDx-fm.Jy[c])
			eBuf[o+2] = fm.Ez[c] + dt*(dByDx-dBxDy-fm.Jz[c])
		}
	}
	r.Compute(rows * nx * fieldSolveWork)
	// Global concatenation of the new E (3·m values), then install.
	allE := comm.AllgatherFloat64s(r, eBuf)
	installRows3(g, r.Size(), maxRows, allE, fm.Ex, fm.Ey, fm.Ez)

	bBuf := make([]float64, 3*maxRows*nx)
	for j := j0; j < j1; j++ {
		for i := 0; i < nx; i++ {
			c := j*nx + i
			xm, xp := g.PointIndex(i-1, j), g.PointIndex(i+1, j)
			ym, yp := g.PointIndex(i, j-1), g.PointIndex(i, j+1)
			dEzDy := (fm.Ez[yp] - fm.Ez[ym]) / 2
			dEzDx := (fm.Ez[xp] - fm.Ez[xm]) / 2
			dEyDx := (fm.Ey[xp] - fm.Ey[xm]) / 2
			dExDy := (fm.Ex[yp] - fm.Ex[ym]) / 2
			o := ((j-j0)*nx + i) * 3
			bBuf[o] = fm.Bx[c] + dt*(-dEzDy)
			bBuf[o+1] = fm.By[c] + dt*(dEzDx)
			bBuf[o+2] = fm.Bz[c] + dt*(-(dEyDx - dExDy))
		}
	}
	r.Compute(rows * nx * fieldSolveWork)
	allB := comm.AllgatherFloat64s(r, bBuf)
	installRows3(g, r.Size(), maxRows, allB, fm.Bx, fm.By, fm.Bz)
}

// installRows3 unpacks an allgathered per-rank row-block buffer of 3
// interleaved components (padded to maxRows rows per rank) into the replica
// arrays.
func installRows3(g mesh.Grid, p, maxRows int, all []float64, c0, c1, c2 []float64) {
	nx := g.Nx
	block := 3 * maxRows * nx
	for rank := 0; rank < p; rank++ {
		j0, j1 := mesh.BlockRange(g.Ny, p, rank)
		buf := all[rank*block:]
		for j := j0; j < j1; j++ {
			for i := 0; i < nx; i++ {
				o := ((j-j0)*nx + i) * 3
				c := j*nx + i
				c0[c] = buf[o]
				c1[c] = buf[o+1]
				c2[c] = buf[o+2]
			}
		}
	}
}

// gatherPushReplicated interpolates from the local replica (no
// communication) and pushes.
func gatherPushReplicated(r comm.Transport, g mesh.Grid, fm *fullMesh, s *particle.Store, dt float64) {
	r.SetPhase(machine.PhaseGather)
	for i := 0; i < s.Len(); i++ {
		w := pusher.Weights(g, s.X[i], s.Y[i])
		var ex, ey, ez, bx, by, bz float64
		for k, off := range pusher.VertexOffsets {
			gid := g.PointIndex(w.CX+off[0], w.CY+off[1])
			wk := w.W[k]
			ex += wk * fm.Ex[gid]
			ey += wk * fm.Ey[gid]
			ez += wk * fm.Ez[gid]
			bx += wk * fm.Bx[gid]
			by += wk * fm.By[gid]
			bz += wk * fm.Bz[gid]
		}
		pusher.BorisPush(s, i, ex, ey, ez, bx, by, bz, dt)
	}
	r.Compute(s.Len() * 4 * pusher.GatherWorkPerVertex)

	r.SetPhase(machine.PhasePush)
	for i := 0; i < s.Len(); i++ {
		pusher.Move(s, i, g, dt)
	}
	r.Compute(s.Len() * pusher.PushWorkPerParticle)
}
