package radix

import (
	"math/rand"
	"testing"

	"picpar/internal/par"
	"picpar/internal/raceflag"
)

// randomPairs builds n (hi, lo, idx) triples with deliberately narrow key
// ranges (only the low bytes vary, like SFC keys), including duplicates so
// stability is exercised.
func randomPairs(rng *rand.Rand, n int) ([]uint64, []uint64, []int32) {
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	idx := make([]int32, n)
	for i := range hi {
		hi[i] = Bits64(float64(rng.Intn(1 << 18)))
		lo[i] = Bits64(float64(rng.Intn(n)))
		idx[i] = int32(i)
	}
	return hi, lo, idx
}

func clone64(s []uint64) []uint64 { return append([]uint64(nil), s...) }
func clone32(s []int32) []int32   { return append([]int32(nil), s...) }

// TestSortPairsParMatchesSequential: for worker counts 2, 3 and 8 and sizes
// straddling the parallel cutoff, the parallel sort's output — contents AND
// permutation — is bit-identical to the sequential sort's.
func TestSortPairsParMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, workers := range []int{2, 3, 8} {
		p := par.New(workers)
		var sc, scPar Scratch
		for _, n := range []int{0, 1, 47, parCutoff - 1, parCutoff, parCutoff + 1, 3*parCutoff + 17} {
			hi, lo, idx := randomPairs(rng, n)
			wantHi, wantLo, wantIdx := SortPairs(clone64(hi), clone64(lo), clone32(idx), &sc)
			gotHi, gotLo, gotIdx := SortPairsPar(hi, lo, idx, &scPar, p)
			if len(gotHi) != n {
				t.Fatalf("W=%d n=%d: parallel sort returned %d elements", workers, n, len(gotHi))
			}
			for i := 0; i < n; i++ {
				if gotHi[i] != wantHi[i] || gotLo[i] != wantLo[i] || gotIdx[i] != wantIdx[i] {
					t.Fatalf("W=%d n=%d: element %d = (%d,%d,%d), want (%d,%d,%d)",
						workers, n, i, gotHi[i], gotLo[i], gotIdx[i], wantHi[i], wantLo[i], wantIdx[i])
				}
			}
		}
		p.Close()
	}
}

// TestSortKeysIndexParMatchesSequential is the keys-only counterpart.
func TestSortKeysIndexParMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, workers := range []int{2, 3, 8} {
		p := par.New(workers)
		var sc, scPar Scratch
		for _, n := range []int{0, 1, 47, parCutoff, 2*parCutoff + 5} {
			keys := make([]uint64, n)
			idx := make([]int32, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(1 << 16)) // duplicates guaranteed
				idx[i] = int32(i)
			}
			wantKeys, wantIdx := SortKeysIndex(clone64(keys), clone32(idx), &sc)
			gotKeys, gotIdx := SortKeysIndexPar(keys, idx, &scPar, p)
			for i := 0; i < n; i++ {
				if gotKeys[i] != wantKeys[i] || gotIdx[i] != wantIdx[i] {
					t.Fatalf("W=%d n=%d: element %d = (%d,%d), want (%d,%d)",
						workers, n, i, gotKeys[i], gotIdx[i], wantKeys[i], wantIdx[i])
				}
			}
		}
		p.Close()
	}
}

// TestSortPairsParSteadyStateAllocs: once the scratch is warm, the parallel
// sort allocates nothing — same discipline as the sequential path.
func TestSortPairsParSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	rng := rand.New(rand.NewSource(44))
	p := par.New(4)
	defer p.Close()
	var sc Scratch
	n := 2 * parCutoff
	hi, lo, idx := randomPairs(rng, n)
	refHi, refLo, refIdx := clone64(hi), clone64(lo), clone32(idx)
	// The sort ping-pongs with sc's buffers, so each call adopts the
	// returned slices (the documented contract) before reshuffling.
	hi, lo, idx = SortPairsPar(hi, lo, idx, &sc, p) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		copy(hi, refHi)
		copy(lo, refLo)
		copy(idx, refIdx)
		hi, lo, idx = SortPairsPar(hi, lo, idx, &sc, p)
	})
	if allocs != 0 {
		t.Errorf("parallel SortPairs steady state: %v allocs/op, want 0", allocs)
	}
}
