package radix

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bitsOrderCases cover the tricky regions of the float64→uint64 order map:
// signed zeros, denormals on both sides, infinities, and ordinary magnitudes.
var bitsOrderCases = []float64{
	math.Inf(-1), -math.MaxFloat64, -1e10, -2, -1, -0.5,
	-1e-300, -5e-324, // negative denormal boundary
	math.Copysign(0, -1), 0, 5e-324, 1e-300, // ±0 and positive denormals
	0.5, 1, 2, 1e10, math.MaxFloat64, math.Inf(1),
}

func TestBits64Order(t *testing.T) {
	for i, a := range bitsOrderCases {
		for j, b := range bitsOrderCases {
			wantLess := a < b
			gotLess := Bits64(a) < Bits64(b)
			if wantLess != gotLess {
				t.Errorf("Bits64 order of (%g, %g) [cases %d,%d]: got less=%v want %v",
					a, b, i, j, gotLess, wantLess)
			}
			if (a == b) != (Bits64(a) == Bits64(b)) {
				t.Errorf("Bits64 equality of (%g, %g): bits equal=%v, floats equal=%v",
					a, b, Bits64(a) == Bits64(b), a == b)
			}
		}
	}
	if Bits64(math.Copysign(0, -1)) != Bits64(0) {
		t.Error("Bits64(-0) != Bits64(+0)")
	}
}

// pairRef is the comparison-sort reference for SortPairs.
type pairRef struct {
	hi, lo []uint64
	idx    []int32
}

func (p *pairRef) Len() int { return len(p.hi) }
func (p *pairRef) Less(i, j int) bool {
	if p.hi[i] != p.hi[j] {
		return p.hi[i] < p.hi[j]
	}
	return p.lo[i] < p.lo[j]
}
func (p *pairRef) Swap(i, j int) {
	p.hi[i], p.hi[j] = p.hi[j], p.hi[i]
	p.lo[i], p.lo[j] = p.lo[j], p.lo[i]
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
}

func TestSortPairsMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sc Scratch
	// Sizes straddle the insertion cutoff; masks force heavy duplication so
	// both tie-breaking and the constant-byte skip are exercised.
	for _, n := range []int{0, 1, 2, 17, insertionCutoff - 1, insertionCutoff, 100, 5000} {
		for _, mask := range []uint64{0xf, 0xffff, ^uint64(0)} {
			hi := make([]uint64, n)
			lo := make([]uint64, n)
			idx := make([]int32, n)
			for i := range hi {
				hi[i] = rng.Uint64() & mask
				lo[i] = rng.Uint64() & mask
				idx[i] = int32(i)
			}
			ref := &pairRef{
				hi:  append([]uint64(nil), hi...),
				lo:  append([]uint64(nil), lo...),
				idx: append([]int32(nil), idx...),
			}
			sort.Stable(ref)
			gh, gl, gi := SortPairs(hi, lo, idx, &sc)
			for i := 0; i < n; i++ {
				if gh[i] != ref.hi[i] || gl[i] != ref.lo[i] || gi[i] != ref.idx[i] {
					t.Fatalf("n=%d mask=%x: pos %d got (%d,%d,%d) want (%d,%d,%d)",
						n, mask, i, gh[i], gl[i], gi[i], ref.hi[i], ref.lo[i], ref.idx[i])
				}
			}
		}
	}
}

func TestSortKeysIndexStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sc Scratch
	for _, n := range []int{0, 1, 2, insertionCutoff - 1, insertionCutoff, 333, 4096} {
		keys := make([]uint64, n)
		idx := make([]int32, n)
		for i := range keys {
			keys[i] = rng.Uint64() & 0xff // few distinct keys → long equal runs
			idx[i] = int32(i)
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		gk, gi := SortKeysIndex(keys, idx, &sc)
		for i := 0; i < n; i++ {
			if gk[i] != want[i] {
				t.Fatalf("n=%d pos %d: key %d want %d", n, i, gk[i], want[i])
			}
			// Stability: equal keys keep ascending original indices.
			if i > 0 && gk[i] == gk[i-1] && gi[i] <= gi[i-1] {
				t.Fatalf("n=%d pos %d: unstable order of equal keys (idx %d after %d)",
					n, i, gi[i], gi[i-1])
			}
		}
	}
}

func TestSortPairsSkipsConstantWords(t *testing.T) {
	// All-equal input must come back untouched regardless of size.
	n := 1000
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	idx := make([]int32, n)
	for i := range hi {
		hi[i], lo[i], idx[i] = 42, 7, int32(i)
	}
	gh, gl, gi := SortPairs(hi, lo, idx, nil)
	for i := 0; i < n; i++ {
		if gh[i] != 42 || gl[i] != 7 || gi[i] != int32(i) {
			t.Fatalf("pos %d: got (%d,%d,%d) want (42,7,%d)", i, gh[i], gl[i], gi[i], i)
		}
	}
}
