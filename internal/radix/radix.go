// Package radix implements the LSD (least-significant-digit) radix sorts
// behind the particle hot paths: byte-at-a-time counting passes over uint64
// key words, with constant bytes skipped entirely. On the integral SFC keys
// and particle ids this code sorts in practice, only the low two or three
// bytes of each word vary, so a sort costs a handful of linear passes
// instead of the n·log n interface-dispatched comparisons of sort.Sort.
//
// All entry points take an optional *Scratch so steady-state callers reuse
// the ping-pong buffers and allocate nothing.
package radix

import "math"

// Scratch holds the ping-pong destination arrays of a radix sort. The zero
// value is ready to use; buffers grow on demand and are retained across
// calls.
type Scratch struct {
	hi2  []uint64
	lo2  []uint64
	idx2 []int32
}

func (sc *Scratch) grow(n int) {
	if cap(sc.hi2) < n {
		sc.hi2 = make([]uint64, n)
		sc.lo2 = make([]uint64, n)
		sc.idx2 = make([]int32, n)
	}
	sc.hi2 = sc.hi2[:n]
	sc.lo2 = sc.lo2[:n]
	sc.idx2 = sc.idx2[:n]
}

// insertionCutoff is the length below which a branchy insertion sort beats
// the histogram passes.
const insertionCutoff = 48

// Bits64 maps a float64 onto a uint64 whose unsigned order equals the
// float's < order for all non-NaN values. Negative zero is normalised to
// positive zero first, so values that compare equal under == map to equal
// bits. (NaN maps above +Inf or below −Inf depending on its sign bit and is
// outside this package's ordering guarantees.)
func Bits64(f float64) uint64 {
	b := math.Float64bits(f)
	if b == 1<<63 { // -0 → +0, keeping radix order ≡ comparison order
		b = 0
	}
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// SortPairs sorts the parallel arrays (hi, lo, idx) ascending by the
// composite key (hi, lo) — hi is the primary word, lo breaks ties — and
// returns the slices holding the sorted data. The returned slices may be
// sc's internal buffers rather than the inputs (LSD ping-pong), so callers
// must use the return values. The sort is stable with respect to equal
// (hi, lo) pairs.
func SortPairs(hi, lo []uint64, idx []int32, sc *Scratch) ([]uint64, []uint64, []int32) {
	n := len(hi)
	if n < 2 {
		return hi, lo, idx
	}
	if n < insertionCutoff {
		insertionPairs(hi, lo, idx)
		return hi, lo, idx
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	// One scan finds the varying bytes of each word; constant bytes cannot
	// change the order and their passes are skipped.
	var difLo, difHi uint64
	l0, h0 := lo[0], hi[0]
	for i := 1; i < n; i++ {
		difLo |= lo[i] ^ l0
		difHi |= hi[i] ^ h0
	}
	hi2, lo2, idx2 := sc.hi2, sc.lo2, sc.idx2
	// LSD order: all lo bytes first, then all hi bytes; stability of each
	// counting pass makes the composite (hi, lo) order correct.
	for pass := 0; pass < 16; pass++ {
		shift := uint(8 * (pass & 7))
		var src []uint64
		if pass < 8 {
			if (difLo>>shift)&0xff == 0 {
				continue
			}
			src = lo
		} else {
			if (difHi>>shift)&0xff == 0 {
				continue
			}
			src = hi
		}
		var count [256]int32
		for _, v := range src {
			count[uint8(v>>shift)]++
		}
		sum := int32(0)
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := uint8(src[i] >> shift)
			pos := count[d]
			count[d] = pos + 1
			hi2[pos] = hi[i]
			lo2[pos] = lo[i]
			idx2[pos] = idx[i]
		}
		hi, hi2 = hi2, hi
		lo, lo2 = lo2, lo
		idx, idx2 = idx2, idx
	}
	sc.hi2, sc.lo2, sc.idx2 = hi2, lo2, idx2
	return hi, lo, idx
}

// SortKeysIndex stable-sorts keys ascending, carrying idx along, and
// returns the slices holding the sorted data (possibly sc's buffers).
// Because the counting passes are stable, entries with equal keys keep
// their input order — initialising idx to 0..n−1 therefore yields the
// (key, original index) order.
func SortKeysIndex(keys []uint64, idx []int32, sc *Scratch) ([]uint64, []int32) {
	n := len(keys)
	if n < 2 {
		return keys, idx
	}
	if n < insertionCutoff {
		insertionKeys(keys, idx)
		return keys, idx
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	var dif uint64
	k0 := keys[0]
	for i := 1; i < n; i++ {
		dif |= keys[i] ^ k0
	}
	keys2, idx2 := sc.hi2, sc.idx2
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		if (dif>>shift)&0xff == 0 {
			continue
		}
		var count [256]int32
		for _, v := range keys {
			count[uint8(v>>shift)]++
		}
		sum := int32(0)
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := uint8(keys[i] >> shift)
			pos := count[d]
			count[d] = pos + 1
			keys2[pos] = keys[i]
			idx2[pos] = idx[i]
		}
		keys, keys2 = keys2, keys
		idx, idx2 = idx2, idx
	}
	sc.hi2, sc.idx2 = keys2, idx2
	return keys, idx
}

// insertionPairs sorts short (hi, lo, idx) triples in place by (hi, lo).
// Stable: strict comparisons never move equal composite keys past each
// other.
func insertionPairs(hi, lo []uint64, idx []int32) {
	for i := 1; i < len(hi); i++ {
		h, l, x := hi[i], lo[i], idx[i]
		j := i - 1
		for j >= 0 && (hi[j] > h || (hi[j] == h && lo[j] > l)) {
			hi[j+1], lo[j+1], idx[j+1] = hi[j], lo[j], idx[j]
			j--
		}
		hi[j+1], lo[j+1], idx[j+1] = h, l, x
	}
}

// insertionKeys stable-sorts short (key, idx) pairs in place by key.
func insertionKeys(keys []uint64, idx []int32) {
	for i := 1; i < len(keys); i++ {
		k, x := keys[i], idx[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], idx[j+1] = keys[j], idx[j]
			j--
		}
		keys[j+1], idx[j+1] = k, x
	}
}
