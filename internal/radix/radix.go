// Package radix implements the LSD (least-significant-digit) radix sorts
// behind the particle hot paths: byte-at-a-time counting passes over uint64
// key words, with constant bytes skipped entirely. On the integral SFC keys
// and particle ids this code sorts in practice, only the low two or three
// bytes of each word vary, so a sort costs a handful of linear passes
// instead of the n·log n interface-dispatched comparisons of sort.Sort.
//
// All entry points take an optional *Scratch so steady-state callers reuse
// the ping-pong buffers and allocate nothing.
package radix

import (
	"math"

	"picpar/internal/par"
)

// Scratch holds the ping-pong destination arrays of a radix sort, plus the
// per-worker histograms of the parallel variants. The zero value is ready
// to use; buffers grow on demand and are retained across calls.
type Scratch struct {
	hi2  []uint64
	lo2  []uint64
	idx2 []int32

	counts [][256]int32 // per-worker digit histograms (parallel passes)
	dif    []uint64     // per-worker varying-byte accumulators (2 per worker)
	pass   parPass      // reusable task so steady-state calls allocate nothing
}

func (sc *Scratch) grow(n int) {
	if cap(sc.hi2) < n {
		sc.hi2 = make([]uint64, n)
		sc.lo2 = make([]uint64, n)
		sc.idx2 = make([]int32, n)
	}
	sc.hi2 = sc.hi2[:n]
	sc.lo2 = sc.lo2[:n]
	sc.idx2 = sc.idx2[:n]
}

func (sc *Scratch) growPar(workers int) {
	if len(sc.counts) < workers {
		sc.counts = make([][256]int32, workers)
		sc.dif = make([]uint64, 2*workers)
	}
}

// insertionCutoff is the length below which a branchy insertion sort beats
// the histogram passes.
const insertionCutoff = 48

// Bits64 maps a float64 onto a uint64 whose unsigned order equals the
// float's < order for all non-NaN values. Negative zero is normalised to
// positive zero first, so values that compare equal under == map to equal
// bits. (NaN maps above +Inf or below −Inf depending on its sign bit and is
// outside this package's ordering guarantees.)
func Bits64(f float64) uint64 {
	b := math.Float64bits(f)
	if b == 1<<63 { // -0 → +0, keeping radix order ≡ comparison order
		b = 0
	}
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// SortPairs sorts the parallel arrays (hi, lo, idx) ascending by the
// composite key (hi, lo) — hi is the primary word, lo breaks ties — and
// returns the slices holding the sorted data. The returned slices may be
// sc's internal buffers rather than the inputs (LSD ping-pong), so callers
// must use the return values. The sort is stable with respect to equal
// (hi, lo) pairs.
func SortPairs(hi, lo []uint64, idx []int32, sc *Scratch) ([]uint64, []uint64, []int32) {
	n := len(hi)
	if n < 2 {
		return hi, lo, idx
	}
	if n < insertionCutoff {
		insertionPairs(hi, lo, idx)
		return hi, lo, idx
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	// One scan finds the varying bytes of each word; constant bytes cannot
	// change the order and their passes are skipped.
	var difLo, difHi uint64
	l0, h0 := lo[0], hi[0]
	for i := 1; i < n; i++ {
		difLo |= lo[i] ^ l0
		difHi |= hi[i] ^ h0
	}
	hi2, lo2, idx2 := sc.hi2, sc.lo2, sc.idx2
	// LSD order: all lo bytes first, then all hi bytes; stability of each
	// counting pass makes the composite (hi, lo) order correct.
	for pass := 0; pass < 16; pass++ {
		shift := uint(8 * (pass & 7))
		var src []uint64
		if pass < 8 {
			if (difLo>>shift)&0xff == 0 {
				continue
			}
			src = lo
		} else {
			if (difHi>>shift)&0xff == 0 {
				continue
			}
			src = hi
		}
		var count [256]int32
		for _, v := range src {
			count[uint8(v>>shift)]++
		}
		sum := int32(0)
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := uint8(src[i] >> shift)
			pos := count[d]
			count[d] = pos + 1
			hi2[pos] = hi[i]
			lo2[pos] = lo[i]
			idx2[pos] = idx[i]
		}
		hi, hi2 = hi2, hi
		lo, lo2 = lo2, lo
		idx, idx2 = idx2, idx
	}
	sc.hi2, sc.lo2, sc.idx2 = hi2, lo2, idx2
	return hi, lo, idx
}

// SortKeysIndex stable-sorts keys ascending, carrying idx along, and
// returns the slices holding the sorted data (possibly sc's buffers).
// Because the counting passes are stable, entries with equal keys keep
// their input order — initialising idx to 0..n−1 therefore yields the
// (key, original index) order.
func SortKeysIndex(keys []uint64, idx []int32, sc *Scratch) ([]uint64, []int32) {
	n := len(keys)
	if n < 2 {
		return keys, idx
	}
	if n < insertionCutoff {
		insertionKeys(keys, idx)
		return keys, idx
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	var dif uint64
	k0 := keys[0]
	for i := 1; i < n; i++ {
		dif |= keys[i] ^ k0
	}
	keys2, idx2 := sc.hi2, sc.idx2
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		if (dif>>shift)&0xff == 0 {
			continue
		}
		var count [256]int32
		for _, v := range keys {
			count[uint8(v>>shift)]++
		}
		sum := int32(0)
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := uint8(keys[i] >> shift)
			pos := count[d]
			count[d] = pos + 1
			keys2[pos] = keys[i]
			idx2[pos] = idx[i]
		}
		keys, keys2 = keys2, keys
		idx, idx2 = idx2, idx
	}
	sc.hi2, sc.idx2 = keys2, idx2
	return keys, idx
}

// insertionPairs sorts short (hi, lo, idx) triples in place by (hi, lo).
// Stable: strict comparisons never move equal composite keys past each
// other.
func insertionPairs(hi, lo []uint64, idx []int32) {
	for i := 1; i < len(hi); i++ {
		h, l, x := hi[i], lo[i], idx[i]
		j := i - 1
		for j >= 0 && (hi[j] > h || (hi[j] == h && lo[j] > l)) {
			hi[j+1], lo[j+1], idx[j+1] = hi[j], lo[j], idx[j]
			j--
		}
		hi[j+1], lo[j+1], idx[j+1] = h, l, x
	}
}

// parCutoff is the length below which the parallel passes' coordination
// overhead exceeds the histogram work; shorter inputs use the sequential
// sort (which is bit-identical anyway).
const parCutoff = 4096

// parPass phases.
const (
	passDif = iota
	passHistogram
	passScatter
)

// parPass is the reusable par.Task implementing one phase of one counting
// pass: the varying-byte scan, the per-worker histogram, or the stable
// scatter. src is the word array supplying the current digit; the scatter
// phase additionally moves (hiS, loS, idxS) → (hiD, loD, idxD). hiS/hiD are
// nil in keys-only mode.
type parPass struct {
	sc    *Scratch
	phase int
	shift uint
	src   []uint64
	hiS   []uint64
	loS   []uint64
	idxS  []int32
	hiD   []uint64
	loD   []uint64
	idxD  []int32
}

func (t *parPass) Work(w, lo, hi int) {
	switch t.phase {
	case passDif:
		// OR-accumulate the varying bytes over this worker's range; bitwise
		// OR is associative, so the cross-worker merge order cannot matter.
		var dl, dh uint64
		l0 := t.loS[0]
		var h0 uint64
		if t.hiS != nil {
			h0 = t.hiS[0]
		}
		for i := lo; i < hi; i++ {
			dl |= t.loS[i] ^ l0
			if t.hiS != nil {
				dh |= t.hiS[i] ^ h0
			}
		}
		t.sc.dif[2*w], t.sc.dif[2*w+1] = dl, dh
	case passHistogram:
		c := &t.sc.counts[w]
		*c = [256]int32{}
		for i := lo; i < hi; i++ {
			c[uint8(t.src[i]>>t.shift)]++
		}
	case passScatter:
		// c[d] was prefix-summed in (digit, worker) order, so this worker's
		// writes land after every lower worker's same-digit entries —
		// preserving input order within each digit, exactly like the
		// sequential stable pass.
		c := &t.sc.counts[w]
		for i := lo; i < hi; i++ {
			d := uint8(t.src[i] >> t.shift)
			pos := c[d]
			c[d] = pos + 1
			t.loD[pos] = t.loS[i]
			t.idxD[pos] = t.idxS[i]
			if t.hiS != nil {
				t.hiD[pos] = t.hiS[i]
			}
		}
	}
}

// prefixCounts turns the per-worker histograms into global starting
// offsets: for each digit in ascending order, each worker's slot begins
// where the previous worker's same-digit entries end. This (digit, worker)
// enumeration is what makes the parallel pass reproduce the sequential
// stable permutation exactly.
func (sc *Scratch) prefixCounts(workers int) {
	sum := int32(0)
	for d := 0; d < 256; d++ {
		for w := 0; w < workers; w++ {
			c := sc.counts[w][d]
			sc.counts[w][d] = sum
			sum += c
		}
	}
}

// SortPairsPar is SortPairs parallelised over p's workers: per-worker
// histograms, (digit, worker)-order prefix sums, and a stable per-worker
// scatter. The output — sorted contents and permutation — is bit-identical
// to SortPairs for every pool size (each counting pass produces the exact
// same stable permutation), so callers may mix worker counts freely. Small
// inputs and 1-worker pools fall through to the sequential sort.
func SortPairsPar(hi, lo []uint64, idx []int32, sc *Scratch, p *par.Pool) ([]uint64, []uint64, []int32) {
	n := len(hi)
	if p == nil || p.Workers() < 2 || n < parCutoff {
		return SortPairs(hi, lo, idx, sc)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	workers := p.Workers()
	sc.growPar(workers)

	t := &sc.pass
	*t = parPass{sc: sc, phase: passDif, hiS: hi, loS: lo}
	p.Run(n, t)
	var difLo, difHi uint64
	for w := 0; w < workers; w++ {
		difLo |= sc.dif[2*w]
		difHi |= sc.dif[2*w+1]
	}

	hi2, lo2, idx2 := sc.hi2, sc.lo2, sc.idx2
	for pass := 0; pass < 16; pass++ {
		shift := uint(8 * (pass & 7))
		var src []uint64
		if pass < 8 {
			if (difLo>>shift)&0xff == 0 {
				continue
			}
			src = lo
		} else {
			if (difHi>>shift)&0xff == 0 {
				continue
			}
			src = hi
		}
		*t = parPass{sc: sc, phase: passHistogram, shift: shift, src: src}
		p.Run(n, t)
		sc.prefixCounts(workers)
		*t = parPass{sc: sc, phase: passScatter, shift: shift, src: src,
			hiS: hi, loS: lo, idxS: idx, hiD: hi2, loD: lo2, idxD: idx2}
		p.Run(n, t)
		hi, hi2 = hi2, hi
		lo, lo2 = lo2, lo
		idx, idx2 = idx2, idx
	}
	*t = parPass{}
	sc.hi2, sc.lo2, sc.idx2 = hi2, lo2, idx2
	return hi, lo, idx
}

// SortKeysIndexPar is SortKeysIndex parallelised over p's workers, with the
// same bit-identical-output guarantee as SortPairsPar.
func SortKeysIndexPar(keys []uint64, idx []int32, sc *Scratch, p *par.Pool) ([]uint64, []int32) {
	n := len(keys)
	if p == nil || p.Workers() < 2 || n < parCutoff {
		return SortKeysIndex(keys, idx, sc)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	workers := p.Workers()
	sc.growPar(workers)

	t := &sc.pass
	*t = parPass{sc: sc, phase: passDif, loS: keys}
	p.Run(n, t)
	var dif uint64
	for w := 0; w < workers; w++ {
		dif |= sc.dif[2*w]
	}

	keys2, idx2 := sc.hi2, sc.idx2
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		if (dif>>shift)&0xff == 0 {
			continue
		}
		*t = parPass{sc: sc, phase: passHistogram, shift: shift, src: keys}
		p.Run(n, t)
		sc.prefixCounts(workers)
		*t = parPass{sc: sc, phase: passScatter, shift: shift, src: keys,
			loS: keys, idxS: idx, loD: keys2, idxD: idx2}
		p.Run(n, t)
		keys, keys2 = keys2, keys
		idx, idx2 = idx2, idx
	}
	*t = parPass{}
	sc.hi2, sc.idx2 = keys2, idx2
	return keys, idx
}

// insertionKeys stable-sorts short (key, idx) pairs in place by key.
func insertionKeys(keys []uint64, idx []int32) {
	for i := 1; i < len(keys); i++ {
		k, x := keys[i], idx[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], idx[j+1] = keys[j], idx[j]
			j--
		}
		keys[j+1], idx[j+1] = k, x
	}
}
