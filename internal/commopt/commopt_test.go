package commopt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tables(m, hint int) map[string]DupTable {
	return map[string]DupTable{
		"direct": NewDirectTable(m),
		"hash":   NewHashTable(hint),
	}
}

func TestSlotAssignsDenseFirstSeenOrder(t *testing.T) {
	for name, tab := range tables(100, 4) {
		ids := []int{42, 7, 42, 99, 7, 0, 42}
		wantSlots := []int{0, 1, 0, 2, 1, 3, 0}
		for i, gid := range ids {
			if got := tab.Slot(gid); got != wantSlots[i] {
				t.Errorf("%s: Slot(%d) call %d = %d, want %d", name, gid, i, got, wantSlots[i])
			}
		}
		if tab.Len() != 4 {
			t.Errorf("%s: Len = %d, want 4", name, tab.Len())
		}
		wantKeys := []int32{42, 7, 99, 0}
		for i, k := range tab.Keys() {
			if k != wantKeys[i] {
				t.Errorf("%s: Keys[%d] = %d, want %d", name, i, k, wantKeys[i])
			}
		}
	}
}

func TestLookup(t *testing.T) {
	for name, tab := range tables(50, 2) {
		tab.Slot(10)
		tab.Slot(20)
		if got := tab.Lookup(20); got != 1 {
			t.Errorf("%s: Lookup(20) = %d, want 1", name, got)
		}
		if got := tab.Lookup(30); got != -1 {
			t.Errorf("%s: Lookup(30) = %d, want -1", name, got)
		}
	}
}

func TestReset(t *testing.T) {
	for name, tab := range tables(50, 2) {
		tab.Slot(10)
		tab.Slot(20)
		tab.Reset()
		if tab.Len() != 0 {
			t.Errorf("%s: Len after reset = %d", name, tab.Len())
		}
		if tab.Lookup(10) != -1 {
			t.Errorf("%s: stale entry after reset", name)
		}
		// Table is reusable.
		if got := tab.Slot(20); got != 0 {
			t.Errorf("%s: first slot after reset = %d", name, got)
		}
	}
}

func TestHashTableGrowth(t *testing.T) {
	tab := NewHashTable(1) // tiny: force several grows
	const n = 10000
	for i := 0; i < n; i++ {
		gid := i * 7
		if got := tab.Slot(gid); got != i {
			t.Fatalf("Slot(%d) = %d, want %d", gid, got, i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d", tab.Len())
	}
	// All still findable after growth.
	for i := 0; i < n; i++ {
		if got := tab.Lookup(i * 7); got != i {
			t.Fatalf("post-grow Lookup(%d) = %d, want %d", i*7, got, i)
		}
	}
}

func TestHashAndDirectAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1000
		dt := NewDirectTable(m)
		ht := NewHashTable(8)
		for k := 0; k < 500; k++ {
			gid := rng.Intn(m)
			if dt.Slot(gid) != ht.Slot(gid) {
				return false
			}
		}
		if dt.Len() != ht.Len() {
			return false
		}
		keys1, keys2 := dt.Keys(), ht.Keys()
		for i := range keys1 {
			if keys1[i] != keys2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewTable(t *testing.T) {
	if tab, err := NewTable(TableDirect, 10, 2); err != nil || tab.CostPerOp() != 1 {
		t.Errorf("direct: %v %v", tab, err)
	}
	if tab, err := NewTable(TableHash, 10, 2); err != nil || tab.CostPerOp() != 3 {
		t.Errorf("hash: %v %v", tab, err)
	}
	if _, err := NewTable("btree", 10, 2); err == nil {
		t.Error("expected error for unknown table kind")
	}
}

func TestGroupByOwnerCoalesces(t *testing.T) {
	tab := NewDirectTable(100)
	// Owner: gid / 10 (ranks 0..9), self = 3.
	for _, gid := range []int{51, 52, 71, 53, 12} {
		tab.Slot(gid)
	}
	reg := GroupByOwner(tab, 3, 10, func(gid int) int { return gid / 10 })
	if reg.NumMessages() != 3 {
		t.Fatalf("NumMessages = %d, want 3 (ranks 5,7,1)", reg.NumMessages())
	}
	if reg.TotalPoints() != 5 {
		t.Errorf("TotalPoints = %d, want 5", reg.TotalPoints())
	}
	// Destinations appear in rank order with their gids grouped.
	wantDest := []int{1, 5, 7}
	for i, d := range reg.Dest {
		if d != wantDest[i] {
			t.Errorf("Dest[%d] = %d, want %d", i, d, wantDest[i])
		}
	}
	// Slots correspond to the same positions as gids.
	for k := range reg.Dest {
		for i := range reg.Gids[k] {
			slot := reg.Slots[k][i]
			if tab.Keys()[slot] != reg.Gids[k][i] {
				t.Errorf("slot/gid mismatch at dest %d pos %d", reg.Dest[k], i)
			}
		}
	}
}

func TestGroupByOwnerPanicsOnSelf(t *testing.T) {
	tab := NewDirectTable(10)
	tab.Slot(5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for self-owned ghost point")
		}
	}()
	GroupByOwner(tab, 0, 2, func(gid int) int { return 0 })
}

func TestDirectTableResetIsSparse(t *testing.T) {
	// Reset must not scan the whole mesh: after touching k entries, only
	// those are cleared. (White-box: verify correctness, not timing.)
	tab := NewDirectTable(1 << 20)
	for i := 0; i < 100; i++ {
		tab.Slot(i * 997)
	}
	tab.Reset()
	for i := 0; i < 100; i++ {
		if tab.Lookup(i*997) != -1 {
			t.Fatalf("entry %d survived reset", i)
		}
	}
}

func BenchmarkDirectTableSlot(b *testing.B) {
	tab := NewDirectTable(1 << 16)
	rng := rand.New(rand.NewSource(1))
	gids := make([]int, 4096)
	for i := range gids {
		gids[i] = rng.Intn(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Slot(gids[i&4095])
		if i&4095 == 4095 {
			tab.Reset()
		}
	}
}

func BenchmarkHashTableSlot(b *testing.B) {
	tab := NewHashTable(4096)
	rng := rand.New(rand.NewSource(1))
	gids := make([]int, 4096)
	for i := range gids {
		gids[i] = rng.Intn(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Slot(gids[i&4095])
		if i&4095 == 4095 {
			tab.Reset()
		}
	}
}
