// Package commopt implements the communication optimisations of the paper's
// Section 3.2 for indirectly indexed arrays:
//
//   - Removal of duplicated accesses: the same off-processor grid point is
//     touched by many particles, but only one copy travels the network. Two
//     interchangeable structures assign accumulation slots to global ids — a
//     direct address table (O(1) lookups, memory proportional to the mesh)
//     and a hash table (memory proportional to the ghost set, extra search
//     cost).
//   - Communication coalescing: all ghost data destined for the same owner
//     rank is collected into a single message (see Registry.GroupByOwner).
package commopt

import "fmt"

// DupTable assigns dense accumulation slots to sparse global grid-point
// ids, deduplicating repeated accesses. Slots are numbered in first-seen
// order.
type DupTable interface {
	// Slot returns the slot for gid, allocating the next free slot the
	// first time gid is seen.
	Slot(gid int) int
	// Lookup returns the slot for gid, or −1 if gid was never seen.
	Lookup(gid int) int
	// Len returns the number of distinct ids seen.
	Len() int
	// Keys returns the gid of every slot, indexed by slot.
	Keys() []int32
	// Reset forgets all ids, keeping allocated memory where possible.
	Reset()
	// CostPerOp is the modelled δ units per Slot/Lookup call, used for the
	// hash-vs-direct ablation.
	CostPerOp() int
}

// DirectTable is a direct address table: one entry per global mesh grid
// point. Constant-time operations; memory proportional to the whole mesh
// (the trade-off the paper describes).
type DirectTable struct {
	slot []int32 // gid -> slot+1, 0 means absent
	keys []int32
}

// NewDirectTable creates a table for a mesh of m grid points.
func NewDirectTable(m int) *DirectTable {
	return &DirectTable{slot: make([]int32, m)}
}

// Slot implements DupTable.
func (t *DirectTable) Slot(gid int) int {
	if s := t.slot[gid]; s != 0 {
		return int(s - 1)
	}
	s := len(t.keys)
	t.keys = append(t.keys, int32(gid))
	t.slot[gid] = int32(s + 1)
	return s
}

// Lookup implements DupTable.
func (t *DirectTable) Lookup(gid int) int { return int(t.slot[gid]) - 1 }

// Len implements DupTable.
func (t *DirectTable) Len() int { return len(t.keys) }

// Keys implements DupTable.
func (t *DirectTable) Keys() []int32 { return t.keys }

// Reset implements DupTable. It clears only the touched entries, so the
// cost is proportional to the ghost set, not the mesh.
func (t *DirectTable) Reset() {
	for _, gid := range t.keys {
		t.slot[gid] = 0
	}
	t.keys = t.keys[:0]
}

// CostPerOp implements DupTable: one address computation.
func (t *DirectTable) CostPerOp() int { return 1 }

// HashTable is an open-addressing (linear probing) hash table from gid to
// slot. Memory is proportional to the number of distinct ghost points.
type HashTable struct {
	keys    []int32 // slot -> gid
	buckets []int32 // hash bucket -> slot+1, 0 means empty
	mask    uint32
}

// NewHashTable creates a hash table with capacity for about n distinct ids
// before growing.
func NewHashTable(n int) *HashTable {
	cap := 16
	for cap < n*2 {
		cap <<= 1
	}
	return &HashTable{buckets: make([]int32, cap), mask: uint32(cap - 1)}
}

func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Slot implements DupTable.
func (t *HashTable) Slot(gid int) int {
	for {
		b := hash32(uint32(gid)) & t.mask
		for {
			s := t.buckets[b]
			if s == 0 {
				break
			}
			if t.keys[s-1] == int32(gid) {
				return int(s - 1)
			}
			b = (b + 1) & t.mask
		}
		if len(t.keys)*10 < len(t.buckets)*7 { // load factor < 0.7
			t.keys = append(t.keys, int32(gid))
			t.buckets[b] = int32(len(t.keys))
			return len(t.keys) - 1
		}
		t.grow()
	}
}

// Lookup implements DupTable.
func (t *HashTable) Lookup(gid int) int {
	b := hash32(uint32(gid)) & t.mask
	for {
		s := t.buckets[b]
		if s == 0 {
			return -1
		}
		if t.keys[s-1] == int32(gid) {
			return int(s - 1)
		}
		b = (b + 1) & t.mask
	}
}

func (t *HashTable) grow() {
	old := t.buckets
	t.buckets = make([]int32, len(old)*2)
	t.mask = uint32(len(t.buckets) - 1)
	for s, gid := range t.keys {
		b := hash32(uint32(gid)) & t.mask
		for t.buckets[b] != 0 {
			b = (b + 1) & t.mask
		}
		t.buckets[b] = int32(s + 1)
	}
}

// Len implements DupTable.
func (t *HashTable) Len() int { return len(t.keys) }

// Keys implements DupTable.
func (t *HashTable) Keys() []int32 { return t.keys }

// Reset implements DupTable.
func (t *HashTable) Reset() {
	t.keys = t.keys[:0]
	for i := range t.buckets {
		t.buckets[i] = 0
	}
}

// CostPerOp implements DupTable: hashing plus expected probes.
func (t *HashTable) CostPerOp() int { return 3 }

// Table kinds accepted by NewTable.
const (
	TableDirect = "direct"
	TableHash   = "hash"
)

// NewTable constructs a duplicate-removal table of the named kind for a
// mesh of m points, expecting about ghostHint distinct entries.
func NewTable(kind string, m, ghostHint int) (DupTable, error) {
	switch kind {
	case TableDirect:
		return NewDirectTable(m), nil
	case TableHash:
		return NewHashTable(ghostHint), nil
	default:
		return nil, fmt.Errorf("commopt: unknown table kind %q", kind)
	}
}

// Registry groups the slots of a duplicate-removal table by the rank that
// owns each grid point, realising communication coalescing: exactly one
// message per destination that appears. A Registry may be rebuilt in place
// every iteration via Build; all internal lists are reused, so a
// steady-state rebuild allocates nothing once the ghost set's shape has
// stabilised.
type Registry struct {
	// Dest[k] is the k-th destination rank with any traffic.
	Dest []int
	// Gids[k] lists the global point ids going to Dest[k].
	Gids [][]int32
	// Slots[k] lists the table slot of each gid in Gids[k], same order.
	Slots [][]int32

	// Per-rank grouping scratch, retained across Build calls. Gids/Slots
	// alias these lists, so a Registry's contents are valid only until the
	// next Build on the same Registry.
	byRank     [][]int32
	slotByRank [][]int32
}

// Build regroups the table's current contents in place using owner(gid) to
// locate each point's owning rank. Points owned by self must not be in the
// table (callers accumulate those directly) and cause a panic, as they
// indicate a misrouted access.
func (reg *Registry) Build(t DupTable, self int, p int, owner func(gid int) int) {
	if cap(reg.byRank) < p {
		reg.byRank = make([][]int32, p)
		reg.slotByRank = make([][]int32, p)
	}
	reg.byRank = reg.byRank[:p]
	reg.slotByRank = reg.slotByRank[:p]
	for d := 0; d < p; d++ {
		reg.byRank[d] = reg.byRank[d][:0]
		reg.slotByRank[d] = reg.slotByRank[d][:0]
	}
	for slot, gid := range t.Keys() {
		o := owner(int(gid))
		if o == self {
			panic(fmt.Sprintf("commopt: self-owned point %d in ghost table of rank %d", gid, self))
		}
		reg.byRank[o] = append(reg.byRank[o], gid)
		reg.slotByRank[o] = append(reg.slotByRank[o], int32(slot))
	}
	reg.Dest = reg.Dest[:0]
	reg.Gids = reg.Gids[:0]
	reg.Slots = reg.Slots[:0]
	for d := 0; d < p; d++ {
		if len(reg.byRank[d]) == 0 {
			continue
		}
		reg.Dest = append(reg.Dest, d)
		reg.Gids = append(reg.Gids, reg.byRank[d])
		reg.Slots = append(reg.Slots, reg.slotByRank[d])
	}
}

// GroupByOwner builds a fresh Registry; see Registry.Build for the
// reusable form.
func GroupByOwner(t DupTable, self int, p int, owner func(gid int) int) *Registry {
	reg := &Registry{}
	reg.Build(t, self, p, owner)
	return reg
}

// NumMessages returns the number of destinations with traffic (messages
// sent in the scatter phase after coalescing).
func (r *Registry) NumMessages() int { return len(r.Dest) }

// TotalPoints returns the total ghost points across destinations.
func (r *Registry) TotalPoints() int {
	n := 0
	for _, g := range r.Gids {
		n += len(g)
	}
	return n
}
