package pic

import (
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"picpar/internal/ckpt"
	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
)

// TestCheckpointingIsFree: enabling checkpoint writes changes nothing the
// simulated world can observe — TotalTime, the fingerprint and every
// iteration record are byte-identical to a run without checkpointing,
// because shard writes are pure real-world I/O with no clock charges.
func TestCheckpointingIsFree(t *testing.T) {
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 3
	ck, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck.TotalTime != plain.TotalTime {
		t.Errorf("TotalTime %.7f with checkpointing, %.7f without", ck.TotalTime, plain.TotalTime)
	}
	if ck.Fingerprint != plain.Fingerprint {
		t.Errorf("fingerprint %016x with checkpointing, %016x without", ck.Fingerprint, plain.Fingerprint)
	}
	if !reflect.DeepEqual(ck.Records, plain.Records) {
		t.Error("iteration records differ with checkpointing enabled")
	}
	if plain.Fingerprint == 0 {
		t.Error("fingerprint not populated")
	}
	// And the epochs really landed: 10 iterations, cadence 3 → 3, 6, 9,
	// minus retention (default keeps 2 complete plus newer partials).
	if got := ckpt.LatestComplete(cfg.CheckpointDir, 4); got != 9 {
		t.Errorf("latest complete epoch %d, want 9", got)
	}
}

// runRecovered runs cfg with Recover enabled against dir and returns the
// result.
func runRecovered(t *testing.T, cfg Config, dir string) *Result {
	t.Helper()
	cfg.Recover = true
	cfg.CheckpointDir = dir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRecoverResumesFromLatestEpoch: a recover-run over a directory left
// by a completed run resumes from the newest complete epoch — it replays
// only the tail iterations yet reproduces the full run bit for bit.
func TestRecoverResumesFromLatestEpoch(t *testing.T) {
	dir := t.TempDir()
	cfg := base()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	cfg.CheckpointKeep = 100 // keep everything: the epoch set proves resumption
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 iterations, cadence 4 → epochs {4, 8}; the recover-run resumes at
	// 8 and writes with cadence 3, so only epoch 9 can appear. A run that
	// silently restarted from scratch would add epochs 3 and 6.
	cfg2 := cfg
	cfg2.CheckpointEvery = 3
	got := runRecovered(t, cfg2, dir)
	if got.TotalTime != ref.TotalTime || got.Fingerprint != ref.Fingerprint {
		t.Errorf("recovered run differs: total %.7f/%016x, want %.7f/%016x",
			got.TotalTime, got.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
	if !reflect.DeepEqual(got.Records, ref.Records) {
		t.Error("recovered run's records differ from the reference")
	}
	if epochs := ckpt.Epochs(dir); !reflect.DeepEqual(epochs, []int{4, 8, 9}) {
		t.Errorf("epochs after recover-run: %v, want [4 8 9] (resume at 8, one new at 9)", epochs)
	}
}

// TestRecoverFallsBackPastCorruptEpoch: a bit-flipped shard disqualifies
// its epoch; recovery agrees on the previous complete one and still
// reproduces the reference bit for bit.
func TestRecoverFallsBackPastCorruptEpoch(t *testing.T) {
	dir := t.TempDir()
	cfg := base()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	cfg.CheckpointKeep = 100
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := ckpt.ShardPath(dir, 8, 2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x04
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ckpt.LatestComplete(dir, 4); got != 4 {
		t.Fatalf("latest complete epoch after corruption %d, want 4", got)
	}
	got := runRecovered(t, cfg, dir)
	if got.TotalTime != ref.TotalTime || got.Fingerprint != ref.Fingerprint {
		t.Errorf("recovery from epoch 4 differs: total %.7f/%016x, want %.7f/%016x",
			got.TotalTime, got.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
}

// TestRecoverWithoutEpochsIsFreshStart: Recover over an empty directory
// degrades to a normal run, byte-identically — the one epoch-agreement
// Expose it performs is wiped from the clock and stats before the
// simulation starts.
func TestRecoverWithoutEpochsIsFreshStart(t *testing.T) {
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.CheckpointEvery = 4
	got := runRecovered(t, cfg, t.TempDir())
	if got.TotalTime != plain.TotalTime || got.Fingerprint != plain.Fingerprint {
		t.Errorf("fresh recover-run differs: total %.7f/%016x, want %.7f/%016x",
			got.TotalTime, got.Fingerprint, plain.TotalTime, plain.Fingerprint)
	}
}

// killOnce is a transport decorator that panics a *DeliveryError out of
// one rank's Nth send, once per process lifetime — the in-process stand-in
// for kill -9 (the rank's endpoint tears down abruptly, peers see EOF).
type killOnce struct {
	comm.Transport
	sends *atomic.Int64
	fired *atomic.Bool
	after int64
}

func (k killOnce) Send(dst int, tag comm.Tag, body any, nbytes int) {
	if k.sends.Add(1) == k.after && k.fired.CompareAndSwap(false, true) {
		panic(&comm.DeliveryError{Rank: k.Rank(), Peer: dst, Tag: tag, Reason: "chaos: injected rank death"})
	}
	k.Transport.Send(dst, tag, body, nbytes)
}

// TestElasticRecoveryByteIdentical is the in-Go chaos gate for the whole
// recovery stack: a 4-rank world over real loopback TCP runs under
// NetRankElastic with checkpointing on; rank 2 dies mid-run (injected
// delivery failure, abrupt teardown). Every rank parks, re-registers
// through the rendezvous, rolls back to the agreed epoch and continues —
// and the final fingerprint and TotalTime match an undisturbed run
// exactly. (The multi-process version with a real kill -9 is
// scripts/netsmoke.sh.)
func TestElasticRecoveryByteIdentical(t *testing.T) {
	ref, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	cfg := base()
	cfg.Recover = true
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 3
	var res *Result
	var mu sync.Mutex
	var attempts atomic.Int64
	fired := &atomic.Bool{}
	wrap := func(tr comm.Transport) comm.Transport {
		if tr.Rank() != 2 {
			return tr
		}
		return killOnce{Transport: tr, sends: &atomic.Int64{}, fired: fired, after: 40}
	}
	tmpl := commtest.NetTemplate(machine.CM5())
	_, errs := comm.LaunchLoopbackElastic(tmpl, 4, wrap, func(tr comm.Transport) {
		attempts.Add(1)
		r, rerr := RunRank(tr, cfg)
		if rerr != nil {
			panic(rerr)
		}
		if r != nil {
			mu.Lock()
			res = r
			mu.Unlock()
		}
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", rank, err)
		}
	}
	if !fired.Load() {
		t.Fatal("chaos injection never fired — the run was undisturbed")
	}
	if got := attempts.Load(); got <= 4 {
		t.Errorf("only %d rank attempts — no rank actually rejoined", got)
	}
	if res == nil {
		t.Fatal("rank 0 produced no result")
	}
	if res.TotalTime != ref.TotalTime || res.Fingerprint != ref.Fingerprint {
		t.Errorf("recovered world differs: total %.7f/%016x, want %.7f/%016x",
			res.TotalTime, res.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
}
