// The cost-attribution half of strategy selection: every iteration's
// measured per-particle phase costs are booked onto the cells the
// particles occupy (machine.CostLedger), the decayed estimates are
// synchronised across ranks on demand, and the Adaptive policy's chooser
// scores the candidate layouts from them — the paper's Table 1 run as a
// live decision procedure instead of an a-priori classification.

package pic

import (
	"picpar/internal/comm"
	"picpar/internal/machine"
	"picpar/internal/policy"
	"picpar/internal/pusher"
)

// ghostVertexWork approximates the δ units one off-processor footprint
// vertex adds beyond the duplicate-table operation: its share of the ghost
// marshalling, owner-side accumulation and gather reply.
const ghostVertexWork = 6

// observeCosts books one iteration's per-particle phase costs — scatter
// and gather/push, computation plus ghost communication — onto the cells
// the particles currently occupy, weighted by each particle's modelled
// work: base phase work plus the off-processor ghost operations its
// footprint incurs. That weighting is what lets the ledger tell expensive
// cells (depositing across a block boundary) from merely populous ones.
// Pure local bookkeeping on the out-of-band ledger: nothing is charged to
// the simulated machine, so the default pipeline's timings are untouched.
func (st *rankState) observeCosts(diff *machine.Stats) {
	sc := &diff.Phases[machine.PhaseScatter]
	ga := &diff.Phases[machine.PhaseGather]
	pu := &diff.Phases[machine.PhasePush]
	cost := sc.ComputeTime + sc.CommTime +
		ga.ComputeTime + ga.CommTime +
		pu.ComputeTime + pu.CommTime
	s := st.store
	nv := st.ge.NumVertices()
	base := nv*(pusher.ScatterWorkPerVertex+pusher.GatherWorkPerVertex) + pusher.PushWorkPerParticle
	offCost := st.table.CostPerOp() + ghostVertexWork
	fp := &st.fp
	for i := 0; i < s.Len(); i++ {
		st.ge.Footprint(s, i, fp)
		off := 0
		for k := 0; k < fp.N; k++ {
			if st.fields.Slot(int(fp.Gid[k])) < 0 {
				off++
			}
		}
		st.led.ObserveN(int(st.ge.CellKey(s, i)), base+off*offCost)
	}
	st.led.Commit(cost)
}

// syncWeights synchronises the cost ledgers: every rank's decayed per-cell
// (cost, count) estimates are allgathered and summed in rank order, so all
// ranks derive bit-identical global estimates. The exchange is charged to
// the caller's current phase — it only ever runs on the cost-weighted or
// adaptive paths, never under the default strategies.
func (st *rankState) syncWeights() {
	nc := st.led.Cells()
	st.ledgerBuf = st.led.Export(st.ledgerBuf[:0])
	all := comm.AllgatherFloat64s(st.r, st.ledgerBuf)
	if cap(st.gW) < nc {
		st.gW = make([]float64, nc)
		st.gN = make([]float64, nc)
	}
	st.gW, st.gN = st.gW[:nc], st.gN[:nc]
	for c := range st.gW {
		st.gW[c], st.gN[c] = 0, 0
	}
	stride := 2 * nc
	for k := 0; k < st.r.Size(); k++ {
		base := k * stride
		for c := 0; c < nc; c++ {
			st.gW[c] += all[base+c]
			st.gN[c] += all[base+nc+c]
		}
	}
}

// particleWeightFn synchronises the ledgers and returns the per-particle
// weight function driving the cost-weighted split: a particle in cell c
// weighs the cell's estimated cost per particle. Cells without
// observations fall back to the global mean so they still count one
// particle's worth of work. With no observations at all it returns nil,
// which the weighted balance treats as the equal-count split.
func (st *rankState) particleWeightFn() func(key float64) float64 {
	st.syncWeights()
	totW, totN := 0.0, 0.0
	for c := range st.gW {
		totW += st.gW[c]
		totN += st.gN[c]
	}
	if totW <= 0 || totN <= 0 {
		return nil
	}
	mean := totW / totN
	nc := len(st.gW)
	if cap(st.pw) < nc {
		st.pw = make([]float64, nc)
	}
	st.pw = st.pw[:nc]
	for c := range st.pw {
		if st.gN[c] > 1e-12 && st.gW[c] > 0 {
			st.pw[c] = st.gW[c] / st.gN[c]
		} else {
			st.pw[c] = mean
		}
	}
	pw := st.pw
	return func(key float64) float64 {
		c := int(key)
		if c < 0 || c >= len(pw) {
			return mean
		}
		return pw[c]
	}
}

// strategyHysteresis is the margin a candidate layout's estimated max
// per-rank cost must undercut the current one's by before the adaptive
// chooser switches — scores drift with the decayed estimates, and
// rebuilding the layout is never free. Flapping between the Lagrangian
// splits is structurally impossible (the equal-count score is a max over
// chunks and so never drops below the cost-weighted score, the mean), so
// the margin mainly keeps noise from selecting Eulerian migration.
const strategyHysteresis = 0.98

// chooseStrategy is the Adaptive policy's chooser: it synchronises the
// cost ledgers and compares the candidate layouts' estimated max per-rank
// iteration cost. Every rank computes identical scores from the identical
// world-summed estimates, so the choice needs no extra agreement round.
// The ledger exchange is charged to the redistribution phase: deciding how
// to redistribute is part of redistributing.
func (st *rankState) chooseStrategy(iter int, current policy.Strategy) policy.Strategy {
	r := st.r
	prev := r.Stats().CurrentPhase()
	r.SetPhase(machine.PhaseRedistribute)
	defer r.SetPhase(prev)

	st.syncWeights()
	totW := 0.0
	for _, w := range st.gW {
		totW += w
	}
	if totW <= 0 {
		return current
	}
	p := r.Size()
	cands := [...]policy.Strategy{policy.EqualCount, policy.CostWeighted, policy.Eulerian}
	scores := [...]float64{
		splitCost(st.gW, st.gN, p), // equal-count: cuts at equal particle counts
		totW / float64(p),          // cost-weighted: cuts at equal cumulative cost
		st.eulerianCost(),          // Eulerian: the mesh's BLOCK owners as-is
	}
	cur := totW // a non-candidate current scores worst-case
	for i := range cands {
		if cands[i] == current {
			cur = scores[i]
		}
	}
	best, bestScore := current, cur
	for i := range cands {
		if scores[i] < bestScore {
			best, bestScore = cands[i], scores[i]
		}
	}
	if bestScore < strategyHysteresis*cur {
		return best
	}
	return current
}

// splitCost estimates the max per-rank cost of the equal-count split: the
// cumulative cost, piecewise linear in cumulative particle count along the
// SFC cell order, evaluated at the p equal-count cut targets.
func splitCost(gW, gN []float64, p int) float64 {
	totN, totW := 0.0, 0.0
	for c := range gN {
		totN += gN[c]
		totW += gW[c]
	}
	if totN <= 0 || totW <= 0 {
		return 0
	}
	maxChunk, prevW := 0.0, 0.0
	cumN, cumW := 0.0, 0.0
	c := 0
	for k := 1; k < p; k++ {
		target := totN * float64(k) / float64(p)
		for c < len(gN) && cumN+gN[c] < target {
			cumN += gN[c]
			cumW += gW[c]
			c++
		}
		wAt := cumW
		if c < len(gN) && gN[c] > 0 {
			wAt += (target - cumN) * gW[c] / gN[c]
		}
		if chunk := wAt - prevW; chunk > maxChunk {
			maxChunk = chunk
		}
		prevW = wAt
	}
	if chunk := totW - prevW; chunk > maxChunk {
		maxChunk = chunk
	}
	return maxChunk
}

// eulerianCost estimates the max per-rank cost of the Eulerian layout:
// every cell's estimated cost lands on the mesh rank owning it.
func (st *rankState) eulerianCost() float64 {
	loads := make([]float64, st.r.Size())
	for c := range st.gW {
		if o := st.ge.CellOwner(uint64(c)); o >= 0 && o < len(loads) {
			loads[o] += st.gW[c]
		}
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
