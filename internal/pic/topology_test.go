package pic

import (
	"errors"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/policy"
)

// allTopologies are the Config.Topology values the golden matrix covers on
// the goroutine backend (hierarchical included — it has no flat TCP form).
var allTopologies = []string{
	"", TopologyFullMesh, TopologyNeighborSparse, TopologySystolicRing,
	TopologyHierarchical, TopologyHierarchical + ":2",
}

// TestGoldenAcrossTopologies2D pins that the communication topology is
// invisible to the physics and the simulated clock: every topology
// reproduces the recorded 2-D golden TotalTime and the byte-exact final
// state fingerprint of the default full-mesh run.
func TestGoldenAcrossTopologies2D(t *testing.T) {
	const recorded = 1.1831223
	var wantFP uint64
	for _, topo := range allTopologies {
		cfg := base()
		cfg.Topology = topo
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		if diff := res.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
			t.Errorf("topology %q: TotalTime %.12g, recorded %.12g", topo, res.TotalTime, recorded)
		}
		if topo == "" {
			wantFP = res.Fingerprint
			continue
		}
		if res.Fingerprint != wantFP {
			t.Errorf("topology %q: fingerprint %016x, full mesh %016x", topo, res.Fingerprint, wantFP)
		}
	}
}

// TestGoldenAcrossTopologies3D is the 3-D golden matrix (P=8, where the
// neighbor-sparse and ring descriptors are genuinely sparser than the
// mesh's skeleton at P=4 would be).
func TestGoldenAcrossTopologies3D(t *testing.T) {
	const recorded = 1.5221545
	var wantFP uint64
	for _, topo := range allTopologies {
		cfg := base3()
		cfg.Topology = topo
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		if diff := res.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
			t.Errorf("topology %q: TotalTime %.12g, recorded %.12g", topo, res.TotalTime, recorded)
		}
		if topo == "" {
			wantFP = res.Fingerprint
			continue
		}
		if res.Fingerprint != wantFP {
			t.Errorf("topology %q: fingerprint %016x, full mesh %016x", topo, res.Fingerprint, wantFP)
		}
	}
}

// TestRedistributionAcrossTopologies exercises the steady-state dataEx
// protocols (neighbor-only, systolic) in the timed loop: a periodic policy
// redistributes every 3 iterations, and the final physics fingerprint must
// match the full-mesh run under every topology. Simulated times may differ
// here — the protocols have different message schedules — but the particle
// population may not.
func TestRedistributionAcrossTopologies(t *testing.T) {
	run := func(topo string) *Result {
		cfg := base()
		cfg.Topology = topo
		cfg.Policy = policy.NewPeriodic(3)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		if res.NumRedistributions == 0 {
			t.Fatalf("topology %q: periodic policy never redistributed", topo)
		}
		return res
	}
	want := run("")
	for _, topo := range allTopologies[1:] {
		res := run(topo)
		if res.Fingerprint != want.Fingerprint {
			t.Errorf("topology %q: fingerprint %016x, full mesh %016x", topo, res.Fingerprint, want.Fingerprint)
		}
		if res.FinalParticleCount != want.FinalParticleCount {
			t.Errorf("topology %q: %d particles, want %d", topo, res.FinalParticleCount, want.FinalParticleCount)
		}
	}
}

// TestRedistributionSparseStencilP8 is the regression test for the far-
// traffic relay: at P=8 on the 2-D grid the 2×4 processor arrangement is
// genuinely sparse (ranks two rows apart own no link), and the periodic
// cost-weighted repartition decouples the particle partition from the mesh
// blocks, so scatter/gather and redistribution all carry payloads between
// unlinked ranks. Those payloads must ride the systolic relay — and the
// physics must still match the full mesh bit for bit.
func TestRedistributionSparseStencilP8(t *testing.T) {
	run := func(topo string) *Result {
		cfg := base()
		cfg.P = 8
		cfg.Topology = topo
		cfg.Policy = policy.NewPeriodic(3)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		if res.NumRedistributions == 0 {
			t.Fatalf("topology %q: periodic policy never redistributed", topo)
		}
		return res
	}
	// The premise: the sparse descriptor must not degenerate to a mesh here,
	// or the relay path is untested.
	cfg := base()
	cfg.P = 8
	cfg.Topology = TopologyNeighborSparse
	tp, err := TopologyFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.IsFullMesh() {
		t.Fatal("P=8 2-D neighbor-sparse descriptor is a full mesh; the far-traffic path is not exercised")
	}
	want := run("")
	for _, topo := range []string{TopologyNeighborSparse, TopologySystolicRing, TopologyHierarchical} {
		res := run(topo)
		if res.Fingerprint != want.Fingerprint {
			t.Errorf("topology %q: fingerprint %016x, full mesh %016x", topo, res.Fingerprint, want.Fingerprint)
		}
		if res.FinalParticleCount != want.FinalParticleCount {
			t.Errorf("topology %q: %d particles, want %d", topo, res.FinalParticleCount, want.FinalParticleCount)
		}
	}
}

// TestEulerianAcrossTopologies runs the per-iteration migration mode under
// each flat topology: migrations move particles one cell at most, so the
// neighbor-only protocol must carry them and the physics must agree.
func TestEulerianAcrossTopologies(t *testing.T) {
	run := func(topo string) *Result {
		cfg := base()
		cfg.Eulerian = true
		cfg.Topology = topo
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		return res
	}
	want := run("")
	for _, topo := range allTopologies[1:] {
		res := run(topo)
		if res.Fingerprint != want.Fingerprint {
			t.Errorf("topology %q: fingerprint %016x, full mesh %016x", topo, res.Fingerprint, want.Fingerprint)
		}
	}
}

// TestChaosAcrossTopologies is the chaos soak over every topology: the
// Tracer∘Reliable∘Faulty stack wraps each rank's transport unchanged —
// hierarchical gateways included — and the physics fingerprint must match
// the unperturbed run of the same topology, since every injected fault is
// recovered below the protocol layer.
func TestChaosAcrossTopologies(t *testing.T) {
	plan := comm.FaultPlan{Seed: 0xD15EA5E, DropProb: 0.05, MaxDropAttempts: 3,
		DupProb: 0.05, ReorderProb: 0.05}
	for _, topo := range allTopologies {
		cfg := base()
		cfg.Topology = topo
		cfg.Policy = policy.NewPeriodic(3)
		clean, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q clean: %v", topo, err)
		}
		faulty := comm.NewFaulty(plan)
		rel := comm.NewReliable(comm.ReliableConfig{})
		tracer := comm.NewTracer()
		cfg.Transport = func(tr comm.Transport) comm.Transport {
			return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
		}
		perturbed, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q chaos: %v", topo, err)
		}
		if c := faulty.Counts(); c.Drops+c.Dups+c.Reorders == 0 {
			t.Errorf("topology %q: fault plan injected nothing", topo)
		}
		if tracer.Total().MsgsSent == 0 {
			t.Errorf("topology %q: tracer observed no traffic", topo)
		}
		if perturbed.Fingerprint != clean.Fingerprint {
			t.Errorf("topology %q: chaos fingerprint %016x, clean %016x",
				topo, perturbed.Fingerprint, clean.Fingerprint)
		}
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec  string
		kind  string
		hosts int
		ok    bool
	}{
		{"", TopologyFullMesh, 0, true},
		{"full-mesh", TopologyFullMesh, 0, true},
		{"neighbor-sparse", TopologyNeighborSparse, 0, true},
		{"systolic-ring", TopologySystolicRing, 0, true},
		{"hierarchical", TopologyHierarchical, 2, true}, // auto: largest divisor of 8 ≤ √8
		{"hierarchical:4", TopologyHierarchical, 4, true},
		{"hierarchical:3", "", 0, false}, // 3 does not divide 8
		{"hierarchical:0", "", 0, false},
		{"hierarchical:x", "", 0, false},
		{"torus", "", 0, false},
	}
	for _, c := range cases {
		kind, hosts, err := parseTopology(c.spec, 8)
		if c.ok != (err == nil) {
			t.Errorf("parseTopology(%q): err %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && (kind != c.kind || hosts != c.hosts) {
			t.Errorf("parseTopology(%q) = (%s, %d), want (%s, %d)", c.spec, kind, hosts, c.kind, c.hosts)
		}
	}
}

func TestAutoHosts(t *testing.T) {
	for _, c := range []struct{ p, want int }{
		{1, 1}, {2, 1}, {4, 2}, {6, 2}, {8, 2}, {9, 3}, {12, 3}, {16, 4}, {7, 1},
	} {
		if got := autoHosts(c.p); got != c.want {
			t.Errorf("autoHosts(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestTopologyFor checks the exported descriptor builder: flat topologies
// yield descriptors of the right size and sparsity, hierarchical is
// rejected.
func TestTopologyFor(t *testing.T) {
	cfg := base()
	cfg.Topology = TopologyNeighborSparse
	tp, err := TopologyFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Size() != cfg.P || tp.Name() != comm.TopologyNeighborSparse {
		t.Fatalf("descriptor (%s, %d), want (%s, %d)", tp.Name(), tp.Size(), comm.TopologyNeighborSparse, cfg.P)
	}
	cfg.Topology = TopologyHierarchical
	if _, err := TopologyFor(cfg); err == nil {
		t.Fatal("TopologyFor accepted the hierarchical topology")
	}
	cfg.Topology = "nonsense"
	if _, err := TopologyFor(cfg); err == nil {
		t.Fatal("TopologyFor accepted an unknown topology")
	}
}

// TestRunNetRejectsHierarchical pins the typed rejection without standing
// up a TCP world.
func TestRunNetRejectsHierarchical(t *testing.T) {
	cfg := base()
	cfg.Topology = TopologyHierarchical
	_, err := RunNet(comm.NetConfig{Size: 4, Rank: 0}, cfg)
	if err == nil {
		t.Fatal("RunNet accepted the hierarchical topology")
	}
}

// TestValidateRejectsBadTopology makes sure a bad spec is caught at
// configuration time, not mid-assembly.
func TestValidateRejectsBadTopology(t *testing.T) {
	cfg := base()
	cfg.Topology = "torus"
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("Run accepted an unknown topology")
	}
	var target *comm.TopologyError
	_ = target // the config error is not a TopologyError; just pin non-nil
	if errors.Is(err, comm.ErrOutOfTopology) {
		t.Fatal("config rejection should not be an out-of-topology send error")
	}
}
