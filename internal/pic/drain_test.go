package pic

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"picpar/internal/ckpt"
)

// warnLog collects captured warnings; every rank goroutine arms its own
// crash hook, so the capture must be safe under concurrent appends.
type warnLog struct {
	mu   sync.Mutex
	msgs []string
}

func (w *warnLog) add(format string, args ...any) {
	w.mu.Lock()
	w.msgs = append(w.msgs, fmt.Sprintf(format, args...))
	w.mu.Unlock()
}

func (w *warnLog) all() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.msgs...)
}

func (w *warnLog) reset() {
	w.mu.Lock()
	w.msgs = nil
	w.mu.Unlock()
}

// captureWarnings redirects the package warning hook into a log for the
// duration of the test.
func captureWarnings(t *testing.T) *warnLog {
	t.Helper()
	var log warnLog
	old := warnf
	warnf = log.add
	t.Cleanup(func() { warnf = old })
	return &log
}

// runSelfTest re-executes the test binary running only the named test with
// extra environment, returning its combined output.
func runSelfTest(t *testing.T, name string, env ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^"+name+"$", "-test.v")
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestParseCrashSpec: the PICPAR_CRASH chaos spec follows the same loud
// reject-malformed contract as every other knob — a typo warns and disarms,
// it never half-parses.
func TestParseCrashSpec(t *testing.T) {
	warnings := captureWarnings(t)

	rank, iter, marker, armed := parseCrashSpec("2:7:/tmp/marker")
	if !armed || rank != 2 || iter != 7 || marker != "/tmp/marker" {
		t.Errorf("valid spec parsed as rank=%d iter=%d marker=%q armed=%v",
			rank, iter, marker, armed)
	}
	// Marker paths may themselves contain colons — only the first two split.
	_, _, marker, armed = parseCrashSpec("0:0:/tmp/a:b")
	if !armed || marker != "/tmp/a:b" {
		t.Errorf("colon-bearing marker parsed as %q armed=%v", marker, armed)
	}
	if msgs := warnings.all(); len(msgs) != 0 {
		t.Errorf("valid specs warned: %v", msgs)
	}

	// The empty spec is the normal production state: disarmed, silent.
	if _, _, _, armed := parseCrashSpec(""); armed {
		t.Error("empty spec armed the hook")
	}
	if msgs := warnings.all(); len(msgs) != 0 {
		t.Errorf("empty spec warned: %v", msgs)
	}

	for _, bad := range []string{
		"2",           // missing fields
		"2:7",         // missing marker
		"2:7:",        // empty marker
		"x:7:/tmp/m",  // non-integer rank
		"2:y:/tmp/m",  // non-integer iteration
		"-1:7:/tmp/m", // negative rank
		"2:-3:/tmp/m", // negative iteration
		"banana",      // not a spec at all
	} {
		warnings.reset()
		if _, _, _, armed := parseCrashSpec(bad); armed {
			t.Errorf("malformed spec %q armed the hook", bad)
		}
		if msgs := warnings.all(); len(msgs) != 1 {
			t.Errorf("spec %q produced %d warnings, want exactly 1: %v",
				bad, len(msgs), msgs)
		} else if w := msgs[0]; !contains(w, "PICPAR_CRASH") || !contains(w, bad) {
			t.Errorf("warning for %q does not name the knob and value: %q", bad, w)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMalformedCrashSpecRunIsUndisturbed: a run under a garbage
// PICPAR_CRASH warns (once per rank, at arming) and then behaves exactly
// like an unconfigured run — same TotalTime, same fingerprint.
func TestMalformedCrashSpecRunIsUndisturbed(t *testing.T) {
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	warnings := captureWarnings(t)
	t.Setenv("PICPAR_CRASH", "rank-two:7")
	got, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTime != plain.TotalTime || got.Fingerprint != plain.Fingerprint {
		t.Errorf("malformed chaos spec perturbed the run: total %.7f/%016x, want %.7f/%016x",
			got.TotalTime, got.Fingerprint, plain.TotalTime, plain.Fingerprint)
	}
	msgs := warnings.all()
	if len(msgs) == 0 {
		t.Error("malformed PICPAR_CRASH was swallowed silently")
	}
	for _, w := range msgs {
		if !contains(w, "rank-two:7") {
			t.Errorf("warning does not quote the bad value: %q", w)
		}
	}
}

// TestValidCrashSpecStillKills: hardening the parser must not soften the
// hook — a well-formed spec still kills the process at the crash site, so
// this runs in a subprocess.
func TestValidCrashSpecStillKills(t *testing.T) {
	if os.Getenv("PIC_CRASH_CHILD") == "1" {
		_, _ = Run(base())
		os.Exit(0) // unreachable if the hook fired
	}
	marker := t.TempDir() + "/marker"
	out, err := runSelfTest(t, "TestValidCrashSpecStillKills",
		"PIC_CRASH_CHILD=1", "PICPAR_CRASH=2:3:"+marker)
	if err == nil {
		t.Fatalf("child survived an armed crash hook; output:\n%s", out)
	}
	if _, serr := os.Stat(marker); serr != nil {
		t.Errorf("crash marker was not latched: %v", serr)
	}
}

// TestStopDrainAndResumeByteIdentical is the graceful-drain contract the
// service layer is built on: StopRequested stops the whole world at an
// iteration boundary with a final checkpoint epoch, the partial result says
// so honestly, and a recover-run over the same directory finishes the job
// byte-identically to a run that was never stopped.
func TestStopDrainAndResumeByteIdentical(t *testing.T) {
	ref, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var stop atomic.Bool
	var streamed []IterationRecord
	cfg := base()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	cfg.CheckpointKeep = 100
	cfg.StopRequested = stop.Load
	cfg.OnIteration = func(rec IterationRecord) {
		streamed = append(streamed, rec)
		if rec.Iter == 4 {
			stop.Store(true)
		}
	}
	part, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The stop latched after iteration 4's record; the world agrees during
	// iteration 5 and drains at its boundary.
	if !part.Stopped {
		t.Fatal("Result.Stopped not set on a drained run")
	}
	if part.CompletedIterations != 6 {
		t.Errorf("drained after %d iterations, want 6", part.CompletedIterations)
	}
	if len(part.Records) != 6 {
		t.Errorf("%d records on a 6-iteration drain, want 6", len(part.Records))
	}
	if len(streamed) != 6 {
		t.Errorf("OnIteration saw %d records, want 6", len(streamed))
	}
	if !reflect.DeepEqual(streamed, part.Records) {
		t.Error("streamed records differ from the result's records")
	}
	// Cadence-4 wrote epoch 4; the drain pinned epoch 6 off-cadence.
	if got := ckpt.LatestComplete(dir, 4); got != 6 {
		t.Errorf("latest complete epoch after drain %d, want 6", got)
	}

	// Resume: same physics config, no stop hook, recover over the drain
	// epoch — the finished run matches the undisturbed reference exactly.
	cfg2 := base()
	cfg2.CheckpointDir = dir
	cfg2.CheckpointEvery = 4
	cfg2.CheckpointKeep = 100
	cfg2.Recover = true
	full, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stopped {
		t.Error("resumed run still marked Stopped")
	}
	if full.CompletedIterations != 10 {
		t.Errorf("resumed run completed %d iterations, want 10", full.CompletedIterations)
	}
	if full.TotalTime != ref.TotalTime || full.Fingerprint != ref.Fingerprint {
		t.Errorf("drain+resume differs from undisturbed run: total %.7f/%016x, want %.7f/%016x",
			full.TotalTime, full.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
	if !reflect.DeepEqual(full.Records, ref.Records) {
		t.Error("drain+resume records differ from the undisturbed run")
	}
}

// TestStopAtCadenceBoundaryWritesOneEpoch: a drain landing exactly on a
// cadence epoch must not write the epoch twice (the second write would
// re-prune and waste I/O, and a double write that interleaved would be a
// bug magnet). One epoch set proves single-write.
func TestStopAtCadenceBoundaryWritesOneEpoch(t *testing.T) {
	dir := t.TempDir()
	var stop atomic.Bool
	cfg := base()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 3
	cfg.CheckpointKeep = 100
	cfg.StopRequested = stop.Load
	cfg.OnIteration = func(rec IterationRecord) {
		if rec.Iter == 1 {
			stop.Store(true)
		}
	}
	part, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stop latched after iteration 1, agreed during iteration 2 — whose
	// boundary (epoch 3) is exactly the cadence-3 epoch.
	if part.CompletedIterations != 3 {
		t.Fatalf("drained after %d iterations, want 3", part.CompletedIterations)
	}
	if epochs := ckpt.Epochs(dir); !reflect.DeepEqual(epochs, []int{3}) {
		t.Errorf("epochs after cadence-aligned drain: %v, want [3]", epochs)
	}
}

// TestStopWithoutCheckpointDirStillStops: draining a job that never asked
// for checkpointing must not crash or hang — it just stops (unresumable,
// which is the caller's choice).
func TestStopWithoutCheckpointDirStillStops(t *testing.T) {
	var stop atomic.Bool
	cfg := base()
	cfg.StopRequested = stop.Load
	cfg.OnIteration = func(rec IterationRecord) {
		if rec.Iter == 2 {
			stop.Store(true)
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.CompletedIterations != 4 {
		t.Errorf("stopped=%v after %d iterations, want stopped after 4",
			res.Stopped, res.CompletedIterations)
	}
}

// TestOnIterationStreamsEveryRecord: the per-iteration hook sees every
// record of an undisturbed run, in order, identical to the result set —
// the SSE feed upstairs is a faithful live view, not an approximation.
func TestOnIterationStreamsEveryRecord(t *testing.T) {
	var streamed []IterationRecord
	cfg := base()
	cfg.OnIteration = func(rec IterationRecord) { streamed = append(streamed, rec) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Records) {
		t.Errorf("streamed %d records that differ from the result's %d",
			len(streamed), len(res.Records))
	}
}
