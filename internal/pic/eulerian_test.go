package pic

import (
	"testing"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

func eulerianBase() Config {
	cfg := base()
	cfg.Eulerian = true
	return cfg
}

func TestEulerianBasic(t *testing.T) {
	res, err := Run(eulerianBase())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d", res.FinalParticleCount)
	}
	if res.NumRedistributions != 0 {
		t.Errorf("eulerian mode must not run the redistribution policy, got %d", res.NumRedistributions)
	}
}

func TestEulerianLocalCommunication(t *testing.T) {
	// Particles always live with their cells, so scatter-phase ghost
	// traffic only involves block-boundary vertices: far fewer unique
	// ghost points than a drifted Lagrangian run.
	cfgE := eulerianBase()
	cfgE.Iterations = 40
	cfgE.Thermal = 0.5
	e, err := Run(cfgE)
	if err != nil {
		t.Fatal(err)
	}
	cfgL := base()
	cfgL.Iterations = 40
	cfgL.Thermal = 0.5
	l, err := Run(cfgL)
	if err != nil {
		t.Fatal(err)
	}
	// Late in the run, static Lagrangian traffic exceeds Eulerian traffic.
	if e.Records[39].ScatterBytesSent >= l.Records[39].ScatterBytesSent {
		t.Errorf("eulerian late traffic %d should undercut static lagrangian %d",
			e.Records[39].ScatterBytesSent, l.Records[39].ScatterBytesSent)
	}
}

func TestEulerianLoadImbalanceOnIrregular(t *testing.T) {
	// The known weakness (Table 1): with an irregular density, the
	// grid-partitioned Eulerian method leaves compute unbalanced, so its
	// efficiency trails the independent+dynamic method.
	cfgE := eulerianBase()
	cfgE.Iterations = 30
	e, err := Run(cfgE)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := base()
	cfgD.Iterations = 30
	cfgD.Policy = nil // default static is fine; balance comes from alignment
	d, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	if e.Efficiency >= d.Efficiency {
		t.Errorf("eulerian efficiency %g should trail balanced method %g on irregular input",
			e.Efficiency, d.Efficiency)
	}
}

func TestEulerianUniformWorks(t *testing.T) {
	cfg := Config{
		Grid:         mesh.NewGrid(32, 16),
		P:            8,
		NumParticles: 4096,
		Distribution: particle.DistUniform,
		Seed:         9,
		Iterations:   15,
		Eulerian:     true,
		Verify:       true,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
