// Shared-memory parallel kernels of the per-iteration hot path: the tiled
// two-pass scatter deposition and the per-particle gather/push and move
// range tasks, run over the rank's par.Pool when cfg.Workers > 1.
//
// Bit-determinism contract: every kernel here reproduces the sequential
// path's floating-point accumulation order exactly, so results are
// byte-identical for every worker count.
//
//   - Scatter splits into a generate pass and a reduce pass. Generate gives
//     worker w a contiguous particle range (par.Split, ascending in w) and
//     buckets each owned-slot contribution into a per-(worker, tile) list,
//     where a tile is a contiguous range of the halo slot space; ghost
//     contributions go to a per-worker list. Reduce assigns tiles to
//     workers and, per tile, replays the lists in ascending worker order,
//     adding one contribution at a time — a slot's additions happen in
//     exactly the global (particle, vertex) order of the sequential loop.
//     Distinct tiles touch distinct slots, so the pass is race-free. The
//     ghost lists merge sequentially in worker order, so the DupTable sees
//     gids in first-occurrence order identical to the sequential path and
//     the registry (hence the wire bytes) match bit for bit.
//   - Gather/push and move touch only particle i's own state per index, so
//     a plain range split is already order-identical.
//
// All buckets and tasks live in rankState and are truncated, never freed,
// between iterations: the steady state allocates nothing.

package pic

import (
	"fmt"

	"picpar/internal/pusher"
)

// parTiles is the number of deposition tiles per worker. More tiles than
// workers lets the reduce pass balance unevenly filled tiles; a small
// constant keeps the bucket headers cache-resident.
const parTiles = 4

// scatterDeposit is the parallel deposition: generate pass over particle
// ranges, reduce pass over tiles, then the sequential ghost merge. Returns
// the number of off-processor contributions (the sequential loop's
// offprocOps) for the phase's worker-count-invariant δ charge.
func (st *rankState) scatterDeposit() int {
	for b := range st.depSlots {
		st.depSlots[b] = st.depSlots[b][:0]
		st.depVals[b] = st.depVals[b][:0]
	}
	for w := range st.ghostGid {
		st.ghostGid[w] = st.ghostGid[w][:0]
		st.ghostVal[w] = st.ghostVal[w][:0]
	}
	st.genTask.st = st
	st.pool.Run(st.store.Len(), &st.genTask)
	st.redTask.st = st
	st.pool.Run(st.tiles, &st.redTask)

	// Ghost merge: ascending worker order replays the global particle
	// order, so table insertion order and per-slot accumulation order both
	// match the sequential path exactly.
	ops := 0
	for w := 0; w < st.workers; w++ {
		gids := st.ghostGid[w]
		vals := st.ghostVal[w]
		for e, gid := range gids {
			slot := st.table.Slot(int(gid))
			if 4*slot == len(st.ghostVals) {
				st.ghostVals = append(st.ghostVals, 0, 0, 0, 0)
			}
			st.ghostVals[4*slot] += vals[4*e]
			st.ghostVals[4*slot+1] += vals[4*e+1]
			st.ghostVals[4*slot+2] += vals[4*e+2]
			st.ghostVals[4*slot+3] += vals[4*e+3]
		}
		ops += len(gids)
	}
	return ops
}

// scatterGenTask is the generate pass: worker w deposits its particle
// range's contributions into its own buckets (owned slots, keyed by tile)
// and its own ghost list. Workers write disjoint bucket indices, so the
// pass is race-free.
type scatterGenTask struct{ st *rankState }

func (t *scatterGenTask) Work(w, lo, hi int) {
	st := t.st
	s := st.store
	fp := &st.fps[w]
	tiles := st.tiles
	span := len(st.farr.Rho)
	base := w * tiles
	q := s.Charge
	for i := lo; i < hi; i++ {
		st.ge.Footprint(s, i, fp)
		gamma := s.Gamma(i)
		vx, vy, vz := s.Px[i]/gamma, s.Py[i]/gamma, s.Pz[i]/gamma
		for k := 0; k < fp.N; k++ {
			wq := fp.W[k] * q
			gid := int(fp.Gid[k])
			if c := st.fields.Slot(gid); c >= 0 {
				b := base + c*tiles/span
				st.depSlots[b] = append(st.depSlots[b], int32(c))
				st.depVals[b] = append(st.depVals[b], wq*vx, wq*vy, wq*vz, wq)
				continue
			}
			st.ghostGid[w] = append(st.ghostGid[w], fp.Gid[k])
			st.ghostVal[w] = append(st.ghostVal[w], wq*vx, wq*vy, wq*vz, wq)
		}
	}
}

// scatterReduceTask is the reduce pass: each worker owns a contiguous range
// of tiles and folds every worker's bucket for those tiles into the field
// arrays, one contribution at a time, in ascending worker order.
type scatterReduceTask struct{ st *rankState }

func (t *scatterReduceTask) Work(_, tLo, tHi int) {
	st := t.st
	fa := st.farr
	tiles := st.tiles
	for tl := tLo; tl < tHi; tl++ {
		for w := 0; w < st.workers; w++ {
			slots := st.depSlots[w*tiles+tl]
			vals := st.depVals[w*tiles+tl]
			for e, c := range slots {
				fa.Jx[c] += vals[4*e]
				fa.Jy[c] += vals[4*e+1]
				fa.Jz[c] += vals[4*e+2]
				fa.Rho[c] += vals[4*e+3]
			}
		}
	}
}

// gatherPushTask interpolates E and B at each particle of the range and
// Boris-pushes it — per-particle independent, so the range split alone is
// bit-identical to the sequential loop.
type gatherPushTask struct {
	st *rankState
	dt float64
}

func (t *gatherPushTask) Work(w, lo, hi int) {
	st := t.st
	s := st.store
	fa := st.farr
	fp := &st.fps[w]
	for i := lo; i < hi; i++ {
		st.ge.Footprint(s, i, fp)
		var ex, ey, ez, bx, by, bz float64
		for k := 0; k < fp.N; k++ {
			gid := int(fp.Gid[k])
			wk := fp.W[k]
			if c := st.fields.Slot(gid); c >= 0 {
				ex += wk * fa.Ex[c]
				ey += wk * fa.Ey[c]
				ez += wk * fa.Ez[c]
				bx += wk * fa.Bx[c]
				by += wk * fa.By[c]
				bz += wk * fa.Bz[c]
				continue
			}
			slot := st.table.Lookup(gid)
			if slot < 0 {
				panic(fmt.Sprintf("pic: rank %d gather miss at point %d", st.r.Rank(), gid))
			}
			o := gatherWireFloats * slot
			ex += wk * st.ghostEB[o]
			ey += wk * st.ghostEB[o+1]
			ez += wk * st.ghostEB[o+2]
			bx += wk * st.ghostEB[o+3]
			by += wk * st.ghostEB[o+4]
			bz += wk * st.ghostEB[o+5]
		}
		pusher.BorisPush(s, i, ex, ey, ez, bx, by, bz, t.dt)
	}
}

// moveTask advances each particle of the range — per-particle independent.
type moveTask struct {
	st *rankState
	dt float64
}

func (t *moveTask) Work(_, lo, hi int) {
	st := t.st
	s := st.store
	for i := lo; i < hi; i++ {
		st.ge.Move(s, i, t.dt)
	}
}
