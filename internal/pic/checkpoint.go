// Checkpoint/restart integration: building a rank's restart shard from the
// live rankState, restoring the state from a shard, agreeing on the epoch
// to roll back to, and fingerprinting the final physics state.
//
// Checkpoint writes are pure real-world I/O: no communication, no
// simulated-clock charges — a run with checkpointing enabled is
// byte-identical (TotalTime, records, fingerprint) to one without. The
// recovery path does communicate (one epoch-agreement Expose), but a
// recover-run that finds no usable epoch wipes those charges and proceeds
// byte-identically to a fresh run.

package pic

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"picpar/internal/ckpt"
	"picpar/internal/comm"
	"picpar/internal/machine"
	"picpar/internal/policy"
)

// maybeCheckpoint writes this rank's shard when iter completes an epoch
// boundary ((iter+1) divisible by the cadence).
func (st *rankState) maybeCheckpoint(iter int, res *Result) {
	cfg := st.cfg
	if cfg.CheckpointDir == "" || cfg.CheckpointEvery <= 0 || (iter+1)%cfg.CheckpointEvery != 0 {
		return
	}
	st.writeEpoch(iter+1, res)
}

// checkpointNow writes a drain checkpoint at the current iteration
// boundary regardless of the cadence — the graceful-stop path — unless the
// cadence just wrote this very epoch (or checkpointing is off).
func (st *rankState) checkpointNow(iter int, res *Result) {
	cfg := st.cfg
	if cfg.CheckpointDir == "" {
		return
	}
	if cfg.CheckpointEvery > 0 && (iter+1)%cfg.CheckpointEvery == 0 {
		return // maybeCheckpoint already pinned this epoch
	}
	st.writeEpoch(iter+1, res)
}

// writeEpoch writes this rank's shard for one epoch. Failures degrade to a
// warning: a sick disk must not kill a healthy simulation, it only ages
// the epoch recovery would restart from. Rank 0 prunes old epochs after a
// successful write.
func (st *rankState) writeEpoch(epoch int, res *Result) {
	cfg := st.cfg
	sh := st.buildShard(epoch, res)
	if err := ckpt.WriteShard(cfg.CheckpointDir, sh); err != nil {
		warnf("picpar: rank %d checkpoint epoch %d: %v", st.r.Rank(), epoch, err)
		return
	}
	if st.r.Rank() == 0 {
		if err := ckpt.Prune(cfg.CheckpointDir, st.r.Size(), cfg.CheckpointKeep); err != nil {
			warnf("picpar: checkpoint prune: %v", err)
		}
	}
}

// warnf emits configuration/degradation warnings; a package variable so
// tests can capture them (the par.EnvProcs / comm.EnvWatchdog pattern).
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// parseCrashSpec parses the PICPAR_CRASH chaos spec "rank:iter:marker".
// The empty spec means "hook disarmed" (silently). Anything else must
// parse completely — non-numeric rank or iteration, negative values, a
// missing or empty marker path — or the spec is rejected loudly: a warning
// naming the bad value, then a disarmed hook, mirroring EnvWatchdog /
// EnvProcs / EnvDir. A typo'd chaos spec must never silently turn into
// "no chaos" without telling the operator.
func parseCrashSpec(spec string) (rank, iter int, marker string, armed bool) {
	if spec == "" {
		return 0, 0, "", false
	}
	reject := func(why string) (int, int, string, bool) {
		warnf("picpar: malformed PICPAR_CRASH=%q (%s); crash hook disarmed (want \"rank:iter:marker\")", spec, why)
		return 0, 0, "", false
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return reject("want 3 colon-separated fields")
	}
	r, err := strconv.Atoi(parts[0])
	if err != nil {
		return reject("rank is not an integer")
	}
	if r < 0 {
		return reject("rank is negative")
	}
	it, err := strconv.Atoi(parts[1])
	if err != nil {
		return reject("iteration is not an integer")
	}
	if it < 0 {
		return reject("iteration is negative")
	}
	if parts[2] == "" {
		return reject("marker path is empty")
	}
	return r, it, parts[2], true
}

// armCrashHook parses PICPAR_CRASH once per rank run, so a malformed spec
// warns once instead of once per iteration.
func (st *rankState) armCrashHook() {
	st.crashRank, st.crashIter, st.crashMarker, st.crashArmed =
		parseCrashSpec(os.Getenv("PICPAR_CRASH"))
}

// maybeCrash is the chaos hook the kill-and-recover CI gates drive:
// PICPAR_CRASH="rank:iter:marker" makes that rank SIGKILL itself at the
// top of that iteration — a real, unhandled kill -9 from the inside. The
// marker file is an O_EXCL single-shot latch, so the respawned replacement
// (which inherits the same environment) sails past the crash site on
// replay. Marker I/O errors are ignored (the latch already tripped, or the
// path is unwritable — the hook must never break a production run);
// malformed specs are rejected loudly by parseCrashSpec at arming time.
func (st *rankState) maybeCrash(iter int) {
	if !st.crashArmed || st.r.Rank() != st.crashRank || iter != st.crashIter {
		return
	}
	marker := st.crashMarker
	f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return // latch already tripped (or unwritable): run on
	}
	f.Close()
	p, _ := os.FindProcess(os.Getpid())
	_ = p.Kill()
	select {} // SIGKILL is asynchronous; never proceed past the crash site
}

// buildShard assembles this rank's restart image at an epoch boundary.
func (st *rankState) buildShard(epoch int, res *Result) *ckpt.Shard {
	r := st.r
	cfg := st.cfg
	sh := &ckpt.Shard{
		Epoch:        epoch,
		Rank:         r.Rank(),
		Size:         r.Size(),
		Dims:         cfg.Dims,
		NumParticles: cfg.NumParticles,
		Seed:         cfg.Seed,
		Iterations:   cfg.Iterations,
		PolicyName:   st.pol.Name(),
		ClockNow:     r.Clock().Now(),
		RunStart:     st.runStart,
		InitTime:     st.initTime,
		Stats:        r.Stats().Snapshot(),
		Particles:    st.store,
		UpperKey:     0,
	}
	if cfg.Dims == 3 {
		sh.GridNx, sh.GridNy, sh.GridNz = cfg.Grid3.Nx, cfg.Grid3.Ny, cfg.Grid3.Nz
	} else {
		sh.GridNx, sh.GridNy = cfg.Grid.Nx, cfg.Grid.Ny
	}
	fa := st.farr
	src := [ckpt.NumFieldArrays][]float64{fa.Ex, fa.Ey, fa.Ez, fa.Bx, fa.By, fa.Bz, fa.Jx, fa.Jy, fa.Jz, fa.Rho}
	for i := range src {
		sh.Fields[i] = src[i]
	}
	bounds := st.inc.ExportBounds(nil)
	sh.Bounds, sh.UpperKey = bounds[:len(bounds)-1], bounds[len(bounds)-1]
	if sc, ok := st.pol.(policy.StateCodec); ok {
		sh.PolicyState = sc.AppendState(nil)
	}
	ledger := st.led.Export(nil)
	cells := st.led.Cells()
	sh.LedgerCost, sh.LedgerCount = ledger[:cells], ledger[cells:]
	if r.Rank() == 0 {
		sh.Records = make([]ckpt.Record, epoch)
		for i := 0; i < epoch; i++ {
			sh.Records[i] = recordToCkpt(&res.Records[i])
		}
	}
	return sh
}

// agreeCheckpoint scans the checkpoint directory for the latest locally
// complete epoch, agrees the minimum over ranks (every rank must be able
// to restore the same epoch), and loads this rank's shard. When no epoch
// is agreed it wipes the agreement's simulated charges — so the ensuing
// fresh start is byte-identical to a non-recovering run — and returns nil.
func (st *rankState) agreeCheckpoint() *ckpt.Shard {
	r := st.r
	dir := st.cfg.CheckpointDir
	local := ckpt.LatestComplete(dir, r.Size())
	agreed := int(-comm.ExposeMaxFloat64(r, -float64(local)))
	if agreed < 0 {
		*r.Stats() = machine.Stats{}
		r.Clock().Reset()
		return nil
	}
	sh, err := ckpt.ReadShard(ckpt.ShardPath(dir, agreed, r.Rank()))
	if err != nil {
		panic(fmt.Sprintf("pic: rank %d restore epoch %d: %v", r.Rank(), agreed, err))
	}
	st.checkShardSignature(sh, agreed)
	return sh
}

// checkShardSignature refuses a shard written by a differently configured
// run — restoring it would not replay the original physics.
func (st *rankState) checkShardSignature(sh *ckpt.Shard, epoch int) {
	r := st.r
	cfg := st.cfg
	fail := func(format string, args ...any) {
		panic(fmt.Sprintf("pic: rank %d refusing checkpoint epoch %d: %s",
			r.Rank(), epoch, fmt.Sprintf(format, args...)))
	}
	if sh.Epoch != epoch {
		fail("shard is epoch %d", sh.Epoch)
	}
	if sh.Rank != r.Rank() || sh.Size != r.Size() {
		fail("identity mismatch: shard rank %d of %d, world rank %d of %d",
			sh.Rank, sh.Size, r.Rank(), r.Size())
	}
	if sh.Dims != cfg.Dims {
		fail("dimensionality %d (run has %d)", sh.Dims, cfg.Dims)
	}
	nx, ny, nz := cfg.Grid.Nx, cfg.Grid.Ny, 0
	if cfg.Dims == 3 {
		nx, ny, nz = cfg.Grid3.Nx, cfg.Grid3.Ny, cfg.Grid3.Nz
	}
	if sh.GridNx != nx || sh.GridNy != ny || sh.GridNz != nz {
		fail("grid %dx%dx%d (run has %dx%dx%d)", sh.GridNx, sh.GridNy, sh.GridNz, nx, ny, nz)
	}
	if sh.NumParticles != cfg.NumParticles || sh.Seed != cfg.Seed {
		fail("population n=%d seed=%d (run has n=%d seed=%d)",
			sh.NumParticles, sh.Seed, cfg.NumParticles, cfg.Seed)
	}
	if sh.Iterations != cfg.Iterations {
		fail("run length %d (run has %d)", sh.Iterations, cfg.Iterations)
	}
	if sh.PolicyName != st.pol.Name() {
		fail("policy %q (run has %q)", sh.PolicyName, st.pol.Name())
	}
	if sh.Epoch > cfg.Iterations {
		fail("epoch beyond the run's %d iterations", cfg.Iterations)
	}
	if sh.Rank == 0 && len(sh.Records) != sh.Epoch {
		fail("%d records for %d completed iterations", len(sh.Records), sh.Epoch)
	}
	if sh.Particles.Dims() != cfg.Dims {
		fail("%d-D particles (run has %d-D)", sh.Particles.Dims(), cfg.Dims)
	}
}

// restoreShard reinstates a shard into the rank's live state: particles,
// fields, partition bounds, policy state, ledger estimates, the stats
// ledger, the simulated clock, and (on rank 0) the completed iteration
// records and cursors. After it returns, the rank is exactly where it was
// when the shard was written.
func (st *rankState) restoreShard(sh *ckpt.Shard, res *Result) {
	r := st.r
	st.store = sh.Particles
	fa := st.farr
	dst := [ckpt.NumFieldArrays][]float64{fa.Ex, fa.Ey, fa.Ez, fa.Bx, fa.By, fa.Bz, fa.Jx, fa.Jy, fa.Jz, fa.Rho}
	for i := range dst {
		if len(dst[i]) != len(sh.Fields[i]) {
			panic(fmt.Sprintf("pic: rank %d restore epoch %d: field array %d has %d values, geometry wants %d",
				r.Rank(), sh.Epoch, i, len(sh.Fields[i]), len(dst[i])))
		}
		copy(dst[i], sh.Fields[i])
	}
	bounds := append(sh.Bounds, sh.UpperKey)
	if err := st.inc.ImportBounds(bounds); err != nil {
		panic(fmt.Sprintf("pic: rank %d restore epoch %d: %v", r.Rank(), sh.Epoch, err))
	}
	if sc, ok := st.pol.(policy.StateCodec); ok {
		if err := sc.RestoreState(sh.PolicyState); err != nil {
			panic(fmt.Sprintf("pic: rank %d restore epoch %d: %v", r.Rank(), sh.Epoch, err))
		}
	} else if len(sh.PolicyState) != 0 {
		panic(fmt.Sprintf("pic: rank %d restore epoch %d: %d policy-state values for a policy without checkpoint support",
			r.Rank(), sh.Epoch, len(sh.PolicyState)))
	}
	ledger := append(sh.LedgerCost, sh.LedgerCount...)
	if err := st.led.Import(ledger); err != nil {
		panic(fmt.Sprintf("pic: rank %d restore epoch %d: %v", r.Rank(), sh.Epoch, err))
	}
	*r.Stats() = sh.Stats
	r.Clock().Reset()
	r.Clock().AdvanceTo(sh.ClockNow)
	st.runStart = sh.RunStart
	st.initTime = sh.InitTime
	if r.Rank() == 0 {
		res.InitTime = sh.InitTime
		for i := range sh.Records {
			res.Records[i] = recordFromCkpt(&sh.Records[i])
		}
	}
}

func recordToCkpt(rec *IterationRecord) ckpt.Record {
	return ckpt.Record{
		Iter:             rec.Iter,
		Time:             rec.Time,
		Compute:          rec.Compute,
		ScatterBytesSent: rec.ScatterBytesSent,
		ScatterBytesRecv: rec.ScatterBytesRecv,
		ScatterMsgsSent:  rec.ScatterMsgsSent,
		ScatterMsgsRecv:  rec.ScatterMsgsRecv,
		Redistributed:    rec.Redistributed,
		RedistTime:       rec.RedistTime,
		RedistFailed:     rec.RedistFailed,
		RedistStrategy:   rec.RedistStrategy,
		BusyImbalance:    rec.BusyImbalance,
		FieldEnergy:      rec.FieldEnergy,
		KineticEnergy:    rec.KineticEnergy,
	}
}

func recordFromCkpt(rec *ckpt.Record) IterationRecord {
	return IterationRecord{
		Iter:             rec.Iter,
		Time:             rec.Time,
		Compute:          rec.Compute,
		ScatterBytesSent: rec.ScatterBytesSent,
		ScatterBytesRecv: rec.ScatterBytesRecv,
		ScatterMsgsSent:  rec.ScatterMsgsSent,
		ScatterMsgsRecv:  rec.ScatterMsgsRecv,
		Redistributed:    rec.Redistributed,
		RedistTime:       rec.RedistTime,
		RedistFailed:     rec.RedistFailed,
		RedistStrategy:   rec.RedistStrategy,
		BusyImbalance:    rec.BusyImbalance,
		FieldEnergy:      rec.FieldEnergy,
		KineticEnergy:    rec.KineticEnergy,
	}
}

// FNV-64a constants for the physics fingerprint.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFloat64s(h uint64, vals []float64) uint64 {
	for _, v := range vals {
		u := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h = (h ^ (u >> s & 0xff)) * fnvPrime64
		}
	}
	return h
}

func fnvUint64(h, u uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = (h ^ (u >> s & 0xff)) * fnvPrime64
	}
	return h
}

// fingerprint hashes this rank's final physics state: every particle
// column in canonical order, then every field array.
func (st *rankState) fingerprint() uint64 {
	h := uint64(fnvOffset64)
	s := st.store
	h = fnvFloat64s(h, s.X)
	h = fnvFloat64s(h, s.Y)
	if s.Z != nil {
		h = fnvFloat64s(h, s.Z)
	}
	h = fnvFloat64s(h, s.Px)
	h = fnvFloat64s(h, s.Py)
	h = fnvFloat64s(h, s.Pz)
	h = fnvFloat64s(h, s.ID)
	h = fnvFloat64s(h, s.Key)
	fa := st.farr
	for _, arr := range [ckpt.NumFieldArrays][]float64{fa.Ex, fa.Ey, fa.Ez, fa.Bx, fa.By, fa.Bz, fa.Jx, fa.Jy, fa.Jz, fa.Rho} {
		h = fnvFloat64s(h, arr)
	}
	return h
}

// worldFingerprint folds every rank's local fingerprint in rank order.
// Runs after the TotalTime measurement, so its barrier charges cannot
// perturb any golden figure.
func (st *rankState) worldFingerprint() uint64 {
	vals := st.r.Expose(st.fingerprint())
	h := uint64(fnvOffset64)
	for i, v := range vals {
		u, ok := v.(uint64)
		if !ok {
			panic(fmt.Sprintf("pic: rank %d published %T instead of its fingerprint", i, v))
		}
		h = fnvUint64(h, u)
	}
	return h
}
