package pic

import (
	"fmt"

	"picpar/internal/comm"
	"picpar/internal/commopt"
	"picpar/internal/field"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/partition"
	"picpar/internal/policy"
	"picpar/internal/psort"
	"picpar/internal/pusher"
	"picpar/internal/sfc"
	"picpar/internal/wire"
)

// Message tags used by the simulation protocol.
const (
	tagInitChunk   comm.Tag = comm.TagUser + 100 + iota // initial particle dealing
	tagGatherReply                                      // ghost E/B replies
)

// Wire layout of the scatter-phase ghost exchange: gid + (Jx, Jy, Jz, Rho).
const scatterWireFloats = 5

// Wire layout of the gather-phase reply: (Ex, Ey, Ez, Bx, By, Bz).
const gatherWireFloats = 6

// Run executes the configured simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.CustomParticles != nil {
		cfg.NumParticles = cfg.CustomParticles.Len()
		if cfg.CustomParticles.Charge != 0 {
			cfg.MacroCharge = cfg.CustomParticles.Charge
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var dist *mesh.Dist
	var err error
	if cfg.MeshDist1D {
		dist, err = mesh.NewDist1D(cfg.Grid, cfg.P)
	} else {
		// Number the mesh blocks along the same curve that orders the
		// particles, aligning particle chunk r with mesh block r.
		dist, err = mesh.NewDistOrdered(cfg.Grid, cfg.P, cfg.Indexing)
	}
	if err != nil {
		return nil, err
	}
	indexer, err := sfc.New(cfg.Indexing, cfg.Grid.Nx, cfg.Grid.Ny)
	if err != nil {
		return nil, err
	}

	res := &Result{Config: cfg, Records: make([]IterationRecord, cfg.Iterations)}
	world := comm.NewWorld(cfg.P, cfg.Machine)
	ws := world.Run(func(r *comm.Rank) {
		runRank(r, cfg, dist, indexer, res)
	})
	res.Stats = ws
	res.ComputeSum = ws.TotalCompute()
	res.ComputeMax = ws.MaxCompute()
	res.Overhead = res.TotalTime - res.ComputeMax
	if res.TotalTime > 0 {
		res.Efficiency = res.ComputeSum / (float64(cfg.P) * res.TotalTime)
	}
	for i := range res.Records {
		if res.Records[i].Redistributed {
			res.NumRedistributions++
			res.RedistTime += res.Records[i].RedistTime
		}
	}
	return res, nil
}

// rankState bundles one rank's simulation state.
type rankState struct {
	r       *comm.Rank
	cfg     Config
	dist    *mesh.Dist
	indexer sfc.Indexer

	store  *particle.Store
	fields *field.Local
	inc    *psort.Incremental
	pol    policy.Policy

	// Ghost bookkeeping, rebuilt (in place, allocation-free once warm)
	// every iteration.
	table     commopt.DupTable
	ghostVals []float64 // 4 source values per ghost slot (Jx, Jy, Jz, Rho)
	ghostEB   []float64 // 6 field values per ghost slot, filled in gather
	registry  commopt.Registry
	// recvGids[src] lists the grid points rank src contributed to here in
	// the scatter phase; gather replies go back in the same order.
	recvGids [][]float64

	// Exchange scratch: reusable per-destination buffer headers and counts
	// (the buffers themselves cycle through the wire pool), and per-rank
	// index lists plus a spare store for the Eulerian migrate ping-pong.
	sendBufs   [][]float64
	sendCounts []int
	migrateIdx [][]int
	spare      *particle.Store
}

func runRank(r *comm.Rank, cfg Config, dist *mesh.Dist, indexer sfc.Indexer, res *Result) {
	st := &rankState{
		r:       r,
		cfg:     cfg,
		dist:    dist,
		indexer: indexer,
		fields:  field.NewLocal(dist, r.ID),
		inc:     psort.NewIncremental(cfg.Buckets),
		pol:     cfg.Policy(),
	}
	tab, err := commopt.NewTable(cfg.Table, cfg.Grid.NumPoints(), 4*cfg.NumParticles/cfg.P+16)
	if err != nil {
		panic(err)
	}
	st.table = tab

	// ---- Initial distribution (the paper's distribution algorithm) ----
	r.SetPhase(machine.PhaseRedistribute)
	st.initialDistribution()
	if cfg.Eulerian {
		// Direct Eulerian: override the aligned layout by migrating every
		// particle to its cell's owner.
		st.migrate()
	}
	r.Barrier()
	initTime := r.ExposeMaxFloat64(r.Clock.Now())
	st.pol.NotifyRedistribution(-1, initTime)
	if r.ID == 0 {
		res.InitTime = initTime
	}
	runStart := r.Clock.Now()

	// ---- Time-step loop ----
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := r.Clock.Now()
		snap := r.Stats.Snapshot()

		st.scatterPhase()
		if cfg.Verify {
			st.verifyInvariants(iter)
		}
		st.fieldSolvePhase()
		st.gatherAndPushPhase()

		r.SetPhase(machine.PhaseCommSetup)
		r.Barrier()

		diff := r.Stats.Diff(&snap)
		sc := diff.Phases[machine.PhaseScatter]
		comp := 0.0
		for p := range diff.Phases {
			comp += diff.Phases[p].ComputeTime
		}
		meas := r.ExposeMaxFloat64s([]float64{
			r.Clock.Now() - iterStart,
			comp,
			float64(sc.BytesSent), float64(sc.BytesRecv),
			float64(sc.MsgsSent), float64(sc.MsgsRecv),
		})
		iterTime := meas[0]

		rec := IterationRecord{
			Iter:             iter,
			Time:             iterTime,
			Compute:          meas[1],
			ScatterBytesSent: int64(meas[2]),
			ScatterBytesRecv: int64(meas[3]),
			ScatterMsgsSent:  int64(meas[4]),
			ScatterMsgsRecv:  int64(meas[5]),
		}

		if cfg.Diagnostics && iter%cfg.DiagEvery == 0 {
			rec.FieldEnergy = r.ExposeSumFloat64(st.fields.Energy())
			rec.KineticEnergy = r.ExposeSumFloat64(st.store.KineticEnergy())
		}

		// ---- Particle movement between ranks ----
		if cfg.Eulerian {
			// Eulerian migration happens every iteration and is part of
			// the push phase's cost.
			r.SetPhase(machine.PhasePush)
			st.migrate()
			if r.ID == 0 {
				res.Records[iter] = rec
			}
			continue
		}

		// ---- Redistribution decision (identical on all ranks) ----
		if st.pol.Decide(iter, iterTime) {
			r.SetPhase(machine.PhaseRedistribute)
			t0 := r.Clock.Now()
			st.redistribute()
			r.Barrier()
			rt := r.ExposeMaxFloat64(r.Clock.Now() - t0)
			st.pol.NotifyRedistribution(iter, rt)
			rec.Redistributed = true
			rec.RedistTime = rt
		}

		if r.ID == 0 {
			res.Records[iter] = rec
		}
	}

	r.Barrier()
	total := r.ExposeMaxFloat64(r.Clock.Now() - runStart)
	finalCount := int(r.ExposeSumFloat64(float64(st.store.Len())) + 0.5)
	if r.ID == 0 {
		res.TotalTime = total
		res.FinalParticleCount = finalCount
	}
}

// verifyInvariants checks, out of band, that the mesh-deposited charge sums
// to n·q (scatter conserved every contribution, local and ghost) and that
// no particles were lost. Runs right after the scatter phase.
func (st *rankState) verifyInvariants(iter int) {
	r := st.r
	l := st.fields
	// The check's barriers are bookkeeping, not ghost traffic.
	prev := r.Stats.CurrentPhase()
	r.SetPhase(machine.PhaseCommSetup)
	defer r.SetPhase(prev)
	rho := 0.0
	for j := 0; j < l.Ny; j++ {
		for i := 0; i < l.Nx; i++ {
			rho += l.Rho[l.Idx(i, j)]
		}
	}
	totalRho := r.ExposeSumFloat64(rho)
	want := float64(st.cfg.NumParticles) * st.cfg.MacroCharge
	tol := 1e-9 * (1 + absF(want))
	if absF(totalRho-want) > tol {
		panic(fmt.Sprintf("pic: iter %d: mesh charge %g, want %g (scatter lost contributions)",
			iter, totalRho, want))
	}
	count := int(r.ExposeSumFloat64(float64(st.store.Len())) + 0.5)
	if count != st.cfg.NumParticles {
		panic(fmt.Sprintf("pic: iter %d: %d particles, want %d", iter, count, st.cfg.NumParticles))
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// initialDistribution generates the global population on rank 0, deals
// contiguous chunks to all ranks, and sample-sorts by SFC key so every rank
// starts with a compact, balanced, mesh-aligned particle subdomain.
func (st *rankState) initialDistribution() {
	r := st.r
	cfg := st.cfg
	if r.ID == 0 {
		var global *particle.Store
		if cfg.CustomParticles != nil {
			global = cfg.CustomParticles.Clone()
		} else {
			var err error
			global, err = particle.Generate(particle.Config{
				N:            cfg.NumParticles,
				Lx:           cfg.Grid.Lx,
				Ly:           cfg.Grid.Ly,
				Distribution: cfg.Distribution,
				Seed:         cfg.Seed,
				Thermal:      cfg.Thermal,
				Drift:        cfg.Drift,
				Charge:       cfg.MacroCharge,
				Mass:         1,
			})
			if err != nil {
				panic(fmt.Sprintf("pic: generate: %v", err))
			}
		}
		for dst := r.P - 1; dst >= 0; dst-- {
			lo, hi := mesh.BlockRange(global.Len(), r.P, dst)
			if dst == 0 {
				local := particle.NewStore(hi-lo, global.Charge, global.Mass)
				for i := lo; i < hi; i++ {
					local.AppendFrom(global, i)
				}
				st.store = local
				continue
			}
			chunk := global.MarshalRange(wire.Get((hi-lo)*particle.WireFloats), lo, hi)
			r.SendFloat64s(dst, tagInitChunk, chunk)
		}
	} else {
		chunk := r.RecvFloat64s(0, tagInitChunk)
		st.store = particle.NewStore(len(chunk)/particle.WireFloats, cfg.MacroCharge, 1)
		if err := st.store.AppendWire(chunk); err != nil {
			panic(err)
		}
		wire.Put(chunk)
	}
	st.assignKeys()
	st.store = psort.SampleSort(r, st.store)
	st.inc.Prime(st.store)
}

// assignKeys refreshes every particle's SFC key and charges the indexing
// cost.
func (st *rankState) assignKeys() {
	partition.AssignKeys(st.store, st.cfg.Grid, st.indexer)
	st.r.Compute(st.store.Len() * partition.KeyAssignWorkPerParticle)
}

// redistribute runs Hilbert_Base_Indexing + Bucket_Incremental_Sorting +
// Order_Maintain_Load_Balance (Figure 12).
func (st *rankState) redistribute() {
	st.assignKeys()
	out, _ := st.inc.Redistribute(st.r, st.store)
	st.store = out
}

// migrate moves every particle to the rank owning its cell's lower-left
// grid point — the per-iteration particle movement of the direct Eulerian
// method. Communication uses the same traffic-table + all-to-many protocol
// as redistribution.
func (st *rankState) migrate() {
	r := st.r
	g := st.cfg.Grid
	s := st.store

	if st.migrateIdx == nil {
		st.migrateIdx = make([][]int, r.P)
	}
	sendIdx := st.migrateIdx
	for d := range sendIdx {
		sendIdx[d] = sendIdx[d][:0]
	}
	// Ping-pong the kept store with the spare slot so each migration
	// recycles the arrays freed by the previous one.
	kept := st.spare
	if kept == nil {
		kept = particle.NewStore(s.Len(), s.Charge, s.Mass)
	} else {
		kept.Truncate(0)
		kept.Charge, kept.Mass = s.Charge, s.Mass
	}
	for i := 0; i < s.Len(); i++ {
		cx, cy := g.CellOf(s.X[i], s.Y[i])
		owner := st.dist.OwnerOfPoint(cx, cy)
		if owner == r.ID {
			kept.AppendFrom(s, i)
		} else {
			sendIdx[owner] = append(sendIdx[owner], i)
		}
	}
	r.Compute(s.Len() * 2)

	send, counts := st.exchangeScratch()
	for d := 0; d < r.P; d++ {
		if len(sendIdx[d]) > 0 {
			send[d] = s.MarshalIndices(wire.Get(len(sendIdx[d])*particle.WireFloats), sendIdx[d])
			counts[d] = len(send[d])
			r.Compute(len(sendIdx[d]) * 7)
		}
	}
	recvCounts := r.ExchangeCounts(counts)
	recv := comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)
	for src := 0; src < r.P; src++ {
		if src != r.ID && len(recv[src]) > 0 {
			if err := kept.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]))
			wire.Put(recv[src])
		}
	}
	st.spare = s
	st.store = kept
}

// exchangeScratch returns the reusable per-destination send headers and
// counts, cleared for a new exchange.
func (st *rankState) exchangeScratch() ([][]float64, []int) {
	if st.sendBufs == nil {
		st.sendBufs = make([][]float64, st.r.P)
		st.sendCounts = make([]int, st.r.P)
	}
	for d := range st.sendBufs {
		st.sendBufs[d] = nil
		st.sendCounts[d] = 0
	}
	return st.sendBufs, st.sendCounts
}

// scatterPhase deposits every particle's current and charge onto the four
// vertex grid points of its cell, accumulating off-processor contributions
// in the duplicate-removal table and shipping one coalesced message per
// destination owner.
func (st *rankState) scatterPhase() {
	r := st.r
	r.SetPhase(machine.PhaseScatter)
	l := st.fields
	g := st.cfg.Grid
	s := st.store

	l.ZeroSources()
	st.table.Reset()
	st.ghostVals = st.ghostVals[:0]

	tableCost := st.table.CostPerOp()
	offprocOps := 0
	for i := 0; i < s.Len(); i++ {
		w := pusher.Weights(g, s.X[i], s.Y[i])
		gamma := s.Gamma(i)
		vx, vy, vz := s.Px[i]/gamma, s.Py[i]/gamma, s.Pz[i]/gamma
		q := s.Charge
		for k, off := range pusher.VertexOffsets {
			wq := w.W[k] * q
			gi := w.CX + off[0]
			gj := w.CY + off[1]
			if gi >= g.Nx {
				gi = 0
			}
			if gj >= g.Ny {
				gj = 0
			}
			if l.Contains(gi, gj) {
				c := l.Idx(gi-l.I0, gj-l.J0)
				l.Jx[c] += wq * vx
				l.Jy[c] += wq * vy
				l.Jz[c] += wq * vz
				l.Rho[c] += wq
				continue
			}
			gid := gj*g.Nx + gi
			slot := st.table.Slot(gid)
			if 4*slot == len(st.ghostVals) {
				st.ghostVals = append(st.ghostVals, 0, 0, 0, 0)
			}
			st.ghostVals[4*slot] += wq * vx
			st.ghostVals[4*slot+1] += wq * vy
			st.ghostVals[4*slot+2] += wq * vz
			st.ghostVals[4*slot+3] += wq
			offprocOps++
		}
	}
	r.Compute(s.Len()*4*pusher.ScatterWorkPerVertex + offprocOps*tableCost)

	// Communication coalescing: one message per destination owner.
	st.registry.Build(st.table, r.ID, r.P, func(gid int) int {
		ci, cj := g.PointCoords(gid)
		return st.dist.OwnerOfPoint(ci, cj)
	})
	send, counts := st.exchangeScratch()
	for k, dst := range st.registry.Dest {
		buf := wire.Get(len(st.registry.Gids[k]) * scatterWireFloats)
		for idx, gid := range st.registry.Gids[k] {
			slot := st.registry.Slots[k][idx]
			buf = append(buf, float64(gid),
				st.ghostVals[4*slot], st.ghostVals[4*slot+1],
				st.ghostVals[4*slot+2], st.ghostVals[4*slot+3])
		}
		send[dst] = buf
		counts[dst] = len(buf)
	}

	// The traffic table is protocol setup, not ghost data.
	r.SetPhase(machine.PhaseCommSetup)
	recvCounts := r.ExchangeCounts(counts)
	r.SetPhase(machine.PhaseScatter)
	recv := r.AllToManyFloat64s(send, recvCounts)

	// Accumulate received contributions; remember who asked for what so
	// the gather phase can reply in kind.
	if st.recvGids == nil {
		st.recvGids = make([][]float64, r.P)
	}
	for src := 0; src < r.P; src++ {
		st.recvGids[src] = st.recvGids[src][:0]
		buf := recv[src]
		if src == r.ID || len(buf) == 0 {
			continue
		}
		gids := st.recvGids[src]
		for o := 0; o < len(buf); o += scatterWireFloats {
			gid := int(buf[o])
			ci, cj := g.PointCoords(gid)
			c := l.Idx(ci-l.I0, cj-l.J0)
			l.Jx[c] += buf[o+1]
			l.Jy[c] += buf[o+2]
			l.Jz[c] += buf[o+3]
			l.Rho[c] += buf[o+4]
			gids = append(gids, buf[o])
		}
		st.recvGids[src] = gids
		r.Compute(len(gids) * 4)
		wire.Put(buf)
	}
}

// fieldSolvePhase advances Maxwell's equations one leapfrog step.
func (st *rankState) fieldSolvePhase() {
	st.r.SetPhase(machine.PhaseFieldSolve)
	st.fields.Solve(st.r, st.dist, st.cfg.Dt)
}

// gatherAndPushPhase is the inverse of scatter: mesh owners return E and B
// at exactly the ghost points each rank contributed to, then every particle
// gathers its fields from the four vertices and is pushed.
func (st *rankState) gatherAndPushPhase() {
	r := st.r
	r.SetPhase(machine.PhaseGather)
	l := st.fields
	g := st.cfg.Grid
	s := st.store

	// Reply to every rank that deposited here.
	for src := 0; src < r.P; src++ {
		gids := st.recvGids[src]
		if len(gids) == 0 {
			continue
		}
		buf := wire.Get(len(gids) * gatherWireFloats)
		for _, fgid := range gids {
			ci, cj := g.PointCoords(int(fgid))
			c := l.Idx(ci-l.I0, cj-l.J0)
			buf = append(buf, l.Ex[c], l.Ey[c], l.Ez[c], l.Bx[c], l.By[c], l.Bz[c])
		}
		r.Compute(len(gids) * 2)
		r.SendFloat64s(src, tagGatherReply, buf)
	}

	// Collect replies for our own ghost points.
	if cap(st.ghostEB) < gatherWireFloats*st.table.Len() {
		st.ghostEB = make([]float64, gatherWireFloats*st.table.Len())
	}
	st.ghostEB = st.ghostEB[:gatherWireFloats*st.table.Len()]
	for k, dst := range st.registry.Dest {
		buf := r.RecvFloat64s(dst, tagGatherReply)
		for idx, slot := range st.registry.Slots[k] {
			copy(st.ghostEB[gatherWireFloats*slot:], buf[gatherWireFloats*idx:gatherWireFloats*idx+gatherWireFloats])
		}
		wire.Put(buf)
	}

	// Interpolate fields at particles and push.
	dt := st.cfg.Dt
	for i := 0; i < s.Len(); i++ {
		w := pusher.Weights(g, s.X[i], s.Y[i])
		var ex, ey, ez, bx, by, bz float64
		for k, off := range pusher.VertexOffsets {
			gi := w.CX + off[0]
			gj := w.CY + off[1]
			if gi >= g.Nx {
				gi = 0
			}
			if gj >= g.Ny {
				gj = 0
			}
			wk := w.W[k]
			if l.Contains(gi, gj) {
				c := l.Idx(gi-l.I0, gj-l.J0)
				ex += wk * l.Ex[c]
				ey += wk * l.Ey[c]
				ez += wk * l.Ez[c]
				bx += wk * l.Bx[c]
				by += wk * l.By[c]
				bz += wk * l.Bz[c]
				continue
			}
			slot := st.table.Lookup(gj*g.Nx + gi)
			if slot < 0 {
				panic(fmt.Sprintf("pic: rank %d gather miss at point (%d,%d)", r.ID, gi, gj))
			}
			o := gatherWireFloats * slot
			ex += wk * st.ghostEB[o]
			ey += wk * st.ghostEB[o+1]
			ez += wk * st.ghostEB[o+2]
			bx += wk * st.ghostEB[o+3]
			by += wk * st.ghostEB[o+4]
			bz += wk * st.ghostEB[o+5]
		}
		pusher.BorisPush(s, i, ex, ey, ez, bx, by, bz, dt)
	}
	r.Compute(s.Len() * 4 * pusher.GatherWorkPerVertex)

	// Push phase: move particles (no interprocessor communication — the
	// direct Lagrangian property).
	r.SetPhase(machine.PhasePush)
	for i := 0; i < s.Len(); i++ {
		pusher.Move(s, i, g, dt)
	}
	r.Compute(s.Len() * pusher.PushWorkPerParticle)
}
