// The driver of the full simulation: Run launches one Transport endpoint
// per rank, runRank sets up the rank's state and walks the engine-layer
// pipeline composed in phases.go, and the measurement between pipeline
// steps feeds the per-iteration records and the redistribution trigger.

package pic

import (
	"fmt"

	"picpar/internal/comm"
	"picpar/internal/commopt"
	"picpar/internal/engine"
	"picpar/internal/geom"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/policy"
	"picpar/internal/psort"
	"picpar/internal/sfc"
	"picpar/internal/wire"
)

// Message tags used by the simulation protocol.
const (
	tagInitChunk   comm.Tag = comm.TagUser + 100 + iota // initial particle dealing
	tagGatherReply                                      // ghost E/B replies
)

// Wire layout of the scatter-phase ghost exchange: gid + (Jx, Jy, Jz, Rho).
const scatterWireFloats = 5

// Wire layout of the gather-phase reply: (Ex, Ey, Ez, Bx, By, Bz).
const gatherWireFloats = 6

// Run executes the configured simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.CustomParticles != nil {
		cfg.NumParticles = cfg.CustomParticles.Len()
		if cfg.CustomParticles.Charge != 0 {
			cfg.MacroCharge = cfg.CustomParticles.Charge
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ge, err := newGeometry(cfg)
	if err != nil {
		return nil, err
	}

	pl, err := buildTopoPlan(cfg, ge)
	if err != nil {
		return nil, err
	}

	res := &Result{Config: cfg, Records: make([]IterationRecord, cfg.Iterations)}
	if pl.kind == TopologyHierarchical {
		// The hierarchical transport replaces the goroutine world: ranks on
		// the same host exchange over in-process channels, hosts over one
		// TCP gateway each. Charges are identical, so all goldens hold.
		ws, herr := comm.LaunchHierarchical(cfg.P, pl.hosts, cfg.Machine, cfg.Watchdog, cfg.Transport, func(r comm.Transport) {
			runRank(r, cfg, ge, res)
		})
		if herr != nil {
			return nil, herr
		}
		res.finalize(cfg.P, ws)
		return res, nil
	}
	w := comm.NewWorld(cfg.P, cfg.Machine)
	if pl.topo != nil {
		// Enforce the sparse link set in-process: any send outside it
		// panics with a typed error instead of silently widening the
		// stencil.
		w.SetTopology(pl.topo)
	}
	if cfg.Watchdog > 0 {
		w.SetWatchdog(cfg.Watchdog)
	}
	defer w.Close()
	ws := w.RunWrapped(cfg.Transport, func(r comm.Transport) {
		runRank(r, cfg, ge, res)
	})
	res.finalize(cfg.P, ws)
	return res, nil
}

// RunRank executes one rank of the configured simulation over an existing
// Transport endpoint — the multi-process counterpart of Run, used when each
// rank is its own OS process joined over the TCP backend (comm.NetRank).
// cfg.P is taken from the transport; cfg.Transport (the decorator) is
// ignored because wrapping is the endpoint creator's job. All ranks
// participate fully, but only rank 0 returns a non-nil Result; the others
// return (nil, nil) on success.
func RunRank(t comm.Transport, cfg Config) (*Result, error) {
	if cfg.CustomParticles != nil {
		cfg.NumParticles = cfg.CustomParticles.Len()
		if cfg.CustomParticles.Charge != 0 {
			cfg.MacroCharge = cfg.CustomParticles.Charge
		}
	}
	cfg.P = t.Size()
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ge, err := newGeometry(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Records: make([]IterationRecord, cfg.Iterations)}
	runRank(t, cfg, ge, res)
	// Gather every rank's ledger so rank 0 can report world aggregates.
	// This runs after runRank measured TotalTime, so the extra exchange
	// cannot perturb the goldens.
	vals := t.Expose(t.Stats().Snapshot())
	if t.Rank() != 0 {
		return nil, nil
	}
	ws := machine.WorldStats{Ranks: make([]machine.Stats, t.Size())}
	for i, v := range vals {
		st, ok := v.(machine.Stats)
		if !ok {
			return nil, fmt.Errorf("pic: rank %d published %T instead of its stats ledger", i, v)
		}
		ws.Ranks[i] = st
	}
	res.finalize(cfg.P, ws)
	return res, nil
}

// finalize fills the aggregate figures derived from the per-rank ledgers
// and the iteration records.
func (res *Result) finalize(p int, ws machine.WorldStats) {
	res.Stats = ws
	res.ComputeSum = ws.TotalCompute()
	res.ComputeMax = ws.MaxCompute()
	res.Overhead = res.TotalTime - res.ComputeMax
	if res.TotalTime > 0 {
		res.Efficiency = res.ComputeSum / (float64(p) * res.TotalTime)
	}
	for i := range res.Records {
		if res.Records[i].Redistributed {
			res.NumRedistributions++
			res.RedistTime += res.Records[i].RedistTime
			if s := res.Records[i].RedistStrategy; s != "" {
				if res.RedistByStrategy == nil {
					res.RedistByStrategy = make(map[string]int)
				}
				res.RedistByStrategy[s]++
			}
		}
		if res.Records[i].RedistFailed {
			res.FailedRedistributions++
			res.WastedRedistTime += res.Records[i].RedistTime
		}
	}
}

// newGeometry builds the run's Geometry: the BLOCK mesh distribution with
// its tiles numbered along the same curve that orders the particles
// (aligning particle chunk r with mesh block r), plus the matching cell
// indexer — in the configured dimensionality.
func newGeometry(cfg Config) (geom.Geometry, error) {
	if cfg.Dims == 3 {
		dist, err := mesh3.NewDistOrdered(cfg.Grid3, cfg.P, cfg.Indexing)
		if err != nil {
			return nil, err
		}
		indexer, err := sfc.New3(cfg.Indexing, cfg.Grid3.Nx, cfg.Grid3.Ny, cfg.Grid3.Nz)
		if err != nil {
			return nil, err
		}
		return geom.New3(cfg.Grid3, dist, indexer), nil
	}
	var dist *mesh.Dist
	var err error
	if cfg.MeshDist1D {
		dist, err = mesh.NewDist1D(cfg.Grid, cfg.P)
	} else {
		dist, err = mesh.NewDistOrdered(cfg.Grid, cfg.P, cfg.Indexing)
	}
	if err != nil {
		return nil, err
	}
	indexer, err := sfc.New(cfg.Indexing, cfg.Grid.Nx, cfg.Grid.Ny)
	if err != nil {
		return nil, err
	}
	return geom.New2(cfg.Grid, dist, indexer), nil
}

// rankState bundles one rank's simulation state, shared by the Phase
// implementations in phases.go.
type rankState struct {
	r   comm.Transport
	cfg Config
	ge  geom.Geometry

	store  *particle.Store
	fields geom.Fields
	farr   *geom.Arrays
	inc    *psort.Incremental
	pol    policy.Policy
	// bootEx and dataEx are the topology-selected exchange protocols for
	// the initial distribution and the steady-state redistribution
	// respectively (nil: the classic pairwise exchange). See topology.go.
	bootEx comm.Exchanger
	dataEx comm.Exchanger
	// topo is the enforced link set under the sparse topologies (nil:
	// any-to-any). scatter/gather consult it to route the rare
	// out-of-stencil ghost traffic — which exists whenever a cost-weighted
	// repartition decouples the particle and mesh alignments — over the
	// systolic relay; scatterFar carries the per-iteration verdict from the
	// scatter counts table to the gather replies.
	topo       *comm.Topology
	scatterFar bool
	// led accumulates measured per-cell phase costs between redistributions
	// (strategy.go); decision is the policy's latest verdict, stashed by
	// policyTrigger so phRedistribute knows which layout to rebuild into.
	led      *machine.CostLedger
	decision policy.Decision
	// observeLedger gates the per-iteration cost observation: real
	// wall-clock work per particle (never simulated time), skipped when the
	// policy declares it can never ask for cost weights
	// (policy.CostWeightUser).
	observeLedger bool

	// Pipeline composition: the per-iteration phases, the trigger deciding
	// whether the post-iteration movement phase runs, and that phase.
	pipe    *engine.Pipeline
	trigger engine.Trigger
	post    engine.Phase
	// rec points at the record of the iteration in flight, so triggered
	// phases can mark it (Redistributed, RedistTime).
	rec *IterationRecord
	// runStart and initTime are the measurement cursors checkpoint shards
	// carry so a restored run resumes the same TotalTime accounting.
	runStart float64
	initTime float64
	// Parsed PICPAR_CRASH chaos hook (checkpoint.go), armed once per run so
	// a malformed spec warns once, not once per iteration.
	crashRank, crashIter int
	crashMarker          string
	crashArmed           bool

	// Ghost bookkeeping, rebuilt (in place, allocation-free once warm)
	// every iteration. fp is the footprint scratch the per-particle loops
	// fill through the geometry interface (a local would escape to the
	// heap at every phase call).
	fp        geom.Footprint
	table     commopt.DupTable
	ghostVals []float64 // 4 source values per ghost slot (Jx, Jy, Jz, Rho)
	ghostEB   []float64 // 6 field values per ghost slot, filled in gather
	registry  commopt.Registry
	// recvGids[src] lists the grid points rank src contributed to here in
	// the scatter phase; gather replies go back in the same order.
	recvGids [][]float64

	// Exchange scratch: reusable per-destination buffer headers and counts
	// (the buffers themselves cycle through the wire pool), and per-rank
	// index lists plus a spare store for the Eulerian migrate ping-pong.
	sendBufs   [][]float64
	sendCounts []int
	migrateIdx [][]int
	spare      *particle.Store

	// Strategy scratch (strategy.go): the flattened local ledger export,
	// the world-summed per-cell cost and count estimates, and the derived
	// per-cell weights. Truncated, never freed, between synchronisations.
	ledgerBuf, gW, gN, pw []float64

	// Shared-memory parallelism (partasks.go): the rank's worker pool, the
	// per-worker footprint scratch, and the tiled deposition buckets of the
	// two-pass parallel scatter. The bucket lists are truncated, never
	// freed, between iterations, so the steady state allocates nothing.
	// tiles = parTiles·workers; bucket (w, t) lives at index w·tiles + t.
	pool     *par.Pool
	workers  int
	tiles    int
	fps      []geom.Footprint
	depSlots [][]int32
	depVals  [][]float64 // 4 floats per entry: Jx, Jy, Jz, Rho
	ghostGid [][]int32
	ghostVal [][]float64 // 4 floats per entry, parallel to ghostGid
	genTask  scatterGenTask
	redTask  scatterReduceTask
	gpTask   gatherPushTask
	mvTask   moveTask
}

func runRank(r comm.Transport, cfg Config, ge geom.Geometry, res *Result) {
	pool := par.New(cfg.Workers)
	defer pool.Close()
	st := &rankState{
		r:       r,
		cfg:     cfg,
		ge:      ge,
		fields:  ge.NewFields(r.Rank(), pool),
		inc:     psort.NewIncremental(cfg.Buckets),
		pol:     cfg.Policy(),
		pool:    pool,
		workers: pool.Workers(),
	}
	st.inc.SetPool(pool)
	st.armCrashHook()
	pl, perr := buildTopoPlan(cfg, ge)
	if perr != nil {
		panic(perr) // validate() accepted the spec; disagreement is a bug
	}
	st.bootEx, st.dataEx = pl.bootEx, pl.dataEx
	st.topo = pl.topo
	st.inc.SetExchanger(st.dataEx)
	st.farr = st.fields.Arrays()
	st.led = machine.NewCostLedger(ge.NumCells(), machine.DefaultLedgerDecay)
	if u, ok := st.pol.(policy.CostWeightUser); ok {
		st.observeLedger = u.UsesCostWeights()
	} else {
		st.observeLedger = true // unknown policies may ask at any time
	}
	if ad, ok := st.pol.(*policy.Adaptive); ok {
		ad.SetChooser(st.chooseStrategy)
	}
	if st.workers > 1 {
		st.tiles = parTiles * st.workers
		st.fps = make([]geom.Footprint, st.workers)
		st.depSlots = make([][]int32, st.workers*st.tiles)
		st.depVals = make([][]float64, st.workers*st.tiles)
		st.ghostGid = make([][]int32, st.workers)
		st.ghostVal = make([][]float64, st.workers)
	}
	tab, err := commopt.NewTable(cfg.Table, ge.NumPoints(), ge.NumVertices()*cfg.NumParticles/cfg.P+16)
	if err != nil {
		panic(err)
	}
	st.table = tab

	// ---- Recovery: roll back to the agreed checkpoint epoch ----
	startIter := 0
	restored := false
	if cfg.Recover && cfg.CheckpointDir != "" {
		if sh := st.agreeCheckpoint(); sh != nil {
			st.restoreShard(sh, res)
			startIter = sh.Epoch
			restored = true
		}
		// No usable epoch: agreeCheckpoint wiped its charges, so the fresh
		// start below is byte-identical to a non-recovering run.
	}

	if !restored {
		// ---- Initial distribution (the paper's distribution algorithm) ----
		r.SetPhase(machine.PhaseRedistribute)
		st.initialDistribution()
		if cfg.Eulerian {
			// Direct Eulerian: override the aligned layout by migrating every
			// particle to its cell's owner. This first migration is
			// any-to-any (the key-sorted layout can sit far from the cell
			// owners), so it rides the boot protocol; steady-state
			// migrations move one cell at most and stay on dataEx.
			dataEx := st.dataEx
			st.dataEx = st.bootEx
			st.migrate()
			st.dataEx = dataEx
		}
		comm.Barrier(r)
		initTime := comm.ExposeMaxFloat64(r, r.Clock().Now())
		st.pol.NotifyRedistribution(-1, initTime)
		st.initTime = initTime
		if r.Rank() == 0 {
			res.InitTime = initTime
		}
		st.runStart = r.Clock().Now()
	}

	st.composePipeline()

	// ---- Time-step loop ----
	completed := startIter
	stopped := false
	for iter := startIter; iter < cfg.Iterations; iter++ {
		st.maybeCrash(iter)
		iterStart := r.Clock().Now()
		snap := r.Stats().Snapshot()

		st.pipe.Step(iter)

		r.SetPhase(machine.PhaseCommSetup)
		comm.Barrier(r)

		diff := r.Stats().Diff(&snap)
		if st.observeLedger {
			st.observeCosts(&diff)
		}
		sc := diff.Phases[machine.PhaseScatter]
		comp, busy := 0.0, 0.0
		for p := range diff.Phases {
			comp += diff.Phases[p].ComputeTime
			busy += diff.Phases[p].ComputeTime + diff.Phases[p].CommTime
		}
		// One out-of-band Expose serves the element-wise max the records
		// always carried plus the busy-time max and sum behind the
		// max/mean imbalance (same barriers as ExposeMaxFloat64s). The
		// trailing element is the drain flag: any rank whose StopRequested
		// poll fired makes the whole world agree to stop at this iteration
		// boundary — same free, deterministic agreement the measurements
		// ride.
		stopFlag := 0.0
		if cfg.StopRequested != nil && cfg.StopRequested() {
			stopFlag = 1
		}
		all := r.Expose([]float64{
			r.Clock().Now() - iterStart,
			comp,
			float64(sc.BytesSent), float64(sc.BytesRecv),
			float64(sc.MsgsSent), float64(sc.MsgsRecv),
			busy,
			stopFlag,
		})
		var meas [7]float64
		busySum := 0.0
		stopAgreed := false
		for _, x := range all {
			vec := x.([]float64)
			busySum += vec[6]
			if vec[7] > 0 {
				stopAgreed = true
			}
			for i := range meas {
				if vec[i] > meas[i] {
					meas[i] = vec[i]
				}
			}
		}
		iterTime := meas[0]
		imb := 1.0
		if busySum > 0 {
			imb = meas[6] * float64(r.Size()) / busySum
		}

		rec := IterationRecord{
			Iter:             iter,
			Time:             iterTime,
			Compute:          meas[1],
			ScatterBytesSent: int64(meas[2]),
			ScatterBytesRecv: int64(meas[3]),
			ScatterMsgsSent:  int64(meas[4]),
			ScatterMsgsRecv:  int64(meas[5]),
			BusyImbalance:    imb,
		}

		if cfg.Diagnostics && iter%cfg.DiagEvery == 0 {
			rec.FieldEnergy = comm.ExposeSumFloat64(r, st.fields.Energy())
			rec.KineticEnergy = comm.ExposeSumFloat64(r, st.store.KineticEnergy())
		}

		// ---- Particle movement between ranks ----
		// The trigger decides (identically on all ranks) whether the
		// post-iteration phase runs: Eulerian migration every iteration,
		// Lagrangian redistribution when the policy fires.
		st.rec = &rec
		if st.trigger.Decide(iter, iterTime) {
			st.pipe.RunPhase(st.post, iter)
		}

		if r.Rank() == 0 {
			res.Records[iter] = rec
			if cfg.OnIteration != nil {
				cfg.OnIteration(rec)
			}
		}
		st.maybeCheckpoint(iter, res)
		completed = iter + 1
		if stopAgreed {
			// Graceful drain: pin a final checkpoint epoch at this boundary
			// (all ranks agreed, so the epoch completes) and leave the loop
			// together. The epilogue below still runs — a stopped run
			// reports its partial measurements honestly.
			st.checkpointNow(iter, res)
			stopped = true
			break
		}
	}

	comm.Barrier(r)
	total := comm.ExposeMaxFloat64(r, r.Clock().Now()-st.runStart)
	finalCount := int(comm.ExposeSumFloat64(r, float64(st.store.Len())) + 0.5)
	fp := st.worldFingerprint()
	if r.Rank() == 0 {
		res.TotalTime = total
		res.FinalParticleCount = finalCount
		res.Fingerprint = fp
		res.Stopped = stopped
		res.CompletedIterations = completed
		if stopped {
			res.Records = res.Records[:completed]
		}
	}
}

// initialDistribution generates the global population on rank 0, deals
// contiguous chunks to all ranks, and sample-sorts by SFC key so every rank
// starts with a compact, balanced, mesh-aligned particle subdomain.
func (st *rankState) initialDistribution() {
	r := st.r
	cfg := st.cfg
	if r.Rank() == 0 {
		var global *particle.Store
		if cfg.CustomParticles != nil {
			global = cfg.CustomParticles.Clone()
		} else {
			var err error
			global, err = st.ge.Generate(geom.GenConfig{
				N:            cfg.NumParticles,
				Distribution: cfg.Distribution,
				Seed:         cfg.Seed,
				Thermal:      cfg.Thermal,
				Drift:        cfg.Drift,
				Charge:       cfg.MacroCharge,
			})
			if err != nil {
				panic(fmt.Sprintf("pic: generate: %v", err))
			}
		}
		st.dealChunks(global)
	} else {
		st.recvChunk()
	}
	st.assignKeys()
	st.store = psort.SampleSortParX(r, st.store, st.pool, st.bootEx)
	st.inc.Prime(st.store)
}

// dealChunks ships contiguous chunks of the rank-0 global population to
// every rank. The classic path is one point-to-point message per
// destination; under a sparse topology that scatter cannot use direct
// links, so the chunks ride the systolic ring instead (skeleton links
// only, same payloads).
func (st *rankState) dealChunks(global *particle.Store) {
	r := st.r
	p := r.Size()
	wf := global.WireFloats()
	if st.bootEx == nil {
		for dst := p - 1; dst >= 0; dst-- {
			lo, hi := mesh.BlockRange(global.Len(), p, dst)
			if dst == 0 {
				st.keepChunk(global, lo, hi)
				continue
			}
			chunk := global.MarshalRange(wire.Get((hi-lo)*wf), lo, hi)
			comm.SendFloat64s(r, dst, tagInitChunk, chunk)
		}
		return
	}
	send := make([][]float64, p)
	for dst := p - 1; dst >= 0; dst-- {
		lo, hi := mesh.BlockRange(global.Len(), p, dst)
		if dst == 0 {
			st.keepChunk(global, lo, hi)
			continue
		}
		send[dst] = global.MarshalRange(wire.Get((hi-lo)*wf), lo, hi)
	}
	// Rank 0 receives nothing: its own chunk stayed local.
	comm.AllToManySystolicFloat64s(r, send, make([]int, p))
}

// keepChunk copies the [lo, hi) range of the global population into this
// rank's own store.
func (st *rankState) keepChunk(global *particle.Store, lo, hi int) {
	local := global.NewLike(hi - lo)
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	st.store = local
}

// recvChunk receives this rank's chunk of the initial population from rank
// 0 — point to point classically, off the systolic ring under a sparse
// topology. The expected chunk size is derived locally from the global
// particle count, so no counts exchange is needed.
func (st *rankState) recvChunk() {
	r := st.r
	cfg := st.cfg
	wf := particle.WireFloats
	if st.ge.Dims() == 3 {
		wf++
	}
	var chunk []float64
	if st.bootEx == nil {
		chunk = comm.RecvFloat64s(r, 0, tagInitChunk)
	} else {
		p := r.Size()
		recvCounts := make([]int, p)
		lo, hi := mesh.BlockRange(cfg.NumParticles, p, r.Rank())
		recvCounts[0] = (hi - lo) * wf
		recv := comm.AllToManySystolicFloat64s(r, make([][]float64, p), recvCounts)
		chunk = recv[0]
	}
	st.store = st.ge.NewStore(len(chunk)/wf, cfg.MacroCharge, 1)
	if err := st.store.AppendWire(chunk); err != nil {
		panic(err)
	}
	wire.Put(chunk)
}
