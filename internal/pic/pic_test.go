package pic

import (
	"math"
	"testing"

	"picpar/internal/commopt"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/policy"
	"picpar/internal/sfc"
)

// base returns a small, fast configuration with invariant checking on and
// the deadlock watchdog armed (PICPAR_WATCHDOG-tunable).
func base() Config {
	return Config{
		Grid:         mesh.NewGrid(32, 16),
		P:            4,
		NumParticles: 2048,
		Distribution: particle.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Verify:       true,
		Watchdog:     commtest.Watchdog(),
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("records %d, want 10", len(res.Records))
	}
	if res.TotalTime <= 0 || res.InitTime <= 0 {
		t.Errorf("times: total=%g init=%g", res.TotalTime, res.InitTime)
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d, want 2048", res.FinalParticleCount)
	}
	if res.ComputeMax <= 0 || res.ComputeSum < res.ComputeMax {
		t.Errorf("compute: max=%g sum=%g", res.ComputeMax, res.ComputeSum)
	}
	if res.Overhead < 0 {
		t.Errorf("negative overhead %g", res.Overhead)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1.0001 {
		t.Errorf("efficiency %g outside (0,1]", res.Efficiency)
	}
	for i, rec := range res.Records {
		if rec.Iter != i {
			t.Errorf("record %d has iter %d", i, rec.Iter)
		}
		if rec.Time <= 0 || rec.Compute <= 0 {
			t.Errorf("iter %d: time=%g compute=%g", i, rec.Time, rec.Compute)
		}
		if rec.Compute > rec.Time {
			t.Errorf("iter %d: compute %g exceeds execution %g", i, rec.Compute, rec.Time)
		}
	}
}

func TestRunSingleRank(t *testing.T) {
	cfg := base()
	cfg.P = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One rank: no ghost traffic at all.
	for _, rec := range res.Records {
		if rec.ScatterBytesSent != 0 || rec.ScatterMsgsSent != 0 {
			t.Errorf("iter %d: p=1 has scatter traffic %+v", rec.Iter, rec)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Errorf("total time differs: %g vs %g", a.TotalTime, b.TotalTime)
	}
	for i := range a.Records {
		if a.Records[i].Time != b.Records[i].Time ||
			a.Records[i].ScatterBytesSent != b.Records[i].ScatterBytesSent {
			t.Fatalf("iteration %d records differ", i)
		}
	}
}

func TestRunAllDistributions(t *testing.T) {
	for _, d := range []string{particle.DistUniform, particle.DistIrregular, particle.DistTwoStream, particle.DistBeam} {
		cfg := base()
		cfg.Distribution = d
		cfg.Iterations = 5
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestRunAllIndexings(t *testing.T) {
	for _, ix := range []string{sfc.SchemeHilbert, sfc.SchemeSnake, sfc.SchemeRowMajor, sfc.SchemeMorton} {
		cfg := base()
		cfg.Indexing = ix
		cfg.Iterations = 5
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: %v", ix, err)
		}
	}
}

func TestRunHashTableMatchesDirect(t *testing.T) {
	// The duplicate-removal structure must not change physics or traffic
	// volume, only its modelled lookup cost.
	cfgD := base()
	cfgD.Table = commopt.TableDirect
	cfgH := base()
	cfgH.Table = commopt.TableHash
	rd, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(cfgH)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rd.Records {
		if rd.Records[i].ScatterBytesSent != rh.Records[i].ScatterBytesSent {
			t.Errorf("iter %d: traffic differs direct=%d hash=%d", i,
				rd.Records[i].ScatterBytesSent, rh.Records[i].ScatterBytesSent)
		}
	}
	if rh.ComputeMax <= rd.ComputeMax {
		t.Errorf("hash table should cost more compute: direct=%g hash=%g",
			rd.ComputeMax, rh.ComputeMax)
	}
}

func TestRunWithPeriodicPolicy(t *testing.T) {
	cfg := base()
	cfg.Iterations = 12
	cfg.Policy = policy.NewPeriodic(4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRedistributions != 3 {
		t.Errorf("redistributions %d, want 3 (iters 3, 7, 11)", res.NumRedistributions)
	}
	for _, rec := range res.Records {
		want := (rec.Iter+1)%4 == 0
		if rec.Redistributed != want {
			t.Errorf("iter %d redistributed=%v, want %v", rec.Iter, rec.Redistributed, want)
		}
		if rec.Redistributed && rec.RedistTime <= 0 {
			t.Errorf("iter %d redistributed with zero time", rec.Iter)
		}
	}
}

func TestRunWithDynamicPolicy(t *testing.T) {
	cfg := base()
	cfg.Iterations = 60
	cfg.NumParticles = 4096
	cfg.Thermal = 0.5
	cfg.Policy = policy.NewDynamic()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The drifting irregular distribution must eventually trigger at least
	// one redistribution; the policy must also not fire every iteration.
	if res.NumRedistributions == 0 {
		t.Error("dynamic policy never fired in 60 iterations of a drifting plasma")
	}
	if res.NumRedistributions > 30 {
		t.Errorf("dynamic policy fired %d/60 times — thrashing", res.NumRedistributions)
	}
}

func TestRunMeshDist1D(t *testing.T) {
	cfg := base()
	cfg.MeshDist1D = true
	cfg.Grid = mesh.NewGrid(32, 32)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiagnosticsEnergiesFinite(t *testing.T) {
	cfg := base()
	cfg.Diagnostics = true
	cfg.DiagEvery = 2
	cfg.Iterations = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, rec := range res.Records {
		if rec.Iter%2 == 0 {
			seen++
			if math.IsNaN(rec.FieldEnergy) || math.IsInf(rec.FieldEnergy, 0) || rec.FieldEnergy < 0 {
				t.Errorf("iter %d field energy %g", rec.Iter, rec.FieldEnergy)
			}
			if math.IsNaN(rec.KineticEnergy) || rec.KineticEnergy < 0 {
				t.Errorf("iter %d kinetic energy %g", rec.Iter, rec.KineticEnergy)
			}
		}
	}
	if seen != 4 {
		t.Errorf("diagnostics recorded %d times, want 4", seen)
	}
}

func TestRunParallelInvariantAcrossP(t *testing.T) {
	// Physics must not depend on the processor count: compare global
	// energies after a few iterations between p=1 and p=4 runs.
	energies := map[int][2]float64{}
	for _, p := range []int{1, 2, 4} {
		cfg := base()
		cfg.P = p
		cfg.Iterations = 6
		cfg.Diagnostics = true
		cfg.DiagEvery = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := res.Records[5]
		energies[p] = [2]float64{rec.FieldEnergy, rec.KineticEnergy}
	}
	ref := energies[1]
	for _, p := range []int{2, 4} {
		e := energies[p]
		if relDiff(e[0], ref[0]) > 1e-9 || relDiff(e[1], ref[1]) > 1e-9 {
			t.Errorf("p=%d energies %v differ from serial %v", p, e, ref)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

func TestRunRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Grid: mesh.NewGrid(8, 8), P: -1},
		{Grid: mesh.NewGrid(8, 8), P: 4, NumParticles: -5},
		{Grid: mesh.NewGrid(8, 8), P: 4, Iterations: -1},
		{Grid: mesh.NewGrid(8, 8), P: 4, Dt: 5},
		{Grid: mesh.NewGrid(8, 8), P: 4, Indexing: "zigzag"},
		{Grid: mesh.NewGrid(8, 8), P: 4, Table: "btree"},
		{Grid: mesh.NewGrid(8, 8), P: 128}, // cannot block-distribute
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunZeroIterations(t *testing.T) {
	cfg := base()
	cfg.Iterations = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.NumRedistributions != 0 {
		t.Error("zero-iteration run must produce no records")
	}
	if res.InitTime <= 0 {
		t.Error("initial distribution must still be timed")
	}
}

func TestRunZeroParticles(t *testing.T) {
	cfg := base()
	cfg.NumParticles = 0
	cfg.Verify = false // charge check divides by nothing meaningful
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != 0 {
		t.Errorf("final count %d", res.FinalParticleCount)
	}
}

func TestScatterTrafficGrowsUnderStaticPolicy(t *testing.T) {
	// The core premise of the paper: with static (Lagrangian, never
	// redistributed) assignment, particle subdomains smear out and
	// scatter-phase ghost traffic grows over time.
	cfg := base()
	cfg.NumParticles = 4096
	cfg.Iterations = 80
	cfg.Thermal = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := avgBytes(res.Records[2:12])
	late := avgBytes(res.Records[70:80])
	if late <= early {
		t.Errorf("scatter traffic did not grow: early=%g late=%g", early, late)
	}
}

func TestPeriodicBeatsStaticOnDriftingPlasma(t *testing.T) {
	// Figure 16's headline: periodic redistribution outperforms static.
	mk := func(f policy.Factory) float64 {
		cfg := base()
		cfg.NumParticles = 4096
		cfg.Iterations = 120
		cfg.Thermal = 0.5
		cfg.Policy = f
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	static := mk(policy.NewStatic())
	periodic := mk(policy.NewPeriodic(20))
	if periodic >= static {
		t.Errorf("periodic(20) total %.4fs should beat static %.4fs", periodic, static)
	}
}

func avgBytes(recs []IterationRecord) float64 {
	s := 0.0
	for _, r := range recs {
		s += float64(r.ScatterBytesSent)
	}
	return s / float64(len(recs))
}

func TestMachineParamsAffectTimeNotPhysics(t *testing.T) {
	cfgA := base()
	cfgA.Machine = machine.CM5()
	cfgA.Diagnostics = true
	cfgA.DiagEvery = 9
	cfgB := cfgA
	cfgB.Machine = machine.Modern()
	ra, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalTime <= rb.TotalTime {
		t.Errorf("CM-5 (%g) should be slower than a modern machine (%g)", ra.TotalTime, rb.TotalTime)
	}
	if ra.Records[9].FieldEnergy != rb.Records[9].FieldEnergy {
		t.Error("machine model changed the physics")
	}
}

func TestMaxSummaries(t *testing.T) {
	res := &Result{Records: []IterationRecord{
		{ScatterBytesSent: 10, ScatterMsgsSent: 1},
		{ScatterBytesSent: 30, ScatterMsgsSent: 5},
		{ScatterBytesSent: 20, ScatterMsgsSent: 2},
	}}
	if res.MaxScatterBytes() != 30 || res.MaxScatterMsgs() != 5 {
		t.Errorf("summaries: bytes=%d msgs=%d", res.MaxScatterBytes(), res.MaxScatterMsgs())
	}
}
