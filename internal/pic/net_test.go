package pic

import (
	"sync"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
)

// runNetBase runs the reference configuration over real loopback TCP
// sockets — every rank a NetRank endpoint wrapped by wrap — and returns
// rank 0's Result.
func runNetBase(t *testing.T, cfg Config, wrap func(comm.Transport) comm.Transport) *Result {
	t.Helper()
	cfg.P = 4
	var res *Result
	var mu sync.Mutex
	params := cfg.Machine
	if params == (machine.Params{}) {
		params = machine.CM5() // mirror config.withDefaults
	}
	tmpl := commtest.NetTemplate(params)
	if cfg.Topology != "" {
		// Assemble the socket mesh of the configured topology, so the TCP
		// backend's sparse dialing and digest pinning are on the wire the
		// golden crosses.
		tp, err := TopologyFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tmpl.Topology = tp
	}
	_, errs := comm.LaunchLoopback(tmpl, cfg.P, wrap, func(tr comm.Transport) {
		r, err := RunRank(tr, cfg)
		if err != nil {
			panic(err)
		}
		if r != nil {
			mu.Lock()
			res = r
			mu.Unlock()
		}
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", rank, err)
		}
	}
	if res == nil {
		t.Fatal("rank 0 produced no result")
	}
	return res
}

// TestNetGoldenByteIdentical: the pinned 2-D reference run reproduces its
// exact simulated total over real TCP sockets — the golden does not know
// which wire it ran on. (The multi-process version of this assertion is
// scripts/netsmoke.sh, which runs the same configuration as 4 OS
// processes.)
func TestNetGoldenByteIdentical(t *testing.T) {
	res := runNetBase(t, base(), nil)
	const recorded = 1.1831223 // the golden_test.go pin
	if diff := res.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Errorf("TCP-backend reference total %.7f, recorded %.7f", res.TotalTime, recorded)
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d, want 2048", res.FinalParticleCount)
	}
	if res.ComputeSum <= 0 || res.Efficiency <= 0 {
		t.Errorf("world aggregates missing: sum=%g eff=%g", res.ComputeSum, res.Efficiency)
	}
}

// TestNetGoldenAcrossTopologies: the sparse topologies reproduce the 2-D
// golden over real TCP sockets — the sparse assembly (O(P·k) dials, digest
// pinning at the rendezvous) and the topology-selected exchange protocols
// change neither the simulated clock nor one byte of physics. The
// fingerprint is compared against the goroutine backend's full-mesh run,
// closing the backend × topology matrix.
func TestNetGoldenAcrossTopologies(t *testing.T) {
	ref, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 1.1831223
	for _, topo := range []string{TopologyFullMesh, TopologyNeighborSparse, TopologySystolicRing} {
		cfg := base()
		cfg.Topology = topo
		res := runNetBase(t, cfg, nil)
		if diff := res.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
			t.Errorf("topology %q over TCP: total %.7f, recorded %.7f", topo, res.TotalTime, recorded)
		}
		if res.Fingerprint != ref.Fingerprint {
			t.Errorf("topology %q over TCP: fingerprint %016x, goroutine full mesh %016x",
				topo, res.Fingerprint, ref.Fingerprint)
		}
	}
}

// TestNetChaosSparseTopology: the chaos stack (Tracer∘Reliable∘Faulty)
// composes unchanged over a sparse TCP assembly — drops, duplicates and
// reorderings on stencil links are recovered below the protocol layer.
func TestNetChaosSparseTopology(t *testing.T) {
	plan := comm.FaultPlan{Seed: 0xBEEF02, DropProb: 0.1, MaxDropAttempts: 2,
		DupProb: 0.1, ReorderProb: 0.1}
	faulty := comm.NewFaulty(plan)
	rel := comm.NewReliable(comm.ReliableConfig{})
	tracer := comm.NewTracer()
	cfg := base()
	cfg.Topology = TopologyNeighborSparse
	res := runNetBase(t, cfg, func(tr comm.Transport) comm.Transport {
		return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
	})
	if c := faulty.Counts(); c.Drops+c.Dups+c.Reorders == 0 {
		t.Fatal("fault plan injected nothing — the soak exercised no recovery")
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d under chaos over sparse TCP, want 2048", res.FinalParticleCount)
	}
}

// TestNetChaosGolden: the full chaos stack over the TCP backend still
// reproduces the golden exactly — injected drops, duplicates, reorderings
// and delays are recovered before the simulation can observe them, and the
// recovery surcharge is confined to simulated comm time the reference
// configuration does not measure. This is the soak crossing a real wire.
func TestNetChaosGolden(t *testing.T) {
	plan := comm.FaultPlan{Seed: 0xBEEF01, DropProb: 0.1, MaxDropAttempts: 2,
		DupProb: 0.1, ReorderProb: 0.1}
	faulty := comm.NewFaulty(plan)
	rel := comm.NewReliable(comm.ReliableConfig{})
	tracer := comm.NewTracer()
	res := runNetBase(t, base(), func(tr comm.Transport) comm.Transport {
		return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
	})
	c := faulty.Counts()
	if c.Drops+c.Dups+c.Reorders == 0 {
		t.Fatal("fault plan injected nothing — the soak exercised no recovery")
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d under chaos over TCP, want 2048", res.FinalParticleCount)
	}
	if tracer.Total().MsgsSent == 0 {
		t.Error("tracer observed no traffic")
	}
}
