package pic

import "testing"

// TestGoldenDeterminism pins the exact simulated total of a reference run.
// The simulation is fully deterministic, so any change to this value means
// the cost model, the communication protocol, or the physics changed —
// which must be a conscious decision (update the constant and the
// calibration notes in EXPERIMENTS.md together).
func TestGoldenDeterminism(t *testing.T) {
	res, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	got := res.TotalTime
	// Reference recorded after the δ = 1.3 µs CM-5 calibration.
	const recorded = 1.1831223
	if diff := got - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Errorf("reference run total changed: got %.12g, recorded %.12g", got, recorded)
	}
}
