// The engine-layer decomposition of the PIC time step: each of scatter,
// field solve, gather/push, migrate and redistribute is an engine.Phase
// over the shared rankState, and a simulation mode is a pipeline
// composition plus a Trigger guarding the post-iteration movement phase —
// the policy for the Lagrangian mode, Always for the Eulerian mode.

package pic

import (
	"fmt"

	"picpar/internal/comm"
	"picpar/internal/engine"
	"picpar/internal/geom"
	"picpar/internal/machine"
	"picpar/internal/policy"
	"picpar/internal/pusher"
	"picpar/internal/wire"
)

// Phase names, stable identifiers for hooks and diagnostics.
const (
	phaseNameScatter      = "scatter"
	phaseNameFieldSolve   = "fieldsolve"
	phaseNameGatherPush   = "gatherpush"
	phaseNameMigrate      = "migrate"
	phaseNameRedistribute = "redistribute"
)

// composePipeline builds the per-iteration pipeline, the trigger deciding
// whether the post-iteration movement phase runs, and that phase itself.
// The Lagrangian and Eulerian modes differ only in this composition.
func (st *rankState) composePipeline() {
	st.pipe = engine.New(phScatter{st}, phFieldSolve{st}, phGatherPush{st})
	if st.cfg.Verify {
		st.pipe.AddHook(verifyHook{st})
	}
	if st.cfg.Eulerian {
		// Eulerian migration runs unconditionally every iteration.
		st.trigger, st.post = engine.Always{}, phMigrate{st}
	} else {
		// Lagrangian redistribution runs when the policy says so.
		st.trigger, st.post = policyTrigger{st}, phRedistribute{st}
	}
}

// policyTrigger adapts the strategy-deciding policy to the engine's boolean
// Trigger: the full decision — including which layout strategy to rebuild
// into — is stashed on the rank state for phRedistribute to act on.
type policyTrigger struct{ st *rankState }

func (t policyTrigger) Decide(iter int, iterTime float64) bool {
	t.st.decision = t.st.pol.Decide(iter, iterTime)
	return t.st.decision.Redistribute
}

// phScatter is the scatter phase as an engine.Phase.
type phScatter struct{ st *rankState }

func (p phScatter) Name() string { return phaseNameScatter }
func (p phScatter) Run(int)      { p.st.scatterPhase() }

// phFieldSolve is the field-solve phase as an engine.Phase.
type phFieldSolve struct{ st *rankState }

func (p phFieldSolve) Name() string { return phaseNameFieldSolve }
func (p phFieldSolve) Run(int)      { p.st.fieldSolvePhase() }

// phGatherPush is the gather + push phase as an engine.Phase.
type phGatherPush struct{ st *rankState }

func (p phGatherPush) Name() string { return phaseNameGatherPush }
func (p phGatherPush) Run(int)      { p.st.gatherAndPushPhase() }

// phMigrate is the Eulerian per-iteration migration as an engine.Phase.
// Its cost is charged to the push phase, after the iteration measurement —
// part of TotalTime but not of the per-iteration record, as in the
// Eulerian baseline's accounting.
type phMigrate struct{ st *rankState }

func (p phMigrate) Name() string { return phaseNameMigrate }
func (p phMigrate) Run(int) {
	p.st.r.SetPhase(machine.PhasePush)
	p.st.migrate()
}

// phRedistribute is the policy-triggered redistribution as an engine.Phase.
// It owns its measurement (the globally agreed redistribution time feeds
// back into the policy) and marks the current iteration record.
//
// Failure contract: when the transport stack is Degradable (a
// comm.Reliable layer is installed), a redistribution whose exchange
// suffers unrecoverable delivery failures is discarded — every rank keeps
// its previous alignment, the wasted attempt time stays on the simulated
// clock (it is real time the machine burned), the policy is NOT notified
// (no new measurement baseline), and the trigger fires again at the next
// opportunity. Without a Degradable layer the failure propagates as a
// panic, aborting the run loudly.
type phRedistribute struct{ st *rankState }

func (p phRedistribute) Name() string { return phaseNameRedistribute }
func (p phRedistribute) Run(iter int) {
	st := p.st
	r := st.r
	r.SetPhase(machine.PhaseRedistribute)
	strat := st.decision.Strategy
	t0 := r.Clock().Now()
	failed := st.attemptRebalance(strat)
	comm.Barrier(r)
	rt := comm.ExposeMaxFloat64(r, r.Clock().Now()-t0)
	st.rec.RedistStrategy = strat.String()
	if failed {
		st.rec.RedistFailed = true
		st.rec.RedistTime = rt
		return
	}
	st.pol.NotifyRedistribution(iter, rt)
	st.rec.Redistributed = true
	st.rec.RedistTime = rt
}

// attemptRebalance runs the decided rebalance exchange, degrading
// gracefully when the transport can scope failures. Returns true when the
// attempt was discarded. On discard the policy is not notified, so a
// pending adaptive strategy choice rolls back with the layout.
func (st *rankState) attemptRebalance(strat policy.Strategy) bool {
	deg, ok := comm.AsDegradable(st.r)
	if !ok {
		st.rebalance(strat)
		return false
	}
	prevStore := st.store
	bounds := st.inc.SnapshotBounds()
	failures := deg.CollectFailures(func() { st.rebalance(strat) })
	// The discard decision must be unanimous — one rank's failed exchange
	// invalidates the redistribution everywhere, or the bucket-boundary
	// tables would diverge across ranks. Expose is out-of-band, so the
	// agreement itself cannot be perturbed.
	localFailed := 0.0
	if len(failures) > 0 {
		localFailed = 1
	}
	if comm.ExposeMaxFloat64(st.r, localFailed) == 0 {
		return false
	}
	// Roll back: the input store is never modified by Redistribute, so the
	// previous alignment is exactly (previous store, previous bounds).
	st.store = prevStore
	st.inc.RestoreBounds(bounds)
	return true
}

// verifyHook runs the conservation checks right after the scatter phase,
// while the deposited sources are still fresh.
type verifyHook struct{ st *rankState }

func (h verifyHook) Before(engine.Phase, int) {}
func (h verifyHook) After(p engine.Phase, iter int) {
	if p.Name() == phaseNameScatter {
		h.st.verifyInvariants(iter)
	}
}

// verifyInvariants checks, out of band, that the mesh-deposited charge sums
// to n·q (scatter conserved every contribution, local and ghost) and that
// no particles were lost.
func (st *rankState) verifyInvariants(iter int) {
	r := st.r
	// The check's barriers are bookkeeping, not ghost traffic.
	prev := r.Stats().CurrentPhase()
	r.SetPhase(machine.PhaseCommSetup)
	defer r.SetPhase(prev)
	totalRho := comm.ExposeSumFloat64(r, st.fields.SumRho())
	want := float64(st.cfg.NumParticles) * st.cfg.MacroCharge
	tol := 1e-9 * (1 + absF(want))
	if absF(totalRho-want) > tol {
		panic(fmt.Sprintf("pic: iter %d: mesh charge %g, want %g (scatter lost contributions)",
			iter, totalRho, want))
	}
	count := int(comm.ExposeSumFloat64(r, float64(st.store.Len())) + 0.5)
	if count != st.cfg.NumParticles {
		panic(fmt.Sprintf("pic: iter %d: %d particles, want %d", iter, count, st.cfg.NumParticles))
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// assignKeys refreshes every particle's SFC key and charges the indexing
// cost.
func (st *rankState) assignKeys() {
	st.ge.AssignKeys(st.store)
	st.r.Compute(st.store.Len() * geom.KeyAssignWorkPerParticle)
}

// rebalance rebuilds the particle layout the decided strategy names:
// Lagrangian redistribution over the equal-count or cost-weighted split,
// or a one-shot Eulerian migration onto the mesh owners. The zero-value
// strategy is the classic equal-count redistribution, byte for byte.
func (st *rankState) rebalance(strat policy.Strategy) {
	switch {
	case strat.Movement == policy.MovementEulerian:
		st.migrateOneShot()
	case strat.Split == policy.SplitCostWeighted:
		st.redistributeWeighted()
	default:
		st.redistribute()
	}
}

// redistribute runs Hilbert_Base_Indexing + Bucket_Incremental_Sorting +
// Order_Maintain_Load_Balance (Figure 12).
func (st *rankState) redistribute() {
	st.assignKeys()
	out, _ := st.inc.Redistribute(st.r, st.store)
	st.store = out
}

// redistributeWeighted is redistribute with the ledger-derived per-key
// weight function: the final order-maintaining balance cuts the sorted
// sequence at equal cumulative estimated cost instead of equal count.
func (st *rankState) redistributeWeighted() {
	st.assignKeys()
	wf := st.particleWeightFn()
	out, _ := st.inc.RedistributeWeighted(st.r, st.store, wf)
	st.store = out
}

// migrateOneShot runs one Eulerian migration as a strategy-selected
// rebalance. migrate ping-pongs st.spare with the live store; in the
// Lagrangian pipeline the live store may be one of the incremental
// sorter's internal output slots, which a later Redistribute reuses — so
// the spare is parked for the duration instead of capturing that slot,
// and the migrated-out store is left to the collector.
func (st *rankState) migrateOneShot() {
	spare := st.spare
	st.spare = nil
	st.migrate()
	st.spare = spare
}

// migrate moves every particle to the rank owning its cell's lower-left
// grid point — the per-iteration particle movement of the direct Eulerian
// method. Communication uses the same traffic-table + all-to-many protocol
// as redistribution.
func (st *rankState) migrate() {
	r := st.r
	s := st.store

	if st.migrateIdx == nil {
		st.migrateIdx = make([][]int, r.Size())
	}
	sendIdx := st.migrateIdx
	for d := range sendIdx {
		sendIdx[d] = sendIdx[d][:0]
	}
	// Ping-pong the kept store with the spare slot so each migration
	// recycles the arrays freed by the previous one.
	kept := st.spare
	if kept == nil {
		kept = s.NewLike(s.Len())
	} else {
		kept.Truncate(0)
		kept.Charge, kept.Mass = s.Charge, s.Mass
	}
	for i := 0; i < s.Len(); i++ {
		owner := st.ge.OwnerOfParticle(s, i)
		if owner == r.Rank() {
			kept.AppendFrom(s, i)
		} else {
			sendIdx[owner] = append(sendIdx[owner], i)
		}
	}
	r.Compute(s.Len() * 2)

	wf := s.WireFloats()
	send, counts := st.exchangeScratch()
	for d := 0; d < r.Size(); d++ {
		if len(sendIdx[d]) > 0 {
			send[d] = s.MarshalIndices(wire.Get(len(sendIdx[d])*wf), sendIdx[d])
			counts[d] = len(send[d])
			r.Compute(len(sendIdx[d]) * 7)
		}
	}
	var recv [][]float64
	if ex := st.dataEx; ex != nil {
		recv = ex.Exchange(r, send, ex.Counts(r, counts))
	} else {
		recvCounts := comm.ExchangeCounts(r, counts)
		recv = comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)
	}
	for src := 0; src < r.Size(); src++ {
		if src != r.Rank() && len(recv[src]) > 0 {
			if err := kept.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]))
			wire.Put(recv[src])
		}
	}
	st.spare = s
	st.store = kept
}

// exchangeScratch returns the reusable per-destination send headers and
// counts, cleared for a new exchange.
func (st *rankState) exchangeScratch() ([][]float64, []int) {
	if st.sendBufs == nil {
		st.sendBufs = make([][]float64, st.r.Size())
		st.sendCounts = make([]int, st.r.Size())
	}
	for d := range st.sendBufs {
		st.sendBufs[d] = nil
		st.sendCounts[d] = 0
	}
	return st.sendBufs, st.sendCounts
}

// scatterPhase deposits every particle's current and charge onto the
// vertex grid points of its cell (four in 2-D, eight in 3-D), accumulating
// off-processor contributions in the duplicate-removal table and shipping
// one coalesced message per destination owner.
func (st *rankState) scatterPhase() {
	r := st.r
	r.SetPhase(machine.PhaseScatter)
	fa := st.farr
	s := st.store

	st.fields.ZeroSources()
	st.table.Reset()
	st.ghostVals = st.ghostVals[:0]

	nv := st.ge.NumVertices()
	tableCost := st.table.CostPerOp()
	offprocOps := 0
	if st.workers > 1 {
		offprocOps = st.scatterDeposit()
	} else {
		fp := &st.fp
		for i := 0; i < s.Len(); i++ {
			st.ge.Footprint(s, i, fp)
			gamma := s.Gamma(i)
			vx, vy, vz := s.Px[i]/gamma, s.Py[i]/gamma, s.Pz[i]/gamma
			q := s.Charge
			for k := 0; k < fp.N; k++ {
				wq := fp.W[k] * q
				gid := int(fp.Gid[k])
				if c := st.fields.Slot(gid); c >= 0 {
					fa.Jx[c] += wq * vx
					fa.Jy[c] += wq * vy
					fa.Jz[c] += wq * vz
					fa.Rho[c] += wq
					continue
				}
				slot := st.table.Slot(gid)
				if 4*slot == len(st.ghostVals) {
					st.ghostVals = append(st.ghostVals, 0, 0, 0, 0)
				}
				st.ghostVals[4*slot] += wq * vx
				st.ghostVals[4*slot+1] += wq * vy
				st.ghostVals[4*slot+2] += wq * vz
				st.ghostVals[4*slot+3] += wq
				offprocOps++
			}
		}
	}
	// The δ charge never depends on Workers: the simulated machine has one
	// compute stream per rank, so wall-clock parallelism must not move the
	// modelled clock.
	r.Compute(s.Len()*nv*pusher.ScatterWorkPerVertex + offprocOps*tableCost)

	// Communication coalescing: one message per destination owner.
	st.registry.Build(st.table, r.Rank(), r.Size(), st.ge.OwnerOfPoint)
	send, counts := st.exchangeScratch()
	for k, dst := range st.registry.Dest {
		buf := wire.Get(len(st.registry.Gids[k]) * scatterWireFloats)
		for idx, gid := range st.registry.Gids[k] {
			slot := st.registry.Slots[k][idx]
			buf = append(buf, float64(gid),
				st.ghostVals[4*slot], st.ghostVals[4*slot+1],
				st.ghostVals[4*slot+2], st.ghostVals[4*slot+3])
		}
		send[dst] = buf
		counts[dst] = len(buf)
	}

	// The traffic table is protocol setup, not ghost data. Under a sparse
	// topology the same allgather additionally yields the global far-traffic
	// verdict: ghost contributions are stencil-local while the particle
	// partition stays aligned with the mesh blocks, but a cost-weighted
	// repartition can hand a rank particles whose cells any rank owns, and
	// those payloads must ride the systolic relay instead of a refused
	// direct send.
	r.SetPhase(machine.PhaseCommSetup)
	var recvCounts []int
	st.scatterFar = false
	if tp := st.topo; tp != nil {
		recvCounts, st.scatterFar = comm.ExchangeCountsSparse(r, tp, counts)
	} else {
		recvCounts = comm.ExchangeCounts(r, counts)
	}
	r.SetPhase(machine.PhaseScatter)
	var recv [][]float64
	if tp := st.topo; tp != nil {
		recv = comm.AllToManySparseFloat64s(r, tp, send, recvCounts, st.scatterFar)
	} else {
		recv = comm.AllToManyFloat64s(r, send, recvCounts)
	}

	// Accumulate received contributions; remember who asked for what so
	// the gather phase can reply in kind.
	if st.recvGids == nil {
		st.recvGids = make([][]float64, r.Size())
	}
	for src := 0; src < r.Size(); src++ {
		st.recvGids[src] = st.recvGids[src][:0]
		buf := recv[src]
		if src == r.Rank() || len(buf) == 0 {
			continue
		}
		gids := st.recvGids[src]
		for o := 0; o < len(buf); o += scatterWireFloats {
			c := st.fields.Slot(int(buf[o]))
			fa.Jx[c] += buf[o+1]
			fa.Jy[c] += buf[o+2]
			fa.Jz[c] += buf[o+3]
			fa.Rho[c] += buf[o+4]
			gids = append(gids, buf[o])
		}
		st.recvGids[src] = gids
		r.Compute(len(gids) * 4)
		wire.Put(buf)
	}
}

// fieldSolvePhase advances Maxwell's equations one leapfrog step.
func (st *rankState) fieldSolvePhase() {
	st.r.SetPhase(machine.PhaseFieldSolve)
	st.fields.Solve(st.r, st.cfg.Dt)
}

// gatherAndPushPhase is the inverse of scatter: mesh owners return E and B
// at exactly the ghost points each rank contributed to, then every particle
// gathers its fields from its cell's vertices and is pushed.
func (st *rankState) gatherAndPushPhase() {
	r := st.r
	r.SetPhase(machine.PhaseGather)
	fa := st.farr
	s := st.store

	// Reply to every rank that deposited here. Replies retrace the scatter's
	// routes: direct sends to linked ranks, and — on iterations whose
	// scatter saw far traffic — one systolic relay pass for the rest. The
	// scatterFar verdict is global, so every rank agrees on whether the
	// relay collective runs.
	far := st.topo != nil && st.scatterFar
	var farSend [][]float64
	var farCounts []int
	if far {
		farSend = make([][]float64, r.Size())
		farCounts = make([]int, r.Size())
	}
	for src := 0; src < r.Size(); src++ {
		gids := st.recvGids[src]
		if len(gids) == 0 {
			continue
		}
		buf := wire.Get(len(gids) * gatherWireFloats)
		for _, fgid := range gids {
			c := st.fields.Slot(int(fgid))
			buf = append(buf, fa.Ex[c], fa.Ey[c], fa.Ez[c], fa.Bx[c], fa.By[c], fa.Bz[c])
		}
		r.Compute(len(gids) * 2)
		if far && !st.topo.Connected(r.Rank(), src) {
			farSend[src] = buf
			continue
		}
		comm.SendFloat64s(r, src, tagGatherReply, buf)
	}
	var farRecv [][]float64
	if far {
		// Every reply size is known locally: the owner returns exactly one
		// field sample per ghost point this rank deposited there.
		for k, dst := range st.registry.Dest {
			if !st.topo.Connected(r.Rank(), dst) {
				farCounts[dst] = len(st.registry.Gids[k]) * gatherWireFloats
			}
		}
		farRecv = comm.AllToManySystolicFloat64s(r, farSend, farCounts)
	}

	// Collect replies for our own ghost points.
	if cap(st.ghostEB) < gatherWireFloats*st.table.Len() {
		st.ghostEB = make([]float64, gatherWireFloats*st.table.Len())
	}
	st.ghostEB = st.ghostEB[:gatherWireFloats*st.table.Len()]
	for k, dst := range st.registry.Dest {
		var buf []float64
		if far && !st.topo.Connected(r.Rank(), dst) {
			buf = farRecv[dst]
		} else {
			buf = comm.RecvFloat64s(r, dst, tagGatherReply)
		}
		for idx, slot := range st.registry.Slots[k] {
			copy(st.ghostEB[gatherWireFloats*slot:], buf[gatherWireFloats*idx:gatherWireFloats*idx+gatherWireFloats])
		}
		wire.Put(buf)
	}

	// Interpolate fields at particles and push. Per-particle independent,
	// so the parallel range split is bit-identical; the δ charge is
	// worker-count-invariant like the scatter's.
	nv := st.ge.NumVertices()
	dt := st.cfg.Dt
	if st.workers > 1 {
		st.gpTask = gatherPushTask{st: st, dt: dt}
		st.pool.Run(s.Len(), &st.gpTask)
	} else {
		fp := &st.fp
		for i := 0; i < s.Len(); i++ {
			st.ge.Footprint(s, i, fp)
			var ex, ey, ez, bx, by, bz float64
			for k := 0; k < fp.N; k++ {
				gid := int(fp.Gid[k])
				wk := fp.W[k]
				if c := st.fields.Slot(gid); c >= 0 {
					ex += wk * fa.Ex[c]
					ey += wk * fa.Ey[c]
					ez += wk * fa.Ez[c]
					bx += wk * fa.Bx[c]
					by += wk * fa.By[c]
					bz += wk * fa.Bz[c]
					continue
				}
				slot := st.table.Lookup(gid)
				if slot < 0 {
					panic(fmt.Sprintf("pic: rank %d gather miss at point %d", r.Rank(), gid))
				}
				o := gatherWireFloats * slot
				ex += wk * st.ghostEB[o]
				ey += wk * st.ghostEB[o+1]
				ez += wk * st.ghostEB[o+2]
				bx += wk * st.ghostEB[o+3]
				by += wk * st.ghostEB[o+4]
				bz += wk * st.ghostEB[o+5]
			}
			pusher.BorisPush(s, i, ex, ey, ez, bx, by, bz, dt)
		}
	}
	r.Compute(s.Len() * nv * pusher.GatherWorkPerVertex)

	// Push phase: move particles (no interprocessor communication — the
	// direct Lagrangian property).
	r.SetPhase(machine.PhasePush)
	if st.workers > 1 {
		st.mvTask = moveTask{st: st, dt: dt}
		st.pool.Run(s.Len(), &st.mvTask)
	} else {
		for i := 0; i < s.Len(); i++ {
			st.ge.Move(s, i, dt)
		}
	}
	r.Compute(s.Len() * pusher.PushWorkPerParticle)
}
