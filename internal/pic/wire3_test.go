package pic

import (
	"testing"

	"picpar/internal/geom"
	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/sfc"
	"picpar/internal/wire"
)

func testGeom3(t *testing.T, p int) *geom.G3 {
	t.Helper()
	g := mesh3.NewGrid(16, 16, 16)
	d, err := mesh3.NewDistOrdered(g, p, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sfc.New3(sfc.SchemeHilbert, g.Nx, g.Ny, g.Nz)
	if err != nil {
		t.Fatal(err)
	}
	return geom.New3(g, d, ix)
}

// TestWire3DParticleRoundTrip: a 3-D store marshalled through a pooled
// wire buffer and appended back is bit-identical, including the z axis and
// the 8-float stride.
func TestWire3DParticleRoundTrip(t *testing.T) {
	s, err := particle.Generate3(particle.Config3{
		N: 257, Lx: 16, Ly: 16, Lz: 16, Distribution: particle.DistIrregular, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		s.Key[i] = float64(i * 3)
	}
	if s.WireFloats() != 8 {
		t.Fatalf("3-D wire stride %d, want 8", s.WireFloats())
	}

	buf := s.MarshalRange(wire.Get(s.Len()*s.WireFloats()), 0, s.Len())
	if len(buf) != s.Len()*8 {
		t.Fatalf("marshalled %d floats, want %d", len(buf), s.Len()*8)
	}
	out := s.NewLike(s.Len())
	if err := out.AppendWire(buf); err != nil {
		t.Fatal(err)
	}
	wire.Put(buf)

	if out.Len() != s.Len() {
		t.Fatalf("round trip length %d, want %d", out.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if out.X[i] != s.X[i] || out.Y[i] != s.Y[i] || out.Z[i] != s.Z[i] ||
			out.Px[i] != s.Px[i] || out.Py[i] != s.Py[i] || out.Pz[i] != s.Pz[i] ||
			out.ID[i] != s.ID[i] || out.Key[i] != s.Key[i] {
			t.Fatalf("particle %d changed across the wire", i)
		}
	}
}

// TestWire3DScatterLayoutRoundTrip drives the scatter ghost payload —
// scatterWireFloats records of (gid, Jx, Jy, Jz, Rho) — through a pooled
// buffer for every ghost point of a real 3-D footprint set, and checks the
// decoded gids resolve to owned slots on the destination rank.
func TestWire3DScatterLayoutRoundTrip(t *testing.T) {
	ge := testGeom3(t, 8)
	s, err := ge.Generate(geom.GenConfig{N: 512, Distribution: particle.DistUniform, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Collect per-owner ghost contributions exactly as scatterPhase lays
	// them out on the wire.
	type contrib struct {
		gid            int
		jx, jy, jz, rh float64
	}
	perOwner := map[int][]contrib{}
	var fp geom.Footprint
	for i := 0; i < s.Len(); i++ {
		ge.Footprint(s, i, &fp)
		if fp.N != 8 {
			t.Fatalf("3-D footprint has %d vertices, want 8", fp.N)
		}
		for k := 0; k < fp.N; k++ {
			gid := int(fp.Gid[k])
			o := ge.OwnerOfPoint(gid)
			perOwner[o] = append(perOwner[o], contrib{
				gid: gid, jx: float64(i), jy: float64(k), jz: 0.25, rh: fp.W[k],
			})
		}
	}
	if len(perOwner) < 2 {
		t.Fatal("footprints touched fewer than 2 owners — nothing crosses the wire")
	}

	for owner, cs := range perOwner {
		buf := wire.Get(len(cs) * scatterWireFloats)
		for _, c := range cs {
			buf = append(buf, float64(c.gid), c.jx, c.jy, c.jz, c.rh)
		}
		if len(buf) != len(cs)*scatterWireFloats {
			t.Fatalf("owner %d: payload %d floats, want %d", owner, len(buf), len(cs)*scatterWireFloats)
		}

		// Decode on the destination: every gid must map to an owned slot of
		// that rank's field substrate.
		fields := ge.NewFields(owner, nil)
		for o := 0; o < len(buf); o += scatterWireFloats {
			c := fields.Slot(int(buf[o]))
			if c < 0 {
				t.Fatalf("owner %d: wire gid %d not owned by destination", owner, int(buf[o]))
			}
			fields.Arrays().Jx[c] += buf[o+1]
			fields.Arrays().Jy[c] += buf[o+2]
			fields.Arrays().Jz[c] += buf[o+3]
			fields.Arrays().Rho[c] += buf[o+4]
		}

		// The deposited charge must match what was sent (different
		// accumulation order, so compare to rounding error).
		sent := 0.0
		for _, c := range cs {
			sent += c.rh
		}
		if got := fields.SumRho(); got < sent*(1-1e-12) || got > sent*(1+1e-12) {
			t.Errorf("owner %d: deposited Rho %g, sent %g", owner, got, sent)
		}
		wire.Put(buf)
	}
}

// TestWire3DGatherLayoutRoundTrip drives the gather reply payload —
// gatherWireFloats records of (Ex, Ey, Ez, Bx, By, Bz) — through a pooled
// buffer in the recvGids order the protocol uses, and checks the values
// land on the requesting side unchanged.
func TestWire3DGatherLayoutRoundTrip(t *testing.T) {
	ge := testGeom3(t, 8)
	fields := ge.NewFields(3, nil)
	fa := fields.Arrays()

	// Give every owned point a distinctive field value keyed by gid.
	var gids []float64
	for gid := 0; gid < ge.NumPoints(); gid++ {
		if c := fields.Slot(gid); c >= 0 {
			fa.Ex[c] = float64(gid)
			fa.Ey[c] = float64(gid) + 0.125
			fa.Ez[c] = float64(gid) + 0.25
			fa.Bx[c] = -float64(gid)
			fa.By[c] = 0.5
			fa.Bz[c] = float64(gid) * 2
			gids = append(gids, float64(gid))
		}
	}

	// Owner side: build the reply exactly as gatherAndPushPhase does.
	buf := wire.Get(len(gids) * gatherWireFloats)
	for _, fgid := range gids {
		c := fields.Slot(int(fgid))
		buf = append(buf, fa.Ex[c], fa.Ey[c], fa.Ez[c], fa.Bx[c], fa.By[c], fa.Bz[c])
	}
	if len(buf) != len(gids)*gatherWireFloats {
		t.Fatalf("reply payload %d floats, want %d", len(buf), len(gids)*gatherWireFloats)
	}

	// Requester side: slot o of the reply corresponds to slot o of the
	// request order.
	for o, fgid := range gids {
		b := buf[o*gatherWireFloats:]
		if b[0] != fgid || b[1] != fgid+0.125 || b[2] != fgid+0.25 ||
			b[3] != -fgid || b[4] != 0.5 || b[5] != fgid*2 {
			t.Fatalf("gather reply slot %d corrupted: %v", o, b[:gatherWireFloats])
		}
	}
	wire.Put(buf)
}
