package pic

import (
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/policy"
)

// base3 is the 3-D counterpart of base(): the same pipeline selected onto
// a 3-D geometry by Config.Dims.
func base3() Config {
	return Config{
		Dims:         3,
		Grid3:        mesh3.NewGrid(16, 16, 16),
		P:            8,
		NumParticles: 2048,
		Distribution: particle.DistIrregular,
		Seed:         7,
		Iterations:   10,
		Verify:       true,
		Watchdog:     commtest.Watchdog(),
	}
}

func TestRun3DBasic(t *testing.T) {
	res, err := Run(base3())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("records %d, want 10", len(res.Records))
	}
	if res.FinalParticleCount != 2048 {
		t.Fatalf("particles not conserved: %d, want 2048", res.FinalParticleCount)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

// TestGolden3DDeterminism pins the exact simulated total of the 3-D
// reference run, exactly as TestGoldenDeterminism does for 2-D: the
// dimension-generic pipeline is fully deterministic, so any drift means
// the cost model, the protocol, or the physics changed.
func TestGolden3DDeterminism(t *testing.T) {
	res, err := Run(base3())
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(base3())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != again.TotalTime {
		t.Fatalf("3-D run not reproducible: %.12g vs %.12g", res.TotalTime, again.TotalTime)
	}
	got := res.TotalTime
	// Reference recorded when the 3-D pipeline first ran end-to-end.
	const recorded = 1.5221545
	if diff := got - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Errorf("3-D reference run total changed: got %.12g, recorded %.12g", got, recorded)
	}
}

// TestRun3DDynamicRedistributes: the Stop-At-Rise policy observes the 3-D
// run's measured iteration times and triggers incremental redistributions
// through the same degradable phase as 2-D — with conservation intact.
func TestRun3DDynamicRedistributes(t *testing.T) {
	cfg := base3()
	cfg.Iterations = 30
	cfg.Policy = policy.NewDynamic()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRedistributions == 0 {
		t.Fatal("SAR policy never fired over 30 drifting 3-D iterations")
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Fatalf("particles lost across 3-D redistribution: %d, want %d",
			res.FinalParticleCount, cfg.NumParticles)
	}
	redistIters := 0
	for _, rec := range res.Records {
		if rec.Redistributed {
			redistIters++
			if rec.RedistTime <= 0 {
				t.Errorf("iter %d redistributed in zero time", rec.Iter)
			}
		}
	}
	if redistIters != res.NumRedistributions {
		t.Errorf("record marks %d redistributions, result says %d", redistIters, res.NumRedistributions)
	}
}

// chaosBase3 mirrors chaosBase in three dimensions: a Periodic policy so
// the redistribution schedule is clock-independent and physics must be
// byte-identical under recovered perturbation.
func chaosBase3() Config {
	cfg := base3()
	cfg.Policy = policy.NewPeriodic(3)
	return cfg
}

// TestChaos3DByteIdenticalUnderReliable: the full 3-D simulation, perturbed
// by every seeded plan but recovered by Reliable underneath a Tracer (the
// production decorator stack Tracer∘Reliable∘Faulty), reproduces the
// fault-free physics exactly — the graceful-degradation machinery composes
// over the geometry seam unchanged.
func TestChaos3DByteIdenticalUnderReliable(t *testing.T) {
	cfg := chaosBase3()
	cfg.Diagnostics = true
	cfg.DiagEvery = 1
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(clean)

	for pi, plan := range e2ePlans {
		faulty := comm.NewFaulty(plan)
		rel := comm.NewReliable(comm.ReliableConfig{})
		tracer := comm.NewTracer()
		perturbed := cfg
		perturbed.Transport = func(tr comm.Transport) comm.Transport {
			return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
		}
		res, err := Run(perturbed)
		if err != nil {
			t.Fatalf("plan %d: %v", pi, err)
		}
		got := fingerprint(res)
		if !equalFingerprints(got, want) {
			t.Errorf("plan %d: 3-D physics diverged under recovered faults\n got %+v\nwant %+v",
				pi, got, want)
		}
		if res.FailedRedistributions != 0 {
			t.Errorf("plan %d: %d redistributions failed under a recoverable plan",
				pi, res.FailedRedistributions)
		}
		c := faulty.Counts()
		if c.Drops+c.Dups+c.Reorders+c.Delays == 0 {
			t.Errorf("plan %d injected no faults — soak exercised nothing", pi)
		}
		if res.TotalTime <= clean.TotalTime {
			t.Errorf("plan %d: perturbed run not slower than clean (%.9g <= %.9g)",
				pi, res.TotalTime, clean.TotalTime)
		}
	}
}

// TestChaos3DDegradesGracefully: unrecoverable redistribution exchanges in
// 3-D are rolled back exactly like 2-D — the run completes on the previous
// alignment with conservation and the invariant checks intact.
func TestChaos3DDegradesGracefully(t *testing.T) {
	cfg := chaosBase3()
	cfg.Verify = true
	faulty := comm.NewFaulty(redistKillPlan())
	rel := comm.NewReliable(comm.ReliableConfig{MaxRetries: 2})
	cfg.Transport = func(tr comm.Transport) comm.Transport {
		return rel.Wrap(faulty.Wrap(tr))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRedistributions == 0 {
		t.Fatal("no redistribution failed under a redistribution-killing plan")
	}
	if res.NumRedistributions != 0 {
		t.Errorf("%d redistributions succeeded despite certain exchange failure", res.NumRedistributions)
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles lost across failed 3-D redistributions: %d, want %d",
			res.FinalParticleCount, cfg.NumParticles)
	}
}
