package pic

import (
	"testing"

	"picpar/internal/particle"
)

// TestScatterTrafficRespectsPaperBound checks the u = min(m/p, 4·n/p) ghost
// bound from the paper's Section 4 complexity analysis: the data any rank
// sends in the scatter phase cannot exceed the wire size of 4 grid points
// per local particle, and message counts cannot exceed p−1.
func TestScatterTrafficRespectsPaperBound(t *testing.T) {
	cfg := base()
	cfg.NumParticles = 4096
	cfg.Iterations = 60
	cfg.Thermal = 0.6 // spread hard to stress the bound
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perRank := cfg.NumParticles/cfg.P + 1
	m := cfg.Grid.NumPoints()
	ghostBound := 4 * perRank
	if mp := m; mp < ghostBound {
		ghostBound = mp
	}
	byteBound := int64(ghostBound * scatterWireFloats * 8)
	for _, rec := range res.Records {
		if rec.ScatterBytesSent > byteBound {
			t.Fatalf("iter %d: scatter bytes %d exceed u-bound %d", rec.Iter, rec.ScatterBytesSent, byteBound)
		}
		if rec.ScatterMsgsSent > int64(cfg.P-1) {
			t.Fatalf("iter %d: %d messages exceed p-1", rec.Iter, rec.ScatterMsgsSent)
		}
	}
}

// TestComputeBalanceStrict verifies the direct Lagrangian guarantee: with
// balanced particle counts, per-rank computation stays nearly equal even as
// communication degrades (the premise that lets the SAR policy attribute
// iteration-time growth entirely to communication).
func TestComputeBalanceStrict(t *testing.T) {
	cfg := base()
	cfg.NumParticles = 4096
	cfg.Iterations = 50
	cfg.Distribution = particle.DistIrregular
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Max over ranks of total compute vs mean: within 5%.
	mean := res.ComputeSum / float64(cfg.P)
	if res.ComputeMax > 1.05*mean {
		t.Errorf("compute imbalance: max %g vs mean %g", res.ComputeMax, mean)
	}
}
