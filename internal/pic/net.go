// RunNet: one OS process's rank of a simulation over the TCP transport
// backend. The launcher/coordinator side lives in comm (StartCoordinator,
// SuperviseRanks) and cmd/picsim; this is the piece every rank process
// calls after parsing its flags.

package pic

import (
	"fmt"

	"picpar/internal/comm"
	"picpar/internal/machine"
)

// RunNet joins the TCP world described by ncfg and runs this process's rank
// of the configured simulation. The world size comes from ncfg; cfg.P is
// overridden. cfg.Transport (the decorator chain) wraps the TCP endpoint
// exactly as it wraps goroutine ranks, so the chaos stack composes
// unchanged. Returns rank 0's Result, or (nil, nil) on other ranks; any
// rank failure — including a peer dying mid-run — comes back as an error
// (never a hang, bounded by the backend's timeouts).
func RunNet(ncfg comm.NetConfig, cfg Config) (*Result, error) {
	if cfg.CustomParticles != nil {
		cfg.NumParticles = cfg.CustomParticles.Len()
		if cfg.CustomParticles.Charge != 0 {
			cfg.MacroCharge = cfg.CustomParticles.Charge
		}
	}
	cfg.P = ncfg.Size
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Topology: hierarchical replaces the transport itself and only exists
	// in-process (pic.Run); the flat topologies become the descriptor the
	// TCP backend assembles its socket mesh from — sparse topologies dial
	// O(P·k) sockets instead of O(P²), and the rendezvous pins the
	// descriptor digest so mismatched ranks are rejected at assembly.
	kind, _, perr := parseTopology(cfg.Topology, cfg.P)
	if perr != nil {
		return nil, perr
	}
	if kind == TopologyHierarchical {
		return nil, fmt.Errorf("pic: the %s topology runs on the in-process hierarchical backend (pic.Run); the TCP backend takes flat topologies only", TopologyHierarchical)
	}
	if ncfg.Topology == nil && kind != TopologyFullMesh {
		tp, terr := TopologyFor(cfg)
		if terr != nil {
			return nil, terr
		}
		ncfg.Topology = tp
	}
	if ncfg.Params == (machine.Params{}) {
		ncfg.Params = cfg.Machine
	}
	if ncfg.Watchdog <= 0 {
		ncfg.Watchdog = cfg.Watchdog
	}
	var res *Result
	rank := func(t comm.Transport) {
		r, rerr := RunRank(t, cfg)
		if rerr != nil {
			panic(rerr)
		}
		res = r
	}
	// With Recover on, the rank is elastic: when the world dies under it
	// (a peer was killed), it parks, rejoins through the rendezvous and
	// reruns the simulation — which restores the agreed checkpoint epoch
	// and continues. RunRank is re-entered from the top, so each attempt
	// starts from a clean state.
	var err error
	if cfg.Recover {
		_, err = comm.NetRankElastic(ncfg, cfg.Transport, rank)
	} else {
		_, err = comm.NetRank(ncfg, cfg.Transport, rank)
	}
	return res, err
}
