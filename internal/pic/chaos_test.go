package pic

import (
	"testing"
	"time"

	"picpar/internal/comm"
	"picpar/internal/machine"
	"picpar/internal/policy"
)

// chaosBase is the end-to-end configuration the chaos soak runs: small
// enough to be quick, irregular enough that redistribution traffic is real.
// The Periodic policy makes the redistribution schedule independent of
// measured times, so physics outputs must be byte-identical under any
// recovered perturbation (the Dynamic policy's schedule legitimately shifts
// with perturbed clocks — that is its job).
func chaosBase() Config {
	cfg := base()
	cfg.Policy = policy.NewPeriodic(3)
	return cfg
}

// physicsFingerprint reduces a run to the outputs that must survive
// perturbation byte-for-byte: particle conservation, the redistribution
// schedule, and the energy histories. Timing and traffic fields are
// excluded by design — faults perturb clocks and message counts.
type physicsFingerprint struct {
	FinalCount int
	NumRedist  int
	Schedule   []bool
	FieldE     []float64
	KineticE   []float64
}

func fingerprint(res *Result) physicsFingerprint {
	fp := physicsFingerprint{
		FinalCount: res.FinalParticleCount,
		NumRedist:  res.NumRedistributions,
	}
	for _, rec := range res.Records {
		fp.Schedule = append(fp.Schedule, rec.Redistributed)
		fp.FieldE = append(fp.FieldE, rec.FieldEnergy)
		fp.KineticE = append(fp.KineticE, rec.KineticEnergy)
	}
	return fp
}

func equalFingerprints(a, b physicsFingerprint) bool {
	if a.FinalCount != b.FinalCount || a.NumRedist != b.NumRedist ||
		len(a.Schedule) != len(b.Schedule) {
		return false
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] || a.FieldE[i] != b.FieldE[i] ||
			a.KineticE[i] != b.KineticE[i] {
			return false
		}
	}
	return true
}

// e2ePlans are the seeded fault plans the end-to-end soak runs under.
var e2ePlans = []comm.FaultPlan{
	{Seed: 0xA11CE, DropProb: 0.05, MaxDropAttempts: 3},
	{Seed: 0xB0B, DupProb: 0.05, ReorderProb: 0.05},
	{Seed: 0xCAB00D1E, DropProb: 0.03, MaxDropAttempts: 2, DupProb: 0.03,
		ReorderProb: 0.03, DelayProb: 0.05, MaxDelay: 1e-3},
}

// TestChaosSimByteIdenticalUnderReliable: the full simulation, perturbed by
// every seeded plan but recovered by Reliable, reproduces the fault-free
// physics exactly.
func TestChaosSimByteIdenticalUnderReliable(t *testing.T) {
	cfg := chaosBase()
	cfg.Diagnostics = true
	cfg.DiagEvery = 1
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(clean)

	for pi, plan := range e2ePlans {
		faulty := comm.NewFaulty(plan)
		rel := comm.NewReliable(comm.ReliableConfig{})
		perturbed := cfg
		perturbed.Transport = func(tr comm.Transport) comm.Transport {
			return rel.Wrap(faulty.Wrap(tr))
		}
		res, err := Run(perturbed)
		if err != nil {
			t.Fatalf("plan %d: %v", pi, err)
		}
		got := fingerprint(res)
		if !equalFingerprints(got, want) {
			t.Errorf("plan %d: physics diverged under recovered faults\n got %+v\nwant %+v",
				pi, got, want)
		}
		if res.FailedRedistributions != 0 {
			t.Errorf("plan %d: %d redistributions failed under a recoverable plan",
				pi, res.FailedRedistributions)
		}
		c := faulty.Counts()
		if c.Drops+c.Dups+c.Reorders+c.Delays == 0 {
			t.Errorf("plan %d injected no faults — soak exercised nothing", pi)
		}
		if res.TotalTime <= clean.TotalTime {
			t.Errorf("plan %d: perturbed run not slower than clean (%.9g <= %.9g) — recovery charged no time",
				pi, res.TotalTime, clean.TotalTime)
		}
	}
}

// TestChaosSimFailsLoudlyWithoutReliable: the same perturbed simulation
// without a reliability layer must abort with a diagnostic DeliveryError,
// never hang (the armed watchdog converts a hang into a different panic and
// fails the assertion).
func TestChaosSimFailsLoudlyWithoutReliable(t *testing.T) {
	cfg := chaosBase()
	cfg.Watchdog = 2 * time.Second // peers of the failed rank are genuinely stuck
	faulty := comm.NewFaulty(e2ePlans[0])
	cfg.Transport = faulty.Wrap
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("perturbed run without Reliable did not fail")
		}
		de := comm.AsDeliveryError(e)
		if de == nil {
			t.Fatalf("panic %T (%v), want a *DeliveryError", e, e)
		}
		if de.Reason == "" || de.Peer < 0 || de.Peer >= cfg.P {
			t.Errorf("DeliveryError lacks diagnostics: %v", de)
		}
	}()
	_, _ = Run(cfg)
}

// redistKillPlan drops every steady-state redistribution-exchange message
// more times than the test's retry budget allows, while leaving everything
// else clean: only the all-to-many payload exchange, only during the
// redistribution phase, and only after the warm-up grace covering the
// initial distribution's own exchanges (which run outside the degradable
// scope — there is no previous alignment to fall back to at init).
func redistKillPlan() comm.FaultPlan {
	return comm.FaultPlan{
		Seed:            99,
		DropProb:        1,
		MaxDropAttempts: 64, // attempts uniform in 1..64: almost every message exceeds MaxRetries=2
		Tags:            []comm.Tag{comm.TagCollAllToMany},
		Phases:          []machine.Phase{machine.PhaseRedistribute},
		MinSeq:          2, // initial distribution sends at most 2 all-to-many messages per link
	}
}

// TestChaosSimDegradesGracefully: with redistribution exchanges made
// unrecoverable, every triggered redistribution is discarded — the run
// completes, keeps the previous alignment (conservation still holds), burns
// the wasted time, and records the failures.
func TestChaosSimDegradesGracefully(t *testing.T) {
	cfg := chaosBase()
	faulty := comm.NewFaulty(redistKillPlan())
	rel := comm.NewReliable(comm.ReliableConfig{MaxRetries: 2})
	cfg.Transport = func(tr comm.Transport) comm.Transport {
		return rel.Wrap(faulty.Wrap(tr))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRedistributions == 0 {
		t.Fatal("no redistribution failed under a redistribution-killing plan")
	}
	if res.NumRedistributions != 0 {
		t.Errorf("%d redistributions succeeded despite certain exchange failure",
			res.NumRedistributions)
	}
	if res.WastedRedistTime <= 0 {
		t.Error("failed attempts charged no wasted time")
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles lost across failed redistributions: %d, want %d",
			res.FinalParticleCount, cfg.NumParticles)
	}
	for _, rec := range res.Records {
		if rec.RedistFailed && rec.Redistributed {
			t.Errorf("iter %d marked both failed and redistributed", rec.Iter)
		}
		if rec.RedistFailed && rec.RedistTime <= 0 {
			t.Errorf("iter %d failed redistribution recorded no attempt time", rec.Iter)
		}
	}
	// The trigger must keep retrying: with Periodic(3) over 10 iterations,
	// every one of the scheduled attempts fails (none is "used up").
	if res.FailedRedistributions < 2 {
		t.Errorf("only %d failed attempts recorded — trigger did not retry", res.FailedRedistributions)
	}
}

// TestChaosAdaptiveRollsBackStrategyState: under the Adaptive policy with
// every redistribution exchange made unrecoverable, each attempt's chosen
// strategy is rolled back along with the layout — the policy is never
// notified, no strategy is committed, and the chooser keeps firing at every
// scheduled trigger (its own ledger allgather rides the clean allgather
// tag, outside the killed all-to-many exchange).
func TestChaosAdaptiveRollsBackStrategyState(t *testing.T) {
	cfg := chaosBase()
	cfg.Policy = policy.NewAdaptiveEvery(3)
	faulty := comm.NewFaulty(redistKillPlan())
	rel := comm.NewReliable(comm.ReliableConfig{MaxRetries: 2})
	cfg.Transport = func(tr comm.Transport) comm.Transport {
		return rel.Wrap(faulty.Wrap(tr))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRedistributions != 0 {
		t.Errorf("%d redistributions succeeded despite certain exchange failure",
			res.NumRedistributions)
	}
	if len(res.RedistByStrategy) != 0 {
		t.Errorf("failed attempts committed strategies: %v", res.RedistByStrategy)
	}
	if res.FailedRedistributions < 2 {
		t.Errorf("only %d failed attempts — the adaptive trigger did not retry",
			res.FailedRedistributions)
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles lost across failed adaptive attempts: %d, want %d",
			res.FinalParticleCount, cfg.NumParticles)
	}
	for _, rec := range res.Records {
		if rec.RedistFailed && rec.RedistStrategy == "" {
			t.Errorf("iter %d failed attempt recorded no chosen strategy", rec.Iter)
		}
	}
}

// TestChaosSimVerifyInvariantsHoldAfterDegradation: the conservation checks
// (Verify) pass across discarded redistributions — the rollback keeps a
// consistent alignment, not a corrupted half-exchange.
func TestChaosSimVerifyInvariantsHoldAfterDegradation(t *testing.T) {
	cfg := chaosBase()
	cfg.Verify = true
	faulty := comm.NewFaulty(redistKillPlan())
	rel := comm.NewReliable(comm.ReliableConfig{MaxRetries: 2})
	cfg.Transport = func(tr comm.Transport) comm.Transport {
		return rel.Wrap(faulty.Wrap(tr))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRedistributions == 0 {
		t.Fatal("plan did not exercise degradation")
	}
}
