// Package pic assembles the substrates into the paper's full parallel PIC
// simulation: independent partitioning (BLOCK mesh + SFC-ordered
// particles), direct Lagrangian particle movement between redistributions,
// the four-phase time step (scatter, field solve, gather, push) with
// ghost-point communication, and policy-driven dynamic redistribution via
// bucket-based incremental sorting.
package pic

import (
	"fmt"
	"time"

	"picpar/internal/ckpt"
	"picpar/internal/comm"
	"picpar/internal/commopt"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/policy"
	"picpar/internal/sfc"
)

// Config describes one simulation run.
type Config struct {
	// Dims selects the spatial dimensionality: 2 (default) or 3. The whole
	// pipeline — phases, transport decorators, policies, redistribution —
	// is dimension-generic over the geometry seam (internal/geom); Dims
	// only picks which geometry is built.
	Dims int
	// Grid is the global 2-D mesh; zero value means 64×32. Used when
	// Dims == 2.
	Grid mesh.Grid
	// Grid3 is the global 3-D mesh; zero value means 16×16×16. Used when
	// Dims == 3.
	Grid3 mesh3.Grid
	// P is the number of ranks (processors).
	P int
	// NumParticles is the global particle count n.
	NumParticles int
	// Distribution selects the initial particle distribution
	// (particle.DistUniform, DistIrregular, DistTwoStream, DistBeam,
	// DistSpike, DistCollapse).
	Distribution string
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Iterations is the number of PIC time steps.
	Iterations int
	// Dt is the time step; default 0.2 (CFL-safe for unit cells, c=1).
	Dt float64
	// Indexing selects the particle ordering (sfc.SchemeHilbert,
	// SchemeSnake, SchemeRowMajor, SchemeMorton); default Hilbert.
	Indexing string
	// Policy creates the redistribution decision policy; default Static.
	Policy policy.Factory
	// Table selects the duplicate-removal structure (commopt.TableDirect
	// or TableHash); default direct.
	Table string
	// Topology selects the communication topology (see topology.go): ""
	// or "full-mesh" (the classic any-to-any world), "neighbor-sparse"
	// (links only between spatially adjacent ranks plus the collective
	// skeleton), "systolic-ring" (ring links; exchanges pulse around the
	// ring in P−1 deterministic steps), or "hierarchical[:H]" (ranks
	// grouped onto H hosts, one gateway per host; goroutine backend only).
	// Physics is identical under every topology.
	Topology string
	// Buckets is the incremental-sort bucket count per rank; 0 = default.
	Buckets int
	// Workers is the number of shared-memory workers each rank spreads its
	// physics kernels over (scatter deposition, gather/push, Maxwell sweeps,
	// radix sorts). 0 means $PICPAR_PROCS, defaulting to 1 (sequential).
	// Results are bit-identical for every worker count: the parallel kernels
	// reproduce the sequential accumulation order exactly, and the simulated
	// machine.Clock charges never depend on Workers.
	Workers int
	// Machine gives the cost-model constants; zero value means CM5.
	Machine machine.Params
	// MeshDist1D selects a 1-D (row) BLOCK mesh distribution instead of
	// the default 2-D blocks.
	MeshDist1D bool
	// Eulerian selects the direct Eulerian method on grid partitioning
	// (the Gledhill–Storey baseline of Section 3): every particle lives on
	// the rank owning its cell and migrates whenever it crosses a block
	// boundary. Communication stays local but the particle load follows
	// the (possibly irregular) density. The redistribution Policy is
	// ignored in this mode.
	Eulerian bool
	// Thermal and Drift parameterise the particle generator (pass-through;
	// zero values default to Thermal 0.3 and the generator's drift).
	Thermal, Drift float64
	// MacroCharge is the per-macroparticle charge; default −0.02 (keeps
	// space-charge fields mild at the paper's densities).
	MacroCharge float64
	// Diagnostics enables energy histories (field + kinetic) every
	// DiagEvery iterations (default 10).
	Diagnostics bool
	DiagEvery   int
	// Verify enables per-iteration invariant checks (global charge
	// conservation on the mesh, particle-count conservation); violations
	// panic. Intended for tests; the checks use the out-of-band
	// measurement channel, so modelled times are unaffected.
	Verify bool
	// CustomParticles, when non-nil, is used as the global initial
	// population instead of the built-in generator (Distribution, Seed,
	// Thermal and Drift are then ignored; NumParticles is derived from
	// it). The store is not mutated — the simulation works on a copy.
	CustomParticles *particle.Store
	// Transport, when non-nil, decorates every rank's transport endpoint
	// (comm.World.RunWrapped semantics). This is how chaos stacks are
	// installed under a simulation: e.g. rel.Wrap ∘ faulty.Wrap to run the
	// experiment over a perturbed-but-recovered network. With a Degradable
	// layer installed (comm.Reliable), a failed redistribution exchange
	// degrades gracefully instead of aborting the run.
	Transport func(comm.Transport) comm.Transport
	// Watchdog, when positive, arms the deadlock watchdog on the world
	// (comm.World.SetWatchdog) so a stuck protocol fails with a diagnostic
	// instead of hanging.
	Watchdog time.Duration

	// CheckpointDir, when non-empty, enables checkpointing: every
	// CheckpointEvery completed iterations each rank atomically writes its
	// restart shard (internal/ckpt) into the directory's epoch layout.
	// Checkpoint I/O is real-world only — it adds zero simulated-clock
	// charges and no communication, so all goldens hold with it enabled.
	// Defaults to $PICPAR_CKPT_DIR (empty = checkpointing off).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in iterations; default 10
	// when CheckpointDir is set.
	CheckpointEvery int
	// CheckpointKeep bounds retention: the newest complete epochs kept
	// after each checkpoint (older ones are pruned by rank 0); default 2.
	CheckpointKeep int
	// Recover makes the run restore from the latest complete checkpoint
	// epoch in CheckpointDir (agreed across ranks) before iterating, and —
	// under the TCP backend — rejoin elastically when the world dies
	// (comm.NetRankElastic). With no usable epoch the run starts from
	// scratch, byte-identically to a non-recovering run.
	Recover bool

	// OnIteration, when non-nil, is invoked on rank 0 after each
	// iteration's record is final (post-iteration redistribution included).
	// It is a real-world diagnostics hook — the picserve daemon streams
	// these records to HTTP subscribers — and adds zero simulated charges
	// and no communication, so goldens hold with it installed. The callback
	// runs on the simulation's critical path: implementations must not
	// block (drop, don't stall).
	OnIteration func(IterationRecord)
	// StopRequested, when non-nil, is polled once per iteration; when any
	// rank's poll returns true the whole world agrees (the flag rides the
	// existing out-of-band measurement exchange, so the agreement is free
	// and deterministic), writes a final checkpoint epoch at the current
	// iteration boundary (when checkpointing is configured) and returns
	// early with Result.Stopped set. A stopped run is resumable: rerunning
	// the same Config with Recover restores that epoch and finishes
	// byte-identically to an undisturbed run. This is the graceful-drain
	// hook of the picserve daemon (SIGTERM: checkpoint, then exit).
	StopRequested func() bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Dims == 0 {
		c.Dims = 2
	}
	if c.Dims == 2 && c.Grid.Nx == 0 {
		c.Grid = mesh.NewGrid(64, 32)
	}
	if c.Dims == 3 && c.Grid3.Nx == 0 {
		c.Grid3 = mesh3.NewGrid(16, 16, 16)
	}
	if c.P == 0 {
		c.P = 4
	}
	if c.Dt == 0 {
		c.Dt = 0.2
	}
	if c.Indexing == "" {
		c.Indexing = sfc.SchemeHilbert
	}
	if c.Policy == nil {
		c.Policy = policy.NewStatic()
	}
	if c.Table == "" {
		c.Table = commopt.TableDirect
	}
	if c.Machine == (machine.Params{}) {
		c.Machine = machine.CM5()
	}
	if c.Distribution == "" {
		c.Distribution = particle.DistUniform
	}
	if c.Thermal == 0 {
		c.Thermal = 0.3
	}
	if c.MacroCharge == 0 {
		c.MacroCharge = -0.02
	}
	if c.DiagEvery == 0 {
		c.DiagEvery = 10
	}
	if c.Workers == 0 {
		c.Workers = par.EnvProcs(1)
	}
	if c.CheckpointDir == "" {
		c.CheckpointDir = ckpt.EnvDir("")
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	if c.CheckpointKeep == 0 {
		c.CheckpointKeep = 2
	}
	return c
}

// validate rejects configurations the substrates cannot represent.
func (c Config) validate() error {
	switch c.Dims {
	case 2:
		if err := c.Grid.Validate(); err != nil {
			return err
		}
		if _, err := sfc.New(c.Indexing, c.Grid.Nx, c.Grid.Ny); err != nil {
			return err
		}
	case 3:
		if err := c.Grid3.Validate(); err != nil {
			return err
		}
		if _, err := sfc.New3(c.Indexing, c.Grid3.Nx, c.Grid3.Ny, c.Grid3.Nz); err != nil {
			return err
		}
		if c.MeshDist1D {
			return fmt.Errorf("pic: MeshDist1D is a 2-D mesh option (Dims 3 given)")
		}
	default:
		return fmt.Errorf("pic: unsupported dimensionality %d (want 2 or 3)", c.Dims)
	}
	if c.CustomParticles != nil && c.CustomParticles.Dims() != c.Dims {
		return fmt.Errorf("pic: CustomParticles are %d-D but Dims is %d",
			c.CustomParticles.Dims(), c.Dims)
	}
	if c.P <= 0 {
		return fmt.Errorf("pic: non-positive rank count %d", c.P)
	}
	if c.NumParticles < 0 {
		return fmt.Errorf("pic: negative particle count %d", c.NumParticles)
	}
	if c.Iterations < 0 {
		return fmt.Errorf("pic: negative iteration count %d", c.Iterations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("pic: negative worker count %d", c.Workers)
	}
	if c.Dt <= 0 || c.Dt > 0.7 {
		return fmt.Errorf("pic: dt %g outside the stable range (0, 0.7]", c.Dt)
	}
	if _, err := commopt.NewTable(c.Table, 1, 1); err != nil {
		return err
	}
	if _, _, err := parseTopology(c.Topology, c.P); err != nil {
		return err
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("pic: negative checkpoint cadence %d", c.CheckpointEvery)
	}
	if c.CheckpointKeep < 0 {
		return fmt.Errorf("pic: negative checkpoint retention %d", c.CheckpointKeep)
	}
	if c.Recover && c.CheckpointDir == "" {
		return fmt.Errorf("pic: Recover needs a CheckpointDir (or $PICPAR_CKPT_DIR)")
	}
	return nil
}

// IterationRecord captures one iteration's measurements, max over ranks
// (the quantities plotted in Figures 17–19).
type IterationRecord struct {
	Iter int
	// Time is the iteration's execution time (simulated seconds),
	// excluding any redistribution triggered after it.
	Time float64
	// Compute is the iteration's computation time.
	Compute float64
	// Scatter-phase ghost traffic.
	ScatterBytesSent int64
	ScatterBytesRecv int64
	ScatterMsgsSent  int64
	ScatterMsgsRecv  int64
	// Redistributed reports whether redistribution ran after this
	// iteration; RedistTime is its cost.
	Redistributed bool
	RedistTime    float64
	// RedistFailed reports that a triggered redistribution was attempted
	// but its exchange failed (delivery failures beyond the reliability
	// layer's retry budget); the previous alignment was kept, RedistTime
	// holds the wasted attempt time, and the policy was not notified — it
	// retries at the next trigger.
	RedistFailed bool
	// RedistStrategy names the layout strategy of a redistribution decided
	// after this iteration (successful or failed); empty when none was.
	RedistStrategy string
	// BusyImbalance is max/mean over ranks of the iteration's busy time
	// (computation plus communication, excluding barrier idling) — the live
	// per-rank iteration-time load measurement the strategy experiments
	// compare (1.0 = perfectly balanced).
	BusyImbalance float64
	// Energies are recorded when diagnostics are enabled (else zero).
	FieldEnergy   float64
	KineticEnergy float64
}

// Result aggregates a whole run.
type Result struct {
	Config Config
	// InitTime is the cost of the initial particle distribution.
	InitTime float64
	// TotalTime is the end-to-end simulated execution time (max clock),
	// including redistributions, excluding initialisation.
	TotalTime float64
	// ComputeMax is the per-rank maximum total computation time;
	// ComputeSum the sum over ranks (≈ sequential execution time).
	ComputeMax float64
	ComputeSum float64
	// Overhead is TotalTime − ComputeMax: everything that is not useful
	// computation on the critical path (the paper's Figures 21–22 metric).
	Overhead float64
	// Efficiency is ComputeSum / (P · TotalTime) (Table 3).
	Efficiency float64
	// FinalParticleCount is the global particle count at the end (must
	// equal NumParticles — the direct Lagrangian method loses nothing).
	FinalParticleCount int
	// NumRedistributions counts policy-triggered redistributions.
	NumRedistributions int
	// RedistTime is the total time spent redistributing.
	RedistTime float64
	// FailedRedistributions counts triggered redistributions that were
	// discarded after a failed exchange (graceful degradation);
	// WastedRedistTime is the simulated time those attempts burned. Both
	// stay zero on a healthy network.
	FailedRedistributions int
	WastedRedistTime      float64
	// RedistByStrategy counts successful redistributions per layout
	// strategy name — under the Adaptive policy it shows which layouts the
	// live Table-1 scoring actually picked.
	RedistByStrategy map[string]int
	// Fingerprint is the order-sensitive FNV-64a hash of the world's final
	// physics state (every rank's particle columns and field arrays, folded
	// in rank order). Two runs of the same configuration — including one
	// recovered from a checkpoint mid-way — must produce identical
	// fingerprints; the recovery gates compare exactly this.
	Fingerprint uint64
	// Stopped reports that the run ended early because StopRequested fired
	// (graceful drain); CompletedIterations is how many iterations actually
	// finished — Iterations for a run that went to the end. A stopped run's
	// Records are truncated to the completed prefix.
	Stopped             bool
	CompletedIterations int
	Records             []IterationRecord
	Stats               machine.WorldStats
}

// MaxScatterBytes returns the peak per-iteration scatter traffic (sent), a
// compact Figure-18 summary.
func (r *Result) MaxScatterBytes() int64 {
	var m int64
	for i := range r.Records {
		if r.Records[i].ScatterBytesSent > m {
			m = r.Records[i].ScatterBytesSent
		}
	}
	return m
}

// MaxScatterMsgs returns the peak per-iteration scatter message count.
func (r *Result) MaxScatterMsgs() int64 {
	var m int64
	for i := range r.Records {
		if r.Records[i].ScatterMsgsSent > m {
			m = r.Records[i].ScatterMsgsSent
		}
	}
	return m
}
