package pic

import (
	"math"
	"testing"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

// TestColdPlasmaOscillation validates the coupled scatter → field solve →
// gather → push loop against analytic plasma physics: a cold electron
// plasma given a sinusoidal velocity perturbation performs Langmuir
// oscillations at ω_p = sqrt(n q²/m) (ε₀ = 1). Kinetic energy then
// oscillates at 2ω_p, so its oscillation period is π/ω_p.
func TestColdPlasmaOscillation(t *testing.T) {
	const (
		nx, ny  = 64, 4
		perCell = 4
		q       = -0.5
		dt      = 0.1
	)
	g := mesh.NewGrid(nx, ny)
	// Quiet lattice start: perCell particles regularly spaced per cell, no
	// thermal spread, vx = v0·sin(2πx/Lx).
	s := particle.NewStore(nx*ny*perCell, q, 1)
	id := 0.0
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			for k := 0; k < perCell; k++ {
				x := float64(cx) + (float64(k%2)+0.5)/2
				y := float64(cy) + (float64(k/2)+0.5)/2
				vx := 0.01 * math.Sin(2*math.Pi*x/float64(nx))
				s.Append(x, y, vx, 0, 0, id)
				id++
			}
		}
	}

	// ω_p² = n q²/m with number density n = perCell per unit area.
	wp := math.Sqrt(perCell * q * q)
	kePeriod := math.Pi / wp
	iters := int(4 * kePeriod / dt) // four KE oscillation periods

	res, err := Run(Config{
		Grid:            g,
		P:               4,
		CustomParticles: s,
		Iterations:      iters,
		Dt:              dt,
		Diagnostics:     true,
		DiagEvery:       1,
		Verify:          true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kinetic energy minima mark half plasma periods. Find successive
	// minima of the KE series.
	ke := make([]float64, len(res.Records))
	for i, rec := range res.Records {
		ke[i] = rec.KineticEnergy
	}
	var minima []int
	for i := 2; i < len(ke)-2; i++ {
		if ke[i] < ke[i-1] && ke[i] < ke[i-2] && ke[i] <= ke[i+1] && ke[i] <= ke[i+2] {
			minima = append(minima, i)
		}
	}
	if len(minima) < 2 {
		t.Fatalf("no oscillation detected: %d minima in %d iterations", len(minima), iters)
	}
	measured := float64(minima[1]-minima[0]) * dt
	if rel := math.Abs(measured-kePeriod) / kePeriod; rel > 0.15 {
		t.Errorf("KE oscillation period %.3f, analytic π/ω_p = %.3f (rel err %.2f)",
			measured, kePeriod, rel)
	}

	// The oscillation must not grow: cold plasma exchange is conservative
	// to leapfrog accuracy.
	if ke[len(ke)-1] > 3*ke[0]+1e-12 {
		t.Errorf("kinetic energy grew: %g -> %g", ke[0], ke[len(ke)-1])
	}
}

// TestEnergyExchangeConservative checks that total (field + kinetic) energy
// stays bounded over a long stable run — the global sanity condition for
// the scatter/gather coupling.
func TestEnergyExchangeConservative(t *testing.T) {
	cfg := Config{
		Grid:         mesh.NewGrid(32, 32),
		P:            4,
		NumParticles: 4096,
		Distribution: particle.DistUniform,
		MacroCharge:  -0.1,
		Thermal:      0.05,
		Seed:         13,
		Iterations:   200,
		Dt:           0.2,
		Diagnostics:  true,
		DiagEvery:    10,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for _, rec := range res.Records {
		if rec.Iter%10 != 0 {
			continue
		}
		tot := rec.FieldEnergy + rec.KineticEnergy
		if math.IsNaN(tot) || math.IsInf(tot, 0) {
			t.Fatalf("iter %d: energy diverged", rec.Iter)
		}
		if first == 0 {
			first = tot
		}
		last = tot
	}
	if last > 5*first {
		t.Errorf("total energy grew %gx over the run", last/first)
	}
}

// TestCustomParticlesRoundTrip checks the injection path itself.
func TestCustomParticlesRoundTrip(t *testing.T) {
	s := particle.NewStore(10, -0.25, 1)
	for i := 0; i < 10; i++ {
		s.Append(float64(i)*3+0.5, float64(i%4)*3+0.5, 0, 0, 0, float64(i))
	}
	res, err := Run(Config{
		Grid:            mesh.NewGrid(32, 16),
		P:               2,
		CustomParticles: s,
		Iterations:      3,
		Verify:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != 10 {
		t.Errorf("final count %d, want 10", res.FinalParticleCount)
	}
	if s.Len() != 10 || s.X[0] != 0.5 {
		t.Error("caller's store was mutated")
	}
	if res.Config.NumParticles != 10 {
		t.Errorf("derived NumParticles %d", res.Config.NumParticles)
	}
}
