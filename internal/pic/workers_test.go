package pic

import (
	"testing"

	"picpar/internal/comm"
)

// workerCounts is the determinism matrix: every count must reproduce the
// sequential run byte for byte (non-divisor counts exercise uneven range
// splits; 8 exceeds the reference rank's per-tile particle counts enough to
// leave some buckets empty).
var workerCounts = []int{2, 3, 8}

// runFingerprinted runs cfg with per-iteration diagnostics so the
// fingerprint carries the full energy histories.
func runFingerprinted(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Diagnostics = true
	cfg.DiagEvery = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkersGoldenByteIdentical2D: the pinned 2-D reference run is
// byte-identical — simulated TotalTime and every energy record — for every
// worker count. The parallel scatter's tiled reduction, the parallel radix
// sort and the parallel Maxwell sweeps all replay the sequential
// floating-point accumulation order exactly, and the modelled δ charges
// never depend on Workers.
func TestWorkersGoldenByteIdentical2D(t *testing.T) {
	// The pin runs without diagnostics (energy exposure shifts the
	// simulated clock); every worker count must hit it exactly.
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 1.1831223
	if diff := plain.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("sequential reference total %.12g, recorded %.7f", plain.TotalTime, recorded)
	}
	seq := runFingerprinted(t, base())
	want := fingerprint(seq)
	for _, w := range workerCounts {
		cfg := base()
		cfg.Workers = w
		if res, err := Run(cfg); err != nil {
			t.Fatal(err)
		} else if res.TotalTime != plain.TotalTime {
			t.Errorf("workers=%d: TotalTime %.17g, sequential %.17g", w, res.TotalTime, plain.TotalTime)
		}
		res := runFingerprinted(t, cfg)
		if res.TotalTime != seq.TotalTime {
			t.Errorf("workers=%d: diagnostic TotalTime %.17g, sequential %.17g", w, res.TotalTime, seq.TotalTime)
		}
		if !equalFingerprints(fingerprint(res), want) {
			t.Errorf("workers=%d: physics diverged from the sequential run", w)
		}
	}
}

// TestWorkersGoldenByteIdentical3D is the 3-D pin of the same contract:
// the trilinear footprint (8 vertices), the slab-parallel Maxwell sweeps
// and the 3-D wire layout reproduce the sequential run exactly.
func TestWorkersGoldenByteIdentical3D(t *testing.T) {
	plain, err := Run(base3())
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 1.5221545
	if diff := plain.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("sequential 3-D reference total %.12g, recorded %.7f", plain.TotalTime, recorded)
	}
	seq := runFingerprinted(t, base3())
	want := fingerprint(seq)
	for _, w := range workerCounts {
		cfg := base3()
		cfg.Workers = w
		if res, err := Run(cfg); err != nil {
			t.Fatal(err)
		} else if res.TotalTime != plain.TotalTime {
			t.Errorf("workers=%d: TotalTime %.17g, sequential %.17g", w, res.TotalTime, plain.TotalTime)
		}
		res := runFingerprinted(t, cfg)
		if res.TotalTime != seq.TotalTime {
			t.Errorf("workers=%d: diagnostic TotalTime %.17g, sequential %.17g", w, res.TotalTime, seq.TotalTime)
		}
		if !equalFingerprints(fingerprint(res), want) {
			t.Errorf("workers=%d: 3-D physics diverged from the sequential run", w)
		}
	}
}

// TestWorkersChaosByteIdentical: shared-memory parallelism composes with
// the chaos stack — a Tracer∘Reliable∘Faulty run at workers=3 reproduces
// the fault-free sequential physics exactly. The two determinism layers are
// independent: recovery hides the network faults, the tiled reduction hides
// the intra-rank concurrency.
func TestWorkersChaosByteIdentical(t *testing.T) {
	clean := runFingerprinted(t, chaosBase())
	want := fingerprint(clean)

	for pi, plan := range e2ePlans {
		faulty := comm.NewFaulty(plan)
		rel := comm.NewReliable(comm.ReliableConfig{})
		tracer := comm.NewTracer()
		cfg := chaosBase()
		cfg.Workers = 3
		cfg.Transport = func(tr comm.Transport) comm.Transport {
			return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
		}
		res := runFingerprinted(t, cfg)
		if !equalFingerprints(fingerprint(res), want) {
			t.Errorf("plan %d: workers=3 physics diverged under recovered faults", pi)
		}
		c := faulty.Counts()
		if c.Drops+c.Dups+c.Reorders+c.Delays == 0 {
			t.Errorf("plan %d injected no faults — soak exercised nothing", pi)
		}
	}
}

// TestNetWorkersGolden: the worker pool is per-rank state, so it must be
// transport-agnostic — the pinned reference total reproduces over real TCP
// sockets at workers=3 exactly as it does in-process.
func TestNetWorkersGolden(t *testing.T) {
	cfg := base()
	cfg.Workers = 3
	res := runNetBase(t, cfg, nil)
	const recorded = 1.1831223
	if diff := res.TotalTime - recorded; diff > 1e-7 || diff < -1e-7 {
		t.Errorf("TCP workers=3 total %.7f, recorded %.7f", res.TotalTime, recorded)
	}
	if res.FinalParticleCount != 2048 {
		t.Errorf("final particles %d, want 2048", res.FinalParticleCount)
	}
}
