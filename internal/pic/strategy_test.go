package pic

import (
	"testing"

	"picpar/internal/commtest"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/policy"
)

// spikeBase is the skewed workload the strategy tests run: a dense Gaussian
// clump over a sparse background, where the sparse ranks pay more ghost
// traffic per particle and the equal-count split leaves a measurable
// busy-time imbalance for the cost-weighted split to remove.
func spikeBase() Config {
	return Config{
		Grid:         mesh.NewGrid(128, 64),
		P:            8,
		NumParticles: 4096,
		Distribution: particle.DistSpike,
		Seed:         11,
		Iterations:   30,
		Verify:       true,
		Watchdog:     commtest.Watchdog(),
	}
}

// meanBusyTail averages the per-iteration busy-time imbalance over the
// settled tail of a run.
func meanBusyTail(res *Result, warmup int) float64 {
	sum, n := 0.0, 0
	for i := warmup; i < len(res.Records); i++ {
		sum += res.Records[i].BusyImbalance
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestStrategyCostWeightedReducesBusyImbalance is the headline acceptance
// check: on the spike workload, the cost-weighted split leaves strictly
// less per-rank busy-time imbalance than the equal-count split under the
// same redistribution cadence.
func TestStrategyCostWeightedReducesBusyImbalance(t *testing.T) {
	runWith := func(s policy.Strategy) *Result {
		cfg := spikeBase()
		cfg.Policy = policy.WithStrategy(policy.NewPeriodic(5), s)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalParticleCount != cfg.NumParticles {
			t.Fatalf("strategy %v lost particles: %d, want %d",
				s, res.FinalParticleCount, cfg.NumParticles)
		}
		if got := res.RedistByStrategy[s.String()]; got != res.NumRedistributions || got == 0 {
			t.Fatalf("strategy %v: RedistByStrategy %v vs %d redistributions",
				s, res.RedistByStrategy, res.NumRedistributions)
		}
		return res
	}
	eq := runWith(policy.EqualCount)
	cw := runWith(policy.CostWeighted)

	eqImb, cwImb := meanBusyTail(eq, 10), meanBusyTail(cw, 10)
	if !(cwImb < eqImb) {
		t.Errorf("cost-weighted busy imbalance %g not below equal-count %g", cwImb, eqImb)
	}
	if eqImb <= 1 || cwImb < 1 {
		t.Errorf("imbalances out of range: equal-count %g, cost-weighted %g", eqImb, cwImb)
	}
}

// TestStrategyAdaptiveSelectsCostWeighted: the adaptive policy, given only
// the live cost ledger, picks the cost-weighted layout on the spike
// workload — the Table 1 classification reproduced as a decision.
func TestStrategyAdaptiveSelectsCostWeighted(t *testing.T) {
	cfg := spikeBase()
	cfg.Policy = policy.NewAdaptiveEvery(5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles %d, want %d", res.FinalParticleCount, cfg.NumParticles)
	}
	if res.NumRedistributions == 0 {
		t.Fatal("adaptive policy never redistributed")
	}
	if got := res.RedistByStrategy["cost-weighted"]; got < 1 {
		t.Errorf("adaptive never chose cost-weighted: %v", res.RedistByStrategy)
	}
	for _, rec := range res.Records {
		if rec.Redistributed && rec.RedistStrategy == "" {
			t.Errorf("iter %d redistributed without a recorded strategy", rec.Iter)
		}
		if !rec.Redistributed && !rec.RedistFailed && rec.RedistStrategy != "" {
			t.Errorf("iter %d records strategy %q without a redistribution",
				rec.Iter, rec.RedistStrategy)
		}
	}
}

// TestStrategyEulerianPinnedRuns: a Lagrangian-policy run whose firings
// rebuild into the Eulerian layout (migrate every particle to its cell's
// owner) keeps all invariants — the migration path composes with the
// policy-driven pipeline, not just with Config.Eulerian.
func TestStrategyEulerianPinnedRuns(t *testing.T) {
	cfg := base()
	cfg.Policy = policy.WithStrategy(policy.NewPeriodic(3), policy.Eulerian)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles %d, want %d", res.FinalParticleCount, cfg.NumParticles)
	}
	if res.NumRedistributions == 0 {
		t.Fatal("pinned Eulerian policy never fired")
	}
	if got := res.RedistByStrategy["eulerian"]; got != res.NumRedistributions {
		t.Errorf("RedistByStrategy %v vs %d redistributions",
			res.RedistByStrategy, res.NumRedistributions)
	}
}

// flipPolicy alternates the layout strategy across firings, exercising
// the Eulerian↔Lagrangian transitions: the incremental sort must rebuild a
// correct SFC split from the mesh-aligned placement and vice versa.
type flipPolicy struct {
	k     int
	fires int
}

func (p *flipPolicy) Decide(iter int, _ float64) policy.Decision {
	if (iter+1)%p.k != 0 {
		return policy.KeepLayout
	}
	p.fires++
	if p.fires%2 == 1 {
		return policy.Rebalance(policy.Eulerian)
	}
	return policy.Rebalance(policy.CostWeighted)
}

func (p *flipPolicy) NotifyRedistribution(int, float64) {}

func (p *flipPolicy) Name() string { return "flip" }

func TestStrategyMixedMovementSequence(t *testing.T) {
	cfg := base()
	cfg.Iterations = 12
	cfg.Policy = func() policy.Policy { return &flipPolicy{k: 3} }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalParticleCount != cfg.NumParticles {
		t.Errorf("particles %d, want %d", res.FinalParticleCount, cfg.NumParticles)
	}
	if res.RedistByStrategy["eulerian"] < 2 || res.RedistByStrategy["cost-weighted"] < 2 {
		t.Errorf("mixed sequence did not run both movements: %v", res.RedistByStrategy)
	}
}

// TestStrategyDeterministicAcrossWorkers: the cost ledger and the weighted
// split live behind the Clock seam, so the cost-weighted and adaptive runs
// stay byte-identical under any shared-memory worker count.
func TestStrategyDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		cfg := spikeBase()
		cfg.Iterations = 15
		cfg.Workers = workers
		cfg.Policy = policy.NewAdaptiveEvery(5)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 5} {
		got := run(workers)
		if got.TotalTime != want.TotalTime {
			t.Errorf("workers=%d: TotalTime %.9g != %.9g", workers, got.TotalTime, want.TotalTime)
		}
		for i := range want.Records {
			if got.Records[i].BusyImbalance != want.Records[i].BusyImbalance ||
				got.Records[i].RedistStrategy != want.Records[i].RedistStrategy {
				t.Fatalf("workers=%d: iter %d diverged", workers, i)
			}
		}
	}
}

// TestStrategySpikeGeneratorShape: the spike distribution concentrates the
// bulk of the particles in a small fraction of the domain — the property
// the strategy experiments rely on.
func TestStrategySpikeGeneratorShape(t *testing.T) {
	g := mesh.NewGrid(64, 32)
	s, err := particle.Generate(particle.Config{
		N: 8192, Lx: g.Lx, Ly: g.Ly, Distribution: particle.DistSpike, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := 0.7*g.Lx, 0.3*g.Ly
	in := 0
	for i := 0; i < s.Len(); i++ {
		dx, dy := s.X[i]-cx, s.Y[i]-cy
		if dx*dx+dy*dy < 0.01*g.Lx*g.Lx {
			in++
		}
	}
	if frac := float64(in) / float64(s.Len()); frac < 0.5 {
		t.Errorf("spike clump holds only %.2f of the particles", frac)
	}
}
