// Topology selection: how Config.Topology maps onto the comm layer's
// descriptors, transports and exchange protocols.
//
//   - "" / "full-mesh": the classic any-to-any world. No descriptor is
//     installed and every exchange keeps its original pairwise protocol, so
//     the default configuration is byte-identical to the pre-topology code.
//   - "neighbor-sparse": links exist only between spatially adjacent ranks
//     (the halo/CIC stencil, geom.AdjacentRanks) plus the collective
//     skeleton. Steady-state traffic runs the hybrid sparse protocol:
//     direct sends between linked ranks on the classic schedule, plus a
//     systolic relay pass — only on iterations whose traffic table shows
//     unlinked pairs exchanging data, which happens when a cost-weighted
//     repartition decouples the particle partition from the mesh blocks.
//     The initial any-to-any distribution pulses around the ring
//     (systolic), which uses skeleton links only. A direct send outside
//     the link set fails with a typed comm.ErrOutOfTopology error rather
//     than silently widening the stencil.
//   - "systolic-ring": the same sparse link set as neighbor-sparse (the
//     scatter/gather stencil cannot ride a bare ring), but every
//     redistribution exchange is the P−1-pulse systolic ring schedule —
//     data-independent and deterministic — instead of direct stencil
//     sends. The pure ring descriptor (comm.NewRing) stays available at
//     the comm layer for protocols whose traffic is ring-shaped.
//   - "hierarchical[:H]": the ranks are grouped onto H hosts (default: the
//     largest divisor of P that is at most √P). Intra-host ranks exchange
//     over in-process channels; each host runs one TCP gateway, so the
//     socket count is per host pair, not per rank pair. Goroutine backend
//     only (pic.Run); the flat TCP backend rejects it.
//
// Physics is identical under every topology: the protocols move the same
// per-(src,dst) payloads, only the message schedule differs.

package pic

import (
	"fmt"
	"strconv"
	"strings"

	"picpar/internal/comm"
	"picpar/internal/geom"
)

// Topology names accepted by Config.Topology.
const (
	TopologyFullMesh       = comm.TopologyFullMesh
	TopologyNeighborSparse = comm.TopologyNeighborSparse
	TopologySystolicRing   = "systolic-ring"
	TopologyHierarchical   = "hierarchical"
)

// parseTopology splits a Config.Topology spec into its kind and, for the
// hierarchical transport, the host count. An empty spec is the full mesh.
func parseTopology(spec string, p int) (kind string, hosts int, err error) {
	switch spec {
	case "", TopologyFullMesh:
		return TopologyFullMesh, 0, nil
	case TopologyNeighborSparse:
		return TopologyNeighborSparse, 0, nil
	case TopologySystolicRing:
		return TopologySystolicRing, 0, nil
	case TopologyHierarchical:
		return TopologyHierarchical, autoHosts(p), nil
	}
	if rest, ok := strings.CutPrefix(spec, TopologyHierarchical+":"); ok {
		h, perr := strconv.Atoi(rest)
		if perr != nil || h <= 0 {
			return "", 0, fmt.Errorf("pic: bad host count in topology %q", spec)
		}
		if p%h != 0 {
			return "", 0, fmt.Errorf("pic: topology %q: %d hosts do not divide P=%d", spec, h, p)
		}
		return TopologyHierarchical, h, nil
	}
	return "", 0, fmt.Errorf("pic: unknown topology %q (want %s, %s, %s or %s[:hosts])",
		spec, TopologyFullMesh, TopologyNeighborSparse, TopologySystolicRing, TopologyHierarchical)
}

// autoHosts picks the default host count for the hierarchical transport:
// the largest divisor of p not exceeding √p, so hosts and ranks-per-host
// stay as balanced as a divisor split allows.
func autoHosts(p int) int {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best
}

// TopologyFor builds the comm.Topology descriptor the configuration's
// topology names, sized for cfg.P — what the TCP backend assembles its
// socket mesh from (comm.NetConfig.Topology). The hierarchical transport
// has no flat descriptor (it swaps the transport itself, see pic.Run) and
// is rejected.
func TopologyFor(cfg Config) (*comm.Topology, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	kind, _, err := parseTopology(cfg.Topology, cfg.P)
	if err != nil {
		return nil, err
	}
	switch kind {
	case TopologyFullMesh:
		return comm.NewFullMesh(cfg.P), nil
	case TopologyNeighborSparse, TopologySystolicRing:
		// Both sparse modes assemble the stencil ∪ skeleton link set; they
		// differ in the protocol run over it, not in the sockets dialed.
		ge, gerr := newGeometry(cfg)
		if gerr != nil {
			return nil, gerr
		}
		return comm.NewNeighborSparse(cfg.P, ge.AdjacentRanks), nil
	}
	return nil, fmt.Errorf("pic: the %s topology has no flat descriptor (it replaces the transport; use pic.Run)", kind)
}

// topoPlan is the resolved topology selection of one run: the descriptor
// to enforce (nil: none) and the exchange protocols for the two
// redistribution regimes.
type topoPlan struct {
	kind  string
	hosts int
	// topo, when non-nil, is installed on the goroutine world
	// (comm.World.SetTopology) so every out-of-topology send panics with a
	// typed error — proof the whole simulation respects the link set.
	topo *comm.Topology
	// bootEx routes the initial distribution's any-to-any exchanges
	// (dealing, sample sort). Under sparse topologies it is the systolic
	// protocol: the initial population is arbitrarily scattered, so the
	// stencil cannot carry it, but the ring skeleton always can.
	bootEx comm.Exchanger
	// dataEx routes the steady-state redistribution and migration
	// exchanges: the hybrid sparse protocol under neighbor-sparse (direct
	// stencil sends, systolic relay for the far payloads a decoupled
	// repartition creates), systolic under the ring.
	dataEx comm.Exchanger
}

// buildTopoPlan resolves cfg.Topology against the run's geometry. The
// configuration must already be validated.
func buildTopoPlan(cfg Config, ge geom.Geometry) (topoPlan, error) {
	kind, hosts, err := parseTopology(cfg.Topology, cfg.P)
	if err != nil {
		return topoPlan{}, err
	}
	pl := topoPlan{kind: kind, hosts: hosts}
	switch kind {
	case TopologyNeighborSparse:
		pl.topo = comm.NewNeighborSparse(cfg.P, ge.AdjacentRanks)
		pl.bootEx = comm.NewSystolicExchanger()
		pl.dataEx = comm.NewSparseExchanger(pl.topo)
	case TopologySystolicRing:
		pl.topo = comm.NewNeighborSparse(cfg.P, ge.AdjacentRanks)
		pl.bootEx = comm.NewSystolicExchanger()
		pl.dataEx = comm.NewSystolicExchanger()
	}
	return pl, nil
}
