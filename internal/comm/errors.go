// Typed errors of the transport layer. The SPMD substrate historically
// reported every failure as a panic with a formatted string; the reliability
// subsystem needs to distinguish "the network perturbed this message"
// (recoverable, the Reliable decorator's job) from "the program is broken"
// (teardown bugs, protocol misuse — must never be masked by retries), so
// the error paths now carry typed values:
//
//   - DeliveryError: a message could not be delivered intact. Raised by the
//     Faulty decorator when no reliability layer is present to recover an
//     injected fault, and by Reliable when its retry budget is exhausted.
//     Names rank, peer, tag and phase so a failed collective is diagnosable
//     without a stack trace.
//   - TransportError: the transport was used incorrectly — send to an
//     invalid rank, operation on a closed world. Never retried.
//   - RankPanic: the value re-raised by World.Run when a rank panicked,
//     wrapping the original panic value so callers can errors.As/Is into it.
//
// Because Transport.Send/Recv have no error returns (matching the message-
// passing substrate the paper's algorithms assume, where a failed primitive
// aborts the program), typed errors surface as panics; World.Run converts
// them into a *RankPanic on the launching goroutine.

package comm

import (
	"errors"
	"fmt"

	"picpar/internal/machine"
)

// ErrClosedWorld is the sentinel wrapped by TransportError when a rank
// touches a world whose Run has completed (or that was explicitly closed).
var ErrClosedWorld = errors.New("world is closed")

// TransportError reports a structural misuse of the transport: an operation
// that can never succeed regardless of network conditions. The reliability
// layer re-raises these untouched — retrying a send to a closed world would
// only hide a teardown bug.
type TransportError struct {
	Op   string // "send" or "recv"
	Rank int    // the rank performing the operation
	Peer int    // the destination (send) or source (recv)
	Tag  Tag
	Err  error // the underlying condition, e.g. ErrClosedWorld
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("comm: rank %d %s peer %d tag %d: %v", e.Rank, e.Op, e.Peer, e.Tag, e.Err)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *TransportError) Unwrap() error { return e.Err }

// DeliveryError reports that a message was lost, duplicated or reordered
// beyond what the installed reliability layer (if any) could recover. It is
// terminal: the receiving rank raises it instead of hanging, and World.Run
// re-raises it wrapped in a RankPanic on the caller.
type DeliveryError struct {
	Rank     int           // the receiving rank that detected the failure
	Peer     int           // the sending rank
	Tag      Tag           // the message tag
	Phase    machine.Phase // the accounting phase the receiver was in
	Attempts int           // delivery attempts observed (0 if not applicable)
	Reason   string        // "dropped", "duplicated", "reordered", "retries exhausted"
}

// Error implements error.
func (e *DeliveryError) Error() string {
	return fmt.Sprintf("comm: delivery failed: rank %d <- rank %d, tag %d, phase %s: %s (attempts=%d)",
		e.Rank, e.Peer, e.Tag, e.Phase, e.Reason, e.Attempts)
}

// RankPanic wraps a panic raised on one rank of an SPMD program so the
// original value survives re-raising on the launching goroutine. Recover it
// and inspect Value (or use AsDeliveryError) to distinguish delivery
// failures from programming errors.
type RankPanic struct {
	Rank  int
	Value any
}

// Error implements error; the text matches the historical string format.
func (e *RankPanic) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Value) }

// Unwrap exposes a wrapped error panic value for errors.As/Is.
func (e *RankPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsDeliveryError extracts a *DeliveryError from a recovered panic value,
// looking through RankPanic wrapping. Returns nil if v is something else.
func AsDeliveryError(v any) *DeliveryError {
	switch e := v.(type) {
	case *DeliveryError:
		return e
	case error:
		var de *DeliveryError
		if errors.As(e, &de) {
			return de
		}
	}
	return nil
}

// Wrapper is implemented by decorator transports; Unwrap returns the next
// transport down the stack. Capability helpers (AsDegradable, flushChain)
// walk the chain with it, so a capability added by one decorator stays
// reachable when another decorator wraps it.
type Wrapper interface {
	Unwrap() Transport
}

// Degradable is the failure-scoping capability of the Reliable decorator:
// code that can tolerate a failed exchange (e.g. the redistribution phase,
// which keeps the previous alignment) runs it inside CollectFailures, where
// terminal delivery failures are recorded and returned instead of raised.
type Degradable interface {
	// CollectFailures runs fn with terminal delivery failures downgraded
	// from panics to recorded values; the protocol still completes
	// structurally (the substrate is lossless), so the SPMD world stays
	// synchronised and the caller decides what to discard.
	CollectFailures(fn func()) []*DeliveryError
}

// AsDegradable walks the decorator chain of t looking for a Degradable
// layer (the Reliable decorator). Engine code uses it to discover whether a
// failed exchange is survivable on the transport it was handed.
func AsDegradable(t Transport) (Degradable, bool) {
	for t != nil {
		if d, ok := t.(Degradable); ok {
			return d, true
		}
		w, ok := t.(Wrapper)
		if !ok {
			return nil, false
		}
		t = w.Unwrap()
	}
	return nil, false
}

// flusher is implemented by decorators holding deferred messages (the
// Faulty reorder hold); RunWrapped flushes the chain when a rank's program
// returns so no message is withheld past the end of the run.
type flusher interface {
	flushHeld()
}

// flushChain walks the decorator chain flushing every layer that holds
// deferred messages.
func flushChain(t Transport) {
	for t != nil {
		if f, ok := t.(flusher); ok {
			f.flushHeld()
		}
		w, ok := t.(Wrapper)
		if !ok {
			return
		}
		t = w.Unwrap()
	}
}
