package comm

import (
	"testing"

	"picpar/internal/machine"
)

// statsCounts projects a Stats ledger onto the tracer's bucket shape.
func statsCounts(s *machine.Stats) TraceCounts {
	tot := s.Total()
	return TraceCounts{
		MsgsSent:  tot.MsgsSent,
		BytesSent: tot.BytesSent,
		MsgsRecv:  tot.MsgsRecv,
		BytesRecv: tot.BytesRecv,
	}
}

// TestTracerMatchesStatsForCollectives is the satellite coverage for the
// tracing transport: for each of barrier, allreduce, allgather and
// all-to-many, the per-rank message/byte counts observed through the
// decorator must equal what the direct Stats accounting records.
func TestTracerMatchesStatsForCollectives(t *testing.T) {
	const p = 4
	cases := []struct {
		name string
		body func(r Transport)
	}{
		{"barrier", func(r Transport) {
			Barrier(r)
		}},
		{"allreduce", func(r Transport) {
			if got := AllreduceSumInt(r, 1); got != p {
				t.Errorf("allreduce sum = %d, want %d", got, p)
			}
		}},
		{"allgather", func(r Transport) {
			blk := []float64{float64(r.Rank()), float64(r.Rank())}
			out := AllgatherFloat64s(r, blk)
			if len(out) != 2*p {
				t.Errorf("allgather len = %d, want %d", len(out), 2*p)
			}
		}},
		{"all-to-many", func(r Transport) {
			send := make([][]float64, r.Size())
			counts := make([]int, r.Size())
			for d := range send {
				// Irregular traffic: rank i sends i+d+1 values to rank d,
				// except to (i+2)%p where it sends nothing (exercising the
				// skipped-message path).
				if d != (r.Rank()+2)%r.Size() {
					send[d] = make([]float64, r.Rank()+d+1)
					counts[d] = len(send[d])
				}
			}
			recvCounts := ExchangeCounts(r, counts)
			AllToManyFloat64s(r, send, recvCounts)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newTestWorld(p, machine.CM5())
			tracer := NewTracer()
			ws := w.RunWrapped(tracer.Wrap, tc.body)
			for id := 0; id < p; id++ {
				direct := statsCounts(&ws.Ranks[id])
				traced := tracer.Rank(id).Total()
				if traced != direct {
					t.Errorf("rank %d: traced %+v != direct stats %+v", id, traced, direct)
				}
			}
		})
	}
}

// TestTracerPhaseAttribution: traffic lands in the bucket of the phase the
// rank had selected when it moved.
func TestTracerPhaseAttribution(t *testing.T) {
	w := newTestWorld(2, machine.Zero())
	tracer := NewTracer()
	w.RunWrapped(tracer.Wrap, func(r Transport) {
		r.SetPhase(machine.PhaseScatter)
		Barrier(r)
		r.SetPhase(machine.PhaseGather)
		Barrier(r)
		Barrier(r)
	})
	for id := 0; id < 2; id++ {
		rt := tracer.Rank(id)
		if got := rt.Phases[machine.PhaseScatter].MsgsSent; got != 1 {
			t.Errorf("rank %d scatter msgs = %d, want 1", id, got)
		}
		if got := rt.Phases[machine.PhaseGather].MsgsSent; got != 2 {
			t.Errorf("rank %d gather msgs = %d, want 2", id, got)
		}
	}
}

// TestTracerTagBreakdown: per-tag counts separate user traffic from the
// collectives' internal tags.
func TestTracerTagBreakdown(t *testing.T) {
	w := newTestWorld(2, machine.Zero())
	tracer := NewTracer()
	w.RunWrapped(tracer.Wrap, func(r Transport) {
		other := 1 - r.Rank()
		SendFloat64s(r, other, TagUser+5, []float64{1, 2, 3})
		RecvFloat64s(r, other, TagUser+5)
		Barrier(r)
	})
	rt := tracer.Rank(0)
	user := rt.Tags[TagUser+5]
	if user.MsgsSent != 1 || user.BytesSent != 3*Float64Bytes {
		t.Errorf("user tag counts = %+v, want 1 msg / %d bytes", user, 3*Float64Bytes)
	}
	if barrier := rt.Tags[tagBarrier]; barrier.MsgsSent != 1 {
		t.Errorf("barrier tag msgs = %d, want 1", barrier.MsgsSent)
	}
}

// TestTracerIgnoresSelfTraffic: self-sends bypass the network and are not
// recorded by Stats; the tracer must agree.
func TestTracerIgnoresSelfTraffic(t *testing.T) {
	w := newTestWorld(1, machine.CM5())
	tracer := NewTracer()
	ws := w.RunWrapped(tracer.Wrap, func(r Transport) {
		r.Send(0, TagUser, 42, 8)
		body, _ := r.Recv(0, TagUser)
		if body.(int) != 42 {
			t.Errorf("self round-trip = %v, want 42", body)
		}
	})
	if tot := tracer.Total(); tot != (TraceCounts{}) {
		t.Errorf("tracer recorded self traffic: %+v", tot)
	}
	if direct := statsCounts(&ws.Ranks[0]); direct != (TraceCounts{}) {
		t.Errorf("stats recorded self traffic: %+v", direct)
	}
}
