// Backend × world-size matrix for the core collectives: the same program —
// Bcast, ReduceFloat64, Allgather, ScanSumInt, with every expectation
// computed by a naive sequential loop — runs on the goroutine World and on
// real loopback TCP sockets at P = 1 and a spread of non-power-of-two
// sizes. The binomial trees, ring allgather and linear scan all follow
// schedules whose edge cases live exactly at those sizes (odd trees with a
// childless branch, a ring of one), and the TCP backend must agree with the
// goroutine backend bit for bit.

package comm

import (
	"testing"

	"picpar/internal/machine"
)

// collectivesProgram returns the rank program plus its naive sequential
// expectations for world size p. All checks report through t.Errorf, which
// is safe from rank goroutines.
func collectivesProgram(t *testing.T, p int, backend string) func(Transport) {
	// Naive expectations: straight loops over the contributed values.
	vals := make([]float64, p)
	for i := range vals {
		vals[i] = float64(i) + 7.5
	}
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v
	}
	wantGather := make([]float64, 0, 2*p)
	for i := 0; i < p; i++ {
		wantGather = append(wantGather, float64(i), float64(10*i+1))
	}
	wantScan := make([]int, p) // exclusive prefix sum of (rank+3)
	for i := 1; i < p; i++ {
		wantScan[i] = wantScan[i-1] + (i - 1) + 3
	}

	return func(r Transport) {
		id := r.Rank()

		for _, root := range []int{0, p - 1, p / 2} {
			var body []float64
			if id == root {
				body = []float64{42.5, float64(root)}
			}
			got := Bcast(r, root, body, 16).([]float64)
			if len(got) != 2 || got[0] != 42.5 || got[1] != float64(root) {
				t.Errorf("%s p=%d: Bcast root=%d rank=%d got %v", backend, p, root, id, got)
			}
		}

		for _, root := range []int{0, p - 1} {
			got := ReduceFloat64(r, root, vals[id], func(a, b float64) float64 { return a + b })
			if id == root && got != wantSum {
				t.Errorf("%s p=%d: Reduce root=%d = %v, want %v", backend, p, root, got, wantSum)
			}
		}

		gat := Allgather(r, []float64{float64(id), float64(10*id + 1)}, Float64Bytes)
		if len(gat) != len(wantGather) {
			t.Errorf("%s p=%d: Allgather rank=%d len %d, want %d", backend, p, id, len(gat), len(wantGather))
		} else {
			for i := range gat {
				if gat[i] != wantGather[i] {
					t.Errorf("%s p=%d: Allgather rank=%d [%d] = %v, want %v", backend, p, id, i, gat[i], wantGather[i])
					break
				}
			}
		}

		if got := ScanSumInt(r, id+3); got != wantScan[id] {
			t.Errorf("%s p=%d: ScanSumInt rank=%d = %d, want %d", backend, p, id, got, wantScan[id])
		}
	}
}

// collectiveTestPs: P=1 (every collective must degenerate to the identity)
// plus non-powers of two straddling the tree and skeleton edge cases.
var collectiveTestPs = []int{1, 3, 5, 6, 7}

func TestCollectivesGoroutineBackend(t *testing.T) {
	for _, p := range collectiveTestPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(collectivesProgram(t, p, "goroutine"))
	}
}

func TestCollectivesTCPBackend(t *testing.T) {
	for _, p := range collectiveTestPs {
		_, errs := LaunchLoopback(netTestTemplate(), p, nil, collectivesProgram(t, p, "tcp"))
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("tcp p=%d rank %d: %v", p, rank, err)
			}
		}
	}
}
