package comm

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"picpar/internal/machine"
)

// soakPlans are the seeded fault plans the chaos soak runs under; each
// stresses a different mix of the fault kinds.
var soakPlans = []FaultPlan{
	{Seed: 0xC0FFEE, DropProb: 0.25, MaxDropAttempts: 3},
	{Seed: 0xDECAF, DupProb: 0.2, ReorderProb: 0.2},
	{Seed: 0xBEEF01, DropProb: 0.1, MaxDropAttempts: 2, DupProb: 0.1,
		ReorderProb: 0.1, DelayProb: 0.2, MaxDelay: 1e-3},
}

// exerciseCollectives drives the full collective surface plus point-to-point
// traffic with deterministic data and returns a digest of every result this
// rank observed. Equal digests across runs mean byte-identical outputs.
func exerciseCollectives(t Transport) string {
	r, p := t.Rank(), t.Size()
	Barrier(t)
	bc := Bcast(t, 0, fmt.Sprintf("payload-from-%d", 0), 16)
	sum := AllreduceSumInt(t, r+1)
	maxv := AllreduceMaxFloat64(t, 1.5*float64(r))
	vec := AllreduceSumFloat64s(t, []float64{float64(r), 1, float64(r * r)})
	ag := AllgatherInts(t, []int{10 * r, 10*r + 1})
	scan := ScanSumInt(t, r+1)

	// All-to-many: every rank sends one float to every rank (self included).
	send := make([][]float64, p)
	counts := make([]int, p)
	for j := 0; j < p; j++ {
		send[j] = []float64{float64(100*r + j)}
		counts[j] = 1
	}
	recvCounts := ExchangeCounts(t, counts)
	a2m := AllToManyFloat64s(t, send, recvCounts)

	// Point-to-point ring with a user tag, two laps so per-link sequence
	// numbers grow past 0.
	const tagRing = TagUser + 9
	var ring []int
	for lap := 0; lap < 2; lap++ {
		next, prev := (r+1)%p, (r-1+p)%p
		SendInts(t, next, tagRing, []int{1000*lap + r})
		ring = append(ring, RecvInts(t, prev, tagRing)...)
	}
	Barrier(t)
	return fmt.Sprint(bc, sum, maxv, vec, ag, scan, a2m, ring)
}

// runSoak executes the exerciser on a fresh world with the given decorator
// stack and returns the per-rank digests.
func runSoak(p int, wrap func(Transport) Transport) []any {
	var digests []any
	w := newTestWorld(p, machine.CM5())
	w.RunWrapped(wrap, func(t Transport) {
		d := exerciseCollectives(t)
		out := t.Expose(d)
		if t.Rank() == 0 {
			digests = out
		}
	})
	return digests
}

// TestChaosSoakReliableByteIdentical: under every seeded fault plan, the
// full collective surface wrapped in Reliable ∘ Faulty produces outputs
// byte-identical to the fault-free run.
func TestChaosSoakReliableByteIdentical(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		baseline := runSoak(p, nil)
		for pi, plan := range soakPlans {
			faulty := NewFaulty(plan)
			rel := NewReliable(ReliableConfig{})
			got := runSoak(p, func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) })
			for r := range baseline {
				if got[r] != baseline[r] {
					t.Errorf("p=%d plan=%d rank %d: output diverged under faults\n got %v\nwant %v",
						p, pi, r, got[r], baseline[r])
				}
			}
			c := faulty.Counts()
			if c.Drops+c.Dups+c.Reorders+c.Delays == 0 {
				t.Errorf("p=%d plan=%d: plan injected no faults — soak exercised nothing", p, pi)
			}
		}
	}
}

// TestChaosSoakTracedStackByteIdentical: the full documented stack
// Tracer ∘ Reliable ∘ Faulty ∘ World also recovers, and the tracer observes
// the recovered (application-order) traffic without disturbing it.
func TestChaosSoakTracedStackByteIdentical(t *testing.T) {
	const p = 4
	baseline := runSoak(p, nil)
	faulty := NewFaulty(soakPlans[2])
	rel := NewReliable(ReliableConfig{})
	tracer := NewTracer()
	got := runSoak(p, func(tr Transport) Transport {
		return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
	})
	for r := range baseline {
		if got[r] != baseline[r] {
			t.Errorf("rank %d: output diverged under traced chaos stack", r)
		}
	}
	if tracer.Total().MsgsSent == 0 {
		t.Error("tracer observed no traffic through the chaos stack")
	}
}

// TestChaosDeterministic: the same seed injects exactly the same faults and
// charges exactly the same recovery time, run after run.
func TestChaosDeterministic(t *testing.T) {
	run := func() (FaultCounts, RecoveryStats, []any) {
		faulty := NewFaulty(soakPlans[2])
		rel := NewReliable(ReliableConfig{})
		d := runSoak(4, func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) })
		return faulty.Counts(), rel.Stats(), d
	}
	c1, s1, d1 := run()
	c2, s2, d2 := run()
	// The aggregate float sums (DelayInjected, WastedTime) accumulate in
	// rank-scheduling order under a mutex, so identical runs can differ in
	// the last ULP; every per-message value and all integer counts are
	// exactly deterministic.
	if !closeEnough(c1.DelayInjected, c2.DelayInjected) {
		t.Errorf("injected delay differs between identical seeded runs: %v vs %v",
			c1.DelayInjected, c2.DelayInjected)
	}
	c1.DelayInjected, c2.DelayInjected = 0, 0
	if c1 != c2 {
		t.Errorf("fault counts differ between identical seeded runs: %+v vs %+v", c1, c2)
	}
	if !closeEnough(s1.WastedTime, s2.WastedTime) {
		t.Errorf("wasted time differs between identical seeded runs: %v vs %v",
			s1.WastedTime, s2.WastedTime)
	}
	s1.WastedTime, s2.WastedTime = 0, 0
	if s1 != s2 {
		t.Errorf("recovery stats differ between identical seeded runs: %+v vs %+v", s1, s2)
	}
	for r := range d1 {
		if d1[r] != d2[r] {
			t.Errorf("rank %d digest differs between identical seeded runs", r)
		}
	}
}

// closeEnough compares two float sums up to relative accumulation-order
// error.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestFaultyWithoutReliableFailsLoudly: every plan, run without a
// reliability layer, must fail with a diagnostic DeliveryError naming the
// receiving rank, peer and tag — never hang (the armed watchdog would
// convert a hang into a different panic and fail the assertion).
func TestFaultyWithoutReliableFailsLoudly(t *testing.T) {
	for pi, plan := range soakPlans {
		func() {
			defer func() {
				e := recover()
				if e == nil {
					t.Errorf("plan %d: perturbed run without Reliable did not fail", pi)
					return
				}
				de := AsDeliveryError(e)
				if de == nil {
					t.Errorf("plan %d: panic %T (%v), want a *DeliveryError", pi, e, e)
					return
				}
				if de.Rank < 0 || de.Rank >= 4 || de.Peer < 0 || de.Peer >= 4 {
					t.Errorf("plan %d: DeliveryError names no valid ranks: %v", pi, de)
				}
				if de.Reason == "" {
					t.Errorf("plan %d: DeliveryError has no reason: %v", pi, de)
				}
			}()
			w := NewWorld(4, machine.CM5())
			// Short watchdog: once one rank raises its DeliveryError, its
			// peers are genuinely stuck and must drain quickly. The first
			// panic in the channel — the DeliveryError — is what Run
			// re-raises.
			w.SetWatchdog(time.Second)
			faulty := NewFaulty(plan)
			w.RunWrapped(faulty.Wrap, func(tr Transport) { exerciseCollectives(tr) })
		}()
	}
}

// TestReliableFaultFreeTransparent: over a clean world, Reliable changes
// nothing — identical digests, identical simulated clocks, zero recovery
// activity. This is the simulated-cost half of the "fault-free overhead
// within noise" acceptance bar (the wall-clock half lives in bench_test.go).
func TestReliableFaultFreeTransparent(t *testing.T) {
	const p = 4
	clocks := func(wrap func(Transport) Transport) ([]any, []any) {
		var digests, times []any
		w := newTestWorld(p, machine.CM5())
		w.RunWrapped(wrap, func(tr Transport) {
			d := exerciseCollectives(tr)
			dg := tr.Expose(d)
			ts := tr.Expose(tr.Clock().Now())
			if tr.Rank() == 0 {
				digests, times = dg, ts
			}
		})
		return digests, times
	}
	baseDig, baseClk := clocks(nil)
	rel := NewReliable(ReliableConfig{})
	relDig, relClk := clocks(rel.Wrap)
	for r := 0; r < p; r++ {
		if relDig[r] != baseDig[r] {
			t.Errorf("rank %d: Reliable changed output on a fault-free world", r)
		}
		if relClk[r] != baseClk[r] {
			t.Errorf("rank %d: Reliable changed the simulated clock on a fault-free world: %v vs %v",
				r, relClk[r], baseClk[r])
		}
	}
	if s := rel.Stats(); s != (RecoveryStats{}) {
		t.Errorf("Reliable recorded recovery activity on a fault-free world: %+v", s)
	}
}

// TestReliableChargesRecoveryTime: drops must cost simulated time — the
// perturbed run's max clock strictly exceeds the fault-free run's, and the
// layer's WastedTime ledger is positive.
func TestReliableChargesRecoveryTime(t *testing.T) {
	const p = 4
	maxClock := func(wrap func(Transport) Transport) float64 {
		var max float64
		w := newTestWorld(p, machine.CM5())
		w.RunWrapped(wrap, func(tr Transport) {
			ts := tr.Expose(tr.Clock().Now())
			_ = exerciseCollectives(tr)
			ts = tr.Expose(tr.Clock().Now())
			if tr.Rank() == 0 {
				for _, v := range ts {
					if f := v.(float64); f > max {
						max = f
					}
				}
			}
		})
		return max
	}
	base := maxClock(nil)
	faulty := NewFaulty(soakPlans[0])
	rel := NewReliable(ReliableConfig{})
	perturbed := maxClock(func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) })
	if perturbed <= base {
		t.Errorf("recovery charged no simulated time: perturbed %v <= fault-free %v", perturbed, base)
	}
	if s := rel.Stats(); s.WastedTime <= 0 || s.Retransmissions <= 0 {
		t.Errorf("recovery ledger empty under a drop-heavy plan: %+v", s)
	}
}

// TestReliableRetriesExhausted: a drop burst beyond the retry budget is
// terminal — a DeliveryError with reason "retries exhausted", not a hang.
func TestReliableRetriesExhausted(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 1, MaxDropAttempts: 6}
	defer func() {
		de := AsDeliveryError(recover())
		if de == nil {
			t.Fatal("expected a DeliveryError when drops exceed the retry budget")
		}
		if de.Reason != "retries exhausted" {
			t.Errorf("reason %q, want %q", de.Reason, "retries exhausted")
		}
		if de.Attempts <= 2 {
			t.Errorf("attempts %d, want > MaxRetries", de.Attempts)
		}
	}()
	faulty := NewFaulty(plan)
	rel := NewReliable(ReliableConfig{MaxRetries: 2})
	w := newTestWorld(2, machine.CM5())
	w.RunWrapped(func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) },
		func(tr Transport) {
			// Enough messages that some draw drops > MaxRetries copies.
			for i := 0; i < 8; i++ {
				if tr.Rank() == 0 {
					SendInts(tr, 1, TagUser, []int{i})
				} else {
					RecvInts(tr, 0, TagUser)
				}
			}
		})
}

// TestCollectFailures: inside a CollectFailures scope a terminal delivery
// failure is recorded, not raised; the exchange still completes
// structurally and both ranks agree the data arrived (lossless substrate).
func TestCollectFailures(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 1, MaxDropAttempts: 6}
	faulty := NewFaulty(plan)
	rel := NewReliable(ReliableConfig{MaxRetries: 2})
	var rank1Failures []*DeliveryError
	w := newTestWorld(2, machine.CM5())
	w.RunWrapped(func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) },
		func(tr Transport) {
			deg, ok := AsDegradable(tr)
			if !ok {
				t.Error("Reliable transport not discovered as Degradable")
				return
			}
			errs := deg.CollectFailures(func() {
				for i := 0; i < 8; i++ {
					if tr.Rank() == 0 {
						SendInts(tr, 1, TagUser, []int{i})
					} else {
						got := RecvInts(tr, 0, TagUser)
						if got[0] != i {
							t.Errorf("rank 1: message %d corrupted: %v", i, got)
						}
					}
				}
			})
			if tr.Rank() == 1 {
				rank1Failures = errs
			}
		})
	if len(rank1Failures) == 0 {
		t.Fatal("CollectFailures recorded nothing under a certain-drop plan")
	}
	for _, de := range rank1Failures {
		if de.Reason != "retries exhausted" {
			t.Errorf("collected failure reason %q, want %q", de.Reason, "retries exhausted")
		}
	}
}

// TestDegradableThroughTracer: AsDegradable finds the Reliable layer through
// a Tracer wrapped above it.
func TestDegradableThroughTracer(t *testing.T) {
	rel := NewReliable(ReliableConfig{})
	tracer := NewTracer()
	w := newTestWorld(2, machine.Zero())
	w.RunWrapped(func(tr Transport) Transport { return tracer.Wrap(rel.Wrap(tr)) },
		func(tr Transport) {
			if _, ok := AsDegradable(tr); !ok {
				t.Error("AsDegradable failed to walk through the Tracer")
			}
		})
}

// TestClosedWorldTypedError: a rank outliving its Launch world fails with a
// *TransportError wrapping ErrClosedWorld — typed, so the reliability layer
// (or any recover site) can tell a teardown bug from a network fault.
func TestClosedWorldTypedError(t *testing.T) {
	var leaked Transport
	Launch(2, machine.Zero(), func(tr Transport) {
		if tr.Rank() == 0 {
			leaked = tr
		}
		Barrier(tr)
	})
	defer func() {
		e := recover()
		var te *TransportError
		err, ok := e.(error)
		if !ok || !errors.As(err, &te) {
			t.Fatalf("panic %T (%v), want *TransportError", e, e)
		}
		if !errors.Is(te, ErrClosedWorld) {
			t.Errorf("error %v does not wrap ErrClosedWorld", te)
		}
	}()
	leaked.Send(1, TagUser, nil, 0)
}

// TestReliableDoesNotMaskClosedWorld: the same teardown bug through a full
// chaos stack still surfaces as ErrClosedWorld — Reliable must not retry or
// swallow structural misuse.
func TestReliableDoesNotMaskClosedWorld(t *testing.T) {
	rel := NewReliable(ReliableConfig{})
	faulty := NewFaulty(soakPlans[2])
	var leaked Transport
	w := newTestWorld(2, machine.Zero())
	w.RunWrapped(func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) },
		func(tr Transport) {
			if tr.Rank() == 0 {
				leaked = tr
			}
			Barrier(tr)
		})
	w.Close()
	defer func() {
		e := recover()
		err, ok := e.(error)
		var te *TransportError
		if !ok || !errors.As(err, &te) || !errors.Is(te, ErrClosedWorld) {
			t.Fatalf("panic %T (%v), want *TransportError wrapping ErrClosedWorld", e, e)
		}
	}()
	leaked.Send(1, TagUser, nil, 0)
}
