// The fault-injecting decorator transport: wraps any Transport (in the
// shape of the Tracer) and perturbs the messages flowing through Send/Recv
// according to a deterministic, seeded FaultPlan — per-link delays,
// reorderings, duplicates and drops. Because every collective is built from
// Send/Recv, a single decorator hardens the whole collective surface and
// everything composed on top of it (redistribution, policy measurement).
//
// The substrate underneath is lossless, so faults are modelled as metadata
// riding on a fault envelope rather than as information loss: a "dropped"
// message still physically arrives, carrying the number of times the
// network discarded it before a copy got through. That keeps every rank's
// protocol structurally complete (no injected fault can hang the world)
// while forcing the layers above to deal with the fault: the Reliable
// decorator converts the metadata into retry charges on the simulated
// clock, and an unprotected receiver fails loudly with a DeliveryError
// instead of silently consuming perturbed traffic.
//
// Determinism: every decision is a pure function of (plan seed, sender,
// receiver, tag, per-link sequence number), independent of goroutine
// scheduling, so a seeded chaos run is exactly reproducible.

package comm

import (
	"sync"

	"picpar/internal/machine"
)

// FaultPlan describes what the chaotic network does to matching messages.
// Probabilities are per message and mutually exclusive (a message suffers at
// most one fault kind; drop wins over duplicate over reorder over delay).
// The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every decision; equal seeds reproduce runs exactly.
	Seed uint64

	// DropProb is the probability a message is dropped by the network and
	// must be retransmitted. MaxDropAttempts bounds how many consecutive
	// copies are lost (default 1); a reliability layer gives up — with a
	// DeliveryError — when the count exceeds its retry budget.
	DropProb        float64
	MaxDropAttempts int
	// DupProb is the probability a spurious duplicate copy is delivered
	// right behind the original.
	DupProb float64
	// ReorderProb is the probability a message is held back and delivered
	// after the sender's next message on the same (destination, tag) link.
	// If no such message follows before the sender's next transport
	// operation, the hold is released in order (nothing to reorder with).
	ReorderProb float64
	// DelayProb is the probability a message suffers an extra transit
	// delay, uniform in (0, MaxDelay] simulated seconds, charged to the
	// receiver's clock.
	DelayProb float64
	MaxDelay  float64

	// Optional filters: a fault is only injected when the sender rank, the
	// destination rank, the tag and the sender's current accounting phase
	// all match (nil means "any").
	SrcRanks []int
	DstRanks []int
	Tags     []Tag
	Phases   []machine.Phase
	// MinSeq exempts the first MinSeq messages of every matching link — a
	// warm-up grace, so setup traffic (initial distribution, first
	// exchanges) stays clean while steady-state traffic is perturbed.
	MinSeq uint64
}

// Exported aliases of the internal collective tags, for targeting
// collective traffic in a FaultPlan (the collectives themselves keep using
// the unexported names).
const (
	TagCollBarrier   = tagBarrier
	TagCollBcast     = tagBcast
	TagCollReduce    = tagReduce
	TagCollGather    = tagGather
	TagCollAllgather = tagAllgather
	TagCollAllToMany = tagAlltoMany
	TagCollScan      = tagScan
)

// faultKind labels what the plan decided for one message.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultDup
	faultReorder
	faultDelay
)

// decision is the plan's verdict for one message.
type decision struct {
	kind  faultKind
	drops int     // faultDrop: copies lost before one gets through
	delay float64 // faultDelay: extra transit delay in simulated seconds
}

// splitmix64 is the SplitMix64 mixing function: a full-avalanche hash used
// to derive independent pseudo-random streams from (seed, link, sequence).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// contains reports whether set admits v; a nil set admits everything.
func contains[T comparable](set []T, v T) bool {
	if set == nil {
		return true
	}
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

// decide returns the plan's deterministic verdict for message number seq on
// the src→dst link with the given tag, sent during phase.
func (p *FaultPlan) decide(src, dst int, tag Tag, phase machine.Phase, seq uint64) decision {
	if seq < p.MinSeq {
		return decision{}
	}
	if !contains(p.SrcRanks, src) || !contains(p.DstRanks, dst) ||
		!contains(p.Tags, tag) || !contains(p.Phases, phase) {
		return decision{}
	}
	h := splitmix64(p.Seed ^ splitmix64(uint64(src)+1))
	h = splitmix64(h ^ splitmix64(uint64(dst)+1))
	h = splitmix64(h ^ splitmix64(uint64(int64(tag))+0x5bd1e995))
	h = splitmix64(h ^ splitmix64(seq+1))
	u := unit(h)
	switch {
	case u < p.DropProb:
		attempts := 1
		if p.MaxDropAttempts > 1 {
			attempts = 1 + int(splitmix64(h^1)%uint64(p.MaxDropAttempts))
		}
		return decision{kind: faultDrop, drops: attempts}
	case u < p.DropProb+p.DupProb:
		return decision{kind: faultDup}
	case u < p.DropProb+p.DupProb+p.ReorderProb:
		return decision{kind: faultReorder}
	case u < p.DropProb+p.DupProb+p.ReorderProb+p.DelayProb:
		return decision{kind: faultDelay, delay: unit(splitmix64(h^2)) * p.MaxDelay}
	}
	return decision{}
}

// faultMeta is the envelope metadata the fault layer attaches to every
// non-self message. inOrder reports whether the copy arrived in link order
// (false exactly when a reorder swapped it past a younger message).
type faultMeta struct {
	seq     uint64
	drops   int
	dup     bool
	delay   float64
	inOrder bool
}

// faultEnvelope is the wire format of the fault layer: metadata plus the
// application body. The modelled byte size is unchanged — the envelope is
// the simulator's representation of link-layer framing, not extra payload.
type faultEnvelope struct {
	seq   uint64
	drops int
	dup   bool
	delay float64
	body  any
}

// envelopeReceiver is the private seam between the Faulty and Reliable
// decorators: Reliable receives fault metadata alongside the payload so it
// can recover, where a plain Recv must fail loudly.
type envelopeReceiver interface {
	recvEnvelope(src int, tag Tag) (faultMeta, any, int)
}

// FaultCounts tallies the faults a Faulty decorator has injected.
type FaultCounts struct {
	Drops    int64 // messages that needed at least one retransmission
	Dups     int64 // spurious duplicate copies delivered
	Reorders int64 // messages swapped past a younger one
	Delays   int64 // messages given extra transit delay
	// DelayInjected is the total extra transit delay in simulated seconds.
	DelayInjected float64
}

// Faulty injects the faults of a FaultPlan into every rank it wraps.
// Install it with World.RunWrapped(faulty.Wrap, fn), or compose it under a
// Reliable decorator: Reliable's Wrap goes outside (closer to the
// application), Faulty's inside (closer to the wire) — see the decorator
// stack ordering rules in DESIGN.md. Self-sends bypass the network and are
// never perturbed.
type Faulty struct {
	plan FaultPlan

	mu     sync.Mutex
	counts FaultCounts
}

// NewFaulty returns a fault injector for the given plan.
func NewFaulty(plan FaultPlan) *Faulty {
	if plan.MaxDropAttempts <= 0 {
		plan.MaxDropAttempts = 1
	}
	return &Faulty{plan: plan}
}

// Wrap decorates t; pass this method (or a composition including it) to
// World.RunWrapped.
func (f *Faulty) Wrap(t Transport) Transport {
	return &faultyTransport{
		Transport: t,
		faulty:    f,
		sendSeq:   make(map[linkKey]uint64),
		recvSeq:   make(map[linkKey]uint64),
		held:      make(map[linkKey]heldMessage),
	}
}

// Counts returns the faults injected so far across all ranks.
func (f *Faulty) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// linkKey identifies one directed (peer, tag) message stream.
type linkKey struct {
	peer int
	tag  Tag
}

// heldMessage is a reorder hold: an envelope waiting for the sender's next
// message on the same link.
type heldMessage struct {
	env    faultEnvelope
	nbytes int
}

// faultyTransport is the per-rank fault-injecting endpoint. Owned by one
// goroutine like every Transport.
type faultyTransport struct {
	Transport
	faulty  *Faulty
	sendSeq map[linkKey]uint64 // next sequence number per outgoing link
	recvSeq map[linkKey]uint64 // next expected sequence per incoming link
	held    map[linkKey]heldMessage
}

// Unwrap implements Wrapper.
func (t *faultyTransport) Unwrap() Transport { return t.Transport }

// Send implements Transport: it consults the plan, then posts the fault
// envelope (and any duplicate or previously held copy) on the wire.
func (t *faultyTransport) Send(dst int, tag Tag, body any, nbytes int) {
	if dst == t.Rank() {
		// Local delivery never touches the network; pass through unharmed.
		t.Transport.Send(dst, tag, body, nbytes)
		return
	}
	key := linkKey{dst, tag}
	seq := t.sendSeq[key]
	t.sendSeq[key] = seq + 1

	// A message on a link with a pending hold completes the swap: it goes
	// out first and the held one follows, regardless of its own draw.
	if h, ok := t.held[key]; ok {
		delete(t.held, key)
		t.Transport.Send(dst, tag, faultEnvelope{seq: seq, body: body}, nbytes)
		t.Transport.Send(dst, tag, h.env, h.nbytes)
		return
	}
	// Any other pending holds are released in order before new traffic, so
	// a hold never outlives the sender's next transport operation.
	t.flushHeld()

	d := t.faulty.plan.decide(t.Rank(), dst, tag, t.Stats().CurrentPhase(), seq)
	t.faulty.record(d)
	env := faultEnvelope{seq: seq, drops: d.drops, delay: d.delay, body: body}
	switch d.kind {
	case faultReorder:
		t.held[key] = heldMessage{env: env, nbytes: nbytes}
		return
	case faultDup:
		t.Transport.Send(dst, tag, env, nbytes)
		dup := env
		dup.dup = true
		t.Transport.Send(dst, tag, dup, nbytes)
		return
	default:
		t.Transport.Send(dst, tag, env, nbytes)
	}
}

// record tallies one decision into the shared counters.
func (f *Faulty) record(d decision) {
	if d.kind == faultNone {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch d.kind {
	case faultDrop:
		f.counts.Drops++
	case faultDup:
		f.counts.Dups++
	case faultReorder:
		f.counts.Reorders++
	case faultDelay:
		f.counts.Delays++
		f.counts.DelayInjected += d.delay
	}
}

// flushHeld releases every reorder hold in link order. Called before the
// rank's next transport operation and, via RunWrapped, when the rank's
// program returns — a held message can therefore never strand a receiver.
func (t *faultyTransport) flushHeld() {
	if len(t.held) == 0 {
		return
	}
	for key, h := range t.held {
		delete(t.held, key)
		t.Transport.Send(key.peer, key.tag, h.env, h.nbytes)
	}
}

// Expose implements Transport: holds are flushed first, so a reorder hold
// can never stall a peer through the out-of-band channel's barriers (which
// run on the backend, below this decorator).
func (t *faultyTransport) Expose(v any) []any {
	t.flushHeld()
	return t.Transport.Expose(v)
}

// recvEnvelope pulls the next envelope off the (src, tag) stream, charges
// any injected transit delay to the receiver's clock, and returns the fault
// metadata alongside the payload. This is the seam the Reliable decorator
// recovers through.
func (t *faultyTransport) recvEnvelope(src int, tag Tag) (faultMeta, any, int) {
	t.flushHeld()
	body, nbytes := t.Transport.Recv(src, tag)
	if src == t.Rank() {
		return faultMeta{inOrder: true}, body, nbytes
	}
	env := body.(faultEnvelope)
	if env.delay > 0 {
		t.Clock().Advance(env.delay)
	}
	key := linkKey{src, tag}
	meta := faultMeta{seq: env.seq, drops: env.drops, dup: env.dup, delay: env.delay}
	if !env.dup {
		expect := t.recvSeq[key]
		meta.inOrder = env.seq == expect
		if env.seq >= expect {
			t.recvSeq[key] = env.seq + 1
		}
	}
	return meta, env.body, nbytes
}

// Recv implements Transport for a Faulty used without a reliability layer:
// perturbed traffic fails loudly with a DeliveryError naming rank, peer,
// tag and phase — never a hang, and never silent consumption of a message
// the network damaged.
func (t *faultyTransport) Recv(src int, tag Tag) (any, int) {
	meta, body, nbytes := t.recvEnvelope(src, tag)
	if meta.dup {
		panic(&DeliveryError{
			Rank: t.Rank(), Peer: src, Tag: tag, Phase: t.Stats().CurrentPhase(),
			Attempts: 1, Reason: "duplicated (no reliability layer installed)",
		})
	}
	if meta.drops > 0 {
		panic(&DeliveryError{
			Rank: t.Rank(), Peer: src, Tag: tag, Phase: t.Stats().CurrentPhase(),
			Attempts: meta.drops, Reason: "dropped (no reliability layer installed)",
		})
	}
	if !meta.inOrder {
		panic(&DeliveryError{
			Rank: t.Rank(), Peer: src, Tag: tag, Phase: t.Stats().CurrentPhase(),
			Attempts: 1, Reason: "reordered (no reliability layer installed)",
		})
	}
	return body, nbytes
}
