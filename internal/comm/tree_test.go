package comm

import (
	"math/bits"
	"math/rand"
	"testing"
)

// The properties that define nextPow2 — any value satisfying all three is
// THE answer, so the collectives' mask sequences are pinned by these tests:
//
//	result ≥ n, result is a power of two, result/2 < n (minimality).
func TestNextPow2Properties(t *testing.T) {
	check := func(n int) {
		k := nextPow2(n)
		if k < 1 || bits.OnesCount(uint(k)) != 1 {
			t.Fatalf("nextPow2(%d) = %d: not a positive power of two", n, k)
		}
		if k < n {
			t.Fatalf("nextPow2(%d) = %d < n", n, k)
		}
		if n > 1 && k/2 >= n {
			t.Fatalf("nextPow2(%d) = %d is not minimal (%d also ≥ n)", n, k, k/2)
		}
	}
	for n := -3; n <= 300; n++ {
		check(n)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		check(rng.Intn(1 << 30))
	}
	// Exact powers of two are their own answer.
	for b := 0; b < 30; b++ {
		if got := nextPow2(1 << b); got != 1<<b {
			t.Fatalf("nextPow2(2^%d) = %d, want %d", b, got, 1<<b)
		}
	}
}

// highestSetBit's defining properties: the result is 0 for v ≤ 0, and
// otherwise a power of two with result ≤ v < 2·result (maximality).
func TestHighestSetBitProperties(t *testing.T) {
	check := func(v int) {
		hb := highestSetBit(v)
		if v <= 0 {
			if hb != 0 {
				t.Fatalf("highestSetBit(%d) = %d, want 0", v, hb)
			}
			return
		}
		if hb < 1 || bits.OnesCount(uint(hb)) != 1 {
			t.Fatalf("highestSetBit(%d) = %d: not a power of two", v, hb)
		}
		if hb > v || 2*hb <= v {
			t.Fatalf("highestSetBit(%d) = %d: not the largest power of two ≤ v", v, hb)
		}
		if want := 1 << (bits.Len(uint(v)) - 1); hb != want {
			t.Fatalf("highestSetBit(%d) = %d, bits.Len says %d", v, hb, want)
		}
	}
	for v := -3; v <= 300; v++ {
		check(v)
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 1000; i++ {
		check(rng.Intn(1 << 30))
	}
}

// The two helpers agree on their shared domain: for a power of two both are
// the identity, and in general nextPow2(v) is highestSetBit(v) doubled
// unless v already is a power of two.
func TestTreeHelpersAgree(t *testing.T) {
	for v := 1; v <= 4096; v++ {
		hb := highestSetBit(v)
		np := nextPow2(v)
		if v == hb && np != v {
			t.Fatalf("v=%d is a power of two but nextPow2 = %d", v, np)
		}
		if v != hb && np != 2*hb {
			t.Fatalf("v=%d: nextPow2 = %d, want 2·highestSetBit = %d", v, np, 2*hb)
		}
	}
}
