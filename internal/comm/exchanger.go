// Topology-native all-to-many exchange. The classic AllToMany (collectives.go)
// posts directly to every destination — an any-to-any assumption the sparse
// topologies cannot honour. This file provides the alternatives and the
// Exchanger seam the engine layer selects between:
//
//   - AllToManySystolicFloat64s: Towards-Exascale-MD-style systolic pulse.
//     All payloads travel the ±1 ring links in exactly p−1 deterministic
//     pulses, each rank forwarding a single combined frame to its successor.
//     Ring-legal, so it runs under every topology (±1 is in the collective
//     skeleton).
//   - ExchangeCountsNeighbor / AllToManyNeighborFloat64s: the stencil-local
//     variants. Counts travel only the 2k adjacent links instead of the
//     (p−1)-step allgather ring; data sends are validated against the
//     topology so a protocol that silently assumed any-to-any reach fails
//     with the typed out-of-topology error.
//
// Determinism: the systolic pulse schedule is data-independent — every rank
// sends exactly one frame per pulse, empty or not, so the message count and
// the receive order (and hence the simulated clock and the physics
// fingerprint) depend only on p, never on the payload distribution.

package comm

import (
	"fmt"
	"sort"

	"picpar/internal/wire"
)

// Exchanger bundles the two halves of an all-to-many redistribution — the
// traffic-table exchange and the payload exchange — behind one seam, so the
// engine layer (psort, pic) selects a topology-native protocol without
// knowing its schedule. A nil Exchanger everywhere means the classic
// pairwise protocol.
type Exchanger interface {
	// Name identifies the protocol in traces and diagnostics.
	Name() string
	// Counts exchanges the traffic table: sendCounts[d] elements will go to
	// rank d; returns recvCounts[s], the elements rank s will send here.
	Counts(t Transport, sendCounts []int) (recvCounts []int)
	// Exchange moves the payloads: send[d] goes to rank d, recvCounts from
	// Counts. Returns received slices indexed by source; recv[self] may
	// alias send[self].
	Exchange(t Transport, send [][]float64, recvCounts []int) [][]float64
}

// pairwiseExchanger is the classic protocol: allgather counts + staggered
// pairwise data exchange.
type pairwiseExchanger struct{}

// NewPairwiseExchanger returns the classic any-to-any protocol
// (ExchangeCounts + AllToManyFloat64s) behind the Exchanger seam.
func NewPairwiseExchanger() Exchanger { return pairwiseExchanger{} }

func (pairwiseExchanger) Name() string { return "pairwise" }

func (pairwiseExchanger) Counts(t Transport, sendCounts []int) []int {
	return ExchangeCounts(t, sendCounts)
}

func (pairwiseExchanger) Exchange(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	return AllToManyFloat64s(t, send, recvCounts)
}

// systolicExchanger pulses payloads around the ring. Counts still use the
// classic allgather — the allgather is itself a ring protocol, so it is
// legal on every topology.
type systolicExchanger struct{}

// NewSystolicExchanger returns the ring-pulse protocol: classic counts
// (ring-legal) + AllToManySystolicFloat64s payloads.
func NewSystolicExchanger() Exchanger { return systolicExchanger{} }

func (systolicExchanger) Name() string { return "systolic" }

func (systolicExchanger) Counts(t Transport, sendCounts []int) []int {
	return ExchangeCounts(t, sendCounts)
}

func (systolicExchanger) Exchange(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	return AllToManySystolicFloat64s(t, send, recvCounts)
}

// neighborExchanger restricts both halves to the topology's links.
type neighborExchanger struct{ tp *Topology }

// NewNeighborExchanger returns the stencil-local protocol over tp: counts
// travel only adjacent links (ExchangeCountsNeighbor) and data sends are
// validated against the topology before the pairwise exchange runs. Use it
// when the caller guarantees locality (the paper's redistribution only ever
// moves particles between SFC-adjacent partitions); a violated guarantee is
// a typed error, not silent corruption.
func NewNeighborExchanger(tp *Topology) Exchanger {
	if tp == nil {
		panic("comm: NewNeighborExchanger(nil)")
	}
	return neighborExchanger{tp: tp}
}

func (e neighborExchanger) Name() string { return "neighbor" }

func (e neighborExchanger) Counts(t Transport, sendCounts []int) []int {
	return ExchangeCountsNeighbor(t, e.tp, sendCounts)
}

func (e neighborExchanger) Exchange(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	return AllToManyNeighborFloat64s(t, e.tp, send, recvCounts)
}

// ExchangeCountsNeighbor is ExchangeCounts restricted to tp's links: each
// rank trades one count message with each of its 2k neighbors instead of
// running the (p−1)-step allgather ring, so a stencil-local redistribution
// learns its traffic table in O(k) messages. sendCounts must be zero for
// every non-neighbor — a nonzero count to an unlinked rank is the same
// typed out-of-topology error a direct send would raise. Non-neighbor
// entries of recvCounts are zero by construction.
func ExchangeCountsNeighbor(t Transport, tp *Topology, sendCounts []int) (recvCounts []int) {
	p := t.Size()
	id := t.Rank()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: ExchangeCountsNeighbor len=%d want P=%d", len(sendCounts), p))
	}
	if tp.Size() != p {
		panic(fmt.Sprintf("comm: ExchangeCountsNeighbor topology %s is for p=%d, world has P=%d",
			tp.Name(), tp.Size(), p))
	}
	for d, n := range sendCounts {
		if n > 0 && d != id && !tp.Connected(id, d) {
			panic(&TransportError{Op: "send", Rank: id, Peer: d, Tag: tagNeighborCounts,
				Err: tp.errOutOf(id, d)})
		}
	}
	recvCounts = make([]int, p)
	recvCounts[id] = sendCounts[id] // matches the classic table's diagonal
	peers := tp.Peers(id)
	for _, q := range peers {
		t.Send(q, tagNeighborCounts, sendCounts[q], IntBytes)
	}
	for _, q := range peers {
		body, _ := t.Recv(q, tagNeighborCounts)
		recvCounts[q] = body.(int)
	}
	return recvCounts
}

// AllToManyNeighborFloat64s is the pairwise payload exchange with the
// locality contract enforced: every nonzero send must target a neighbor
// under tp. The schedule is the classic staggered exchange — empty sends
// are skipped there, so when the contract holds the charges are identical
// to AllToManyFloat64s on a full mesh.
func AllToManyNeighborFloat64s(t Transport, tp *Topology, send [][]float64, recvCounts []int) [][]float64 {
	id := t.Rank()
	for d := range send {
		if len(send[d]) > 0 && d != id && !tp.Connected(id, d) {
			panic(&TransportError{Op: "send", Rank: id, Peer: d, Tag: tagAlltoMany,
				Err: tp.errOutOf(id, d)})
		}
	}
	return AllToManyFloat64s(t, send, recvCounts)
}

// ExchangeCountsSparse is ExchangeCounts with a far-traffic verdict: it runs
// the identical counts allgather (same schedule, same modelled charges) and
// additionally scans the full traffic table — which the allgather already
// delivered to every rank — for any nonzero payload between ranks that own
// no link under tp. The verdict is computed from global data, so every rank
// reaches the same answer with zero extra communication; it tells the
// payload exchange whether the systolic relay pass is needed at all.
func ExchangeCountsSparse(t Transport, tp *Topology, sendCounts []int) (recvCounts []int, anyFar bool) {
	p := t.Size()
	id := t.Rank()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: ExchangeCountsSparse len=%d want P=%d", len(sendCounts), p))
	}
	if tp.Size() != p {
		panic(fmt.Sprintf("comm: ExchangeCountsSparse topology %s is for p=%d, world has P=%d",
			tp.Name(), tp.Size(), p))
	}
	table := AllgatherInts(t, sendCounts)
	recvCounts = make([]int, p)
	for s := 0; s < p; s++ {
		recvCounts[s] = table[s*p+id]
	}
scan:
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d && table[s*p+d] > 0 && !tp.Connected(s, d) {
				anyFar = true
				break scan
			}
		}
	}
	return recvCounts, anyFar
}

// AllToManySparseFloat64s is the hybrid payload exchange for sparse
// topologies whose traffic is usually — but not provably — local: payloads
// between linked ranks travel the classic staggered pairwise schedule
// (byte-identical messages and charges to the full-mesh protocol), and
// payloads between unlinked ranks ride one systolic relay pass over the ±1
// ring. anyFar must be the globally agreed verdict from
// ExchangeCountsSparse: when false the relay pass is skipped entirely — no
// rank sends one extra message and the exchange is indistinguishable from
// the any-to-any protocol; when true every rank joins the p−1 relay pulses,
// empty-handed or not.
func AllToManySparseFloat64s(t Transport, tp *Topology, send [][]float64, recvCounts []int, anyFar bool) [][]float64 {
	if !anyFar {
		return AllToManyNeighborFloat64s(t, tp, send, recvCounts)
	}
	p := t.Size()
	id := t.Rank()
	if len(send) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("comm: AllToManySparseFloat64s len(send)=%d len(recvCounts)=%d want P=%d",
			len(send), len(recvCounts), p))
	}
	nearSend := make([][]float64, p)
	farSend := make([][]float64, p)
	nearCounts := make([]int, p)
	farCounts := make([]int, p)
	for q := 0; q < p; q++ {
		if q == id || tp.Connected(id, q) {
			nearSend[q] = send[q]
			nearCounts[q] = recvCounts[q]
		} else {
			farSend[q] = send[q]
			farCounts[q] = recvCounts[q]
		}
	}
	recv := AllToManyFloat64s(t, nearSend, nearCounts)
	farRecv := AllToManySystolicFloat64s(t, farSend, farCounts)
	for s := 0; s < p; s++ {
		if s != id && farRecv[s] != nil {
			recv[s] = farRecv[s]
		}
	}
	return recv
}

// sparseExchanger is the hybrid protocol behind the Exchanger seam. It is
// stateful — Counts records the far-traffic verdict the matching Exchange
// consumes — so each rank needs its own instance and the two calls must
// stay paired, which is exactly how the engine layer drives the seam.
type sparseExchanger struct {
	tp     *Topology
	anyFar bool
}

// NewSparseExchanger returns the hybrid protocol over tp: stencil-direct
// payloads on the classic schedule plus a systolic relay pass that only
// exists on iterations whose traffic table shows unlinked pairs exchanging
// data. This is the steady-state protocol of the neighbor-sparse topology:
// redistribution usually moves particles between adjacent partitions, but a
// cost-weighted repartition may decouple the particle and mesh alignments
// arbitrarily, and correctness cannot hinge on a locality heuristic.
func NewSparseExchanger(tp *Topology) Exchanger {
	if tp == nil {
		panic("comm: NewSparseExchanger(nil)")
	}
	return &sparseExchanger{tp: tp}
}

func (e *sparseExchanger) Name() string { return "sparse" }

func (e *sparseExchanger) Counts(t Transport, sendCounts []int) []int {
	recvCounts, anyFar := ExchangeCountsSparse(t, e.tp, sendCounts)
	e.anyFar = anyFar
	return recvCounts
}

func (e *sparseExchanger) Exchange(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	return AllToManySparseFloat64s(t, e.tp, send, recvCounts, e.anyFar)
}

// systolicItem is one in-flight payload during the ring pulse.
type systolicItem struct {
	origin int
	dest   int
	data   []float64
}

// AllToManySystolicFloat64s performs the all-to-many exchange as a systolic
// ring pulse: p−1 steps, each sending exactly ONE combined frame to
// (id+1) mod p and receiving one from (id−1+p) mod p. The frame carries
// every payload this rank still holds for other ranks, each stamped with
// its origin and destination; the receiver keeps what is addressed to it
// and forwards the rest on the next pulse. After p−1 pulses every payload
// has visited its destination (ring distance ≤ p−1), so no hold remains.
//
// An empty frame is still sent — one header float, τ + 8·μ — keeping the
// pulse schedule data-independent: the message count is exactly p·(p−1)
// regardless of the traffic pattern, the price of running an arbitrary
// exchange over ±1 links only.
//
// recv[self] aliases send[self]; received sizes are validated against
// recvCounts exactly like the classic exchange.
func AllToManySystolicFloat64s(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	p := t.Size()
	id := t.Rank()
	if len(send) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("comm: systolic len(send)=%d len(recvCounts)=%d want P=%d",
			len(send), len(recvCounts), p))
	}
	recv := make([][]float64, p)
	if len(send[id]) > 0 {
		recv[id] = send[id]
	}
	if p == 1 {
		return recv
	}
	next := (id + 1) % p
	prev := (id - 1 + p) % p

	// Hold the outgoing payloads in increasing ring-distance order: the
	// nearest destination leaves the hold first, so every item is forwarded
	// the minimal number of times and delivery order at each receiver is the
	// same on every rank count.
	hold := make([]systolicItem, 0, p-1)
	for s := 1; s < p; s++ {
		dst := (id + s) % p
		if len(send[dst]) > 0 {
			hold = append(hold, systolicItem{origin: id, dest: dst, data: send[dst]})
		}
	}

	for pulse := 0; pulse < p-1; pulse++ {
		// Encode the entire hold into one frame:
		// [count; per item: origin, dest, len, data…].
		n := 1
		for i := range hold {
			n += 3 + len(hold[i].data)
		}
		frame := wire.Get(n)[:0]
		frame = append(frame, float64(len(hold)))
		for i := range hold {
			it := &hold[i]
			frame = append(frame, float64(it.origin), float64(it.dest), float64(len(it.data)))
			frame = append(frame, it.data...)
			if it.origin != id {
				// A forwarded payload came out of the wire pool when the
				// previous pulse was unpacked; it is re-encoded now and
				// never referenced again.
				wire.Put(it.data)
			}
		}
		t.Send(next, tagSystolic, frame, len(frame)*Float64Bytes)
		hold = hold[:0]

		body, _ := t.Recv(prev, tagSystolic)
		in := body.([]float64)
		k := int(in[0])
		off := 1
		for i := 0; i < k; i++ {
			origin, dest, ln := int(in[off]), int(in[off+1]), int(in[off+2])
			off += 3
			data := in[off : off+ln]
			off += ln
			if dest == id {
				buf := append(wire.Get(ln)[:0], data...)
				if recv[origin] != nil {
					panic(fmt.Sprintf("comm: systolic duplicate payload from %d at rank %d", origin, id))
				}
				recv[origin] = buf
			} else {
				buf := append(wire.Get(ln)[:0], data...)
				hold = append(hold, systolicItem{origin: origin, dest: dest, data: buf})
			}
		}
		wire.Put(in)
		// Keep the forwarding order deterministic: nearest destination first
		// relative to this rank, origin as tie-break.
		sort.Slice(hold, func(a, b int) bool {
			da := (hold[a].dest - id + p) % p
			db := (hold[b].dest - id + p) % p
			if da != db {
				return da < db
			}
			return hold[a].origin < hold[b].origin
		})
	}
	if len(hold) != 0 {
		panic(fmt.Sprintf("comm: systolic exchange left %d undelivered payloads at rank %d", len(hold), id))
	}
	for s := 0; s < p; s++ {
		if got := len(recv[s]); got != recvCounts[s] {
			panic(fmt.Sprintf("comm: systolic size mismatch from %d: got %d want %d", s, got, recvCounts[s]))
		}
	}
	return recv
}
