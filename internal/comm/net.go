// The real-network Transport backend: one OS process per rank, TCP sockets
// between them, the same SPMD rank functions and collectives as the
// goroutine World. This is the ROADMAP "real-network transport" item, built
// as a robustness exercise: every seam of the connection lifecycle is
// supervised so that a killed, wedged or misconfigured peer surfaces as a
// typed diagnostic within a bounded timeout instead of a hang.
//
// Lifecycle of a rank endpoint (NetRank):
//
//  1. Rendezvous — dial the coordinator (capped-backoff retry with jitter),
//     register rank identity and mesh listen address, receive the world
//     membership table. Mismatched world size, duplicate ranks and codec
//     version skew are rejected here, before any data can flow.
//  2. Mesh — every pair of ranks shares one TCP connection: rank j dials
//     every i < j and accepts from every k > j. Each connection is verified
//     by a peer handshake carrying the coordinator-issued world id and both
//     rank identities, so a stray or crossed connection can never join.
//  3. Steady state — frames (netcodec.go) carry the modelled byte size and
//     the sender's simulated clock, so the cost model charges exactly what
//     the goroutine backend charges and experiment outputs stay
//     byte-identical across processes. A per-connection reader goroutine
//     demultiplexes data, out-of-band Expose values and heartbeats; a
//     heartbeat loop beacons liveness; read deadlines bound how long a
//     silent peer goes unnoticed.
//  4. Teardown — a clean exit announces itself with a goodbye frame, then
//     drains (keeps reading) until every peer has said goodbye or the
//     drain timeout passes, so no close can race in-flight frames into a
//     TCP reset. A crashed rank (panic, kill) closes abruptly: its peers
//     see EOF within milliseconds and fail their next Recv with a
//     *DeliveryError naming rank, peer, tag and phase.
//
// Failure taxonomy (see DESIGN.md "Error taxonomy"): a vanished or wedged
// peer is a *DeliveryError (the network failed the program); protocol
// misuse, codec version skew and operations on a torn-down endpoint are
// *TransportError (the program is broken); both surface as panics exactly
// like the goroutine backend's, and NetRank converts them into a *RankPanic
// error for the process's main function to report.
package comm

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"picpar/internal/machine"
	"picpar/internal/wire"
)

// NetConfig describes one rank's endpoint of a TCP-backed world. Zero
// duration fields take the documented defaults; Coordinator, Rank and Size
// are mandatory.
type NetConfig struct {
	// Coordinator is the rendezvous address (host:port) every rank reports
	// to before the mesh is built.
	Coordinator string
	// Rank and Size are this process's SPMD identity.
	Rank, Size int
	// ListenAddr is the address the rank's mesh listener binds; default
	// "127.0.0.1:0" (loopback, kernel-chosen port). Multi-host runs set it
	// to an address the other hosts can reach.
	ListenAddr string
	// Params are the cost-model constants, identical on every rank.
	Params machine.Params
	// WallClock switches the rank's clock from the simulated cost model to
	// real elapsed time (machine.WallClock), turning the simulator into an
	// actual parallel runtime. Defaults to off; simulated goldens only hold
	// with it off.
	WallClock bool
	// Watchdog, when positive, bounds how long a Recv may block without any
	// traffic from the awaited peer before the rank panics with a
	// diagnostic (the net analogue of World.SetWatchdog).
	Watchdog time.Duration
	// Topology, when non-nil, restricts the world to the descriptor's link
	// set: the mesh assembly dials only topology peers (O(P·k) sockets
	// instead of the O(P²) full mesh) and a Send/Recv on an unlinked pair is
	// a typed *TransportError wrapping *TopologyError. Every rank of a world
	// must present the same descriptor — the rendezvous pins its digest and
	// rejects mismatches. nil keeps the historical full mesh.
	Topology *Topology

	// DialTimeout bounds one dial attempt (default 2s); DialAttempts is the
	// retry budget (default 8) with exponential backoff from DialBackoff
	// (default 100ms) capped at DialMaxBackoff (default 2s), ±20% jitter.
	DialTimeout    time.Duration
	DialAttempts   int
	DialBackoff    time.Duration
	DialMaxBackoff time.Duration
	// RendezvousTimeout bounds the whole rendezvous and mesh handshake
	// (default 30s).
	RendezvousTimeout time.Duration
	// HeartbeatInterval is the liveness beacon period (default 250ms);
	// HeartbeatTimeout is how long a connection may stay silent before the
	// peer is declared lost (default 10s). A crashed process is usually
	// detected much faster via EOF; the heartbeat catches wedged-but-alive
	// peers.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// DrainTimeout bounds the clean-teardown drain (default 5s).
	DrainTimeout time.Duration

	// RejoinAttempts is how many times NetRankElastic re-enters the
	// rendezvous after the world dies under it (default 8), with the same
	// capped-backoff + jitter policy as the peer dial: exponential from
	// RejoinBackoff (default 250ms) capped at RejoinMaxBackoff (default
	// 4s), ±20% jitter. Plain NetRank ignores these.
	RejoinAttempts   int
	RejoinBackoff    time.Duration
	RejoinMaxBackoff time.Duration
}

// withNetDefaults fills zero fields with the documented defaults.
func (c NetConfig) withNetDefaults() NetConfig {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 8
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 100 * time.Millisecond
	}
	if c.DialMaxBackoff <= 0 {
		c.DialMaxBackoff = 2 * time.Second
	}
	if c.RendezvousTimeout <= 0 {
		c.RendezvousTimeout = 30 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.RejoinAttempts <= 0 {
		c.RejoinAttempts = 8
	}
	if c.RejoinBackoff <= 0 {
		c.RejoinBackoff = 250 * time.Millisecond
	}
	if c.RejoinMaxBackoff <= 0 {
		c.RejoinMaxBackoff = 4 * time.Second
	}
	return c
}

// NetRank joins the world described by cfg, runs fn as this process's rank
// (wrapped by wrap if non-nil, with World.RunWrapped semantics), and tears
// the endpoint down — gracefully after a normal return, abruptly after a
// panic so peers fail fast. A panic inside fn (including the typed
// *DeliveryError and *TransportError panics of the transport) is returned
// as a *RankPanic error, mirroring World.Run's re-raise.
func NetRank(cfg NetConfig, wrap func(Transport) Transport, fn func(Transport)) (st machine.Stats, err error) {
	cfg = cfg.withNetDefaults()
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return st, fmt.Errorf("comm: NetRank with rank %d of %d", cfg.Rank, cfg.Size)
	}
	if cfg.Coordinator == "" {
		return st, errors.New("comm: NetRank needs a coordinator address")
	}
	if cfg.Topology != nil && cfg.Topology.Size() != cfg.Size {
		return st, fmt.Errorf("comm: NetRank topology %s is for p=%d, world has P=%d",
			cfg.Topology.Name(), cfg.Topology.Size(), cfg.Size)
	}
	n, err := dialWorld(cfg)
	if err != nil {
		return st, fmt.Errorf("comm: rank %d join: %w", cfg.Rank, err)
	}
	defer func() {
		if e := recover(); e != nil {
			// Crash-safe teardown: no goodbye, close everything now. Peers
			// observe EOF and diagnose this rank within their next Recv.
			n.shutdown(false)
			err = &RankPanic{Rank: cfg.Rank, Value: e}
			return
		}
		n.shutdown(true)
	}()
	t := Transport(n)
	if wrap != nil {
		t = wrap(t)
	}
	func() {
		// Release decorator-held messages (e.g. a Faulty reorder hold) even
		// on panic, exactly as RunWrapped does for the goroutine backend.
		defer func() {
			defer func() { _ = recover() }() // a failed flush must not mask fn's panic
			flushChain(t)
		}()
		fn(t)
	}()
	st = n.stats
	return st, nil
}

// LaunchLoopback runs fn as a p-rank SPMD program over real loopback TCP
// sockets inside one process: a coordinator plus p NetRank endpoints, each
// on its own goroutine. It is the net backend's analogue of Launch, used by
// tests and for trying out the backend without spawning processes. tmpl
// supplies Params and any timeout overrides; Coordinator, Rank and Size are
// filled in. Returns every rank's stats ledger and a per-rank error slice
// (nil entries for clean ranks).
func LaunchLoopback(tmpl NetConfig, p int, wrap func(Transport) Transport, fn func(Transport)) (machine.WorldStats, []error) {
	ws := machine.WorldStats{Ranks: make([]machine.Stats, p)}
	errs := make([]error, p)
	co, err := StartCoordinator("127.0.0.1:0", p, tmpl.withNetDefaults().RendezvousTimeout)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return ws, errs
	}
	defer co.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := tmpl
			cfg.Coordinator = co.Addr()
			cfg.Rank, cfg.Size = rank, p
			ws.Ranks[rank], errs[rank] = NetRank(cfg, wrap, fn)
		}(i)
	}
	wg.Wait()
	if e := <-serveErr; e != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = fmt.Errorf("comm: rendezvous: %w", e)
			}
		}
	}
	return ws, errs
}

// NetRankElastic is NetRank with elastic recovery: when the world dies
// under fn — the run panics with a *DeliveryError because a peer vanished —
// the rank parks instead of failing, then rejoins through the rendezvous
// with the same rank identity and runs fn again from the top. fn must
// therefore be a restartable program (the pic layer restores its state from
// the latest complete checkpoint epoch on re-entry). The park-and-rejoin is
// the recovery barrier: every surviving rank observes the same failure
// cascade, abandons the dead world, and re-assembles at the coordinator,
// which must be running a multi-round ServeElastic loop.
//
// Rejoin attempts use the peer-dial retry policy (capped exponential
// backoff + jitter, cfg.Rejoin*) so recovery survives a slow-restarting
// coordinator or replacement rank. Non-delivery failures (protocol misuse,
// rank panics of fn's own) and an exhausted rejoin budget propagate as the
// usual *RankPanic.
func NetRankElastic(cfg NetConfig, wrap func(Transport) Transport, fn func(Transport)) (machine.Stats, error) {
	cfg = cfg.withNetDefaults()
	backoff := cfg.RejoinBackoff
	for attempt := 0; ; attempt++ {
		st, err := NetRank(cfg, wrap, fn)
		if err == nil {
			return st, nil
		}
		var rp *RankPanic
		if !errors.As(err, &rp) || AsDeliveryError(rp.Value) == nil {
			return st, err // not a dead-world failure: do not mask it
		}
		if attempt+1 >= cfg.RejoinAttempts {
			return st, err
		}
		time.Sleep(jitter(backoff))
		if backoff *= 2; backoff > cfg.RejoinMaxBackoff {
			backoff = cfg.RejoinMaxBackoff
		}
	}
}

// LaunchLoopbackElastic is LaunchLoopback with elastic recovery: the
// coordinator serves assembly rounds until every rank is done, and each
// rank runs under NetRankElastic, so a rank whose world collapses mid-run
// (e.g. a fault decorator panicking a *DeliveryError) rejoins and retries
// instead of failing the launch. Used by the recovery chaos tests.
func LaunchLoopbackElastic(tmpl NetConfig, p int, wrap func(Transport) Transport, fn func(Transport)) (machine.WorldStats, []error) {
	ws := machine.WorldStats{Ranks: make([]machine.Stats, p)}
	errs := make([]error, p)
	co, err := StartCoordinator("127.0.0.1:0", p, tmpl.withNetDefaults().RendezvousTimeout)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return ws, errs
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.ServeElastic() }()

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := tmpl
			cfg.Coordinator = co.Addr()
			cfg.Rank, cfg.Size = rank, p
			ws.Ranks[rank], errs[rank] = NetRankElastic(cfg, wrap, fn)
		}(i)
	}
	wg.Wait()
	co.Close()
	if e := <-serveErr; e != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = fmt.Errorf("comm: rendezvous: %w", e)
			}
		}
	}
	return ws, errs
}

// oobMsg is one Expose publication in flight, attributed to its origin rank
// so sparse worlds can circulate publications over the ring (the origin is
// then not the connection's peer).
type oobMsg struct {
	from int
	val  any
}

// netPeer is one live connection to a remote rank.
type netPeer struct {
	id   int
	conn net.Conn
	wmu  sync.Mutex // serialises frame writes (rank goroutine + heartbeats)

	inbox chan message // data frames, closed by the reader on exit
	oob   chan oobMsg  // Expose publications, closed with inbox

	// dead holds the first failure reason observed on this connection; nil
	// while the peer is healthy. clean marks a goodbye-announced departure.
	dead       atomic.Pointer[string]
	clean      atomic.Bool
	readerDone chan struct{}
}

// fail records the first failure reason; later reasons are ignored.
func (p *netPeer) fail(reason string) {
	r := reason
	p.dead.CompareAndSwap(nil, &r)
}

// failure returns the recorded reason, or a generic one.
func (p *netPeer) failure() string {
	if r := p.dead.Load(); r != nil {
		return *r
	}
	return "peer connection lost"
}

// netTransport is the per-process Transport endpoint over the TCP mesh.
// Like every Transport it is owned by one goroutine; the reader and
// heartbeat goroutines only touch the channels and atomics.
type netTransport struct {
	cfg  NetConfig
	rank int
	size int

	clock machine.Clock
	stats machine.Stats

	peers   []*netPeer // indexed by rank; own slot and non-topology ranks are nil
	pending [][]message

	// relay, when non-nil, receives every frameRelay and frameOOBFrom frame
	// read off this endpoint's connections instead of the default routing —
	// the hook through which a hierarchical gateway (hier.go) forwards
	// cross-host traffic to its in-process ranks. Set before the readers
	// start (dialWorldRelay), never after.
	relay func(*netFrame)

	closed  atomic.Bool
	closing chan struct{} // closed at shutdown; unblocks reader channel pushes
	stopHB  chan struct{}
	hbDone  chan struct{}
}

// Rank implements Transport.
func (n *netTransport) Rank() int { return n.rank }

// Size implements Transport.
func (n *netTransport) Size() int { return n.size }

// Clock implements Transport.
func (n *netTransport) Clock() machine.Clock { return n.clock }

// Stats implements Transport.
func (n *netTransport) Stats() *machine.Stats { return &n.stats }

// Params implements Transport.
func (n *netTransport) Params() machine.Params { return n.cfg.Params }

// Compute implements Transport.
func (n *netTransport) Compute(c int) {
	if c <= 0 {
		return
	}
	cost := n.cfg.Params.ComputeCost(c)
	n.clock.Advance(cost)
	n.stats.RecordCompute(cost)
}

// ComputeTime implements Transport.
func (n *netTransport) ComputeTime(t float64) {
	if t <= 0 {
		return
	}
	n.clock.Advance(t)
	n.stats.RecordCompute(t)
}

// SetPhase implements Transport.
func (n *netTransport) SetPhase(p machine.Phase) { n.stats.SetPhase(p) }

// Send implements Transport. The modelled charge is identical to the
// goroutine backend's; the frame carries the modelled size and post-send
// clock so the receiver's charge matches too. A dead peer or failed write
// raises a *DeliveryError; an unencodable body or structural misuse raises
// a *TransportError.
func (n *netTransport) Send(dst int, tag Tag, body any, nbytes int) {
	if n.closed.Load() {
		panic(&TransportError{Op: "send", Rank: n.rank, Peer: dst, Tag: tag, Err: ErrClosedWorld})
	}
	if dst < 0 || dst >= n.size {
		panic(&TransportError{Op: "send", Rank: n.rank, Peer: dst, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", dst, n.size)})
	}
	if dst == n.rank {
		// Self-sends bypass the network: no τ/μ charge, matching the model.
		n.deliverLocal(message{tag: tag, bytes: nbytes, sentAt: n.clock.Now(), body: body})
		return
	}
	if tp := n.cfg.Topology; tp != nil && !tp.Connected(n.rank, dst) {
		// No socket exists to this rank: the mesh was assembled sparse.
		panic(&TransportError{Op: "send", Rank: n.rank, Peer: dst, Tag: tag, Err: tp.errOutOf(n.rank, dst)})
	}
	cost := n.cfg.Params.MsgCost(nbytes)
	n.clock.Advance(cost)
	n.stats.RecordSend(nbytes, cost)
	f := netFrame{kind: frameData, tag: tag, nbytes: nbytes, sentAt: n.clock.Now(), body: body}
	if err := n.writePeer(dst, &f); err != nil {
		var ce *CodecError
		if errors.As(err, &ce) {
			// The body cannot travel this wire: a programming error, never
			// retried.
			panic(&TransportError{Op: "send", Rank: n.rank, Peer: dst, Tag: tag, Err: ce})
		}
		panic(&DeliveryError{
			Rank: n.rank, Peer: dst, Tag: tag, Phase: n.stats.CurrentPhase(),
			Reason: "send failed: " + err.Error(),
		})
	}
}

// writePeer encodes and writes one frame to dst, marking the peer dead on a
// write failure.
func (n *netTransport) writePeer(dst int, f *netFrame) error {
	p := n.peers[dst]
	if p == nil {
		return fmt.Errorf("no connection to rank %d", dst)
	}
	if r := p.dead.Load(); r != nil {
		return errors.New(*r)
	}
	err := writeFrame(p.conn, &p.wmu, n.cfg.WriteTimeout, f)
	if err != nil {
		var ce *CodecError
		if !errors.As(err, &ce) {
			p.fail("write failed: " + err.Error())
		}
	}
	return err
}

func (n *netTransport) deliverLocal(m message) {
	if n.pending == nil {
		n.pending = make([][]message, n.size)
	}
	n.pending[n.rank] = append(n.pending[n.rank], m)
}

// Recv implements Transport. A peer that died — abrupt EOF, heartbeat
// silence, clean goodbye while traffic was still owed — fails the call with
// a *DeliveryError within a bounded time instead of hanging.
func (n *netTransport) Recv(src int, tag Tag) (any, int) {
	if n.closed.Load() {
		panic(&TransportError{Op: "recv", Rank: n.rank, Peer: src, Tag: tag, Err: ErrClosedWorld})
	}
	if src < 0 || src >= n.size {
		panic(&TransportError{Op: "recv", Rank: n.rank, Peer: src, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", src, n.size)})
	}
	if n.pending == nil {
		n.pending = make([][]message, n.size)
	}
	q := n.pending[src]
	for i := range q {
		if q[i].tag == tag {
			m := q[i]
			n.pending[src] = append(q[:i], q[i+1:]...)
			return n.consume(src, m)
		}
	}
	if src == n.rank {
		panic(fmt.Sprintf("comm: rank %d self-recv tag %d with no matching self-send", n.rank, tag))
	}
	if tp := n.cfg.Topology; tp != nil && !tp.Connected(n.rank, src) {
		panic(&TransportError{Op: "recv", Rank: n.rank, Peer: src, Tag: tag, Err: tp.errOutOf(n.rank, src)})
	}
	p := n.peers[src]
	for {
		m := n.pullNet(p, tag)
		if m.tag == tag {
			return n.consume(src, m)
		}
		n.pending[src] = append(n.pending[src], m)
	}
}

// pullNet takes the next data message from p's reader, converting peer
// death into a *DeliveryError and a watchdog overrun into a diagnostic
// panic.
func (n *netTransport) pullNet(p *netPeer, tag Tag) message {
	deliveryPanic := func() {
		panic(&DeliveryError{
			Rank: n.rank, Peer: p.id, Tag: tag, Phase: n.stats.CurrentPhase(),
			Reason: p.failure(),
		})
	}
	if n.cfg.Watchdog <= 0 {
		m, ok := <-p.inbox
		if !ok {
			deliveryPanic()
		}
		return m
	}
	select {
	case m, ok := <-p.inbox:
		if !ok {
			deliveryPanic()
		}
		return m
	default:
	}
	timer := time.NewTimer(n.cfg.Watchdog)
	defer timer.Stop()
	select {
	case m, ok := <-p.inbox:
		if !ok {
			deliveryPanic()
		}
		return m
	case <-timer.C:
		panic(fmt.Sprintf("comm: deadlock watchdog fired after %v: rank %d blocked receiving tag %d from rank %d (tcp backend)",
			n.cfg.Watchdog, n.rank, tag, p.id))
	}
}

// consume charges the receive exactly like the goroutine backend: advance
// to the sender's post-send clock, then charge the transfer.
func (n *netTransport) consume(src int, m message) (any, int) {
	if src == n.rank {
		return m.body, m.bytes // local delivery is free
	}
	cost := n.cfg.Params.MsgCost(m.bytes)
	n.clock.AdvanceTo(m.sentAt)
	n.clock.Advance(cost)
	n.stats.RecordRecv(m.bytes, cost)
	return m.body, m.bytes
}

// Expose implements Transport: barrier, uncharged out-of-band exchange of
// the published values over dedicated oob frames, barrier — the same two
// charged barriers as the goroutine backend, so modelled time is identical.
//
// On a full mesh every rank writes its publication directly to every peer.
// A sparse world has no socket to non-adjacent ranks, so publications are
// circulated around the ±1 ring (always linked — the collective skeleton):
// each rank injects its own value, then forwards what arrives from its
// predecessor for p−1 rounds. The circulation is raw socket traffic, not
// modelled Sends, so Expose stays uncharged beyond its two barriers on
// every topology. A dead non-adjacent rank surfaces as a cascade: its
// neighbors' Expose fails, they crash, and the EOF propagates around the
// ring within the heartbeat bound.
func (n *netTransport) Expose(v any) []any {
	barrier(n, tagExpose) // all ranks inside Expose; previous round fully read
	out := make([]any, n.size)
	out[n.rank] = v
	if tp := n.cfg.Topology; tp != nil && !tp.IsFullMesh() {
		n.exposeRing(v, out)
	} else {
		f := netFrame{kind: frameOOB, body: v}
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			if err := n.writePeer(p.id, &f); err != nil {
				panic(&DeliveryError{
					Rank: n.rank, Peer: p.id, Tag: tagExpose, Phase: n.stats.CurrentPhase(),
					Reason: "expose publication failed: " + err.Error(),
				})
			}
		}
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			m, ok := <-p.oob
			if !ok {
				panic(&DeliveryError{
					Rank: n.rank, Peer: p.id, Tag: tagExpose, Phase: n.stats.CurrentPhase(),
					Reason: p.failure(),
				})
			}
			out[p.id] = m.val
		}
	}
	barrier(n, tagExpose) // all reads complete before anyone publishes again
	return out
}

// exposeRing circulates origin-attributed publications over the ±1 ring
// links: inject own value, then p−1 rounds of receive-from-prev (recording)
// and forward-to-next (except in the last round, when the arriving value's
// final stop is this rank).
func (n *netTransport) exposeRing(v any, out []any) {
	next := (n.rank + 1) % n.size
	prev := (n.rank - 1 + n.size) % n.size
	fail := func(peer int, reason string) {
		panic(&DeliveryError{
			Rank: n.rank, Peer: peer, Tag: tagExpose, Phase: n.stats.CurrentPhase(),
			Reason: reason,
		})
	}
	f := netFrame{kind: frameOOBFrom, rank: n.rank, body: v}
	if err := n.writePeer(next, &f); err != nil {
		fail(next, "expose publication failed: "+err.Error())
	}
	pp := n.peers[prev]
	seen := make([]bool, n.size)
	for i := 0; i < n.size-1; i++ {
		m, ok := <-pp.oob
		if !ok {
			fail(prev, pp.failure())
		}
		if m.from < 0 || m.from >= n.size || m.from == n.rank || seen[m.from] {
			fail(prev, fmt.Sprintf("protocol violation: duplicate or invalid expose origin %d", m.from))
		}
		seen[m.from] = true
		out[m.from] = m.val
		if i < n.size-2 {
			ff := netFrame{kind: frameOOBFrom, rank: m.from, body: m.val}
			if err := n.writePeer(next, &ff); err != nil {
				fail(next, "expose forward failed: "+err.Error())
			}
		}
	}
}

// readLoop demultiplexes one peer connection until goodbye, EOF, error or
// shutdown. It owns closing the inbox and oob channels; buffered messages
// stay receivable after close, so a goodbye never discards delivered data.
func (n *netTransport) readLoop(p *netPeer) {
	defer close(p.readerDone)
	defer close(p.oob)
	defer close(p.inbox)
	for {
		f, err := readFrame(p.conn, n.cfg.HeartbeatTimeout)
		if err != nil {
			p.fail(classifyReadError(err, n.cfg.HeartbeatTimeout))
			return
		}
		switch f.kind {
		case frameHeartbeat:
			// Liveness only; the successful read already reset the deadline.
		case frameGoodbye:
			p.clean.Store(true)
			p.fail("peer departed (clean goodbye, no more traffic will arrive)")
			return
		case frameData:
			select {
			case p.inbox <- message{tag: f.tag, bytes: f.nbytes, sentAt: f.sentAt, body: f.body}:
			case <-n.closing:
				return
			}
		case frameOOB:
			select {
			case p.oob <- oobMsg{from: p.id, val: f.body}:
			case <-n.closing:
				return
			}
		case frameOOBFrom:
			if n.relay != nil {
				// Hierarchical gateway: hand the attributed publication to
				// the in-process layer (hier.go) for distribution.
				n.relay(f)
				continue
			}
			select {
			case p.oob <- oobMsg{from: f.rank, val: f.body}:
			case <-n.closing:
				return
			}
		case frameRelay:
			if n.relay == nil {
				p.fail("protocol violation: relay frame on a non-gateway endpoint")
				return
			}
			n.relay(f)
		default:
			p.fail(fmt.Sprintf("protocol violation: unexpected frame kind 0x%02x", f.kind))
			return
		}
	}
}

// classifyReadError renders a read failure as a diagnostic reason.
func classifyReadError(err error, hbTimeout time.Duration) string {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return fmt.Sprintf("heartbeat timeout: no traffic for %v (peer wedged or partitioned)", hbTimeout)
	case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
		return "connection closed by peer without goodbye (peer crashed or was killed)"
	default:
		return "read failed: " + err.Error()
	}
}

// heartbeatLoop beacons liveness to every healthy peer so silent-but-alive
// phases (long local computation) are not mistaken for death.
func (n *netTransport) heartbeatLoop() {
	defer close(n.hbDone)
	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	hb := netFrame{kind: frameHeartbeat}
	for {
		select {
		case <-n.stopHB:
			return
		case <-tick.C:
			for _, p := range n.peers {
				if p == nil || p.dead.Load() != nil {
					continue
				}
				if err := writeFrame(p.conn, &p.wmu, n.cfg.WriteTimeout, &hb); err != nil {
					p.fail("heartbeat write failed: " + err.Error())
				}
			}
		}
	}
}

// shutdown tears the endpoint down. clean performs the goodbye + drain
// protocol; !clean (crash path) closes immediately so peers fail fast.
// Idempotent; after it returns no goroutine of this endpoint survives.
func (n *netTransport) shutdown(clean bool) {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	close(n.stopHB)
	<-n.hbDone
	if clean {
		bye := netFrame{kind: frameGoodbye}
		for _, p := range n.peers {
			if p == nil || p.dead.Load() != nil {
				continue
			}
			// Best effort: a peer that died mid-teardown is already
			// diagnosed elsewhere.
			_ = writeFrame(p.conn, &p.wmu, n.cfg.WriteTimeout, &bye)
		}
		// Drain: keep connections open until every peer has said goodbye
		// (its reader exits) or the drain budget runs out, so closing can
		// never turn a peer's in-flight frames into a TCP reset.
		deadline := time.NewTimer(n.cfg.DrainTimeout)
		defer deadline.Stop()
	drain:
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			select {
			case <-p.readerDone:
			case <-deadline.C:
				break drain
			}
		}
	}
	// Unblock any reader parked on a full channel, then close the sockets;
	// readers exit on the next read.
	close(n.closing)
	for _, p := range n.peers {
		if p != nil {
			_ = p.conn.Close()
		}
	}
	for _, p := range n.peers {
		if p != nil {
			<-p.readerDone
		}
	}
}

// dialWorld performs rendezvous and mesh establishment and returns a live
// endpoint with its reader and heartbeat goroutines running.
func dialWorld(cfg NetConfig) (*netTransport, error) { return dialWorldRelay(cfg, nil) }

// dialWorldRelay is dialWorld with the gateway relay hook installed before
// any reader goroutine starts, so a forwarded frame can never race the
// hook's installation.
func dialWorldRelay(cfg NetConfig, relay func(*netFrame)) (*netTransport, error) {
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("mesh listen on %q: %w", cfg.ListenAddr, err)
	}
	worldID, addrs, err := rendezvous(cfg, ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	conns, err := buildMesh(cfg, ln, worldID, addrs)
	ln.Close()
	if err != nil {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	var clock machine.Clock = machine.NewSimClock()
	if cfg.WallClock {
		clock = machine.NewWallClock()
	}
	n := &netTransport{
		cfg:     cfg,
		rank:    cfg.Rank,
		size:    cfg.Size,
		clock:   clock,
		peers:   make([]*netPeer, cfg.Size),
		relay:   relay,
		closing: make(chan struct{}),
		stopHB:  make(chan struct{}),
		hbDone:  make(chan struct{}),
	}
	for id, c := range conns {
		if c == nil {
			continue
		}
		p := &netPeer{
			id:   id,
			conn: c,
			// The oob buffer holds a full ring circulation (size
			// publications) so sparse-world forwarding never backpressures
			// the reader against the rank goroutine.
			inbox:      make(chan message, DefaultMailboxDepth),
			oob:        make(chan oobMsg, cfg.Size),
			readerDone: make(chan struct{}),
		}
		n.peers[id] = p
		go n.readLoop(p)
	}
	go n.heartbeatLoop()
	return n, nil
}

// PeerCount returns the number of live TCP connections this endpoint holds —
// the measured (not asserted) socket count the traffic gate records per
// topology.
func (n *netTransport) PeerCount() int {
	c := 0
	for _, p := range n.peers {
		if p != nil {
			c++
		}
	}
	return c
}

// SocketCount walks t's decorator chain looking for a connection-holding
// backend and returns its live connection count. ok is false on backends
// with no real sockets (the goroutine World).
func SocketCount(t Transport) (count int, ok bool) {
	for t != nil {
		if pc, isPC := t.(interface{ PeerCount() int }); isPC {
			return pc.PeerCount(), true
		}
		w, isW := t.(Wrapper)
		if !isW {
			return 0, false
		}
		t = w.Unwrap()
	}
	return 0, false
}

// rendezvous registers this rank with the coordinator and returns the world
// id and per-rank mesh address table.
func rendezvous(cfg NetConfig, listenAddr string) (uint64, []string, error) {
	conn, err := dialRetry(cfg, cfg.Coordinator)
	if err != nil {
		return 0, nil, fmt.Errorf("rendezvous dial %s: %w", cfg.Coordinator, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(cfg.RendezvousTimeout))
	hello := netFrame{kind: frameHello, rank: cfg.Rank, size: cfg.Size, addr: listenAddr,
		topo: topologyDigest(cfg.Topology)}
	var mu sync.Mutex
	if err := writeFrame(conn, &mu, cfg.RendezvousTimeout, &hello); err != nil {
		return 0, nil, fmt.Errorf("rendezvous hello: %w", err)
	}
	f, err := readFrame(conn, cfg.RendezvousTimeout)
	if err != nil {
		return 0, nil, fmt.Errorf("rendezvous reply: %w", err)
	}
	switch f.kind {
	case frameWelcome:
		if len(f.addrs) != cfg.Size {
			return 0, nil, fmt.Errorf("rendezvous table has %d ranks, want %d", len(f.addrs), cfg.Size)
		}
		return f.worldID, f.addrs, nil
	case frameReject:
		return 0, nil, fmt.Errorf("rendezvous rejected: %s", f.reason)
	}
	return 0, nil, fmt.Errorf("rendezvous reply kind 0x%02x", f.kind)
}

// buildMesh establishes the pairwise connections: dial every lower-ranked
// topology peer, accept from every higher-ranked one, each verified by the
// peer handshake. On a full mesh (nil topology) that is every other rank —
// O(P²) sockets world-wide; a sparse topology assembles only its link set,
// O(P·k). Returns per-rank connections (own slot and non-peers nil).
func buildMesh(cfg NetConfig, ln net.Listener, worldID uint64, addrs []string) ([]net.Conn, error) {
	conns := make([]net.Conn, cfg.Size)
	expect := 0 // inbound connections from higher-ranked peers
	var dials []int
	if tp := cfg.Topology; tp != nil {
		for _, q := range tp.Peers(cfg.Rank) {
			if q < cfg.Rank {
				dials = append(dials, q)
			} else {
				expect++
			}
		}
	} else {
		for i := 0; i < cfg.Rank; i++ {
			dials = append(dials, i)
		}
		expect = cfg.Size - 1 - cfg.Rank
	}

	type accepted struct {
		rank int
		conn net.Conn
	}
	acceptCh := make(chan accepted, expect)
	acceptErr := make(chan error, 1)
	if expect > 0 {
		go func() {
			got := 0
			for got < expect {
				if tl, ok := ln.(*net.TCPListener); ok {
					_ = tl.SetDeadline(time.Now().Add(cfg.RendezvousTimeout))
				}
				c, err := ln.Accept()
				if err != nil {
					acceptErr <- fmt.Errorf("mesh accept (%d/%d joined): %w", got, expect, err)
					return
				}
				from, err := acceptPeer(cfg, c, worldID, conns)
				if err != nil {
					// A stray or invalid connection was rejected and closed;
					// keep waiting for the legitimate peers.
					continue
				}
				acceptCh <- accepted{from, c}
				got++
			}
		}()
	}

	for _, i := range dials {
		c, err := dialPeer(cfg, worldID, i, addrs[i])
		if err != nil {
			if tp := cfg.Topology; tp != nil {
				// Name the topology and this rank's full peer set, so a
				// misconfigured sparse world diagnoses itself at the launcher.
				err = fmt.Errorf("%w (topology %s, peers of rank %d: %v)",
					err, tp.Name(), cfg.Rank, tp.Peers(cfg.Rank))
			}
			return conns, err
		}
		conns[i] = c
	}
	for got := 0; got < expect; got++ {
		select {
		case a := <-acceptCh:
			conns[a.rank] = a.conn
		case err := <-acceptErr:
			return conns, err
		}
	}
	return conns, nil
}

// dialPeer connects to rank peer and performs the identity handshake.
func dialPeer(cfg NetConfig, worldID uint64, peer int, addr string) (net.Conn, error) {
	c, err := dialRetry(cfg, addr)
	if err != nil {
		return nil, fmt.Errorf("mesh dial rank %d at %s: %w", peer, addr, err)
	}
	_ = c.SetDeadline(time.Now().Add(cfg.RendezvousTimeout))
	var mu sync.Mutex
	hello := netFrame{kind: framePeerHello, worldID: worldID, rank: cfg.Rank, peer: peer}
	if err := writeFrame(c, &mu, cfg.RendezvousTimeout, &hello); err != nil {
		c.Close()
		return nil, fmt.Errorf("mesh handshake with rank %d: %w", peer, err)
	}
	f, err := readFrame(c, cfg.RendezvousTimeout)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("mesh handshake reply from rank %d: %w", peer, err)
	}
	if f.kind == frameReject {
		c.Close()
		return nil, fmt.Errorf("mesh handshake rejected by rank %d: %s", peer, f.reason)
	}
	if f.kind != framePeerOK {
		c.Close()
		return nil, fmt.Errorf("mesh handshake reply kind 0x%02x from rank %d", f.kind, peer)
	}
	_ = c.SetDeadline(time.Time{})
	return c, nil
}

// acceptPeer verifies one inbound mesh connection: world id, addressed-to
// rank, dialing rank in range and not yet connected. Invalid connections
// are answered with a reject frame and closed.
func acceptPeer(cfg NetConfig, c net.Conn, worldID uint64, conns []net.Conn) (int, error) {
	_ = c.SetDeadline(time.Now().Add(cfg.RendezvousTimeout))
	var mu sync.Mutex
	reject := func(reason string) (int, error) {
		f := netFrame{kind: frameReject, reason: reason}
		_ = writeFrame(c, &mu, cfg.RendezvousTimeout, &f)
		c.Close()
		return 0, errors.New(reason)
	}
	f, err := readFrame(c, cfg.RendezvousTimeout)
	if err != nil {
		c.Close()
		return 0, err
	}
	if f.kind != framePeerHello {
		return reject(fmt.Sprintf("expected peer hello, got frame kind 0x%02x", f.kind))
	}
	if f.worldID != worldID {
		return reject("world id mismatch (connection from a different job?)")
	}
	if f.peer != cfg.Rank {
		return reject(fmt.Sprintf("connection addressed to rank %d, this is rank %d", f.peer, cfg.Rank))
	}
	if f.rank <= cfg.Rank || f.rank >= cfg.Size {
		return reject(fmt.Sprintf("unexpected dialing rank %d (accepting ranks %d..%d)", f.rank, cfg.Rank+1, cfg.Size-1))
	}
	if tp := cfg.Topology; tp != nil && !tp.Connected(cfg.Rank, f.rank) {
		return reject(tp.errOutOf(f.rank, cfg.Rank).Error())
	}
	if conns[f.rank] != nil {
		return reject(fmt.Sprintf("rank %d is already connected (duplicate identity)", f.rank))
	}
	ok := netFrame{kind: framePeerOK}
	if err := writeFrame(c, &mu, cfg.RendezvousTimeout, &ok); err != nil {
		c.Close()
		return 0, err
	}
	_ = c.SetDeadline(time.Time{})
	return f.rank, nil
}

// dialRetry dials addr with capped exponential backoff and ±20% jitter.
func dialRetry(cfg NetConfig, addr string) (net.Conn, error) {
	var lastErr error
	backoff := cfg.DialBackoff
	for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > cfg.DialMaxBackoff {
				backoff = cfg.DialMaxBackoff
			}
		}
		c, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%d attempts: %w", cfg.DialAttempts, lastErr)
}

// jitter spreads d by ±20% so restarting ranks do not dial in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	spread := int64(d) / 5
	return d - time.Duration(spread) + time.Duration(rand.Int64N(2*spread+1))
}

// writeFrame encodes f and writes it (length-prefixed, one Write call)
// under the connection's write lock with a bounded deadline.
func writeFrame(c net.Conn, mu *sync.Mutex, timeout time.Duration, f *netFrame) error {
	buf := wire.GetBytes(256)
	buf = append(buf, 0, 0, 0, 0) // length prefix placeholder
	buf, err := appendFrame(buf, f)
	if err != nil {
		wire.PutBytes(buf)
		return err
	}
	n := len(buf) - 4
	if n > maxFrameBytes {
		wire.PutBytes(buf)
		return &CodecError{Op: "encode", Msg: fmt.Sprintf("frame of %d bytes exceeds limit", n)}
	}
	buf[0] = byte(n)
	buf[1] = byte(n >> 8)
	buf[2] = byte(n >> 16)
	buf[3] = byte(n >> 24)
	mu.Lock()
	if timeout > 0 {
		_ = c.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, werr := c.Write(buf)
	mu.Unlock()
	wire.PutBytes(buf)
	return werr
}

// readFrame reads one length-prefixed frame with a bounded deadline and
// decodes it. The scratch buffer is pooled; decoded values never alias it.
func readFrame(c net.Conn, timeout time.Duration) (*netFrame, error) {
	if timeout > 0 {
		_ = c.SetReadDeadline(time.Now().Add(timeout))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	length := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
	if length < 0 || length > maxFrameBytes {
		return nil, decErr("frame length %d out of range", length)
	}
	buf := wire.GetBytes(length)[:length]
	if _, err := io.ReadFull(c, buf); err != nil {
		wire.PutBytes(buf)
		return nil, err
	}
	f, err := decodeFrame(buf)
	wire.PutBytes(buf)
	return f, err
}
