package comm

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame enforces the codec's safety contract on arbitrary byte
// streams: decodeFrame either returns a typed *CodecError or produces a
// frame that re-encodes canonically — decode(encode(decode(b))) is a fixed
// point, bit for bit (which also makes the property NaN-safe: float
// payloads are compared as encoded bits, never with ==). It must never
// panic and never silently truncate (trailing bytes are a decode error, so
// a successful decode consumed exactly the input).
//
// The committed seed corpus lives in testdata/fuzz/FuzzDecodeFrame; the
// f.Add seeds below cover every frame kind and body kind so coverage starts
// from the full grammar.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr *netFrame) {
		b, err := appendFrame(nil, fr)
		if err != nil {
			f.Fatalf("seed frame %+v: %v", fr, err)
		}
		f.Add(b)
	}
	seed(&netFrame{kind: frameHeartbeat})
	seed(&netFrame{kind: frameGoodbye})
	seed(&netFrame{kind: framePeerOK})
	seed(&netFrame{kind: frameHello, worldID: 7, rank: 1, size: 4, addr: "127.0.0.1:9"})
	seed(&netFrame{kind: frameWelcome, worldID: 7, addrs: []string{"a:1", "b:2"}})
	seed(&netFrame{kind: framePeerHello, worldID: 7, rank: 3, peer: 0})
	seed(&netFrame{kind: frameReject, reason: "duplicate identity"})
	seed(&netFrame{kind: frameData, tag: TagUser, nbytes: 16, sentAt: 0.25, body: nil})
	seed(&netFrame{kind: frameData, tag: -1, body: float64(1.5)})
	seed(&netFrame{kind: frameData, body: int(-3)})
	seed(&netFrame{kind: frameData, body: uint64(9)})
	seed(&netFrame{kind: frameData, body: true})
	seed(&netFrame{kind: frameData, body: "hello"})
	seed(&netFrame{kind: frameData, body: []float64{1, 2, 3}})
	seed(&netFrame{kind: frameData, body: []int{4, 5}})
	seed(&netFrame{kind: frameOOB, body: relEnvelope{seq: 2, body: []float64{8}}})
	seed(&netFrame{kind: frameData,
		body: faultEnvelope{seq: 1, drops: 1, dup: true, delay: 1e-3,
			body: relEnvelope{seq: 2, body: []int{6}}}})
	f.Add([]byte{})
	f.Add([]byte{NetCodecVersion, 0x7f})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, err := decodeFrame(in) // must not panic, whatever in is
		if err != nil {
			var ce *CodecError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is %T (%v), want *CodecError", err, err)
			}
			if ce.Msg == "" {
				t.Fatalf("codec error with empty diagnostic: %+v", ce)
			}
			return
		}
		// A decoded frame must re-encode, and its encoding must be a fixed
		// point: decode → encode → decode → encode yields identical bytes.
		enc1, err := appendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		fr2, err := decodeFrame(enc1)
		if err != nil {
			t.Fatalf("canonical encoding of %+v does not decode: %v", fr, err)
		}
		enc2, err := appendFrame(nil, fr2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}
