package comm

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"picpar/internal/machine"
)

// encodeFrame is the test-side convenience over appendFrame.
func encodeFrame(t *testing.T, f *netFrame) []byte {
	t.Helper()
	b, err := appendFrame(nil, f)
	if err != nil {
		t.Fatalf("encode %+v: %v", f, err)
	}
	return b
}

// roundTrip encodes f, decodes the bytes, and returns the decoded frame.
func roundTrip(t *testing.T, f *netFrame) *netFrame {
	t.Helper()
	got, err := decodeFrame(encodeFrame(t, f))
	if err != nil {
		t.Fatalf("decode of freshly encoded %+v: %v", f, err)
	}
	return got
}

// TestCodecRoundTripBodies: every body type crossing Send — and every
// decorator envelope nesting the chaos stack produces — survives the wire
// bit-exactly.
func TestCodecRoundTripBodies(t *testing.T) {
	var st machine.Stats
	st.SetPhase(machine.PhasePush)
	st.RecordCompute(1.25)
	st.SetPhase(machine.PhaseScatter)
	st.RecordSend(640, 0.001)
	bodies := []any{
		nil,
		float64(3.14159),
		math.Inf(-1),
		int(-42),
		uint64(1 << 63),
		true,
		false,
		"payload-from-0",
		"",
		[]float64{},
		[]float64{1.5, -2.5, 0, math.MaxFloat64},
		[]int{},
		[]int{-1, 0, 7 << 40},
		relEnvelope{seq: 9, body: []float64{1, 2}},
		faultEnvelope{seq: 3, drops: 2, dup: true, delay: 1e-3,
			body: relEnvelope{seq: 9, body: []int{5}}},
		st.Snapshot(),
	}
	for _, body := range bodies {
		f := &netFrame{kind: frameData, tag: TagUser + 3, nbytes: 640, sentAt: 0.125, body: body}
		got := roundTrip(t, f)
		if got.tag != f.tag || got.nbytes != f.nbytes || got.sentAt != f.sentAt {
			t.Errorf("%T: header fields corrupted: %+v", body, got)
		}
		if !reflect.DeepEqual(got.body, f.body) {
			t.Errorf("body %#v round-tripped as %#v", f.body, got.body)
		}
	}
}

// TestCodecRoundTripControlFrames: the lifecycle frames carry their
// handshake fields intact.
func TestCodecRoundTripControlFrames(t *testing.T) {
	frames := []*netFrame{
		{kind: frameHeartbeat},
		{kind: frameGoodbye},
		{kind: framePeerOK},
		{kind: frameHello, worldID: 0xDEADBEEF, rank: 3, size: 8, addr: "127.0.0.1:4242"},
		{kind: frameWelcome, worldID: 1, size: 2, addrs: []string{"a:1", "b:2"}},
		{kind: framePeerHello, worldID: 7, rank: 5, peer: 2},
		{kind: frameReject, reason: "world size mismatch"},
		{kind: frameOOB, body: float64(2.5)},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		// Welcome does not carry size on the wire (the table length is the
		// size); normalise before comparing.
		if f.kind == frameWelcome {
			f = &netFrame{kind: f.kind, worldID: f.worldID, addrs: f.addrs}
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame kind 0x%02x round-tripped as %+v, want %+v", f.kind, got, f)
		}
	}
}

// TestCodecRejectsMalformed: hostile or corrupted inputs fail with a typed
// *CodecError carrying a reason — never a panic, never a silent success.
func TestCodecRejectsMalformed(t *testing.T) {
	valid := encodeFrame(t, &netFrame{kind: frameData, tag: 1, body: []float64{1, 2}})
	cases := map[string][]byte{
		"empty":              {},
		"one byte":           {NetCodecVersion},
		"version mismatch":   {NetCodecVersion + 1, frameHeartbeat},
		"unknown frame kind": {NetCodecVersion, 0x7f},
		"trailing bytes":     append(append([]byte{}, valid...), 0),
		"truncated header":   valid[:5],
		"truncated payload":  valid[:len(valid)-3],
		"unknown body kind": append(encodeFrame(t,
			&netFrame{kind: frameData})[:26], 0x7f),
		"hostile float64s length": append(encodeFrame(t,
			&netFrame{kind: frameData})[:26],
			kFloat64s, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f),
		"bad bool byte": append(encodeFrame(t,
			&netFrame{kind: frameData})[:26], kBool, 2),
	}
	for name, in := range cases {
		f, err := decodeFrame(in)
		if err == nil {
			t.Errorf("%s: decoded to %+v, want *CodecError", name, f)
			continue
		}
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T (%v), want *CodecError", name, err, err)
			continue
		}
		if ce.Msg == "" || ce.Op != "decode" {
			t.Errorf("%s: undiagnostic codec error %+v", name, ce)
		}
	}
}

// TestCodecEnvelopeDepthBounded: nesting beyond the legitimate decorator
// stack is refused on both sides — encode (a wrapping bug) and decode (a
// hostile byte stream inducing recursion).
func TestCodecEnvelopeDepthBounded(t *testing.T) {
	body := any("x")
	for i := 0; i < maxEnvelopeDepth+2; i++ {
		body = relEnvelope{seq: uint64(i), body: body}
	}
	if _, err := appendFrame(nil, &netFrame{kind: frameData, body: body}); err == nil {
		t.Error("encode accepted envelope nesting beyond the cap")
	}
	// Hand-build the hostile equivalent: header + (kRelEnv, seq) repeated.
	raw := encodeFrame(t, &netFrame{kind: frameData})[:26]
	for i := 0; i < maxEnvelopeDepth+2; i++ {
		raw = append(raw, kRelEnv)
		raw = appendU64(raw, 0)
	}
	raw = append(raw, kNil)
	if _, err := decodeFrame(raw); err == nil {
		t.Error("decode accepted envelope nesting beyond the cap")
	} else if !strings.Contains(err.Error(), "nesting") {
		t.Errorf("depth rejection reason missing: %v", err)
	}
}

// TestCodecUnsupportedBodyType: an unencodable body is an encode-side
// *CodecError (the transport raises it as a TransportError — programming
// mistake, not network condition).
func TestCodecUnsupportedBodyType(t *testing.T) {
	type custom struct{ X int }
	_, err := appendFrame(nil, &netFrame{kind: frameData, body: custom{1}})
	var ce *CodecError
	if !errors.As(err, &ce) || ce.Op != "encode" {
		t.Fatalf("error %v, want an encode *CodecError", err)
	}
	if !strings.Contains(ce.Msg, "custom") {
		t.Errorf("encode error does not name the offending type: %v", ce)
	}
}
