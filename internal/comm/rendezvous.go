// The rendezvous coordinator: the single well-known address a TCP world
// starts from. Every rank dials it, announces its identity and mesh listen
// address, and receives the full membership table plus a fresh random world
// id that the mesh handshakes verify, so connections from a different job
// (or a stale restart) can never be spliced into this world.
//
// The coordinator is deliberately dumb: it never carries data traffic and
// exits once the table is broadcast. Robustness obligations: reject
// malformed registrations (bad rank, wrong world size, duplicate identity)
// with a reason the rank can report, and fail loudly — naming the missing
// ranks — when the world does not assemble within the timeout.

package comm

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Coordinator is the rendezvous service for one world launch.
type Coordinator struct {
	ln      net.Listener
	size    int
	timeout time.Duration
	worldID uint64

	// topo pins the topology digest of the current assembly round: the first
	// registration sets it, later ones must agree. A world half-assembled
	// under neighbor-sparse and half under full-mesh would deadlock against
	// sockets that will never be dialed; mismatches are rejected here with
	// both digests named instead.
	topo       uint64
	topoPinned bool

	closeOnce sync.Once
}

// StartCoordinator binds the rendezvous listener for a world of p ranks.
// timeout bounds the whole assembly (zero takes the NetConfig default).
// Serve must be called to actually assemble the world.
func StartCoordinator(addr string, p int, timeout time.Duration) (*Coordinator, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: coordinator for world of %d ranks", p)
	}
	if timeout <= 0 {
		timeout = NetConfig{}.withNetDefaults().RendezvousTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: coordinator listen on %q: %w", addr, err)
	}
	var idb [8]byte
	if _, err := crand.Read(idb[:]); err != nil {
		ln.Close()
		return nil, fmt.Errorf("comm: coordinator world id: %w", err)
	}
	return &Coordinator{
		ln:      ln,
		size:    p,
		timeout: timeout,
		worldID: binary.LittleEndian.Uint64(idb[:]),
	}, nil
}

// Addr returns the address ranks must be pointed at (NetConfig.Coordinator).
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close releases the listener. Safe to call concurrently with Serve (it
// aborts a pending assembly) and after it.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() { co.ln.Close() })
}

// Serve assembles the world: it accepts registrations until every rank has
// reported, then broadcasts the membership table and returns nil. Invalid
// registrations are answered with a reject frame and do not poison the
// assembly. If the world is incomplete when the timeout passes, Serve
// returns an error naming the missing ranks.
func (co *Coordinator) Serve() error {
	assembled, err := co.serveRound(false)
	if assembled {
		// Stragglers dialing after assembly (duplicate identities that lost
		// the race, restarted ranks, crossed jobs) get an explicit rejection
		// instead of waiting out their timeout against a silent socket.
		go co.rejectStragglers()
	}
	return err
}

// ServeElastic assembles worlds repeatedly until the listener is closed:
// the elastic-recovery mode. After the first world launches, the
// coordinator stays parked; when ranks return to the rendezvous (their
// world died and every survivor plus the relaunched replacement
// re-registers), a new assembly round runs with a fresh world id, so
// stale connections from the dead world can never splice into the new
// one. Each round's timeout starts at its first registration — between
// rounds the coordinator waits indefinitely. Returns nil when Close stops
// the listener; an incomplete round (a rank never came back) returns the
// error naming the missing ranks.
func (co *Coordinator) ServeElastic() error {
	for round := 0; ; round++ {
		if round > 0 {
			var idb [8]byte
			if _, err := crand.Read(idb[:]); err != nil {
				return fmt.Errorf("comm: coordinator world id: %w", err)
			}
			co.worldID = binary.LittleEndian.Uint64(idb[:])
		}
		assembled, err := co.serveRound(round > 0)
		if !assembled {
			if errors.Is(err, net.ErrClosed) {
				return nil // Close() ended the service
			}
			return err
		}
		// A failed welcome write leaves that rank out of the new world; its
		// absence surfaces as a delivery failure and drives the next round.
	}
}

// serveRound runs one assembly: accept registrations until every rank has
// reported, then broadcast the membership table. With waitFirst the accept
// deadline is armed only once the round's first registration arrives, so a
// parked coordinator waits indefinitely for the next recovery. Returns
// whether the world assembled (the welcome may still have failed for some
// rank, reported in err).
func (co *Coordinator) serveRound(waitFirst bool) (bool, error) {
	var deadline time.Time
	if !waitFirst {
		deadline = time.Now().Add(co.timeout)
	}
	co.topoPinned = false
	addrs := make([]string, co.size)
	conns := make([]net.Conn, co.size)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	registered := 0
	for registered < co.size {
		if tl, ok := co.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline) // zero deadline blocks indefinitely
		}
		c, err := co.ln.Accept()
		if err != nil {
			return false, fmt.Errorf("comm: rendezvous incomplete: %w (missing ranks: %s)",
				err, missingRanks(conns))
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(co.timeout)
		}
		rank, addr, err := co.register(c, conns)
		if err != nil {
			// The offender was told why and closed; keep assembling.
			continue
		}
		conns[rank] = c
		addrs[rank] = addr
		registered++
	}
	welcome := netFrame{kind: frameWelcome, worldID: co.worldID, size: co.size, addrs: addrs}
	var firstErr error
	for rank, c := range conns {
		var mu sync.Mutex
		if err := writeFrame(c, &mu, co.timeout, &welcome); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("comm: rendezvous welcome to rank %d: %w", rank, err)
		}
	}
	return true, firstErr
}

// rejectStragglers answers every post-assembly registration with a reject
// frame until the listener is closed.
func (co *Coordinator) rejectStragglers() {
	for {
		if tl, ok := co.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Time{})
		}
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func(c net.Conn) {
			defer c.Close()
			_ = c.SetDeadline(time.Now().Add(2 * time.Second))
			if _, err := readFrame(c, 2*time.Second); err != nil {
				return
			}
			var mu sync.Mutex
			f := netFrame{kind: frameReject, reason: "world already assembled (late or duplicate registration)"}
			_ = writeFrame(c, &mu, 2*time.Second, &f)
		}(c)
	}
}

// register validates one inbound registration. Invalid ones get a reject
// frame with the reason and are closed.
func (co *Coordinator) register(c net.Conn, conns []net.Conn) (int, string, error) {
	_ = c.SetDeadline(time.Now().Add(co.timeout))
	var mu sync.Mutex
	reject := func(reason string) (int, string, error) {
		f := netFrame{kind: frameReject, reason: reason}
		_ = writeFrame(c, &mu, co.timeout, &f)
		c.Close()
		return 0, "", fmt.Errorf("comm: rendezvous rejected registration: %s", reason)
	}
	f, err := readFrame(c, co.timeout)
	if err != nil {
		c.Close()
		return 0, "", fmt.Errorf("comm: rendezvous registration read: %w", err)
	}
	if f.kind != frameHello {
		return reject(fmt.Sprintf("expected hello, got frame kind 0x%02x", f.kind))
	}
	if f.size != co.size {
		return reject(fmt.Sprintf("world size mismatch: rank built for P=%d, coordinator assembling P=%d", f.size, co.size))
	}
	if f.rank < 0 || f.rank >= co.size {
		return reject(fmt.Sprintf("invalid rank %d (world has ranks 0..%d)", f.rank, co.size-1))
	}
	if conns[f.rank] != nil {
		return reject(fmt.Sprintf("rank %d already registered (duplicate identity)", f.rank))
	}
	if f.addr == "" {
		return reject(fmt.Sprintf("rank %d registered with no mesh address", f.rank))
	}
	if !co.topoPinned {
		co.topo, co.topoPinned = f.topo, true
	} else if f.topo != co.topo {
		return reject(fmt.Sprintf("topology mismatch: rank %d assembled with topology digest %016x, world pinned to %016x",
			f.rank, f.topo, co.topo))
	}
	return f.rank, f.addr, nil
}

// missingRanks renders the not-yet-registered ranks for the timeout error.
func missingRanks(conns []net.Conn) string {
	var missing []int
	for i, c := range conns {
		if c == nil {
			missing = append(missing, i)
		}
	}
	sort.Ints(missing)
	parts := make([]string, len(missing))
	for i, r := range missing {
		parts[i] = fmt.Sprint(r)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
