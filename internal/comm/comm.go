// Package comm is a hand-rolled message-passing substrate: an SPMD runtime
// in which each rank of a distributed-memory machine runs as a goroutine and
// all interaction happens through explicit messages. It plays the role CMMD
// played on the CM-5 in the original paper.
//
// Point-to-point sends and receives are the only primitive; every collective
// (barrier, broadcast, reduce, allreduce, allgather/"global concatenate",
// all-to-many exchange) is built from them, so the τ and μ terms of the
// two-level cost model accumulate exactly as the published complexity
// analysis predicts.
//
// Simulated time: the sender charges τ + n·μ to its clock when a message of
// n bytes is posted; the receiver charges τ + n·μ and additionally advances
// to at least the sender's post-send clock, making message consumption
// causal. Execution time of a region is the maximum clock advance over
// ranks.
package comm

import (
	"fmt"
	"sync"

	"picpar/internal/machine"
)

// Tag labels a message so that mismatched protocols fail loudly instead of
// silently mispairing messages.
type Tag int

// Well-known tags used by the collectives; application code should use tags
// >= TagUser.
const (
	tagBarrier Tag = -(iota + 1)
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagAlltoMany
	tagScan
)

// TagUser is the first tag value free for application use.
const TagUser Tag = 0

type message struct {
	tag    Tag
	bytes  int
	sentAt float64 // sender's simulated clock after the send completed
	body   any
}

// World is a set of P ranks plus their mailboxes. Create one with NewWorld
// and execute SPMD programs with Run.
type World struct {
	P      int
	Params machine.Params

	// boxes[dst*P+src] is the FIFO channel carrying messages src→dst.
	boxes []chan message
	// scratch is the out-of-band publication area used by Expose.
	scratch []any
}

// DefaultMailboxDepth is the per-channel buffering. Deep enough that
// typical phase protocols never block on buffer space, small enough to
// surface deadlocks quickly in tests.
const DefaultMailboxDepth = 4096

// NewWorld creates a world of p ranks with the given machine parameters.
func NewWorld(p int, params machine.Params) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: NewWorld with p=%d", p))
	}
	w := &World{P: p, Params: params}
	w.scratch = make([]any, p)
	w.boxes = make([]chan message, p*p)
	for i := range w.boxes {
		w.boxes[i] = make(chan message, DefaultMailboxDepth)
	}
	return w
}

// Run executes fn on every rank concurrently and returns the per-rank stats
// ledgers once all ranks have returned. A panic on any rank is re-raised on
// the caller after all other ranks finish or block permanently; the runtime
// deadlock detector then identifies stuck protocols in tests.
func (w *World) Run(fn func(r *Rank)) machine.WorldStats {
	ranks := make([]*Rank, w.P)
	for i := 0; i < w.P; i++ {
		ranks[i] = &Rank{ID: i, P: w.P, world: w}
	}
	var wg sync.WaitGroup
	panics := make(chan any, w.P)
	for i := 0; i < w.P; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics <- fmt.Sprintf("rank %d: %v", r.ID, e)
				}
			}()
			fn(r)
		}(ranks[i])
	}
	wg.Wait()
	select {
	case e := <-panics:
		panic(e)
	default:
	}
	ws := machine.WorldStats{Ranks: make([]machine.Stats, w.P)}
	for i, r := range ranks {
		ws.Ranks[i] = r.Stats
	}
	return ws
}

// Rank is the per-processor handle passed to SPMD programs. It is owned by
// one goroutine and must not be shared.
type Rank struct {
	ID int // this rank's id in [0, P)
	P  int // number of ranks

	Clock machine.Clock
	Stats machine.Stats

	world *World
	// pending holds messages pulled off a mailbox while looking for a
	// different tag; indexed by source rank.
	pending [][]message
}

// Compute charges n units of local computation (n·δ) to the clock and the
// current phase.
func (r *Rank) Compute(n int) {
	if n <= 0 {
		return
	}
	c := r.world.Params.ComputeCost(n)
	r.Clock.Advance(c)
	r.Stats.RecordCompute(c)
}

// ComputeTime charges t simulated seconds of local computation directly.
func (r *Rank) ComputeTime(t float64) {
	if t <= 0 {
		return
	}
	r.Clock.Advance(t)
	r.Stats.RecordCompute(t)
}

// SetPhase selects the accounting phase for subsequent operations.
func (r *Rank) SetPhase(p machine.Phase) { r.Stats.SetPhase(p) }

// Send posts a message of nbytes modelled bytes to dst. The body may be any
// value; ownership transfers to the receiver (the sender must not mutate it
// afterwards — the substrate does not copy).
func (r *Rank) Send(dst int, tag Tag, body any, nbytes int) {
	if dst < 0 || dst >= r.P {
		panic(fmt.Sprintf("comm: send to invalid rank %d (P=%d)", dst, r.P))
	}
	if dst == r.ID {
		// Self-sends bypass the network: no τ/μ charge, matching the
		// model where local data movement is part of computation.
		r.deliverLocal(message{tag: tag, bytes: nbytes, sentAt: r.Clock.Now(), body: body})
		return
	}
	cost := r.world.Params.MsgCost(nbytes)
	r.Clock.Advance(cost)
	r.Stats.RecordSend(nbytes, cost)
	r.world.boxes[dst*r.P+r.ID] <- message{tag: tag, bytes: nbytes, sentAt: r.Clock.Now(), body: body}
}

func (r *Rank) deliverLocal(m message) {
	if r.pending == nil {
		r.pending = make([][]message, r.P)
	}
	r.pending[r.ID] = append(r.pending[r.ID], m)
}

// Recv blocks until a message with the given tag arrives from src and
// returns its body. Messages from src with other tags are queued for later
// Recv calls, preserving per-(src,tag) FIFO order.
func (r *Rank) Recv(src int, tag Tag) any {
	if src < 0 || src >= r.P {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (P=%d)", src, r.P))
	}
	if r.pending == nil {
		r.pending = make([][]message, r.P)
	}
	// Check messages already pulled off the wire.
	q := r.pending[src]
	for i := range q {
		if q[i].tag == tag {
			m := q[i]
			r.pending[src] = append(q[:i], q[i+1:]...)
			return r.consume(src, m)
		}
	}
	if src == r.ID {
		panic(fmt.Sprintf("comm: rank %d self-recv tag %d with no matching self-send", r.ID, tag))
	}
	box := r.world.boxes[r.ID*r.P+src]
	for {
		m := <-box
		if m.tag == tag {
			return r.consume(src, m)
		}
		r.pending[src] = append(r.pending[src], m)
	}
}

func (r *Rank) consume(src int, m message) any {
	if src == r.ID {
		return m.body // local delivery is free
	}
	cost := r.world.Params.MsgCost(m.bytes)
	r.Clock.AdvanceTo(m.sentAt)
	r.Clock.Advance(cost)
	r.Stats.RecordRecv(m.bytes, cost)
	return m.body
}

// RecvFloat64s receives a []float64 message.
func (r *Rank) RecvFloat64s(src int, tag Tag) []float64 {
	return r.Recv(src, tag).([]float64)
}

// RecvInts receives an []int message.
func (r *Rank) RecvInts(src int, tag Tag) []int {
	return r.Recv(src, tag).([]int)
}

// Float64Bytes is the modelled wire size of one float64.
const Float64Bytes = 8

// IntBytes is the modelled wire size of one integer index.
const IntBytes = 4

// SendFloat64s sends a []float64 with its natural wire size.
func (r *Rank) SendFloat64s(dst int, tag Tag, data []float64) {
	r.Send(dst, tag, data, len(data)*Float64Bytes)
}

// SendInts sends an []int with a 4-byte-per-element wire size (indices fit
// 32 bits at the paper's problem scales).
func (r *Rank) SendInts(dst int, tag Tag, data []int) {
	r.Send(dst, tag, data, len(data)*IntBytes)
}
