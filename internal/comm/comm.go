// Package comm is the transport layer of the stack: an SPMD runtime in
// which each rank of a distributed-memory machine runs as a goroutine and
// all interaction happens through explicit messages. It plays the role CMMD
// played on the CM-5 in the original paper.
//
// The layer is split along the Transport interface. Engine-layer code
// (psort, field, pic, replicated, experiments, …) is written against
// Transport only; the goroutine-channel World here is one backend behind
// it, and decorators such as the Tracer wrap any backend without the
// algorithms noticing. Every collective (barrier, broadcast, reduce,
// allreduce, allgather/"global concatenate", all-to-many exchange) is a
// free function built from the point-to-point Send/Recv primitives — never
// a backend method — so the τ and μ terms of the two-level cost model
// accumulate exactly as the published complexity analysis predicts and a
// decorator observes collective traffic message by message.
//
// Simulated time: the sender charges τ + n·μ to its clock when a message of
// n bytes is posted; the receiver charges τ + n·μ and additionally advances
// to at least the sender's post-send clock, making message consumption
// causal. Execution time of a region is the maximum clock advance over
// ranks. All charges flow through the rank's machine.Clock (the Clock
// seam), so an alternative Clock implementation changes the notion of time
// without touching this package's protocols.
package comm

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"picpar/internal/machine"
)

// Tag labels a message so that mismatched protocols fail loudly instead of
// silently mispairing messages.
type Tag int

// Well-known tags used by the collectives; application code should use tags
// >= TagUser.
const (
	tagBarrier Tag = -(iota + 1)
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagAlltoMany
	tagScan
	tagExpose
	tagSystolic
	tagNeighborCounts
)

// TagUser is the first tag value free for application use.
const TagUser Tag = 0

// Transport is the per-rank communication endpoint the engine layer is
// written against. It exposes exactly the primitives: identity, point-to-
// point messaging, the out-of-band Expose channel, and the cost-model
// charging surface. Collectives are free functions over Transport (Barrier,
// Bcast, Allgather, AllToMany, …), so a decorator wrapping Send/Recv sees
// every message a collective moves.
//
// A Transport is owned by one goroutine and must not be shared.
type Transport interface {
	// Rank returns this endpoint's id in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send posts a message of nbytes modelled bytes to dst. The body may
	// be any value; ownership transfers to the receiver (the sender must
	// not mutate it afterwards — the substrate does not copy).
	Send(dst int, tag Tag, body any, nbytes int)
	// Recv blocks until a message with the given tag arrives from src and
	// returns its body and modelled size in bytes. Messages from src with
	// other tags are queued for later Recv calls, preserving per-(src,tag)
	// FIFO order.
	Recv(src int, tag Tag) (body any, nbytes int)
	// Expose publishes v and returns every rank's published value, indexed
	// by rank. It is an out-of-band measurement channel: the values do not
	// travel the modelled network, so only the two enclosing barriers are
	// charged. Use it for instrumentation (collecting timings and counters
	// that a real run would log locally and merge offline), never for
	// algorithm data.
	Expose(v any) []any
	// Compute charges n units of local computation (n·δ) to the clock and
	// the current phase.
	Compute(n int)
	// ComputeTime charges t simulated seconds of local computation directly.
	ComputeTime(t float64)
	// SetPhase selects the accounting phase for subsequent operations.
	SetPhase(p machine.Phase)
	// Clock returns this rank's clock — the seam through which every δ/τ/μ
	// charge flows.
	Clock() machine.Clock
	// Stats returns this rank's per-phase accounting ledger.
	Stats() *machine.Stats
	// Params returns the machine cost parameters of the backend, so layers
	// above (e.g. the Reliable decorator charging retransmission costs) can
	// price a message without a handle on the backend itself.
	Params() machine.Params
}

type message struct {
	tag    Tag
	bytes  int
	sentAt float64 // sender's simulated clock after the send completed
	body   any
}

// World is the channel-backed Transport backend: a set of P ranks plus
// their mailboxes. Create one with NewWorld and execute SPMD programs with
// Run (or use the Launch convenience for the common case).
type World struct {
	P      int
	Params machine.Params

	// boxes[dst*P+src] is the FIFO channel carrying messages src→dst.
	boxes []chan message
	// scratch is the out-of-band publication area used by Expose.
	scratch []any

	// watchdog, when positive, bounds how long a rank may block inside one
	// Send (mailbox full past DefaultMailboxDepth) or Recv before the rank
	// panics with a diagnostic naming who is blocked on which tag. Zero
	// (the default) disables the watchdog entirely.
	watchdog time.Duration
	// blocked[i] describes what rank i is currently blocked on, for the
	// watchdog's deadlock report; nil when the rank is making progress.
	blocked []atomic.Pointer[string]

	// closed is set by Close; any subsequent Send/Recv panics with a typed
	// *TransportError wrapping ErrClosedWorld so a reliability layer knows
	// never to retry it (a retried send-to-closed-world would mask a
	// teardown bug).
	closed atomic.Bool

	// topo, when non-nil and not a full mesh, restricts which rank pairs may
	// exchange messages: a Send or Recv on an unlinked pair panics with a
	// *TransportError wrapping a *TopologyError. The goroutine backend has no
	// sockets to save, so enforcement here exists to make the channel world a
	// faithful rehearsal of a sparse TCP world — a protocol that crosses the
	// topology fails identically on both backends.
	topo *Topology
}

// DefaultMailboxDepth is the per-channel buffering. Deep enough that
// typical phase protocols never block on buffer space, small enough to
// surface deadlocks quickly in tests.
const DefaultMailboxDepth = 4096

// NewWorld creates a world of p ranks with the given machine parameters.
func NewWorld(p int, params machine.Params) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: NewWorld with p=%d", p))
	}
	w := &World{P: p, Params: params}
	w.scratch = make([]any, p)
	w.boxes = make([]chan message, p*p)
	for i := range w.boxes {
		w.boxes[i] = make(chan message, DefaultMailboxDepth)
	}
	w.blocked = make([]atomic.Pointer[string], p)
	return w
}

// SetWatchdog arms the deadlock watchdog: any single Send or Recv that
// blocks longer than d panics with a diagnostic listing every blocked rank
// and the tag it is stuck on, instead of hanging the process. Every blocked
// rank trips its own watchdog, so Run's WaitGroup always drains and the
// first panic is re-raised on the caller. Call before Run; d <= 0 disables.
func (w *World) SetWatchdog(d time.Duration) { w.watchdog = d }

// SetTopology restricts the world to tp's link set (see Topology). Call
// before Run; nil (the default) leaves the historical any-to-any behaviour.
// The descriptor's size must match the world's.
func (w *World) SetTopology(tp *Topology) {
	if tp != nil && tp.Size() != w.P {
		panic(fmt.Sprintf("comm: topology %s is for p=%d, world has P=%d", tp.Name(), tp.Size(), w.P))
	}
	w.topo = tp
}

// Close marks the world shut down. Any later Send or Recv on one of its
// ranks panics with a *TransportError wrapping ErrClosedWorld — a typed,
// never-retried failure, so a rank outliving its world is diagnosed rather
// than masked. Launch closes its world when the program returns.
func (w *World) Close() { w.closed.Store(true) }

// warnf emits configuration warnings; a package variable so tests can
// capture them. Default: stderr.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// EnvWatchdog returns the watchdog duration configured in the
// PICPAR_WATCHDOG environment variable, or fallback when it is unset. The
// values "0" and "off" disable the watchdog. A malformed or negative value
// is rejected loudly — a warning naming the bad value, then the fallback —
// so a typo can never silently disarm (or rearm) deadlock detection. Test
// helpers use this so one knob tunes detection across every package.
func EnvWatchdog(fallback time.Duration) time.Duration {
	switch v := os.Getenv("PICPAR_WATCHDOG"); v {
	case "":
		return fallback
	case "0", "off":
		return 0
	default:
		d, err := time.ParseDuration(v)
		if err != nil {
			warnf("comm: PICPAR_WATCHDOG=%q is not a duration (%v); using fallback %v", v, err, fallback)
			return fallback
		}
		if d < 0 {
			warnf("comm: PICPAR_WATCHDOG=%q is negative; using fallback %v (use \"0\" or \"off\" to disable)", v, fallback)
			return fallback
		}
		return d
	}
}

// Launch runs fn as an SPMD program on p ranks of a fresh channel-backed
// world with the given machine parameters and returns the per-rank stats.
// It is the standard entry point for engine-layer code, which needs no
// handle on the backend itself. The world is closed when the program
// returns, so a goroutine leaked past the run fails loudly with
// ErrClosedWorld instead of corrupting a later experiment.
func Launch(p int, params machine.Params, fn func(t Transport)) machine.WorldStats {
	w := NewWorld(p, params)
	defer w.Close()
	return w.Run(fn)
}

// Run executes fn on every rank concurrently and returns the per-rank stats
// ledgers once all ranks have returned. A panic on any rank is re-raised on
// the caller after all other ranks finish or block permanently; the runtime
// deadlock detector (or the watchdog, if armed) then identifies stuck
// protocols in tests.
func (w *World) Run(fn func(t Transport)) machine.WorldStats {
	return w.RunWrapped(nil, fn)
}

// RunWrapped is Run with a decorator: if wrap is non-nil, each rank's
// Transport is passed through wrap before fn sees it, so decorators such as
// the Tracer interpose on every rank uniformly.
func (w *World) RunWrapped(wrap func(Transport) Transport, fn func(t Transport)) machine.WorldStats {
	ranks := make([]*rank, w.P)
	for i := 0; i < w.P; i++ {
		ranks[i] = &rank{id: i, p: w.P, clock: machine.NewSimClock(), world: w}
	}
	var wg sync.WaitGroup
	panics := make(chan any, w.P)
	for i := 0; i < w.P; i++ {
		wg.Add(1)
		go func(r *rank) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics <- &RankPanic{Rank: r.id, Value: e}
				}
			}()
			t := Transport(r)
			if wrap != nil {
				t = wrap(t)
			}
			// Release any messages a decorator is still holding (e.g. a
			// Faulty reorder hold) when the program returns, even on panic,
			// so no peer is stranded waiting for withheld traffic.
			defer func() {
				defer func() { _ = recover() }() // a failed flush must not mask fn's panic
				flushChain(t)
			}()
			fn(t)
		}(ranks[i])
	}
	wg.Wait()
	select {
	case e := <-panics:
		panic(e)
	default:
	}
	ws := machine.WorldStats{Ranks: make([]machine.Stats, w.P)}
	for i, r := range ranks {
		ws.Ranks[i] = r.stats
	}
	return ws
}

// rank is the channel-backed Transport implementation. It is owned by one
// goroutine and must not be shared.
type rank struct {
	id int // this rank's id in [0, p)
	p  int // number of ranks

	clock machine.Clock
	stats machine.Stats

	world *World
	// pending holds messages pulled off a mailbox while looking for a
	// different tag; indexed by source rank.
	pending [][]message
}

// Rank implements Transport.
func (r *rank) Rank() int { return r.id }

// Size implements Transport.
func (r *rank) Size() int { return r.p }

// Clock implements Transport.
func (r *rank) Clock() machine.Clock { return r.clock }

// Stats implements Transport.
func (r *rank) Stats() *machine.Stats { return &r.stats }

// Params implements Transport.
func (r *rank) Params() machine.Params { return r.world.Params }

// Compute implements Transport.
func (r *rank) Compute(n int) {
	if n <= 0 {
		return
	}
	c := r.world.Params.ComputeCost(n)
	r.clock.Advance(c)
	r.stats.RecordCompute(c)
}

// ComputeTime implements Transport.
func (r *rank) ComputeTime(t float64) {
	if t <= 0 {
		return
	}
	r.clock.Advance(t)
	r.stats.RecordCompute(t)
}

// SetPhase implements Transport.
func (r *rank) SetPhase(p machine.Phase) { r.stats.SetPhase(p) }

// Send implements Transport. Structural misuse — an invalid destination or
// a world already closed — panics with a typed *TransportError that no
// reliability layer will retry.
func (r *rank) Send(dst int, tag Tag, body any, nbytes int) {
	if r.world.closed.Load() {
		panic(&TransportError{Op: "send", Rank: r.id, Peer: dst, Tag: tag, Err: ErrClosedWorld})
	}
	if dst < 0 || dst >= r.p {
		panic(&TransportError{Op: "send", Rank: r.id, Peer: dst, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", dst, r.p)})
	}
	if dst == r.id {
		// Self-sends bypass the network: no τ/μ charge, matching the
		// model where local data movement is part of computation.
		r.deliverLocal(message{tag: tag, bytes: nbytes, sentAt: r.clock.Now(), body: body})
		return
	}
	if tp := r.world.topo; tp != nil && !tp.Connected(r.id, dst) {
		panic(&TransportError{Op: "send", Rank: r.id, Peer: dst, Tag: tag, Err: tp.errOutOf(r.id, dst)})
	}
	cost := r.world.Params.MsgCost(nbytes)
	r.clock.Advance(cost)
	r.stats.RecordSend(nbytes, cost)
	r.post(dst, message{tag: tag, bytes: nbytes, sentAt: r.clock.Now(), body: body})
}

// post enqueues m for dst, tripping the watchdog if the mailbox stays full
// (past DefaultMailboxDepth of buffering) longer than the deadline.
func (r *rank) post(dst int, m message) {
	box := r.world.boxes[dst*r.p+r.id]
	if r.world.watchdog <= 0 {
		box <- m
		return
	}
	select {
	case box <- m:
		return
	default:
	}
	desc := fmt.Sprintf("rank %d blocked sending tag %d to rank %d (mailbox full at depth %d)",
		r.id, m.tag, dst, cap(box))
	r.world.blocked[r.id].Store(&desc)
	timer := time.NewTimer(r.world.watchdog)
	defer timer.Stop()
	select {
	case box <- m:
		r.world.blocked[r.id].Store(nil)
	case <-timer.C:
		panic(r.world.deadlockReport(desc))
	}
}

func (r *rank) deliverLocal(m message) {
	if r.pending == nil {
		r.pending = make([][]message, r.p)
	}
	r.pending[r.id] = append(r.pending[r.id], m)
}

// Recv implements Transport.
func (r *rank) Recv(src int, tag Tag) (any, int) {
	if r.world.closed.Load() {
		panic(&TransportError{Op: "recv", Rank: r.id, Peer: src, Tag: tag, Err: ErrClosedWorld})
	}
	if src < 0 || src >= r.p {
		panic(&TransportError{Op: "recv", Rank: r.id, Peer: src, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", src, r.p)})
	}
	if tp := r.world.topo; tp != nil && src != r.id && !tp.Connected(r.id, src) {
		panic(&TransportError{Op: "recv", Rank: r.id, Peer: src, Tag: tag, Err: tp.errOutOf(r.id, src)})
	}
	if r.pending == nil {
		r.pending = make([][]message, r.p)
	}
	// Check messages already pulled off the wire.
	q := r.pending[src]
	for i := range q {
		if q[i].tag == tag {
			m := q[i]
			r.pending[src] = append(q[:i], q[i+1:]...)
			return r.consume(src, m)
		}
	}
	if src == r.id {
		panic(fmt.Sprintf("comm: rank %d self-recv tag %d with no matching self-send", r.id, tag))
	}
	box := r.world.boxes[r.id*r.p+src]
	for {
		m := r.pull(box, src, tag)
		if m.tag == tag {
			return r.consume(src, m)
		}
		r.pending[src] = append(r.pending[src], m)
	}
}

// pull takes the next message off box, tripping the watchdog if nothing
// arrives before the deadline.
func (r *rank) pull(box chan message, src int, tag Tag) message {
	if r.world.watchdog <= 0 {
		return <-box
	}
	select {
	case m := <-box:
		return m
	default:
	}
	desc := fmt.Sprintf("rank %d blocked receiving tag %d from rank %d", r.id, tag, src)
	r.world.blocked[r.id].Store(&desc)
	timer := time.NewTimer(r.world.watchdog)
	defer timer.Stop()
	select {
	case m := <-box:
		r.world.blocked[r.id].Store(nil)
		return m
	case <-timer.C:
		panic(r.world.deadlockReport(desc))
	}
}

// deadlockReport formats the watchdog diagnostic: the tripping rank's own
// blocking operation plus whatever every other rank is blocked on.
func (w *World) deadlockReport(self string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "comm: deadlock watchdog fired after %v: %s", w.watchdog, self)
	var others []string
	for i := range w.blocked {
		if s := w.blocked[i].Load(); s != nil && *s != self {
			others = append(others, *s)
		}
	}
	if len(others) > 0 {
		fmt.Fprintf(&b, "; also blocked: %s", strings.Join(others, "; "))
	}
	return b.String()
}

func (r *rank) consume(src int, m message) (any, int) {
	if src == r.id {
		return m.body, m.bytes // local delivery is free
	}
	cost := r.world.Params.MsgCost(m.bytes)
	r.clock.AdvanceTo(m.sentAt)
	r.clock.Advance(cost)
	r.stats.RecordRecv(m.bytes, cost)
	return m.body, m.bytes
}

// Expose implements Transport. The enclosing barriers run on this backend
// rank directly; a decorator wrapping the transport does not observe them
// (Expose is out-of-band by contract).
func (r *rank) Expose(v any) []any {
	r.world.scratch[r.id] = v
	barrier(r, tagExpose) // all publications complete
	out := append([]any(nil), r.world.scratch...)
	barrier(r, tagExpose) // all reads complete before anyone publishes again
	return out
}

// RecvFloat64s receives a []float64 message.
func RecvFloat64s(t Transport, src int, tag Tag) []float64 {
	body, _ := t.Recv(src, tag)
	return body.([]float64)
}

// RecvInts receives an []int message.
func RecvInts(t Transport, src int, tag Tag) []int {
	body, _ := t.Recv(src, tag)
	return body.([]int)
}

// Float64Bytes is the modelled wire size of one float64.
const Float64Bytes = 8

// IntBytes is the modelled wire size of one integer index.
const IntBytes = 4

// SendFloat64s sends a []float64 with its natural wire size.
func SendFloat64s(t Transport, dst int, tag Tag, data []float64) {
	t.Send(dst, tag, data, len(data)*Float64Bytes)
}

// SendInts sends an []int with a 4-byte-per-element wire size (indices fit
// 32 bits at the paper's problem scales).
func SendInts(t Transport, dst int, tag Tag, data []int) {
	t.Send(dst, tag, data, len(data)*IntBytes)
}
