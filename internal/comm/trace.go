// The tracing decorator transport: wraps any Transport and records, per
// rank, per accounting phase and per tag, the messages and modelled bytes
// flowing through Send/Recv. Because every collective is built from those
// two primitives, the tracer sees collective traffic message by message —
// the shape a future fault-injection or real-network decorator will reuse.

package comm

import (
	"sync"

	"picpar/internal/machine"
)

// TraceCounts is one bucket of traced traffic.
type TraceCounts struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

func (c *TraceCounts) add(o TraceCounts) {
	c.MsgsSent += o.MsgsSent
	c.BytesSent += o.BytesSent
	c.MsgsRecv += o.MsgsRecv
	c.BytesRecv += o.BytesRecv
}

// RankTrace is the traffic observed through one rank's traced transport,
// broken down by accounting phase, by message tag, and by peer rank (the
// link accounting the topology work reads: which rank pairs actually
// exchanged traffic).
type RankTrace struct {
	Phases [machine.NumPhases]TraceCounts
	Tags   map[Tag]TraceCounts
	Peers  map[int]TraceCounts
}

// Total sums the per-phase buckets.
func (rt RankTrace) Total() TraceCounts {
	var total TraceCounts
	for i := range rt.Phases {
		total.add(rt.Phases[i])
	}
	return total
}

// Tracer records traffic for every rank it wraps. Install it with
// World.RunWrapped(tracer.Wrap, fn). Self-sends and self-receives are not
// recorded, matching the Stats ledger (local delivery is free and
// unrecorded there too). Expose's internal barriers run on the backend
// below the decorator and are therefore not traced; Expose is out-of-band
// by contract.
type Tracer struct {
	mu    sync.Mutex
	ranks map[int]*RankTrace
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{ranks: make(map[int]*RankTrace)}
}

// Wrap decorates t; pass this method to World.RunWrapped.
func (tr *Tracer) Wrap(t Transport) Transport {
	return &tracedTransport{Transport: t, tracer: tr}
}

// Rank returns a copy of the traffic recorded for one rank (zero counts if
// the rank sent and received nothing).
func (tr *Tracer) Rank(id int) RankTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rt := tr.ranks[id]
	if rt == nil {
		return RankTrace{Tags: map[Tag]TraceCounts{}, Peers: map[int]TraceCounts{}}
	}
	out := RankTrace{
		Phases: rt.Phases,
		Tags:   make(map[Tag]TraceCounts, len(rt.Tags)),
		Peers:  make(map[int]TraceCounts, len(rt.Peers)),
	}
	for tag, c := range rt.Tags {
		out.Tags[tag] = c
	}
	for peer, c := range rt.Peers {
		out.Peers[peer] = c
	}
	return out
}

// LinksUsed counts the undirected rank pairs that exchanged at least one
// traced message — the measured link set, to compare against a Topology's
// NumLinks.
func (tr *Tracer) LinksUsed() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	type link struct{ a, b int }
	links := make(map[link]bool)
	for id, rt := range tr.ranks {
		for peer, c := range rt.Peers {
			if c.MsgsSent == 0 && c.MsgsRecv == 0 {
				continue
			}
			a, b := id, peer
			if a > b {
				a, b = b, a
			}
			links[link{a, b}] = true
		}
	}
	return len(links)
}

// Total aggregates all ranks' traffic.
func (tr *Tracer) Total() TraceCounts {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var total TraceCounts
	for _, rt := range tr.ranks {
		total.add(rt.Total())
	}
	return total
}

// PhaseTotals aggregates all ranks' traffic per accounting phase. The
// traffic regression gate snapshots this table into the bench JSON.
func (tr *Tracer) PhaseTotals() [machine.NumPhases]TraceCounts {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var totals [machine.NumPhases]TraceCounts
	for _, rt := range tr.ranks {
		for i := range rt.Phases {
			totals[i].add(rt.Phases[i])
		}
	}
	return totals
}

// Reset clears all recorded traffic.
func (tr *Tracer) Reset() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ranks = make(map[int]*RankTrace)
}

func (tr *Tracer) bucket(id int) *RankTrace {
	rt := tr.ranks[id]
	if rt == nil {
		rt = &RankTrace{Tags: make(map[Tag]TraceCounts), Peers: make(map[int]TraceCounts)}
		tr.ranks[id] = rt
	}
	return rt
}

func (tr *Tracer) recordSend(id, peer int, phase machine.Phase, tag Tag, nbytes int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rt := tr.bucket(id)
	rt.Phases[phase].MsgsSent++
	rt.Phases[phase].BytesSent += int64(nbytes)
	c := rt.Tags[tag]
	c.MsgsSent++
	c.BytesSent += int64(nbytes)
	rt.Tags[tag] = c
	pc := rt.Peers[peer]
	pc.MsgsSent++
	pc.BytesSent += int64(nbytes)
	rt.Peers[peer] = pc
}

func (tr *Tracer) recordRecv(id, peer int, phase machine.Phase, tag Tag, nbytes int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rt := tr.bucket(id)
	rt.Phases[phase].MsgsRecv++
	rt.Phases[phase].BytesRecv += int64(nbytes)
	c := rt.Tags[tag]
	c.MsgsRecv++
	c.BytesRecv += int64(nbytes)
	rt.Tags[tag] = c
	pc := rt.Peers[peer]
	pc.MsgsRecv++
	pc.BytesRecv += int64(nbytes)
	rt.Peers[peer] = pc
}

// tracedTransport interposes on Send/Recv and delegates everything else to
// the wrapped Transport.
type tracedTransport struct {
	Transport
	tracer *Tracer
}

// Unwrap implements Wrapper, so capabilities of layers below (Degradable,
// held-message flushing) stay reachable through a tracing wrapper.
func (t *tracedTransport) Unwrap() Transport { return t.Transport }

func (t *tracedTransport) Send(dst int, tag Tag, body any, nbytes int) {
	if dst != t.Rank() {
		t.tracer.recordSend(t.Rank(), dst, t.Stats().CurrentPhase(), tag, nbytes)
	}
	t.Transport.Send(dst, tag, body, nbytes)
}

func (t *tracedTransport) Recv(src int, tag Tag) (any, int) {
	body, nbytes := t.Transport.Recv(src, tag)
	if src != t.Rank() {
		t.tracer.recordRecv(t.Rank(), src, t.Stats().CurrentPhase(), tag, nbytes)
	}
	return body, nbytes
}
