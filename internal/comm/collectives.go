package comm

import (
	"fmt"

	"picpar/internal/wire"
)

// Barrier synchronises all ranks using a dissemination barrier: ⌈log₂ p⌉
// rounds in which rank i signals (i+2^k) mod p and waits for (i−2^k) mod p.
// Because receives are causal, every rank's clock leaves the barrier at a
// time no earlier than every other rank's entry time.
func (r *Rank) Barrier() {
	p := r.P
	if p == 1 {
		return
	}
	for k := 1; k < p; k <<= 1 {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.Send(dst, tagBarrier, nil, 0)
		r.Recv(src, tagBarrier)
	}
}

// Bcast broadcasts body (of nbytes) from root along a binomial tree and
// returns the received value on every rank (the root returns body itself).
func (r *Rank) Bcast(root int, body any, nbytes int) any {
	p := r.P
	if p == 1 {
		return body
	}
	vr := (r.ID - root + p) % p // virtual rank with root at 0
	hb := 0                     // highest set bit of vr (0 for the root)
	for b := 1; b <= vr; b <<= 1 {
		if vr&b != 0 {
			hb = b
		}
	}
	var val any
	if vr == 0 {
		val = body
	} else {
		// Parent in the binomial tree: clear the highest set bit.
		parent := ((vr - hb) + root) % p
		val = r.Recv(parent, tagBcast)
	}
	// Children of vr are vr+2^k for every 2^k above vr's highest set bit.
	for mask := nextPow2(p) >> 1; mask > hb; mask >>= 1 {
		if child := vr + mask; child < p {
			r.Send((child+root)%p, tagBcast, val, nbytes)
		}
	}
	return val
}

func nextPow2(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}

// ReduceFloat64 reduces one float64 per rank to root with op (must be
// associative and commutative). Non-root ranks return 0.
func (r *Rank) ReduceFloat64(root int, x float64, op func(a, b float64) float64) float64 {
	p := r.P
	vr := (r.ID - root + p) % p
	acc := x
	for mask := 1; mask < nextPow2(p); mask <<= 1 {
		if vr&mask != 0 {
			parent := (vr - mask + root) % p
			r.Send(parent, tagReduce, acc, Float64Bytes)
			return 0
		}
		if child := vr + mask; child < p {
			v := r.Recv((child+root)%p, tagReduce).(float64)
			acc = op(acc, v)
			r.Compute(1)
		}
	}
	return acc
}

// AllreduceFloat64 reduces one float64 per rank with op and returns the
// result on every rank (reduce-to-root then broadcast; correct for any p).
func (r *Rank) AllreduceFloat64(x float64, op func(a, b float64) float64) float64 {
	v := r.ReduceFloat64(0, x, op)
	return r.Bcast(0, v, Float64Bytes).(float64)
}

// AllreduceSumFloat64s element-wise sums a vector across ranks, returning
// the full sum on every rank. This is the dominant global operation of the
// replicated-mesh (Lubeck–Faber style) baseline.
func (r *Rank) AllreduceSumFloat64s(x []float64) []float64 {
	acc := append([]float64(nil), x...)
	vr := r.ID
	for mask := 1; mask < nextPow2(r.P); mask <<= 1 {
		if vr&mask != 0 {
			r.SendFloat64s(vr-mask, tagReduce, acc)
			acc = nil
			break
		}
		if child := vr + mask; child < r.P {
			v := r.RecvFloat64s(child, tagReduce)
			for i := range acc {
				acc[i] += v[i]
			}
			r.Compute(len(acc))
		}
	}
	out := r.Bcast(0, acc, len(x)*Float64Bytes)
	return out.([]float64)
}

// AllreduceMaxFloat64 returns the maximum of x over all ranks, on all ranks.
func (r *Rank) AllreduceMaxFloat64(x float64) float64 {
	return r.AllreduceFloat64(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceSumInt returns the sum of x over all ranks, on all ranks.
func (r *Rank) AllreduceSumInt(x int) int {
	v := r.AllreduceFloat64(float64(x), func(a, b float64) float64 { return a + b })
	return int(v + 0.5)
}

// Allgather performs a "global concatenation": every rank contributes a
// fixed-size block and every rank receives the concatenation in rank order.
// Implemented as a ring: p−1 steps each forwarding one block, so the cost is
// (p−1)·(τ + |block|·μ) — the global-concatenate term of the paper's
// analysis.
func Allgather[T any](r *Rank, block []T, elemBytes int) []T {
	p := r.P
	n := len(block)
	out := make([]T, n*p)
	copy(out[r.ID*n:], block)
	if p == 1 {
		return out
	}
	next := (r.ID + 1) % p
	prev := (r.ID - 1 + p) % p
	cur := append([]T(nil), block...)
	curOwner := r.ID
	for step := 0; step < p-1; step++ {
		r.Send(next, tagAllgather, cur, n*elemBytes)
		cur = r.Recv(prev, tagAllgather).([]T)
		curOwner = (curOwner - 1 + p) % p
		copy(out[curOwner*n:], cur)
	}
	return out
}

// AllgatherInts gathers fixed-size int blocks from all ranks.
func (r *Rank) AllgatherInts(block []int) []int { return Allgather(r, block, IntBytes) }

// AllgatherFloat64s gathers fixed-size float64 blocks from all ranks. It
// performs exactly the same ring exchange as the generic Allgather (so the
// simulated cost is identical) but draws its ring buffer from the wire
// pool and returns the last-held block to it, keeping the per-call
// allocation down to the result slice.
func (r *Rank) AllgatherFloat64s(block []float64) []float64 {
	p := r.P
	n := len(block)
	out := make([]float64, n*p)
	copy(out[r.ID*n:], block)
	if p == 1 {
		return out
	}
	next := (r.ID + 1) % p
	prev := (r.ID - 1 + p) % p
	cur := append(wire.Get(n), block...)
	curOwner := r.ID
	for step := 0; step < p-1; step++ {
		r.Send(next, tagAllgather, cur, n*Float64Bytes)
		cur = r.Recv(prev, tagAllgather).([]float64)
		curOwner = (curOwner - 1 + p) % p
		copy(out[curOwner*n:], cur)
	}
	wire.Put(cur)
	return out
}

// ExchangeCounts distributes an all-to-many traffic table: sendCounts[d] is
// the number of elements this rank will send to rank d. Returns
// recvCounts[s], the number of elements rank s will send here. This is the
// "global concatenate the myId row of table" step of the paper's
// redistribution algorithm (Figure 12, line 15).
func (r *Rank) ExchangeCounts(sendCounts []int) (recvCounts []int) {
	if len(sendCounts) != r.P {
		panic(fmt.Sprintf("comm: ExchangeCounts len=%d want P=%d", len(sendCounts), r.P))
	}
	table := r.AllgatherInts(sendCounts)
	recvCounts = make([]int, r.P)
	for s := 0; s < r.P; s++ {
		recvCounts[s] = table[s*r.P+r.ID]
	}
	return recvCounts
}

// AllToMany performs the paper's all-to-many exchange: send[d] goes to rank
// d. Empty slices send nothing — no τ is charged for absent messages,
// matching the paper's "number of messages" accounting. recvCounts must come
// from ExchangeCounts or equivalent global knowledge. Returns the received
// slices indexed by source rank; recv[self] aliases send[self].
//
// The schedule is the classic staggered pairwise exchange: at step s, send
// to (id+s) mod p and receive from (id−s) mod p.
func AllToMany[T any](r *Rank, send [][]T, recvCounts []int, elemBytes int) [][]T {
	p := r.P
	if len(send) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("comm: AllToMany len(send)=%d len(recvCounts)=%d want P=%d",
			len(send), len(recvCounts), p))
	}
	recv := make([][]T, p)
	if len(send[r.ID]) > 0 {
		recv[r.ID] = send[r.ID]
	}
	for s := 1; s < p; s++ {
		dst := (r.ID + s) % p
		src := (r.ID - s + p) % p
		if len(send[dst]) > 0 {
			r.Send(dst, tagAlltoMany, send[dst], len(send[dst])*elemBytes)
		}
		if recvCounts[src] > 0 {
			recv[src] = r.Recv(src, tagAlltoMany).([]T)
			if len(recv[src]) != recvCounts[src] {
				panic(fmt.Sprintf("comm: all-to-many size mismatch from %d: got %d want %d",
					src, len(recv[src]), recvCounts[src]))
			}
		}
	}
	return recv
}

// AllToManyFloat64s is AllToMany for float64 payloads.
func (r *Rank) AllToManyFloat64s(send [][]float64, recvCounts []int) [][]float64 {
	return AllToMany(r, send, recvCounts, Float64Bytes)
}

// Expose publishes v and returns every rank's published value, indexed by
// rank. It is an out-of-band measurement channel: the values do not travel
// the modelled network, so only the two enclosing barriers are charged.
// Use it for instrumentation (collecting timings and counters that a real
// run would log locally and merge offline), never for algorithm data.
func (r *Rank) Expose(v any) []any {
	r.world.scratch[r.ID] = v
	r.Barrier() // all publications complete
	out := append([]any(nil), r.world.scratch...)
	r.Barrier() // all reads complete before anyone publishes again
	return out
}

// ExposeMaxFloat64 returns the maximum over ranks of a float64 measurement,
// free of modelled network cost except two barriers.
func (r *Rank) ExposeMaxFloat64(v float64) float64 {
	all := r.Expose(v)
	m := v
	for _, x := range all {
		if f := x.(float64); f > m {
			m = f
		}
	}
	return m
}

// ExposeMaxFloat64s element-wise maximises a measurement vector over ranks.
func (r *Rank) ExposeMaxFloat64s(v []float64) []float64 {
	all := r.Expose(v)
	out := append([]float64(nil), v...)
	for _, x := range all {
		vec := x.([]float64)
		for i := range out {
			if vec[i] > out[i] {
				out[i] = vec[i]
			}
		}
	}
	return out
}

// ExposeSumFloat64 returns the sum over ranks of a float64 measurement.
func (r *Rank) ExposeSumFloat64(v float64) float64 {
	all := r.Expose(v)
	s := 0.0
	for _, x := range all {
		s += x.(float64)
	}
	return s
}

// ScanSumInt returns the exclusive prefix sum of x over ranks: rank i gets
// x₀+…+x_{i−1} (rank 0 gets 0). Linear chain; used by the order-maintaining
// load balance.
func (r *Rank) ScanSumInt(x int) int {
	acc := 0
	if r.ID > 0 {
		acc = r.Recv(r.ID-1, tagScan).(int)
	}
	if r.ID+1 < r.P {
		r.Send(r.ID+1, tagScan, acc+x, IntBytes)
	}
	return acc
}
