// Collectives, built exclusively from the Transport primitives. They are
// free functions rather than backend methods so that any decorator wrapping
// a Transport (e.g. the Tracer) observes every point-to-point message a
// collective moves, and so that alternative backends get the full
// collective surface for free.

package comm

import (
	"fmt"

	"picpar/internal/wire"
)

// Barrier synchronises all ranks using a dissemination barrier: ⌈log₂ p⌉
// rounds in which rank i signals (i+2^k) mod p and waits for (i−2^k) mod p.
// Because receives are causal, every rank's clock leaves the barrier at a
// time no earlier than every other rank's entry time.
func Barrier(t Transport) { barrier(t, tagBarrier) }

// barrier is the dissemination barrier on an explicit tag. Expose's
// internal barriers use the dedicated tagExpose so they can never pair with
// decorator-level tagBarrier traffic (e.g. a duplicate envelope a Faulty
// decorator left behind after the application's barrier completed).
func barrier(t Transport, tag Tag) {
	p := t.Size()
	if p == 1 {
		return
	}
	id := t.Rank()
	for k := 1; k < p; k <<= 1 {
		dst := (id + k) % p
		src := (id - k + p) % p
		t.Send(dst, tag, nil, 0)
		t.Recv(src, tag)
	}
}

// Bcast broadcasts body (of nbytes) from root along a binomial tree and
// returns the received value on every rank (the root returns body itself).
func Bcast(t Transport, root int, body any, nbytes int) any {
	p := t.Size()
	if p == 1 {
		return body
	}
	vr := (t.Rank() - root + p) % p // virtual rank with root at 0
	hb := highestSetBit(vr)         // 0 for the root
	var val any
	if vr == 0 {
		val = body
	} else {
		// Parent in the binomial tree: clear the highest set bit.
		parent := ((vr - hb) + root) % p
		val, _ = t.Recv(parent, tagBcast)
	}
	// Children of vr are vr+2^k for every 2^k above vr's highest set bit.
	for mask := nextPow2(p) >> 1; mask > hb; mask >>= 1 {
		if child := vr + mask; child < p {
			t.Send((child+root)%p, tagBcast, val, nbytes)
		}
	}
	return val
}

// ReduceFloat64 reduces one float64 per rank to root with op (must be
// associative and commutative). Non-root ranks return 0.
func ReduceFloat64(t Transport, root int, x float64, op func(a, b float64) float64) float64 {
	p := t.Size()
	vr := (t.Rank() - root + p) % p
	acc := x
	for mask := 1; mask < nextPow2(p); mask <<= 1 {
		if vr&mask != 0 {
			parent := (vr - mask + root) % p
			t.Send(parent, tagReduce, acc, Float64Bytes)
			return 0
		}
		if child := vr + mask; child < p {
			body, _ := t.Recv((child+root)%p, tagReduce)
			acc = op(acc, body.(float64))
			t.Compute(1)
		}
	}
	return acc
}

// AllreduceFloat64 reduces one float64 per rank with op and returns the
// result on every rank (reduce-to-root then broadcast; correct for any p).
func AllreduceFloat64(t Transport, x float64, op func(a, b float64) float64) float64 {
	v := ReduceFloat64(t, 0, x, op)
	return Bcast(t, 0, v, Float64Bytes).(float64)
}

// AllreduceSumFloat64s element-wise sums a vector across ranks, returning
// the full sum on every rank. This is the dominant global operation of the
// replicated-mesh (Lubeck–Faber style) baseline.
func AllreduceSumFloat64s(t Transport, x []float64) []float64 {
	acc := append([]float64(nil), x...)
	vr := t.Rank()
	p := t.Size()
	for mask := 1; mask < nextPow2(p); mask <<= 1 {
		if vr&mask != 0 {
			SendFloat64s(t, vr-mask, tagReduce, acc)
			acc = nil
			break
		}
		if child := vr + mask; child < p {
			v := RecvFloat64s(t, child, tagReduce)
			for i := range acc {
				acc[i] += v[i]
			}
			t.Compute(len(acc))
		}
	}
	out := Bcast(t, 0, acc, len(x)*Float64Bytes)
	return out.([]float64)
}

// AllreduceMaxFloat64 returns the maximum of x over all ranks, on all ranks.
func AllreduceMaxFloat64(t Transport, x float64) float64 {
	return AllreduceFloat64(t, x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceSumInt returns the sum of x over all ranks, on all ranks.
func AllreduceSumInt(t Transport, x int) int {
	v := AllreduceFloat64(t, float64(x), func(a, b float64) float64 { return a + b })
	return int(v + 0.5)
}

// Allgather performs a "global concatenation": every rank contributes a
// fixed-size block and every rank receives the concatenation in rank order.
// Implemented as a ring: p−1 steps each forwarding one block, so the cost is
// (p−1)·(τ + |block|·μ) — the global-concatenate term of the paper's
// analysis.
func Allgather[T any](t Transport, block []T, elemBytes int) []T {
	p := t.Size()
	id := t.Rank()
	n := len(block)
	out := make([]T, n*p)
	copy(out[id*n:], block)
	if p == 1 {
		return out
	}
	next := (id + 1) % p
	prev := (id - 1 + p) % p
	cur := append([]T(nil), block...)
	curOwner := id
	for step := 0; step < p-1; step++ {
		t.Send(next, tagAllgather, cur, n*elemBytes)
		body, _ := t.Recv(prev, tagAllgather)
		cur = body.([]T)
		curOwner = (curOwner - 1 + p) % p
		copy(out[curOwner*n:], cur)
	}
	return out
}

// AllgatherInts gathers fixed-size int blocks from all ranks.
func AllgatherInts(t Transport, block []int) []int { return Allgather(t, block, IntBytes) }

// AllgatherFloat64s gathers fixed-size float64 blocks from all ranks. It
// performs exactly the same ring exchange as the generic Allgather (so the
// simulated cost is identical) but draws its ring buffer from the wire
// pool and returns the last-held block to it, keeping the per-call
// allocation down to the result slice.
func AllgatherFloat64s(t Transport, block []float64) []float64 {
	p := t.Size()
	id := t.Rank()
	n := len(block)
	out := make([]float64, n*p)
	copy(out[id*n:], block)
	if p == 1 {
		return out
	}
	next := (id + 1) % p
	prev := (id - 1 + p) % p
	cur := append(wire.Get(n), block...)
	curOwner := id
	for step := 0; step < p-1; step++ {
		t.Send(next, tagAllgather, cur, n*Float64Bytes)
		body, _ := t.Recv(prev, tagAllgather)
		cur = body.([]float64)
		curOwner = (curOwner - 1 + p) % p
		copy(out[curOwner*n:], cur)
	}
	wire.Put(cur)
	return out
}

// ExchangeCounts distributes an all-to-many traffic table: sendCounts[d] is
// the number of elements this rank will send to rank d. Returns
// recvCounts[s], the number of elements rank s will send here. This is the
// "global concatenate the myId row of table" step of the paper's
// redistribution algorithm (Figure 12, line 15).
func ExchangeCounts(t Transport, sendCounts []int) (recvCounts []int) {
	p := t.Size()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: ExchangeCounts len=%d want P=%d", len(sendCounts), p))
	}
	table := AllgatherInts(t, sendCounts)
	recvCounts = make([]int, p)
	for s := 0; s < p; s++ {
		recvCounts[s] = table[s*p+t.Rank()]
	}
	return recvCounts
}

// AllToMany performs the paper's all-to-many exchange: send[d] goes to rank
// d. Empty slices send nothing — no τ is charged for absent messages,
// matching the paper's "number of messages" accounting. recvCounts must come
// from ExchangeCounts or equivalent global knowledge. Returns the received
// slices indexed by source rank; recv[self] aliases send[self].
//
// The schedule is the classic staggered pairwise exchange: at step s, send
// to (id+s) mod p and receive from (id−s) mod p.
func AllToMany[T any](t Transport, send [][]T, recvCounts []int, elemBytes int) [][]T {
	p := t.Size()
	id := t.Rank()
	if len(send) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("comm: AllToMany len(send)=%d len(recvCounts)=%d want P=%d",
			len(send), len(recvCounts), p))
	}
	recv := make([][]T, p)
	if len(send[id]) > 0 {
		recv[id] = send[id]
	}
	for s := 1; s < p; s++ {
		dst := (id + s) % p
		src := (id - s + p) % p
		if len(send[dst]) > 0 {
			t.Send(dst, tagAlltoMany, send[dst], len(send[dst])*elemBytes)
		}
		if recvCounts[src] > 0 {
			body, _ := t.Recv(src, tagAlltoMany)
			recv[src] = body.([]T)
			if len(recv[src]) != recvCounts[src] {
				panic(fmt.Sprintf("comm: all-to-many size mismatch from %d: got %d want %d",
					src, len(recv[src]), recvCounts[src]))
			}
		}
	}
	return recv
}

// AllToManyFloat64s is AllToMany for float64 payloads.
func AllToManyFloat64s(t Transport, send [][]float64, recvCounts []int) [][]float64 {
	return AllToMany(t, send, recvCounts, Float64Bytes)
}

// ExposeMaxFloat64 returns the maximum over ranks of a float64 measurement,
// free of modelled network cost except two barriers.
func ExposeMaxFloat64(t Transport, v float64) float64 {
	all := t.Expose(v)
	m := v
	for _, x := range all {
		if f := x.(float64); f > m {
			m = f
		}
	}
	return m
}

// ExposeMaxFloat64s element-wise maximises a measurement vector over ranks.
func ExposeMaxFloat64s(t Transport, v []float64) []float64 {
	all := t.Expose(v)
	out := append([]float64(nil), v...)
	for _, x := range all {
		vec := x.([]float64)
		for i := range out {
			if vec[i] > out[i] {
				out[i] = vec[i]
			}
		}
	}
	return out
}

// ExposeSumFloat64 returns the sum over ranks of a float64 measurement.
func ExposeSumFloat64(t Transport, v float64) float64 {
	all := t.Expose(v)
	s := 0.0
	for _, x := range all {
		s += x.(float64)
	}
	return s
}

// ScanSumInt returns the exclusive prefix sum of x over ranks: rank i gets
// x₀+…+x_{i−1} (rank 0 gets 0). Linear chain; used by the order-maintaining
// load balance.
func ScanSumInt(t Transport, x int) int {
	acc := 0
	if t.Rank() > 0 {
		body, _ := t.Recv(t.Rank()-1, tagScan)
		acc = body.(int)
	}
	if t.Rank()+1 < t.Size() {
		t.Send(t.Rank()+1, tagScan, acc+x, IntBytes)
	}
	return acc
}
