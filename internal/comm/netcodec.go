// The versioned binary codec of the TCP transport backend (net.go): it
// turns the `any` message bodies the engine layer exchanges — and the
// decorator envelopes the chaos stack wraps them in — into length-prefixed
// frames on a socket, and back.
//
// Design rules, in priority order:
//
//  1. Safety: DecodeFrame consumes arbitrary attacker-controlled bytes. It
//     must either reproduce a value EncodeFrame could have produced or
//     return a typed *CodecError — never panic, never silently truncate,
//     never allocate more than the input length justifies. A fuzz harness
//     (netcodec_fuzz_test.go) enforces this.
//  2. Fidelity: the simulated cost model rides on the frame (modelled byte
//     size, sender's post-send clock), so a run over real sockets charges
//     exactly what the goroutine backend charges and the goldens stay
//     byte-identical across processes.
//  3. Allocation: encode scratch comes from the internal/wire byte pool and
//     decoded []float64 payloads from its float pool, so the zero-alloc
//     guarantees of the particle exchange hot paths survive the move onto a
//     real network (receivers already wire.Put their payloads back).
//
// The format is fixed-width little-endian. Every frame starts with a
// version byte so an old binary talking to a new one fails loudly with a
// version diagnostic instead of misparsing.

package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"picpar/internal/machine"
	"picpar/internal/wire"
)

// NetCodecVersion is the wire-format version. Bump it on any change to the
// frame or body layout; peers with mismatched versions refuse to pair
// during the handshake and a mismatched frame fails decode with a typed
// error.
const NetCodecVersion = 2

// Frame kinds. Control frames (hello, welcome, reject, heartbeat, goodbye)
// carry the connection lifecycle; data and oob frames carry application
// traffic.
const (
	frameData      = 0x01 // modelled point-to-point message
	frameOOB       = 0x02 // out-of-band Expose publication (uncharged)
	frameHeartbeat = 0x03 // liveness beacon, no payload
	frameGoodbye   = 0x04 // clean teardown announcement, no payload
	frameHello     = 0x05 // rendezvous registration: rank, size, listen addr
	frameWelcome   = 0x06 // rendezvous reply: world id + address table
	frameReject    = 0x07 // handshake refusal with reason
	framePeerHello = 0x08 // mesh connection handshake: world id, from, to
	framePeerOK    = 0x09 // mesh handshake accept
	frameRelay     = 0x0a // hierarchical gateway forwarding: world src/dst + data payload
	frameOOBFrom   = 0x0b // origin-attributed Expose publication (sparse/hier worlds)
)

// Body kind tags.
const (
	kNil      = 0x00
	kFloat64  = 0x01
	kInt      = 0x02
	kUint64   = 0x03
	kBool     = 0x04
	kString   = 0x05
	kFloat64s = 0x06
	kInts     = 0x07
	kRelEnv   = 0x08 // reliability envelope: seq + nested body
	kFaultEnv = 0x09 // fault envelope: metadata + nested body
	kStats    = 0x0a // machine.Stats ledger (end-of-run gathering)
)

// maxEnvelopeDepth bounds decorator-envelope nesting in a decoded body. The
// deepest legitimate stack is fault(rel(payload)) = 3; the cap keeps a
// hostile byte stream from inducing deep recursion.
const maxEnvelopeDepth = 6

// maxFrameBytes bounds a single frame (1 GiB). The length prefix of an
// incoming frame is rejected above this before any allocation happens.
const maxFrameBytes = 1 << 30

// CodecError is the typed decode (or encode) failure of the network codec.
// It is terminal and never retried: a frame that does not parse means the
// peers disagree about the protocol, not that the network hiccuped.
type CodecError struct {
	Op  string // "encode" or "decode"
	Msg string // what was malformed
}

// Error implements error.
func (e *CodecError) Error() string { return fmt.Sprintf("comm: codec %s: %s", e.Op, e.Msg) }

func decErr(format string, args ...any) error {
	return &CodecError{Op: "decode", Msg: fmt.Sprintf(format, args...)}
}

// netFrame is one decoded frame. Which fields are meaningful depends on
// Kind; the zero value of the rest is ignored by the encoder.
type netFrame struct {
	kind byte

	// frameData / frameOOB
	tag    Tag
	nbytes int     // modelled size (the cost-model bytes, not the encoded length)
	sentAt float64 // sender's simulated clock after the send completed
	body   any

	// frameHello / frameWelcome / framePeerHello / frameReject
	worldID uint64
	rank    int    // hello: sender's rank; peer hello: dialing rank; relay/oobFrom: world source rank
	peer    int    // peer hello: the rank being dialed; relay: world destination rank
	size    int    // hello: sender's idea of the world size
	addr    string // hello: the sender's mesh listen address
	addrs   []string
	reason  string // reject: why
	topo    uint64 // hello: topology digest (0 = full mesh / none)
}

// appendFrame encodes f onto buf (which should come from wire.GetBytes) and
// returns the extended buffer. The caller prepends the u32 length prefix
// when writing to a socket.
func appendFrame(buf []byte, f *netFrame) ([]byte, error) {
	buf = append(buf, NetCodecVersion, f.kind)
	switch f.kind {
	case frameHeartbeat, frameGoodbye, framePeerOK:
		return buf, nil
	case frameData, frameOOB:
		buf = appendU64(buf, uint64(int64(f.tag)))
		buf = appendU64(buf, uint64(int64(f.nbytes)))
		buf = appendU64(buf, math.Float64bits(f.sentAt))
		return appendBody(buf, f.body, 0)
	case frameRelay:
		buf = appendU64(buf, uint64(int64(f.rank)))
		buf = appendU64(buf, uint64(int64(f.peer)))
		buf = appendU64(buf, uint64(int64(f.tag)))
		buf = appendU64(buf, uint64(int64(f.nbytes)))
		buf = appendU64(buf, math.Float64bits(f.sentAt))
		return appendBody(buf, f.body, 0)
	case frameOOBFrom:
		buf = appendU64(buf, uint64(int64(f.rank)))
		return appendBody(buf, f.body, 0)
	case frameHello:
		buf = appendU64(buf, f.worldID)
		buf = appendU64(buf, uint64(int64(f.rank)))
		buf = appendU64(buf, uint64(int64(f.size)))
		buf = appendString(buf, f.addr)
		return appendU64(buf, f.topo), nil
	case frameWelcome:
		buf = appendU64(buf, f.worldID)
		buf = appendU64(buf, uint64(len(f.addrs)))
		for _, a := range f.addrs {
			buf = appendString(buf, a)
		}
		return buf, nil
	case framePeerHello:
		buf = appendU64(buf, f.worldID)
		buf = appendU64(buf, uint64(int64(f.rank)))
		buf = appendU64(buf, uint64(int64(f.peer)))
		return buf, nil
	case frameReject:
		return appendString(buf, f.reason), nil
	}
	return nil, &CodecError{Op: "encode", Msg: fmt.Sprintf("unknown frame kind 0x%02x", f.kind)}
}

// decodeFrame parses one frame payload (without the length prefix). Any
// malformed input yields a *CodecError; trailing garbage after a valid
// frame is malformed too (a frame is exactly one message).
func decodeFrame(b []byte) (*netFrame, error) {
	if len(b) < 2 {
		return nil, decErr("frame truncated: %d bytes", len(b))
	}
	if b[0] != NetCodecVersion {
		return nil, decErr("codec version %d, want %d", b[0], NetCodecVersion)
	}
	f := &netFrame{kind: b[1]}
	rest := b[2:]
	var err error
	switch f.kind {
	case frameHeartbeat, frameGoodbye, framePeerOK:
	case frameData, frameOOB:
		var tag, nbytes, bits uint64
		if tag, rest, err = takeU64(rest, "tag"); err != nil {
			return nil, err
		}
		if nbytes, rest, err = takeU64(rest, "nbytes"); err != nil {
			return nil, err
		}
		if bits, rest, err = takeU64(rest, "sentAt"); err != nil {
			return nil, err
		}
		f.tag = Tag(int64(tag))
		f.nbytes = int(int64(nbytes))
		if f.nbytes < 0 {
			return nil, decErr("negative modelled size %d", f.nbytes)
		}
		f.sentAt = math.Float64frombits(bits)
		if f.body, rest, err = decodeBody(rest, 0); err != nil {
			return nil, err
		}
	case frameRelay:
		var tag, nbytes, bits uint64
		if f.rank, rest, err = takeInt(rest, "relay src"); err != nil {
			return nil, err
		}
		if f.peer, rest, err = takeInt(rest, "relay dst"); err != nil {
			return nil, err
		}
		if tag, rest, err = takeU64(rest, "tag"); err != nil {
			return nil, err
		}
		if nbytes, rest, err = takeU64(rest, "nbytes"); err != nil {
			return nil, err
		}
		if bits, rest, err = takeU64(rest, "sentAt"); err != nil {
			return nil, err
		}
		f.tag = Tag(int64(tag))
		f.nbytes = int(int64(nbytes))
		if f.nbytes < 0 {
			return nil, decErr("negative modelled size %d", f.nbytes)
		}
		f.sentAt = math.Float64frombits(bits)
		if f.body, rest, err = decodeBody(rest, 0); err != nil {
			return nil, err
		}
	case frameOOBFrom:
		if f.rank, rest, err = takeInt(rest, "oob origin"); err != nil {
			return nil, err
		}
		if f.body, rest, err = decodeBody(rest, 0); err != nil {
			return nil, err
		}
	case frameHello:
		if f.worldID, rest, err = takeU64(rest, "world id"); err != nil {
			return nil, err
		}
		if f.rank, rest, err = takeInt(rest, "rank"); err != nil {
			return nil, err
		}
		if f.size, rest, err = takeInt(rest, "size"); err != nil {
			return nil, err
		}
		if f.addr, rest, err = takeString(rest, "listen addr"); err != nil {
			return nil, err
		}
		if f.topo, rest, err = takeU64(rest, "topology digest"); err != nil {
			return nil, err
		}
	case frameWelcome:
		if f.worldID, rest, err = takeU64(rest, "world id"); err != nil {
			return nil, err
		}
		var n uint64
		if n, rest, err = takeU64(rest, "addr count"); err != nil {
			return nil, err
		}
		if n > uint64(len(rest)) {
			return nil, decErr("addr count %d exceeds remaining %d bytes", n, len(rest))
		}
		f.addrs = make([]string, n)
		for i := range f.addrs {
			if f.addrs[i], rest, err = takeString(rest, "addr"); err != nil {
				return nil, err
			}
		}
	case framePeerHello:
		if f.worldID, rest, err = takeU64(rest, "world id"); err != nil {
			return nil, err
		}
		if f.rank, rest, err = takeInt(rest, "from rank"); err != nil {
			return nil, err
		}
		if f.peer, rest, err = takeInt(rest, "to rank"); err != nil {
			return nil, err
		}
	case frameReject:
		if f.reason, rest, err = takeString(rest, "reason"); err != nil {
			return nil, err
		}
	default:
		return nil, decErr("unknown frame kind 0x%02x", f.kind)
	}
	if len(rest) != 0 {
		return nil, decErr("%d trailing bytes after frame", len(rest))
	}
	return f, nil
}

// appendBody encodes one message body. Unsupported types are an encode
// error (the transport turns it into a TransportError — it is a programming
// mistake, not a network condition).
func appendBody(buf []byte, body any, depth int) ([]byte, error) {
	if depth > maxEnvelopeDepth {
		return nil, &CodecError{Op: "encode", Msg: "envelope nesting too deep"}
	}
	switch v := body.(type) {
	case nil:
		return append(buf, kNil), nil
	case float64:
		return appendU64(append(buf, kFloat64), math.Float64bits(v)), nil
	case int:
		return appendU64(append(buf, kInt), uint64(int64(v))), nil
	case uint64:
		return appendU64(append(buf, kUint64), v), nil
	case bool:
		b := byte(0)
		if v {
			b = 1
		}
		return append(buf, kBool, b), nil
	case string:
		return appendString(append(buf, kString), v), nil
	case []float64:
		buf = appendU64(append(buf, kFloat64s), uint64(len(v)))
		for _, x := range v {
			buf = appendU64(buf, math.Float64bits(x))
		}
		return buf, nil
	case []int:
		buf = appendU64(append(buf, kInts), uint64(len(v)))
		for _, x := range v {
			buf = appendU64(buf, uint64(int64(x)))
		}
		return buf, nil
	case relEnvelope:
		buf = appendU64(append(buf, kRelEnv), v.seq)
		return appendBody(buf, v.body, depth+1)
	case faultEnvelope:
		buf = appendU64(append(buf, kFaultEnv), v.seq)
		buf = appendU64(buf, uint64(int64(v.drops)))
		b := byte(0)
		if v.dup {
			b = 1
		}
		buf = append(buf, b)
		buf = appendU64(buf, math.Float64bits(v.delay))
		return appendBody(buf, v.body, depth+1)
	case machine.Stats:
		buf = append(buf, kStats, byte(machine.NumPhases))
		buf = appendU64(buf, uint64(int64(v.CurrentPhase())))
		for i := range v.Phases {
			ps := &v.Phases[i]
			buf = appendU64(buf, math.Float64bits(ps.ComputeTime))
			buf = appendU64(buf, math.Float64bits(ps.CommTime))
			buf = appendU64(buf, uint64(ps.BytesSent))
			buf = appendU64(buf, uint64(ps.BytesRecv))
			buf = appendU64(buf, uint64(ps.MsgsSent))
			buf = appendU64(buf, uint64(ps.MsgsRecv))
		}
		return buf, nil
	}
	return nil, &CodecError{Op: "encode", Msg: fmt.Sprintf("unsupported body type %T", body)}
}

// decodeBody parses one body, returning the value and the remaining bytes.
// Lengths are validated against the remaining input before allocating, so a
// hostile length prefix cannot force a huge allocation.
func decodeBody(b []byte, depth int) (any, []byte, error) {
	if depth > maxEnvelopeDepth {
		return nil, nil, decErr("envelope nesting deeper than %d", maxEnvelopeDepth)
	}
	if len(b) < 1 {
		return nil, nil, decErr("body truncated")
	}
	kind, rest := b[0], b[1:]
	switch kind {
	case kNil:
		return nil, rest, nil
	case kFloat64:
		bits, rest, err := takeU64(rest, "float64")
		if err != nil {
			return nil, nil, err
		}
		return math.Float64frombits(bits), rest, nil
	case kInt:
		v, rest, err := takeU64(rest, "int")
		if err != nil {
			return nil, nil, err
		}
		return int(int64(v)), rest, nil
	case kUint64:
		v, rest, err := takeU64(rest, "uint64")
		if err != nil {
			return nil, nil, err
		}
		return v, rest, nil
	case kBool:
		if len(rest) < 1 {
			return nil, nil, decErr("bool truncated")
		}
		if rest[0] > 1 {
			return nil, nil, decErr("bool byte 0x%02x", rest[0])
		}
		return rest[0] == 1, rest[1:], nil
	case kString:
		s, rest, err := takeString(rest, "string body")
		if err != nil {
			return nil, nil, err
		}
		return s, rest, nil
	case kFloat64s:
		n, rest, err := takeLen(rest, 8, "[]float64")
		if err != nil {
			return nil, nil, err
		}
		// Pool-backed: the receiving protocol returns this buffer with
		// wire.Put once unpacked, exactly as it does on the goroutine
		// backend.
		out := wire.Get(n)
		for i := 0; i < n; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:])))
		}
		return out, rest[n*8:], nil
	case kInts:
		n, rest, err := takeLen(rest, 8, "[]int")
		if err != nil {
			return nil, nil, err
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(int64(binary.LittleEndian.Uint64(rest[i*8:])))
		}
		return out, rest[n*8:], nil
	case kRelEnv:
		seq, rest, err := takeU64(rest, "rel seq")
		if err != nil {
			return nil, nil, err
		}
		body, rest, err := decodeBody(rest, depth+1)
		if err != nil {
			return nil, nil, err
		}
		return relEnvelope{seq: seq, body: body}, rest, nil
	case kFaultEnv:
		var env faultEnvelope
		var err error
		if env.seq, rest, err = takeU64(rest, "fault seq"); err != nil {
			return nil, nil, err
		}
		if env.drops, rest, err = takeInt(rest, "fault drops"); err != nil {
			return nil, nil, err
		}
		if len(rest) < 1 {
			return nil, nil, decErr("fault dup truncated")
		}
		if rest[0] > 1 {
			return nil, nil, decErr("fault dup byte 0x%02x", rest[0])
		}
		env.dup, rest = rest[0] == 1, rest[1:]
		var bits uint64
		if bits, rest, err = takeU64(rest, "fault delay"); err != nil {
			return nil, nil, err
		}
		env.delay = math.Float64frombits(bits)
		if env.body, rest, err = decodeBody(rest, depth+1); err != nil {
			return nil, nil, err
		}
		return env, rest, nil
	case kStats:
		if len(rest) < 1 {
			return nil, nil, decErr("stats phase count truncated")
		}
		if int(rest[0]) != machine.NumPhases {
			return nil, nil, decErr("stats with %d phases, want %d", rest[0], machine.NumPhases)
		}
		rest = rest[1:]
		phase, rest, err := takeInt(rest, "stats phase")
		if err != nil {
			return nil, nil, err
		}
		if phase < 0 || phase >= machine.NumPhases {
			return nil, nil, decErr("stats current phase %d out of range", phase)
		}
		var st machine.Stats
		st.SetPhase(machine.Phase(phase))
		for i := range st.Phases {
			vals := make([]uint64, 6)
			for j := range vals {
				if vals[j], rest, err = takeU64(rest, "stats field"); err != nil {
					return nil, nil, err
				}
			}
			st.Phases[i] = machine.PhaseStats{
				ComputeTime: math.Float64frombits(vals[0]),
				CommTime:    math.Float64frombits(vals[1]),
				BytesSent:   int64(vals[2]),
				BytesRecv:   int64(vals[3]),
				MsgsSent:    int64(vals[4]),
				MsgsRecv:    int64(vals[5]),
			}
		}
		return st, rest, nil
	}
	return nil, nil, decErr("unknown body kind 0x%02x", kind)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendU64(buf, uint64(len(s)))
	return append(buf, s...)
}

func takeU64(b []byte, what string) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, decErr("%s truncated: %d bytes", what, len(b))
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeInt(b []byte, what string) (int, []byte, error) {
	v, rest, err := takeU64(b, what)
	if err != nil {
		return 0, nil, err
	}
	return int(int64(v)), rest, nil
}

// takeLen reads a u64 element count and validates that count*elemBytes fits
// in the remaining input.
func takeLen(b []byte, elemBytes int, what string) (int, []byte, error) {
	n, rest, err := takeU64(b, what+" length")
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest))/uint64(elemBytes) {
		return 0, nil, decErr("%s length %d exceeds remaining %d bytes", what, n, len(rest))
	}
	return int(n), rest, nil
}

func takeString(b []byte, what string) (string, []byte, error) {
	n, rest, err := takeU64(b, what+" length")
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, decErr("%s length %d exceeds remaining %d bytes", what, n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
