package comm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"picpar/internal/machine"
)

// netTestTemplate returns a NetConfig template with timeouts tightened so
// failure-path tests finish quickly while staying far above scheduler noise.
func netTestTemplate() NetConfig {
	return NetConfig{
		Params:            machine.CM5(),
		DialTimeout:       time.Second,
		DialBackoff:       10 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  3 * time.Second,
		DrainTimeout:      3 * time.Second,
		RendezvousTimeout: 20 * time.Second,
	}
}

// runNetSoak mirrors runSoak over real loopback sockets: every rank is a
// NetRank endpoint joined through a coordinator.
func runNetSoak(t *testing.T, p int, wrap func(Transport) Transport) []any {
	t.Helper()
	var digests []any
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	_, errs := LaunchLoopback(netTestTemplate(), p, wrap, func(tr Transport) {
		d := exerciseCollectives(tr)
		out := tr.Expose(d)
		if tr.Rank() == 0 {
			<-mu
			digests = out
			mu <- struct{}{}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}
	return digests
}

// TestNetCollectivesByteIdentical: the full collective surface over real
// TCP sockets produces outputs and simulated clocks byte-identical to the
// goroutine backend — the cost model does not know which wire it runs on.
func TestNetCollectivesByteIdentical(t *testing.T) {
	for _, p := range []int{2, 4} {
		baseline := runSoak(p, nil)
		got := runNetSoak(t, p, nil)
		for r := range baseline {
			if got[r] != baseline[r] {
				t.Errorf("p=%d rank %d: TCP output diverged from goroutine backend\n got %v\nwant %v",
					p, r, got[r], baseline[r])
			}
		}
	}
}

// TestNetClocksMatchGoroutineBackend: final simulated clocks agree exactly
// between backends — every τ/μ charge lands identically.
func TestNetClocksMatchGoroutineBackend(t *testing.T) {
	const p = 4
	goClocks := func() []any {
		var out []any
		w := newTestWorld(p, machine.CM5())
		w.RunWrapped(nil, func(tr Transport) {
			exerciseCollectives(tr)
			ts := tr.Expose(tr.Clock().Now())
			if tr.Rank() == 0 {
				out = ts
			}
		})
		return out
	}()
	var netClocks []any
	done := make(chan []any, 1)
	_, errs := LaunchLoopback(netTestTemplate(), p, nil, func(tr Transport) {
		exerciseCollectives(tr)
		ts := tr.Expose(tr.Clock().Now())
		if tr.Rank() == 0 {
			done <- ts
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}
	netClocks = <-done
	for r := range goClocks {
		if goClocks[r] != netClocks[r] {
			t.Errorf("rank %d: clock diverged: goroutine %v, tcp %v", r, goClocks[r], netClocks[r])
		}
	}
}

// TestNetChaosStackByteIdentical: the documented chaos stack
// Tracer ∘ Reliable ∘ Faulty composes unchanged over the TCP backend, with
// outputs byte-identical to the fault-free goroutine run. This exercises
// the codec on every envelope nesting the decorators produce.
func TestNetChaosStackByteIdentical(t *testing.T) {
	const p = 4
	baseline := runSoak(p, nil)
	for pi, plan := range soakPlans {
		faulty := NewFaulty(plan)
		rel := NewReliable(ReliableConfig{})
		tracer := NewTracer()
		got := runNetSoak(t, p, func(tr Transport) Transport {
			return tracer.Wrap(rel.Wrap(faulty.Wrap(tr)))
		})
		for r := range baseline {
			if got[r] != baseline[r] {
				t.Errorf("plan %d rank %d: output diverged under chaos stack over TCP\n got %v\nwant %v",
					pi, r, got[r], baseline[r])
			}
		}
		c := faulty.Counts()
		if c.Drops+c.Dups+c.Reorders+c.Delays == 0 {
			t.Errorf("plan %d: injected no faults over TCP — soak exercised nothing", pi)
		}
		if tracer.Total().MsgsSent == 0 {
			t.Errorf("plan %d: tracer observed no traffic over TCP", pi)
		}
	}
}

// TestNetPeerDeathDeliveryError: a rank that crashes mid-run surfaces at
// every peer blocked on it as a *DeliveryError naming rank, peer, tag and
// phase — within the failure-detection window, never as a hang.
func TestNetPeerDeathDeliveryError(t *testing.T) {
	const p = 3
	start := time.Now()
	_, errs := LaunchLoopback(netTestTemplate(), p, nil, func(tr Transport) {
		if tr.Rank() == 2 {
			panic("simulated rank crash")
		}
		// Ranks 0 and 1 wait on traffic the dead rank will never send.
		tr.Recv(2, TagUser)
	})
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Errorf("peer death took %v to surface — detection is not bounded", elapsed)
	}
	var rp *RankPanic
	if errs[2] == nil || !errors.As(errs[2], &rp) || rp.Value != "simulated rank crash" {
		t.Fatalf("crashed rank error = %v, want its own RankPanic", errs[2])
	}
	for _, r := range []int{0, 1} {
		if errs[r] == nil {
			t.Fatalf("rank %d survived losing its peer — Recv must have failed", r)
		}
		if !errors.As(errs[r], &rp) {
			t.Fatalf("rank %d error %T (%v), want *RankPanic", r, errs[r], errs[r])
		}
		de := AsDeliveryError(rp.Value)
		if de == nil {
			t.Fatalf("rank %d panic value %T (%v), want *DeliveryError", r, rp.Value, rp.Value)
		}
		if de.Rank != r || de.Peer != 2 || de.Tag != TagUser {
			t.Errorf("rank %d DeliveryError misnames the failure: %+v", r, de)
		}
		if de.Reason == "" {
			t.Errorf("rank %d DeliveryError carries no reason", r)
		}
	}
}

// TestNetDeliveryErrorThroughReliable: when the peer disappears permanently
// the underlying transport's DeliveryError propagates through a Reliable
// layer unmasked — reliability recovers lost messages, not lost processes.
func TestNetDeliveryErrorThroughReliable(t *testing.T) {
	rel := NewReliable(ReliableConfig{})
	_, errs := LaunchLoopback(netTestTemplate(), 2, rel.Wrap, func(tr Transport) {
		if tr.Rank() == 1 {
			panic("peer gone for good")
		}
		RecvInts(tr, 1, TagUser)
	})
	var rp *RankPanic
	if errs[0] == nil || !errors.As(errs[0], &rp) {
		t.Fatalf("rank 0 error = %v, want *RankPanic", errs[0])
	}
	de := AsDeliveryError(rp.Value)
	if de == nil {
		t.Fatalf("panic value %T (%v) through Reliable, want *DeliveryError", rp.Value, rp.Value)
	}
	if de.Peer != 1 {
		t.Errorf("DeliveryError names peer %d, want 1: %+v", de.Peer, de)
	}
}

// TestNetHeartbeatKeepsSilentPeerAlive: a rank busy in long local work
// sends no data, but its heartbeats must keep peers from declaring it dead
// — no false positives from silence alone.
func TestNetHeartbeatKeepsSilentPeerAlive(t *testing.T) {
	tmpl := netTestTemplate()
	tmpl.HeartbeatInterval = 50 * time.Millisecond
	tmpl.HeartbeatTimeout = 400 * time.Millisecond
	_, errs := LaunchLoopback(tmpl, 2, nil, func(tr Transport) {
		if tr.Rank() == 1 {
			time.Sleep(1200 * time.Millisecond) // 3× the heartbeat timeout
			SendInts(tr, 0, TagUser, []int{42})
			return
		}
		got := RecvInts(tr, 1, TagUser)
		if got[0] != 42 {
			t.Errorf("got %v after peer's long silence, want [42]", got)
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d failed despite heartbeats: %v", r, err)
		}
	}
}

// TestNetWatchdogFires: the per-endpoint watchdog converts a protocol-level
// deadlock (waiting on a healthy peer that will never send) into a
// diagnostic panic naming the stuck receive.
func TestNetWatchdogFires(t *testing.T) {
	tmpl := netTestTemplate()
	tmpl.Watchdog = 150 * time.Millisecond
	_, errs := LaunchLoopback(tmpl, 2, nil, func(tr Transport) {
		if tr.Rank() == 1 {
			time.Sleep(time.Second) // alive (heartbeating) but never sending
			return
		}
		tr.Recv(1, TagUser)
	})
	var rp *RankPanic
	if errs[0] == nil || !errors.As(errs[0], &rp) {
		t.Fatalf("rank 0 error = %v, want *RankPanic from the watchdog", errs[0])
	}
	msg, ok := rp.Value.(string)
	if !ok || !strings.Contains(msg, "watchdog") || !strings.Contains(msg, "rank 0") {
		t.Errorf("watchdog diagnostic = %v, want a string naming the stuck rank", rp.Value)
	}
}

// TestNetClosedEndpointTypedError: using an endpoint after its NetRank
// returned fails with *TransportError wrapping ErrClosedWorld, same as a
// leaked goroutine rank.
func TestNetClosedEndpointTypedError(t *testing.T) {
	leaked := make(chan Transport, 1)
	_, errs := LaunchLoopback(netTestTemplate(), 2, nil, func(tr Transport) {
		if tr.Rank() == 0 {
			leaked <- tr
		}
		Barrier(tr)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}
	tr := <-leaked
	defer func() {
		e := recover()
		err, ok := e.(error)
		var te *TransportError
		if !ok || !errors.As(err, &te) || !errors.Is(te, ErrClosedWorld) {
			t.Fatalf("panic %T (%v), want *TransportError wrapping ErrClosedWorld", e, e)
		}
	}()
	tr.Send(1, TagUser, nil, 0)
}

// TestNetRendezvousRejectsSizeMismatch: a rank built for a different world
// size is turned away with the coordinator's reason, not wedged into a
// half-valid mesh.
func TestNetRendezvousRejectsSizeMismatch(t *testing.T) {
	co, err := StartCoordinator("127.0.0.1:0", 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	go func() { _ = co.Serve() }() // never completes: only the misfit dials

	cfg := netTestTemplate()
	cfg.Coordinator = co.Addr()
	cfg.Rank, cfg.Size = 0, 3 // coordinator is assembling P=2
	_, rankErr := NetRank(cfg, nil, func(Transport) {})
	if rankErr == nil {
		t.Fatal("rank with mismatched world size was admitted")
	}
	if !strings.Contains(rankErr.Error(), "world size mismatch") {
		t.Errorf("rejection reason not surfaced to the rank: %v", rankErr)
	}
}

// TestNetRendezvousRejectsDuplicateRank: two processes claiming the same
// rank cannot both join; exactly one is rejected with a duplicate-identity
// reason and the world still assembles for the winner.
func TestNetRendezvousRejectsDuplicateRank(t *testing.T) {
	co, err := StartCoordinator("127.0.0.1:0", 2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	go func() { _ = co.Serve() }()

	run := func(rank int) error {
		cfg := netTestTemplate()
		cfg.Coordinator = co.Addr()
		cfg.Rank, cfg.Size = rank, 2
		cfg.RendezvousTimeout = 5 * time.Second
		_, err := NetRank(cfg, nil, func(tr Transport) { Barrier(tr) })
		return err
	}
	errc := make(chan error, 3)
	go func() { errc <- run(0) }()
	go func() { errc <- run(0) }() // imposter claiming the same rank
	go func() { errc <- run(1) }()
	var failures []error
	for i := 0; i < 3; i++ {
		if e := <-errc; e != nil {
			failures = append(failures, e)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("got %d failures (%v), want exactly the duplicate rejected", len(failures), failures)
	}
	// The loser is rejected either during assembly (duplicate identity) or
	// after it (late registration), depending on arrival order; both are
	// explicit rejections, never a silent timeout.
	msg := failures[0].Error()
	if !strings.Contains(msg, "duplicate identity") && !strings.Contains(msg, "already assembled") {
		t.Errorf("duplicate-rank rejection reason missing: %v", failures[0])
	}
}

// TestNetRankValidation: impossible configurations fail immediately with a
// plain error, before any socket is opened.
func TestNetRankValidation(t *testing.T) {
	if _, err := NetRank(NetConfig{Coordinator: "127.0.0.1:1", Rank: 5, Size: 2}, nil, func(Transport) {}); err == nil {
		t.Error("rank out of range was accepted")
	}
	if _, err := NetRank(NetConfig{Rank: 0, Size: 2}, nil, func(Transport) {}); err == nil {
		t.Error("missing coordinator address was accepted")
	}
}

// TestNetDialRetryExhausts: dialing a dead coordinator fails after the
// bounded retry budget with the attempt count in the error — not forever.
func TestNetDialRetryExhausts(t *testing.T) {
	cfg := netTestTemplate()
	cfg.Coordinator = "127.0.0.1:1" // nothing listens on port 1
	cfg.Rank, cfg.Size = 0, 2
	cfg.DialAttempts = 3
	cfg.DialBackoff = time.Millisecond
	start := time.Now()
	_, err := NetRank(cfg, nil, func(Transport) {})
	if err == nil {
		t.Fatal("dialing a dead coordinator succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error does not report the retry budget: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Errorf("retry exhaustion took %v — backoff is not capped", time.Since(start))
	}
}

// TestNetExposeCarriesStats: a machine.Stats ledger published through
// Expose crosses the wire intact — the end-of-run gathering RunRank relies
// on.
func TestNetExposeCarriesStats(t *testing.T) {
	const p = 2
	_, errs := LaunchLoopback(netTestTemplate(), p, nil, func(tr Transport) {
		tr.SetPhase(machine.PhasePush)
		tr.Compute(100)
		vals := tr.Expose(tr.Stats().Snapshot())
		for r, v := range vals {
			st, ok := v.(machine.Stats)
			if !ok {
				t.Errorf("rank %d received %T, want machine.Stats", tr.Rank(), v)
				continue
			}
			if st.Phases[machine.PhasePush].ComputeTime <= 0 {
				t.Errorf("rank %d: ledger from rank %d lost its compute time", tr.Rank(), r)
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}
}
