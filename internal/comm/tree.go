// Shared power-of-two/tree helpers of the collective schedules. Every
// binomial-tree collective (Bcast, ReduceFloat64, AllreduceSumFloat64s)
// derives its mask sequence from the same two functions, so the link set a
// collective may touch — rank pairs at distance ±2^k mod p, the "collective
// skeleton" every Topology guarantees (topology.go) — is defined in exactly
// one place.

package comm

// nextPow2 returns the smallest power of two ≥ n (and 1 for n ≤ 1). The
// binomial-tree collectives iterate masks 1, 2, … below this bound.
func nextPow2(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}

// highestSetBit returns the largest power of two ≤ v, and 0 for v ≤ 0 — the
// position of a virtual rank in its binomial tree (0 marks the root).
func highestSetBit(v int) int {
	hb := 0
	for b := 1; b <= v; b <<= 1 {
		if v&b != 0 {
			hb = b
		}
	}
	return hb
}
