package comm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"picpar/internal/machine"
)

// newTestWorld is the standard world constructor for this package's tests:
// the deadlock watchdog is armed so a stuck protocol fails with a
// diagnostic naming the blocked ranks and tags instead of hanging the test
// binary until the go test timeout. (This package cannot import commtest —
// it would be an import cycle — so it arms the watchdog directly through
// the same EnvWatchdog knob.)
func newTestWorld(p int, params machine.Params) *World {
	w := NewWorld(p, params)
	w.SetWatchdog(EnvWatchdog(10 * time.Second))
	return w
}

// expectWatchdogPanic runs fn and asserts it panics with a watchdog
// diagnostic containing every fragment. The panic surfaces as a *RankPanic
// wrapping the diagnostic string.
func expectWatchdogPanic(t *testing.T, fragments []string, fn func()) {
	t.Helper()
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected a watchdog panic, got none")
		}
		rp, ok := e.(*RankPanic)
		if !ok {
			t.Fatalf("panic value %T (%v), want *RankPanic", e, e)
		}
		msg, ok := rp.Value.(string)
		if !ok {
			t.Fatalf("rank panic value %T (%v), want string diagnostic", rp.Value, rp.Value)
		}
		if !strings.Contains(msg, "deadlock watchdog") {
			t.Fatalf("panic is not a watchdog diagnostic: %q", msg)
		}
		for _, frag := range fragments {
			if !strings.Contains(msg, frag) {
				t.Errorf("diagnostic %q missing %q", msg, frag)
			}
		}
	}()
	fn()
}

// TestWatchdogRecvDeadlock: two ranks each waiting to receive from the
// other with no sends in flight — the classic protocol deadlock. The
// watchdog must name who is blocked and on which tag.
func TestWatchdogRecvDeadlock(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t, []string{"blocked receiving tag 7"}, func() {
		w.Run(func(r Transport) {
			r.Recv(1-r.Rank(), TagUser+7)
		})
	})
}

// TestWatchdogSendDeadlock: a sender pushing past DefaultMailboxDepth with
// no receiver must trip the watchdog with a mailbox-full diagnostic, not
// block forever.
func TestWatchdogSendDeadlock(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t,
		[]string{"rank 0 blocked sending tag 3 to rank 1", "mailbox full"},
		func() {
			w.Run(func(r Transport) {
				if r.Rank() != 0 {
					// Rank 1 exits without ever receiving, so rank 0's
					// mailbox to it fills and stays full.
					return
				}
				for i := 0; i <= DefaultMailboxDepth; i++ {
					r.Send(1, TagUser+3, nil, 0)
				}
			})
		})
}

// TestWatchdogReportsAllBlockedRanks: the diagnostic of the tripping rank
// lists what the other blocked ranks were stuck on.
func TestWatchdogReportsAllBlockedRanks(t *testing.T) {
	w := NewWorld(3, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t, []string{"blocked receiving"}, func() {
		w.Run(func(r Transport) {
			// Every rank waits on its left neighbour; nobody ever sends.
			src := (r.Rank() + 2) % 3
			r.Recv(src, TagUser+1)
		})
	})
}

// TestEnvWatchdogParsing: every shape of PICPAR_WATCHDOG resolves as
// documented, and malformed values are rejected loudly — a warning naming
// the bad value, then the fallback — never a silent fallback.
func TestEnvWatchdogParsing(t *testing.T) {
	const fallback = 10 * time.Second
	cases := []struct {
		env  string
		want time.Duration
		warn bool
	}{
		{"", fallback, false},
		{"0", 0, false},
		{"off", 0, false},
		{"30s", 30 * time.Second, false},
		{"1m30s", 90 * time.Second, false},
		{"bogus", fallback, true},
		{"12", fallback, true},    // missing unit — ParseDuration rejects it
		{"-5s", fallback, true},   // negative: use "0"/"off" to disable
		{"5 sec", fallback, true}, // spaces and spelled-out units
		{"\t10s", fallback, true}, // leading whitespace is not trimmed
	}
	origWarnf := warnf
	defer func() { warnf = origWarnf }()
	for _, tc := range cases {
		var warnings []string
		warnf = func(format string, args ...any) {
			warnings = append(warnings, fmt.Sprintf(format, args...))
		}
		t.Setenv("PICPAR_WATCHDOG", tc.env)
		got := EnvWatchdog(fallback)
		if got != tc.want {
			t.Errorf("PICPAR_WATCHDOG=%q: got %v, want %v", tc.env, got, tc.want)
		}
		if tc.warn && len(warnings) == 0 {
			t.Errorf("PICPAR_WATCHDOG=%q: malformed value accepted silently", tc.env)
		}
		if !tc.warn && len(warnings) != 0 {
			t.Errorf("PICPAR_WATCHDOG=%q: unexpected warning %q", tc.env, warnings[0])
		}
		for _, w := range warnings {
			if !strings.Contains(w, fmt.Sprintf("%q", tc.env)) || !strings.Contains(w, "PICPAR_WATCHDOG") {
				t.Errorf("warning %q does not name the variable and bad value", w)
			}
		}
	}
}

// TestWatchdogDisabledByDefault: an unarmed world behaves exactly as
// before — here just a sanity check that normal traffic is unaffected and
// no watchdog machinery engages on the happy path.
func TestWatchdogHappyPathUnaffected(t *testing.T) {
	w := newTestWorld(4, machine.Zero())
	w.Run(func(r Transport) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		r.Send(next, TagUser, r.Rank(), IntBytes)
		body, _ := r.Recv(prev, TagUser)
		if body.(int) != prev {
			t.Errorf("rank %d: got %v from %d", r.Rank(), body, prev)
		}
		Barrier(r)
	})
}
