package comm

import (
	"strings"
	"testing"
	"time"

	"picpar/internal/machine"
)

// newTestWorld is the standard world constructor for this package's tests:
// the deadlock watchdog is armed so a stuck protocol fails with a
// diagnostic naming the blocked ranks and tags instead of hanging the test
// binary until the go test timeout. (This package cannot import commtest —
// it would be an import cycle — so it arms the watchdog directly through
// the same EnvWatchdog knob.)
func newTestWorld(p int, params machine.Params) *World {
	w := NewWorld(p, params)
	w.SetWatchdog(EnvWatchdog(10 * time.Second))
	return w
}

// expectWatchdogPanic runs fn and asserts it panics with a watchdog
// diagnostic containing every fragment. The panic surfaces as a *RankPanic
// wrapping the diagnostic string.
func expectWatchdogPanic(t *testing.T, fragments []string, fn func()) {
	t.Helper()
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected a watchdog panic, got none")
		}
		rp, ok := e.(*RankPanic)
		if !ok {
			t.Fatalf("panic value %T (%v), want *RankPanic", e, e)
		}
		msg, ok := rp.Value.(string)
		if !ok {
			t.Fatalf("rank panic value %T (%v), want string diagnostic", rp.Value, rp.Value)
		}
		if !strings.Contains(msg, "deadlock watchdog") {
			t.Fatalf("panic is not a watchdog diagnostic: %q", msg)
		}
		for _, frag := range fragments {
			if !strings.Contains(msg, frag) {
				t.Errorf("diagnostic %q missing %q", msg, frag)
			}
		}
	}()
	fn()
}

// TestWatchdogRecvDeadlock: two ranks each waiting to receive from the
// other with no sends in flight — the classic protocol deadlock. The
// watchdog must name who is blocked and on which tag.
func TestWatchdogRecvDeadlock(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t, []string{"blocked receiving tag 7"}, func() {
		w.Run(func(r Transport) {
			r.Recv(1-r.Rank(), TagUser+7)
		})
	})
}

// TestWatchdogSendDeadlock: a sender pushing past DefaultMailboxDepth with
// no receiver must trip the watchdog with a mailbox-full diagnostic, not
// block forever.
func TestWatchdogSendDeadlock(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t,
		[]string{"rank 0 blocked sending tag 3 to rank 1", "mailbox full"},
		func() {
			w.Run(func(r Transport) {
				if r.Rank() != 0 {
					// Rank 1 exits without ever receiving, so rank 0's
					// mailbox to it fills and stays full.
					return
				}
				for i := 0; i <= DefaultMailboxDepth; i++ {
					r.Send(1, TagUser+3, nil, 0)
				}
			})
		})
}

// TestWatchdogReportsAllBlockedRanks: the diagnostic of the tripping rank
// lists what the other blocked ranks were stuck on.
func TestWatchdogReportsAllBlockedRanks(t *testing.T) {
	w := NewWorld(3, machine.Zero())
	w.SetWatchdog(100 * time.Millisecond)
	expectWatchdogPanic(t, []string{"blocked receiving"}, func() {
		w.Run(func(r Transport) {
			// Every rank waits on its left neighbour; nobody ever sends.
			src := (r.Rank() + 2) % 3
			r.Recv(src, TagUser+1)
		})
	})
}

// TestWatchdogDisabledByDefault: an unarmed world behaves exactly as
// before — here just a sanity check that normal traffic is unaffected and
// no watchdog machinery engages on the happy path.
func TestWatchdogHappyPathUnaffected(t *testing.T) {
	w := newTestWorld(4, machine.Zero())
	w.Run(func(r Transport) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		r.Send(next, TagUser, r.Rank(), IntBytes)
		body, _ := r.Recv(prev, TagUser)
		if body.(int) != prev {
			t.Errorf("rank %d: got %v from %d", r.Rank(), body, prev)
		}
		Barrier(r)
	})
}
