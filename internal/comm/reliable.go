// The reliable-delivery decorator transport: wraps any Transport and makes
// message delivery exactly-once, in-order, even when the layer below it is
// a Faulty decorator perturbing the traffic. The protocol is the classic
// one — sequence-numbered envelopes, duplicate suppression, an out-of-order
// stash, and a capped exponential-backoff retry budget for retransmissions —
// projected onto the simulator's cost model: recovery costs simulated time
// (backoff waits plus one message cost per retransmission) charged through
// machine.Clock, and a message whose retransmission count exceeds the retry
// budget raises a terminal DeliveryError naming rank, peer, tag and phase
// instead of hanging.
//
// On a fault-free transport the decorator is free in simulated terms: the
// envelope is modelled as link-layer framing (no extra bytes, no extra
// messages, no clock charges), so wrapping a clean World in Reliable
// changes no experiment output.
//
// Stack order: Reliable wraps Faulty, never the other way around
// (Tracer ∘ Reliable ∘ Faulty ∘ World) — see DESIGN.md.

package comm

import (
	"sync"
)

// ReliableConfig tunes the recovery protocol. Durations are simulated
// seconds, the same unit as machine.Params costs.
type ReliableConfig struct {
	// Timeout is the first retransmission timeout. Default 1e-3.
	Timeout float64
	// Backoff multiplies the timeout after each failed attempt. Default 2.
	Backoff float64
	// MaxBackoff caps a single wait. Default 64×Timeout.
	MaxBackoff float64
	// MaxRetries bounds retransmissions per message before the layer gives
	// up with a DeliveryError. Default 8.
	MaxRetries int
}

// withDefaults fills zero fields with the documented defaults.
func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.Timeout <= 0 {
		c.Timeout = 1e-3
	}
	if c.Backoff <= 1 {
		c.Backoff = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 64 * c.Timeout
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	return c
}

// backoff returns the wait before retransmission attempt i (0-based).
func (c ReliableConfig) backoff(i int) float64 {
	w := c.Timeout
	for ; i > 0 && w < c.MaxBackoff; i-- {
		w *= c.Backoff
	}
	return min(w, c.MaxBackoff)
}

// RecoveryStats tallies what the reliability layer had to do.
type RecoveryStats struct {
	Retransmissions int64 // lost copies recovered by retransmission
	DupsSuppressed  int64 // duplicate (or stale) copies discarded
	ReordersHealed  int64 // messages stashed and delivered in order
	Failures        int64 // terminal failures (raised or collected)
	// WastedTime is the simulated seconds charged to recovery: backoff
	// waits plus the transit cost of every retransmitted copy.
	WastedTime float64
}

// relEnvelope is the wire format of the reliability layer: a per-link
// sequence number plus the application body. Like the fault envelope it is
// modelled as framing and adds no bytes to the cost model.
type relEnvelope struct {
	seq  uint64
	body any
}

// Reliable is the recovery decorator. Wrap every rank with it (outside any
// Faulty layer) via World.RunWrapped.
type Reliable struct {
	cfg ReliableConfig

	mu    sync.Mutex
	stats RecoveryStats
}

// NewReliable returns a reliability layer with the given configuration;
// zero fields take the documented defaults.
func NewReliable(cfg ReliableConfig) *Reliable {
	return &Reliable{cfg: cfg.withDefaults()}
}

// Wrap decorates t; pass a composition like
//
//	func(t comm.Transport) comm.Transport { return rel.Wrap(faulty.Wrap(t)) }
//
// to World.RunWrapped to install the full chaos stack.
func (r *Reliable) Wrap(t Transport) Transport {
	return &reliableTransport{
		Transport: t,
		rel:       r,
		sendSeq:   make(map[linkKey]uint64),
		recvSeq:   make(map[linkKey]uint64),
		stash:     make(map[stashKey]stashed),
	}
}

// Stats returns the recovery tallies accumulated so far across all ranks.
func (r *Reliable) Stats() RecoveryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// stashKey identifies one out-of-order message waiting for its turn.
type stashKey struct {
	peer int
	tag  Tag
	seq  uint64
}

// stashed is a payload parked in the out-of-order stash.
type stashed struct {
	body   any
	nbytes int
}

// reliableTransport is the per-rank recovery endpoint.
type reliableTransport struct {
	Transport
	rel     *Reliable
	sendSeq map[linkKey]uint64
	recvSeq map[linkKey]uint64
	stash   map[stashKey]stashed
	// collecting, when non-nil, records terminal failures instead of
	// raising them (see Degradable).
	collecting *[]*DeliveryError
}

// Unwrap implements Wrapper.
func (t *reliableTransport) Unwrap() Transport { return t.Transport }

// Send implements Transport: every payload (self-sends included, for a
// uniform wire format) is wrapped in a sequence-numbered envelope.
func (t *reliableTransport) Send(dst int, tag Tag, body any, nbytes int) {
	key := linkKey{dst, tag}
	seq := t.sendSeq[key]
	t.sendSeq[key] = seq + 1
	t.Transport.Send(dst, tag, relEnvelope{seq: seq, body: body}, nbytes)
}

// recvMeta pulls the next message off the (src, tag) stream together with
// its fault metadata, whether or not a fault layer sits below.
func (t *reliableTransport) recvMeta(src int, tag Tag) (faultMeta, any, int) {
	if er, ok := t.Transport.(envelopeReceiver); ok {
		return er.recvEnvelope(src, tag)
	}
	body, nbytes := t.Transport.Recv(src, tag)
	return faultMeta{inOrder: true}, body, nbytes
}

// Recv implements Transport: it delivers payloads exactly once in sequence
// order, recovering drops (charging simulated retransmission time),
// suppressing duplicates, and healing reorders through the stash.
func (t *reliableTransport) Recv(src int, tag Tag) (any, int) {
	key := linkKey{src, tag}
	for {
		expect := t.recvSeq[key]
		if st, ok := t.stash[stashKey{src, tag, expect}]; ok {
			delete(t.stash, stashKey{src, tag, expect})
			t.recvSeq[key] = expect + 1
			return st.body, st.nbytes
		}
		meta, raw, nbytes := t.recvMeta(src, tag)
		env, ok := raw.(relEnvelope)
		if !ok {
			// A peer outside the reliability layer sent a bare payload;
			// pass it through untouched (degenerate but well-defined).
			return raw, nbytes
		}
		if meta.dup {
			t.rel.note(func(s *RecoveryStats) { s.DupsSuppressed++ })
			continue
		}
		if meta.drops > 0 {
			t.recover(src, tag, meta, nbytes)
		}
		switch {
		case env.seq == expect:
			t.recvSeq[key] = expect + 1
			return env.body, nbytes
		case env.seq > expect:
			t.stash[stashKey{src, tag, env.seq}] = stashed{env.body, nbytes}
			t.rel.note(func(s *RecoveryStats) { s.ReordersHealed++ })
		default:
			// Stale copy of an already-delivered sequence number.
			t.rel.note(func(s *RecoveryStats) { s.DupsSuppressed++ })
		}
	}
}

// recover charges the simulated cost of retransmitting a dropped message:
// one capped-exponential-backoff wait plus one transit cost per lost copy.
// If the loss count exceeds the retry budget the failure is terminal — a
// DeliveryError, raised or (inside CollectFailures) recorded.
func (t *reliableTransport) recover(src int, tag Tag, meta faultMeta, nbytes int) {
	cfg := t.rel.cfg
	attempts := min(meta.drops, cfg.MaxRetries)
	wasted := 0.0
	for i := 0; i < attempts; i++ {
		wasted += cfg.backoff(i) + t.Params().MsgCost(nbytes)
	}
	t.Clock().Advance(wasted)
	t.rel.note(func(s *RecoveryStats) {
		s.Retransmissions += int64(attempts)
		s.WastedTime += wasted
	})
	if meta.drops > cfg.MaxRetries {
		de := &DeliveryError{
			Rank: t.Rank(), Peer: src, Tag: tag, Phase: t.Stats().CurrentPhase(),
			Attempts: meta.drops, Reason: "retries exhausted",
		}
		t.rel.note(func(s *RecoveryStats) { s.Failures++ })
		if t.collecting != nil {
			*t.collecting = append(*t.collecting, de)
			return
		}
		panic(de)
	}
}

// note applies fn to the shared stats under the lock.
func (r *Reliable) note(fn func(*RecoveryStats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// CollectFailures implements Degradable: fn runs with terminal delivery
// failures recorded and returned instead of raised. The lossless substrate
// still delivers every payload, so the exchange completes structurally and
// the SPMD world stays synchronised; the caller inspects the returned
// failures and decides what to discard (e.g. a redistribution result).
func (t *reliableTransport) CollectFailures(fn func()) []*DeliveryError {
	var errs []*DeliveryError
	prev := t.collecting
	t.collecting = &errs
	defer func() { t.collecting = prev }()
	fn()
	return errs
}

// ensure interface conformance at compile time.
var (
	_ Wrapper    = (*reliableTransport)(nil)
	_ Degradable = (*reliableTransport)(nil)
	_ Wrapper    = (*faultyTransport)(nil)
	_ flusher    = (*faultyTransport)(nil)
)
