package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"picpar/internal/machine"
)

// TestCloseRacesInFlightTraffic: World.Close fired concurrently with ranks
// mid-Send/Recv must resolve every rank into one of exactly two outcomes —
// clean completion (the operation won the race) or a typed
// *TransportError wrapping ErrClosedWorld (teardown won) — never a hang,
// never an untyped crash. Run under -race this also proves the teardown
// flag is data-race-free against the hot path.
func TestCloseRacesInFlightTraffic(t *testing.T) {
	for round := 0; round < 6; round++ {
		w := NewWorld(4, machine.Zero())
		// Ranks whose peers lost the race block until the watchdog frees
		// them, so its duration bounds each round's wall time; a real hang
		// would still fail loudly rather than time out the binary.
		w.SetWatchdog(500 * time.Millisecond)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 50 * time.Microsecond)
			w.Close()
		}()
		func() {
			defer func() {
				e := recover()
				if e == nil {
					return // every rank finished before Close landed
				}
				rp, ok := e.(*RankPanic)
				if !ok {
					t.Fatalf("round %d: panic %T (%v), want *RankPanic", round, e, e)
				}
				err, ok := rp.Value.(error)
				var te *TransportError
				if !ok || !errors.As(err, &te) || !errors.Is(te, ErrClosedWorld) {
					t.Fatalf("round %d: rank %d failed with %v, want *TransportError wrapping ErrClosedWorld",
						round, rp.Rank, rp.Value)
				}
			}()
			w.Run(func(r Transport) {
				next := (r.Rank() + 1) % r.Size()
				prev := (r.Rank() - 1 + r.Size()) % r.Size()
				for i := 0; i < 200; i++ {
					SendInts(r, next, TagUser, []int{i})
					RecvInts(r, prev, TagUser)
				}
			})
		}()
		wg.Wait()
	}
}

// TestNetShutdownRacesInFlightTraffic is the TCP-backend half of the close
// race: one rank tears down (returns early) while its peers still have
// traffic in flight. Peers must resolve into a typed *DeliveryError (the
// peer departed) — never a hang and never a corrupted frame.
func TestNetShutdownRacesInFlightTraffic(t *testing.T) {
	tmpl := netTestTemplate()
	_, errs := LaunchLoopback(tmpl, 3, nil, func(tr Transport) {
		if tr.Rank() == 2 {
			// Participates briefly, then leaves the world early and cleanly
			// while ranks 0 and 1 still expect it in the ring.
			SendInts(tr, 0, TagUser, []int{99})
			return
		}
		next := (tr.Rank() + 1) % 3
		prev := (tr.Rank() + 2) % 3
		for i := 0; i < 100; i++ {
			SendInts(tr, next, TagUser, []int{i})
			RecvInts(tr, prev, TagUser)
		}
	})
	if errs[2] != nil {
		t.Fatalf("early-leaving rank failed its own teardown: %v", errs[2])
	}
	// Rank 1 receives from rank 0 only, so it may fail on either peer
	// depending on scheduling; rank 0 must eventually starve on rank 2.
	sawDelivery := false
	for r := 0; r < 2; r++ {
		if errs[r] == nil {
			continue
		}
		var rp *RankPanic
		if !errors.As(errs[r], &rp) {
			t.Fatalf("rank %d error %T (%v), want *RankPanic", r, errs[r], errs[r])
		}
		if de := AsDeliveryError(rp.Value); de != nil {
			sawDelivery = true
			if de.Reason == "" {
				t.Errorf("rank %d DeliveryError carries no reason: %+v", r, de)
			}
		} else {
			t.Errorf("rank %d failed with %v, want a *DeliveryError", r, rp.Value)
		}
	}
	if !sawDelivery {
		t.Error("no surviving rank diagnosed the departed peer")
	}
}

// TestReliableExhaustionPeerVanishedGoroutine: the goroutine-backend half
// of "Reliable retry exhaustion when the peer disappears permanently". A
// link whose every copy is dropped (the Faulty model of a vanished peer)
// must exhaust the retry budget into a DeliveryError naming the attempts —
// under an armed watchdog, so a hang would fail differently and loudly.
func TestReliableExhaustionPeerVanishedGoroutine(t *testing.T) {
	plan := FaultPlan{Seed: 11, DropProb: 1, MaxDropAttempts: 10}
	defer func() {
		de := AsDeliveryError(recover())
		if de == nil {
			t.Fatal("expected a DeliveryError when every retry is swallowed")
		}
		if de.Reason != "retries exhausted" {
			t.Errorf("reason %q, want \"retries exhausted\"", de.Reason)
		}
		if de.Attempts < 3 {
			t.Errorf("attempts %d, want the full budget spent", de.Attempts)
		}
	}()
	faulty := NewFaulty(plan)
	rel := NewReliable(ReliableConfig{MaxRetries: 2})
	w := NewWorld(2, machine.CM5())
	w.SetWatchdog(5 * time.Second)
	w.RunWrapped(func(tr Transport) Transport { return rel.Wrap(faulty.Wrap(tr)) },
		func(tr Transport) {
			if tr.Rank() == 0 {
				SendInts(tr, 1, TagUser, []int{1})
			} else {
				RecvInts(tr, 0, TagUser)
			}
		})
}

// TestReliableExhaustionPeerVanishedNet is the same contract over real TCP
// sockets: the chaos stack's retry exhaustion stays a typed, bounded
// failure when the envelopes cross a real wire.
func TestReliableExhaustionPeerVanishedNet(t *testing.T) {
	plan := FaultPlan{Seed: 11, DropProb: 1, MaxDropAttempts: 10}
	faulty := NewFaulty(plan)
	rel := NewReliable(ReliableConfig{MaxRetries: 2})
	tmpl := netTestTemplate()
	tmpl.Watchdog = 5 * time.Second
	_, errs := LaunchLoopback(tmpl, 2, func(tr Transport) Transport {
		return rel.Wrap(faulty.Wrap(tr))
	}, func(tr Transport) {
		if tr.Rank() == 0 {
			SendInts(tr, 1, TagUser, []int{1})
		} else {
			RecvInts(tr, 0, TagUser)
		}
	})
	var rp *RankPanic
	if errs[1] == nil || !errors.As(errs[1], &rp) {
		t.Fatalf("rank 1 error = %v, want *RankPanic", errs[1])
	}
	de := AsDeliveryError(rp.Value)
	if de == nil {
		t.Fatalf("rank 1 panic value %v, want *DeliveryError", rp.Value)
	}
	if de.Reason != "retries exhausted" {
		t.Errorf("reason %q over TCP, want \"retries exhausted\"", de.Reason)
	}
}
