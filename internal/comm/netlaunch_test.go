package comm

import (
	"errors"
	"os/exec"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// elasticTestTemplate is netTestTemplate with the rejoin backoff tightened
// for fast recovery-path tests.
func elasticTestTemplate() NetConfig {
	tmpl := netTestTemplate()
	tmpl.RejoinBackoff = 10 * time.Millisecond
	tmpl.RejoinMaxBackoff = 100 * time.Millisecond
	return tmpl
}

// TestSuperviseRanksStartFailureAggregates: when a later rank fails to
// start, the already-running siblings are killed, drained, and every one
// of them appears in the LaunchError — multi-rank death is fully
// attributed even on the launch path.
func TestSuperviseRanksStartFailureAggregates(t *testing.T) {
	procs := []*RankProc{
		{Rank: 0, Cmd: exec.Command("sleep", "30")},
		{Rank: 1, Cmd: exec.Command("sleep", "30")},
		{Rank: 2, Cmd: exec.Command("/nonexistent/picpar-no-such-binary")},
	}
	err := SuperviseRanks(procs, time.Second)
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T (%v), want *LaunchError", err, err)
	}
	if len(le.Failures) != 3 {
		t.Fatalf("%d failures recorded, want 3 (start failure + 2 killed siblings): %v", len(le.Failures), le)
	}
	for i, f := range le.Failures {
		if f.Rank != i {
			t.Errorf("failure %d names rank %d — not sorted by rank", i, f.Rank)
		}
		wantKilled := i != 2
		if f.Killed != wantKilled {
			t.Errorf("rank %d: Killed=%v, want %v", f.Rank, f.Killed, wantKilled)
		}
		if f.Err == nil {
			t.Errorf("rank %d: failure with nil error", f.Rank)
		}
	}
}

// TestSuperviseRanksElasticRespawns: an abnormal exit while the world is
// in flight is respawned (not failed), and the run ends cleanly once every
// process — replacement included — exits 0.
func TestSuperviseRanksElasticRespawns(t *testing.T) {
	var respawns atomic.Int64
	procs := []*RankProc{
		{Rank: 0, Cmd: exec.Command("sleep", "0.5")},
		{Rank: 1, Cmd: exec.Command("sh", "-c", "exit 3")},
	}
	respawn := func(rank int) (*RankProc, error) {
		respawns.Add(1)
		return &RankProc{Rank: rank, Cmd: exec.Command("true")}, nil
	}
	if err := SuperviseRanksElastic(procs, time.Second, respawn, 4); err != nil {
		t.Fatalf("elastic supervision failed: %v", err)
	}
	if got := respawns.Load(); got != 1 {
		t.Errorf("%d respawns, want 1", got)
	}
}

// TestSuperviseRanksElasticBudgetExhausted: with no respawn budget the
// elastic supervisor degrades to the grace-then-kill aggregation.
func TestSuperviseRanksElasticBudgetExhausted(t *testing.T) {
	procs := []*RankProc{
		{Rank: 0, Cmd: exec.Command("sleep", "30")},
		{Rank: 1, Cmd: exec.Command("sh", "-c", "exit 3")},
	}
	respawn := func(rank int) (*RankProc, error) {
		return &RankProc{Rank: rank, Cmd: exec.Command("true")}, nil
	}
	err := SuperviseRanksElastic(procs, 200*time.Millisecond, respawn, 0)
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T (%v), want *LaunchError", err, err)
	}
	var sawDead, sawKilled bool
	for _, f := range le.Failures {
		switch {
		case f.Rank == 1 && !f.Killed:
			sawDead = true
		case f.Rank == 0 && f.Killed:
			sawKilled = true
		}
	}
	if !sawDead || !sawKilled {
		t.Errorf("failures %v: want rank 1 dead and rank 0 killed by supervisor", le.Failures)
	}
}

// TestSuperviseRanksElasticBudgetConsumedThenFails: a rank that keeps
// dying consumes the whole respawn budget (every respawn really runs),
// and the exit after the last budgeted respawn escalates to a typed
// *LaunchError that names the failing rank, the surviving killed sibling,
// and the world description the caller attached — and the supervisor
// leaves no goroutines behind.
func TestSuperviseRanksElasticBudgetConsumedThenFails(t *testing.T) {
	before := runtime.NumGoroutine()

	const budget = 2
	var respawns atomic.Int64
	procs := []*RankProc{
		{Rank: 0, Cmd: exec.Command("sleep", "30")},
		{Rank: 1, Cmd: exec.Command("sh", "-c", "exit 3")},
	}
	respawn := func(rank int) (*RankProc, error) {
		respawns.Add(1)
		return &RankProc{Rank: rank, Cmd: exec.Command("sh", "-c", "exit 3")}, nil
	}
	err := SuperviseRanksElastic(procs, 200*time.Millisecond, respawn, budget,
		"job j-test, P=2")
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T (%v), want *LaunchError", err, err)
	}
	if got := respawns.Load(); got != budget {
		t.Errorf("%d respawns, want the full budget of %d", got, budget)
	}
	if le.World != "job j-test, P=2" {
		t.Errorf("LaunchError.World = %q, want the job description", le.World)
	}
	if !strings.Contains(le.Error(), "job j-test") || !strings.Contains(le.Error(), "rank 1") {
		t.Errorf("error does not name the job and rank: %v", le)
	}
	var sawDead, sawKilled bool
	for _, f := range le.Failures {
		switch {
		case f.Rank == 1 && !f.Killed && f.Err != nil:
			sawDead = true
		case f.Rank == 0 && f.Killed:
			sawKilled = true
		}
	}
	if !sawDead || !sawKilled {
		t.Errorf("failures %v: want rank 1 dead after exhausted budget and rank 0 killed", le.Failures)
	}

	// Reaper goroutines must all have drained; allow the runtime a moment
	// to retire them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d before supervision, %d after", before, after)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNetRankElasticRejoins: a rank whose world dies under it (a peer
// panicked a *DeliveryError and tore down abruptly) parks, re-registers
// through the elastic rendezvous and completes on the rebuilt world — and
// the failure cascades, so its peer rejoins too.
func TestNetRankElasticRejoins(t *testing.T) {
	var attempts atomic.Int64
	var fired atomic.Bool
	fn := func(tr Transport) {
		attempts.Add(1)
		if tr.Rank() == 1 && fired.CompareAndSwap(false, true) {
			panic(&DeliveryError{Rank: 1, Peer: 0, Tag: TagUser, Reason: "chaos: injected rank death"})
		}
		peer := 1 - tr.Rank()
		tr.Send(peer, TagUser, float64(tr.Rank()), 8)
		body, _ := tr.Recv(peer, TagUser)
		if got := body.(float64); got != float64(peer) {
			panic("exchange corrupted")
		}
	}
	_, errs := LaunchLoopbackElastic(elasticTestTemplate(), 2, nil, fn)
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", rank, err)
		}
	}
	if !fired.Load() {
		t.Fatal("injection never fired")
	}
	if got := attempts.Load(); got != 4 {
		t.Errorf("%d rank attempts, want 4 (both ranks run twice)", got)
	}
}

// TestNetRankElasticDoesNotMaskRealFailures: a rank panic that is not a
// delivery failure must propagate immediately, not burn rejoin attempts.
func TestNetRankElasticDoesNotMaskRealFailures(t *testing.T) {
	var attempts atomic.Int64
	fn := func(tr Transport) {
		attempts.Add(1)
		if tr.Rank() == 1 {
			panic("a real bug")
		}
		tr.Recv(1, TagUser) // fails when rank 1 tears down → rank 0 rejoins
	}
	// Rank 0 will rejoin and wait for a world that can never re-assemble
	// (rank 1 is gone for good); a short rendezvous window bounds the test.
	tmpl := elasticTestTemplate()
	tmpl.RendezvousTimeout = time.Second
	_, errs := LaunchLoopbackElastic(tmpl, 2, nil, fn)
	var rp *RankPanic
	if !errors.As(errs[1], &rp) || rp.Value != "a real bug" {
		t.Fatalf("rank 1 error %v, want its own RankPanic", errs[1])
	}
}
