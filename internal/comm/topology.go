// Topology descriptors: which rank pairs of a world own a direct
// communication link. The descriptor is consulted in two places — the
// goroutine World and the TCP netTransport enforce it on every Send/Recv
// (an out-of-topology message is a typed *TransportError wrapping a
// *TopologyError, never a silent success), and the TCP backend additionally
// consults it at assembly time so a neighbor-sparse world dials O(P·k)
// sockets instead of the O(P²) full mesh.
//
// Every descriptor's link set includes the COLLECTIVE SKELETON: the rank
// pairs at distance ±2^k mod p for 2^k < p. All collectives in this package
// route exclusively over those links (dissemination barrier and binomial
// trees at ±2^k, ring allgather and linear scan at ±1), so every collective
// runs on every topology with a schedule — and therefore modelled τ/μ
// charges — identical to the full mesh. Restricting a topology restricts
// who may exchange bulk point-to-point data, never how the world
// synchronises. At small p the skeleton is itself the full mesh (p ≤ 6);
// sparsity pays off as p grows: the skeleton is O(P·log P) links against
// the mesh's O(P²).

package comm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Topology names, as reported by Topology.Name and used in diagnostics.
const (
	TopologyFullMesh       = "full-mesh"
	TopologyRing           = "ring"
	TopologyNeighborSparse = "neighbor-sparse"
)

// ErrOutOfTopology is the sentinel every *TopologyError unwraps to, so
// callers can errors.Is a refused send without matching the formatted text.
var ErrOutOfTopology = errors.New("out of topology")

// TopologyError reports a message (or dial) refused because the two ranks
// own no link under the world's topology. It names the topology and the
// offending rank's full peer set, so a misconfigured sparse world fails
// with an actionable diagnostic instead of a generic connection failure.
type TopologyError struct {
	Topology string // descriptor name
	Rank     int    // the rank attempting the operation
	Peer     int    // the rank it has no link to
	Peers    []int  // Rank's complete peer set under the topology
}

// Error implements error.
func (e *TopologyError) Error() string {
	return fmt.Sprintf("rank %d has no link to rank %d under the %s topology (peers of %d: %v)",
		e.Rank, e.Peer, e.Topology, e.Rank, e.Peers)
}

// Unwrap makes errors.Is(err, ErrOutOfTopology) work.
func (e *TopologyError) Unwrap() error { return ErrOutOfTopology }

// Topology is an immutable link-set descriptor over a world of p ranks.
// Links are undirected and every rank is linked to itself. The zero value
// is not valid; use the constructors. A nil *Topology everywhere means
// "full mesh, unenforced" — the historical any-to-any behaviour.
type Topology struct {
	name  string
	p     int
	conn  []bool  // p×p symmetric adjacency, diagonal true
	peers [][]int // sorted peer lists, self excluded
	full  bool    // every pair linked (enforcement is then a no-op)
}

// newTopology finalises a descriptor from its adjacency matrix: symmetrise,
// set the diagonal, union in the collective skeleton, derive peer lists.
func newTopology(name string, p int, conn []bool) *Topology {
	if p <= 0 {
		panic(fmt.Sprintf("comm: topology %q with p=%d", name, p))
	}
	for i := 0; i < p; i++ {
		conn[i*p+i] = true
		for k := 1; k < p; k <<= 1 {
			conn[i*p+(i+k)%p] = true
			conn[i*p+(i-k+p)%p] = true
		}
	}
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			if conn[a*p+b] || conn[b*p+a] {
				conn[a*p+b] = true
				conn[b*p+a] = true
			}
		}
	}
	tp := &Topology{name: name, p: p, conn: conn, full: true}
	tp.peers = make([][]int, p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			if b == a {
				continue
			}
			if conn[a*p+b] {
				tp.peers[a] = append(tp.peers[a], b)
			} else {
				tp.full = false
			}
		}
		sort.Ints(tp.peers[a])
	}
	return tp
}

// NewFullMesh describes the any-to-any topology over p ranks: every pair
// linked. Enforcement never fires; the descriptor exists so the traffic
// accounting has a uniform baseline to compare sparse worlds against.
func NewFullMesh(p int) *Topology {
	conn := make([]bool, p*p)
	for i := range conn {
		conn[i] = true
	}
	return newTopology(TopologyFullMesh, p, conn)
}

// NewRing describes the ring topology: links at ±1, unioned with the
// collective skeleton. This is the data plane of the systolic exchange —
// bulk payloads pulse around the ±1 links while the collectives keep their
// skeleton schedules.
func NewRing(p int) *Topology {
	return newTopology(TopologyRing, p, make([]bool, p*p))
}

// NewNeighborSparse describes the stencil topology: ranks a and b are
// linked iff adjacent(a, b) (the geometry's AdjacentRanks predicate — the
// CIC footprint and halo stencil only ever touch adjacent partitions),
// unioned with the collective skeleton. The predicate is taken as given and
// symmetrised; it is never called for a == b.
func NewNeighborSparse(p int, adjacent func(a, b int) bool) *Topology {
	conn := make([]bool, p*p)
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			if adjacent(a, b) || adjacent(b, a) {
				conn[a*p+b] = true
				conn[b*p+a] = true
			}
		}
	}
	return newTopology(TopologyNeighborSparse, p, conn)
}

// Name returns the descriptor's name ("full-mesh", "ring", …).
func (tp *Topology) Name() string { return tp.name }

// Size returns the world size the descriptor was built for.
func (tp *Topology) Size() int { return tp.p }

// IsFullMesh reports whether every pair of ranks is linked (enforcement and
// sparse assembly then degenerate to the historical any-to-any behaviour).
func (tp *Topology) IsFullMesh() bool { return tp.full }

// Connected reports whether ranks a and b own a direct link. Out-of-range
// ranks are unconnected (the transport's own range check fires first with
// its usual diagnostic).
func (tp *Topology) Connected(a, b int) bool {
	if a < 0 || a >= tp.p || b < 0 || b >= tp.p {
		return false
	}
	return tp.conn[a*tp.p+b]
}

// Peers returns rank r's sorted peer list (self excluded). The slice is
// shared: callers must not mutate it.
func (tp *Topology) Peers(r int) []int { return tp.peers[r] }

// NumLinks returns the number of undirected links between distinct ranks —
// exactly the number of TCP connections a world assembled under this
// topology opens (each linked pair shares one socket).
func (tp *Topology) NumLinks() int {
	n := 0
	for a := 0; a < tp.p; a++ {
		n += len(tp.peers[a])
	}
	return n / 2
}

// Digest is a stable fingerprint of the descriptor (name, size, link set).
// The TCP rendezvous requires every rank of a world to present the same
// digest, so a rank assembled with a mismatched topology is rejected at
// registration instead of deadlocking against peers it cannot reach. A nil
// topology's digest is 0 by convention (see NetConfig.Topology).
func (tp *Topology) Digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d:", tp.name, tp.p)
	var acc, nbits byte
	for _, c := range tp.conn {
		acc <<= 1
		if c {
			acc |= 1
		}
		if nbits++; nbits == 8 {
			h.Write([]byte{acc})
			acc, nbits = 0, 0
		}
	}
	if nbits > 0 {
		h.Write([]byte{acc})
	}
	return h.Sum64()
}

// errOutOf builds the typed refusal for a message from rank a to rank b.
func (tp *Topology) errOutOf(a, b int) *TopologyError {
	return &TopologyError{Topology: tp.name, Rank: a, Peer: b, Peers: tp.peers[a]}
}

// topologyDigest is Digest with the nil convention applied.
func topologyDigest(tp *Topology) uint64 {
	if tp == nil {
		return 0
	}
	return tp.Digest()
}
