package comm

import (
	"math"
	"testing"

	"picpar/internal/machine"
)

// testPs is the set of world sizes exercised by most tests: 1, 2, a
// power of two, and two awkward non-powers.
var testPs = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestSendRecvPingPong(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendFloat64s(1, TagUser, []float64{1, 2, 3})
			got := r.RecvFloat64s(1, TagUser)
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("rank 0 got %v, want [42]", got)
			}
		} else {
			got := r.RecvFloat64s(0, TagUser)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 got %v", got)
			}
			r.SendFloat64s(0, TagUser, []float64{42})
		}
	})
}

func TestSendRecvTagMatching(t *testing.T) {
	// Messages with a different tag must be set aside and delivered to a
	// later matching Recv in FIFO order.
	w := NewWorld(2, machine.Zero())
	w.Run(func(r *Rank) {
		const tagA, tagB = TagUser, TagUser + 1
		if r.ID == 0 {
			r.SendInts(1, tagA, []int{1})
			r.SendInts(1, tagB, []int{2})
			r.SendInts(1, tagA, []int{3})
		} else {
			if got := r.RecvInts(0, tagB); got[0] != 2 {
				t.Errorf("tagB got %v, want [2]", got)
			}
			if got := r.RecvInts(0, tagA); got[0] != 1 {
				t.Errorf("first tagA got %v, want [1]", got)
			}
			if got := r.RecvInts(0, tagA); got[0] != 3 {
				t.Errorf("second tagA got %v, want [3]", got)
			}
		}
	})
}

func TestSendChargesCostModel(t *testing.T) {
	params := machine.Params{Tau: 10, MuPerByte: 1, Delta: 2}
	w := NewWorld(2, params)
	ws := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagUser, nil, 16) // cost 10 + 16 = 26
			r.Compute(3)                // cost 6
		} else {
			r.Recv(0, TagUser)
		}
	})
	r0 := ws.Ranks[0].Total()
	if r0.CommTime != 26 {
		t.Errorf("sender comm time = %v, want 26", r0.CommTime)
	}
	if r0.ComputeTime != 6 {
		t.Errorf("sender compute time = %v, want 6", r0.ComputeTime)
	}
	if r0.BytesSent != 16 || r0.MsgsSent != 1 {
		t.Errorf("sender counters: %+v", r0)
	}
	r1 := ws.Ranks[1].Total()
	if r1.BytesRecv != 16 || r1.MsgsRecv != 1 || r1.CommTime != 26 {
		t.Errorf("receiver counters: %+v", r1)
	}
}

func TestRecvIsCausal(t *testing.T) {
	// Receiver's clock must end at least at sender's post-send clock plus
	// the receive cost, even if the receiver did no work of its own.
	params := machine.Params{Tau: 5, MuPerByte: 0, Delta: 1}
	w := NewWorld(2, params)
	clocks := make([]float64, 2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Compute(100) // clock 100
			r.Send(1, TagUser, nil, 0)
		} else {
			r.Recv(0, TagUser)
		}
		clocks[r.ID] = r.Clock.Now()
	})
	// Sender: 100 + 5 = 105. Receiver: max(0, 105) + 5 = 110.
	if clocks[0] != 105 {
		t.Errorf("sender clock = %v, want 105", clocks[0])
	}
	if clocks[1] != 110 {
		t.Errorf("receiver clock = %v, want 110", clocks[1])
	}
}

func TestSelfSendRecv(t *testing.T) {
	w := NewWorld(1, machine.CM5())
	ws := w.Run(func(r *Rank) {
		r.SendInts(0, TagUser, []int{7})
		got := r.RecvInts(0, TagUser)
		if got[0] != 7 {
			t.Errorf("self send/recv got %v", got)
		}
	})
	tot := ws.Ranks[0].Total()
	if tot.MsgsSent != 0 || tot.MsgsRecv != 0 {
		t.Errorf("self messages must not hit the network: %+v", tot)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	params := machine.Params{Tau: 1, MuPerByte: 0, Delta: 1}
	for _, p := range testPs {
		w := NewWorld(p, params)
		clocks := make([]float64, p)
		w.Run(func(r *Rank) {
			// Rank i does i*10 units of work, then everyone barriers.
			r.Compute(r.ID * 10)
			r.Barrier()
			clocks[r.ID] = r.Clock.Now()
		})
		slowest := float64((p - 1) * 10)
		for i, c := range clocks {
			if c < slowest {
				t.Errorf("p=%d rank %d clock %v < slowest work %v; barrier not causal", p, i, c, slowest)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range testPs {
		for root := 0; root < p; root += max(1, p/3) {
			w := NewWorld(p, machine.Zero())
			w.Run(func(r *Rank) {
				var body []float64
				if r.ID == root {
					body = []float64{3.14, float64(root)}
				}
				got := r.Bcast(root, body, 16).([]float64)
				if len(got) != 2 || got[0] != 3.14 || got[1] != float64(root) {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, r.ID, got)
				}
			})
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	for _, p := range testPs {
		for root := 0; root < p; root += max(1, p/2) {
			w := NewWorld(p, machine.Zero())
			w.Run(func(r *Rank) {
				got := r.ReduceFloat64(root, float64(r.ID+1), func(a, b float64) float64 { return a + b })
				want := float64(p*(p+1)) / 2
				if r.ID == root && got != want {
					t.Errorf("p=%d root=%d reduce sum = %v, want %v", p, root, got, want)
				}
				if r.ID != root && got != 0 {
					t.Errorf("non-root rank %d returned %v, want 0", r.ID, got)
				}
			})
		}
	}
}

func TestAllreduceFloat64MaxAndSum(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			if got := r.AllreduceMaxFloat64(float64(r.ID)); got != float64(p-1) {
				t.Errorf("p=%d rank=%d allreduce max = %v, want %v", p, r.ID, got, p-1)
			}
			if got := r.AllreduceSumInt(2); got != 2*p {
				t.Errorf("p=%d rank=%d allreduce sum int = %v, want %v", p, r.ID, got, 2*p)
			}
		})
	}
}

func TestAllreduceSumFloat64s(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			vec := []float64{float64(r.ID), 1, float64(2 * r.ID)}
			got := r.AllreduceSumFloat64s(vec)
			sumIDs := float64(p*(p-1)) / 2
			want := []float64{sumIDs, float64(p), 2 * sumIDs}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("p=%d rank=%d elem %d = %v, want %v", p, r.ID, i, got[i], want[i])
				}
			}
		})
	}
}

func TestAllgatherInts(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			block := []int{r.ID * 2, r.ID*2 + 1}
			got := r.AllgatherInts(block)
			if len(got) != 2*p {
				t.Fatalf("p=%d len=%d", p, len(got))
			}
			for i := 0; i < 2*p; i++ {
				if got[i] != i {
					t.Errorf("p=%d rank=%d allgather[%d] = %d, want %d", p, r.ID, i, got[i], i)
				}
			}
		})
	}
}

func TestExchangeCounts(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			// Rank s plans to send s*P+d elements to rank d.
			sendCounts := make([]int, p)
			for d := range sendCounts {
				sendCounts[d] = r.ID*p + d
			}
			recvCounts := r.ExchangeCounts(sendCounts)
			for s := 0; s < p; s++ {
				want := s*p + r.ID
				if recvCounts[s] != want {
					t.Errorf("p=%d rank=%d recvCounts[%d] = %d, want %d", p, r.ID, s, recvCounts[s], want)
				}
			}
		})
	}
}

func TestAllToMany(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			// Rank s sends to every rank d with d <= s a payload
			// [s, d]; others get nothing (tests empty-message skipping).
			send := make([][]float64, p)
			counts := make([]int, p)
			for d := 0; d <= r.ID; d++ {
				send[d] = []float64{float64(r.ID), float64(d)}
				counts[d] = 2
			}
			recvCounts := r.ExchangeCounts(counts)
			recv := r.AllToManyFloat64s(send, recvCounts)
			// Sources s < r.ID sent nothing to us (they only send to d <= s).
			for s := 0; s < r.ID; s++ {
				if recv[s] != nil {
					t.Errorf("p=%d rank=%d unexpected payload from smaller rank %d", p, r.ID, s)
				}
			}
			// Sources s >= r.ID each sent [s, r.ID].
			for s := r.ID; s < p; s++ {
				if len(recv[s]) != 2 || recv[s][0] != float64(s) || recv[s][1] != float64(r.ID) {
					t.Errorf("p=%d rank=%d payload from %d = %v", p, r.ID, s, recv[s])
				}
			}
		})
	}
}

func TestAllToManyMessageCounting(t *testing.T) {
	// Only non-empty sends may be charged as messages.
	params := machine.Params{Tau: 1, MuPerByte: 0, Delta: 0}
	p := 4
	w := NewWorld(p, params)
	ws := w.Run(func(r *Rank) {
		send := make([][]float64, p)
		counts := make([]int, p)
		if r.ID == 0 {
			send[1] = []float64{1}
			counts[1] = 1
		}
		recvCounts := r.ExchangeCounts(counts)
		r.AllToManyFloat64s(send, recvCounts)
	})
	// Beyond the allgather (ring: p-1 sends per rank), rank 0 sends exactly
	// one extra message and ranks 2,3 send none.
	ringMsgs := int64(p - 1)
	if got := ws.Ranks[0].Total().MsgsSent; got != ringMsgs+1 {
		t.Errorf("rank 0 msgs = %d, want %d", got, ringMsgs+1)
	}
	for _, id := range []int{2, 3} {
		if got := ws.Ranks[id].Total().MsgsSent; got != ringMsgs {
			t.Errorf("rank %d msgs = %d, want %d (ring only)", id, got, ringMsgs)
		}
	}
}

func TestScanSumInt(t *testing.T) {
	for _, p := range testPs {
		w := NewWorld(p, machine.Zero())
		w.Run(func(r *Rank) {
			got := r.ScanSumInt(r.ID + 1) // contribute 1,2,...,p
			want := r.ID * (r.ID + 1) / 2 // sum of 1..ID
			if got != want {
				t.Errorf("p=%d rank=%d scan = %d, want %d", p, r.ID, got, want)
			}
		})
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from rank to propagate")
		}
	}()
	w := NewWorld(2, machine.Zero())
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
	})
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2, machine.Zero())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range destination")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(5, TagUser, nil, 0)
		}
	})
}
