package comm

import (
	"math"
	"testing"

	"picpar/internal/machine"
)

// testPs is the set of world sizes exercised by most tests: 1, 2, a
// power of two, and two awkward non-powers.
var testPs = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestSendRecvPingPong(t *testing.T) {
	w := newTestWorld(2, machine.Zero())
	w.Run(func(r Transport) {
		if r.Rank() == 0 {
			SendFloat64s(r, 1, TagUser, []float64{1, 2, 3})
			got := RecvFloat64s(r, 1, TagUser)
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("rank 0 got %v, want [42]", got)
			}
		} else {
			got := RecvFloat64s(r, 0, TagUser)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 got %v", got)
			}
			SendFloat64s(r, 0, TagUser, []float64{42})
		}
	})
}

func TestSendRecvTagMatching(t *testing.T) {
	// Messages with a different tag must be set aside and delivered to a
	// later matching Recv in FIFO order.
	w := newTestWorld(2, machine.Zero())
	w.Run(func(r Transport) {
		const tagA, tagB = TagUser, TagUser + 1
		if r.Rank() == 0 {
			SendInts(r, 1, tagA, []int{1})
			SendInts(r, 1, tagB, []int{2})
			SendInts(r, 1, tagA, []int{3})
		} else {
			if got := RecvInts(r, 0, tagB); got[0] != 2 {
				t.Errorf("tagB got %v, want [2]", got)
			}
			if got := RecvInts(r, 0, tagA); got[0] != 1 {
				t.Errorf("first tagA got %v, want [1]", got)
			}
			if got := RecvInts(r, 0, tagA); got[0] != 3 {
				t.Errorf("second tagA got %v, want [3]", got)
			}
		}
	})
}

func TestSendChargesCostModel(t *testing.T) {
	params := machine.Params{Tau: 10, MuPerByte: 1, Delta: 2}
	w := newTestWorld(2, params)
	ws := w.Run(func(r Transport) {
		if r.Rank() == 0 {
			r.Send(1, TagUser, nil, 16) // cost 10 + 16 = 26
			r.Compute(3)                // cost 6
		} else {
			r.Recv(0, TagUser)
		}
	})
	r0 := ws.Ranks[0].Total()
	if r0.CommTime != 26 {
		t.Errorf("sender comm time = %v, want 26", r0.CommTime)
	}
	if r0.ComputeTime != 6 {
		t.Errorf("sender compute time = %v, want 6", r0.ComputeTime)
	}
	if r0.BytesSent != 16 || r0.MsgsSent != 1 {
		t.Errorf("sender counters: %+v", r0)
	}
	r1 := ws.Ranks[1].Total()
	if r1.BytesRecv != 16 || r1.MsgsRecv != 1 || r1.CommTime != 26 {
		t.Errorf("receiver counters: %+v", r1)
	}
}

func TestRecvIsCausal(t *testing.T) {
	// Receiver's clock must end at least at sender's post-send clock plus
	// the receive cost, even if the receiver did no work of its own.
	params := machine.Params{Tau: 5, MuPerByte: 0, Delta: 1}
	w := newTestWorld(2, params)
	clocks := make([]float64, 2)
	w.Run(func(r Transport) {
		if r.Rank() == 0 {
			r.Compute(100) // clock 100
			r.Send(1, TagUser, nil, 0)
		} else {
			r.Recv(0, TagUser)
		}
		clocks[r.Rank()] = r.Clock().Now()
	})
	// Sender: 100 + 5 = 105. Receiver: max(0, 105) + 5 = 110.
	if clocks[0] != 105 {
		t.Errorf("sender clock = %v, want 105", clocks[0])
	}
	if clocks[1] != 110 {
		t.Errorf("receiver clock = %v, want 110", clocks[1])
	}
}

func TestSelfSendRecv(t *testing.T) {
	w := newTestWorld(1, machine.CM5())
	ws := w.Run(func(r Transport) {
		SendInts(r, 0, TagUser, []int{7})
		got := RecvInts(r, 0, TagUser)
		if got[0] != 7 {
			t.Errorf("self send/recv got %v", got)
		}
	})
	tot := ws.Ranks[0].Total()
	if tot.MsgsSent != 0 || tot.MsgsRecv != 0 {
		t.Errorf("self messages must not hit the network: %+v", tot)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	params := machine.Params{Tau: 1, MuPerByte: 0, Delta: 1}
	for _, p := range testPs {
		w := newTestWorld(p, params)
		clocks := make([]float64, p)
		w.Run(func(r Transport) {
			// Rank i does i*10 units of work, then everyone barriers.
			r.Compute(r.Rank() * 10)
			Barrier(r)
			clocks[r.Rank()] = r.Clock().Now()
		})
		slowest := float64((p - 1) * 10)
		for i, c := range clocks {
			if c < slowest {
				t.Errorf("p=%d rank %d clock %v < slowest work %v; barrier not causal", p, i, c, slowest)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range testPs {
		for root := 0; root < p; root += max(1, p/3) {
			w := newTestWorld(p, machine.Zero())
			w.Run(func(r Transport) {
				var body []float64
				if r.Rank() == root {
					body = []float64{3.14, float64(root)}
				}
				got := Bcast(r, root, body, 16).([]float64)
				if len(got) != 2 || got[0] != 3.14 || got[1] != float64(root) {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, r.Rank(), got)
				}
			})
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	for _, p := range testPs {
		for root := 0; root < p; root += max(1, p/2) {
			w := newTestWorld(p, machine.Zero())
			w.Run(func(r Transport) {
				got := ReduceFloat64(r, root, float64(r.Rank()+1), func(a, b float64) float64 { return a + b })
				want := float64(p*(p+1)) / 2
				if r.Rank() == root && got != want {
					t.Errorf("p=%d root=%d reduce sum = %v, want %v", p, root, got, want)
				}
				if r.Rank() != root && got != 0 {
					t.Errorf("non-root rank %d returned %v, want 0", r.Rank(), got)
				}
			})
		}
	}
}

func TestAllreduceFloat64MaxAndSum(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			if got := AllreduceMaxFloat64(r, float64(r.Rank())); got != float64(p-1) {
				t.Errorf("p=%d rank=%d allreduce max = %v, want %v", p, r.Rank(), got, p-1)
			}
			if got := AllreduceSumInt(r, 2); got != 2*p {
				t.Errorf("p=%d rank=%d allreduce sum int = %v, want %v", p, r.Rank(), got, 2*p)
			}
		})
	}
}

func TestAllreduceSumFloat64s(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			vec := []float64{float64(r.Rank()), 1, float64(2 * r.Rank())}
			got := AllreduceSumFloat64s(r, vec)
			sumIDs := float64(p*(p-1)) / 2
			want := []float64{sumIDs, float64(p), 2 * sumIDs}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("p=%d rank=%d elem %d = %v, want %v", p, r.Rank(), i, got[i], want[i])
				}
			}
		})
	}
}

func TestAllgatherInts(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			block := []int{r.Rank() * 2, r.Rank()*2 + 1}
			got := AllgatherInts(r, block)
			if len(got) != 2*p {
				t.Fatalf("p=%d len=%d", p, len(got))
			}
			for i := 0; i < 2*p; i++ {
				if got[i] != i {
					t.Errorf("p=%d rank=%d allgather[%d] = %d, want %d", p, r.Rank(), i, got[i], i)
				}
			}
		})
	}
}

func TestExchangeCounts(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			// Rank s plans to send s*P+d elements to rank d.
			sendCounts := make([]int, p)
			for d := range sendCounts {
				sendCounts[d] = r.Rank()*p + d
			}
			recvCounts := ExchangeCounts(r, sendCounts)
			for s := 0; s < p; s++ {
				want := s*p + r.Rank()
				if recvCounts[s] != want {
					t.Errorf("p=%d rank=%d recvCounts[%d] = %d, want %d", p, r.Rank(), s, recvCounts[s], want)
				}
			}
		})
	}
}

func TestAllToMany(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			// Rank s sends to every rank d with d <= s a payload
			// [s, d]; others get nothing (tests empty-message skipping).
			send := make([][]float64, p)
			counts := make([]int, p)
			for d := 0; d <= r.Rank(); d++ {
				send[d] = []float64{float64(r.Rank()), float64(d)}
				counts[d] = 2
			}
			recvCounts := ExchangeCounts(r, counts)
			recv := AllToManyFloat64s(r, send, recvCounts)
			// Sources s < r.Rank() sent nothing to us (they only send to d <= s).
			for s := 0; s < r.Rank(); s++ {
				if recv[s] != nil {
					t.Errorf("p=%d rank=%d unexpected payload from smaller rank %d", p, r.Rank(), s)
				}
			}
			// Sources s >= r.Rank() each sent [s, r.Rank()].
			for s := r.Rank(); s < p; s++ {
				if len(recv[s]) != 2 || recv[s][0] != float64(s) || recv[s][1] != float64(r.Rank()) {
					t.Errorf("p=%d rank=%d payload from %d = %v", p, r.Rank(), s, recv[s])
				}
			}
		})
	}
}

func TestAllToManyMessageCounting(t *testing.T) {
	// Only non-empty sends may be charged as messages.
	params := machine.Params{Tau: 1, MuPerByte: 0, Delta: 0}
	p := 4
	w := newTestWorld(p, params)
	ws := w.Run(func(r Transport) {
		send := make([][]float64, p)
		counts := make([]int, p)
		if r.Rank() == 0 {
			send[1] = []float64{1}
			counts[1] = 1
		}
		recvCounts := ExchangeCounts(r, counts)
		AllToManyFloat64s(r, send, recvCounts)
	})
	// Beyond the allgather (ring: p-1 sends per rank), rank 0 sends exactly
	// one extra message and ranks 2,3 send none.
	ringMsgs := int64(p - 1)
	if got := ws.Ranks[0].Total().MsgsSent; got != ringMsgs+1 {
		t.Errorf("rank 0 msgs = %d, want %d", got, ringMsgs+1)
	}
	for _, id := range []int{2, 3} {
		if got := ws.Ranks[id].Total().MsgsSent; got != ringMsgs {
			t.Errorf("rank %d msgs = %d, want %d (ring only)", id, got, ringMsgs)
		}
	}
}

func TestScanSumInt(t *testing.T) {
	for _, p := range testPs {
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			got := ScanSumInt(r, r.Rank()+1)      // contribute 1,2,...,p
			want := r.Rank() * (r.Rank() + 1) / 2 // sum of 1..ID
			if got != want {
				t.Errorf("p=%d rank=%d scan = %d, want %d", p, r.Rank(), got, want)
			}
		})
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from rank to propagate")
		}
	}()
	w := newTestWorld(2, machine.Zero())
	w.Run(func(r Transport) {
		if r.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestInvalidRankPanics(t *testing.T) {
	w := newTestWorld(2, machine.Zero())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range destination")
		}
	}()
	w.Run(func(r Transport) {
		if r.Rank() == 0 {
			r.Send(5, TagUser, nil, 0)
		}
	})
}
