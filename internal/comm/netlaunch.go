// Process supervision for multi-process worlds: the launcher side of the
// TCP backend. SuperviseRanks babysits one OS process per rank and turns
// "a rank died" into a prompt, typed-looking diagnostic at the launcher —
// the process-level mirror of the in-world DeliveryError story. When any
// rank fails, its peers fail fast on their own (EOF or heartbeat timeout),
// so the supervisor only grants a short grace for those diagnostics to
// print before killing stragglers.

package comm

import (
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"time"
)

// RankProc is one spawned rank process under supervision. The caller builds
// the Cmd (binary, args, stdio plumbing); SuperviseRanks starts and reaps it.
type RankProc struct {
	Rank int
	Cmd  *exec.Cmd
}

// RankFailure records how one supervised rank exited.
type RankFailure struct {
	Rank   int
	Err    error
	Killed bool // terminated by the supervisor, not a failure of its own
}

// LaunchError aggregates every abnormal rank exit from one supervised run.
type LaunchError struct {
	Failures []RankFailure
	// World describes the world being launched (e.g. "topology
	// neighbor-sparse, P=4"), so a refused dial in a sparse world is
	// attributed to its configuration at the launcher, not just to a rank.
	// Empty for launches that did not describe themselves.
	World string
}

// Error implements error, naming every failed rank (and the world
// configuration, when the launcher described one).
func (e *LaunchError) Error() string {
	parts := make([]string, 0, len(e.Failures))
	for _, f := range e.Failures {
		if f.Killed {
			parts = append(parts, fmt.Sprintf("rank %d: killed by supervisor after peer failure", f.Rank))
			continue
		}
		parts = append(parts, fmt.Sprintf("rank %d: %v", f.Rank, f.Err))
	}
	head := "comm: launch failed: "
	if e.World != "" {
		head = fmt.Sprintf("comm: launch failed (%s): ", e.World)
	}
	return head + strings.Join(parts, "; ")
}

// SuperviseRanks starts every rank process and waits for the world to
// finish. All ranks exiting cleanly returns nil. On the first abnormal
// exit the supervisor waits up to grace for the remaining ranks to fail on
// their own (printing their DeliveryError diagnostics), then kills any
// stragglers, and returns a *LaunchError naming every failed rank — the
// Start-failure path included: siblings killed because a later rank never
// started are drained and recorded too, so multi-rank death is always
// fully attributed.
func SuperviseRanks(procs []*RankProc, grace time.Duration, world ...string) error {
	return SuperviseRanksElastic(procs, grace, nil, 0, world...)
}

// RespawnFunc builds a replacement process for a dead rank during an
// elastic run. It must return a RankProc for the same rank identity whose
// Cmd is ready to Start (or already started, e.g. to log the new pid).
type RespawnFunc func(rank int) (*RankProc, error)

// SuperviseRanksElastic is SuperviseRanks with elastic recovery: when a
// rank exits abnormally while respawn budget remains, the supervisor
// relaunches that rank via respawn instead of failing the run — the
// surviving rank processes meanwhile park at the rendezvous (NetRankElastic)
// and the world re-assembles, rolled back to the latest complete
// checkpoint epoch. maxRespawns bounds the total relaunches across the
// whole run; a nil respawn (or an exhausted budget) reverts to the
// grace-then-kill aggregation of SuperviseRanks.
// An optional trailing world description (e.g. "topology neighbor-sparse,
// P=4") is carried on any resulting *LaunchError so refused dials in sparse
// worlds are attributed to the world's configuration.
func SuperviseRanksElastic(procs []*RankProc, grace time.Duration, respawn RespawnFunc, maxRespawns int, world ...string) error {
	worldDesc := strings.Join(world, ", ")
	if grace <= 0 {
		grace = 10 * time.Second
	}
	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, len(procs)+maxRespawns)
	reap := func(p *RankProc) { exits <- exit{p.Rank, p.Cmd.Wait()} }

	running := make(map[int]*RankProc, len(procs))
	var failures []RankFailure
	for _, p := range procs {
		if p.Cmd.Process == nil {
			if err := p.Cmd.Start(); err != nil {
				// Kill and drain the already-started siblings, recording
				// every exit status so the LaunchError attributes them all.
				// No reaper goroutines exist yet (they start below, after
				// every rank is up), so Wait here is the only Wait.
				failures = append(failures, RankFailure{Rank: p.Rank, Err: fmt.Errorf("start: %w", err)})
				for r, q := range running {
					_ = q.Cmd.Process.Kill()
					werr := q.Cmd.Wait()
					failures = append(failures, RankFailure{Rank: r, Err: werr, Killed: true})
				}
				sort.Slice(failures, func(i, j int) bool { return failures[i].Rank < failures[j].Rank })
				return &LaunchError{Failures: failures, World: worldDesc}
			}
		}
		running[p.Rank] = p
	}
	live := len(running)
	for _, p := range running {
		go reap(p)
	}

	killed := make(map[int]bool)
	respawned := 0
	failing := false
	cleanExits := 0
	var graceC <-chan time.Time
	for live > 0 {
		select {
		case e := <-exits:
			live--
			delete(running, e.rank)
			if e.err == nil {
				cleanExits++
				continue
			}
			// Respawn only while the whole world is still in flight: once a
			// rank has exited cleanly the run is ending, and a replacement
			// could never re-assemble with the departed rank.
			if respawn != nil && respawned < maxRespawns && !failing && cleanExits == 0 && !killed[e.rank] {
				np, rerr := respawn(e.rank)
				if rerr == nil && np.Cmd.Process == nil {
					rerr = np.Cmd.Start()
				}
				if rerr == nil {
					respawned++
					running[e.rank] = np
					live++
					go reap(np)
					continue
				}
				e.err = fmt.Errorf("%v (respawn failed: %v)", e.err, rerr)
			}
			failing = true
			failures = append(failures, RankFailure{Rank: e.rank, Err: e.err, Killed: killed[e.rank]})
			if graceC == nil {
				t := time.NewTimer(grace)
				defer t.Stop()
				graceC = t.C
			}
		case <-graceC:
			graceC = nil
			for rank, p := range running {
				killed[rank] = true
				_ = p.Cmd.Process.Kill()
			}
		}
	}
	if len(failures) == 0 {
		return nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Rank < failures[j].Rank })
	return &LaunchError{Failures: failures, World: worldDesc}
}
