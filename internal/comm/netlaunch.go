// Process supervision for multi-process worlds: the launcher side of the
// TCP backend. SuperviseRanks babysits one OS process per rank and turns
// "a rank died" into a prompt, typed-looking diagnostic at the launcher —
// the process-level mirror of the in-world DeliveryError story. When any
// rank fails, its peers fail fast on their own (EOF or heartbeat timeout),
// so the supervisor only grants a short grace for those diagnostics to
// print before killing stragglers.

package comm

import (
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"time"
)

// RankProc is one spawned rank process under supervision. The caller builds
// the Cmd (binary, args, stdio plumbing); SuperviseRanks starts and reaps it.
type RankProc struct {
	Rank int
	Cmd  *exec.Cmd
}

// RankFailure records how one supervised rank exited.
type RankFailure struct {
	Rank   int
	Err    error
	Killed bool // terminated by the supervisor, not a failure of its own
}

// LaunchError aggregates every abnormal rank exit from one supervised run.
type LaunchError struct {
	Failures []RankFailure
}

// Error implements error, naming every failed rank.
func (e *LaunchError) Error() string {
	parts := make([]string, 0, len(e.Failures))
	for _, f := range e.Failures {
		if f.Killed {
			parts = append(parts, fmt.Sprintf("rank %d: killed by supervisor after peer failure", f.Rank))
			continue
		}
		parts = append(parts, fmt.Sprintf("rank %d: %v", f.Rank, f.Err))
	}
	return "comm: launch failed: " + strings.Join(parts, "; ")
}

// SuperviseRanks starts every rank process and waits for the world to
// finish. All ranks exiting cleanly returns nil. On the first abnormal
// exit the supervisor waits up to grace for the remaining ranks to fail on
// their own (printing their DeliveryError diagnostics), then kills any
// stragglers, and returns a *LaunchError naming every failed rank.
func SuperviseRanks(procs []*RankProc, grace time.Duration) error {
	if grace <= 0 {
		grace = 10 * time.Second
	}
	running := make(map[int]*RankProc, len(procs))
	for _, p := range procs {
		if p.Cmd.Process != nil {
			// Already started by the caller (e.g. to print the pid).
			running[p.Rank] = p
			continue
		}
		if err := p.Cmd.Start(); err != nil {
			for r := range running {
				_ = running[r].Cmd.Process.Kill()
				_ = running[r].Cmd.Wait()
			}
			return &LaunchError{Failures: []RankFailure{{Rank: p.Rank, Err: fmt.Errorf("start: %w", err)}}}
		}
		running[p.Rank] = p
	}

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, len(procs))
	for _, p := range procs {
		go func(p *RankProc) { exits <- exit{p.Rank, p.Cmd.Wait()} }(p)
	}

	var failures []RankFailure
	killed := make(map[int]bool)
	var graceC <-chan time.Time
	for done := 0; done < len(procs); {
		select {
		case e := <-exits:
			done++
			delete(running, e.rank)
			if e.err != nil {
				failures = append(failures, RankFailure{Rank: e.rank, Err: e.err, Killed: killed[e.rank]})
				if graceC == nil {
					t := time.NewTimer(grace)
					defer t.Stop()
					graceC = t.C
				}
			}
		case <-graceC:
			graceC = nil
			for rank, p := range running {
				killed[rank] = true
				_ = p.Cmd.Process.Kill()
			}
		}
	}
	if len(failures) == 0 {
		return nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Rank < failures[j].Rank })
	return &LaunchError{Failures: failures}
}
