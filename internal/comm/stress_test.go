package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"picpar/internal/machine"
)

// TestCollectivesAgreeUnderRandomLoads drives reduce/allgather/all-to-many
// with randomised payload shapes and verifies global agreement — a
// property-based integration test of the whole collective stack.
func TestCollectivesAgreeUnderRandomLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(12)
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		ok := true
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			got := AllreduceFloat64(r, vals[r.Rank()], func(a, b float64) float64 { return a + b })
			if diff := got - sum; diff > 1e-9 || diff < -1e-9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllToManyRandomisedMatrix(t *testing.T) {
	// Random traffic matrices: every payload must arrive intact at its
	// destination with correct source attribution.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(10)
		// amounts[s][d]
		amounts := make([][]int, p)
		for s := range amounts {
			amounts[s] = make([]int, p)
			for d := range amounts[s] {
				if rng.Intn(3) == 0 {
					amounts[s][d] = rng.Intn(20)
				}
			}
		}
		ok := true
		w := newTestWorld(p, machine.Zero())
		w.Run(func(r Transport) {
			send := make([][]float64, p)
			counts := make([]int, p)
			for d := 0; d < p; d++ {
				n := amounts[r.Rank()][d]
				if n == 0 {
					continue
				}
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(r.Rank()*1000 + d)
				}
				send[d] = buf
				counts[d] = n
			}
			recvCounts := ExchangeCounts(r, counts)
			recv := AllToManyFloat64s(r, send, recvCounts)
			for s := 0; s < p; s++ {
				want := amounts[s][r.Rank()]
				if len(recv[s]) != want {
					ok = false
					continue
				}
				for _, v := range recv[s] {
					if v != float64(s*1000+r.Rank()) {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestManyConcurrentWorlds(t *testing.T) {
	// Worlds must be fully isolated: run several concurrently and check
	// each one's reduction.
	done := make(chan bool, 8)
	for k := 0; k < 8; k++ {
		go func(k int) {
			w := newTestWorld(4, machine.Zero())
			okAll := true
			w.Run(func(r Transport) {
				got := AllreduceSumInt(r, k)
				if got != 4*k {
					okAll = false
				}
			})
			done <- okAll
		}(k)
	}
	for k := 0; k < 8; k++ {
		if !<-done {
			t.Fatal("cross-world interference detected")
		}
	}
}

func TestBarrierStress(t *testing.T) {
	// Many consecutive barriers at p=9 (non-power-of-two) must not
	// deadlock or mis-pair rounds.
	w := newTestWorld(9, machine.Zero())
	w.Run(func(r Transport) {
		for i := 0; i < 200; i++ {
			Barrier(r)
		}
	})
}

func TestExpose(t *testing.T) {
	w := newTestWorld(5, machine.Zero())
	w.Run(func(r Transport) {
		all := r.Expose(r.Rank() * 10)
		for i, v := range all {
			if v.(int) != i*10 {
				t.Errorf("rank %d sees %v at %d", r.Rank(), v, i)
			}
		}
		if got := ExposeMaxFloat64(r, float64(r.Rank())); got != 4 {
			t.Errorf("ExposeMaxFloat64 = %v", got)
		}
		if got := ExposeSumFloat64(r, 1.5); got != 7.5 {
			t.Errorf("ExposeSumFloat64 = %v", got)
		}
		vec := ExposeMaxFloat64s(r, []float64{float64(r.Rank()), float64(-r.Rank())})
		if vec[0] != 4 || vec[1] != 0 {
			t.Errorf("ExposeMaxFloat64s = %v", vec)
		}
	})
}

func TestExposeSequentialCallsDoNotInterfere(t *testing.T) {
	// The double barrier must prevent a fast rank's second publication
	// from clobbering a slow rank's read of the first.
	w := newTestWorld(4, machine.Zero())
	w.Run(func(r Transport) {
		for round := 0; round < 50; round++ {
			all := r.Expose(round*100 + r.Rank())
			for i, v := range all {
				if v.(int) != round*100+i {
					t.Errorf("round %d rank %d: stale value %v at %d", round, r.Rank(), v, i)
					return
				}
			}
		}
	})
}

func BenchmarkBarrier(b *testing.B) {
	w := newTestWorld(8, machine.Zero())
	w.Run(func(r Transport) {
		for i := 0; i < b.N; i++ {
			Barrier(r)
		}
	})
}

func BenchmarkAllToMany(b *testing.B) {
	const p = 8
	w := newTestWorld(p, machine.Zero())
	w.Run(func(r Transport) {
		send := make([][]float64, p)
		counts := make([]int, p)
		for d := 0; d < p; d++ {
			if d != r.Rank() {
				send[d] = make([]float64, 128)
				counts[d] = 128
			}
		}
		recvCounts := ExchangeCounts(r, counts)
		for i := 0; i < b.N; i++ {
			AllToManyFloat64s(r, send, recvCounts)
		}
	})
}
