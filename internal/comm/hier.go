// The hierarchical Transport backend: the hybrid host×core decomposition.
// A world of P ranks is split over H hosts, m = P/H ranks per host; ranks
// sharing a host exchange messages over in-process channels (exactly the
// goroutine World's substrate) while cross-host messages travel through ONE
// TCP gateway connection pair per host pair — O(H²) sockets for the whole
// world instead of O(P²), behind the same Transport interface and with the
// same modelled charges, so engine code and the goldens cannot tell the
// difference.
//
// Mechanics: a cross-host Send charges τ + n·μ on the sender's clock as
// usual, then hands the frame (frameRelay: world source, world destination,
// tag, modelled size, post-send clock, body) to the host's gateway — a
// netTransport whose relay hook routes inbound relay frames into
// per-(local destination, world source) channels. The receiver's consume
// charges exactly like every other backend (advance to the sender's clock,
// then τ + n·μ), so simulated time is identical to a flat world; the
// gateway forwarding itself is raw socket traffic, never charged.
//
// Expose composes the same way: the two charged barriers run over the world
// links (relaying where needed), and the uncharged publication exchange
// goes host-leader-to-host-leader — each host's local 0 ships its whole
// host's publications to every other gateway as origin-attributed
// frameOOBFrom frames.
//
// Failure: any gateway link dying (peer host crashed) or any local rank
// panicking closes the host's dead channel; every blocked operation on
// that host then fails with a *DeliveryError, mirroring the flat backends'
// fail-fast story.

package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"picpar/internal/machine"
)

// hostGate is a reusable in-process barrier over the m local ranks of one
// host, abortable through the host's dead channel so a crashed sibling (or
// a dead gateway link) can never strand a rank inside it.
type hostGate struct {
	n       int
	mu      sync.Mutex
	count   int
	release chan struct{}
}

func newHostGate(n int) *hostGate {
	return &hostGate{n: n, release: make(chan struct{})}
}

// wait blocks until all n participants arrive, or dead closes.
func (g *hostGate) wait(dead <-chan struct{}) bool {
	g.mu.Lock()
	rel := g.release
	g.count++
	if g.count == g.n {
		g.count = 0
		g.release = make(chan struct{})
		close(rel)
	}
	g.mu.Unlock()
	select {
	case <-rel:
		return true
	case <-dead:
		return false
	}
}

// hierHost is the shared state of one host: the intra-host mailboxes, the
// inbound cross-host channels the gateway's relay fills, and the gateway
// endpoint itself.
type hierHost struct {
	idx  int // host index in [0, hosts)
	base int // first world rank of this host
	m    int // locals per host
	p    int // world size

	// boxes[dstLocal*m+srcLocal] carries intra-host messages, exactly like
	// World.boxes.
	boxes []chan message
	// remote[dstLocal*p+worldSrc] carries cross-host messages routed in by
	// the gateway's relay hook.
	remote []chan message
	// scratch is the host's world-size Expose table; locals publish into
	// their own slot, the leader fills the remote slots.
	scratch []any
	// oobIn receives other hosts' publications (leader consumes).
	oobIn chan oobMsg

	gw *netTransport // nil when the world has one host

	// dead closes on the first host-level failure; reason records why.
	dead     chan struct{}
	deadOnce sync.Once
	reason   atomic.Pointer[string]
	// done marks intentional teardown, so gateway goodbyes during shutdown
	// are not misread as peer-host crashes.
	done atomic.Bool

	gate *hostGate
}

// fail records the first host-level failure and releases everyone blocked.
func (h *hierHost) fail(reason string) {
	h.deadOnce.Do(func() {
		h.reason.Store(&reason)
		close(h.dead)
	})
}

func (h *hierHost) failure() string {
	if r := h.reason.Load(); r != nil {
		return *r
	}
	return "host failed"
}

// relay routes one gateway frame into the host. It runs on the gateway's
// per-peer reader goroutines; the dead-select mirrors netTransport's
// closing-select so a stalled local can never wedge the gateway reader
// forever.
func (h *hierHost) relay(f *netFrame) {
	switch f.kind {
	case frameRelay:
		dl := f.peer - h.base
		if dl < 0 || dl >= h.m || f.rank < 0 || f.rank >= h.p {
			h.fail(fmt.Sprintf("protocol violation: relay frame %d -> %d outside host %d (ranks %d..%d)",
				f.rank, f.peer, h.idx, h.base, h.base+h.m-1))
			return
		}
		select {
		case h.remote[dl*h.p+f.rank] <- message{tag: f.tag, bytes: f.nbytes, sentAt: f.sentAt, body: f.body}:
		case <-h.dead:
		}
	case frameOOBFrom:
		if f.rank < 0 || f.rank >= h.p {
			h.fail(fmt.Sprintf("protocol violation: expose publication from invalid world rank %d", f.rank))
			return
		}
		select {
		case h.oobIn <- oobMsg{from: f.rank, val: f.body}:
		case <-h.dead:
		}
	}
}

// hierTransport is one world rank's endpoint of the hierarchical backend.
// Owned by one goroutine, like every Transport.
type hierTransport struct {
	host     *hierHost
	rank     int // world rank
	local    int // rank - host.base
	p        int
	params   machine.Params
	watchdog time.Duration

	clock   machine.Clock
	stats   machine.Stats
	pending [][]message // indexed by world source rank
}

// Rank implements Transport.
func (n *hierTransport) Rank() int { return n.rank }

// Size implements Transport.
func (n *hierTransport) Size() int { return n.p }

// Clock implements Transport.
func (n *hierTransport) Clock() machine.Clock { return n.clock }

// Stats implements Transport.
func (n *hierTransport) Stats() *machine.Stats { return &n.stats }

// Params implements Transport.
func (n *hierTransport) Params() machine.Params { return n.params }

// Compute implements Transport.
func (n *hierTransport) Compute(c int) {
	if c <= 0 {
		return
	}
	cost := n.params.ComputeCost(c)
	n.clock.Advance(cost)
	n.stats.RecordCompute(cost)
}

// ComputeTime implements Transport.
func (n *hierTransport) ComputeTime(t float64) {
	if t <= 0 {
		return
	}
	n.clock.Advance(t)
	n.stats.RecordCompute(t)
}

// SetPhase implements Transport.
func (n *hierTransport) SetPhase(p machine.Phase) { n.stats.SetPhase(p) }

// hostOf maps a world rank to its host index.
func (n *hierTransport) hostOf(r int) int { return r / n.host.m }

// Send implements Transport: channel post intra-host, gateway relay
// cross-host, identical modelled charge either way.
func (n *hierTransport) Send(dst int, tag Tag, body any, nbytes int) {
	if dst < 0 || dst >= n.p {
		panic(&TransportError{Op: "send", Rank: n.rank, Peer: dst, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", dst, n.p)})
	}
	if dst == n.rank {
		// Self-sends bypass the network: no τ/μ charge, matching the model.
		n.deliverLocal(message{tag: tag, bytes: nbytes, sentAt: n.clock.Now(), body: body})
		return
	}
	cost := n.params.MsgCost(nbytes)
	n.clock.Advance(cost)
	n.stats.RecordSend(nbytes, cost)
	m := message{tag: tag, bytes: nbytes, sentAt: n.clock.Now(), body: body}
	if n.hostOf(dst) == n.host.idx {
		n.postLocal(dst, tag, m)
		return
	}
	f := netFrame{kind: frameRelay, rank: n.rank, peer: dst, tag: tag,
		nbytes: nbytes, sentAt: m.sentAt, body: body}
	if err := n.host.gw.writePeer(n.hostOf(dst), &f); err != nil {
		panic(&DeliveryError{
			Rank: n.rank, Peer: dst, Tag: tag, Phase: n.stats.CurrentPhase(),
			Reason: "gateway send failed: " + err.Error(),
		})
	}
}

// postLocal enqueues m for a same-host rank, aborting on host death and
// tripping the watchdog on a persistently full mailbox.
func (n *hierTransport) postLocal(dst int, tag Tag, m message) {
	box := n.host.boxes[(dst-n.host.base)*n.host.m+n.local]
	fail := func() {
		panic(&DeliveryError{
			Rank: n.rank, Peer: dst, Tag: tag, Phase: n.stats.CurrentPhase(),
			Reason: n.host.failure(),
		})
	}
	if n.watchdog <= 0 {
		select {
		case box <- m:
		case <-n.host.dead:
			fail()
		}
		return
	}
	select {
	case box <- m:
		return
	default:
	}
	timer := time.NewTimer(n.watchdog)
	defer timer.Stop()
	select {
	case box <- m:
	case <-n.host.dead:
		fail()
	case <-timer.C:
		panic(fmt.Sprintf("comm: deadlock watchdog fired after %v: rank %d blocked sending tag %d to rank %d (hier backend, mailbox full at depth %d)",
			n.watchdog, n.rank, tag, dst, cap(box)))
	}
}

func (n *hierTransport) deliverLocal(m message) {
	if n.pending == nil {
		n.pending = make([][]message, n.p)
	}
	n.pending[n.rank] = append(n.pending[n.rank], m)
}

// Recv implements Transport.
func (n *hierTransport) Recv(src int, tag Tag) (any, int) {
	if src < 0 || src >= n.p {
		panic(&TransportError{Op: "recv", Rank: n.rank, Peer: src, Tag: tag,
			Err: fmt.Errorf("invalid rank %d (P=%d)", src, n.p)})
	}
	if n.pending == nil {
		n.pending = make([][]message, n.p)
	}
	q := n.pending[src]
	for i := range q {
		if q[i].tag == tag {
			m := q[i]
			n.pending[src] = append(q[:i], q[i+1:]...)
			return n.consume(src, m)
		}
	}
	if src == n.rank {
		panic(fmt.Sprintf("comm: rank %d self-recv tag %d with no matching self-send", n.rank, tag))
	}
	var box chan message
	if n.hostOf(src) == n.host.idx {
		box = n.host.boxes[n.local*n.host.m+(src-n.host.base)]
	} else {
		box = n.host.remote[n.local*n.p+src]
	}
	for {
		m := n.pull(box, src, tag)
		if m.tag == tag {
			return n.consume(src, m)
		}
		n.pending[src] = append(n.pending[src], m)
	}
}

// pull takes the next message off box, converting host death into a
// *DeliveryError and a watchdog overrun into a diagnostic panic. A message
// already buffered is always preferred over a concurrent death signal.
func (n *hierTransport) pull(box chan message, src int, tag Tag) message {
	select {
	case m := <-box:
		return m
	default:
	}
	fail := func() {
		panic(&DeliveryError{
			Rank: n.rank, Peer: src, Tag: tag, Phase: n.stats.CurrentPhase(),
			Reason: n.host.failure(),
		})
	}
	if n.watchdog <= 0 {
		select {
		case m := <-box:
			return m
		case <-n.host.dead:
			// Drain anything that raced in ahead of the failure.
			select {
			case m := <-box:
				return m
			default:
			}
			fail()
		}
	}
	timer := time.NewTimer(n.watchdog)
	defer timer.Stop()
	select {
	case m := <-box:
		return m
	case <-n.host.dead:
		select {
		case m := <-box:
			return m
		default:
		}
		fail()
	case <-timer.C:
		panic(fmt.Sprintf("comm: deadlock watchdog fired after %v: rank %d blocked receiving tag %d from rank %d (hier backend)",
			n.watchdog, n.rank, tag, src))
	}
	panic("unreachable")
}

// consume charges the receive exactly like every other backend.
func (n *hierTransport) consume(src int, m message) (any, int) {
	if src == n.rank {
		return m.body, m.bytes // local delivery is free
	}
	cost := n.params.MsgCost(m.bytes)
	n.clock.AdvanceTo(m.sentAt)
	n.clock.Advance(cost)
	n.stats.RecordRecv(m.bytes, cost)
	return m.body, m.bytes
}

// Expose implements Transport: the two charged barriers run over the world
// links as usual; between them the publications move intra-host through the
// shared scratch table and cross-host leader-to-leader as uncharged
// frameOOBFrom traffic.
func (n *hierTransport) Expose(v any) []any {
	barrier(n, tagExpose) // all ranks inside Expose; previous round fully read
	host := n.host
	host.scratch[n.rank] = v
	exposeFail := func(peer int, reason string) {
		panic(&DeliveryError{
			Rank: n.rank, Peer: peer, Tag: tagExpose, Phase: n.stats.CurrentPhase(),
			Reason: reason,
		})
	}
	if !host.gate.wait(host.dead) { // all locals published
		exposeFail(n.rank, host.failure())
	}
	if n.local == 0 && host.gw != nil {
		// Leader: ship this host's publications to every other gateway and
		// collect every other host's in return.
		for _, pr := range host.gw.peers {
			if pr == nil {
				continue
			}
			for l := 0; l < host.m; l++ {
				f := netFrame{kind: frameOOBFrom, rank: host.base + l, body: host.scratch[host.base+l]}
				if err := host.gw.writePeer(pr.id, &f); err != nil {
					host.fail("expose publication failed: " + err.Error())
					exposeFail(pr.id, host.failure())
				}
			}
		}
		want := n.p - host.m
		for i := 0; i < want; i++ {
			select {
			case m := <-host.oobIn:
				host.scratch[m.from] = m.val
			case <-host.dead:
				exposeFail(n.rank, host.failure())
			}
		}
	}
	if !host.gate.wait(host.dead) { // leader done filling the table
		exposeFail(n.rank, host.failure())
	}
	out := append([]any(nil), host.scratch...)
	barrier(n, tagExpose) // all reads complete before anyone publishes again
	return out
}

// LaunchHierarchical runs fn as an SPMD program of p world ranks packed
// onto hosts in-process hosts: ranks [h·m, (h+1)·m) share host h's channel
// substrate, and each host owns one TCP gateway endpoint in an H-rank
// loopback world carrying all cross-host traffic. p must be divisible by
// hosts; hosts == 1 needs no sockets at all. wrap and watchdog have
// World.RunWrapped / SetWatchdog semantics; a rank panic is re-raised as a
// *RankPanic after every rank finishes, exactly like World.Run. The
// returned error covers world assembly only (coordinator or gateway mesh
// failures).
func LaunchHierarchical(p, hosts int, params machine.Params, watchdog time.Duration,
	wrap func(Transport) Transport, fn func(Transport)) (machine.WorldStats, error) {
	ws := machine.WorldStats{Ranks: make([]machine.Stats, p)}
	if p <= 0 || hosts <= 0 || p%hosts != 0 {
		return ws, fmt.Errorf("comm: hierarchical world of %d ranks on %d hosts (p must divide evenly)", p, hosts)
	}
	m := p / hosts

	var co *Coordinator
	serveErr := make(chan error, 1)
	if hosts > 1 {
		var err error
		co, err = StartCoordinator("127.0.0.1:0", hosts, 0)
		if err != nil {
			return ws, fmt.Errorf("comm: hierarchical coordinator: %w", err)
		}
		defer co.Close()
		go func() { serveErr <- co.Serve() }()
	} else {
		serveErr <- nil
	}

	transports := make([]*hierTransport, p)
	hostErrs := make([]error, hosts)
	panics := make(chan any, p)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			host := &hierHost{
				idx:     h,
				base:    h * m,
				m:       m,
				p:       p,
				boxes:   make([]chan message, m*m),
				remote:  make([]chan message, m*p),
				scratch: make([]any, p),
				oobIn:   make(chan oobMsg, p),
				dead:    make(chan struct{}),
				gate:    newHostGate(m),
			}
			for i := range host.boxes {
				host.boxes[i] = make(chan message, DefaultMailboxDepth)
			}
			for i := range host.remote {
				host.remote[i] = make(chan message, DefaultMailboxDepth)
			}
			if hosts > 1 {
				gwCfg := NetConfig{
					Coordinator: co.Addr(),
					Rank:        h,
					Size:        hosts,
					Params:      params,
				}.withNetDefaults()
				gw, err := dialWorldRelay(gwCfg, host.relay)
				if err != nil {
					hostErrs[h] = fmt.Errorf("comm: host %d gateway: %w", h, err)
					host.fail(hostErrs[h].Error())
					return
				}
				host.gw = gw
				// Watch every gateway link: an unclean exit of a peer's
				// reader means that host crashed — fail ours so its locals
				// stop waiting on traffic that will never come. A clean
				// goodbye (that host finished) is not a failure: no SPMD
				// protocol awaits traffic a finished peer never sent.
				for _, pr := range gw.peers {
					if pr == nil {
						continue
					}
					go func(pr *netPeer) {
						<-pr.readerDone
						if pr.clean.Load() || host.done.Load() {
							return
						}
						host.fail(fmt.Sprintf("gateway link to host %d: %s", pr.id, pr.failure()))
					}(pr)
				}
			}

			var crashed atomic.Bool
			var lwg sync.WaitGroup
			for l := 0; l < m; l++ {
				lwg.Add(1)
				go func(l int) {
					defer lwg.Done()
					r := &hierTransport{
						host:     host,
						rank:     host.base + l,
						local:    l,
						p:        p,
						params:   params,
						watchdog: watchdog,
						clock:    machine.NewSimClock(),
					}
					transports[r.rank] = r
					defer func() {
						if e := recover(); e != nil {
							crashed.Store(true)
							host.fail(fmt.Sprintf("world rank %d panicked: %v", r.rank, e))
							panics <- &RankPanic{Rank: r.rank, Value: e}
						}
					}()
					t := Transport(r)
					if wrap != nil {
						t = wrap(t)
					}
					defer func() {
						defer func() { _ = recover() }() // a failed flush must not mask fn's panic
						flushChain(t)
					}()
					fn(t)
				}(l)
			}
			lwg.Wait()
			if host.gw != nil {
				host.done.Store(true)
				host.gw.shutdown(!crashed.Load())
			}
		}(h)
	}
	wg.Wait()
	if co != nil {
		co.Close()
	}
	var err error
	for _, e := range hostErrs {
		if e != nil {
			err = e
			break
		}
	}
	if err == nil {
		if e := <-serveErr; e != nil {
			err = fmt.Errorf("comm: hierarchical rendezvous: %w", e)
		}
	}
	select {
	case e := <-panics:
		panic(e)
	default:
	}
	for i, r := range transports {
		if r != nil {
			ws.Ranks[i] = r.stats
		}
	}
	return ws, err
}
