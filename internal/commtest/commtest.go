// Package commtest provides the shared SPMD test harness: world
// constructors with the deadlock watchdog armed by default, so any stuck
// protocol in any package's tests fails within seconds with a diagnostic
// naming the blocked ranks and tags, instead of hanging the test binary
// until the go test timeout.
//
// The watchdog duration is tunable through the PICPAR_WATCHDOG environment
// variable (any time.ParseDuration string; "0" or "off" disables it — e.g.
// when single-stepping a rank under a debugger, where wall-clock stalls are
// expected).
//
// comm's own package-internal tests cannot import this package (it would be
// an import cycle); they arm the watchdog directly via comm.EnvWatchdog.
package commtest

import (
	"time"

	"picpar/internal/comm"
	"picpar/internal/machine"
)

// DefaultWatchdog is the default deadlock deadline for tests: far above any
// legitimate single blocking operation, far below the go test timeout.
const DefaultWatchdog = 10 * time.Second

// Watchdog returns the test watchdog duration: PICPAR_WATCHDOG if set,
// DefaultWatchdog otherwise.
func Watchdog() time.Duration { return comm.EnvWatchdog(DefaultWatchdog) }

// NewWorld is comm.NewWorld with the test watchdog armed.
func NewWorld(p int, params machine.Params) *comm.World {
	w := comm.NewWorld(p, params)
	w.SetWatchdog(Watchdog())
	return w
}

// Launch is comm.Launch with the test watchdog armed: it runs fn on p ranks
// of a fresh watched world and closes the world when the program returns.
func Launch(p int, params machine.Params, fn func(comm.Transport)) machine.WorldStats {
	w := NewWorld(p, params)
	defer w.Close()
	return w.Run(fn)
}

// NetTemplate returns a NetConfig template for tests over the loopback TCP
// backend: the test watchdog armed and the failure-detection timeouts
// tightened so failure-path tests finish in seconds while staying far above
// scheduler noise.
func NetTemplate(params machine.Params) comm.NetConfig {
	return comm.NetConfig{
		Params:            params,
		Watchdog:          Watchdog(),
		DialTimeout:       time.Second,
		DialBackoff:       10 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		DrainTimeout:      5 * time.Second,
		RendezvousTimeout: 20 * time.Second,
	}
}

// LaunchNet runs fn as a p-rank world over real loopback TCP sockets (one
// coordinator plus p NetRank endpoints in-process), watchdog armed.
func LaunchNet(p int, params machine.Params, fn func(comm.Transport)) (machine.WorldStats, []error) {
	return comm.LaunchLoopback(NetTemplate(params), p, nil, fn)
}
