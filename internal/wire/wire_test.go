package wire

import (
	"testing"

	"picpar/internal/raceflag"
)

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(100)
	if len(b) != 0 {
		t.Fatalf("Get returned len %d, want 0", len(b))
	}
	if cap(b) < 100 {
		t.Fatalf("Get(100) cap %d, want >= 100", cap(b))
	}
	b = append(b, 1, 2, 3)
	Put(b)
	c := Get(10)
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(c))
	}
	Put(c)
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	Put(Get(4096)) // warm both pools
	if allocs := testing.AllocsPerRun(50, func() {
		b := Get(4096)
		b = append(b, 1)
		Put(b)
	}); allocs != 0 {
		t.Errorf("warm Get/Put cycle: %v allocs/op, want 0", allocs)
	}
}

func TestPutNilAndTiny(t *testing.T) {
	Put(nil) // must not panic or poison the pool
	b := Get(0)
	if b == nil || len(b) != 0 {
		t.Fatalf("Get(0) = %v, want empty non-nil buffer", b)
	}
	Put(b)
}
