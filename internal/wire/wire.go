// Package wire provides a process-wide, sync.Pool-backed free list of
// []float64 message buffers for the particle exchange hot paths.
//
// The comm substrate transfers buffer ownership with the message (the
// sender must not touch a sent slice again), so buffers cannot simply be
// kept as sender-side scratch. Instead, senders Get a buffer, marshal into
// it and send it; the receiving rank unpacks it and Puts it back. Every
// buffer cycles sender → network → receiver → pool, and after a few
// exchanges the pool holds enough capacity that steady-state traffic
// allocates nothing.
//
// Two pools are used so that neither direction allocates: bufPool holds
// *[]float64 headers pointing at live buffers, and hdrPool recycles the
// spare headers left behind by Get. Pooling raw []float64 values directly
// would heap-allocate a header on every Put (interface conversion of a
// slice), defeating the point.
package wire

import "sync"

var bufPool sync.Pool // *[]float64 with usable backing arrays
var hdrPool sync.Pool // spare *[]float64 headers (nil contents)

var bytePool sync.Pool    // *[]byte with usable backing arrays
var byteHdrPool sync.Pool // spare *[]byte headers (nil contents)

// Get returns a zero-length buffer with capacity at least capHint. The
// buffer comes from the pool when possible; a pooled buffer that is too
// small is grown (and the grown version is what eventually returns to the
// pool, so capacities converge on the workload's maximum).
func Get(capHint int) []float64 {
	h, _ := bufPool.Get().(*[]float64)
	if h == nil {
		return make([]float64, 0, capHint)
	}
	b := *h
	*h = nil
	hdrPool.Put(h)
	if cap(b) < capHint {
		return make([]float64, 0, capHint)
	}
	return b[:0]
}

// Put returns a buffer to the pool. The caller must not use buf afterwards.
// Nil and zero-capacity buffers are dropped.
func Put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	h, _ := hdrPool.Get().(*[]float64)
	if h == nil {
		h = new([]float64)
	}
	*h = buf[:0]
	bufPool.Put(h)
}

// GetBytes returns a zero-length byte buffer with capacity at least capHint,
// recycled through the same double-pool scheme as the float buffers. The
// network codec uses these as encode/decode scratch so steady-state framing
// allocates nothing.
func GetBytes(capHint int) []byte {
	h, _ := bytePool.Get().(*[]byte)
	if h == nil {
		return make([]byte, 0, capHint)
	}
	b := *h
	*h = nil
	byteHdrPool.Put(h)
	if cap(b) < capHint {
		return make([]byte, 0, capHint)
	}
	return b[:0]
}

// PutBytes returns a byte buffer to the pool. The caller must not use buf
// afterwards. Nil and zero-capacity buffers are dropped.
func PutBytes(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	h, _ := byteHdrPool.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = buf[:0]
	bytePool.Put(h)
}
