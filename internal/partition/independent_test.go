package partition

import (
	"testing"

	"picpar/internal/geom"
	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/sfc"
)

// TestBuildIndependentMatches2DStrategy pins the collapsed geometry-generic
// dealer to the original 2-D StrategyIndependent assignment: identical
// particle→rank maps and identical quality metrics.
func TestBuildIndependentMatches2DStrategy(t *testing.T) {
	g := mesh.NewGrid(32, 32)
	d, err := mesh.NewDistOrdered(g, 8, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sfc.New(sfc.SchemeHilbert, g.Nx, g.Ny)
	if err != nil {
		t.Fatal(err)
	}
	s, err := particle.Generate(particle.Config{
		N: 4096, Lx: g.Lx, Ly: g.Ly, Distribution: particle.DistIrregular, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	l2, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	ge := geom.New2(g, d, ix)
	lg := BuildIndependent(ge, s)

	if lg.P != l2.P {
		t.Fatalf("rank count %d != %d", lg.P, l2.P)
	}
	for i := range l2.Particles {
		if lg.Particles[i] != l2.Particles[i] {
			t.Fatalf("particle %d: generic owner %d != 2-D strategy owner %d",
				i, lg.Particles[i], l2.Particles[i])
		}
	}

	q2 := Measure(l2, g, d, s)
	qg := MeasureIndependent(ge, lg, s)
	if qg != q2 {
		t.Fatalf("quality mismatch:\ngeneric %+v\n2-D     %+v", qg, q2)
	}
}

// TestMeasureIndependent3D sanity-checks the generic metrics over a 3-D
// geometry: a uniform population on an 8-rank cube is balanced, every rank
// has ghost points, and Hilbert keying keeps communication local.
func TestMeasureIndependent3D(t *testing.T) {
	g := mesh3.NewGrid(16, 16, 16)
	d, err := mesh3.NewDistOrdered(g, 8, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sfc.New3(sfc.SchemeHilbert, g.Nx, g.Ny, g.Nz)
	if err != nil {
		t.Fatal(err)
	}
	ge := geom.New3(g, d, ix)
	s, err := particle.Generate3(particle.Config3{
		N: 8192, Lx: g.Lx, Ly: g.Ly, Lz: g.Lz, Distribution: particle.DistUniform, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	l := BuildIndependent(ge, s)
	q := MeasureIndependent(ge, l, s)
	if q.ParticleImbalance > 1.001 {
		t.Errorf("equal-count dealing should balance particles, got imbalance %g", q.ParticleImbalance)
	}
	if q.GridImbalance != 1 {
		t.Errorf("8 ranks over a 16^3 BLOCK mesh should balance cells, got %g", q.GridImbalance)
	}
	if q.MaxGhostPoints == 0 || q.TotalGhostPoints == 0 {
		t.Errorf("uniform population must touch off-processor points, got max %d total %d",
			q.MaxGhostPoints, q.TotalGhostPoints)
	}
	// On a 2×2×2 processor grid every rank is a 26-neighbour of every
	// other, so all ghost traffic classifies as local.
	if q.NonLocalFraction != 0 {
		t.Errorf("2x2x2 torus has no non-neighbours, got non-local fraction %g", q.NonLocalFraction)
	}
}
