// Package partition implements the domain partitioning strategies the paper
// analyses in Table 1 — Grid, Particle, and Independent partitioning — and
// the space-filling-curve key assignment ("particle indexing") that aligns
// particle subdomains with mesh subdomains.
//
// The full simulation (internal/pic) always uses Independent partitioning
// with direct Lagrangian particle movement, the combination the paper
// argues is the only scalable one; this package additionally provides the
// alternatives and the quality metrics (load imbalance, ghost counts,
// communication locality) that reproduce Table 1 quantitatively.
package partition

import (
	"fmt"
	"sort"

	"picpar/internal/geom"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pusher"
	"picpar/internal/sfc"
)

// AssignKeys sets every particle's sort key to the SFC index of the cell
// containing it ("Particle indexing — each particle is assigned an index of
// its global cell number, arranged using a Hilbert index-based order").
func AssignKeys(s *particle.Store, g mesh.Grid, ix sfc.Indexer) {
	for i := 0; i < s.Len(); i++ {
		cx, cy := g.CellOf(s.X[i], s.Y[i])
		s.Key[i] = float64(ix.Index(cx, cy))
	}
}

// KeyAssignWorkPerParticle is the modelled δ units to index one particle
// (cell computation plus one table lookup) — the seam-wide constant.
const KeyAssignWorkPerParticle = geom.KeyAssignWorkPerParticle

// Strategy selects one of the paper's three domain partitioning strategies.
type Strategy int

// The three strategies of Table 1.
const (
	StrategyGrid Strategy = iota
	StrategyParticle
	StrategyIndependent
)

func (s Strategy) String() string {
	switch s {
	case StrategyGrid:
		return "grid"
	case StrategyParticle:
		return "particle"
	case StrategyIndependent:
		return "independent"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Layout is a concrete global partition: an owner rank per particle and an
// owner rank per cell.
type Layout struct {
	Strategy  Strategy
	P         int
	Particles []int // particle -> rank
	cellOwner []int // cell (row-major) -> rank
	g         mesh.Grid
}

// CellOwner returns the rank owning cell (cx, cy).
func (l *Layout) CellOwner(cx, cy int) int { return l.cellOwner[cy*l.g.Nx+cx] }

// Build computes the layout of the given strategy for the current particle
// positions. The mesh BLOCK distribution d and indexer ix define the grid
// blocks and the particle ordering respectively.
func Build(strategy Strategy, g mesh.Grid, d *mesh.Dist, ix sfc.Indexer, s *particle.Store) (*Layout, error) {
	if d.P <= 0 {
		return nil, fmt.Errorf("partition: invalid rank count %d", d.P)
	}
	l := &Layout{
		Strategy:  strategy,
		P:         d.P,
		Particles: make([]int, s.Len()),
		cellOwner: make([]int, g.NumPoints()),
		g:         g,
	}
	switch strategy {
	case StrategyGrid:
		// Cells by BLOCK; particles follow their cell.
		for cy := 0; cy < g.Ny; cy++ {
			for cx := 0; cx < g.Nx; cx++ {
				l.cellOwner[cy*g.Nx+cx] = d.OwnerOfPoint(cx, cy)
			}
		}
		for i := 0; i < s.Len(); i++ {
			cx, cy := g.CellOf(s.X[i], s.Y[i])
			l.Particles[i] = l.CellOwner(cx, cy)
		}
	case StrategyParticle:
		// Particles into p equal-count groups by SFC key; cells follow the
		// key ranges of the groups.
		keys := sortedKeys(s, g, ix)
		splits := make([]float64, d.P-1) // first key of group k+1
		n := len(keys)
		for k := 0; k < d.P-1; k++ {
			_, hi := mesh.BlockRange(n, d.P, k)
			if hi < n {
				splits[k] = keys[hi]
			} else if n > 0 {
				splits[k] = keys[n-1] + 1
			}
		}
		assignByKey := func(key float64) int {
			r := sort.SearchFloat64s(splits, key)
			// Keys equal to a split belong to the later group, matching the
			// half-open group ranges.
			for r < len(splits) && splits[r] == key {
				r++
			}
			return r
		}
		for i := 0; i < s.Len(); i++ {
			cx, cy := g.CellOf(s.X[i], s.Y[i])
			l.Particles[i] = assignByKey(float64(ix.Index(cx, cy)))
		}
		for cy := 0; cy < g.Ny; cy++ {
			for cx := 0; cx < g.Nx; cx++ {
				l.cellOwner[cy*g.Nx+cx] = assignByKey(float64(ix.Index(cx, cy)))
			}
		}
	case StrategyIndependent:
		// Cells by BLOCK; particles into equal-count groups by SFC key
		// through the shared dimension-generic dealer.
		for cy := 0; cy < g.Ny; cy++ {
			for cx := 0; cx < g.Nx; cx++ {
				l.cellOwner[cy*g.Nx+cx] = d.OwnerOfPoint(cx, cy)
			}
		}
		keys := make([]uint64, s.Len())
		for i := range keys {
			cx, cy := g.CellOf(s.X[i], s.Y[i])
			keys[i] = uint64(ix.Index(cx, cy))
		}
		l.Particles = equalCountOwners(keys, d.P)
	default:
		return nil, fmt.Errorf("partition: unknown strategy %v", strategy)
	}
	return l, nil
}

func sortedKeys(s *particle.Store, g mesh.Grid, ix sfc.Indexer) []float64 {
	keys := make([]float64, s.Len())
	for i := 0; i < s.Len(); i++ {
		cx, cy := g.CellOf(s.X[i], s.Y[i])
		keys[i] = float64(ix.Index(cx, cy))
	}
	sort.Float64s(keys)
	return keys
}

// Quality quantifies a layout for the current particle positions,
// reproducing the qualitative rows of Table 1 as measured numbers.
type Quality struct {
	// ParticleImbalance is max particles per rank divided by the mean
	// (1.0 = perfectly balanced "particle calculation" load).
	ParticleImbalance float64
	// GridImbalance is max cells per rank divided by the mean (field-solve
	// load).
	GridImbalance float64
	// MaxGhostPoints is the largest number of unique off-processor grid
	// points any rank's particles touch (scatter-phase traffic ∝ this).
	MaxGhostPoints int
	// TotalGhostPoints sums ghost points over ranks.
	TotalGhostPoints int
	// MaxPartners is the largest number of distinct communication partner
	// ranks any rank has in the scatter phase.
	MaxPartners int
	// NonLocalFraction is the fraction of ghost points owned by ranks that
	// are not 8-neighbours of the accessing rank on the processor grid
	// ("local" vs "non-local" communication in Table 1). Only meaningful
	// when the cell distribution is the BLOCK distribution d.
	NonLocalFraction float64
	// WeightedImbalance is max weighted load per rank divided by the mean,
	// where each particle contributes the weight of its cell. Under the
	// equal-count split (uniform weights) it coincides with
	// ParticleImbalance.
	WeightedImbalance float64
}

// Measure computes Quality for layout l at the particles' current
// positions. d supplies the processor-grid geometry for the locality
// classification.
func Measure(l *Layout, g mesh.Grid, d *mesh.Dist, s *particle.Store) Quality {
	p := l.P
	partCount := make([]int, p)
	for _, r := range l.Particles {
		partCount[r]++
	}
	cellCount := make([]int, p)
	for _, r := range l.cellOwner {
		cellCount[r]++
	}

	// Unique grid points touched per rank: set of (vertex, rank).
	ghost := make([]map[int]bool, p)
	for r := range ghost {
		ghost[r] = make(map[int]bool)
	}
	for i := 0; i < s.Len(); i++ {
		r := l.Particles[i]
		w := pusher.Weights(g, s.X[i], s.Y[i])
		for _, off := range pusher.VertexOffsets {
			gid := g.PointIndex(w.CX+off[0], w.CY+off[1])
			ci, cj := g.PointCoords(gid)
			if l.CellOwner(ci, cj) != r {
				ghost[r][gid] = true
			}
		}
	}

	var q Quality
	q.ParticleImbalance = imbalance(partCount)
	q.WeightedImbalance = q.ParticleImbalance // unit weights
	q.GridImbalance = imbalance(cellCount)
	partners := 0
	nonLocal, totalGhost := 0, 0
	for r := 0; r < p; r++ {
		if len(ghost[r]) > q.MaxGhostPoints {
			q.MaxGhostPoints = len(ghost[r])
		}
		totalGhost += len(ghost[r])
		owners := map[int]bool{}
		for gid := range ghost[r] {
			ci, cj := g.PointCoords(gid)
			o := l.CellOwner(ci, cj)
			owners[o] = true
			if !adjacentRanks(d, r, o) {
				nonLocal++
			}
		}
		if len(owners) > partners {
			partners = len(owners)
		}
	}
	q.TotalGhostPoints = totalGhost
	q.MaxPartners = partners
	if totalGhost > 0 {
		q.NonLocalFraction = float64(nonLocal) / float64(totalGhost)
	}
	return q
}

func imbalance(counts []int) float64 {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}

// adjacentRanks reports whether ranks a and b are identical or
// 8-neighbours on the periodic processor grid of d.
func adjacentRanks(d *mesh.Dist, a, b int) bool {
	if a == b {
		return true
	}
	ax, ay := d.RankCoords(a)
	bx, by := d.RankCoords(b)
	dx := wrapDist(ax-bx, d.Px)
	dy := wrapDist(ay-by, d.Py)
	return dx <= 1 && dy <= 1
}

func wrapDist(d, n int) int {
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
