// Weighted independent partitioning: the equal-count SFC split of
// independent.go generalised to arbitrary per-cell weights. Particles are
// still dealt in (key, original index) order into P contiguous chunks, but
// the chunk boundaries equalise cumulative *weight* rather than count —
// Liu et al.'s Hilbert-SFC weighted splitting expressed over the same
// radix-sorted order. Weights are quantized to integers on a shared
// power-of-two scale so the prefix-sum arithmetic is exact: equal-count is
// recovered bit for bit when every weight is the same, and the split is
// exactly invariant under power-of-two weight rescaling.

package partition

import (
	"picpar/internal/geom"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/radix"
)

// WeightFunc maps an SFC cell key to the estimated cost of one particle in
// that cell. Non-finite and non-positive values are treated as zero weight.
type WeightFunc func(cellKey uint64) float64

// sanitizeWeight clamps NaN, ±Inf and negative weights to zero so a single
// bad estimate cannot poison the split.
func sanitizeWeight(w float64) float64 {
	if !(w > 0) { // catches NaN, zero, negatives
		return 0
	}
	return w
}

// weightedOwners deals the particles, in stable (key, original index)
// order, into P contiguous chunks of approximately equal cumulative
// weight. A nil wf (or all-zero weights) degrades to equalCountOwners'
// BLOCK split.
func weightedOwners(keys []uint64, p int, wf WeightFunc) []int {
	n := len(keys)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sorted, order := radix.SortKeysIndex(keys, order, nil)
	owners := make([]int, n)
	if wf == nil {
		for pos, i := range order {
			owners[i] = mesh.BlockOwner(n, p, pos)
		}
		return owners
	}

	// Quantize weights in sorted order on the shared power-of-two scale.
	w := make([]float64, n)
	maxW := 0.0
	for pos := range sorted {
		w[pos] = sanitizeWeight(wf(sorted[pos]))
		if w[pos] > maxW {
			maxW = w[pos]
		}
	}
	scale := mesh.WeightScale(maxW)
	iw := make([]int64, n)
	total := int64(0)
	for pos := range w {
		iw[pos] = mesh.QuantizeWeight(w[pos], scale)
		total += iw[pos]
	}
	if total <= 0 {
		for pos, i := range order {
			owners[i] = mesh.BlockOwner(n, p, pos)
		}
		return owners
	}

	cuts := mesh.WeightedCuts(total, n, p)
	k, prefix := 0, int64(0)
	for pos, i := range order {
		k = mesh.AdvanceCut(cuts, k, prefix)
		owners[i] = k
		prefix += iw[pos]
	}
	return owners
}

// BuildIndependentWeighted computes the weighted independent-partitioning
// layout for the store's current positions under ge, splitting the SFC
// order by cumulative weight. A nil wf reproduces BuildIndependent exactly.
// The store's keys are refreshed as a side effect.
func BuildIndependentWeighted(ge geom.Geometry, s *particle.Store, wf WeightFunc) *IndependentLayout {
	ge.AssignKeys(s)
	keys := make([]uint64, s.Len())
	for i := range keys {
		keys[i] = uint64(s.Key[i])
	}
	return &IndependentLayout{P: ge.Ranks(), Particles: weightedOwners(keys, ge.Ranks(), wf)}
}

// MeasureIndependentWeighted computes the Table 1 quality metrics like
// MeasureIndependent, and additionally fills Quality.WeightedImbalance
// with the max/mean per-rank cumulative weight under wf (each particle
// contributing its cell's weight). The store's keys must be current (both
// Build functions refresh them).
func MeasureIndependentWeighted(ge geom.Geometry, l *IndependentLayout, s *particle.Store, wf WeightFunc) Quality {
	q := MeasureIndependent(ge, l, s)
	if wf == nil {
		return q
	}
	loads := make([]float64, l.P)
	for i := 0; i < s.Len(); i++ {
		loads[l.Particles[i]] += sanitizeWeight(wf(uint64(s.Key[i])))
	}
	q.WeightedImbalance = imbalanceF(loads)
	return q
}

// imbalanceF is imbalance over float loads: max/mean, or 1 for zero total.
func imbalanceF(loads []float64) float64 {
	total, max := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	mean := total / float64(len(loads))
	return max / mean
}
