package partition

import (
	"testing"

	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/sfc"
)

func setup(t *testing.T, dist string, n int) (mesh.Grid, *mesh.Dist, sfc.Indexer, *particle.Store) {
	t.Helper()
	g := mesh.NewGrid(32, 32)
	d, err := mesh.NewDistOrdered(g, 16, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix := sfc.MustNew(sfc.SchemeHilbert, 32, 32)
	s, err := particle.Generate(particle.Config{
		N: n, Lx: g.Lx, Ly: g.Ly, Distribution: dist, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, d, ix, s
}

func TestAssignKeysMatchesIndexer(t *testing.T) {
	g, _, ix, s := setup(t, particle.DistUniform, 500)
	AssignKeys(s, g, ix)
	for i := 0; i < s.Len(); i++ {
		cx, cy := g.CellOf(s.X[i], s.Y[i])
		if s.Key[i] != float64(ix.Index(cx, cy)) {
			t.Fatalf("particle %d key %g != index %d", i, s.Key[i], ix.Index(cx, cy))
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyGrid.String() != "grid" || StrategyParticle.String() != "particle" ||
		StrategyIndependent.String() != "independent" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Error("unknown strategy name")
	}
}

func TestBuildGridStrategy(t *testing.T) {
	g, d, ix, s := setup(t, particle.DistIrregular, 4000)
	l, err := Build(StrategyGrid, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	// Cells follow BLOCK exactly.
	for cy := 0; cy < g.Ny; cy++ {
		for cx := 0; cx < g.Nx; cx++ {
			if l.CellOwner(cx, cy) != d.OwnerOfPoint(cx, cy) {
				t.Fatalf("cell (%d,%d) owner mismatch", cx, cy)
			}
		}
	}
	// Particles follow their cell.
	for i := 0; i < s.Len(); i++ {
		cx, cy := g.CellOf(s.X[i], s.Y[i])
		if l.Particles[i] != d.OwnerOfPoint(cx, cy) {
			t.Fatalf("particle %d not with its cell", i)
		}
	}
	q := Measure(l, g, d, s)
	// Grid partitioning of an irregular distribution: grid balanced,
	// particles badly unbalanced, and all communication local.
	if q.GridImbalance > 1.01 {
		t.Errorf("grid imbalance %g, want ~1", q.GridImbalance)
	}
	if q.ParticleImbalance < 2 {
		t.Errorf("particle imbalance %g, want >> 1 for a centre-concentrated blob", q.ParticleImbalance)
	}
	if q.NonLocalFraction > 0.01 {
		t.Errorf("grid strategy must communicate locally, non-local %g", q.NonLocalFraction)
	}
}

func TestBuildParticleStrategy(t *testing.T) {
	g, d, ix, s := setup(t, particle.DistIrregular, 4000)
	l, err := Build(StrategyParticle, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(l, g, d, s)
	// Particle partitioning: particles balanced, grid unbalanced.
	// Splits happen at whole-key (cell) granularity, so with ~4 particles
	// per cell the counts can be off by a cell's worth.
	if q.ParticleImbalance > 1.3 {
		t.Errorf("particle imbalance %g, want ~1", q.ParticleImbalance)
	}
	if q.GridImbalance < 2 {
		t.Errorf("grid imbalance %g, want >> 1", q.GridImbalance)
	}
	// Every rank holds some particles.
	counts := make([]int, l.P)
	for _, r := range l.Particles {
		if r < 0 || r >= l.P {
			t.Fatalf("particle assigned to invalid rank %d", r)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c == 0 {
			t.Errorf("rank %d holds no particles", r)
		}
	}
}

func TestBuildIndependentStrategy(t *testing.T) {
	g, d, ix, s := setup(t, particle.DistIrregular, 4000)
	l, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(l, g, d, s)
	// Independent: both balanced.
	if q.ParticleImbalance > 1.1 {
		t.Errorf("particle imbalance %g", q.ParticleImbalance)
	}
	if q.GridImbalance > 1.01 {
		t.Errorf("grid imbalance %g", q.GridImbalance)
	}
}

func TestIndependentUniformMostlyLocal(t *testing.T) {
	// With a near-uniform distribution, SFC alignment makes particle and
	// mesh subdomains overlap, so ghost traffic is mostly between nearby
	// ranks.
	g, d, ix, s := setup(t, particle.DistUniform, 8000)
	l, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(l, g, d, s)
	if q.NonLocalFraction > 0.35 {
		t.Errorf("uniform independent partition should be mostly local, non-local %g", q.NonLocalFraction)
	}
}

func TestIndependentIrregularNonLocalExceedsUniform(t *testing.T) {
	// Table 1: independent partitioning pays with non-local communication
	// when the distribution is irregular.
	g, d, ix, su := setup(t, particle.DistUniform, 8000)
	lu, _ := Build(StrategyIndependent, g, d, ix, su)
	qu := Measure(lu, g, d, su)

	_, _, _, si := setup(t, particle.DistIrregular, 8000)
	li, _ := Build(StrategyIndependent, g, d, ix, si)
	qi := Measure(li, g, d, si)

	if qi.NonLocalFraction <= qu.NonLocalFraction {
		t.Errorf("irregular non-local (%g) should exceed uniform (%g)",
			qi.NonLocalFraction, qu.NonLocalFraction)
	}
}

func TestHilbertGhostsBeatSnakeOnUniform(t *testing.T) {
	// Section 5.1 / Table 2 premise: Hilbert-ordered particle subdomains
	// are more compact, touching fewer off-processor grid points.
	g, dh, _, s := setup(t, particle.DistUniform, 8000)
	ds, err := mesh.NewDistOrdered(g, 16, sfc.SchemeSnake)
	if err != nil {
		t.Fatal(err)
	}
	hil := sfc.MustNew(sfc.SchemeHilbert, g.Nx, g.Ny)
	snk := sfc.MustNew(sfc.SchemeSnake, g.Nx, g.Ny)
	lh, _ := Build(StrategyIndependent, g, dh, hil, s)
	ls, _ := Build(StrategyIndependent, g, ds, snk, s)
	qh := Measure(lh, g, dh, s)
	qs := Measure(ls, g, ds, s)
	if qh.TotalGhostPoints >= qs.TotalGhostPoints {
		t.Errorf("hilbert ghosts %d should beat snake %d", qh.TotalGhostPoints, qs.TotalGhostPoints)
	}
}

func TestMeasureEmptyStore(t *testing.T) {
	g, d, ix, _ := setup(t, particle.DistUniform, 0)
	s := particle.NewStore(0, -1, 1)
	l, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(l, g, d, s)
	if q.MaxGhostPoints != 0 || q.TotalGhostPoints != 0 {
		t.Errorf("empty store has ghosts: %+v", q)
	}
	if q.ParticleImbalance != 1 {
		t.Errorf("empty imbalance %g, want 1 by convention", q.ParticleImbalance)
	}
}

func TestPartitionEvolutionDegradesLagrangian(t *testing.T) {
	// Table 1 "after a few iterations" row for direct Lagrangian: keep the
	// assignment fixed, drift the particles, and the ghost count grows.
	g, d, ix, s := setup(t, particle.DistUniform, 6000)
	l, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q0 := Measure(l, g, d, s)
	// Drift: move every particle diagonally by a few cells (Lagrangian:
	// assignment stays).
	for i := 0; i < s.Len(); i++ {
		s.X[i], s.Y[i] = g.WrapPosition(s.X[i]+3.3, s.Y[i]+2.1)
	}
	q1 := Measure(l, g, d, s)
	if q1.TotalGhostPoints <= q0.TotalGhostPoints {
		t.Errorf("drift should increase ghosts: %d -> %d", q0.TotalGhostPoints, q1.TotalGhostPoints)
	}
	// Rebuilding the partition (redistribution) restores compactness.
	l2, err := Build(StrategyIndependent, g, d, ix, s)
	if err != nil {
		t.Fatal(err)
	}
	q2 := Measure(l2, g, d, s)
	if q2.TotalGhostPoints >= q1.TotalGhostPoints {
		t.Errorf("redistribution should reduce ghosts: %d -> %d", q1.TotalGhostPoints, q2.TotalGhostPoints)
	}
}

func TestBuildUnknownStrategy(t *testing.T) {
	g, d, ix, s := setup(t, particle.DistUniform, 10)
	if _, err := Build(Strategy(42), g, d, ix, s); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func TestWrapDist(t *testing.T) {
	if wrapDist(3, 4) != 1 || wrapDist(-3, 4) != 1 || wrapDist(2, 4) != 2 || wrapDist(0, 4) != 0 {
		t.Error("wrapDist wrong")
	}
}
