// Geometry-generic independent partitioning: the same equal-count SFC-key
// assignment and quality metrics as the 2-D Table 1 analysis, expressed
// over the geom.Geometry seam so the identical code measures 2-D and 3-D
// layouts. This is the collapsed form of the former partition3 package.

package partition

import (
	"picpar/internal/geom"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/radix"
)

// IndependentLayout is an independent-partitioning assignment over any
// geometry: particles into equal-count chunks by SFC key, while the mesh
// keeps its BLOCK distribution (queried through the geometry).
type IndependentLayout struct {
	P         int
	Particles []int // particle -> rank
}

// equalCountOwners deals the particles, in stable (key, original index)
// order, into P equal-count contiguous chunks — the shared core of
// StrategyIndependent in every dimensionality.
func equalCountOwners(keys []uint64, p int) []int {
	n := len(keys)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	_, order = radix.SortKeysIndex(keys, order, nil)
	owners := make([]int, n)
	for pos, i := range order {
		owners[i] = mesh.BlockOwner(n, p, pos)
	}
	return owners
}

// BuildIndependent computes the independent-partitioning layout for the
// store's current positions under ge. The store's keys are refreshed as a
// side effect (exactly what ge.AssignKeys produces).
func BuildIndependent(ge geom.Geometry, s *particle.Store) *IndependentLayout {
	ge.AssignKeys(s)
	keys := make([]uint64, s.Len())
	for i := range keys {
		keys[i] = uint64(s.Key[i])
	}
	return &IndependentLayout{P: ge.Ranks(), Particles: equalCountOwners(keys, ge.Ranks())}
}

// MeasureIndependent computes the Table 1 quality metrics for an
// independent layout in any dimensionality: per-rank ghost points of the
// CIC footprint against the geometry's mesh ownership, partner counts, and
// the local/non-local communication split under the geometry's neighbour
// stencil.
func MeasureIndependent(ge geom.Geometry, l *IndependentLayout, s *particle.Store) Quality {
	p := l.P
	partCount := make([]int, p)
	for _, r := range l.Particles {
		partCount[r]++
	}
	cellCount := make([]int, p)
	for gid := 0; gid < ge.NumPoints(); gid++ {
		cellCount[ge.OwnerOfPoint(gid)]++
	}

	ghost := make([]map[int]bool, p)
	for r := range ghost {
		ghost[r] = make(map[int]bool)
	}
	var fp geom.Footprint
	for i := 0; i < s.Len(); i++ {
		r := l.Particles[i]
		ge.Footprint(s, i, &fp)
		for k := 0; k < fp.N; k++ {
			gid := int(fp.Gid[k])
			if ge.OwnerOfPoint(gid) != r {
				ghost[r][gid] = true
			}
		}
	}

	var q Quality
	q.ParticleImbalance = imbalance(partCount)
	q.WeightedImbalance = q.ParticleImbalance // unit weights
	q.GridImbalance = imbalance(cellCount)
	nonLocal := 0
	for r := 0; r < p; r++ {
		if len(ghost[r]) > q.MaxGhostPoints {
			q.MaxGhostPoints = len(ghost[r])
		}
		q.TotalGhostPoints += len(ghost[r])
		owners := map[int]bool{}
		for gid := range ghost[r] {
			o := ge.OwnerOfPoint(gid)
			owners[o] = true
			if !ge.AdjacentRanks(r, o) {
				nonLocal++
			}
		}
		if len(owners) > q.MaxPartners {
			q.MaxPartners = len(owners)
		}
	}
	if q.TotalGhostPoints > 0 {
		q.NonLocalFraction = float64(nonLocal) / float64(q.TotalGhostPoints)
	}
	return q
}
