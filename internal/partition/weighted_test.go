package partition

import (
	"math/rand"
	"sort"
	"testing"

	"picpar/internal/geom"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/sfc"
)

// cloneKeys guards against SortKeysIndex's in-place sort: every call under
// test gets its own copy, as the Build* entry points arrange in production.
func cloneKeys(keys []uint64) []uint64 {
	return append([]uint64(nil), keys...)
}

func testKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(257)) // heavy duplication, like real cells
	}
	return keys
}

// TestWeightedOwnersUniformEqualsEqualCount: with every cell at the same
// weight — any same weight — the weighted split must equal equalCountOwners
// exactly, particle for particle. Equal-count is the weight-1 special case.
func TestWeightedOwnersUniformEqualsEqualCount(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		for _, p := range []int{1, 2, 3, 8, 13} {
			keys := testKeys(n, int64(n*31+p))
			want := equalCountOwners(cloneKeys(keys), p)
			for _, w := range []float64{1, 0.125, 3.7, 1e-9, 1e12} {
				w := w
				got := weightedOwners(cloneKeys(keys), p, func(uint64) float64 { return w })
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d p=%d w=%g: particle %d owner %d, want %d",
							n, p, w, i, got[i], want[i])
					}
				}
			}
			// nil and all-zero weight functions also degrade to equal-count.
			for _, wf := range []WeightFunc{nil, func(uint64) float64 { return 0 }} {
				got := weightedOwners(cloneKeys(keys), p, wf)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d p=%d degenerate wf: particle %d owner %d, want %d",
							n, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestWeightedOwnersDeterministicAndScaleInvariant: the split is a pure
// function of its inputs, and rescaling all weights by a power of two (or
// any common factor that survives quantization) leaves it unchanged.
func TestWeightedOwnersDeterministicAndScaleInvariant(t *testing.T) {
	keys := testKeys(2000, 42)
	wf := func(k uint64) float64 { return float64(k%7) + 0.5 }
	base := weightedOwners(cloneKeys(keys), 8, wf)
	again := weightedOwners(cloneKeys(keys), 8, wf)
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("weightedOwners not deterministic at particle %d", i)
		}
	}
	for _, c := range []float64{0.25, 2, 1024, 1.0 / 65536} {
		c := c
		scaled := weightedOwners(cloneKeys(keys), 8, func(k uint64) float64 { return c * wf(k) })
		for i := range base {
			if scaled[i] != base[i] {
				t.Fatalf("scale %g: particle %d owner %d, want %d", c, i, scaled[i], base[i])
			}
		}
	}
}

// TestWeightedOwnersBalancesWeight: on a two-population workload (a few
// heavy cells, many light ones) the weighted split's per-rank weight
// imbalance must beat equal-count's, and the split must respect the sorted
// order (owners non-decreasing along the sorted key order).
func TestWeightedOwnersBalancesWeight(t *testing.T) {
	const n, p = 4000, 8
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, n)
	for i := range keys {
		if i%4 == 0 {
			keys[i] = uint64(rng.Intn(16)) // hot cells
		} else {
			keys[i] = 16 + uint64(rng.Intn(240))
		}
	}
	wf := func(k uint64) float64 {
		if k < 16 {
			return 25
		}
		return 1
	}
	loadOf := func(owners []int) float64 {
		loads := make([]float64, p)
		for i, r := range owners {
			loads[r] += wf(keys[i])
		}
		return imbalanceF(loads)
	}
	eq := loadOf(equalCountOwners(cloneKeys(keys), p))
	wt := loadOf(weightedOwners(cloneKeys(keys), p, wf))
	if wt >= eq {
		t.Errorf("weighted split imbalance %g not better than equal-count %g", wt, eq)
	}
	if wt > 1.1 {
		t.Errorf("weighted split imbalance %g, want near 1", wt)
	}

	owners := weightedOwners(cloneKeys(keys), p, wf)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	prev := 0
	for _, i := range idx {
		if owners[i] < prev {
			t.Fatalf("owners not monotone along sorted keys: %d after %d", owners[i], prev)
		}
		if owners[i] < 0 || owners[i] >= p {
			t.Fatalf("owner %d out of range", owners[i])
		}
		prev = owners[i]
	}
}

// TestMeasureIndependentWeightedBruteForce: WeightedImbalance must equal
// the brute-force max/mean of per-rank summed particle weights, and the
// unit-weight case must coincide with ParticleImbalance.
func TestMeasureIndependentWeightedBruteForce(t *testing.T) {
	g := mesh.NewGrid(32, 32)
	d, err := mesh.NewDistOrdered(g, 8, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sfc.New(sfc.SchemeHilbert, g.Nx, g.Ny)
	if err != nil {
		t.Fatal(err)
	}
	s, err := particle.Generate(particle.Config{
		N: 4096, Lx: g.Lx, Ly: g.Ly, Distribution: particle.DistIrregular, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ge := geom.New2(g, d, ix)
	wf := func(k uint64) float64 { return 1 + float64(k%13) }

	l := BuildIndependentWeighted(ge, s, wf)
	q := MeasureIndependentWeighted(ge, l, s, wf)

	loads := make([]float64, l.P)
	total := 0.0
	for i := 0; i < s.Len(); i++ {
		w := wf(uint64(s.Key[i]))
		loads[l.Particles[i]] += w
		total += w
	}
	max := 0.0
	for _, ld := range loads {
		if ld > max {
			max = ld
		}
	}
	want := max / (total / float64(l.P))
	if q.WeightedImbalance != want {
		t.Errorf("WeightedImbalance %g, want brute force %g", q.WeightedImbalance, want)
	}
	if q.WeightedImbalance > 1.2 {
		t.Errorf("weighted build should balance weight, imbalance %g", q.WeightedImbalance)
	}

	// Unit weights: WeightedImbalance == ParticleImbalance, and the layout
	// matches BuildIndependent.
	lu := BuildIndependentWeighted(ge, s, func(uint64) float64 { return 1 })
	qu := MeasureIndependentWeighted(ge, lu, s, func(uint64) float64 { return 1 })
	if qu.WeightedImbalance != qu.ParticleImbalance {
		t.Errorf("unit-weight WeightedImbalance %g != ParticleImbalance %g",
			qu.WeightedImbalance, qu.ParticleImbalance)
	}
	le := BuildIndependent(ge, s)
	for i := range le.Particles {
		if lu.Particles[i] != le.Particles[i] {
			t.Fatalf("unit-weight build differs from BuildIndependent at particle %d", i)
		}
	}
}
