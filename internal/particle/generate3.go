package particle

import (
	"fmt"
	"math"
	"math/rand"
)

// Config3 parameterises 3-D particle generation. The distributions mirror
// the 2-D generator but consume their own rng stream (adding a coordinate
// necessarily changes consumption order, so 3-D generation lives here and
// the 2-D stream stays frozen for golden reproducibility).
type Config3 struct {
	N            int     // total particle count
	Lx, Ly, Lz   float64 // physical domain size
	Distribution string
	Seed         int64
	Thermal      float64 // thermal momentum spread (p/mc); default 0.05
	Drift        float64 // drift momentum for twostream/beam; default 0.2
	Sigma        float64 // Gaussian std-dev fraction for irregular; default 0.1
	Charge, Mass float64 // default −1 and 1
}

func (c Config3) withDefaults() Config3 {
	if c.Thermal == 0 {
		c.Thermal = 0.05
	}
	if c.Drift == 0 {
		c.Drift = 0.2
	}
	if c.Sigma == 0 {
		c.Sigma = 0.1
	}
	if c.Charge == 0 {
		c.Charge = -1
	}
	if c.Mass == 0 {
		c.Mass = 1
	}
	return c
}

// Generate3 creates the global 3-D particle population for a simulation.
func Generate3(cfg Config3) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 || cfg.Lx <= 0 || cfg.Ly <= 0 || cfg.Lz <= 0 {
		return nil, fmt.Errorf("particle: invalid 3-D config n=%d domain=%gx%gx%g", cfg.N, cfg.Lx, cfg.Ly, cfg.Lz)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := NewStore3(cfg.N, cfg.Charge, cfg.Mass)
	switch cfg.Distribution {
	case DistUniform, "":
		for i := 0; i < cfg.N; i++ {
			s.Append3(rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly, rng.Float64()*cfg.Lz,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistIrregular:
		sx, sy, sz := cfg.Sigma*cfg.Lx, cfg.Sigma*cfg.Ly, cfg.Sigma*cfg.Lz
		for i := 0; i < cfg.N; i++ {
			x := gaussInDomain(rng, cfg.Lx/2, sx, cfg.Lx)
			y := gaussInDomain(rng, cfg.Ly/2, sy, cfg.Ly)
			z := gaussInDomain(rng, cfg.Lz/2, sz, cfg.Lz)
			s.Append3(x, y, z,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistTwoStream:
		for i := 0; i < cfg.N; i++ {
			drift := cfg.Drift
			if i%2 == 1 {
				drift = -cfg.Drift
			}
			s.Append3(rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly, rng.Float64()*cfg.Lz,
				drift+rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistBeam:
		sx, sy, sz := cfg.Sigma*cfg.Lx, cfg.Sigma*cfg.Ly, cfg.Sigma*cfg.Lz
		for i := 0; i < cfg.N; i++ {
			x := gaussInDomain(rng, cfg.Lx*0.15, sx, cfg.Lx)
			y := gaussInDomain(rng, cfg.Ly/2, sy, cfg.Ly)
			z := gaussInDomain(rng, cfg.Lz/2, sz, cfg.Lz)
			s.Append3(x, y, z,
				cfg.Drift+rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistSpike:
		sx, sy, sz := 0.03*cfg.Lx, 0.03*cfg.Ly, 0.03*cfg.Lz
		for i := 0; i < cfg.N; i++ {
			var x, y, z float64
			if i%5 == 0 { // uniform background, every fifth particle
				x, y, z = rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly, rng.Float64()*cfg.Lz
			} else {
				x = gaussInDomain(rng, cfg.Lx*0.7, sx, cfg.Lx)
				y = gaussInDomain(rng, cfg.Ly*0.3, sy, cfg.Ly)
				z = gaussInDomain(rng, cfg.Lz/2, sz, cfg.Lz)
			}
			s.Append3(x, y, z,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistCollapse:
		for i := 0; i < cfg.N; i++ {
			x, y, z := rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly, rng.Float64()*cfg.Lz
			dx, dy, dz := cfg.Lx/2-x, cfg.Ly/2-y, cfg.Lz/2-z
			norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if norm == 0 {
				norm = 1
			}
			s.Append3(x, y, z,
				cfg.Drift*dx/norm+rng.NormFloat64()*cfg.Thermal,
				cfg.Drift*dy/norm+rng.NormFloat64()*cfg.Thermal,
				cfg.Drift*dz/norm+rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	default:
		return nil, fmt.Errorf("particle: unknown distribution %q", cfg.Distribution)
	}
	return s, nil
}
