// Package particle provides the particle array of the PIC problem: a
// structure-of-arrays store for relativistic charged particles, plus the
// initial-distribution generators used by the paper's experiments (uniform
// and centre-concentrated irregular) and by the examples (two-stream, beam).
//
// Particles carry positions (x, y), relativistic momenta (px, py, pz) in
// units of m·c, a stable global id, and a sort key — the space-filling-curve
// index of the particle's cell — maintained by the distribution and
// redistribution algorithms.
package particle

import (
	"fmt"
	"math"
	"math/rand"
)

// WireFloats is the number of float64 words one two-dimensional particle
// occupies in a message: x, y, px, py, pz, id, key. Three-dimensional
// particles additionally carry z; use Store.WireFloats for the layout of a
// concrete store.
const WireFloats = 7

// WireBytes is the modelled wire size of one 2-D particle.
const WireBytes = WireFloats * 8

// Store holds particles of one species in structure-of-arrays layout.
// All slices always have equal length. Z is nil for two-dimensional
// populations and present (same length as X) for three-dimensional ones —
// the store's dimensionality is fixed at construction and preserved by
// every operation, including the wire format.
type Store struct {
	X, Y       []float64 // positions, in physical domain coordinates
	Z          []float64 // third position axis; nil for 2-D stores
	Px, Py, Pz []float64 // momenta / (m c)
	ID         []float64 // stable global id (integral values)
	Key        []float64 // SFC cell index used for ordering (integral values)

	// Charge and Mass are per-species constants (macroparticle weight is
	// folded into Charge).
	Charge, Mass float64
}

// NewStore returns an empty 2-D store with capacity for n particles and
// the given species constants.
func NewStore(n int, charge, mass float64) *Store {
	return &Store{
		X:      make([]float64, 0, n),
		Y:      make([]float64, 0, n),
		Px:     make([]float64, 0, n),
		Py:     make([]float64, 0, n),
		Pz:     make([]float64, 0, n),
		ID:     make([]float64, 0, n),
		Key:    make([]float64, 0, n),
		Charge: charge,
		Mass:   mass,
	}
}

// NewStore3 returns an empty 3-D store (with a Z axis) with capacity for n
// particles.
func NewStore3(n int, charge, mass float64) *Store {
	s := NewStore(n, charge, mass)
	s.Z = make([]float64, 0, n)
	return s
}

// NewLike returns an empty store of the same dimensionality and species
// constants as s, with capacity for n particles. All code that creates
// scratch or output stores for an existing population must use this so 3-D
// particles never silently lose their Z axis.
func (s *Store) NewLike(n int) *Store {
	if s.Z != nil {
		return NewStore3(n, s.Charge, s.Mass)
	}
	return NewStore(n, s.Charge, s.Mass)
}

// Dims returns the spatial dimensionality of the store (2 or 3).
func (s *Store) Dims() int {
	if s.Z != nil {
		return 3
	}
	return 2
}

// WireFloats returns the number of float64 words one particle of this
// store occupies in a message: 7 for 2-D (x, y, px, py, pz, id, key),
// 8 for 3-D (z travels after y).
func (s *Store) WireFloats() int {
	if s.Z != nil {
		return WireFloats + 1
	}
	return WireFloats
}

// Len returns the number of particles.
func (s *Store) Len() int { return len(s.X) }

// Append adds one particle.
func (s *Store) Append(x, y, px, py, pz, id float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Px = append(s.Px, px)
	s.Py = append(s.Py, py)
	s.Pz = append(s.Pz, pz)
	s.ID = append(s.ID, id)
	s.Key = append(s.Key, 0)
}

// Append3 adds one 3-D particle. The store must have been created with
// NewStore3.
func (s *Store) Append3(x, y, z, px, py, pz, id float64) {
	s.Append(x, y, px, py, pz, id)
	s.Z = append(s.Z, z)
}

// AppendFrom copies particle i of src (all fields, including the sort key)
// onto the end of s.
func (s *Store) AppendFrom(src *Store, i int) {
	s.X = append(s.X, src.X[i])
	s.Y = append(s.Y, src.Y[i])
	if s.Z != nil {
		s.Z = append(s.Z, src.Z[i])
	}
	s.Px = append(s.Px, src.Px[i])
	s.Py = append(s.Py, src.Py[i])
	s.Pz = append(s.Pz, src.Pz[i])
	s.ID = append(s.ID, src.ID[i])
	s.Key = append(s.Key, src.Key[i])
}

// Swap exchanges particles i and j (sort support).
func (s *Store) Swap(i, j int) {
	s.X[i], s.X[j] = s.X[j], s.X[i]
	s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
	if s.Z != nil {
		s.Z[i], s.Z[j] = s.Z[j], s.Z[i]
	}
	s.Px[i], s.Px[j] = s.Px[j], s.Px[i]
	s.Py[i], s.Py[j] = s.Py[j], s.Py[i]
	s.Pz[i], s.Pz[j] = s.Pz[j], s.Pz[i]
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
	s.Key[i], s.Key[j] = s.Key[j], s.Key[i]
}

// Less orders by sort key (ties broken by id for determinism).
func (s *Store) Less(i, j int) bool {
	if s.Key[i] != s.Key[j] {
		return s.Key[i] < s.Key[j]
	}
	return s.ID[i] < s.ID[j]
}

// Scratch holds the reusable destination arrays of ApplyPermutation. The
// zero value is ready to use; arrays grow on demand and are retained (the
// store's previous arrays swap into the scratch), so repeated sorts of
// similar-sized stores allocate nothing.
type Scratch struct {
	x, y, z, px, py, pz, id, key []float64
}

func (sc *Scratch) grow(n int, withZ bool) {
	if cap(sc.x) < n {
		sc.x = make([]float64, n)
		sc.y = make([]float64, n)
		sc.px = make([]float64, n)
		sc.py = make([]float64, n)
		sc.pz = make([]float64, n)
		sc.id = make([]float64, n)
		sc.key = make([]float64, n)
	}
	if withZ && cap(sc.z) < n {
		sc.z = make([]float64, n)
	}
	sc.x = sc.x[:n]
	sc.y = sc.y[:n]
	sc.px = sc.px[:n]
	sc.py = sc.py[:n]
	sc.pz = sc.pz[:n]
	sc.id = sc.id[:n]
	sc.key = sc.key[:n]
	if withZ {
		sc.z = sc.z[:n]
	}
}

// ApplyPermutation reorders the store so that position i holds the particle
// previously at perm[i], for all 7 SoA fields, using a single out-of-place
// gather per field instead of O(n log n) element swaps. perm must be a
// permutation of 0..Len()−1. scr provides the destination arrays (nil means
// allocate fresh ones); afterwards scr holds the store's previous arrays
// for reuse by the next call.
func (s *Store) ApplyPermutation(perm []int32, scr *Scratch) {
	n := s.Len()
	if len(perm) != n {
		panic(fmt.Sprintf("particle: ApplyPermutation perm len %d, store len %d", len(perm), n))
	}
	if scr == nil {
		scr = &Scratch{}
	}
	scr.grow(n, s.Z != nil)
	for i, p := range perm {
		scr.x[i] = s.X[p]
		scr.y[i] = s.Y[p]
		scr.px[i] = s.Px[p]
		scr.py[i] = s.Py[p]
		scr.pz[i] = s.Pz[p]
		scr.id[i] = s.ID[p]
		scr.key[i] = s.Key[p]
	}
	if s.Z != nil {
		for i, p := range perm {
			scr.z[i] = s.Z[p]
		}
		s.Z, scr.z = scr.z, s.Z
	}
	s.X, scr.x = scr.x, s.X
	s.Y, scr.y = scr.y, s.Y
	s.Px, scr.px = scr.px, s.Px
	s.Py, scr.py = scr.py, s.Py
	s.Pz, scr.pz = scr.pz, s.Pz
	s.ID, scr.id = scr.id, s.ID
	s.Key, scr.key = scr.key, s.Key
}

// SwapContents exchanges the particle arrays of a and b in O(1), leaving
// the species constants untouched. It is the zero-copy way to hand a
// scratch store's contents to a caller-visible store (and recycle the
// caller's old arrays as scratch).
func SwapContents(a, b *Store) {
	a.X, b.X = b.X, a.X
	a.Y, b.Y = b.Y, a.Y
	a.Z, b.Z = b.Z, a.Z
	a.Px, b.Px = b.Px, a.Px
	a.Py, b.Py = b.Py, a.Py
	a.Pz, b.Pz = b.Pz, a.Pz
	a.ID, b.ID = b.ID, a.ID
	a.Key, b.Key = b.Key, a.Key
}

// Truncate shrinks the store to n particles.
func (s *Store) Truncate(n int) {
	s.X = s.X[:n]
	s.Y = s.Y[:n]
	if s.Z != nil {
		s.Z = s.Z[:n]
	}
	s.Px = s.Px[:n]
	s.Py = s.Py[:n]
	s.Pz = s.Pz[:n]
	s.ID = s.ID[:n]
	s.Key = s.Key[:n]
}

// Clone returns a deep copy.
func (s *Store) Clone() *Store {
	c := &Store{Charge: s.Charge, Mass: s.Mass}
	c.X = append([]float64(nil), s.X...)
	c.Y = append([]float64(nil), s.Y...)
	if s.Z != nil {
		c.Z = append(make([]float64, 0, len(s.Z)), s.Z...)
	}
	c.Px = append([]float64(nil), s.Px...)
	c.Py = append([]float64(nil), s.Py...)
	c.Pz = append([]float64(nil), s.Pz...)
	c.ID = append([]float64(nil), s.ID...)
	c.Key = append([]float64(nil), s.Key...)
	return c
}

// MarshalRange packs particles [lo, hi) into dst (len ≥ (hi−lo)·WireFloats())
// for transmission and returns the filled prefix. 3-D stores emit z after y.
func (s *Store) MarshalRange(dst []float64, lo, hi int) []float64 {
	dst = dst[:0]
	if s.Z != nil {
		for i := lo; i < hi; i++ {
			dst = append(dst, s.X[i], s.Y[i], s.Z[i], s.Px[i], s.Py[i], s.Pz[i], s.ID[i], s.Key[i])
		}
		return dst
	}
	for i := lo; i < hi; i++ {
		dst = append(dst, s.X[i], s.Y[i], s.Px[i], s.Py[i], s.Pz[i], s.ID[i], s.Key[i])
	}
	return dst
}

// MarshalIndices packs the particles at the given indices.
func (s *Store) MarshalIndices(dst []float64, idx []int) []float64 {
	dst = dst[:0]
	if s.Z != nil {
		for _, i := range idx {
			dst = append(dst, s.X[i], s.Y[i], s.Z[i], s.Px[i], s.Py[i], s.Pz[i], s.ID[i], s.Key[i])
		}
		return dst
	}
	for _, i := range idx {
		dst = append(dst, s.X[i], s.Y[i], s.Px[i], s.Py[i], s.Pz[i], s.ID[i], s.Key[i])
	}
	return dst
}

// AppendWire unpacks particles previously packed with MarshalRange by a
// store of the same dimensionality.
func (s *Store) AppendWire(wire []float64) error {
	wf := s.WireFloats()
	if len(wire)%wf != 0 {
		return fmt.Errorf("particle: wire length %d not a multiple of %d", len(wire), wf)
	}
	if s.Z != nil {
		for i := 0; i < len(wire); i += wf {
			s.X = append(s.X, wire[i])
			s.Y = append(s.Y, wire[i+1])
			s.Z = append(s.Z, wire[i+2])
			s.Px = append(s.Px, wire[i+3])
			s.Py = append(s.Py, wire[i+4])
			s.Pz = append(s.Pz, wire[i+5])
			s.ID = append(s.ID, wire[i+6])
			s.Key = append(s.Key, wire[i+7])
		}
		return nil
	}
	for i := 0; i < len(wire); i += wf {
		s.X = append(s.X, wire[i])
		s.Y = append(s.Y, wire[i+1])
		s.Px = append(s.Px, wire[i+2])
		s.Py = append(s.Py, wire[i+3])
		s.Pz = append(s.Pz, wire[i+4])
		s.ID = append(s.ID, wire[i+5])
		s.Key = append(s.Key, wire[i+6])
	}
	return nil
}

// Gamma returns the Lorentz factor of particle i.
func (s *Store) Gamma(i int) float64 {
	p2 := s.Px[i]*s.Px[i] + s.Py[i]*s.Py[i] + s.Pz[i]*s.Pz[i]
	return math.Sqrt(1 + p2)
}

// KineticEnergy returns the total kinetic energy Σ m(γ−1) (c=1).
func (s *Store) KineticEnergy() float64 {
	e := 0.0
	for i := range s.X {
		e += s.Mass * (s.Gamma(i) - 1)
	}
	return e
}

// Distribution names accepted by Generate.
const (
	DistUniform   = "uniform"
	DistIrregular = "irregular"
	DistTwoStream = "twostream"
	DistBeam      = "beam"
	// DistSpike puts four fifths of the particles in a very tight off-centre
	// Gaussian spike (σ = 0.03·L at (0.7·Lx, 0.3·Ly)) over a uniform
	// background — the skewed workload where the equal-count split piles the
	// spike's cells onto few ranks and cost weighting pays off.
	DistSpike = "spike"
	// DistCollapse starts uniform with momenta aimed at the domain centre:
	// an initially balanced population that collapses into a dense core,
	// growing the imbalance over time — the adaptive policy's cue to switch
	// strategy mid-run.
	DistCollapse = "collapse"
)

// Config parameterises particle generation.
type Config struct {
	N            int     // total particle count
	Lx, Ly       float64 // physical domain size
	Distribution string
	Seed         int64
	Thermal      float64 // thermal momentum spread (p/mc); default 0.05
	Drift        float64 // drift momentum for twostream/beam; default 0.2
	// Sigma is the Gaussian std-dev as a fraction of the domain for the
	// irregular distribution; default 0.1 (highly concentrated, as in the
	// paper's Figure 15).
	Sigma float64
	// Charge and Mass default to −1 and 1 (electrons, normalised units).
	Charge, Mass float64
}

func (c Config) withDefaults() Config {
	if c.Thermal == 0 {
		c.Thermal = 0.05
	}
	if c.Drift == 0 {
		c.Drift = 0.2
	}
	if c.Sigma == 0 {
		c.Sigma = 0.1
	}
	if c.Charge == 0 {
		c.Charge = -1
	}
	if c.Mass == 0 {
		c.Mass = 1
	}
	return c
}

// Generate creates the global particle population for a simulation.
func Generate(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 || cfg.Lx <= 0 || cfg.Ly <= 0 {
		return nil, fmt.Errorf("particle: invalid config n=%d domain=%gx%g", cfg.N, cfg.Lx, cfg.Ly)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := NewStore(cfg.N, cfg.Charge, cfg.Mass)
	switch cfg.Distribution {
	case DistUniform, "":
		for i := 0; i < cfg.N; i++ {
			s.Append(rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistIrregular:
		// Truncated Gaussian concentrated at the domain centre: the
		// paper's "irregularly distributed particles ... concentrated in
		// the center of the domain".
		sx, sy := cfg.Sigma*cfg.Lx, cfg.Sigma*cfg.Ly
		for i := 0; i < cfg.N; i++ {
			x, y := gaussInDomain(rng, cfg.Lx/2, sx, cfg.Lx), gaussInDomain(rng, cfg.Ly/2, sy, cfg.Ly)
			s.Append(x, y,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistTwoStream:
		for i := 0; i < cfg.N; i++ {
			drift := cfg.Drift
			if i%2 == 1 {
				drift = -cfg.Drift
			}
			s.Append(rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly,
				drift+rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistBeam:
		// A compact beam near the left edge drifting right: the moving
		// hot-spot workload that makes redistribution matter most.
		sx, sy := cfg.Sigma*cfg.Lx, cfg.Sigma*cfg.Ly
		for i := 0; i < cfg.N; i++ {
			x := gaussInDomain(rng, cfg.Lx*0.15, sx, cfg.Lx)
			y := gaussInDomain(rng, cfg.Ly/2, sy, cfg.Ly)
			s.Append(x, y,
				cfg.Drift+rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistSpike:
		sx, sy := 0.03*cfg.Lx, 0.03*cfg.Ly
		for i := 0; i < cfg.N; i++ {
			var x, y float64
			if i%5 == 0 { // uniform background, every fifth particle
				x, y = rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly
			} else {
				x = gaussInDomain(rng, cfg.Lx*0.7, sx, cfg.Lx)
				y = gaussInDomain(rng, cfg.Ly*0.3, sy, cfg.Ly)
			}
			s.Append(x, y,
				rng.NormFloat64()*cfg.Thermal, rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	case DistCollapse:
		for i := 0; i < cfg.N; i++ {
			x, y := rng.Float64()*cfg.Lx, rng.Float64()*cfg.Ly
			dx, dy := cfg.Lx/2-x, cfg.Ly/2-y
			norm := math.Hypot(dx, dy)
			if norm == 0 {
				norm = 1
			}
			s.Append(x, y,
				cfg.Drift*dx/norm+rng.NormFloat64()*cfg.Thermal,
				cfg.Drift*dy/norm+rng.NormFloat64()*cfg.Thermal,
				rng.NormFloat64()*cfg.Thermal, float64(i))
		}
	default:
		return nil, fmt.Errorf("particle: unknown distribution %q", cfg.Distribution)
	}
	return s, nil
}

// gaussInDomain samples a Gaussian and resamples until it lands inside
// [0, l) — truncation rather than wrapping, so the concentration shape is
// preserved.
func gaussInDomain(rng *rand.Rand, mean, sigma, l float64) float64 {
	for {
		v := mean + rng.NormFloat64()*sigma
		if v >= 0 && v < l {
			return v
		}
	}
}
