package particle

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAppendLenTruncate(t *testing.T) {
	s := NewStore(4, -1, 1)
	if s.Len() != 0 {
		t.Fatalf("new store len %d", s.Len())
	}
	s.Append(1, 2, 3, 4, 5, 0)
	s.Append(6, 7, 8, 9, 10, 1)
	if s.Len() != 2 {
		t.Fatalf("len %d, want 2", s.Len())
	}
	s.Truncate(1)
	if s.Len() != 1 || s.X[0] != 1 {
		t.Fatalf("truncate broken: len=%d x=%v", s.Len(), s.X)
	}
}

func TestSwapAndLess(t *testing.T) {
	s := NewStore(2, -1, 1)
	s.Append(1, 0, 0, 0, 0, 0)
	s.Append(2, 0, 0, 0, 0, 1)
	s.Key[0], s.Key[1] = 5, 3
	if s.Less(0, 1) {
		t.Error("key 5 must not be less than key 3")
	}
	s.Swap(0, 1)
	if s.X[0] != 2 || s.Key[0] != 3 || s.ID[0] != 1 {
		t.Errorf("swap did not move all fields: x=%v key=%v id=%v", s.X, s.Key, s.ID)
	}
	if !s.Less(0, 1) {
		t.Error("after swap key 3 < key 5")
	}
	// Tie on key breaks by id.
	s.Key[0], s.Key[1] = 7, 7
	s.ID[0], s.ID[1] = 2, 1
	if s.Less(0, 1) {
		t.Error("tie break by id failed")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := NewStore(3, -1, 1)
	s.Append(1, 2, 3, 4, 5, 10)
	s.Append(6, 7, 8, 9, 0, 11)
	s.Key[0], s.Key[1] = 100, 200
	wire := s.MarshalRange(make([]float64, 0, 2*WireFloats), 0, 2)
	if len(wire) != 2*WireFloats {
		t.Fatalf("wire len %d", len(wire))
	}
	dst := NewStore(0, -1, 1)
	if err := dst.AppendWire(wire); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 || dst.X[1] != 6 || dst.Key[1] != 200 || dst.ID[0] != 10 {
		t.Fatalf("round trip mismatch: %+v", dst)
	}
	if err := dst.AppendWire(wire[:5]); err == nil {
		t.Error("expected error for ragged wire data")
	}
}

func TestMarshalIndices(t *testing.T) {
	s := NewStore(3, -1, 1)
	for i := 0; i < 3; i++ {
		s.Append(float64(i), 0, 0, 0, 0, float64(i))
	}
	wire := s.MarshalIndices(nil, []int{2, 0})
	if wire[0] != 2 || wire[WireFloats] != 0 {
		t.Errorf("MarshalIndices order wrong: %v", wire)
	}
}

func TestClone(t *testing.T) {
	s := NewStore(1, -2, 3)
	s.Append(1, 2, 3, 4, 5, 6)
	c := s.Clone()
	c.X[0] = 99
	if s.X[0] != 1 {
		t.Error("clone aliases original")
	}
	if c.Charge != -2 || c.Mass != 3 {
		t.Error("clone lost species constants")
	}
}

func TestGamma(t *testing.T) {
	s := NewStore(2, -1, 1)
	s.Append(0, 0, 0, 0, 0, 0)
	s.Append(0, 0, 3, 0, 4, 1) // |p| = 5, gamma = sqrt(26)
	if g := s.Gamma(0); g != 1 {
		t.Errorf("at-rest gamma = %v", g)
	}
	if g := s.Gamma(1); math.Abs(g-math.Sqrt(26)) > 1e-14 {
		t.Errorf("gamma = %v, want sqrt(26)", g)
	}
}

func TestKineticEnergyNonNegative(t *testing.T) {
	f := func(px, py, pz float64) bool {
		if math.IsNaN(px) || math.IsInf(px, 0) || math.Abs(px) > 1e100 ||
			math.IsNaN(py) || math.IsInf(py, 0) || math.Abs(py) > 1e100 ||
			math.IsNaN(pz) || math.IsInf(pz, 0) || math.Abs(pz) > 1e100 {
			return true
		}
		s := NewStore(1, -1, 1)
		s.Append(0, 0, px, py, pz, 0)
		return s.KineticEnergy() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateUniform(t *testing.T) {
	s, err := Generate(Config{N: 4000, Lx: 16, Ly: 8, Distribution: DistUniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4000 {
		t.Fatalf("len %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.X[i] < 0 || s.X[i] >= 16 || s.Y[i] < 0 || s.Y[i] >= 8 {
			t.Fatalf("particle %d out of domain: (%g,%g)", i, s.X[i], s.Y[i])
		}
	}
	// Uniform: each quadrant holds roughly a quarter.
	q := 0
	for i := 0; i < s.Len(); i++ {
		if s.X[i] < 8 && s.Y[i] < 4 {
			q++
		}
	}
	if q < 800 || q > 1200 {
		t.Errorf("quadrant count %d implausible for uniform", q)
	}
	// Defaults: electrons.
	if s.Charge != -1 || s.Mass != 1 {
		t.Errorf("default species: q=%v m=%v", s.Charge, s.Mass)
	}
}

func TestGenerateIrregularConcentrated(t *testing.T) {
	s, err := Generate(Config{N: 4000, Lx: 16, Ly: 16, Distribution: DistIrregular, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sigma defaults to 0.1*L = 1.6, so the central quarter (|x-8|<4,
	// |y-8|<4 ≈ 2.5 sigma) holds nearly everything.
	central := 0
	for i := 0; i < s.Len(); i++ {
		if math.Abs(s.X[i]-8) < 4 && math.Abs(s.Y[i]-8) < 4 {
			central++
		}
	}
	if central < 3800 {
		t.Errorf("irregular distribution not concentrated: %d/4000 central", central)
	}
	for i := 0; i < s.Len(); i++ {
		if s.X[i] < 0 || s.X[i] >= 16 || s.Y[i] < 0 || s.Y[i] >= 16 {
			t.Fatalf("particle out of domain")
		}
	}
}

func TestGenerateTwoStream(t *testing.T) {
	s, err := Generate(Config{N: 1000, Lx: 8, Ly: 8, Distribution: DistTwoStream, Seed: 3, Drift: 0.5, Thermal: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	for i := 0; i < s.Len(); i++ {
		if s.Px[i] > 0.25 {
			pos++
		} else if s.Px[i] < -0.25 {
			neg++
		}
	}
	if pos != 500 || neg != 500 {
		t.Errorf("two-stream split %d/%d, want 500/500", pos, neg)
	}
}

func TestGenerateBeamDriftsRight(t *testing.T) {
	s, err := Generate(Config{N: 500, Lx: 32, Ly: 8, Distribution: DistBeam, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	xs := append([]float64(nil), s.X...)
	sort.Float64s(xs)
	if med := xs[len(xs)/2]; med > 16 {
		t.Errorf("beam median x = %g, want near left edge", med)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Px[i] < 0 {
			t.Fatalf("beam particle %d drifting left: px=%g", i, s.Px[i])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 100, Lx: 8, Ly: 8, Distribution: DistIrregular, Seed: 42}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Py[i] != b.Py[i] {
			t.Fatal("same seed must reproduce identical particles")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{N: -1, Lx: 1, Ly: 1}); err == nil {
		t.Error("negative N must fail")
	}
	if _, err := Generate(Config{N: 1, Lx: 0, Ly: 1}); err == nil {
		t.Error("zero domain must fail")
	}
	if _, err := Generate(Config{N: 1, Lx: 1, Ly: 1, Distribution: "ring"}); err == nil {
		t.Error("unknown distribution must fail")
	}
}

func TestGenerateIDsAreUniqueAndDense(t *testing.T) {
	s, err := Generate(Config{N: 257, Lx: 4, Ly: 4, Distribution: DistUniform, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]bool)
	for _, id := range s.ID {
		if id != math.Trunc(id) || id < 0 || id >= 257 {
			t.Fatalf("id %v not a dense integer", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
}
