package particle

import (
	"math/rand"
	"testing"

	"picpar/internal/raceflag"
)

// randomStore fills n particles with distinct random values in every field
// so a misrouted field shows up as a mismatch.
func randomStore(rng *rand.Rand, n int) *Store {
	s := NewStore(n, -1, 1)
	for i := 0; i < n; i++ {
		s.Append(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), float64(i))
		s.Key[i] = rng.Float64()
	}
	return s
}

// TestApplyPermutationAllFields verifies that one apply gathers every one
// of the 7 SoA fields through the permutation, against a per-element
// reference built with AppendFrom.
func TestApplyPermutationAllFields(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 2, 17, 1000} {
		s := randomStore(rng, n)
		perm := make([]int32, n)
		for i, p := range rng.Perm(n) {
			perm[i] = int32(p)
		}
		want := NewStore(n, s.Charge, s.Mass)
		for _, p := range perm {
			want.AppendFrom(s, int(p))
		}
		s.ApplyPermutation(perm, nil)
		for i := 0; i < n; i++ {
			if s.X[i] != want.X[i] || s.Y[i] != want.Y[i] ||
				s.Px[i] != want.Px[i] || s.Py[i] != want.Py[i] || s.Pz[i] != want.Pz[i] ||
				s.ID[i] != want.ID[i] || s.Key[i] != want.Key[i] {
				t.Fatalf("n=%d pos %d: permuted particle differs from reference", n, i)
			}
		}
	}
}

// TestApplyPermutationRoundTrip applies a permutation and then its inverse
// and requires the exact original store back.
func TestApplyPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 513
	s := randomStore(rng, n)
	orig := s.Clone()
	perm := make([]int32, n)
	inv := make([]int32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = int32(p)
	}
	for i, p := range perm {
		inv[p] = int32(i)
	}
	var scr Scratch
	s.ApplyPermutation(perm, &scr)
	s.ApplyPermutation(inv, &scr)
	for i := 0; i < n; i++ {
		if s.X[i] != orig.X[i] || s.Y[i] != orig.Y[i] ||
			s.Px[i] != orig.Px[i] || s.Py[i] != orig.Py[i] || s.Pz[i] != orig.Pz[i] ||
			s.ID[i] != orig.ID[i] || s.Key[i] != orig.Key[i] {
			t.Fatalf("pos %d: round trip changed the store", i)
		}
	}
}

// TestApplyPermutationLengthMismatchPanics pins the guard.
func TestApplyPermutationLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ApplyPermutation with wrong perm length did not panic")
		}
	}()
	s := randomStore(rand.New(rand.NewSource(1)), 4)
	s.ApplyPermutation(make([]int32, 3), nil)
}

// TestApplyPermutationScratchReuse checks the steady state: with a warm
// Scratch, repeated applies allocate nothing.
func TestApplyPermutationScratchReuse(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	rng := rand.New(rand.NewSource(31))
	n := 256
	s := randomStore(rng, n)
	perm := make([]int32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = int32(p)
	}
	var scr Scratch
	s.ApplyPermutation(perm, &scr) // warm
	if allocs := testing.AllocsPerRun(20, func() {
		s.ApplyPermutation(perm, &scr)
	}); allocs != 0 {
		t.Errorf("ApplyPermutation with warm scratch: %v allocs/op, want 0", allocs)
	}
}
