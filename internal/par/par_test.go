package par

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"picpar/internal/raceflag"
)

// markTask records which worker processed each index, and counts calls.
type markTask struct {
	owner []int32
	calls atomic.Int64
}

func (t *markTask) Work(w, lo, hi int) {
	t.calls.Add(1)
	for i := lo; i < hi; i++ {
		t.owner[i] = int32(w + 1)
	}
}

// TestSplitCoversExactly: for a spread of (n, workers), the shares are
// ascending, disjoint, and cover [0, n) exactly — the contract the ordered
// reductions depend on.
func TestSplitCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1023} {
			prev := 0
			for w := 0; w < workers; w++ {
				lo, hi := Split(n, workers, w)
				if lo != prev {
					t.Fatalf("n=%d W=%d w=%d: lo %d, want %d (gap or overlap)", n, workers, w, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d W=%d w=%d: hi %d < lo %d", n, workers, w, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d W=%d: shares cover %d, want %d", n, workers, prev, n)
			}
		}
	}
}

// TestRunProcessesEveryIndexOnce: every index is touched by exactly the
// worker Split assigns it, for pools larger and smaller than the input.
func TestRunProcessesEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		n := 103
		task := &markTask{owner: make([]int32, n)}
		p.Run(n, task)
		for i, got := range task.owner {
			want := int32(0)
			for w := 0; w < workers; w++ {
				if lo, hi := Split(n, workers, w); i >= lo && i < hi {
					want = int32(w + 1)
				}
			}
			if got != want {
				t.Errorf("W=%d: index %d processed by worker %d, want %d", workers, i, got-1, want-1)
			}
		}
		p.Close()
	}
}

// TestRunEmptyAndReuse: n=0 is a no-op, and a pool survives many Runs.
func TestRunEmptyAndReuse(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &markTask{owner: make([]int32, 64)}
	p.Run(0, task)
	for r := 0; r < 50; r++ {
		for i := range task.owner {
			task.owner[i] = 0
		}
		p.Run(len(task.owner), task)
		for i, v := range task.owner {
			if v == 0 {
				t.Fatalf("run %d: index %d unprocessed", r, i)
			}
		}
	}
}

// panicTask panics on one specific index.
type panicTask struct{ at, n int }

func (t *panicTask) Work(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i == t.at {
			panic(fmt.Sprintf("boom at %d", i))
		}
	}
}

// TestRunPropagatesWorkerPanics: a panic in any worker's share surfaces on
// the caller with the original value, and the pool remains usable.
func TestRunPropagatesWorkerPanics(t *testing.T) {
	p := New(3)
	defer p.Close()
	n := 90
	for _, at := range []int{0, 45, 89} { // shares of workers 0, 1, 2
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("panic at index %d did not propagate", at)
				}
				want := fmt.Sprintf("boom at %d", at)
				if v != want {
					t.Fatalf("panic value %v, want %q", v, want)
				}
			}()
			p.Run(n, &panicTask{at: at, n: n})
		}()
		// The pool must still work after the panic round-trip.
		task := &markTask{owner: make([]int32, n)}
		p.Run(n, task)
		for i, v := range task.owner {
			if v == 0 {
				t.Fatalf("after panic at %d: index %d unprocessed", at, i)
			}
		}
	}
}

// TestRunSteadyStateAllocs: a warm pool Run allocates nothing — the
// pre-spawned workers and stored task make the per-iteration kernel calls
// allocation-free.
func TestRunSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	p := New(4)
	defer p.Close()
	task := &markTask{owner: make([]int32, 4096)}
	p.Run(len(task.owner), task) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		p.Run(len(task.owner), task)
	})
	if allocs != 0 {
		t.Errorf("steady-state Run: %v allocs/op, want 0", allocs)
	}
}

// TestNewClampsAndCloseIdempotent: sizes below 1 clamp to 1, and Close can
// be called twice.
func TestNewClampsAndCloseIdempotent(t *testing.T) {
	p := New(0)
	if p.Workers() != 1 {
		t.Errorf("New(0).Workers() = %d, want 1", p.Workers())
	}
	task := &markTask{owner: make([]int32, 8)}
	p.Run(8, task)
	p.Close()
	p.Close()
}

// TestEnvProcs: well-formed values are honoured; unset, malformed, zero and
// negative values fall back loudly (the EnvWatchdog precedent).
func TestEnvProcs(t *testing.T) {
	origWarnf := warnf
	defer func() { warnf = origWarnf }()
	var warnings []string
	warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	orig, had := os.LookupEnv(EnvVar)
	defer func() {
		if had {
			os.Setenv(EnvVar, orig)
		} else {
			os.Unsetenv(EnvVar)
		}
	}()

	cases := []struct {
		val  string // "" means unset
		want int
		warn bool
	}{
		{"", 1, false},
		{"1", 1, false},
		{"4", 4, false},
		{"16", 16, false},
		{"banana", 1, true},
		{"2.5", 1, true},
		{"-3", 1, true},
		{"0", 1, true},
	}
	for _, c := range cases {
		if c.val == "" {
			os.Unsetenv(EnvVar)
		} else {
			os.Setenv(EnvVar, c.val)
		}
		warnings = warnings[:0]
		got := EnvProcs(1)
		if got != c.want {
			t.Errorf("EnvProcs with %s=%q: got %d, want %d", EnvVar, c.val, got, c.want)
		}
		if c.warn && len(warnings) == 0 {
			t.Errorf("%s=%q: expected a loud warning, got none", EnvVar, c.val)
		}
		if !c.warn && len(warnings) > 0 {
			t.Errorf("%s=%q: unexpected warning %q", EnvVar, c.val, warnings[0])
		}
	}

	// The fallback itself passes through untouched.
	os.Unsetenv(EnvVar)
	if got := EnvProcs(3); got != 3 {
		t.Errorf("EnvProcs(3) with unset env: got %d, want 3", got)
	}
}
