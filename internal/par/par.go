// Package par is the intra-rank shared-memory parallelism layer: a sized
// pool of pre-spawned worker goroutines executing static contiguous range
// splits of a loop. It is the substrate behind the parallel physics kernels
// (scatter, gather/push, Maxwell sweep, radix sort) and is designed around
// two hard constraints those kernels inherit from the golden pins:
//
//   - Determinism: Split is a pure function of (n, workers, w), so the
//     assignment of loop indices to workers never depends on scheduling,
//     GOMAXPROCS, or timing. Kernels that reduce per-worker results in
//     ascending worker order therefore reproduce the sequential result
//     bit-for-bit (see DESIGN.md "Intra-rank shared-memory parallelism").
//
//   - Zero steady-state allocation: the workers are spawned once per Pool
//     and parked on channels; Run signals them, runs worker 0's share
//     inline on the caller, and waits. Tasks are passed as a pre-stored
//     interface value, so a steady-state Run call allocates nothing.
//
// Worker panics (e.g. a gather miss or invariant violation inside a
// parallel section) are captured, the barrier is completed so no helper is
// left mid-task, and the first panic value (lowest worker index) is
// re-raised on the caller — the same failure surface as the sequential
// loops.
package par

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Task is one parallelisable loop: Work processes the half-open index
// range [lo, hi) as worker w. Implementations are called concurrently from
// multiple goroutines and must only touch worker-private or range-disjoint
// state.
type Task interface {
	Work(worker, lo, hi int)
}

// Pool is a fixed-size worker pool. A Pool with one worker runs every Task
// inline on the caller — the sequential fast path costs one branch.
type Pool struct {
	workers int
	start   []chan struct{} // one wake channel per helper (workers 1..W-1)
	wg      sync.WaitGroup
	quit    chan struct{}
	closed  bool

	// Per-run state: written by Run before the helpers are signalled, read
	// by them after (the channel send orders the accesses).
	task   Task
	n      int
	panics []any // per-worker recovered panic values
}

// New builds a pool of the given size and spawns its helper goroutines.
// Sizes below 1 are clamped to 1 (a Pool is never nil-sized); a 1-worker
// pool spawns nothing.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		quit:    make(chan struct{}),
		panics:  make([]any, workers),
	}
	p.start = make([]chan struct{}, workers-1)
	for h := range p.start {
		p.start[h] = make(chan struct{})
		go p.helper(h + 1)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// helper is the loop of worker w (w ≥ 1): park until signalled, run the
// posted task's share, check in, repeat until the pool closes.
func (p *Pool) helper(w int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.start[w-1]:
			lo, hi := Split(p.n, p.workers, w)
			p.runOne(w, lo, hi)
			p.wg.Done()
		}
	}
}

// runOne executes one worker's share with panic capture.
func (p *Pool) runOne(w, lo, hi int) {
	defer p.capture(w)
	p.task.Work(w, lo, hi)
}

func (p *Pool) capture(w int) {
	if v := recover(); v != nil {
		p.panics[w] = v
	}
}

// Run executes t over [0, n) split statically across the pool's workers
// and returns when every share has completed. Worker 0's share runs inline
// on the caller. If any worker panicked, the lowest-indexed panic value is
// re-raised after the barrier (so no helper is ever left mid-task).
func (p *Pool) Run(n int, t Task) {
	if p.closed {
		panic("par: Run on a closed Pool")
	}
	if p.workers == 1 {
		t.Work(0, 0, n)
		return
	}
	p.task, p.n = t, n
	for i := range p.panics {
		p.panics[i] = nil
	}
	p.wg.Add(p.workers - 1)
	for _, c := range p.start {
		c <- struct{}{}
	}
	lo, hi := Split(n, p.workers, 0)
	p.runOne(0, lo, hi)
	p.wg.Wait()
	p.task = nil
	for _, v := range p.panics {
		if v != nil {
			panic(v)
		}
	}
}

// Close terminates the helper goroutines. The pool must be idle (no Run in
// flight); Run after Close panics. Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.quit)
}

// Split returns worker w's half-open share [lo, hi) of n items under the
// pool's static contiguous partition. It is a pure function: ranges are
// ascending in w, disjoint, and cover [0, n) exactly — the property the
// ordered reductions rely on for bit-deterministic results.
func Split(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}

// EnvVar is the environment variable naming the default worker count.
const EnvVar = "PICPAR_PROCS"

// warnf emits configuration warnings; a package variable so tests can
// capture them. Default: stderr. (Mirrors comm.warnf / EnvWatchdog.)
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// EnvProcs returns the worker count configured in the PICPAR_PROCS
// environment variable, or fallback when it is unset. A malformed,
// zero or negative value is rejected loudly — a warning naming the bad
// value, then the fallback — so a typo can never silently change how many
// cores a rank uses (the EnvWatchdog precedent).
func EnvProcs(fallback int) int {
	v := os.Getenv(EnvVar)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		warnf("par: %s=%q is not an integer (%v); using fallback %d", EnvVar, v, err, fallback)
		return fallback
	}
	if n < 1 {
		warnf("par: %s=%d is not a positive worker count; using fallback %d", EnvVar, n, fallback)
		return fallback
	}
	return n
}
