// Package mesh3 is the three-dimensional counterpart of internal/mesh:
// global grid geometry and BLOCK distribution over a Px×Py×Pz processor
// grid, with optional space-filling-curve rank numbering for alignment.
// It backs the 3-D partitioning analysis that demonstrates the paper's
// "generalizes to n dimensions" claim.
package mesh3

import (
	"fmt"

	"picpar/internal/mesh"
	"picpar/internal/sfc"
)

// Grid is a 3-D mesh of Nx×Ny×Nz grid points (and cells) with periodic
// boundaries and unit cells.
type Grid struct {
	Nx, Ny, Nz int
	Lx, Ly, Lz float64
}

// NewGrid builds a grid with unit cells.
func NewGrid(nx, ny, nz int) Grid {
	return Grid{Nx: nx, Ny: ny, Nz: nz, Lx: float64(nx), Ly: float64(ny), Lz: float64(nz)}
}

// Validate reports whether the grid is usable.
func (g Grid) Validate() error {
	if g.Nx <= 0 || g.Ny <= 0 || g.Nz <= 0 {
		return fmt.Errorf("mesh3: non-positive extents %dx%dx%d", g.Nx, g.Ny, g.Nz)
	}
	return nil
}

// NumPoints returns the total grid points.
func (g Grid) NumPoints() int { return g.Nx * g.Ny * g.Nz }

// Dx returns the cell size along x.
func (g Grid) Dx() float64 { return g.Lx / float64(g.Nx) }

// Dy returns the cell size along y.
func (g Grid) Dy() float64 { return g.Ly / float64(g.Ny) }

// Dz returns the cell size along z.
func (g Grid) Dz() float64 { return g.Lz / float64(g.Nz) }

// WrapPosition wraps a position into the periodic domain.
func (g Grid) WrapPosition(x, y, z float64) (float64, float64, float64) {
	return wrapF(x, g.Lx), wrapF(y, g.Ly), wrapF(z, g.Lz)
}

func wrapF(x, l float64) float64 {
	for x < 0 {
		x += l
	}
	for x >= l {
		x -= l
	}
	return x
}

// PointIndex returns the row-major global id of grid point (i, j, k),
// wrapped periodically.
func (g Grid) PointIndex(i, j, k int) int {
	i = wrap(i, g.Nx)
	j = wrap(j, g.Ny)
	k = wrap(k, g.Nz)
	return (k*g.Ny+j)*g.Nx + i
}

// PointCoords inverts PointIndex for in-range ids.
func (g Grid) PointCoords(id int) (i, j, k int) {
	i = id % g.Nx
	j = (id / g.Nx) % g.Ny
	k = id / (g.Nx * g.Ny)
	return i, j, k
}

// CellOf returns the cell containing position (x, y, z), periodically
// wrapped.
func (g Grid) CellOf(x, y, z float64) (cx, cy, cz int) {
	cx = clampWrap(x, g.Lx, g.Nx)
	cy = clampWrap(y, g.Ly, g.Ny)
	cz = clampWrap(z, g.Lz, g.Nz)
	return cx, cy, cz
}

func clampWrap(x, l float64, n int) int {
	for x < 0 {
		x += l
	}
	for x >= l {
		x -= l
	}
	c := int(x / l * float64(n))
	if c >= n {
		c = n - 1
	}
	return c
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Dist is a BLOCK distribution over a Px×Py×Pz processor grid, with an
// optional SFC tile numbering (identity when nil).
type Dist struct {
	G          Grid
	P          int
	Px, Py, Pz int
	tileRank   []int
	rankTile   []int
}

// NewDist picks the factorisation with the most cube-like blocks.
func NewDist(g Grid, p int) (*Dist, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("mesh3: non-positive rank count %d", p)
	}
	best := [3]int{}
	bestScore := 1e300
	for px := 1; px <= p; px++ {
		if p%px != 0 {
			continue
		}
		rem := p / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			if px > g.Nx || py > g.Ny || pz > g.Nz {
				continue
			}
			bx := float64(g.Nx) / float64(px)
			by := float64(g.Ny) / float64(py)
			bz := float64(g.Nz) / float64(pz)
			// Surface-to-volume proxy: smaller is more cube-like.
			score := (bx*by + by*bz + bx*bz) / (bx * by * bz)
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	if bestScore == 1e300 {
		return nil, fmt.Errorf("mesh3: cannot block-distribute %dx%dx%d over %d ranks", g.Nx, g.Ny, g.Nz, p)
	}
	return &Dist{G: g, P: p, Px: best[0], Py: best[1], Pz: best[2]}, nil
}

// NewDistOrdered builds a distribution with ranks numbered along the named
// 3-D space-filling curve of the processor grid.
func NewDistOrdered(g Grid, p int, scheme string) (*Dist, error) {
	d, err := NewDist(g, p)
	if err != nil {
		return nil, err
	}
	ix, err := sfc.New3(scheme, d.Px, d.Py, d.Pz)
	if err != nil {
		return nil, err
	}
	d.tileRank = make([]int, p)
	d.rankTile = make([]int, p)
	seen := make([]bool, p)
	for tz := 0; tz < d.Pz; tz++ {
		for ty := 0; ty < d.Py; ty++ {
			for tx := 0; tx < d.Px; tx++ {
				r := ix.Index(tx, ty, tz)
				if r < 0 || r >= p || seen[r] {
					return nil, fmt.Errorf("mesh3: ordering not a bijection at (%d,%d,%d)", tx, ty, tz)
				}
				seen[r] = true
				tile := (tz*d.Py+ty)*d.Px + tx
				d.tileRank[tile] = r
				d.rankTile[r] = tile
			}
		}
	}
	return d, nil
}

// RankCoords returns rank r's processor-grid coordinates.
func (d *Dist) RankCoords(r int) (px, py, pz int) {
	t := r
	if d.rankTile != nil {
		t = d.rankTile[r]
	}
	px = t % d.Px
	py = (t / d.Px) % d.Py
	pz = t / (d.Px * d.Py)
	return px, py, pz
}

// Bounds returns rank r's owned half-open ranges.
func (d *Dist) Bounds(r int) (i0, i1, j0, j1, k0, k1 int) {
	px, py, pz := d.RankCoords(r)
	i0, i1 = mesh.BlockRange(d.G.Nx, d.Px, px)
	j0, j1 = mesh.BlockRange(d.G.Ny, d.Py, py)
	k0, k1 = mesh.BlockRange(d.G.Nz, d.Pz, pz)
	return
}

// RankAt returns the rank at processor-grid coordinates (px, py, pz),
// wrapped periodically.
func (d *Dist) RankAt(px, py, pz int) int {
	px = wrap(px, d.Px)
	py = wrap(py, d.Py)
	pz = wrap(pz, d.Pz)
	tile := (pz*d.Py+py)*d.Px + px
	if d.tileRank != nil {
		return d.tileRank[tile]
	}
	return tile
}

// Neighbours returns rank r's six face neighbours on the periodic
// processor grid.
func (d *Dist) Neighbours(r int) (left, right, down, up, back, front int) {
	px, py, pz := d.RankCoords(r)
	return d.RankAt(px-1, py, pz), d.RankAt(px+1, py, pz),
		d.RankAt(px, py-1, pz), d.RankAt(px, py+1, pz),
		d.RankAt(px, py, pz-1), d.RankAt(px, py, pz+1)
}

// LocalSize returns rank r's owned extents.
func (d *Dist) LocalSize(r int) (nx, ny, nz int) {
	i0, i1, j0, j1, k0, k1 := d.Bounds(r)
	return i1 - i0, j1 - j0, k1 - k0
}

// MaxLocalPoints returns the largest owned block over all ranks.
func (d *Dist) MaxLocalPoints() int {
	m := 0
	for r := 0; r < d.P; r++ {
		nx, ny, nz := d.LocalSize(r)
		if nx*ny*nz > m {
			m = nx * ny * nz
		}
	}
	return m
}

// OwnerOfPoint returns the rank owning grid point (i, j, k), wrapped.
func (d *Dist) OwnerOfPoint(i, j, k int) int {
	i = wrap(i, d.G.Nx)
	j = wrap(j, d.G.Ny)
	k = wrap(k, d.G.Nz)
	tx := mesh.BlockOwner(d.G.Nx, d.Px, i)
	ty := mesh.BlockOwner(d.G.Ny, d.Py, j)
	tz := mesh.BlockOwner(d.G.Nz, d.Pz, k)
	tile := (tz*d.Py+ty)*d.Px + tx
	if d.tileRank != nil {
		return d.tileRank[tile]
	}
	return tile
}
