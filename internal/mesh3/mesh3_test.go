package mesh3

import (
	"testing"

	"picpar/internal/sfc"
)

func TestGridValidate(t *testing.T) {
	if err := NewGrid(4, 4, 4).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Grid{Nx: 0, Ny: 1, Nz: 1}).Validate(); err == nil {
		t.Error("zero extent accepted")
	}
}

func TestNumPoints(t *testing.T) {
	if NewGrid(3, 4, 5).NumPoints() != 60 {
		t.Error("NumPoints wrong")
	}
}

func TestPointIndexWraps(t *testing.T) {
	g := NewGrid(4, 4, 4)
	if g.PointIndex(-1, 0, 0) != g.PointIndex(3, 0, 0) {
		t.Error("negative x wrap")
	}
	if g.PointIndex(0, 4, 0) != g.PointIndex(0, 0, 0) {
		t.Error("y wrap")
	}
	if g.PointIndex(0, 0, -5) != g.PointIndex(0, 0, 3) {
		t.Error("deep negative z wrap")
	}
}

func TestCellOfBoundaries(t *testing.T) {
	g := NewGrid(8, 8, 8)
	if cx, cy, cz := g.CellOf(7.9999, 0, 8.0); cx != 7 || cy != 0 || cz != 0 {
		t.Errorf("CellOf = (%d,%d,%d)", cx, cy, cz)
	}
}

func TestNewDistPrefersCubes(t *testing.T) {
	d, err := NewDist(NewGrid(32, 32, 32), 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px != 4 || d.Py != 4 || d.Pz != 4 {
		t.Errorf("got %dx%dx%d, want 4x4x4", d.Px, d.Py, d.Pz)
	}
}

func TestNewDistAnisotropic(t *testing.T) {
	// A flat slab should not be split along its thin dimension more than
	// it can bear.
	d, err := NewDist(NewGrid(64, 64, 2), 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pz > 2 {
		t.Errorf("split thin dimension %d ways", d.Pz)
	}
}

func TestNewDistErrors(t *testing.T) {
	if _, err := NewDist(NewGrid(2, 2, 2), 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewDist(NewGrid(2, 2, 2), 1000); err == nil {
		t.Error("unfactorable p accepted")
	}
}

func TestNewDistOrderedRoundTrip(t *testing.T) {
	for _, scheme := range []string{sfc.SchemeHilbert, sfc.SchemeSnake, sfc.SchemeRowMajor} {
		d, err := NewDistOrdered(NewGrid(16, 16, 16), 8, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		seen := map[[3]int]bool{}
		for r := 0; r < 8; r++ {
			px, py, pz := d.RankCoords(r)
			key := [3]int{px, py, pz}
			if seen[key] {
				t.Fatalf("%s: duplicate tile for rank %d", scheme, r)
			}
			seen[key] = true
		}
	}
}

func TestBoundsCoverGrid(t *testing.T) {
	g := NewGrid(10, 6, 4)
	d, err := NewDist(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, g.NumPoints())
	for r := 0; r < 6; r++ {
		i0, i1, j0, j1, k0, k1 := d.Bounds(r)
		for k := k0; k < k1; k++ {
			for j := j0; j < j1; j++ {
				for i := i0; i < i1; i++ {
					owned[g.PointIndex(i, j, k)]++
				}
			}
		}
	}
	for id, c := range owned {
		if c != 1 {
			t.Fatalf("point %d owned %d times", id, c)
		}
	}
}
