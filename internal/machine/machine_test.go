package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMsgCost(t *testing.T) {
	p := Params{Tau: 10, MuPerByte: 2, Delta: 1}
	if got := p.MsgCost(0); got != 10 {
		t.Errorf("MsgCost(0) = %v, want 10 (pure startup)", got)
	}
	if got := p.MsgCost(5); got != 20 {
		t.Errorf("MsgCost(5) = %v, want 20", got)
	}
}

func TestComputeCost(t *testing.T) {
	p := Params{Delta: 0.5}
	if got := p.ComputeCost(4); got != 2 {
		t.Errorf("ComputeCost(4) = %v, want 2", got)
	}
	if got := p.ComputeCost(0); got != 0 {
		t.Errorf("ComputeCost(0) = %v, want 0", got)
	}
}

func TestCM5ParamsSane(t *testing.T) {
	p := CM5()
	if p.Tau <= 0 || p.MuPerByte <= 0 || p.Delta <= 0 {
		t.Fatalf("CM5 params must be positive: %+v", p)
	}
	// On the CM-5 the startup dominates small messages: τ >> μ per byte.
	if p.Tau < 100*p.MuPerByte {
		t.Errorf("expected tau >> mu: tau=%v mu=%v", p.Tau, p.MuPerByte)
	}
}

func TestZeroParams(t *testing.T) {
	p := Zero()
	if p.MsgCost(1000) != 0 || p.ComputeCost(1000) != 0 {
		t.Error("Zero() params must cost nothing")
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock = NewSimClock()
	c.Advance(1.5)
	c.Advance(2.5)
	if c.Now() != 4.0 {
		t.Errorf("Now() = %v, want 4.0", c.Now())
	}
	c.Advance(-100) // ignored
	if c.Now() != 4.0 {
		t.Errorf("negative advance must be ignored; Now() = %v", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock = NewSimClock()
	c.Advance(5)
	c.AdvanceTo(3) // earlier: no-op
	if c.Now() != 5 {
		t.Errorf("AdvanceTo(earlier) changed clock: %v", c.Now())
	}
	c.AdvanceTo(9)
	if c.Now() != 9 {
		t.Errorf("AdvanceTo(9): Now() = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset: Now() = %v", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: any sequence of Advance/AdvanceTo never decreases the clock.
	f := func(steps []float64) bool {
		var c Clock = NewSimClock()
		prev := 0.0
		for i, s := range steps {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			if i%2 == 0 {
				c.Advance(s)
			} else {
				c.AdvanceTo(s)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseScatter:      "scatter",
		PhaseFieldSolve:   "fieldsolve",
		PhaseGather:       "gather",
		PhasePush:         "push",
		PhaseRedistribute: "redistribute",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Phase(99).String() != "phase(99)" {
		t.Errorf("out-of-range phase: %q", Phase(99).String())
	}
}

func TestStatsPhaseRouting(t *testing.T) {
	var s Stats
	s.SetPhase(PhaseScatter)
	s.RecordCompute(1.0)
	s.RecordSend(100, 0.5)
	s.SetPhase(PhaseGather)
	s.RecordRecv(200, 0.25)

	sc := s.Phases[PhaseScatter]
	if sc.ComputeTime != 1.0 || sc.BytesSent != 100 || sc.MsgsSent != 1 || sc.CommTime != 0.5 {
		t.Errorf("scatter phase stats wrong: %+v", sc)
	}
	ga := s.Phases[PhaseGather]
	if ga.BytesRecv != 200 || ga.MsgsRecv != 1 || ga.CommTime != 0.25 {
		t.Errorf("gather phase stats wrong: %+v", ga)
	}
	tot := s.Total()
	if tot.ComputeTime != 1.0 || tot.CommTime != 0.75 {
		t.Errorf("totals wrong: %+v", tot)
	}
}

func TestStatsDiff(t *testing.T) {
	var s Stats
	s.SetPhase(PhaseScatter)
	s.RecordCompute(1)
	snap := s.Snapshot()
	s.RecordCompute(2)
	s.RecordSend(10, 0.1)
	d := s.Diff(&snap)
	if d.Phases[PhaseScatter].ComputeTime != 2 {
		t.Errorf("diff compute = %v, want 2", d.Phases[PhaseScatter].ComputeTime)
	}
	if d.Phases[PhaseScatter].BytesSent != 10 {
		t.Errorf("diff bytes = %v, want 10", d.Phases[PhaseScatter].BytesSent)
	}
}

func TestWorldStatsMaxPhase(t *testing.T) {
	var a, b Stats
	a.SetPhase(PhaseScatter)
	a.RecordSend(100, 1)
	b.SetPhase(PhaseScatter)
	b.RecordSend(300, 2)
	w := WorldStats{Ranks: []Stats{a, b}}
	got := w.MaxPhase(PhaseScatter, func(s PhaseStats) float64 { return float64(s.BytesSent) })
	if got != 300 {
		t.Errorf("MaxPhase bytes = %v, want 300", got)
	}
}

func TestWorldStatsTotals(t *testing.T) {
	var a, b Stats
	a.RecordCompute(2)
	b.RecordCompute(5)
	w := WorldStats{Ranks: []Stats{a, b}}
	if w.TotalCompute() != 7 {
		t.Errorf("TotalCompute = %v, want 7", w.TotalCompute())
	}
	if w.MaxCompute() != 5 {
		t.Errorf("MaxCompute = %v, want 5", w.MaxCompute())
	}
}

func TestPercentile(t *testing.T) {
	ranks := make([]Stats, 5)
	for i := range ranks {
		ranks[i].RecordCompute(float64(i + 1)) // 1..5
	}
	w := WorldStats{Ranks: ranks}
	f := func(s PhaseStats) float64 { return s.ComputeTime }
	if got := w.Percentile(0, f); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := w.Percentile(100, f); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := w.Percentile(50, f); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
}

func TestFormatIncludesAllPhases(t *testing.T) {
	w := WorldStats{Ranks: make([]Stats, 2)}
	out := w.Format()
	for _, name := range []string{"scatter", "fieldsolve", "gather", "push", "redistribute"} {
		if !contains(out, name) {
			t.Errorf("Format() missing phase %q:\n%s", name, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
