package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Phase identifies one of the PIC time-step phases (plus bookkeeping
// phases) for per-phase accounting.
type Phase int

// Phases of one PIC iteration, in execution order, plus redistribution.
const (
	PhaseScatter Phase = iota
	PhaseFieldSolve
	PhaseGather
	PhasePush
	PhaseRedistribute
	// PhaseCommSetup covers protocol bookkeeping that is not ghost data
	// itself: traffic-table exchanges, synchronisation barriers and
	// measurement reductions. Kept separate so the scatter-phase traffic
	// figures count ghost data only, as the paper's Figures 18–19 do.
	PhaseCommSetup
	numPhases
)

var phaseNames = [...]string{
	PhaseScatter:      "scatter",
	PhaseFieldSolve:   "fieldsolve",
	PhaseGather:       "gather",
	PhasePush:         "push",
	PhaseRedistribute: "redistribute",
	PhaseCommSetup:    "commsetup",
}

func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// NumPhases is the number of distinct accounting phases.
const NumPhases = int(numPhases)

// PhaseStats accumulates the communication and computation observed by one
// rank during one phase.
type PhaseStats struct {
	ComputeTime float64 // simulated seconds of local computation
	CommTime    float64 // simulated seconds of communication (send+recv)
	BytesSent   int64
	BytesRecv   int64
	MsgsSent    int64
	MsgsRecv    int64
}

// Add accumulates o into s.
func (s *PhaseStats) Add(o PhaseStats) {
	s.ComputeTime += o.ComputeTime
	s.CommTime += o.CommTime
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.MsgsSent += o.MsgsSent
	s.MsgsRecv += o.MsgsRecv
}

// Stats is the per-rank accounting ledger: phase-resolved counters plus the
// rank's clock. A rank records into exactly one current phase at a time.
type Stats struct {
	phase  Phase
	Phases [NumPhases]PhaseStats
}

// SetPhase selects the phase subsequent compute/communication is charged to.
func (s *Stats) SetPhase(p Phase) { s.phase = p }

// CurrentPhase returns the phase being charged.
func (s *Stats) CurrentPhase() Phase { return s.phase }

// RecordCompute charges t simulated seconds of computation.
func (s *Stats) RecordCompute(t float64) { s.Phases[s.phase].ComputeTime += t }

// RecordSend charges one outgoing message of n bytes costing t seconds.
func (s *Stats) RecordSend(n int, t float64) {
	ps := &s.Phases[s.phase]
	ps.CommTime += t
	ps.BytesSent += int64(n)
	ps.MsgsSent++
}

// RecordRecv charges one incoming message of n bytes costing t seconds.
func (s *Stats) RecordRecv(n int, t float64) {
	ps := &s.Phases[s.phase]
	ps.CommTime += t
	ps.BytesRecv += int64(n)
	ps.MsgsRecv++
}

// Total returns the sum over all phases.
func (s *Stats) Total() PhaseStats {
	var t PhaseStats
	for i := range s.Phases {
		t.Add(s.Phases[i])
	}
	return t
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for i := range s.Phases {
		s.Phases[i] = PhaseStats{}
	}
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Stats { return *s }

// Diff returns the counters accumulated since the snapshot prev.
func (s *Stats) Diff(prev *Stats) Stats {
	var d Stats
	d.phase = s.phase
	for i := range s.Phases {
		a, b := s.Phases[i], prev.Phases[i]
		d.Phases[i] = PhaseStats{
			ComputeTime: a.ComputeTime - b.ComputeTime,
			CommTime:    a.CommTime - b.CommTime,
			BytesSent:   a.BytesSent - b.BytesSent,
			BytesRecv:   a.BytesRecv - b.BytesRecv,
			MsgsSent:    a.MsgsSent - b.MsgsSent,
			MsgsRecv:    a.MsgsRecv - b.MsgsRecv,
		}
	}
	return d
}

// WorldStats aggregates the per-rank ledgers of a whole run for reporting.
type WorldStats struct {
	Ranks []Stats
}

// MaxPhase returns, for phase p, the maximum over ranks of the given
// extractor — e.g. the "maximum amount of data sent by any processor in the
// scatter phase" curves of Figures 18 and 19.
func (w WorldStats) MaxPhase(p Phase, f func(PhaseStats) float64) float64 {
	max := 0.0
	for i := range w.Ranks {
		if v := f(w.Ranks[i].Phases[p]); v > max {
			max = v
		}
	}
	return max
}

// TotalCompute returns the sum over ranks of all-phase compute time: the
// "computation" component used in the paper's overhead and efficiency
// numbers.
func (w WorldStats) TotalCompute() float64 {
	t := 0.0
	for i := range w.Ranks {
		t += w.Ranks[i].Total().ComputeTime
	}
	return t
}

// MaxCompute returns the maximum over ranks of all-phase compute time.
func (w WorldStats) MaxCompute() float64 {
	m := 0.0
	for i := range w.Ranks {
		if v := w.Ranks[i].Total().ComputeTime; v > m {
			m = v
		}
	}
	return m
}

// Format renders a compact per-phase table (max over ranks per column).
func (w WorldStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %12s %12s %12s %10s\n", "phase", "comp(max,s)", "comm(max,s)", "bytesSent", "msgsSent")
	for p := Phase(0); p < numPhases; p++ {
		comp := w.MaxPhase(p, func(s PhaseStats) float64 { return s.ComputeTime })
		comm := w.MaxPhase(p, func(s PhaseStats) float64 { return s.CommTime })
		bs := w.MaxPhase(p, func(s PhaseStats) float64 { return float64(s.BytesSent) })
		ms := w.MaxPhase(p, func(s PhaseStats) float64 { return float64(s.MsgsSent) })
		fmt.Fprintf(&b, "%-13s %12.6f %12.6f %12.0f %10.0f\n", p, comp, comm, bs, ms)
	}
	return b.String()
}

// Percentile returns the q-th percentile (0..100) over ranks of extractor f
// applied to the all-phase totals.
func (w WorldStats) Percentile(q float64, f func(PhaseStats) float64) float64 {
	if len(w.Ranks) == 0 {
		return 0
	}
	vals := make([]float64, len(w.Ranks))
	for i := range w.Ranks {
		vals[i] = f(w.Ranks[i].Total())
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 100 {
		return vals[len(vals)-1]
	}
	pos := q / 100 * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}
