package machine

import "fmt"

// CostLedger attributes measured per-iteration particle-phase cost to the
// cells the particles occupied, maintaining an exponentially-decayed
// estimate of each cell's cost and population. It is the data source for
// cost-weighted partitioning: cost[c]/count[c] estimates the per-particle
// cost of cell c, which sparse regions (whose ranks straddle many mesh
// blocks and pay more ghost traffic per particle) see higher than dense
// ones.
//
// The ledger sits behind the Clock seam in the sense that it only ever
// consumes modelled charges (already aggregated by the caller from the
// Stats phase deltas) — it never reads wall-clock time, so its contents
// are deterministic and invariant under the shared-memory worker count.
// All storage is preallocated at construction and reused: Observe/Commit
// allocate nothing in steady state (touched has capacity for every cell).
type CostLedger struct {
	alpha     float64   // decay weight of the newest iteration
	cost      []float64 // decayed per-cell cost estimate
	count     []float64 // decayed per-cell particle count
	counts    []int32   // current-iteration population scratch
	units     []int64   // current-iteration work-unit scratch
	touched   []int32   // cells with counts[c] != 0, for sparse reset
	seen      int       // particles observed since the last Commit
	seenUnits int64     // work units observed since the last Commit
}

// DefaultLedgerDecay is the weight Commit gives the newest iteration: high
// enough to track a collapsing density within a few redistribution
// periods, low enough to smooth single-iteration jitter.
const DefaultLedgerDecay = 0.3

// NewCostLedger builds a ledger over `cells` cells. alpha in (0, 1] is the
// exponential-decay weight of the newest observation; out-of-range values
// select DefaultLedgerDecay.
func NewCostLedger(cells int, alpha float64) *CostLedger {
	if !(alpha > 0 && alpha <= 1) {
		alpha = DefaultLedgerDecay
	}
	return &CostLedger{
		alpha:   alpha,
		cost:    make([]float64, cells),
		count:   make([]float64, cells),
		counts:  make([]int32, cells),
		units:   make([]int64, cells),
		touched: make([]int32, 0, cells),
	}
}

// Cells returns the ledger's cell-space size.
func (l *CostLedger) Cells() int { return len(l.cost) }

// Observe records that one particle spent this iteration in cell c.
// Out-of-range cells are ignored.
func (l *CostLedger) Observe(c int) { l.ObserveN(c, 1) }

// ObserveN records one particle in cell c performing `units` units of
// modelled work this iteration (e.g. base phase work plus its share of
// off-processor ghost operations). Commit apportions the measured cost
// proportionally to units, so cells whose particles are intrinsically more
// expensive — not merely more numerous — carry higher estimates.
// Non-positive units count as 1; out-of-range cells are ignored.
func (l *CostLedger) ObserveN(c, units int) {
	if c < 0 || c >= len(l.counts) {
		return
	}
	if units <= 0 {
		units = 1
	}
	if l.counts[c] == 0 {
		l.touched = append(l.touched, int32(c))
	}
	l.counts[c]++
	l.units[c] += int64(units)
	l.seen++
	l.seenUnits += int64(units)
}

// Commit folds the iteration's observations into the decayed estimates,
// attributing the iteration's total particle-phase cost proportionally to
// each cell's observed work units (uniform per particle when every
// observation used Observe's unit weight). Resets the per-iteration
// scratch.
func (l *CostLedger) Commit(cost float64) {
	keep := 1 - l.alpha
	for c := range l.cost {
		l.cost[c] *= keep
		l.count[c] *= keep
	}
	if l.seenUnits > 0 {
		perUnit := cost / float64(l.seenUnits)
		for _, c := range l.touched {
			l.cost[c] += l.alpha * perUnit * float64(l.units[c])
			l.count[c] += l.alpha * float64(l.counts[c])
			l.counts[c] = 0
			l.units[c] = 0
		}
	}
	l.touched = l.touched[:0]
	l.seen = 0
	l.seenUnits = 0
}

// Export appends the decayed cost estimates followed by the decayed counts
// (2·Cells values) to dst and returns it — the wire form the pipeline
// allgathers to build a global per-cell weight table.
func (l *CostLedger) Export(dst []float64) []float64 {
	dst = append(dst, l.cost...)
	return append(dst, l.count...)
}

// Import restores the decayed estimates from a previous Export (2·Cells
// values: costs then counts) and discards any uncommitted per-iteration
// observations — the checkpoint-restore inverse of Export.
func (l *CostLedger) Import(src []float64) error {
	if len(src) != 2*len(l.cost) {
		return fmt.Errorf("machine: ledger import of %d values into %d cells (want %d)",
			len(src), len(l.cost), 2*len(l.cost))
	}
	copy(l.cost, src[:len(l.cost)])
	copy(l.count, src[len(l.cost):])
	for _, c := range l.touched {
		l.counts[c] = 0
		l.units[c] = 0
	}
	l.touched = l.touched[:0]
	l.seen = 0
	l.seenUnits = 0
	return nil
}
