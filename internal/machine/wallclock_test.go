package machine

import (
	"testing"
	"time"
)

// TestWallClockTracksRealTime: Now reports real elapsed seconds,
// monotonically, and Reset rebases the epoch back to ~zero.
func TestWallClockTracksRealTime(t *testing.T) {
	c := NewWallClock()
	t0 := c.Now()
	if t0 < 0 {
		t.Fatalf("fresh wall clock reads %v, want >= 0", t0)
	}
	time.Sleep(20 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("wall clock did not advance: %v then %v", t0, t1)
	}
	if t1 < 0.015 {
		t.Fatalf("after 20ms sleep the clock reads %v s, want >= 0.015", t1)
	}
	c.Reset()
	if r := c.Now(); r >= t1 {
		t.Fatalf("Reset did not rebase the epoch: %v (was %v)", r, t1)
	}
}

// TestWallClockChargesAreNoOps: the modelled charges must not move a wall
// clock — real time passes on its own — so rank code charging τ/μ/δ runs
// unchanged in wall-clock mode without double-counting.
func TestWallClockChargesAreNoOps(t *testing.T) {
	c := NewWallClock()
	before := c.Now()
	c.Advance(1e6)
	c.AdvanceTo(1e9)
	after := c.Now()
	// Only real time may have passed between the two reads.
	if after-before > 1 {
		t.Fatalf("modelled charges moved the wall clock by %v s", after-before)
	}
	if after >= 1e6 {
		t.Fatalf("Advance leaked into wall time: Now = %v", after)
	}
}

// TestWallClockSatisfiesClock pins the interface contract at compile time
// alongside SimClock.
func TestWallClockSatisfiesClock(t *testing.T) {
	var _ Clock = NewWallClock()
	var _ Clock = NewSimClock()
}
