package machine

import (
	"math"
	"testing"
)

// TestCostLedgerAttribution: one iteration's cost is split per observed
// particle, so a cell with twice the particles gets twice the cost, scaled
// by alpha.
func TestCostLedgerAttribution(t *testing.T) {
	l := NewCostLedger(4, 0.5)
	l.Observe(0)
	l.Observe(0)
	l.Observe(2)
	l.Commit(30)
	// 3 particles share cost 30 → 10 each; alpha 0.5.
	if got := l.cost[0]; got != 0.5*20 {
		t.Errorf("cell 0 cost %g, want 10", got)
	}
	if got := l.cost[2]; got != 0.5*10 {
		t.Errorf("cell 2 cost %g, want 5", got)
	}
	if got := l.cost[1]; got != 0 {
		t.Errorf("untouched cell 1 cost %g, want 0", got)
	}
	if got := l.count[0]; got != 0.5*2 {
		t.Errorf("cell 0 count %g, want 1", got)
	}
}

// TestCostLedgerDecay: repeated identical iterations converge the estimate
// to the steady per-cell cost; an empty iteration only decays.
func TestCostLedgerDecay(t *testing.T) {
	l := NewCostLedger(2, 0.3)
	for i := 0; i < 200; i++ {
		l.Observe(0)
		l.Observe(1)
		l.Commit(8)
	}
	// Fixed point: cost = (1-a)·cost + a·4 → cost → 4.
	for c := 0; c < 2; c++ {
		if math.Abs(l.cost[c]-4) > 1e-9 {
			t.Errorf("cell %d cost %g, want 4", c, l.cost[c])
		}
		if math.Abs(l.count[c]-1) > 1e-9 {
			t.Errorf("cell %d count %g, want 1", c, l.count[c])
		}
	}
	before := l.cost[0]
	l.Commit(99) // nothing observed: pure decay, the 99 attributes to no one
	if want := before * 0.7; math.Abs(l.cost[0]-want) > 1e-12 {
		t.Errorf("empty commit: cost %g, want decayed %g", l.cost[0], want)
	}
}

// TestCostLedgerDeterministic: two ledgers fed the same sequence hold
// bit-identical estimates — the property cross-rank agreement rests on.
func TestCostLedgerDeterministic(t *testing.T) {
	a, b := NewCostLedger(16, 0.3), NewCostLedger(16, 0.3)
	for iter := 0; iter < 50; iter++ {
		for i := 0; i < 100; i++ {
			c := (iter*31 + i*7) % 16
			a.Observe(c)
			b.Observe(c)
		}
		cost := float64(iter%5) + 0.25
		a.Commit(cost)
		b.Commit(cost)
	}
	for c := 0; c < 16; c++ {
		if a.cost[c] != b.cost[c] || a.count[c] != b.count[c] {
			t.Fatalf("cell %d diverged: (%g,%g) vs (%g,%g)",
				c, a.cost[c], a.count[c], b.cost[c], b.count[c])
		}
	}
}

// TestCostLedgerOutOfRange: stray cell ids are dropped, not a panic.
func TestCostLedgerOutOfRange(t *testing.T) {
	l := NewCostLedger(2, 0.5)
	l.Observe(-1)
	l.Observe(2)
	l.Observe(0)
	l.Commit(10)
	if l.cost[0] != 0.5*10 {
		t.Errorf("cell 0 cost %g, want 5 (out-of-range observations must not dilute)", l.cost[0])
	}
}

// TestCostLedgerExport: Export appends cost then count and reuses dst.
func TestCostLedgerExport(t *testing.T) {
	l := NewCostLedger(3, 1)
	l.Observe(1)
	l.Commit(6)
	buf := make([]float64, 0, 6)
	out := l.Export(buf)
	if len(out) != 6 {
		t.Fatalf("export length %d, want 6", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Error("export reallocated despite sufficient capacity")
	}
	if out[1] != 6 || out[3+1] != 1 {
		t.Errorf("export contents %v, want cost[1]=6 count[1]=1", out)
	}
}

// TestCostLedgerZeroAllocSteadyState: after construction, a full
// Observe-all/Commit cycle allocates nothing — the acceptance criterion
// for running the ledger inside the iteration loop.
func TestCostLedgerZeroAllocSteadyState(t *testing.T) {
	const cells = 256
	l := NewCostLedger(cells, DefaultLedgerDecay)
	buf := make([]float64, 0, 2*cells)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			l.Observe(i % cells) // touches every cell: worst-case touched growth
		}
		l.Commit(12.5)
		buf = l.Export(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("steady-state ledger cycle allocates %g per op, want 0", allocs)
	}
}
