// Package machine models a coarse-grained distributed-memory parallel
// machine using the two-level cost model of Liao, Ou and Ranka (IPPS 1996,
// Section 4): a unit of local computation costs δ, and a message of m bytes
// costs τ + m·μ, independent of the distance between the communicating
// processors.
//
// The model is realised as a simulated clock per rank. Computation advances
// only the local clock; communication charges both endpoints and carries the
// sender's completion time so that receives are causally ordered (a message
// cannot be consumed before it was sent). Execution time of a program region
// is the maximum clock advance over all ranks, i.e. the slowest processor,
// which is what the paper reports.
package machine

import (
	"fmt"
	"time"
)

// Params holds the two-level machine model constants. All times are in
// seconds.
type Params struct {
	// Tau is the communication start-up overhead per message (τ).
	Tau float64
	// MuPerByte is the inverse bandwidth: seconds per byte transferred (μ).
	MuPerByte float64
	// Delta is the cost of one unit of local computation (δ). A "unit" is
	// roughly one floating-point operation plus its associated loads/stores.
	Delta float64
}

// CM5 returns parameters resembling a Thinking Machines CM-5 node without
// vector units: ~86 µs message start-up (CMMD cooperative send), ~10 MB/s
// point-to-point bandwidth, and a ~33 MHz SPARC sustaining a few Mflop/s.
// These match the machine used in the paper's evaluation closely enough to
// reproduce the shape of its results.
// Delta is calibrated so that the paper's headline configuration (200
// iterations, 32768 irregular particles, 128×64 mesh, 32 processors)
// lands near its reported 74.88 s.
func CM5() Params {
	return Params{
		Tau:       86e-6,
		MuPerByte: 0.1e-6,
		Delta:     1.3e-6,
	}
}

// Modern returns parameters resembling a contemporary cluster node
// (low-microsecond latency, ~10 GB/s links, ~1 ns per scalar op). Useful to
// study how the paper's trade-offs shift when computation gets cheap
// relative to communication start-up.
func Modern() Params {
	return Params{
		Tau:       2e-6,
		MuPerByte: 0.1e-9,
		Delta:     1e-9,
	}
}

// Zero returns a params set where all costs are zero; simulated time then
// stays at zero and only real execution remains. Useful in unit tests that
// care about algorithmic results rather than timing.
func Zero() Params { return Params{} }

// MsgCost returns the modelled cost of transferring one message of n bytes.
func (p Params) MsgCost(nbytes int) float64 {
	return p.Tau + float64(nbytes)*p.MuPerByte
}

// ComputeCost returns the modelled cost of n units of local computation.
func (p Params) ComputeCost(n int) float64 {
	return float64(n) * p.Delta
}

func (p Params) String() string {
	return fmt.Sprintf("machine{tau=%.3gs mu=%.3gs/B delta=%.3gs}", p.Tau, p.MuPerByte, p.Delta)
}

// Clock is the time seam of one rank: every δ/τ/μ charge in the system
// flows through exactly one Clock implementation, so alternative execution
// modes (e.g. a future wall-clock mode) only need to supply a different
// Clock. Implementations are not safe for concurrent use; each rank owns
// its own.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
	// Advance moves the clock forward by d seconds. Negative d is ignored
	// so that cost arithmetic bugs cannot travel back in time.
	Advance(d float64)
	// AdvanceTo moves the clock to at least t. Used when a received message
	// carries a completion time later than the local clock.
	AdvanceTo(t float64)
	// Reset sets the clock back to zero.
	Reset()
}

// SimClock is the simulated clock realising the paper's two-level cost
// model: it only moves when charged. The zero value is a clock at time
// zero.
type SimClock struct {
	now float64
}

// NewSimClock returns a simulated clock at time zero.
func NewSimClock() *SimClock { return &SimClock{} }

// Now implements Clock.
func (c *SimClock) Now() float64 { return c.now }

// Advance implements Clock.
func (c *SimClock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo implements Clock.
func (c *SimClock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset implements Clock.
func (c *SimClock) Reset() { c.now = 0 }

// WallClock is the wall-clock execution mode: Now is the real elapsed time
// since construction (or the last Reset). Modelled charges are no-ops —
// when a send takes real time, real time has already passed — so the same
// rank code runs unchanged while the clock reports what the hardware
// actually did. The stats ledgers still accumulate modelled τ/μ/δ prices,
// which is deliberate: comparing the modelled ledger against wall-clock
// Now is exactly how the cost model gets calibrated.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a wall clock whose zero is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now implements Clock: seconds of real time since the epoch of the clock.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() }

// Advance implements Clock as a no-op: real time passes on its own.
func (c *WallClock) Advance(d float64) {}

// AdvanceTo implements Clock as a no-op: causality is physical — a message
// genuinely cannot be read before it was sent.
func (c *WallClock) AdvanceTo(t float64) {}

// Reset implements Clock by rebasing the epoch to now.
func (c *WallClock) Reset() { c.start = time.Now() }
