package mesh

import (
	"math"
	"testing"
)

// TestWeightedCutsUniformMatchesBlockOwner: under uniform weights the
// weighted split must reproduce the BLOCK decomposition item for item —
// equal-count is the weight-1 special case, not an approximation of it.
func TestWeightedCutsUniformMatchesBlockOwner(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1023} {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 32} {
			for _, w := range []int64{1, 524288, 777} {
				cuts := WeightedCuts(w*int64(n), n, p)
				k, prefix := 0, int64(0)
				for i := 0; i < n; i++ {
					k = AdvanceCut(cuts, k, prefix)
					if want := BlockOwner(n, p, i); k != want {
						t.Fatalf("n=%d p=%d w=%d item %d: owner %d, want BlockOwner %d",
							n, p, w, i, k, want)
					}
					prefix += w
				}
			}
		}
	}
}

// TestWeightedCutsBoundariesMatchBlockRange: with uniform weights, cut k
// must sit exactly at the cumulative weight of BlockRange's boundary.
func TestWeightedCutsBoundariesMatchBlockRange(t *testing.T) {
	for _, n := range []int{5, 64, 129} {
		for _, p := range []int{2, 3, 8, 13} {
			const w = 3
			cuts := WeightedCuts(w*int64(n), n, p)
			for k := 1; k < p; k++ {
				lo, _ := BlockRange(n, p, k)
				if cuts[k-1] != w*int64(lo) {
					t.Fatalf("n=%d p=%d cut %d = %d, want %d", n, p, k, cuts[k-1], w*int64(lo))
				}
			}
		}
	}
}

// TestWeightedCutsMonotone: cuts are non-decreasing and bounded by totalW
// for arbitrary totals, including totals that do not divide evenly.
func TestWeightedCutsMonotone(t *testing.T) {
	for _, tc := range []struct {
		totalW int64
		n, p   int
	}{
		{17, 5, 3}, {1, 100, 8}, {1 << 40, 1000, 32}, {999999937, 1023, 7},
	} {
		cuts := WeightedCuts(tc.totalW, tc.n, tc.p)
		prev := int64(0)
		for i, c := range cuts {
			if c < prev || c > tc.totalW {
				t.Fatalf("totalW=%d n=%d p=%d: cut %d = %d out of order (prev %d)",
					tc.totalW, tc.n, tc.p, i, c, prev)
			}
			prev = c
		}
	}
}

// TestWeightScalePowerOfTwo: the scale is a power of two placing maxW·scale
// in [2^19, 2^20), and degenerate inputs yield scale 0.
func TestWeightScalePowerOfTwo(t *testing.T) {
	for _, w := range []float64{1e-30, 0.001, 0.5, 1, 1.5, 3, 1e6, 1e30} {
		s := WeightScale(w)
		if s <= 0 {
			t.Fatalf("WeightScale(%g) = %g, want positive", w, s)
		}
		if frac, _ := math.Frexp(s); frac != 0.5 {
			t.Errorf("WeightScale(%g) = %g is not a power of two", w, s)
		}
		if v := w * s; v < 1<<19 || v >= 1<<20 {
			t.Errorf("WeightScale(%g): scaled max %g outside [2^19, 2^20)", w, v)
		}
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if s := WeightScale(w); s != 0 {
			t.Errorf("WeightScale(%g) = %g, want 0", w, s)
		}
	}
}

// TestQuantizeWeightScalingInvariance: quantization under WeightScale is
// exactly invariant when all weights are rescaled by a power of two — the
// scale shifts by the inverse power, so the products are bit-identical.
func TestQuantizeWeightScalingInvariance(t *testing.T) {
	ws := []float64{0.1, 0.25, 1, 2.7, 13.5, 100}
	maxW := 100.0
	for _, shift := range []float64{0.25, 4, 1024, 1.0 / 4096} {
		s0 := WeightScale(maxW)
		s1 := WeightScale(maxW * shift)
		for _, w := range ws {
			a := QuantizeWeight(w, s0)
			b := QuantizeWeight(w*shift, s1)
			if a != b {
				t.Fatalf("shift %g: QuantizeWeight(%g) %d != %d", shift, w, a, b)
			}
		}
	}
}

// TestQuantizeWeightDegenerate: non-positive and non-finite weights
// quantize to zero rather than poisoning the prefix sums.
func TestQuantizeWeightDegenerate(t *testing.T) {
	s := WeightScale(1)
	for _, w := range []float64{0, -1, math.NaN()} {
		if q := QuantizeWeight(w, s); q != 0 {
			t.Errorf("QuantizeWeight(%g) = %d, want 0", w, q)
		}
	}
}
