// Package mesh describes the global computational mesh of the PIC problem
// and its BLOCK distribution over processors. The mesh grid array is
// spatially homogeneous, so — as the paper assumes — it is distributed along
// one or two dimensions using BLOCK distribution; the particle array is
// partitioned separately (see internal/partition) and aligned with the mesh
// through space-filling-curve indices.
//
// Boundary conditions are periodic in both dimensions (the standard choice
// for plasma simulation), so the mesh has exactly Nx·Ny grid points and
// Nx·Ny cells: cell (i, j) has vertex grid points (i, j), (i+1, j),
// (i, j+1), (i+1, j+1) with indices taken modulo the extents.
package mesh

import "fmt"

// Grid is the global mesh geometry: Nx×Ny grid points (and cells) covering
// a physical domain of size Lx×Ly with periodic boundaries.
type Grid struct {
	Nx, Ny int
	Lx, Ly float64
}

// NewGrid builds a grid with unit-length cells (Lx = Nx, Ly = Ny), the
// convention used throughout the experiments.
func NewGrid(nx, ny int) Grid {
	return Grid{Nx: nx, Ny: ny, Lx: float64(nx), Ly: float64(ny)}
}

// Validate reports whether the grid is usable.
func (g Grid) Validate() error {
	if g.Nx <= 0 || g.Ny <= 0 {
		return fmt.Errorf("mesh: non-positive extents %dx%d", g.Nx, g.Ny)
	}
	if g.Lx <= 0 || g.Ly <= 0 {
		return fmt.Errorf("mesh: non-positive physical size %gx%g", g.Lx, g.Ly)
	}
	return nil
}

// Dx returns the cell width.
func (g Grid) Dx() float64 { return g.Lx / float64(g.Nx) }

// Dy returns the cell height.
func (g Grid) Dy() float64 { return g.Ly / float64(g.Ny) }

// NumPoints returns the total number of grid points m.
func (g Grid) NumPoints() int { return g.Nx * g.Ny }

// PointIndex returns the row-major global id of grid point (i, j); i and j
// may be out of range and are wrapped periodically.
func (g Grid) PointIndex(i, j int) int {
	i = wrap(i, g.Nx)
	j = wrap(j, g.Ny)
	return j*g.Nx + i
}

// PointCoords inverts PointIndex for in-range ids.
func (g Grid) PointCoords(id int) (i, j int) { return id % g.Nx, id / g.Nx }

// WrapPosition maps an arbitrary physical position into the periodic domain.
func (g Grid) WrapPosition(x, y float64) (float64, float64) {
	x = wrapF(x, g.Lx)
	y = wrapF(y, g.Ly)
	return x, y
}

// CellOf returns the cell (cx, cy) containing physical position (x, y),
// after periodic wrapping.
func (g Grid) CellOf(x, y float64) (cx, cy int) {
	x, y = g.WrapPosition(x, y)
	cx = int(x / g.Dx())
	cy = int(y / g.Dy())
	// Guard against x == Lx after floating-point wrap.
	if cx >= g.Nx {
		cx = g.Nx - 1
	}
	if cy >= g.Ny {
		cy = g.Ny - 1
	}
	return cx, cy
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

func wrapF(x, l float64) float64 {
	for x < 0 {
		x += l
	}
	for x >= l {
		x -= l
	}
	return x
}

// BlockRange returns the half-open range [lo, hi) of the k-th of p BLOCK
// pieces of n items: the standard balanced block decomposition.
func BlockRange(n, p, k int) (lo, hi int) {
	return k * n / p, (k + 1) * n / p
}

// BlockOwner returns which of p BLOCK pieces of n items owns item i.
// Inverse of BlockRange.
func BlockOwner(n, p, i int) int {
	k := i * p / n // close to the owner; correct in both directions
	for (k+1)*n/p <= i {
		k++
	}
	for k > 0 && k*n/p > i {
		k--
	}
	return k
}

// Dist is a BLOCK distribution of the grid over p ranks arranged as a
// Px×Py processor grid. The assignment of ranks to processor-grid tiles is
// given by a numbering: row-major by default, or along a space-filling
// curve of the processor grid (the paper's Figure 10, where "Hilbert
// indexing is applied on 16 processor addresses"), which aligns mesh block
// r with the r-th segment of the cell-index space and hence with particle
// chunk r.
type Dist struct {
	G      Grid
	P      int
	Px, Py int

	// tileRank[ty*Px+tx] is the rank owning tile (tx, ty); rankTile is the
	// inverse. Nil means the identity (row-major) numbering.
	tileRank []int
	rankTile []int
}

// NewDist chooses the processor-grid factorisation Px×Py = p whose blocks
// are closest to square (in physical aspect), the shape that minimises the
// field-solve halo perimeter.
func NewDist(g Grid, p int) (*Dist, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("mesh: non-positive rank count %d", p)
	}
	bestPx, bestScore := 1, worstScore
	for px := 1; px <= p; px++ {
		if p%px != 0 {
			continue
		}
		py := p / px
		if px > g.Nx || py > g.Ny {
			continue
		}
		bw := float64(g.Nx) / float64(px)
		bh := float64(g.Ny) / float64(py)
		score := bw/bh + bh/bw // minimised at 2 when square
		if score < bestScore {
			bestScore = score
			bestPx = px
		}
	}
	if bestScore == worstScore {
		return nil, fmt.Errorf("mesh: cannot block-distribute %dx%d over %d ranks", g.Nx, g.Ny, p)
	}
	return &Dist{G: g, P: p, Px: bestPx, Py: p / bestPx}, nil
}

const worstScore = 1e300

// NewDist1D builds a distribution blocked along y only (Px = 1), the
// "distributed along one dimension" alternative mentioned in the paper.
func NewDist1D(g Grid, p int) (*Dist, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 || p > g.Ny {
		return nil, fmt.Errorf("mesh: cannot 1-D distribute %d rows over %d ranks", g.Ny, p)
	}
	return &Dist{G: g, P: p, Px: 1, Py: p}, nil
}

// Renumber installs the tile numbering of the given ordering over the
// processor grid: rank r owns the r-th tile along the ordering. The
// ordering function must be a bijection from tile coordinates onto
// 0..P−1 (e.g. an sfc.Indexer's Index method for the Px×Py grid).
func (d *Dist) Renumber(order func(tx, ty int) int) error {
	tileRank := make([]int, d.P)
	rankTile := make([]int, d.P)
	seen := make([]bool, d.P)
	for ty := 0; ty < d.Py; ty++ {
		for tx := 0; tx < d.Px; tx++ {
			r := order(tx, ty)
			if r < 0 || r >= d.P || seen[r] {
				return fmt.Errorf("mesh: tile ordering is not a bijection at (%d,%d) -> %d", tx, ty, r)
			}
			seen[r] = true
			tileRank[ty*d.Px+tx] = r
			rankTile[r] = ty*d.Px + tx
		}
	}
	d.tileRank = tileRank
	d.rankTile = rankTile
	return nil
}

// RankCoords returns rank r's processor-grid coordinates.
func (d *Dist) RankCoords(r int) (px, py int) {
	if d.rankTile != nil {
		t := d.rankTile[r]
		return t % d.Px, t / d.Px
	}
	return r % d.Px, r / d.Px
}

// RankAt returns the rank at processor-grid coordinates (px, py), wrapped
// periodically (used for halo neighbours).
func (d *Dist) RankAt(px, py int) int {
	px = wrap(px, d.Px)
	py = wrap(py, d.Py)
	if d.tileRank != nil {
		return d.tileRank[py*d.Px+px]
	}
	return py*d.Px + px
}

// Bounds returns rank r's owned grid-point region as half-open ranges
// [i0, i1) × [j0, j1).
func (d *Dist) Bounds(r int) (i0, i1, j0, j1 int) {
	px, py := d.RankCoords(r)
	i0, i1 = BlockRange(d.G.Nx, d.Px, px)
	j0, j1 = BlockRange(d.G.Ny, d.Py, py)
	return i0, i1, j0, j1
}

// OwnerOfPoint returns the rank owning grid point (i, j) (wrapped).
func (d *Dist) OwnerOfPoint(i, j int) int {
	i = wrap(i, d.G.Nx)
	j = wrap(j, d.G.Ny)
	return d.RankAt(BlockOwner(d.G.Nx, d.Px, i), BlockOwner(d.G.Ny, d.Py, j))
}

// LocalSize returns the owned extents of rank r.
func (d *Dist) LocalSize(r int) (nx, ny int) {
	i0, i1, j0, j1 := d.Bounds(r)
	return i1 - i0, j1 - j0
}

// MaxLocalPoints returns the largest owned point count over ranks: the m/p
// term of the complexity analysis (exactly m/p when p divides both extents).
func (d *Dist) MaxLocalPoints() int {
	m := 0
	for r := 0; r < d.P; r++ {
		nx, ny := d.LocalSize(r)
		if nx*ny > m {
			m = nx * ny
		}
	}
	return m
}

// Neighbours returns the ranks adjacent to r in the four cardinal
// directions of the processor grid (−x, +x, −y, +y), with periodic wrap.
// Some entries may equal r when the processor grid is 1 wide in a
// dimension.
func (d *Dist) Neighbours(r int) (left, right, down, up int) {
	px, py := d.RankCoords(r)
	return d.RankAt(px-1, py), d.RankAt(px+1, py), d.RankAt(px, py-1), d.RankAt(px, py+1)
}

func (d *Dist) String() string {
	return fmt.Sprintf("dist{%dx%d points over %d=%dx%d ranks}", d.G.Nx, d.G.Ny, d.P, d.Px, d.Py)
}
