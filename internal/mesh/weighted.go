package mesh

import "math"

// Weighted BLOCK splitting. BlockRange cuts n unit-weight items at the
// boundaries k·n/p; the weighted generalisation cuts a sequence of items
// with integer weights at the images of those same boundaries under the
// (piecewise-linear) cumulative-weight map. Working in integers keeps every
// rank's view of the cut positions exact: prefix sums and cut comparisons
// involve no rounding, so independently computed owners on different ranks
// can never disagree at a boundary, and the uniform-weight case collapses
// to BlockOwner item for item.

// WeightedCuts returns the p−1 cumulative-weight cut positions for
// splitting n items of total integer weight totalW into p pieces. Item i
// (0-based) belongs to piece k iff its prefix weight (sum of weights of
// items 0..i−1) lies in [cut_{k−1}, cut_k), with cut_{−1}=0 and cut_{p−1}
// unbounded; AdvanceCut implements that rule. The cut for boundary k is the
// exact rational totalW·(k·n/p)/n — the cumulative weight at BlockRange's
// item boundary under uniform weights — evaluated without overflow as
// q·lo + rem·lo/n where q, rem = totalW divmod n and lo = k·n/p.
func WeightedCuts(totalW int64, n, p int) []int64 {
	cuts := make([]int64, p-1)
	if n == 0 {
		return cuts
	}
	q, rem := totalW/int64(n), totalW%int64(n)
	for k := 1; k < p; k++ {
		lo := int64(k * n / p)
		cuts[k-1] = q*lo + rem*lo/int64(n)
	}
	return cuts
}

// AdvanceCut returns the owner of the item whose prefix weight is prefix,
// given that the previous item's owner was at least k. Owners are
// monotone in the prefix, so a single forward scan over the sorted items
// visits each cut once.
func AdvanceCut(cuts []int64, k int, prefix int64) int {
	for k < len(cuts) && cuts[k] <= prefix {
		k++
	}
	return k
}

// WeightScale returns the power-of-two scale factor that maps a maximum
// weight maxW into [2^19, 2^20). Quantizing weights as round(w·scale)
// keeps per-item resolution near one part in a million while leaving
// dozens of bits of headroom before int64 prefix sums could overflow
// (2^20 per item × 2^31 items < 2^52). A power of two makes the
// quantization exactly invariant under power-of-two weight rescaling.
// Returns 0 when maxW is not a positive finite number.
func WeightScale(maxW float64) float64 {
	if !(maxW > 0) || math.IsInf(maxW, 1) {
		return 0
	}
	return math.Ldexp(1, 19-math.Ilogb(maxW))
}

// QuantizeWeight rounds w·scale to the nearest integer weight.
// Non-positive and non-finite weights quantize to 0.
func QuantizeWeight(w, scale float64) int64 {
	if !(w > 0) {
		return 0
	}
	return int64(w*scale + 0.5)
}
