package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(128, 64)
	if g.NumPoints() != 128*64 {
		t.Errorf("NumPoints = %d", g.NumPoints())
	}
	if g.Dx() != 1 || g.Dy() != 1 {
		t.Errorf("unit cells expected, got %g, %g", g.Dx(), g.Dy())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Grid{Nx: 0, Ny: 4, Lx: 1, Ly: 1}).Validate(); err == nil {
		t.Error("expected validate failure for zero extent")
	}
	if err := (Grid{Nx: 4, Ny: 4, Lx: 0, Ly: 1}).Validate(); err == nil {
		t.Error("expected validate failure for zero size")
	}
}

func TestPointIndexWrap(t *testing.T) {
	g := NewGrid(8, 4)
	if g.PointIndex(0, 0) != 0 {
		t.Error("origin index")
	}
	if g.PointIndex(8, 0) != g.PointIndex(0, 0) {
		t.Error("x wrap failed")
	}
	if g.PointIndex(-1, 0) != g.PointIndex(7, 0) {
		t.Error("negative x wrap failed")
	}
	if g.PointIndex(3, 4) != g.PointIndex(3, 0) {
		t.Error("y wrap failed")
	}
	if g.PointIndex(3, -1) != g.PointIndex(3, 3) {
		t.Error("negative y wrap failed")
	}
}

func TestPointIndexRoundTrip(t *testing.T) {
	g := NewGrid(13, 7)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			id := g.PointIndex(i, j)
			ri, rj := g.PointCoords(id)
			if ri != i || rj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, id, ri, rj)
			}
		}
	}
}

func TestCellOf(t *testing.T) {
	g := NewGrid(8, 8)
	cases := []struct {
		x, y   float64
		cx, cy int
	}{
		{0.5, 0.5, 0, 0},
		{7.999, 7.999, 7, 7},
		{8.0, 0.0, 0, 0},   // wraps
		{-0.25, 0.0, 7, 0}, // wraps negative
		{3.0, 5.5, 3, 5},   // exact boundary belongs to upper cell
	}
	for _, c := range cases {
		cx, cy := g.CellOf(c.x, c.y)
		if cx != c.cx || cy != c.cy {
			t.Errorf("CellOf(%g,%g) = (%d,%d), want (%d,%d)", c.x, c.y, cx, cy, c.cx, c.cy)
		}
	}
}

func TestCellOfAlwaysInRange(t *testing.T) {
	g := NewGrid(16, 8)
	f := func(x, y float64) bool {
		if x != x || y != y || x > 1e12 || x < -1e12 || y > 1e12 || y < -1e12 {
			return true // skip NaN/huge (wrapF is a loop)
		}
		cx, cy := g.CellOf(x, y)
		return cx >= 0 && cx < g.Nx && cy >= 0 && cy < g.Ny
	}
	cfg := &quick.Config{MaxCount: 2000, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBlockRangeCoversExactly(t *testing.T) {
	for _, n := range []int{1, 7, 10, 64, 127} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			if p > n {
				continue
			}
			prevHi := 0
			for k := 0; k < p; k++ {
				lo, hi := BlockRange(n, p, k)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d k=%d: gap/overlap lo=%d prev=%d", n, p, k, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d p=%d k=%d: negative range", n, p, k)
				}
				// Balanced: sizes differ by at most 1.
				if sz := hi - lo; sz < n/p || sz > n/p+1 {
					t.Fatalf("n=%d p=%d k=%d: unbalanced size %d", n, p, k, sz)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d p=%d: ranges end at %d", n, p, prevHi)
			}
		}
	}
}

func TestBlockOwnerInvertsBlockRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		p := 1 + rng.Intn(n)
		i := rng.Intn(n)
		k := BlockOwner(n, p, i)
		lo, hi := BlockRange(n, p, k)
		return lo <= i && i < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNewDistFactorisation(t *testing.T) {
	// 128x64 over 32 ranks should pick 8x4 (16x16 square blocks).
	d, err := NewDist(NewGrid(128, 64), 32)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px != 8 || d.Py != 4 {
		t.Errorf("got %dx%d processor grid, want 8x4", d.Px, d.Py)
	}
	// Square mesh over square rank count: square processor grid.
	d2, err := NewDist(NewGrid(64, 64), 16)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Px != 4 || d2.Py != 4 {
		t.Errorf("got %dx%d, want 4x4", d2.Px, d2.Py)
	}
}

func TestNewDistErrors(t *testing.T) {
	if _, err := NewDist(NewGrid(2, 2), 0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := NewDist(NewGrid(2, 2), 64); err == nil {
		t.Error("expected error when no factorisation fits")
	}
	if _, err := NewDist1D(NewGrid(8, 4), 8); err == nil {
		t.Error("expected error: 8 ranks over 4 rows")
	}
}

func TestDistBoundsPartitionTheGrid(t *testing.T) {
	grids := []Grid{NewGrid(128, 64), NewGrid(17, 13), NewGrid(64, 64)}
	for _, g := range grids {
		for _, p := range []int{1, 2, 4, 6, 8, 13} {
			d, err := NewDist(g, p)
			if err != nil {
				continue
			}
			owned := make([]int, g.NumPoints())
			for r := 0; r < p; r++ {
				i0, i1, j0, j1 := d.Bounds(r)
				for j := j0; j < j1; j++ {
					for i := i0; i < i1; i++ {
						owned[g.PointIndex(i, j)]++
						if got := d.OwnerOfPoint(i, j); got != r {
							t.Fatalf("%v p=%d: OwnerOfPoint(%d,%d) = %d, want %d", g, p, i, j, got, r)
						}
					}
				}
			}
			for id, c := range owned {
				if c != 1 {
					t.Fatalf("%v p=%d: point %d owned %d times", g, p, id, c)
				}
			}
		}
	}
}

func TestDist1D(t *testing.T) {
	d, err := NewDist1D(NewGrid(16, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px != 1 || d.Py != 4 {
		t.Fatalf("1-D dist got %dx%d", d.Px, d.Py)
	}
	i0, i1, j0, j1 := d.Bounds(2)
	if i0 != 0 || i1 != 16 || j0 != 4 || j1 != 6 {
		t.Errorf("rank 2 bounds (%d,%d,%d,%d)", i0, i1, j0, j1)
	}
}

func TestNeighboursPeriodic(t *testing.T) {
	d, err := NewDist(NewGrid(16, 16), 16) // 4x4 processor grid
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is at (0,0): left wraps to (3,0)=3, down wraps to (0,3)=12.
	left, right, down, up := d.Neighbours(0)
	if left != 3 || right != 1 || down != 12 || up != 4 {
		t.Errorf("neighbours of 0: %d %d %d %d", left, right, down, up)
	}
}

func TestMaxLocalPoints(t *testing.T) {
	d, err := NewDist(NewGrid(128, 64), 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MaxLocalPoints(); got != 128*64/32 {
		t.Errorf("MaxLocalPoints = %d, want %d", got, 128*64/32)
	}
	// Uneven case: max is within one row/col of the mean.
	d2, err := NewDist(NewGrid(17, 13), 4)
	if err != nil {
		t.Fatal(err)
	}
	mean := 17 * 13 / 4
	if got := d2.MaxLocalPoints(); got < mean || got > mean+17+13 {
		t.Errorf("uneven MaxLocalPoints = %d (mean %d)", got, mean)
	}
}

func TestWrapPosition(t *testing.T) {
	g := NewGrid(4, 4)
	x, y := g.WrapPosition(-0.5, 4.5)
	if x != 3.5 || y != 0.5 {
		t.Errorf("WrapPosition = (%g,%g), want (3.5,0.5)", x, y)
	}
}
