package mesh

import "picpar/internal/sfc"

// NewDistOrdered builds a 2-D BLOCK distribution whose ranks are numbered
// along the named space-filling curve of the processor grid — the paper's
// alignment device: when both processor addresses and cells are ordered by
// the same curve, mesh block r covers (approximately) the r-th segment of
// the cell-index space, so the equal-count particle chunk r lands on or
// near its own mesh block.
func NewDistOrdered(g Grid, p int, scheme string) (*Dist, error) {
	d, err := NewDist(g, p)
	if err != nil {
		return nil, err
	}
	ix, err := sfc.New(scheme, d.Px, d.Py)
	if err != nil {
		return nil, err
	}
	if err := d.Renumber(ix.Index); err != nil {
		return nil, err
	}
	return d, nil
}
