package mesh

import (
	"testing"

	"picpar/internal/sfc"
)

func TestNewDistOrderedBijection(t *testing.T) {
	for _, scheme := range []string{sfc.SchemeHilbert, sfc.SchemeSnake, sfc.SchemeRowMajor} {
		d, err := NewDistOrdered(NewGrid(32, 16), 8, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		// Every point owned exactly once; RankCoords inverts RankAt.
		owned := make([]int, 32*16)
		for r := 0; r < 8; r++ {
			px, py := d.RankCoords(r)
			if got := d.RankAt(px, py); got != r {
				t.Fatalf("%s: RankAt(RankCoords(%d)) = %d", scheme, r, got)
			}
			i0, i1, j0, j1 := d.Bounds(r)
			for j := j0; j < j1; j++ {
				for i := i0; i < i1; i++ {
					owned[d.G.PointIndex(i, j)]++
					if d.OwnerOfPoint(i, j) != r {
						t.Fatalf("%s: owner of (%d,%d) != %d", scheme, i, j, r)
					}
				}
			}
		}
		for id, c := range owned {
			if c != 1 {
				t.Fatalf("%s: point %d owned %d times", scheme, id, c)
			}
		}
	}
}

func TestNewDistOrderedHilbertAdjacency(t *testing.T) {
	// Consecutive ranks own adjacent tiles under the Hilbert numbering.
	d, err := NewDistOrdered(NewGrid(64, 64), 16, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 16; r++ {
		ax, ay := d.RankCoords(r - 1)
		bx, by := d.RankCoords(r)
		if dx, dy := ax-bx, ay-by; dx*dx+dy*dy != 1 {
			t.Errorf("ranks %d,%d tiles (%d,%d),(%d,%d) not adjacent", r-1, r, ax, ay, bx, by)
		}
	}
}

func TestRenumberRejectsNonBijection(t *testing.T) {
	d, err := NewDist(NewGrid(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Renumber(func(tx, ty int) int { return 0 }); err == nil {
		t.Error("expected error for constant ordering")
	}
	if err := d.Renumber(func(tx, ty int) int { return -1 }); err == nil {
		t.Error("expected error for out-of-range ordering")
	}
}
