// Package partition3 carries the paper's independent partitioning analysis
// into three dimensions, demonstrating the claimed n-dimensional
// generalisation of the Hilbert index-based scheme: particles keyed by the
// 3-D Hilbert index of their cell and dealt in equal chunks over an
// SFC-numbered 3-D BLOCK mesh, with the same quality metrics (load
// imbalance, ghost points of the 8-vertex trilinear footprint,
// communication locality) as the 2-D analysis in internal/partition.
package partition3

import (
	"fmt"
	"math/rand"

	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/radix"
	"picpar/internal/sfc"
)

// Particles is a minimal 3-D particle population for partitioning
// analysis: positions only.
type Particles struct {
	X, Y, Z []float64
}

// Len returns the population size.
func (p *Particles) Len() int { return len(p.X) }

// Distribution names for Generate3.
const (
	DistUniform   = "uniform"
	DistIrregular = "irregular"
)

// Generate3 creates n particles in g's domain: uniform, or a centre-
// concentrated Gaussian ball ("irregular").
func Generate3(g mesh3.Grid, n int, dist string, seed int64) (*Particles, error) {
	rng := rand.New(rand.NewSource(seed))
	p := &Particles{
		X: make([]float64, 0, n),
		Y: make([]float64, 0, n),
		Z: make([]float64, 0, n),
	}
	switch dist {
	case DistUniform:
		for i := 0; i < n; i++ {
			p.X = append(p.X, rng.Float64()*g.Lx)
			p.Y = append(p.Y, rng.Float64()*g.Ly)
			p.Z = append(p.Z, rng.Float64()*g.Lz)
		}
	case DistIrregular:
		for i := 0; i < n; i++ {
			p.X = append(p.X, gauss(rng, g.Lx/2, 0.1*g.Lx, g.Lx))
			p.Y = append(p.Y, gauss(rng, g.Ly/2, 0.1*g.Ly, g.Ly))
			p.Z = append(p.Z, gauss(rng, g.Lz/2, 0.1*g.Lz, g.Lz))
		}
	default:
		return nil, fmt.Errorf("partition3: unknown distribution %q", dist)
	}
	return p, nil
}

func gauss(rng *rand.Rand, mean, sigma, l float64) float64 {
	for {
		v := mean + rng.NormFloat64()*sigma
		if v >= 0 && v < l {
			return v
		}
	}
}

// Layout assigns particles to ranks by equal-count chunks of their 3-D SFC
// keys (independent partitioning; the mesh side is d's BLOCK distribution).
type Layout struct {
	P         int
	Particles []int
}

// Build computes the independent-partitioning layout for the current
// positions under the given indexer.
func Build(g mesh3.Grid, d *mesh3.Dist, ix sfc.Indexer3, p *Particles) *Layout {
	// Stable radix by key with idx primed 0..n−1 reproduces the
	// (key, original index) order of the previous sort.Slice comparator.
	n := p.Len()
	keys := make([]uint64, n)
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		cx, cy, cz := g.CellOf(p.X[i], p.Y[i], p.Z[i])
		keys[i] = uint64(ix.Index(cx, cy, cz))
		order[i] = int32(i)
	}
	_, order = radix.SortKeysIndex(keys, order, nil)
	l := &Layout{P: d.P, Particles: make([]int, n)}
	for pos, i := range order {
		l.Particles[i] = mesh.BlockOwner(n, d.P, pos)
	}
	return l
}

// Quality mirrors the 2-D metrics for the 3-D layout.
type Quality struct {
	ParticleImbalance float64
	MaxGhostPoints    int
	TotalGhostPoints  int
	MaxPartners       int
	NonLocalFraction  float64
}

// vertexOffsets3 are the 8 vertices of a cell (trilinear footprint).
var vertexOffsets3 = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// Measure computes the 3-D partition quality.
func Measure(l *Layout, g mesh3.Grid, d *mesh3.Dist, p *Particles) Quality {
	ghost := make([]map[int]bool, l.P)
	for r := range ghost {
		ghost[r] = make(map[int]bool)
	}
	count := make([]int, l.P)
	for i := 0; i < p.Len(); i++ {
		r := l.Particles[i]
		count[r]++
		cx, cy, cz := g.CellOf(p.X[i], p.Y[i], p.Z[i])
		for _, off := range vertexOffsets3 {
			gid := g.PointIndex(cx+off[0], cy+off[1], cz+off[2])
			gi, gj, gk := g.PointCoords(gid)
			if d.OwnerOfPoint(gi, gj, gk) != r {
				ghost[r][gid] = true
			}
		}
	}

	var q Quality
	q.ParticleImbalance = imbalance(count)
	nonLocal := 0
	for r := 0; r < l.P; r++ {
		if len(ghost[r]) > q.MaxGhostPoints {
			q.MaxGhostPoints = len(ghost[r])
		}
		q.TotalGhostPoints += len(ghost[r])
		owners := map[int]bool{}
		for gid := range ghost[r] {
			gi, gj, gk := g.PointCoords(gid)
			o := d.OwnerOfPoint(gi, gj, gk)
			owners[o] = true
			if !adjacent(d, r, o) {
				nonLocal++
			}
		}
		if len(owners) > q.MaxPartners {
			q.MaxPartners = len(owners)
		}
	}
	if q.TotalGhostPoints > 0 {
		q.NonLocalFraction = float64(nonLocal) / float64(q.TotalGhostPoints)
	}
	return q
}

func imbalance(counts []int) float64 {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) / (float64(total) / float64(len(counts)))
}

// adjacent reports whether ranks a and b are 26-neighbours (or equal) on
// the periodic processor grid.
func adjacent(d *mesh3.Dist, a, b int) bool {
	if a == b {
		return true
	}
	ax, ay, az := d.RankCoords(a)
	bx, by, bz := d.RankCoords(b)
	return torus(ax-bx, d.Px) <= 1 && torus(ay-by, d.Py) <= 1 && torus(az-bz, d.Pz) <= 1
}

func torus(dd, n int) int {
	if dd < 0 {
		dd = -dd
	}
	if n-dd < dd {
		dd = n - dd
	}
	return dd
}
