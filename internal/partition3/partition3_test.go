package partition3

import (
	"testing"

	"picpar/internal/mesh3"
	"picpar/internal/sfc"
)

func setup(t *testing.T, dist string, n int) (mesh3.Grid, *mesh3.Dist, sfc.Indexer3, *Particles) {
	t.Helper()
	g := mesh3.NewGrid(16, 16, 16)
	d, err := mesh3.NewDistOrdered(g, 8, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	ix := sfc.MustNew3(sfc.SchemeHilbert, 16, 16, 16)
	p, err := Generate3(g, n, dist, 77)
	if err != nil {
		t.Fatal(err)
	}
	return g, d, ix, p
}

func TestGenerate3(t *testing.T) {
	g := mesh3.NewGrid(8, 8, 8)
	for _, dist := range []string{DistUniform, DistIrregular} {
		p, err := Generate3(g, 1000, dist, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != 1000 {
			t.Fatalf("%s: len %d", dist, p.Len())
		}
		for i := 0; i < p.Len(); i++ {
			if p.X[i] < 0 || p.X[i] >= 8 || p.Y[i] < 0 || p.Y[i] >= 8 || p.Z[i] < 0 || p.Z[i] >= 8 {
				t.Fatalf("%s: particle %d outside domain", dist, i)
			}
		}
	}
	if _, err := Generate3(g, 1, "shell", 1); err == nil {
		t.Error("expected error for unknown distribution")
	}
}

func TestBuildBalanced(t *testing.T) {
	g, d, ix, p := setup(t, DistIrregular, 4000)
	l := Build(g, d, ix, p)
	counts := make([]int, l.P)
	for _, r := range l.Particles {
		counts[r]++
	}
	for r, c := range counts {
		if c < 4000/8-1 || c > 4000/8+1 {
			t.Errorf("rank %d holds %d particles", r, c)
		}
	}
	q := Measure(l, g, d, p)
	if q.ParticleImbalance > 1.01 {
		t.Errorf("imbalance %g", q.ParticleImbalance)
	}
}

func TestHilbertBeatsSnakeIn3D(t *testing.T) {
	// The n-dimensional claim: Hilbert-keyed 3-D chunks touch fewer
	// off-processor grid points than snake-keyed ones.
	g, dh, hil, p := setup(t, DistUniform, 8000)
	ds, err := mesh3.NewDistOrdered(g, 8, sfc.SchemeSnake)
	if err != nil {
		t.Fatal(err)
	}
	snk := sfc.MustNew3(sfc.SchemeSnake, 16, 16, 16)
	qh := Measure(Build(g, dh, hil, p), g, dh, p)
	qs := Measure(Build(g, ds, snk, p), g, ds, p)
	if qh.TotalGhostPoints >= qs.TotalGhostPoints {
		t.Errorf("3-d hilbert ghosts %d should beat snake %d", qh.TotalGhostPoints, qs.TotalGhostPoints)
	}
}

func TestUniformAlignedMostlyLocal(t *testing.T) {
	g, d, ix, p := setup(t, DistUniform, 8000)
	q := Measure(Build(g, d, ix, p), g, d, p)
	if q.NonLocalFraction > 0.35 {
		t.Errorf("aligned uniform 3-d partition non-local fraction %g", q.NonLocalFraction)
	}
}

func TestIrregularGhostsExceedUniform(t *testing.T) {
	// Needs enough ranks that non-adjacent pairs exist on the processor
	// grid (a 2×2×2 torus is fully adjacent): use 64 ranks = 4×4×4.
	g, _, ix, pu := setup(t, DistUniform, 8000)
	_, _, _, pi := setup(t, DistIrregular, 8000)
	d, err := mesh3.NewDistOrdered(g, 64, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	qu := Measure(Build(g, d, ix, pu), g, d, pu)
	qi := Measure(Build(g, d, ix, pi), g, d, pi)
	// A concentrated ball occupies fewer cells, so its chunks share more
	// cell faces with foreign blocks relative to their size; the paper's
	// observation is that irregularity raises communication. Compare
	// non-local fraction.
	if qi.NonLocalFraction <= qu.NonLocalFraction {
		t.Errorf("irregular non-local %g should exceed uniform %g", qi.NonLocalFraction, qu.NonLocalFraction)
	}
}

func TestMesh3DistFactorisation(t *testing.T) {
	d, err := mesh3.NewDist(mesh3.NewGrid(16, 16, 16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px != 2 || d.Py != 2 || d.Pz != 2 {
		t.Errorf("got %dx%dx%d, want 2x2x2", d.Px, d.Py, d.Pz)
	}
	if _, err := mesh3.NewDist(mesh3.NewGrid(2, 2, 2), 100); err == nil {
		t.Error("expected no-factorisation error")
	}
}

func TestMesh3OwnershipPartition(t *testing.T) {
	g := mesh3.NewGrid(8, 6, 4)
	d, err := mesh3.NewDistOrdered(g, 4, sfc.SchemeHilbert)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, g.NumPoints())
	for r := 0; r < 4; r++ {
		i0, i1, j0, j1, k0, k1 := d.Bounds(r)
		for k := k0; k < k1; k++ {
			for j := j0; j < j1; j++ {
				for i := i0; i < i1; i++ {
					owned[g.PointIndex(i, j, k)]++
					if d.OwnerOfPoint(i, j, k) != r {
						t.Fatalf("owner mismatch at (%d,%d,%d)", i, j, k)
					}
				}
			}
		}
	}
	for id, c := range owned {
		if c != 1 {
			t.Fatalf("point %d owned %d times", id, c)
		}
	}
}

func TestMesh3PointIndexRoundTrip(t *testing.T) {
	g := mesh3.NewGrid(5, 7, 3)
	for k := 0; k < 3; k++ {
		for j := 0; j < 7; j++ {
			for i := 0; i < 5; i++ {
				ri, rj, rk := g.PointCoords(g.PointIndex(i, j, k))
				if ri != i || rj != j || rk != k {
					t.Fatalf("round trip (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	if g.PointIndex(-1, 0, 0) != g.PointIndex(4, 0, 0) {
		t.Error("x wrap failed")
	}
	if g.PointIndex(0, 7, 3) != g.PointIndex(0, 0, 0) {
		t.Error("y/z wrap failed")
	}
}

func TestMesh3CellOf(t *testing.T) {
	g := mesh3.NewGrid(4, 4, 4)
	cx, cy, cz := g.CellOf(3.9, -0.5, 4.5)
	if cx != 3 || cy != 3 || cz != 0 {
		t.Errorf("CellOf = (%d,%d,%d)", cx, cy, cz)
	}
}
