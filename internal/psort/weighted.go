// Order-maintaining weighted load balance: the weighted generalisation of
// loadBalanceInto. Instead of equalising particle counts, it cuts the
// globally sorted particle sequence at equal cumulative cost under a
// per-key weight function — the psort half of cost-weighted partitioning.
//
// Weights are quantized to integers on a cross-rank-agreed power-of-two
// scale (mesh.WeightScale), so the prefix sums and cut comparisons every
// rank performs are exact: adjacent ranks can never disagree about the
// owner of a boundary particle, which is what keeps the concatenated
// global order intact. Uniform weights reproduce the equal-count BLOCK
// split cut for cut (mesh.WeightedCuts is the weighted image of
// mesh.BlockRange).

package psort

import (
	"sync"

	"picpar/internal/comm"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/wire"
)

// weighWorkPerParticle is the modelled δ units to evaluate and quantize
// one particle's weight during a weighted balance.
const weighWorkPerParticle = 2

// wbScratch recycles the per-call bookkeeping of weightedBalanceInto.
type wbScratch struct {
	send   [][]float64
	counts []int
	w      []float64 // raw sanitized weights, sorted-local order
	iw     []int64   // quantized weights
}

var wbPool = sync.Pool{New: func() any { return new(wbScratch) }}

func (sc *wbScratch) grow(p, n int) {
	if cap(sc.send) < p {
		sc.send = make([][]float64, p)
		sc.counts = make([]int, p)
	}
	sc.send = sc.send[:p]
	sc.counts = sc.counts[:p]
	for d := 0; d < p; d++ {
		sc.send[d] = nil
		sc.counts[d] = 0
	}
	if cap(sc.w) < n {
		sc.w = make([]float64, n)
		sc.iw = make([]int64, n)
	}
	sc.w = sc.w[:n]
	sc.iw = sc.iw[:n]
}

// WeightedBalance is LoadBalance with per-particle weights wf(key): it
// preserves the global concatenated key order while equalising cumulative
// weight instead of count. A nil wf is exactly LoadBalance.
func WeightedBalance(r comm.Transport, s *particle.Store, wf func(key float64) float64) *particle.Store {
	return weightedBalanceInto(r, s, nil, wf, nil)
}

// weightedBalanceInto is WeightedBalance with loadBalanceInto's reuse and
// exchanger contracts. Degenerate weight states (nil wf, all weights zero
// or unusable) fall back to the equal-count split — every rank sees the
// same allgathered totals, so the fallback is collectively consistent.
func weightedBalanceInto(r comm.Transport, s, reuse *particle.Store, wf func(key float64) float64, ex comm.Exchanger) *particle.Store {
	if wf == nil {
		return loadBalanceInto(r, s, reuse, ex)
	}
	p := r.Size()
	n := s.Len()

	sc := wbPool.Get().(*wbScratch)
	sc.grow(p, n)

	// Local weights and their max; the max allgather fixes the shared
	// quantization scale.
	maxW := 0.0
	for i := 0; i < n; i++ {
		w := wf(s.Key[i])
		if !(w > 0) { // sanitize NaN/Inf/negatives to zero
			w = 0
		}
		sc.w[i] = w
		if w > maxW {
			maxW = w
		}
	}
	r.Compute(n * weighWorkPerParticle)
	head := comm.AllgatherFloat64s(r, []float64{maxW, float64(n)})
	total := 0
	for k := 0; k < p; k++ {
		if head[2*k] > maxW {
			maxW = head[2*k]
		}
		total += int(head[2*k+1])
	}

	scale := mesh.WeightScale(maxW)
	localW := int64(0)
	for i := 0; i < n; i++ {
		sc.iw[i] = mesh.QuantizeWeight(sc.w[i], scale)
		localW += sc.iw[i]
	}
	// Rank-ordered exact sums: int64 weights transported through float64
	// stay exact far beyond any realistic population (< 2^52 total).
	sums := comm.AllgatherFloat64s(r, []float64{float64(localW)})
	totW, before := int64(0), int64(0)
	for k := 0; k < p; k++ {
		v := int64(sums[k])
		totW += v
		if k < r.Rank() {
			before += v
		}
	}

	if p == 1 || total == 0 || totW <= 0 {
		wbPool.Put(sc)
		return loadBalanceInto(r, s, reuse, ex)
	}

	// Walk the local particles in order, advancing through the weighted
	// cuts: owners are monotone, so the local range splits into contiguous
	// runs per destination and the self-run (if any) is a single range.
	cuts := mesh.WeightedCuts(totW, total, p)
	wfn := s.WireFloats()
	send, counts := sc.send, sc.counts
	keepLo, keepHi := 0, 0
	i, prefix := 0, before
	k := mesh.AdvanceCut(cuts, 0, prefix)
	for i < n {
		d := k
		runEnd := i
		for runEnd < n && k == d {
			prefix += sc.iw[runEnd]
			runEnd++
			k = mesh.AdvanceCut(cuts, k, prefix)
		}
		if d == r.Rank() {
			keepLo, keepHi = i, runEnd
		} else {
			send[d] = s.MarshalRange(wire.Get((runEnd-i)*wfn), i, runEnd)
			counts[d] = len(send[d])
			r.Compute((runEnd - i) * packWorkPerParticle)
		}
		i = runEnd
	}
	recv := exchange(r, ex, send, counts)
	wbPool.Put(sc)

	out := reuse
	if out == nil {
		out = s.NewLike(keepHi - keepLo)
	} else {
		out.Truncate(0)
		out.Charge, out.Mass = s.Charge, s.Mass
	}
	for src := 0; src < p; src++ {
		if src == r.Rank() {
			for j := keepLo; j < keepHi; j++ {
				out.AppendFrom(s, j)
			}
			continue
		}
		if len(recv[src]) == 0 {
			continue
		}
		if err := out.AppendWire(recv[src]); err != nil {
			panic(err)
		}
		r.Compute(len(recv[src]) / wfn * packWorkPerParticle)
		wire.Put(recv[src])
	}
	return out
}
