// Radix replacement for the comparison sorts on the particle hot path.
// Ordering is exactly the (Key, ID) order of particle.Store's Less — ids
// are unique, so the sorted order is the same unique sequence sort.Sort
// produced — and only the real (wall-clock) cost changes; every simulated
// δ charge is computed from the same formulas as before.
package psort

import (
	"sort"
	"sync"

	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/radix"
)

// sorter bundles the reusable buffers of one radix store sort: the
// (key-bits, id-bits, index) triples, the radix ping-pong scratch, and the
// permutation-apply destination arrays.
type sorter struct {
	hi, lo []uint64
	idx    []int32
	rs     radix.Scratch
	ps     particle.Scratch
}

// sorterPool recycles sorters across ranks; all ranks of a world live in
// one process, so a handful of sorters serve any number of worlds with
// zero steady-state allocation.
var sorterPool = sync.Pool{New: func() any { return new(sorter) }}

func (so *sorter) grow(n int) {
	if cap(so.hi) < n {
		so.hi = make([]uint64, n)
		so.lo = make([]uint64, n)
		so.idx = make([]int32, n)
	}
	so.hi = so.hi[:n]
	so.lo = so.lo[:n]
	so.idx = so.idx[:n]
}

// smallStoreCutoff is the store size below which sort.Sort's lower setup
// cost wins over building the bit arrays.
const smallStoreCutoff = 32

// radixSortStore sorts s by (Key, ID) — the exact order of sort.Sort(s).
func radixSortStore(s *particle.Store) {
	radixSortStorePool(s, nil)
}

// radixSortStorePool is radixSortStore with the radix passes optionally
// spread over pool's workers. The resulting permutation is identical for
// every pool size (including nil).
func radixSortStorePool(s *particle.Store, pool *par.Pool) {
	n := s.Len()
	if n < smallStoreCutoff {
		sort.Sort(s)
		return
	}
	so := sorterPool.Get().(*sorter)
	so.grow(n)
	for i := 0; i < n; i++ {
		so.hi[i] = radix.Bits64(s.Key[i])
		so.lo[i] = radix.Bits64(s.ID[i])
		so.idx[i] = int32(i)
	}
	so.hi, so.lo, so.idx = radix.SortPairsPar(so.hi, so.lo, so.idx, &so.rs, pool)
	s.ApplyPermutation(so.idx, &so.ps)
	sorterPool.Put(so)
}

// sortIndicesByKeyID sorts idx so that the referenced particles are in
// (Key, ID) order — the per-bucket sort of the incremental redistribution.
// Small lists use an insertion sort on Less; larger ones go through the
// pooled radix sorter.
func sortIndicesByKeyID(s *particle.Store, idx []int) {
	n := len(idx)
	if n < 2 {
		return
	}
	if n < radixIdxCutoff {
		for i := 1; i < n; i++ {
			v := idx[i]
			j := i - 1
			for j >= 0 && s.Less(v, idx[j]) {
				idx[j+1] = idx[j]
				j--
			}
			idx[j+1] = v
		}
		return
	}
	so := sorterPool.Get().(*sorter)
	so.grow(n)
	for k, i := range idx {
		so.hi[k] = radix.Bits64(s.Key[i])
		so.lo[k] = radix.Bits64(s.ID[i])
		so.idx[k] = int32(k)
	}
	so.hi, so.lo, so.idx = radix.SortPairs(so.hi, so.lo, so.idx, &so.rs)
	// Permute idx by the sorted positions, reusing lo as the temporary
	// (it is dead after the sort).
	tmp := so.lo
	for k, p := range so.idx {
		tmp[k] = uint64(idx[p])
	}
	for k := range idx {
		idx[k] = int(tmp[k])
	}
	sorterPool.Put(so)
}

// radixIdxCutoff mirrors smallStoreCutoff for index-list sorts.
const radixIdxCutoff = 48
