package psort

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/particle"
	"picpar/internal/raceflag"
	"picpar/internal/wire"
)

// trickyKey draws keys from the regions where a float-bits radix order
// could diverge from comparison order: signed zeros, denormals on both
// sides, and heavily duplicated small integers (the common SFC-key shape,
// which also exercises the ID tiebreak).
func trickyKey(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return 5e-324 * float64(rng.Intn(4)) // positive denormals (and 0)
	case 3:
		return -5e-324 * float64(rng.Intn(4)) // negative denormals (and -0)
	case 4:
		return -float64(rng.Intn(20))
	default:
		return float64(rng.Intn(20))
	}
}

// TestRadixSortStoreMatchesSortSort is the ordering property behind
// LocalSort's radix swap: ids are unique, so sort.Sort's (Key, ID) order is
// a unique sequence and the radix path must reproduce it bit-for-bit —
// including the placement of −0 keys, which compare equal to +0 and must
// therefore fall back to the ID tiebreak identically.
func TestRadixSortStoreMatchesSortSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 1000, 4096} {
		s := particle.NewStore(n, -1, 1)
		ids := rng.Perm(n) // unique, shuffled
		for i := 0; i < n; i++ {
			s.Append(rng.Float64(), rng.Float64(), rng.NormFloat64(),
				rng.NormFloat64(), rng.NormFloat64(), float64(ids[i]))
			s.Key[i] = trickyKey(rng)
		}
		ref := s.Clone()
		sort.Sort(ref)
		radixSortStore(s)
		for i := 0; i < n; i++ {
			if !sameBits(s.Key[i], ref.Key[i]) || s.ID[i] != ref.ID[i] ||
				s.X[i] != ref.X[i] || s.Y[i] != ref.Y[i] ||
				s.Px[i] != ref.Px[i] || s.Py[i] != ref.Py[i] || s.Pz[i] != ref.Pz[i] {
				t.Fatalf("n=%d pos %d: radix (key=%v id=%v) != sort.Sort (key=%v id=%v)",
					n, i, s.Key[i], s.ID[i], ref.Key[i], ref.ID[i])
			}
		}
	}
}

// sameBits compares float64s including the −0/+0 distinction.
func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestSortIndicesByKeyIDMatchesReference checks the per-bucket index sort
// against a stable comparison reference on both sides of the radix cutoff,
// with duplicated keys so the ID tiebreak decides most positions.
func TestSortIndicesByKeyIDMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := particle.NewStore(8192, -1, 1)
	ids := rng.Perm(8192)
	for i := 0; i < 8192; i++ {
		s.Append(0, 0, 0, 0, 0, float64(ids[i]))
		s.Key[i] = float64(rng.Intn(8)) // long equal-key runs
	}
	for _, m := range []int{0, 1, 2, radixIdxCutoff - 1, radixIdxCutoff, 500, 8000} {
		idx := rng.Perm(8192)[:m]
		want := append([]int(nil), idx...)
		sort.Slice(want, func(a, b int) bool { return s.Less(want[a], want[b]) })
		sortIndicesByKeyID(s, idx)
		for k := range idx {
			if idx[k] != want[k] {
				t.Fatalf("m=%d pos %d: got idx %d want %d", m, k, idx[k], want[k])
			}
		}
	}
}

// TestEqualKeyIDTiebreakWitness pins the tiebreak explicitly: equal keys
// must come out in ascending ID order, whatever the input order was.
func TestEqualKeyIDTiebreakWitness(t *testing.T) {
	n := 1024
	s := particle.NewStore(n, -1, 1)
	for i := 0; i < n; i++ {
		s.Append(0, 0, 0, 0, 0, float64(n-1-i)) // ids descending
		s.Key[i] = float64(i % 2)               // two key classes, interleaved
	}
	radixSortStore(s)
	for i := 1; i < n; i++ {
		if s.Key[i] < s.Key[i-1] {
			t.Fatalf("pos %d: keys out of order", i)
		}
		if s.Key[i] == s.Key[i-1] && s.ID[i] <= s.ID[i-1] {
			t.Fatalf("pos %d: equal keys with non-ascending ids %v, %v",
				i, s.ID[i-1], s.ID[i])
		}
	}
}

// TestRedistributeClassifyPackZeroAlloc is the steady-state allocation
// criterion of the redistribution hot path: after one warm-up, the
// classify + pack inner loop (everything Redistribute does per particle
// before the network exchange) performs zero allocations per run.
func TestRedistributeClassifyPackZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	commtest.Launch(4, machine.Zero(), func(r comm.Transport) {
		// classify and pack are communication-free, so only rank 0 runs.
		if r.Rank() != 0 {
			return
		}
		rng := rand.New(rand.NewSource(17))
		s := makeLocal(rng, 4096, 0, 1000)
		LocalSort(r, s)
		inc := NewIncremental(0)
		inc.Prime(s)
		// Drift a slice of the population off-processor so pack has real
		// marshalling to do.
		for i := 0; i < s.Len(); i += 5 {
			s.Key[i] = 1500 + float64(i%97)
		}
		globalUpper := []float64{inc.upper, 2000, 3000, 4000}

		run := func() {
			inc.classify(r, s, globalUpper)
			send, _ := inc.pack(r, s)
			for _, buf := range send {
				if buf != nil {
					wire.Put(buf) // normally the receiving rank's job
				}
			}
		}
		run() // warm the scratch lists and the wire pool
		if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
			t.Errorf("classify+pack steady state: %v allocs/op, want 0", allocs)
		}
	})
}
