package psort

import (
	"fmt"
	"math"
	"sort"

	"picpar/internal/comm"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/wire"
)

// Incremental is the bucket-based incremental sorting state of one rank
// (the paper's Figure 12). Between redistributions it remembers the bucket
// boundaries of the last sorted order; the next redistribution classifies
// every particle against those remembered bounds — most particles have
// moved little and fall into the same bucket, making reclassification far
// cheaper than a full sort.
//
// The struct additionally owns all scratch of the redistribution hot path
// (classification lists, marshal buffers, the intermediate stores and the
// two output slots), so steady-state redistributions allocate nothing in
// the classify/marshal inner loop and recycle stores instead of creating
// fresh ones.
type Incremental struct {
	// L is the number of buckets the local array is divided into.
	L int
	// localBound[b] is the smallest key of bucket b at the last
	// redistribution (length L; localBound[0] is the rank's lower key).
	localBound []float64
	// upper is the largest key held at the last redistribution.
	upper float64

	// Classification scratch: per-bucket and per-destination index lists,
	// reused (truncated, never freed) across redistributions.
	bucketOf [][]int
	sendIdx  [][]int
	// Marshal scratch: per-destination buffer headers and element counts.
	send   [][]float64
	counts []int
	// Intermediate stores, purely internal to Redistribute.
	kept, recvS, merged *particle.Store
	// Output slots: Redistribute alternates between them so the store it
	// returned last time (usually this call's input) is never clobbered.
	outA, outB *particle.Store
	// pool, when non-nil, parallelises the received-run radix sort over the
	// rank's shared-memory workers. Results are bit-identical either way.
	pool *par.Pool
	// ex, when non-nil, routes the all-to-many exchanges through a
	// topology-native protocol (systolic ring, neighbor-only) instead of
	// the classic pairwise schedule. The redistributed population is
	// identical either way.
	ex comm.Exchanger
}

// DefaultBuckets is a reasonable bucket count per rank: fine enough that a
// same-bucket hit pins a particle to a small sorted run, coarse enough that
// the boundary table stays tiny.
const DefaultBuckets = 16

// NewIncremental creates incremental-sort state with L buckets (0 means
// DefaultBuckets). Call Prime after the initial distribution.
func NewIncremental(l int) *Incremental {
	if l <= 0 {
		l = DefaultBuckets
	}
	return &Incremental{L: l, localBound: make([]float64, l), bucketOf: make([][]int, l)}
}

// SetPool attaches a shared-memory worker pool used to parallelise the
// local radix sorts inside Redistribute (nil detaches it). Safe to call any
// time between redistributions; the sorted output is identical either way.
func (inc *Incremental) SetPool(p *par.Pool) { inc.pool = p }

// SetExchanger attaches an all-to-many exchange protocol used by
// Redistribute (nil detaches it, reverting to the classic pairwise
// exchange). Safe to call any time between redistributions; the
// redistributed population is identical for every protocol.
func (inc *Incremental) SetExchanger(ex comm.Exchanger) { inc.ex = ex }

// Prime records bucket boundaries from a locally sorted store, preparing
// for the next Redistribute call (Figure 12, lines 4–6 of
// Particle_Redistribution).
func (inc *Incremental) Prime(s *particle.Store) {
	n := s.Len()
	for b := 0; b < inc.L; b++ {
		if n == 0 {
			inc.localBound[b] = math.Inf(1)
			continue
		}
		i := b * n / inc.L
		inc.localBound[b] = s.Key[i]
	}
	if n == 0 {
		inc.upper = math.Inf(-1)
	} else {
		inc.upper = s.Key[n-1]
	}
}

// Bounds is a snapshot of the remembered bucket state: the boundary table
// plus the upper key. A caller that may discard a redistribution (e.g. the
// engine degrading gracefully after a failed exchange) snapshots before the
// attempt and restores afterwards, since Redistribute reprimes the bounds
// from its output before the caller can decide to keep it.
type Bounds struct {
	localBound []float64
	upper      float64
}

// SnapshotBounds captures the current bucket boundaries and upper key.
func (inc *Incremental) SnapshotBounds() Bounds {
	return Bounds{localBound: append([]float64(nil), inc.localBound...), upper: inc.upper}
}

// RestoreBounds reinstates a snapshot taken by SnapshotBounds, as if the
// Redistribute calls since then had not happened. The particle store the
// caller kept must be the one the snapshot was taken against (Redistribute
// never modifies its input store, so rolling back is pairing the old store
// with its old bounds).
func (inc *Incremental) RestoreBounds(b Bounds) {
	copy(inc.localBound, b.localBound)
	inc.upper = b.upper
}

// ExportBounds appends the remembered bucket boundaries followed by the
// upper key (L+1 values) to dst and returns it — the checkpoint form of
// the incremental-sort state.
func (inc *Incremental) ExportBounds(dst []float64) []float64 {
	dst = append(dst, inc.localBound...)
	return append(dst, inc.upper)
}

// ImportBounds reinstates boundaries previously captured by ExportBounds,
// replacing the current bucket state wholesale.
func (inc *Incremental) ImportBounds(vals []float64) error {
	if len(vals) != inc.L+1 {
		return fmt.Errorf("psort: bounds import of %d values into %d buckets (want %d)",
			len(vals), inc.L, inc.L+1)
	}
	copy(inc.localBound, vals[:inc.L])
	inc.upper = vals[inc.L]
	return nil
}

// Stats reports what the classification pass observed, for ablation and
// instrumentation.
type Stats struct {
	SameBucket  int // particles still in their previous bucket
	OtherBucket int // particles moved to a different local bucket
	OffProc     int // particles that left the rank
}

// Redistribute performs one bucket-based incremental redistribution and
// returns the rank's new sorted, balanced store plus classification stats.
// Requires keys to be already up to date (Hilbert_Base_Indexing done) and
// Prime to have been called on the previous order.
//
// The returned store draws on buffers owned by this Incremental: it stays
// valid until the second following Redistribute call (callers that only
// keep the latest store — the usual pattern — are unaffected). The input
// store is never modified.
func (inc *Incremental) Redistribute(r comm.Transport, s *particle.Store) (*particle.Store, Stats) {
	return inc.redistribute(r, s, nil)
}

// RedistributeWeighted is Redistribute with the final order-maintaining
// balance cutting at equal cumulative weight under wf (see
// WeightedBalance) instead of equal counts. A nil wf is exactly
// Redistribute. The classification and exchange machinery — and therefore
// the snapshot/rollback contract — is shared unchanged.
func (inc *Incremental) RedistributeWeighted(r comm.Transport, s *particle.Store, wf func(key float64) float64) (*particle.Store, Stats) {
	return inc.redistribute(r, s, wf)
}

func (inc *Incremental) redistribute(r comm.Transport, s *particle.Store, wf func(key float64) float64) (*particle.Store, Stats) {
	p := r.Size()
	n := s.Len()

	// Line 1: global concatenation of every rank's upper key bound.
	globalUpper := comm.AllgatherFloat64s(r, []float64{inc.upper})

	// Lines 3–14: classify, then marshal the off-processor particles.
	st := inc.classify(r, s, globalUpper)
	send, counts := inc.pack(r, s)

	// Lines 15–20: exchange the traffic table, then all-to-many.
	recv := exchange(r, inc.ex, send, counts)

	// Line 21: collect and sort the received particles.
	wfl := s.WireFloats()
	recvStore := resetStore(&inc.recvS, 0, s)
	for src := 0; src < p; src++ {
		if src != r.Rank() && len(recv[src]) > 0 {
			if err := recvStore.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]) / wfl * packWorkPerParticle)
			wire.Put(recv[src])
		}
	}
	LocalSortPar(r, recvStore, inc.pool)

	// Lines 22–23: sort each bucket locally. Buckets are key-disjoint and
	// ordered, so concatenating them yields a sorted run.
	kept := resetStore(&inc.kept, n, s)
	for b := 0; b < inc.L; b++ {
		idx := inc.bucketOf[b]
		sortIndicesByKeyID(s, idx)
		if len(idx) > 1 {
			r.Compute(len(idx) * ilog2(len(idx)) * compareWork)
		}
		for _, i := range idx {
			kept.AppendFrom(s, i)
		}
	}

	// Line 24: merge the kept run with the received run.
	merged := mergeSortedInto(r, kept, recvStore, resetStore(&inc.merged, kept.Len()+recvStore.Len(), s))

	// Order-maintaining (possibly weighted) balance into the output slot
	// that does not alias the caller's store, then remember the new
	// boundaries.
	out := weightedBalanceInto(r, merged, inc.outSlot(s), wf, inc.ex)
	inc.Prime(out)
	return out, st
}

// classify sorts every particle of s into its bucket or destination-rank
// list (Figure 12 lines 3–14), filling inc.bucketOf and inc.sendIdx from
// reused scratch. It charges the modelled classification δ but performs no
// communication, so its steady-state allocation count is exactly zero.
func (inc *Incremental) classify(r comm.Transport, s *particle.Store, globalUpper []float64) Stats {
	n := s.Len()
	var st Stats
	for b := range inc.bucketOf {
		inc.bucketOf[b] = inc.bucketOf[b][:0]
	}
	if cap(inc.sendIdx) < r.Size() {
		inc.sendIdx = make([][]int, r.Size())
	}
	inc.sendIdx = inc.sendIdx[:r.Size()]
	for d := range inc.sendIdx {
		inc.sendIdx[d] = inc.sendIdx[d][:0]
	}
	for i := 0; i < n; i++ {
		key := s.Key[i]
		// The particle's previous bucket is its position's bucket.
		prevB := i * inc.L / n
		if inBucket(inc.localBound, inc.upper, prevB, key) {
			inc.bucketOf[prevB] = append(inc.bucketOf[prevB], i)
			st.SameBucket++
			r.Compute(classifyWorkSameBucket)
			continue
		}
		if key >= inc.localBound[0] && key <= inc.upper {
			b := inc.bucketFor(key)
			inc.bucketOf[b] = append(inc.bucketOf[b], i)
			st.OtherBucket++
			r.Compute(classifyWorkLocal)
			continue
		}
		dest := searchOwner(globalUpper, key)
		if dest == r.Rank() {
			// Keys outside the remembered bounds can still map to this
			// rank (e.g. below the old lower bound but above the previous
			// rank's upper, or above every recorded bound on the last
			// rank); clamp into the nearest bucket.
			inc.bucketOf[inc.bucketFor(key)] = append(inc.bucketOf[inc.bucketFor(key)], i)
			st.OtherBucket++
			r.Compute(classifyWorkLocal)
			continue
		}
		inc.sendIdx[dest] = append(inc.sendIdx[dest], i)
		st.OffProc++
		r.Compute(classifyWorkRemote)
	}
	return st
}

// pack marshals the off-processor particles found by classify into pooled
// wire buffers, one per destination with traffic (Figure 12 lines 15–16).
// The returned buffers transfer ownership with the messages; the receiving
// ranks return them to the wire pool. With a warm pool, pack allocates
// nothing.
func (inc *Incremental) pack(r comm.Transport, s *particle.Store) ([][]float64, []int) {
	p := r.Size()
	wf := s.WireFloats()
	if cap(inc.send) < p {
		inc.send = make([][]float64, p)
		inc.counts = make([]int, p)
	}
	inc.send = inc.send[:p]
	inc.counts = inc.counts[:p]
	for d := 0; d < p; d++ {
		inc.send[d] = nil
		inc.counts[d] = 0
		if len(inc.sendIdx[d]) > 0 {
			inc.send[d] = s.MarshalIndices(wire.Get(len(inc.sendIdx[d])*wf), inc.sendIdx[d])
			inc.counts[d] = len(inc.send[d])
			r.Compute(len(inc.sendIdx[d]) * packWorkPerParticle)
		}
	}
	return inc.send, inc.counts
}

// resetStore empties (or creates) an internal scratch store with the given
// capacity hint and the species constants of ref.
func resetStore(slot **particle.Store, capHint int, ref *particle.Store) *particle.Store {
	if *slot == nil {
		*slot = ref.NewLike(capHint)
		return *slot
	}
	s := *slot
	s.Truncate(0)
	s.Charge, s.Mass = ref.Charge, ref.Mass
	return s
}

// outSlot returns whichever of the two output stores does not alias s, so
// the store handed to the caller last time survives this call.
func (inc *Incremental) outSlot(s *particle.Store) *particle.Store {
	if inc.outA == nil {
		inc.outA = s.NewLike(0)
	}
	if inc.outB == nil {
		inc.outB = s.NewLike(0)
	}
	if s == inc.outA {
		return inc.outB
	}
	return inc.outA
}

// bucketFor returns the bucket whose remembered range admits key, clamping
// keys outside the recorded bounds into the first or last bucket.
func (inc *Incremental) bucketFor(key float64) int {
	i := sort.SearchFloat64s(inc.localBound, key)
	if i == inc.L {
		return inc.L - 1
	}
	if inc.localBound[i] == key || i == 0 {
		return i
	}
	return i - 1
}

// inBucket reports whether key belongs to bucket b under the remembered
// bounds: localBound[b] ≤ key < next bound (or ≤ upper for the last).
func inBucket(bounds []float64, upper float64, b int, key float64) bool {
	if key < bounds[b] {
		return false
	}
	if b+1 < len(bounds) {
		return key < bounds[b+1]
	}
	return key <= upper
}

// searchOwner returns the lowest rank whose recorded upper bound admits
// key; keys above all bounds belong to the last rank.
func searchOwner(globalUpper []float64, key float64) int {
	d := sort.SearchFloat64s(globalUpper, key)
	if d >= len(globalUpper) {
		d = len(globalUpper) - 1
	}
	return d
}

// mergeSorted merges two locally sorted stores into a new sorted store.
func mergeSorted(r comm.Transport, a, b *particle.Store) *particle.Store {
	return mergeSortedInto(r, a, b, a.NewLike(a.Len()+b.Len()))
}

// mergeSortedInto merges a and b (each locally sorted) into out, which must
// be empty and alias neither input.
func mergeSortedInto(r comm.Transport, a, b, out *particle.Store) *particle.Store {
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if b.Key[j] < a.Key[i] {
			out.AppendFrom(b, j)
			j++
		} else {
			out.AppendFrom(a, i)
			i++
		}
	}
	for ; i < a.Len(); i++ {
		out.AppendFrom(a, i)
	}
	for ; j < b.Len(); j++ {
		out.AppendFrom(b, j)
	}
	r.Compute((a.Len() + b.Len()) * compareWork)
	return out
}
