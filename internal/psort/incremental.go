package psort

import (
	"math"
	"sort"

	"picpar/internal/comm"
	"picpar/internal/particle"
)

// Incremental is the bucket-based incremental sorting state of one rank
// (the paper's Figure 12). Between redistributions it remembers the bucket
// boundaries of the last sorted order; the next redistribution classifies
// every particle against those remembered bounds — most particles have
// moved little and fall into the same bucket, making reclassification far
// cheaper than a full sort.
type Incremental struct {
	// L is the number of buckets the local array is divided into.
	L int
	// localBound[b] is the smallest key of bucket b at the last
	// redistribution (length L; localBound[0] is the rank's lower key).
	localBound []float64
	// upper is the largest key held at the last redistribution.
	upper float64
}

// DefaultBuckets is a reasonable bucket count per rank: fine enough that a
// same-bucket hit pins a particle to a small sorted run, coarse enough that
// the boundary table stays tiny.
const DefaultBuckets = 16

// NewIncremental creates incremental-sort state with L buckets (0 means
// DefaultBuckets). Call Prime after the initial distribution.
func NewIncremental(l int) *Incremental {
	if l <= 0 {
		l = DefaultBuckets
	}
	return &Incremental{L: l, localBound: make([]float64, l)}
}

// Prime records bucket boundaries from a locally sorted store, preparing
// for the next Redistribute call (Figure 12, lines 4–6 of
// Particle_Redistribution).
func (inc *Incremental) Prime(s *particle.Store) {
	n := s.Len()
	for b := 0; b < inc.L; b++ {
		if n == 0 {
			inc.localBound[b] = math.Inf(1)
			continue
		}
		i := b * n / inc.L
		inc.localBound[b] = s.Key[i]
	}
	if n == 0 {
		inc.upper = math.Inf(-1)
	} else {
		inc.upper = s.Key[n-1]
	}
}

// Stats reports what the classification pass observed, for ablation and
// instrumentation.
type Stats struct {
	SameBucket  int // particles still in their previous bucket
	OtherBucket int // particles moved to a different local bucket
	OffProc     int // particles that left the rank
}

// Redistribute performs one bucket-based incremental redistribution and
// returns the rank's new sorted, balanced store plus classification stats.
// Requires keys to be already up to date (Hilbert_Base_Indexing done) and
// Prime to have been called on the previous order.
func (inc *Incremental) Redistribute(r *comm.Rank, s *particle.Store) (*particle.Store, Stats) {
	p := r.P
	n := s.Len()
	var st Stats

	// Line 1: global concatenation of every rank's upper key bound.
	globalUpper := r.AllgatherFloat64s([]float64{inc.upper})

	// Classify each particle: same bucket / other local bucket /
	// off-processor (Figure 12 lines 3–14).
	bucketOf := make([][]int, inc.L)
	sendIdx := make([][]int, p)
	for i := 0; i < n; i++ {
		key := s.Key[i]
		// The particle's previous bucket is its position's bucket.
		prevB := i * inc.L / n
		if inBucket(inc.localBound, inc.upper, prevB, key) {
			bucketOf[prevB] = append(bucketOf[prevB], i)
			st.SameBucket++
			r.Compute(classifyWorkSameBucket)
			continue
		}
		if key >= inc.localBound[0] && key <= inc.upper {
			b := inc.bucketFor(key)
			bucketOf[b] = append(bucketOf[b], i)
			st.OtherBucket++
			r.Compute(classifyWorkLocal)
			continue
		}
		dest := searchOwner(globalUpper, key)
		if dest == r.ID {
			// Keys outside the remembered bounds can still map to this
			// rank (e.g. below the old lower bound but above the previous
			// rank's upper, or above every recorded bound on the last
			// rank); clamp into the nearest bucket.
			bucketOf[inc.bucketFor(key)] = append(bucketOf[inc.bucketFor(key)], i)
			st.OtherBucket++
			r.Compute(classifyWorkLocal)
			continue
		}
		sendIdx[dest] = append(sendIdx[dest], i)
		st.OffProc++
		r.Compute(classifyWorkRemote)
	}

	// Lines 15–20: exchange the traffic table, then all-to-many.
	counts := make([]int, p)
	send := make([][]float64, p)
	for d := 0; d < p; d++ {
		if len(sendIdx[d]) > 0 {
			send[d] = s.MarshalIndices(make([]float64, 0, len(sendIdx[d])*particle.WireFloats), sendIdx[d])
			counts[d] = len(send[d])
			r.Compute(len(sendIdx[d]) * packWorkPerParticle)
		}
	}
	recvCounts := r.ExchangeCounts(counts)
	recv := comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)

	// Line 21: collect and sort the received particles.
	recvStore := particle.NewStore(0, s.Charge, s.Mass)
	for src := 0; src < p; src++ {
		if src != r.ID && len(recv[src]) > 0 {
			if err := recvStore.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]) / particle.WireFloats * packWorkPerParticle)
		}
	}
	LocalSort(r, recvStore)

	// Lines 22–23: sort each bucket locally. Buckets are key-disjoint and
	// ordered, so concatenating them yields a sorted run.
	kept := particle.NewStore(n, s.Charge, s.Mass)
	for b := 0; b < inc.L; b++ {
		idx := bucketOf[b]
		sort.Slice(idx, func(a, c int) bool { return s.Less(idx[a], idx[c]) })
		if len(idx) > 1 {
			r.Compute(len(idx) * ilog2(len(idx)) * compareWork)
		}
		for _, i := range idx {
			kept.AppendFrom(s, i)
		}
	}

	// Line 24: merge the kept run with the received run.
	merged := mergeSorted(r, kept, recvStore)

	// Order-maintaining load balance, then remember the new boundaries.
	out := LoadBalance(r, merged)
	inc.Prime(out)
	return out, st
}

// bucketFor returns the bucket whose remembered range admits key, clamping
// keys outside the recorded bounds into the first or last bucket.
func (inc *Incremental) bucketFor(key float64) int {
	i := sort.SearchFloat64s(inc.localBound, key)
	if i == inc.L {
		return inc.L - 1
	}
	if inc.localBound[i] == key || i == 0 {
		return i
	}
	return i - 1
}

// inBucket reports whether key belongs to bucket b under the remembered
// bounds: localBound[b] ≤ key < next bound (or ≤ upper for the last).
func inBucket(bounds []float64, upper float64, b int, key float64) bool {
	if key < bounds[b] {
		return false
	}
	if b+1 < len(bounds) {
		return key < bounds[b+1]
	}
	return key <= upper
}

// searchOwner returns the lowest rank whose recorded upper bound admits
// key; keys above all bounds belong to the last rank.
func searchOwner(globalUpper []float64, key float64) int {
	d := sort.SearchFloat64s(globalUpper, key)
	if d >= len(globalUpper) {
		d = len(globalUpper) - 1
	}
	return d
}

// mergeSorted merges two locally sorted stores into a new sorted store.
func mergeSorted(r *comm.Rank, a, b *particle.Store) *particle.Store {
	out := particle.NewStore(a.Len()+b.Len(), a.Charge, a.Mass)
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if b.Key[j] < a.Key[i] {
			out.AppendFrom(b, j)
			j++
		} else {
			out.AppendFrom(a, i)
			i++
		}
	}
	for ; i < a.Len(); i++ {
		out.AppendFrom(a, i)
	}
	for ; j < b.Len(); j++ {
		out.AppendFrom(b, j)
	}
	r.Compute((a.Len() + b.Len()) * compareWork)
	return out
}
