package psort

import (
	"math"
	"math/rand"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/particle"
)

// storesEqual compares two stores field by field.
func storesEqual(a, b *particle.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.ID[i] != b.ID[i] || a.Key[i] != b.Key[i] || a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}

// TestWeightedBalanceUniformEqualsLoadBalance: with uniform (or nil)
// weights the weighted balance must hand every rank exactly the store
// LoadBalance would — the equal-count split is the weight-1 special case
// all the way through the exchange machinery.
func TestWeightedBalanceUniformEqualsLoadBalance(t *testing.T) {
	const p = 4
	counts := []int{37, 1, 0, 62}
	build := func(rank int) *particle.Store {
		s := particle.NewStore(0, -1, 1)
		base := 0
		for k := 0; k < rank; k++ {
			base += counts[k]
		}
		for i := 0; i < counts[rank]; i++ {
			s.Append(0, 0, 0, 0, 0, float64(base+i))
			s.Key[s.Len()-1] = float64((base + i) / 3) // duplicated, sorted keys
		}
		return s
	}
	want := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		want.put(r.Rank(), LoadBalance(r, build(r.Rank())))
	})
	for _, w := range []float64{1, 0.125, 3.7} {
		w := w
		got := newGather()
		commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			got.put(r.Rank(), WeightedBalance(r, build(r.Rank()), func(float64) float64 { return w }))
		})
		for rank := 0; rank < p; rank++ {
			if !storesEqual(got.stores[rank], want.stores[rank]) {
				t.Fatalf("w=%g rank %d: weighted balance differs from LoadBalance (%d vs %d particles)",
					w, rank, got.stores[rank].Len(), want.stores[rank].Len())
			}
		}
	}
}

// TestWeightedBalanceSkewedWeights: heavy keys concentrate on few ranks
// under equal-count; the weighted balance must equalise cumulative weight
// while preserving the global order and the particle multiset.
func TestWeightedBalanceSkewedWeights(t *testing.T) {
	const p, total = 4, 800
	wf := func(key float64) float64 {
		if key < 20 {
			return 30 // hot head of the key space
		}
		return 1
	}
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		// Globally sorted start: rank k holds keys [k·50, (k+1)·50).
		s := particle.NewStore(0, -1, 1)
		for i := 0; i < total/p; i++ {
			gidx := r.Rank()*(total/p) + i
			s.Append(0, 0, 0, 0, 0, float64(gidx))
			s.Key[s.Len()-1] = math.Floor(float64(gidx) / float64(total/200))
		}
		g.put(r.Rank(), WeightedBalance(r, s, wf))
	})

	count := 0
	prevMax := math.Inf(-1)
	loads := make([]float64, p)
	seen := map[float64]bool{}
	for r := 0; r < p; r++ {
		s := g.stores[r]
		if !IsLocallySorted(s) {
			t.Errorf("rank %d not locally sorted", r)
		}
		if s.Len() > 0 {
			if s.Key[0] < prevMax {
				t.Errorf("rank %d first key %g < previous max %g", r, s.Key[0], prevMax)
			}
			prevMax = s.Key[s.Len()-1]
		}
		for i := 0; i < s.Len(); i++ {
			loads[r] += wf(s.Key[i])
			if seen[s.ID[i]] {
				t.Errorf("duplicate id %v", s.ID[i])
			}
			seen[s.ID[i]] = true
		}
		count += s.Len()
	}
	if count != total {
		t.Fatalf("total %d, want %d", count, total)
	}
	totW := 0.0
	maxL := 0.0
	for _, l := range loads {
		totW += l
		if l > maxL {
			maxL = l
		}
	}
	if imb := maxL / (totW / p); imb > 1.35 {
		t.Errorf("weighted balance left weight imbalance %g (loads %v)", imb, loads)
	}
}

// TestRedistributeWeightedNilIsRedistribute: the nil-wf entry point runs
// the identical code path as Redistribute — same stores, same charges.
func TestRedistributeWeightedNilIsRedistribute(t *testing.T) {
	const p, perRank = 4, 100
	run := func(weighted bool) (*gather, []machine.Stats) {
		g := newGather()
		ws := commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			rng := rand.New(rand.NewSource(int64(7 + r.Rank())))
			s := makeLocal(rng, perRank, r.Rank()*perRank, 500)
			s = SampleSort(r, s)
			inc := NewIncremental(0)
			inc.Prime(s)
			// Perturb keys slightly, as motion does, keeping local order.
			for i := range s.Key {
				s.Key[i] += math.Floor(rng.Float64() * 3)
			}
			LocalSort(r, s)
			var out *particle.Store
			if weighted {
				out, _ = inc.RedistributeWeighted(r, s, nil)
			} else {
				out, _ = inc.Redistribute(r, s)
			}
			g.put(r.Rank(), out)
		})
		stats := make([]machine.Stats, p)
		for k := 0; k < p; k++ {
			stats[k] = ws.Ranks[k]
		}
		return g, stats
	}
	gw, sw := run(true)
	gp, sp := run(false)
	for rank := 0; rank < p; rank++ {
		if !storesEqual(gw.stores[rank], gp.stores[rank]) {
			t.Fatalf("rank %d: nil-wf weighted redistribute differs from Redistribute", rank)
		}
		if sw[rank].Total() != sp[rank].Total() {
			t.Fatalf("rank %d: charges differ: %+v vs %+v", rank, sw[rank].Total(), sp[rank].Total())
		}
	}
}

// TestRedistributeWeightedBalancesCost: a full incremental redistribution
// under a skewed weight function leaves per-rank cumulative weight near
// the mean while keeping every sortedness invariant.
func TestRedistributeWeightedBalancesCost(t *testing.T) {
	const p, perRank = 4, 200
	wf := func(key float64) float64 {
		if key < 50 {
			return 20
		}
		return 1
	}
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(int64(11 + r.Rank())))
		s := makeLocal(rng, perRank, r.Rank()*perRank, 400)
		s = SampleSort(r, s)
		inc := NewIncremental(0)
		inc.Prime(s)
		out, _ := inc.RedistributeWeighted(r, s, wf)
		g.put(r.Rank(), out)
	})
	count := 0
	prevMax := math.Inf(-1)
	loads := make([]float64, p)
	for r := 0; r < p; r++ {
		s := g.stores[r]
		if !IsLocallySorted(s) {
			t.Errorf("rank %d not locally sorted", r)
		}
		if s.Len() > 0 {
			if s.Key[0] < prevMax {
				t.Errorf("rank %d breaks global order", r)
			}
			prevMax = s.Key[s.Len()-1]
		}
		for i := 0; i < s.Len(); i++ {
			loads[r] += wf(s.Key[i])
		}
		count += s.Len()
	}
	if count != p*perRank {
		t.Fatalf("total %d, want %d", count, p*perRank)
	}
	totW, maxL := 0.0, 0.0
	for _, l := range loads {
		totW += l
		if l > maxL {
			maxL = l
		}
	}
	if imb := maxL / (totW / p); imb > 1.35 {
		t.Errorf("weighted redistribute left weight imbalance %g (loads %v)", imb, loads)
	}
}

// TestWeightedBalanceDegenerateWeights: all-zero and non-finite weights
// fall back to the equal-count split instead of collapsing everything
// onto one rank.
func TestWeightedBalanceDegenerateWeights(t *testing.T) {
	const p = 3
	for _, wf := range []func(float64) float64{
		func(float64) float64 { return 0 },
		func(float64) float64 { return math.NaN() },
		func(float64) float64 { return -1 },
	} {
		wf := wf
		g := newGather()
		commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			s := particle.NewStore(0, -1, 1)
			for i := 0; i < 30; i++ {
				gidx := r.Rank()*30 + i
				s.Append(0, 0, 0, 0, 0, float64(gidx))
				s.Key[s.Len()-1] = float64(gidx)
			}
			g.put(r.Rank(), WeightedBalance(r, s, wf))
		})
		for r := 0; r < p; r++ {
			if g.stores[r].Len() != 30 {
				t.Fatalf("degenerate weights: rank %d holds %d, want 30", r, g.stores[r].Len())
			}
		}
	}
}
