package psort

import (
	"math"
	"math/rand"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/particle"
)

// Adversarial key patterns: the sorting machinery must stay correct when
// keys collide massively, arrive pre-sorted, reversed, or concentrated on
// one rank.

func runAdversarial(t *testing.T, p int, makeKeys func(rank, i, perRank int) float64) {
	t.Helper()
	const perRank = 64
	total := p * perRank
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		s := particle.NewStore(perRank, -1, 1)
		for i := 0; i < perRank; i++ {
			s.Append(0, 0, 0, 0, 0, float64(r.Rank()*perRank+i))
			s.Key[s.Len()-1] = makeKeys(r.Rank(), i, perRank)
		}
		s = SampleSort(r, s)
		inc := NewIncremental(8)
		inc.Prime(s)
		// One more redistribution after a deterministic perturbation.
		for i := 0; i < s.Len(); i++ {
			s.Key[i] = math.Max(0, s.Key[i]+float64(i%5-2))
		}
		s, _ = inc.Redistribute(r, s)
		g.put(r.Rank(), s)
	})
	wantIDs := map[float64]bool{}
	for i := 0; i < total; i++ {
		wantIDs[float64(i)] = true
	}
	g.checkGlobal(t, p, total, wantIDs)
}

func TestSortAllEqualKeys(t *testing.T) {
	runAdversarial(t, 4, func(rank, i, perRank int) float64 { return 42 })
}

func TestSortAlreadySorted(t *testing.T) {
	runAdversarial(t, 4, func(rank, i, perRank int) float64 {
		return float64(rank*perRank + i)
	})
}

func TestSortReversed(t *testing.T) {
	runAdversarial(t, 4, func(rank, i, perRank int) float64 {
		return float64(10000 - rank*perRank - i)
	})
}

func TestSortTwoValues(t *testing.T) {
	runAdversarial(t, 8, func(rank, i, perRank int) float64 {
		if (rank+i)%2 == 0 {
			return 1
		}
		return 2
	})
}

func TestSortOneHotRank(t *testing.T) {
	// All large keys start on rank 0.
	runAdversarial(t, 4, func(rank, i, perRank int) float64 {
		if rank == 0 {
			return float64(100000 + i)
		}
		return float64(rank*perRank + i)
	})
}

func TestIncrementalConvergesUnderRepeatedShuffles(t *testing.T) {
	// Redistribute after full random key reshuffles: the worst case for
	// the incremental path (everything off-processor) must still produce
	// a correct global order every time.
	const p = 4
	const perRank = 80
	total := p * perRank
	for round := 0; round < 3; round++ {
		g := newGather()
		commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			rng := rand.New(rand.NewSource(int64(round*100 + r.Rank())))
			s := makeLocal(rng, perRank, r.Rank()*perRank, 1000)
			s = SampleSort(r, s)
			inc := NewIncremental(8)
			inc.Prime(s)
			for k := 0; k < 3; k++ {
				for i := 0; i < s.Len(); i++ {
					s.Key[i] = math.Floor(rng.Float64() * 1000)
				}
				s, _ = inc.Redistribute(r, s)
			}
			g.put(r.Rank(), s)
		})
		wantIDs := map[float64]bool{}
		for i := 0; i < total; i++ {
			wantIDs[float64(i)] = true
		}
		g.checkGlobal(t, p, total, wantIDs)
	}
}

func TestLoadBalanceExtremeSkew(t *testing.T) {
	// One rank holds everything; counts must equalise while the global
	// order is preserved.
	const p = 8
	const total = 801 // deliberately not divisible by p
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		s := particle.NewStore(0, -1, 1)
		if r.Rank() == p-1 { // skew at the end of the chain
			for i := 0; i < total; i++ {
				s.Append(0, 0, 0, 0, 0, float64(i))
				s.Key[s.Len()-1] = float64(i)
			}
		}
		g.put(r.Rank(), LoadBalance(r, s))
	})
	wantIDs := map[float64]bool{}
	for i := 0; i < total; i++ {
		wantIDs[float64(i)] = true
	}
	g.checkGlobal(t, p, total, wantIDs)
}

func BenchmarkLocalSort(b *testing.B) {
	commtest.Launch(1, machine.Zero(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := makeLocal(rng, 4096, 0, 1<<20)
			b.StartTimer()
			LocalSort(r, s)
		}
	})
}
