package psort

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/particle"
)

// makeLocal builds a store of n particles with keys drawn from rng; ids are
// globally unique given distinct (rank, n) bases.
func makeLocal(rng *rand.Rand, n int, idBase int, keyMax float64) *particle.Store {
	s := particle.NewStore(n, -1, 1)
	for i := 0; i < n; i++ {
		s.Append(rng.Float64(), rng.Float64(), 0, 0, 0, float64(idBase+i))
		s.Key[len(s.Key)-1] = math.Floor(rng.Float64() * keyMax)
	}
	return s
}

// gather collects every rank's final store under a mutex for global checks.
type gather struct {
	mu     sync.Mutex
	stores map[int]*particle.Store
}

func newGather() *gather { return &gather{stores: map[int]*particle.Store{}} }

func (g *gather) put(rank int, s *particle.Store) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stores[rank] = s
}

// checkGlobal verifies the invariants every (re)distribution must deliver:
// each rank locally sorted, ranks ordered, counts balanced, and the global
// multiset of particle ids preserved.
func (g *gather) checkGlobal(t *testing.T, p, total int, wantIDs map[float64]bool) {
	t.Helper()
	count := 0
	prevMax := math.Inf(-1)
	seen := map[float64]bool{}
	for r := 0; r < p; r++ {
		s := g.stores[r]
		if s == nil {
			t.Fatalf("rank %d produced no store", r)
		}
		if !IsLocallySorted(s) {
			t.Errorf("rank %d not locally sorted", r)
		}
		n := s.Len()
		count += n
		lo, hi := total/p, total/p+1
		if n < lo || n > hi {
			t.Errorf("rank %d holds %d particles, want %d..%d", r, n, lo, hi)
		}
		if n > 0 {
			if s.Key[0] < prevMax {
				t.Errorf("rank %d first key %g < previous rank max %g", r, s.Key[0], prevMax)
			}
			prevMax = s.Key[n-1]
		}
		for _, id := range s.ID {
			if seen[id] {
				t.Errorf("duplicate particle id %v", id)
			}
			seen[id] = true
		}
	}
	if count != total {
		t.Errorf("total particles %d, want %d", count, total)
	}
	for id := range wantIDs {
		if !seen[id] {
			t.Errorf("lost particle id %v", id)
		}
	}
}

func TestLocalSort(t *testing.T) {
	ws := commtest.Launch(1, machine.CM5(), func(r comm.Transport) {
		s := makeLocal(rand.New(rand.NewSource(1)), 100, 0, 50)
		LocalSort(r, s)
		if !IsLocallySorted(s) {
			t.Error("not sorted")
		}
	})
	if ws.Ranks[0].Total().ComputeTime <= 0 {
		t.Error("sort charged no compute time")
	}
}

func TestIsLocallySorted(t *testing.T) {
	s := particle.NewStore(2, -1, 1)
	s.Append(0, 0, 0, 0, 0, 0)
	s.Append(0, 0, 0, 0, 0, 1)
	s.Key[0], s.Key[1] = 2, 1
	if IsLocallySorted(s) {
		t.Error("descending keys reported sorted")
	}
	s.Key[1] = 2
	if !IsLocallySorted(s) {
		t.Error("equal keys must count as sorted")
	}
}

func TestSampleSortGlobal(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 8} {
		for _, perRank := range []int{0, 5, 200} {
			total := p * perRank
			g := newGather()
			wantIDs := map[float64]bool{}
			for i := 0; i < total; i++ {
				wantIDs[float64(i)] = true
			}
			commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
				rng := rand.New(rand.NewSource(int64(100 + r.Rank())))
				s := makeLocal(rng, perRank, r.Rank()*perRank, 1000)
				g.put(r.Rank(), SampleSort(r, s))
			})
			g.checkGlobal(t, p, total, wantIDs)
		}
	}
}

func TestSampleSortSkewedInput(t *testing.T) {
	// All particles start on rank 0 — the worst case for splitters.
	const p = 4
	const total = 400
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		var s *particle.Store
		if r.Rank() == 0 {
			s = makeLocal(rand.New(rand.NewSource(7)), total, 0, 64)
		} else {
			s = particle.NewStore(0, -1, 1)
		}
		g.put(r.Rank(), SampleSort(r, s))
	})
	wantIDs := map[float64]bool{}
	for i := 0; i < total; i++ {
		wantIDs[float64(i)] = true
	}
	g.checkGlobal(t, p, total, wantIDs)
}

func TestLoadBalancePreservesOrder(t *testing.T) {
	// Start from a globally sorted but unbalanced layout.
	const p = 4
	counts := []int{37, 1, 0, 62}
	total := 100
	g := newGather()
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		s := particle.NewStore(0, -1, 1)
		base := 0
		for k := 0; k < r.Rank(); k++ {
			base += counts[k]
		}
		for i := 0; i < counts[r.Rank()]; i++ {
			s.Append(0, 0, 0, 0, 0, float64(base+i))
			s.Key[s.Len()-1] = float64(base + i) // keys already globally sorted
		}
		g.put(r.Rank(), LoadBalance(r, s))
	})
	wantIDs := map[float64]bool{}
	for i := 0; i < total; i++ {
		wantIDs[float64(i)] = true
	}
	g.checkGlobal(t, p, total, wantIDs)
	// Order maintained exactly: concatenated keys are 0..99 in order.
	var keys []float64
	for r := 0; r < p; r++ {
		keys = append(keys, g.stores[r].Key...)
	}
	for i, k := range keys {
		if k != float64(i) {
			t.Fatalf("global order broken at %d: key %g", i, k)
		}
	}
}

func TestLoadBalanceSingleRankNoOp(t *testing.T) {
	commtest.Launch(1, machine.CM5(), func(r comm.Transport) {
		s := makeLocal(rand.New(rand.NewSource(1)), 10, 0, 10)
		out := LoadBalance(r, s)
		if out != s {
			t.Error("p=1 must return the same store")
		}
	})
}

func TestIncrementalRedistributeFromScratch(t *testing.T) {
	// Prime on an initial sample-sorted order, then perturb keys slightly
	// (as particle motion does) and redistribute incrementally.
	for _, p := range []int{2, 4, 8} {
		const perRank = 150
		total := p * perRank
		g := newGather()
		statsCh := make(chan Stats, p)
		commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			rng := rand.New(rand.NewSource(int64(500 + r.Rank())))
			s := makeLocal(rng, perRank, r.Rank()*perRank, 4096)
			s = SampleSort(r, s)
			inc := NewIncremental(8)
			inc.Prime(s)
			// Perturb: small key drift for most, large for a few.
			for i := 0; i < s.Len(); i++ {
				if rng.Float64() < 0.1 {
					s.Key[i] = math.Floor(rng.Float64() * 4096)
				} else if rng.Float64() < 0.5 {
					s.Key[i] = math.Max(0, s.Key[i]+math.Floor(rng.Float64()*8-4))
				}
			}
			out, st := inc.Redistribute(r, s)
			statsCh <- st
			g.put(r.Rank(), out)
		})
		wantIDs := map[float64]bool{}
		for i := 0; i < total; i++ {
			wantIDs[float64(i)] = true
		}
		g.checkGlobal(t, p, total, wantIDs)
		close(statsCh)
		var agg Stats
		for st := range statsCh {
			agg.SameBucket += st.SameBucket
			agg.OtherBucket += st.OtherBucket
			agg.OffProc += st.OffProc
		}
		if agg.SameBucket+agg.OtherBucket+agg.OffProc != total {
			t.Errorf("p=%d classification does not cover all particles: %+v", p, agg)
		}
		// Small perturbations: most particles stay in the same bucket.
		if agg.SameBucket < total/2 {
			t.Errorf("p=%d expected mostly same-bucket hits, got %+v", p, agg)
		}
	}
}

func TestIncrementalRepeatedRedistributions(t *testing.T) {
	// Run several perturbation/redistribute rounds; invariants must hold
	// after every round.
	const p = 4
	const perRank = 100
	total := p * perRank
	for round := 0; round < 5; round++ {
		round := round
		g := newGather()
		commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
			rng := rand.New(rand.NewSource(int64(r.Rank()*1000 + 17)))
			s := makeLocal(rng, perRank, r.Rank()*perRank, 1024)
			s = SampleSort(r, s)
			inc := NewIncremental(0) // default bucket count
			inc.Prime(s)
			for k := 0; k <= round; k++ {
				for i := 0; i < s.Len(); i++ {
					s.Key[i] = math.Max(0, s.Key[i]+math.Floor(rng.Float64()*20-10))
				}
				s, _ = inc.Redistribute(r, s)
			}
			g.put(r.Rank(), s)
		})
		wantIDs := map[float64]bool{}
		for i := 0; i < total; i++ {
			wantIDs[float64(i)] = true
		}
		g.checkGlobal(t, p, total, wantIDs)
	}
}

func TestIncrementalNoMovement(t *testing.T) {
	// If keys do not change, redistribution must classify everything
	// same-bucket and move nothing off-processor.
	const p = 4
	commtest.Launch(p, machine.CM5(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(int64(900 + r.Rank())))
		s := makeLocal(rng, 64, r.Rank()*64, 512)
		s = SampleSort(r, s)
		inc := NewIncremental(8)
		inc.Prime(s)
		out, st := inc.Redistribute(r, s)
		if st.OffProc != 0 {
			t.Errorf("rank %d: %d particles moved without key changes", r.Rank(), st.OffProc)
		}
		// Duplicate keys sitting exactly on a bucket boundary may classify
		// as other-bucket; everything else must be a same-bucket hit.
		if st.SameBucket+st.OtherBucket != 64 || st.SameBucket < 56 {
			t.Errorf("rank %d: same-bucket %d other %d, want ~64 same", r.Rank(), st.SameBucket, st.OtherBucket)
		}
		if out.Len() != 64 {
			t.Errorf("rank %d: count changed to %d", r.Rank(), out.Len())
		}
	})
}

func TestIncrementalCheaperThanFullSort(t *testing.T) {
	// The paper's Figure 11 claim: redistribution via incremental sorting
	// costs less (simulated time) than a full sample sort when movement is
	// incremental.
	const p = 8
	const perRank = 500
	params := machine.CM5()

	run := func(incremental bool) float64 {
		var maxTime float64
		var mu sync.Mutex
		commtest.Launch(p, params, func(r comm.Transport) {
			rng := rand.New(rand.NewSource(int64(33 + r.Rank())))
			s := makeLocal(rng, perRank, r.Rank()*perRank, 8192)
			s = SampleSort(r, s)
			inc := NewIncremental(16)
			inc.Prime(s)
			// Small drift.
			for i := 0; i < s.Len(); i++ {
				s.Key[i] = math.Max(0, s.Key[i]+math.Floor(rng.Float64()*6-3))
			}
			comm.Barrier(r)
			t0 := r.Clock().Now()
			if incremental {
				s, _ = inc.Redistribute(r, s)
			} else {
				s = SampleSort(r, s)
			}
			comm.Barrier(r)
			elapsed := r.Clock().Now() - t0
			mu.Lock()
			if elapsed > maxTime {
				maxTime = elapsed
			}
			mu.Unlock()
		})
		return maxTime
	}

	tInc := run(true)
	tFull := run(false)
	if tInc >= tFull {
		t.Errorf("incremental sort (%.6fs) should beat full sample sort (%.6fs)", tInc, tFull)
	}
}

func TestMergeSorted(t *testing.T) {
	commtest.Launch(1, machine.Zero(), func(r comm.Transport) {
		a := particle.NewStore(0, -1, 1)
		b := particle.NewStore(0, -1, 1)
		for i, k := range []float64{1, 3, 5} {
			a.Append(0, 0, 0, 0, 0, float64(i))
			a.Key[a.Len()-1] = k
		}
		for i, k := range []float64{2, 3, 6} {
			b.Append(0, 0, 0, 0, 0, float64(10+i))
			b.Key[b.Len()-1] = k
		}
		m := mergeSorted(r, a, b)
		want := []float64{1, 2, 3, 3, 5, 6}
		if m.Len() != 6 {
			t.Fatalf("merged len %d", m.Len())
		}
		for i, k := range want {
			if m.Key[i] != k {
				t.Errorf("merged key[%d] = %g, want %g", i, m.Key[i], k)
			}
		}
	})
}

func TestIlog2(t *testing.T) {
	// n ∈ {0, 1} deliberately give 1, not 0 — see the ilog2 doc comment.
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1000: 10, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ilog2(n); got != want {
			t.Errorf("ilog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBucketFor(t *testing.T) {
	inc := NewIncremental(4)
	inc.localBound = []float64{10, 20, 30, 40}
	inc.upper = 49
	cases := map[float64]int{5: 0, 10: 0, 15: 0, 20: 1, 25: 1, 40: 3, 45: 3, 100: 3}
	for key, want := range cases {
		if got := inc.bucketFor(key); got != want {
			t.Errorf("bucketFor(%g) = %d, want %d", key, got, want)
		}
	}
}

func TestSearchOwner(t *testing.T) {
	upper := []float64{10, 20, 30}
	cases := map[float64]int{0: 0, 10: 0, 11: 1, 20: 1, 25: 2, 30: 2, 99: 2}
	for key, want := range cases {
		if got := searchOwner(upper, key); got != want {
			t.Errorf("searchOwner(%g) = %d, want %d", key, got, want)
		}
	}
}

func TestPrimeEmptyStore(t *testing.T) {
	inc := NewIncremental(4)
	s := particle.NewStore(0, -1, 1)
	inc.Prime(s)
	if !math.IsInf(inc.upper, -1) {
		t.Errorf("empty upper = %v, want -inf", inc.upper)
	}
	for _, b := range inc.localBound {
		if !math.IsInf(b, 1) {
			t.Errorf("empty bound = %v, want +inf", b)
		}
	}
}

func TestSampleSortDeterministic(t *testing.T) {
	run := func() []float64 {
		g := newGather()
		commtest.Launch(4, machine.CM5(), func(r comm.Transport) {
			s := makeLocal(rand.New(rand.NewSource(int64(r.Rank()))), 50, r.Rank()*50, 777)
			g.put(r.Rank(), SampleSort(r, s))
		})
		var ids []float64
		for r := 0; r < 4; r++ {
			ids = append(ids, g.stores[r].ID...)
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sample sort is not deterministic")
		}
	}
	if !sort.Float64sAreSorted(nil) { // keep sort import for clarity
		t.Fatal("unreachable")
	}
}
