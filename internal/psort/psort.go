// Package psort implements the parallel sorting machinery behind particle
// distribution and redistribution:
//
//   - a sample sort used for the initial distribution (and as the "full
//     re-sort" ablation baseline),
//   - the paper's bucket-based incremental sorting algorithm (Figure 12),
//     which reuses the bucket boundaries remembered from the previous
//     redistribution to classify each particle as same-bucket, other local
//     bucket, or off-processor, followed by an all-to-many exchange, local
//     bucket sorts and a merge,
//   - the order-maintaining load balance that equalises particle counts
//     without perturbing the global key order.
//
// All routines leave every rank with a locally sorted store, the
// concatenation of which (in rank order) is globally sorted by key.
package psort

import (
	"math"
	"sort"

	"picpar/internal/comm"
	"picpar/internal/mesh"
	"picpar/internal/particle"
)

// Exchange tags.
const (
	tagSortExchange comm.Tag = comm.TagUser + 20 + iota
	tagBalance
)

// Modelled δ units for sort-related computation.
const (
	classifyWorkSameBucket = 2 // two comparisons against remembered bounds
	classifyWorkLocal      = 6 // binary search among L buckets
	classifyWorkRemote     = 8 // binary search among p processor bounds
	compareWork            = 1 // one comparison+swap step inside a sort
	packWorkPerParticle    = 7 // marshal/unmarshal one particle
)

// LocalSort sorts s in place by key and charges the comparison cost.
func LocalSort(r *comm.Rank, s *particle.Store) {
	n := s.Len()
	sort.Sort(s)
	if n > 1 {
		r.Compute(n * ilog2(n) * compareWork)
	}
}

// ilog2 returns ⌈log₂ n⌉ for n ≥ 1.
func ilog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

// IsLocallySorted reports whether s is non-decreasing by key.
func IsLocallySorted(s *particle.Store) bool {
	for i := 1; i < s.Len(); i++ {
		if s.Key[i] < s.Key[i-1] {
			return false
		}
	}
	return true
}

// SampleSort performs a full regular-sampling sample sort of the global
// particle population and returns this rank's sorted, balanced share. This
// is the paper's initial "distribution algorithm"; the incremental sort is
// the cheaper alternative for subsequent redistributions.
func SampleSort(r *comm.Rank, s *particle.Store) *particle.Store {
	p := r.P
	LocalSort(r, s)
	if p == 1 {
		return s
	}

	// Regular samples: p per rank.
	samples := make([]float64, p)
	n := s.Len()
	for k := 0; k < p; k++ {
		if n == 0 {
			samples[k] = math.Inf(1)
			continue
		}
		samples[k] = s.Key[k*n/p]
	}
	all := r.AllgatherFloat64s(samples)
	sort.Float64s(all)
	r.Compute(len(all) * ilog2(len(all)) * compareWork)
	// p−1 splitters: every p-th sample.
	splitters := make([]float64, p-1)
	for k := 1; k < p; k++ {
		splitters[k-1] = all[k*p]
	}

	// Partition the sorted local array at the splitters.
	cuts := make([]int, p+1)
	cuts[p] = n
	for k := 0; k < p-1; k++ {
		cuts[k+1] = sort.SearchFloat64s(s.Key, splitters[k])
	}
	r.Compute((p - 1) * ilog2(n+1) * compareWork)

	send := make([][]float64, p)
	counts := make([]int, p)
	for d := 0; d < p; d++ {
		lo, hi := cuts[d], cuts[d+1]
		if hi > lo {
			send[d] = s.MarshalRange(make([]float64, 0, (hi-lo)*particle.WireFloats), lo, hi)
			counts[d] = len(send[d])
			r.Compute((hi - lo) * packWorkPerParticle)
		}
	}
	recvCounts := r.ExchangeCounts(counts)
	recv := comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)

	out := particle.NewStore(n, s.Charge, s.Mass)
	for src := 0; src < p; src++ {
		if len(recv[src]) > 0 {
			if err := out.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]) / particle.WireFloats * packWorkPerParticle)
		}
	}
	LocalSort(r, out)
	return LoadBalance(r, out)
}

// LoadBalance equalises particle counts across ranks while preserving the
// global concatenated order: local particle i (at global position
// offset+i) moves to the BLOCK owner of that position. Requires that the
// per-rank stores concatenate to a globally key-sorted sequence, and
// preserves that property.
func LoadBalance(r *comm.Rank, s *particle.Store) *particle.Store {
	p := r.P
	n := s.Len()
	total := r.AllreduceSumInt(n)
	if p == 1 || total == 0 {
		return s
	}
	offset := r.ScanSumInt(n)

	send := make([][]float64, p)
	counts := make([]int, p)
	// Consecutive positions map to non-decreasing owners, so the local
	// range splits into contiguous runs per destination.
	i := 0
	for i < n {
		d := mesh.BlockOwner(total, p, offset+i)
		_, hi := mesh.BlockRange(total, p, d)
		runEnd := hi - offset
		if runEnd > n {
			runEnd = n
		}
		if d != r.ID {
			send[d] = s.MarshalRange(make([]float64, 0, (runEnd-i)*particle.WireFloats), i, runEnd)
			counts[d] = len(send[d])
			r.Compute((runEnd - i) * packWorkPerParticle)
		}
		i = runEnd
	}
	recvCounts := r.ExchangeCounts(counts)
	recv := comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)

	// Reassemble in source-rank order, splicing the retained local run in
	// rank position. Retained run: positions owned by self.
	myLo, myHi := mesh.BlockRange(total, p, r.ID)
	out := particle.NewStore(myHi-myLo, s.Charge, s.Mass)
	appendWire := func(w []float64) {
		if len(w) == 0 {
			return
		}
		if err := out.AppendWire(w); err != nil {
			panic(err)
		}
		r.Compute(len(w) / particle.WireFloats * packWorkPerParticle)
	}
	for src := 0; src < p; src++ {
		if src == r.ID {
			keepLo, keepHi := myLo-offset, myHi-offset
			if keepLo < 0 {
				keepLo = 0
			}
			if keepHi > n {
				keepHi = n
			}
			for k := keepLo; k < keepHi; k++ {
				out.AppendFrom(s, k)
			}
			continue
		}
		appendWire(recv[src])
	}
	return out
}
