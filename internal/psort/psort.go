// Package psort implements the parallel sorting machinery behind particle
// distribution and redistribution:
//
//   - a sample sort used for the initial distribution (and as the "full
//     re-sort" ablation baseline),
//   - the paper's bucket-based incremental sorting algorithm (Figure 12),
//     which reuses the bucket boundaries remembered from the previous
//     redistribution to classify each particle as same-bucket, other local
//     bucket, or off-processor, followed by an all-to-many exchange, local
//     bucket sorts and a merge,
//   - the order-maintaining load balance that equalises particle counts
//     without perturbing the global key order.
//
// All routines leave every rank with a locally sorted store, the
// concatenation of which (in rank order) is globally sorted by key.
package psort

import (
	"math"
	"sort"
	"sync"

	"picpar/internal/comm"
	"picpar/internal/mesh"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/wire"
)

// Exchange tags.
const (
	tagSortExchange comm.Tag = comm.TagUser + 20 + iota
	tagBalance
)

// Modelled δ units for sort-related computation.
const (
	classifyWorkSameBucket = 2 // two comparisons against remembered bounds
	classifyWorkLocal      = 6 // binary search among L buckets
	classifyWorkRemote     = 8 // binary search among p processor bounds
	compareWork            = 1 // one comparison+swap step inside a sort
	packWorkPerParticle    = 7 // marshal/unmarshal one particle
)

// LocalSort sorts s in place by (key, id) and charges the comparison cost.
// The real work is a radix sort plus one permutation apply (see radix.go),
// but the simulated charge stays the comparison-sort formula
// n·⌈log₂ n⌉·compareWork so all paper results are unchanged.
func LocalSort(r comm.Transport, s *particle.Store) {
	LocalSortPar(r, s, nil)
}

// LocalSortPar is LocalSort with the radix passes spread over pool's
// shared-memory workers (nil or 1-worker pool: sequential). The sorted
// order, the simulated charge and the steady-state zero-allocation property
// are identical for every pool size.
func LocalSortPar(r comm.Transport, s *particle.Store, pool *par.Pool) {
	n := s.Len()
	radixSortStorePool(s, pool)
	if n > 1 {
		r.Compute(n * ilog2(n) * compareWork)
	}
}

// ilog2 returns ⌈log₂ n⌉ for n ≥ 2, and 1 for n ∈ {0, 1}. The floor of 1
// is deliberate, not an off-by-one: the cost model charges at least one
// comparison step per element even for trivially small inputs, and every
// published simulated time was calibrated with that convention (changing
// ilog2(1) to the mathematical 0 would shift the δ charges of empty-rank
// corner cases and break bit-identical reproduction).
func ilog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

// IsLocallySorted reports whether s is non-decreasing by key.
func IsLocallySorted(s *particle.Store) bool {
	for i := 1; i < s.Len(); i++ {
		if s.Key[i] < s.Key[i-1] {
			return false
		}
	}
	return true
}

// exchange runs the two halves of an all-to-many redistribution through the
// selected protocol: nil ex is the classic pairwise exchange, anything else
// is a topology-native comm.Exchanger (systolic ring pulse, neighbor-only).
func exchange(r comm.Transport, ex comm.Exchanger, send [][]float64, counts []int) [][]float64 {
	if ex == nil {
		recvCounts := comm.ExchangeCounts(r, counts)
		return comm.AllToMany(r, send, recvCounts, comm.Float64Bytes)
	}
	recvCounts := ex.Counts(r, counts)
	return ex.Exchange(r, send, recvCounts)
}

// SampleSort performs a full regular-sampling sample sort of the global
// particle population and returns this rank's sorted, balanced share. This
// is the paper's initial "distribution algorithm"; the incremental sort is
// the cheaper alternative for subsequent redistributions.
func SampleSort(r comm.Transport, s *particle.Store) *particle.Store {
	return SampleSortPar(r, s, nil)
}

// SampleSortPar is SampleSort with the local radix sorts spread over pool's
// shared-memory workers (nil: sequential). The returned distribution and
// every simulated charge are identical for every pool size.
func SampleSortPar(r comm.Transport, s *particle.Store, pool *par.Pool) *particle.Store {
	return SampleSortParX(r, s, pool, nil)
}

// SampleSortParX is SampleSortPar with the all-to-many halves routed
// through ex (nil: the classic pairwise protocol). The returned
// distribution is identical for every exchanger — only the message
// schedule (and on non-classic protocols the modelled network charges)
// differs.
func SampleSortParX(r comm.Transport, s *particle.Store, pool *par.Pool, ex comm.Exchanger) *particle.Store {
	p := r.Size()
	LocalSortPar(r, s, pool)
	if p == 1 {
		return s
	}

	// Regular samples: p per rank.
	samples := make([]float64, p)
	n := s.Len()
	for k := 0; k < p; k++ {
		if n == 0 {
			samples[k] = math.Inf(1)
			continue
		}
		samples[k] = s.Key[k*n/p]
	}
	all := comm.AllgatherFloat64s(r, samples)
	sort.Float64s(all)
	r.Compute(len(all) * ilog2(len(all)) * compareWork)
	// p−1 splitters: every p-th sample.
	splitters := make([]float64, p-1)
	for k := 1; k < p; k++ {
		splitters[k-1] = all[k*p]
	}

	// Partition the sorted local array at the splitters.
	cuts := make([]int, p+1)
	cuts[p] = n
	for k := 0; k < p-1; k++ {
		cuts[k+1] = sort.SearchFloat64s(s.Key, splitters[k])
	}
	r.Compute((p - 1) * ilog2(n+1) * compareWork)

	wf := s.WireFloats()
	send := make([][]float64, p)
	counts := make([]int, p)
	for d := 0; d < p; d++ {
		lo, hi := cuts[d], cuts[d+1]
		if hi > lo {
			send[d] = s.MarshalRange(wire.Get((hi-lo)*wf), lo, hi)
			counts[d] = len(send[d])
			r.Compute((hi - lo) * packWorkPerParticle)
		}
	}
	recv := exchange(r, ex, send, counts)

	out := s.NewLike(n)
	for src := 0; src < p; src++ {
		if len(recv[src]) > 0 {
			if err := out.AppendWire(recv[src]); err != nil {
				panic(err)
			}
			r.Compute(len(recv[src]) / wf * packWorkPerParticle)
			wire.Put(recv[src])
		}
	}
	LocalSortPar(r, out, pool)
	return loadBalanceInto(r, out, nil, ex)
}

// LoadBalance equalises particle counts across ranks while preserving the
// global concatenated order: local particle i (at global position
// offset+i) moves to the BLOCK owner of that position. Requires that the
// per-rank stores concatenate to a globally key-sorted sequence, and
// preserves that property.
func LoadBalance(r comm.Transport, s *particle.Store) *particle.Store {
	return loadBalanceInto(r, s, nil, nil)
}

// lbScratch recycles the per-call bookkeeping slices of loadBalanceInto.
type lbScratch struct {
	send   [][]float64
	counts []int
}

var lbPool = sync.Pool{New: func() any { return new(lbScratch) }}

func (sc *lbScratch) grow(p int) {
	if cap(sc.send) < p {
		sc.send = make([][]float64, p)
		sc.counts = make([]int, p)
	}
	sc.send = sc.send[:p]
	sc.counts = sc.counts[:p]
	for d := 0; d < p; d++ {
		sc.send[d] = nil
		sc.counts[d] = 0
	}
}

// loadBalanceInto is LoadBalance with an optional destination store (when
// reuse is non-nil its arrays are recycled for the output; it must not
// alias s) and an optional exchange protocol (nil ex: classic pairwise).
// When reuse is nil the behaviour is the original LoadBalance, including
// returning s itself on the p = 1 / empty fast path.
func loadBalanceInto(r comm.Transport, s, reuse *particle.Store, ex comm.Exchanger) *particle.Store {
	p := r.Size()
	n := s.Len()
	total := comm.AllreduceSumInt(r, n)
	if p == 1 || total == 0 {
		if reuse == nil {
			return s
		}
		// The caller wants its scratch arrays back in play: hand s's
		// contents to reuse in O(1). s is internal scratch on this path
		// (see Incremental.Redistribute), so emptying it is fine.
		reuse.Truncate(0)
		reuse.Charge, reuse.Mass = s.Charge, s.Mass
		particle.SwapContents(reuse, s)
		return reuse
	}
	offset := comm.ScanSumInt(r, n)

	wf := s.WireFloats()
	sc := lbPool.Get().(*lbScratch)
	sc.grow(p)
	send, counts := sc.send, sc.counts
	// Consecutive positions map to non-decreasing owners, so the local
	// range splits into contiguous runs per destination.
	i := 0
	for i < n {
		d := mesh.BlockOwner(total, p, offset+i)
		_, hi := mesh.BlockRange(total, p, d)
		runEnd := hi - offset
		if runEnd > n {
			runEnd = n
		}
		if d != r.Rank() {
			send[d] = s.MarshalRange(wire.Get((runEnd-i)*wf), i, runEnd)
			counts[d] = len(send[d])
			r.Compute((runEnd - i) * packWorkPerParticle)
		}
		i = runEnd
	}
	recv := exchange(r, ex, send, counts)
	lbPool.Put(sc)

	// Reassemble in source-rank order, splicing the retained local run in
	// rank position. Retained run: positions owned by self.
	myLo, myHi := mesh.BlockRange(total, p, r.Rank())
	out := reuse
	if out == nil {
		out = s.NewLike(myHi - myLo)
	} else {
		out.Truncate(0)
		out.Charge, out.Mass = s.Charge, s.Mass
	}
	appendWire := func(w []float64) {
		if len(w) == 0 {
			return
		}
		if err := out.AppendWire(w); err != nil {
			panic(err)
		}
		r.Compute(len(w) / wf * packWorkPerParticle)
		wire.Put(w)
	}
	for src := 0; src < p; src++ {
		if src == r.Rank() {
			keepLo, keepHi := myLo-offset, myHi-offset
			if keepLo < 0 {
				keepLo = 0
			}
			if keepHi > n {
				keepHi = n
			}
			for k := keepLo; k < keepHi; k++ {
				out.AppendFrom(s, k)
			}
			continue
		}
		appendWire(recv[src])
	}
	return out
}
