package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// captureWarnings redirects the package warning hook into a
// concurrency-safe log for the duration of the test.
func captureWarnings(t *testing.T) *warnCapture {
	t.Helper()
	var c warnCapture
	old := warnf
	warnf = c.add
	t.Cleanup(func() { warnf = old })
	return &c
}

type warnCapture struct {
	mu   sync.Mutex
	msgs []string
}

func (c *warnCapture) add(format string, args ...any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *warnCapture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.msgs...)
}

// TestShardIdentity: the cheap probe reads exactly the identity prefix and
// still refuses corrupt files.
func TestShardIdentity(t *testing.T) {
	dir := t.TempDir()
	sh := sampleShard(2, 2)
	sh.Epoch = 6
	sh.Size = 4
	if err := WriteShard(dir, sh); err != nil {
		t.Fatal(err)
	}
	path := ShardPath(dir, 6, 2)
	e, r, s, err := ShardIdentity(path)
	if err != nil || e != 6 || r != 2 || s != 4 {
		t.Errorf("identity %d/%d/%d err=%v, want 6/2/4", e, r, s, err)
	}
	if _, _, _, err := ShardIdentity(ShardPath(dir, 6, 3)); err == nil {
		t.Error("missing shard produced an identity")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ShardIdentity(path); err == nil {
		t.Error("bit-flipped shard produced an identity")
	}
}

// TestLatestCompleteEmptyAndMissingDir: the scan over nothing is a clean
// -1 — no panic, no warning, no phantom epoch.
func TestLatestCompleteEmptyAndMissingDir(t *testing.T) {
	warnings := captureWarnings(t)
	if got := LatestComplete(t.TempDir(), 4); got != -1 {
		t.Errorf("empty dir: LatestComplete = %d, want -1", got)
	}
	if got := LatestComplete("/nonexistent/picpar-ckpt", 4); got != -1 {
		t.Errorf("missing dir: LatestComplete = %d, want -1", got)
	}
	if msgs := warnings.all(); len(msgs) != 0 {
		t.Errorf("empty scans warned: %v", msgs)
	}
}

// TestEpochCompleteZeroShardDir: an epoch directory holding no shard files
// (a crash between MkdirAll and the first write) is incomplete — skipped
// silently, like any partial epoch.
func TestEpochCompleteZeroShardDir(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	writeEpoch(t, dir, 3, 2)
	if err := os.MkdirAll(EpochDir(dir, 9), 0o755); err != nil {
		t.Fatal(err)
	}
	if EpochComplete(dir, 9, 2) {
		t.Error("zero-shard epoch scanned as complete")
	}
	if got := LatestComplete(dir, 2); got != 3 {
		t.Errorf("LatestComplete = %d, want fallback to 3", got)
	}
	if msgs := warnings.all(); len(msgs) != 0 {
		t.Errorf("normal partial epoch warned: %v", msgs)
	}
}

// TestEpochCompleteRejectsForeignWorldSize is the trap this probe exists
// for: an epoch written by an 8-rank world has ranks 0..3 present and
// CRC-valid, so a naive existence scan run by a 4-rank world would adopt
// it — and then panic at restore. The identity probe sees Size=8, warns,
// and treats the epoch as incomplete.
func TestEpochCompleteRejectsForeignWorldSize(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	writeEpoch(t, dir, 5, 8)
	if EpochComplete(dir, 5, 4) {
		t.Fatal("epoch written by world size 8 scanned complete for size 4")
	}
	if got := LatestComplete(dir, 4); got != -1 {
		t.Errorf("LatestComplete for size 4 = %d, want -1", got)
	}
	msgs := warnings.all()
	if len(msgs) == 0 {
		t.Fatal("foreign-world epoch was skipped silently")
	}
	if !strings.Contains(msgs[0], "of 8") || !strings.Contains(msgs[0], "of 4") {
		t.Errorf("warning does not name both world sizes: %q", msgs[0])
	}
	// The world that actually wrote the epoch still adopts it.
	if got := LatestComplete(dir, 8); got != 5 {
		t.Errorf("LatestComplete for size 8 = %d, want 5", got)
	}
}

// TestEpochCompleteRejectsMisplacedEpoch: a renamed (or mis-copied) epoch
// directory holds shards that are individually intact but declare a
// different epoch number — refused loudly, never restored as the wrong
// point in time.
func TestEpochCompleteRejectsMisplacedEpoch(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	writeEpoch(t, dir, 5, 2)
	if err := os.Rename(EpochDir(dir, 5), EpochDir(dir, 7)); err != nil {
		t.Fatal(err)
	}
	if EpochComplete(dir, 7, 2) {
		t.Fatal("renamed epoch directory scanned as complete")
	}
	if got := LatestComplete(dir, 2); got != -1 {
		t.Errorf("LatestComplete = %d, want -1", got)
	}
	if len(warnings.all()) == 0 {
		t.Error("misplaced epoch was skipped silently")
	}
}

// TestEpochCompleteRejectsSwappedRankFiles: two CRC-valid shard files with
// their names exchanged would restore each rank into the other's state;
// the declared-rank check catches the swap.
func TestEpochCompleteRejectsSwappedRankFiles(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	writeEpoch(t, dir, 4, 2)
	p0, p1 := ShardPath(dir, 4, 0), ShardPath(dir, 4, 1)
	tmp := filepath.Join(EpochDir(dir, 4), "swap")
	for _, mv := range [][2]string{{p0, tmp}, {p1, p0}, {tmp, p1}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if EpochComplete(dir, 4, 2) {
		t.Fatal("epoch with swapped rank files scanned as complete")
	}
	if len(warnings.all()) == 0 {
		t.Error("swapped rank files were skipped silently")
	}
}

// TestPruneEdges: pruning nothing succeeds, keep clamps to 1, and an old
// zero-shard partial epoch is removed while a newer one survives.
func TestPruneEdges(t *testing.T) {
	if err := Prune(t.TempDir(), 4, 2); err != nil {
		t.Errorf("prune of empty dir: %v", err)
	}
	if err := Prune("/nonexistent/picpar-ckpt", 4, 2); err != nil {
		t.Errorf("prune of missing dir: %v", err)
	}

	dir := t.TempDir()
	writeEpoch(t, dir, 4, 2)
	writeEpoch(t, dir, 8, 2)
	// Zero-shard partials: epoch 2 is older than every retained epoch and
	// must go; epoch 9 is newer than the newest complete epoch and must
	// stay (it may still be assembling).
	for _, e := range []int{2, 9} {
		if err := os.MkdirAll(EpochDir(dir, e), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2, 0); err != nil { // keep 0 clamps to 1
		t.Fatal(err)
	}
	if got, want := Epochs(dir), []int{8, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("after prune: epochs %v, want %v", got, want)
	}
	if got := LatestComplete(dir, 2); got != 8 {
		t.Errorf("after prune: LatestComplete = %d, want 8", got)
	}
}
