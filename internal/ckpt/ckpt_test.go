package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"picpar/internal/machine"
	"picpar/internal/particle"
)

// sampleShard builds a representative shard with every section populated:
// particles, all ten field arrays, bounds, policy/ledger state, stats with
// a non-default phase, and (for rank 0) a couple of iteration records.
func sampleShard(dims, rank int) *Shard {
	n := 5
	var s *particle.Store
	if dims == 3 {
		s = particle.NewStore3(n, -1.5, 1)
	} else {
		s = particle.NewStore(n, -1.5, 1)
	}
	for i := 0; i < n; i++ {
		f := float64(i)
		s.X = append(s.X, 0.25+f)
		s.Y = append(s.Y, 0.5+f)
		if dims == 3 {
			s.Z = append(s.Z, 0.75+f)
		}
		s.Px = append(s.Px, 0.01*f)
		s.Py = append(s.Py, -0.02*f)
		s.Pz = append(s.Pz, 0.03*f)
		s.ID = append(s.ID, f)
		s.Key = append(s.Key, 2*f)
	}
	sh := &Shard{
		Epoch:        10,
		Rank:         rank,
		Size:         4,
		Dims:         dims,
		GridNx:       32,
		GridNy:       16,
		NumParticles: 2048,
		Seed:         7,
		Iterations:   20,
		PolicyName:   "dynamic",
		ClockNow:     1.25,
		RunStart:     0.5,
		InitTime:     0.5,
		Particles:    s,
		Bounds:       []float64{100, 200, 300},
		UpperKey:     511,
		PolicyState:  []float64{3, 0.75, 1, 0.05},
		LedgerCost:   []float64{0.1, 0.2},
		LedgerCount:  []float64{8, 9},
	}
	if dims == 3 {
		sh.GridNz = 16
	}
	for i := range sh.Fields {
		sh.Fields[i] = []float64{float64(i), -float64(i), 0.5}
	}
	sh.Stats.SetPhase(machine.PhaseRedistribute)
	sh.Stats.Phases[0].ComputeTime = 0.125
	sh.Stats.Phases[0].CommTime = 0.0625
	sh.Stats.Phases[0].BytesSent = 4096
	sh.Stats.Phases[0].MsgsRecv = 17
	if rank == 0 {
		sh.Records = []Record{
			{Iter: 0, Time: 0.1, Compute: 0.05, ScatterBytesSent: 64,
				ScatterMsgsSent: 2, BusyImbalance: 1.1},
			{Iter: 1, Time: 0.2, Compute: 0.04, Redistributed: true,
				RedistTime: 0.03, RedistStrategy: "cost-weighted",
				FieldEnergy: 2.5, KineticEnergy: 3.5},
		}
	}
	return sh
}

func TestShardRoundTrip(t *testing.T) {
	for _, dims := range []int{2, 3} {
		sh := sampleShard(dims, 0)
		img := EncodeShard(nil, sh)
		got, err := DecodeShard(img)
		if err != nil {
			t.Fatalf("dims %d: decode: %v", dims, err)
		}
		if !reflect.DeepEqual(got, sh) {
			t.Errorf("dims %d: round trip mismatch:\n got %+v\nwant %+v", dims, got, sh)
		}
		// Canonical form: the decoded shard re-encodes to the same bytes.
		if again := EncodeShard(nil, got); !bytes.Equal(again, img) {
			t.Errorf("dims %d: re-encode differs from original image", dims)
		}
	}
}

func TestDecodeRejectsCorruptImages(t *testing.T) {
	img := EncodeShard(nil, sampleShard(2, 1))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte { b[8] = 99; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[headerSize+3] ^= 0x10; return b }},
		{"flipped crc", func(b []byte) []byte { b[13] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), img...))
		sh, err := DecodeShard(b)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt image (shard %+v)", tc.name, sh)
			continue
		}
		ce, ok := err.(*CodecError)
		if !ok {
			t.Errorf("%s: error is %T (%v), want *CodecError", tc.name, err, err)
		} else if ce.Msg == "" {
			t.Errorf("%s: codec error with empty diagnostic", tc.name)
		}
	}
}

func TestDecodeRejectsHugeDeclaredLengths(t *testing.T) {
	// A corrupt store count must be caught by length validation, not by an
	// attempted multi-gigabyte allocation. Build a valid image, then grow
	// the declared particle count far beyond the remaining payload.
	sh := sampleShard(2, 1)
	payload := appendPayload(nil, sh)
	// The store count sits right after the fixed prelude; rather than
	// hunting the offset, corrupt every u64 in turn and require that no
	// mutation ever panics (takeLen/takeInt must absorb them all).
	for off := 0; off+8 <= len(payload); off += 8 {
		b := append([]byte(nil), payload...)
		for i := 0; i < 8; i++ {
			b[off+i] = 0xff
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: decodePayload panicked: %v", off, r)
				}
			}()
			_, _ = decodePayload(b)
		}()
	}
}

func TestWriteReadShardAtomic(t *testing.T) {
	dir := t.TempDir()
	sh := sampleShard(2, 2)
	if err := WriteShard(dir, sh); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(ShardPath(dir, sh.Epoch, sh.Rank))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sh) {
		t.Error("read shard differs from written shard")
	}
	// Atomic write must not leave temp files behind.
	entries, err := os.ReadDir(EpochDir(dir, sh.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// writeEpoch writes a complete size-ranked epoch.
func writeEpoch(t *testing.T, dir string, epoch, size int) {
	t.Helper()
	for r := 0; r < size; r++ {
		sh := sampleShard(2, r)
		sh.Epoch = epoch
		sh.Size = size
		if err := WriteShard(dir, sh); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLatestCompleteFallsBack(t *testing.T) {
	const size = 3
	corruptions := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"missing shard", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated shard", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped shard", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if got := LatestComplete(dir, size); got != -1 {
				t.Fatalf("empty dir: LatestComplete = %d, want -1", got)
			}
			writeEpoch(t, dir, 5, size)
			writeEpoch(t, dir, 10, size)
			if got := LatestComplete(dir, size); got != 10 {
				t.Fatalf("LatestComplete = %d, want 10", got)
			}
			tc.damage(t, ShardPath(dir, 10, 1))
			if got := LatestComplete(dir, size); got != 5 {
				t.Errorf("after damaging epoch 10: LatestComplete = %d, want 5", got)
			}
		})
	}
}

func TestPruneRetention(t *testing.T) {
	const size = 2
	dir := t.TempDir()
	for _, e := range []int{2, 4, 6, 8} {
		writeEpoch(t, dir, e, size)
	}
	// A newer, still-assembling partial epoch must survive pruning.
	sh := sampleShard(2, 0)
	sh.Epoch = 10
	sh.Size = size
	if err := WriteShard(dir, sh); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, size, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := Epochs(dir), []int{6, 8, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("after prune: epochs %v, want %v", got, want)
	}
	if got := LatestComplete(dir, size); got != 8 {
		t.Errorf("after prune: LatestComplete = %d, want 8", got)
	}
}

func TestEnvDir(t *testing.T) {
	t.Setenv("PICPAR_CKPT_DIR", "")
	if got := EnvDir("fallback"); got != "fallback" {
		t.Errorf("empty env: %q, want fallback", got)
	}
	dir := t.TempDir()
	t.Setenv("PICPAR_CKPT_DIR", dir)
	if got := EnvDir("fallback"); got != dir {
		t.Errorf("set env: %q, want %q", got, dir)
	}
	// A value naming an existing non-directory is malformed: warn and fall
	// back rather than failing checkpoint writes forever after.
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PICPAR_CKPT_DIR", file)
	if got := EnvDir("fallback"); got != "fallback" {
		t.Errorf("malformed env: %q, want fallback", got)
	}
}
