// On-disk layout and atomic I/O for checkpoint epochs.
//
// A checkpoint directory holds one subdirectory per epoch,
// `epoch-%08d/`, containing one `rank-<r>.ckpt` file per rank. An epoch
// is *complete* when all `size` shard files exist and pass the header +
// CRC check; recovery only ever restores from a complete epoch, so a
// crash between two ranks' writes simply leaves a partial epoch that the
// scan skips. Each shard is written atomically: temp file in the epoch
// directory, write, fsync, rename, fsync of the directory.

package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"picpar/internal/wire"
)

// EpochDir returns the directory of one epoch under dir.
func EpochDir(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("epoch-%08d", epoch))
}

// ShardPath returns the path of one rank's shard file in an epoch.
func ShardPath(dir string, epoch, rank int) string {
	return filepath.Join(EpochDir(dir, epoch), fmt.Sprintf("rank-%d.ckpt", rank))
}

// WriteShard atomically writes sh into dir's epoch layout: the bytes land
// in a temp file first and only an fsynced, complete image is renamed to
// its final name, so readers never observe a torn shard.
func WriteShard(dir string, sh *Shard) (err error) {
	ed := EpochDir(dir, sh.Epoch)
	if err := os.MkdirAll(ed, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	buf := wire.GetBytes(1 << 16)
	defer func() { wire.PutBytes(buf) }()
	buf = EncodeShard(buf, sh)

	f, err := os.CreateTemp(ed, fmt.Sprintf(".rank-%d-*.tmp", sh.Rank))
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, werr := f.Write(buf); werr != nil {
		f.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmp, werr)
	}
	if serr := f.Sync(); serr != nil {
		f.Close()
		return fmt.Errorf("ckpt: fsync %s: %w", tmp, serr)
	}
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmp, cerr)
	}
	final := ShardPath(dir, sh.Epoch, sh.Rank)
	if rerr := os.Rename(tmp, final); rerr != nil {
		return fmt.Errorf("ckpt: rename %s: %w", final, rerr)
	}
	if d, derr := os.Open(ed); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadShard reads and fully decodes one shard file.
func ReadShard(path string) (*Shard, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return DecodeShard(b)
}

// ValidateShard checks a shard file's header and CRC without decoding the
// payload — the cheap integrity probe the completeness scan uses.
func ValidateShard(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	_, err = checkImage(b)
	return err
}

// ShardIdentity reads just the identity prefix of a shard file — the
// epoch, rank and world size it was written as — after validating the
// header and CRC. It never decodes the bulk payload, so the completeness
// scan stays cheap while still refusing shards that merely *look* intact.
func ShardIdentity(path string) (epoch, rank, size int, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	payload, err := checkImage(b)
	if err != nil {
		return 0, 0, 0, err
	}
	if epoch, payload, err = takeInt(payload, "epoch"); err != nil {
		return 0, 0, 0, err
	}
	if rank, payload, err = takeInt(payload, "rank"); err != nil {
		return 0, 0, 0, err
	}
	if size, _, err = takeInt(payload, "size"); err != nil {
		return 0, 0, 0, err
	}
	return epoch, rank, size, nil
}

// warnf emits degradation warnings; a package variable so tests can
// capture them (the par.EnvProcs / comm.EnvWatchdog pattern).
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Epochs lists the epoch numbers present under dir (complete or not), in
// ascending order. A missing directory is an empty list.
func Epochs(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var epochs []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "epoch-%d", &n); err == nil &&
			n >= 0 && e.Name() == fmt.Sprintf("epoch-%08d", n) {
			epochs = append(epochs, n)
		}
	}
	sort.Ints(epochs)
	return epochs
}

// EpochComplete reports whether all size shards of an epoch exist, pass
// the CRC check, and declare the identity the scan expects (this epoch,
// this rank, this world size). A missing or corrupt shard is the normal
// crash artifact and fails silently; a shard whose *declared* identity
// disagrees — an epoch written by a different world size, or a file
// shuffled between directories — is anomalous and warns loudly before the
// epoch is treated as incomplete. Without the identity probe, an epoch
// left by an 8-rank run would scan "complete" for a 4-rank world (ranks
// 0..3 exist and are CRC-valid) and then blow up at restore time.
func EpochComplete(dir string, epoch, size int) bool {
	for r := 0; r < size; r++ {
		path := ShardPath(dir, epoch, r)
		se, sr, ss, err := ShardIdentity(path)
		if err != nil {
			return false
		}
		if se != epoch || sr != r || ss != size {
			warnf("ckpt: %s declares epoch %d rank %d of %d, scan wants epoch %d rank %d of %d; skipping epoch",
				path, se, sr, ss, epoch, r, size)
			return false
		}
	}
	return true
}

// LatestComplete scans dir for the newest complete epoch for a world of
// the given size, falling back across truncated, corrupt or partially
// written epochs. Returns -1 when no complete epoch exists.
func LatestComplete(dir string, size int) int {
	epochs := Epochs(dir)
	for i := len(epochs) - 1; i >= 0; i-- {
		if EpochComplete(dir, epochs[i], size) {
			return epochs[i]
		}
	}
	return -1
}

// Prune enforces bounded retention: the newest keep complete epochs are
// retained (along with any newer, still-assembling partial epochs), and
// everything older is removed. Best-effort — the first removal error is
// returned but the walk continues.
func Prune(dir string, size, keep int) error {
	if keep < 1 {
		keep = 1
	}
	epochs := Epochs(dir)
	var first error
	complete := 0
	for i := len(epochs) - 1; i >= 0; i-- {
		if complete >= keep {
			if err := os.RemoveAll(EpochDir(dir, epochs[i])); err != nil && first == nil {
				first = err
			}
			continue
		}
		if EpochComplete(dir, epochs[i], size) {
			complete++
		}
	}
	return first
}

// EnvDir resolves the checkpoint directory from PICPAR_CKPT_DIR, falling
// back to def when unset. A value naming an existing non-directory is
// malformed and rejected loudly (warn + fallback), matching the
// PICPAR_WATCHDOG / PICPAR_PROCS pattern.
func EnvDir(def string) string {
	v, ok := os.LookupEnv("PICPAR_CKPT_DIR")
	if !ok || v == "" {
		return def
	}
	if info, err := os.Stat(v); err == nil && !info.IsDir() {
		warnf("picpar: malformed PICPAR_CKPT_DIR=%q (exists but is not a directory); using default %q",
			v, def)
		return def
	}
	return v
}
