// Package ckpt implements the versioned, CRC-guarded checkpoint format:
// one file per rank per epoch holding everything the rank needs to resume
// the simulation bit-identically — particle columns, field arrays,
// partition bounds, policy state, ledger estimates, the stats ledger and
// the clock/iteration cursors.
//
// The format follows the network codec's discipline (internal/comm
// netcodec.go): fixed-width little-endian encoding, every length validated
// against the remaining input before any allocation, trailing bytes are an
// error, and decoding never panics — malformed input yields a typed
// *CodecError. A successfully decoded shard re-encodes to exactly the
// bytes it was decoded from (the canonical fixed point the fuzz harness
// pins). Encode scratch cycles through the pooled wire buffers.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"picpar/internal/machine"
	"picpar/internal/particle"
)

// Version is the checkpoint format version this package writes. Readers
// reject any other version loudly rather than guessing.
const Version = 1

// shardMagic opens every checkpoint file.
const shardMagic = "PICPARCK"

// headerSize is magic (8) + version u32 + crc u32 + payload length u64.
const headerSize = 8 + 4 + 4 + 8

// NumFieldArrays is the number of field-component arrays a shard carries,
// in the fixed order Ex, Ey, Ez, Bx, By, Bz, Jx, Jy, Jz, Rho (the layout
// of geom.Arrays).
const NumFieldArrays = 10

// maxShardBytes bounds a declared payload length so corrupt headers cannot
// drive huge allocations.
const maxShardBytes = 1 << 32

// CodecError is the typed error for malformed checkpoint bytes. Decoding
// never panics: every structural problem surfaces as one of these.
type CodecError struct {
	Op  string // what was being decoded
	Msg string
}

func (e *CodecError) Error() string { return "ckpt: decode " + e.Op + ": " + e.Msg }

func decErr(op, format string, args ...any) error {
	return &CodecError{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Record is the checkpoint image of one completed iteration's measurement
// record (pic.IterationRecord — mirrored here because ckpt sits below pic).
// Only rank 0 carries records; other shards store an empty list.
type Record struct {
	Iter             int
	Time             float64
	Compute          float64
	ScatterBytesSent int64
	ScatterBytesRecv int64
	ScatterMsgsSent  int64
	ScatterMsgsRecv  int64
	Redistributed    bool
	RedistTime       float64
	RedistFailed     bool
	RedistStrategy   string
	BusyImbalance    float64
	FieldEnergy      float64
	KineticEnergy    float64
}

// Shard is one rank's complete restart image at an epoch boundary (epoch E
// means "E iterations fully completed"). The Config* fields form the run
// signature: a restore into a run with a different signature is refused.
type Shard struct {
	Epoch int
	Rank  int
	Size  int

	// Run signature — must match the restoring run's configuration.
	Dims         int
	GridNx       int
	GridNy       int
	GridNz       int // zero for 2-D runs
	NumParticles int
	Seed         int64
	Iterations   int
	PolicyName   string

	// Clock and measurement cursors.
	ClockNow float64 // simulated clock at the epoch boundary
	RunStart float64 // clock value when the iteration loop began
	InitTime float64 // agreed initial-distribution time
	Stats    machine.Stats

	// Simulation state.
	Particles   *particle.Store
	Fields      [NumFieldArrays][]float64
	Bounds      []float64 // psort incremental bucket bounds
	UpperKey    float64
	PolicyState []float64
	LedgerCost  []float64
	LedgerCount []float64

	// Rank 0 only: the measurement records of iterations [0, Epoch).
	Records []Record
}

// EncodeShard appends the complete file image of sh (header + payload) to
// dst and returns the extended slice.
func EncodeShard(dst []byte, sh *Shard) []byte {
	start := len(dst)
	dst = append(dst, shardMagic...)
	dst = appendU32(dst, Version)
	dst = appendU32(dst, 0) // crc placeholder
	dst = appendU64(dst, 0) // length placeholder
	payloadStart := len(dst)
	dst = appendPayload(dst, sh)
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start+12:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(dst[start+16:], uint64(len(payload)))
	return dst
}

// DecodeShard parses a complete file image produced by EncodeShard. All
// errors are *CodecError; decoding never panics.
func DecodeShard(b []byte) (*Shard, error) {
	payload, err := checkImage(b)
	if err != nil {
		return nil, err
	}
	return decodePayload(payload)
}

// checkImage validates the header and CRC of a file image and returns the
// payload bytes.
func checkImage(b []byte) ([]byte, error) {
	if len(b) < headerSize {
		return nil, decErr("header", "file too short: %d bytes", len(b))
	}
	if string(b[:8]) != shardMagic {
		return nil, decErr("header", "bad magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != Version {
		return nil, decErr("header", "unsupported version %d (want %d)", v, Version)
	}
	crc := binary.LittleEndian.Uint32(b[12:])
	n := binary.LittleEndian.Uint64(b[16:])
	if n > maxShardBytes {
		return nil, decErr("header", "declared payload length %d exceeds limit", n)
	}
	if uint64(len(b)-headerSize) != n {
		return nil, decErr("header", "payload length %d, header declares %d", len(b)-headerSize, n)
	}
	payload := b[headerSize:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, decErr("header", "crc mismatch: file %08x, computed %08x", crc, got)
	}
	return payload, nil
}

// appendPayload encodes the shard body (everything the CRC guards).
func appendPayload(dst []byte, sh *Shard) []byte {
	dst = appendU64(dst, uint64(sh.Epoch))
	dst = appendU64(dst, uint64(sh.Rank))
	dst = appendU64(dst, uint64(sh.Size))
	dst = append(dst, byte(sh.Dims))
	dst = appendU64(dst, uint64(sh.GridNx))
	dst = appendU64(dst, uint64(sh.GridNy))
	dst = appendU64(dst, uint64(sh.GridNz))
	dst = appendU64(dst, uint64(sh.NumParticles))
	dst = appendU64(dst, uint64(sh.Seed))
	dst = appendU64(dst, uint64(sh.Iterations))
	dst = appendString(dst, sh.PolicyName)
	dst = appendF64(dst, sh.ClockNow)
	dst = appendF64(dst, sh.RunStart)
	dst = appendF64(dst, sh.InitTime)
	dst = append(dst, byte(sh.Stats.CurrentPhase()))
	for p := range sh.Stats.Phases {
		ps := &sh.Stats.Phases[p]
		dst = appendF64(dst, ps.ComputeTime)
		dst = appendF64(dst, ps.CommTime)
		dst = appendU64(dst, uint64(ps.BytesSent))
		dst = appendU64(dst, uint64(ps.BytesRecv))
		dst = appendU64(dst, uint64(ps.MsgsSent))
		dst = appendU64(dst, uint64(ps.MsgsRecv))
	}
	dst = appendStore(dst, sh.Particles)
	for i := range sh.Fields {
		dst = appendF64s(dst, sh.Fields[i])
	}
	dst = appendF64s(dst, sh.Bounds)
	dst = appendF64(dst, sh.UpperKey)
	dst = appendF64s(dst, sh.PolicyState)
	dst = appendF64s(dst, sh.LedgerCost)
	dst = appendF64s(dst, sh.LedgerCount)
	dst = appendU64(dst, uint64(len(sh.Records)))
	for i := range sh.Records {
		dst = appendRecord(dst, &sh.Records[i])
	}
	return dst
}

// decodePayload parses a shard body. It is the surface the fuzz harness
// drives directly (bypassing the CRC, which would mask payload bugs).
func decodePayload(b []byte) (*Shard, error) {
	sh := &Shard{}
	var err error
	if sh.Epoch, b, err = takeInt(b, "epoch"); err != nil {
		return nil, err
	}
	if sh.Rank, b, err = takeInt(b, "rank"); err != nil {
		return nil, err
	}
	if sh.Size, b, err = takeInt(b, "size"); err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, decErr("dims", "truncated")
	}
	sh.Dims = int(b[0])
	b = b[1:]
	if sh.Dims != 2 && sh.Dims != 3 {
		return nil, decErr("dims", "dimensionality %d (want 2 or 3)", sh.Dims)
	}
	if sh.GridNx, b, err = takeInt(b, "grid nx"); err != nil {
		return nil, err
	}
	if sh.GridNy, b, err = takeInt(b, "grid ny"); err != nil {
		return nil, err
	}
	if sh.GridNz, b, err = takeInt(b, "grid nz"); err != nil {
		return nil, err
	}
	if sh.NumParticles, b, err = takeInt(b, "numparticles"); err != nil {
		return nil, err
	}
	var u uint64
	if u, b, err = takeU64(b, "seed"); err != nil {
		return nil, err
	}
	sh.Seed = int64(u)
	if sh.Iterations, b, err = takeInt(b, "iterations"); err != nil {
		return nil, err
	}
	if sh.PolicyName, b, err = takeString(b, "policy name"); err != nil {
		return nil, err
	}
	if sh.ClockNow, b, err = takeF64(b, "clock"); err != nil {
		return nil, err
	}
	if sh.RunStart, b, err = takeF64(b, "runstart"); err != nil {
		return nil, err
	}
	if sh.InitTime, b, err = takeF64(b, "inittime"); err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, decErr("stats", "truncated phase byte")
	}
	phase := int(b[0])
	b = b[1:]
	if phase >= machine.NumPhases {
		return nil, decErr("stats", "phase %d out of range (NumPhases %d)", phase, machine.NumPhases)
	}
	sh.Stats.SetPhase(machine.Phase(phase))
	for p := range sh.Stats.Phases {
		ps := &sh.Stats.Phases[p]
		if ps.ComputeTime, b, err = takeF64(b, "stats compute"); err != nil {
			return nil, err
		}
		if ps.CommTime, b, err = takeF64(b, "stats comm"); err != nil {
			return nil, err
		}
		if u, b, err = takeU64(b, "stats bytes sent"); err != nil {
			return nil, err
		}
		ps.BytesSent = int64(u)
		if u, b, err = takeU64(b, "stats bytes recv"); err != nil {
			return nil, err
		}
		ps.BytesRecv = int64(u)
		if u, b, err = takeU64(b, "stats msgs sent"); err != nil {
			return nil, err
		}
		ps.MsgsSent = int64(u)
		if u, b, err = takeU64(b, "stats msgs recv"); err != nil {
			return nil, err
		}
		ps.MsgsRecv = int64(u)
	}
	if sh.Particles, b, err = takeStore(b, sh.Dims); err != nil {
		return nil, err
	}
	for i := range sh.Fields {
		if sh.Fields[i], b, err = takeF64s(b, "field array"); err != nil {
			return nil, err
		}
	}
	if sh.Bounds, b, err = takeF64s(b, "bounds"); err != nil {
		return nil, err
	}
	if sh.UpperKey, b, err = takeF64(b, "upper key"); err != nil {
		return nil, err
	}
	if sh.PolicyState, b, err = takeF64s(b, "policy state"); err != nil {
		return nil, err
	}
	if sh.LedgerCost, b, err = takeF64s(b, "ledger cost"); err != nil {
		return nil, err
	}
	if sh.LedgerCount, b, err = takeF64s(b, "ledger count"); err != nil {
		return nil, err
	}
	var nr int
	if nr, b, err = takeLen(b, "record count", recordMinBytes); err != nil {
		return nil, err
	}
	if nr > 0 {
		sh.Records = make([]Record, nr)
		for i := range sh.Records {
			if b, err = takeRecord(b, &sh.Records[i]); err != nil {
				return nil, err
			}
		}
	}
	if len(b) != 0 {
		return nil, decErr("payload", "%d trailing bytes", len(b))
	}
	return sh, nil
}

// appendStore encodes the particle columns. The dims byte plus a single
// count cover every column, so a decoded store is structurally consistent
// by construction.
func appendStore(dst []byte, s *particle.Store) []byte {
	dst = appendF64(dst, s.Charge)
	dst = appendF64(dst, s.Mass)
	dst = appendU64(dst, uint64(s.Len()))
	dst = appendCol(dst, s.X)
	dst = appendCol(dst, s.Y)
	if s.Z != nil {
		dst = appendCol(dst, s.Z)
	}
	dst = appendCol(dst, s.Px)
	dst = appendCol(dst, s.Py)
	dst = appendCol(dst, s.Pz)
	dst = appendCol(dst, s.ID)
	dst = appendCol(dst, s.Key)
	return dst
}

func takeStore(b []byte, dims int) (*particle.Store, []byte, error) {
	var charge, mass float64
	var err error
	if charge, b, err = takeF64(b, "store charge"); err != nil {
		return nil, nil, err
	}
	if mass, b, err = takeF64(b, "store mass"); err != nil {
		return nil, nil, err
	}
	cols := 7
	if dims == 3 {
		cols = 8
	}
	var n int
	if n, b, err = takeLen(b, "store count", 8*cols); err != nil {
		return nil, nil, err
	}
	var s *particle.Store
	if dims == 3 {
		s = particle.NewStore3(n, charge, mass)
	} else {
		s = particle.NewStore(n, charge, mass)
	}
	s.X, b = takeCol(b, n)
	s.Y, b = takeCol(b, n)
	if dims == 3 {
		s.Z, b = takeCol(b, n)
	}
	s.Px, b = takeCol(b, n)
	s.Py, b = takeCol(b, n)
	s.Pz, b = takeCol(b, n)
	s.ID, b = takeCol(b, n)
	s.Key, b = takeCol(b, n)
	return s, b, nil
}

// appendCol / takeCol move one n-length float column without a per-column
// length prefix (the store count covers them all; takeStore pre-validated
// the total size via takeLen).
func appendCol(dst []byte, col []float64) []byte {
	for _, v := range col {
		dst = appendF64(dst, v)
	}
	return dst
}

func takeCol(b []byte, n int) ([]float64, []byte) {
	col := make([]float64, n)
	for i := range col {
		col[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	return col, b
}

// recordMinBytes is the smallest encoding of one Record (empty strategy
// string), used to validate a declared record count against the remaining
// input before allocating.
const recordMinBytes = 8 + 8 + 8 + 4*8 + 1 + 8 + 1 + 8 + 8 + 8 + 8

func appendRecord(dst []byte, r *Record) []byte {
	dst = appendU64(dst, uint64(r.Iter))
	dst = appendF64(dst, r.Time)
	dst = appendF64(dst, r.Compute)
	dst = appendU64(dst, uint64(r.ScatterBytesSent))
	dst = appendU64(dst, uint64(r.ScatterBytesRecv))
	dst = appendU64(dst, uint64(r.ScatterMsgsSent))
	dst = appendU64(dst, uint64(r.ScatterMsgsRecv))
	dst = appendBool(dst, r.Redistributed)
	dst = appendF64(dst, r.RedistTime)
	dst = appendBool(dst, r.RedistFailed)
	dst = appendString(dst, r.RedistStrategy)
	dst = appendF64(dst, r.BusyImbalance)
	dst = appendF64(dst, r.FieldEnergy)
	dst = appendF64(dst, r.KineticEnergy)
	return dst
}

func takeRecord(b []byte, r *Record) ([]byte, error) {
	var err error
	var u uint64
	if r.Iter, b, err = takeInt(b, "record iter"); err != nil {
		return nil, err
	}
	if r.Time, b, err = takeF64(b, "record time"); err != nil {
		return nil, err
	}
	if r.Compute, b, err = takeF64(b, "record compute"); err != nil {
		return nil, err
	}
	if u, b, err = takeU64(b, "record bytes sent"); err != nil {
		return nil, err
	}
	r.ScatterBytesSent = int64(u)
	if u, b, err = takeU64(b, "record bytes recv"); err != nil {
		return nil, err
	}
	r.ScatterBytesRecv = int64(u)
	if u, b, err = takeU64(b, "record msgs sent"); err != nil {
		return nil, err
	}
	r.ScatterMsgsSent = int64(u)
	if u, b, err = takeU64(b, "record msgs recv"); err != nil {
		return nil, err
	}
	r.ScatterMsgsRecv = int64(u)
	if r.Redistributed, b, err = takeBool(b, "record redistributed"); err != nil {
		return nil, err
	}
	if r.RedistTime, b, err = takeF64(b, "record redist time"); err != nil {
		return nil, err
	}
	if r.RedistFailed, b, err = takeBool(b, "record redist failed"); err != nil {
		return nil, err
	}
	if r.RedistStrategy, b, err = takeString(b, "record strategy"); err != nil {
		return nil, err
	}
	if r.BusyImbalance, b, err = takeF64(b, "record busy imbalance"); err != nil {
		return nil, err
	}
	if r.FieldEnergy, b, err = takeF64(b, "record field energy"); err != nil {
		return nil, err
	}
	if r.KineticEnergy, b, err = takeF64(b, "record kinetic energy"); err != nil {
		return nil, err
	}
	return b, nil
}

// ---- primitive helpers (netcodec idiom) ----

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU64(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendF64s writes a length-prefixed float vector. nil and empty encode
// identically (length 0) and decode to nil — the canonical form.
func appendF64s(dst []byte, v []float64) []byte {
	dst = appendU64(dst, uint64(len(v)))
	for _, x := range v {
		dst = appendF64(dst, x)
	}
	return dst
}

func takeU64(b []byte, what string) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, decErr(what, "truncated: %d bytes left, want 8", len(b))
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeF64(b []byte, what string) (float64, []byte, error) {
	u, rest, err := takeU64(b, what)
	return math.Float64frombits(u), rest, err
}

func takeBool(b []byte, what string) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, decErr(what, "truncated")
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, decErr(what, "bool byte %d (want 0 or 1)", b[0])
}

// takeInt reads a u64 that must fit a non-negative int.
func takeInt(b []byte, what string) (int, []byte, error) {
	u, rest, err := takeU64(b, what)
	if err != nil {
		return 0, nil, err
	}
	if u > math.MaxInt64 || int64(u) < 0 {
		return 0, nil, decErr(what, "value %d out of range", u)
	}
	return int(u), rest, nil
}

// takeLen reads a u64 count of elements of elemSize bytes each and
// validates it against the remaining input, so corrupt counts cannot drive
// huge allocations.
func takeLen(b []byte, what string, elemSize int) (int, []byte, error) {
	u, rest, err := takeU64(b, what)
	if err != nil {
		return 0, nil, err
	}
	if u > uint64(len(rest))/uint64(elemSize) {
		return 0, nil, decErr(what, "declared %d elements, only %d bytes left", u, len(rest))
	}
	return int(u), rest, nil
}

func takeString(b []byte, what string) (string, []byte, error) {
	n, rest, err := takeLen(b, what, 1)
	if err != nil {
		return "", nil, err
	}
	return string(rest[:n]), rest[n:], nil
}

func takeF64s(b []byte, what string) ([]float64, []byte, error) {
	n, rest, err := takeLen(b, what, 8)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	return v, rest, nil
}
