package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeShard enforces the checkpoint codec's safety contract on
// arbitrary byte streams, mirroring the network codec's FuzzDecodeFrame:
// decodePayload either returns a typed *CodecError or produces a shard
// whose re-encoding is a canonical fixed point — decode(encode(decode(b)))
// is bit-identical (which also makes the property NaN-safe: floats are
// compared as encoded bits, never with ==). It must never panic and never
// silently truncate (trailing bytes are a decode error, so a successful
// decode consumed exactly the input).
//
// The harness drives decodePayload directly rather than DecodeShard: the
// CRC in the file header would reject nearly every mutated input before
// the payload parser ran, masking exactly the bugs the fuzzer hunts. The
// header/CRC path has its own deterministic tests.
//
// The committed seed corpus lives in testdata/fuzz/FuzzDecodeShard; the
// f.Add seeds below cover both dimensionalities, empty and populated
// sections, and a few structurally broken prefixes.
func FuzzDecodeShard(f *testing.F) {
	f.Add(appendPayload(nil, sampleShard(2, 0)))
	f.Add(appendPayload(nil, sampleShard(3, 0)))
	f.Add(appendPayload(nil, sampleShard(2, 3))) // no records
	empty := sampleShard(2, 1)
	empty.Particles.X = empty.Particles.X[:0]
	empty.Particles.Y = empty.Particles.Y[:0]
	empty.Particles.Px = empty.Particles.Px[:0]
	empty.Particles.Py = empty.Particles.Py[:0]
	empty.Particles.Pz = empty.Particles.Pz[:0]
	empty.Particles.ID = empty.Particles.ID[:0]
	empty.Particles.Key = empty.Particles.Key[:0]
	empty.Bounds = nil
	empty.PolicyState = nil
	empty.LedgerCost = nil
	empty.LedgerCount = nil
	f.Add(appendPayload(nil, empty))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(appendPayload(nil, sampleShard(2, 0))[:40])

	f.Fuzz(func(t *testing.T, in []byte) {
		sh, err := decodePayload(in) // must not panic, whatever in is
		if err != nil {
			var ce *CodecError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is %T (%v), want *CodecError", err, err)
			}
			if ce.Msg == "" {
				t.Fatalf("codec error with empty diagnostic: %+v", ce)
			}
			return
		}
		// A decoded shard must re-encode, and its encoding must be a fixed
		// point: decode → encode → decode → encode yields identical bytes.
		enc1 := appendPayload(nil, sh)
		sh2, err := decodePayload(enc1)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		enc2 := appendPayload(nil, sh2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first %x\nsecond %x", enc1, enc2)
		}
		// The full-image wrapper must accept what it produces.
		if _, err := DecodeShard(EncodeShard(nil, sh)); err != nil {
			t.Fatalf("EncodeShard image of decoded shard rejected: %v", err)
		}
	})
}
