package sfc

import "testing"

var testBoxes = [][3]int{
	{1, 1, 1}, {2, 2, 2}, {4, 4, 4}, {8, 8, 8},
	{4, 2, 8}, {5, 3, 7}, {16, 8, 4}, {3, 1, 2},
}

func TestIndexer3Bijection(t *testing.T) {
	for _, scheme := range allSchemes {
		for _, b := range testBoxes {
			w, h, d := b[0], b[1], b[2]
			ix, err := New3(scheme, w, h, d)
			if err != nil {
				t.Fatalf("New3(%s, %v): %v", scheme, b, err)
			}
			seen := make([]bool, w*h*d)
			for z := 0; z < d; z++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						idx := ix.Index(x, y, z)
						if idx < 0 || idx >= w*h*d {
							t.Fatalf("%s %v: Index(%d,%d,%d) = %d out of range", scheme, b, x, y, z, idx)
						}
						if seen[idx] {
							t.Fatalf("%s %v: duplicate index %d", scheme, b, idx)
						}
						seen[idx] = true
						rx, ry, rz := ix.Coords(idx)
						if rx != x || ry != y || rz != z {
							t.Fatalf("%s %v: round trip (%d,%d,%d) -> (%d,%d,%d)", scheme, b, x, y, z, rx, ry, rz)
						}
					}
				}
			}
		}
	}
}

func TestHilbert3Adjacency(t *testing.T) {
	// On a power-of-two cube, consecutive compacted-Hilbert indices are
	// 6-neighbour adjacent cells.
	ix := MustNew3(SchemeHilbert, 8, 8, 8)
	px, py, pz := ix.Coords(0)
	for idx := 1; idx < 8*8*8; idx++ {
		x, y, z := ix.Coords(idx)
		if abs(x-px)+abs(y-py)+abs(z-pz) != 1 {
			t.Fatalf("jump at idx %d: (%d,%d,%d)->(%d,%d,%d)", idx, px, py, pz, x, y, z)
		}
		px, py, pz = x, y, z
	}
}

func TestSnake3Adjacency(t *testing.T) {
	for _, b := range testBoxes {
		w, h, d := b[0], b[1], b[2]
		if w*h*d == 1 {
			continue
		}
		s := Snake3{W: w, H: h, D: d}
		px, py, pz := s.Coords(0)
		for idx := 1; idx < w*h*d; idx++ {
			x, y, z := s.Coords(idx)
			if abs(x-px)+abs(y-py)+abs(z-pz) != 1 {
				t.Fatalf("snake3 %v: jump at idx %d", b, idx)
			}
			px, py, pz = x, y, z
		}
	}
}

func TestLocality3HilbertBeatsSnake(t *testing.T) {
	// Bounding-box surface area of equal contiguous index chunks: Hilbert
	// chunks are blocky, snake chunks are long slabs.
	const n = 16
	const ranks = 16
	share := n * n * n / ranks
	hil := MustNew3(SchemeHilbert, n, n, n)
	snk := MustNew3(SchemeSnake, n, n, n)
	surface := func(ix Indexer3, lo, hi int) int {
		minX, minY, minZ := n, n, n
		maxX, maxY, maxZ := -1, -1, -1
		for i := lo; i < hi; i++ {
			x, y, z := ix.Coords(i)
			minX, maxX = min(minX, x), max(maxX, x)
			minY, maxY = min(minY, y), max(maxY, y)
			minZ, maxZ = min(minZ, z), max(maxZ, z)
		}
		dx, dy, dz := maxX-minX+1, maxY-minY+1, maxZ-minZ+1
		return 2 * (dx*dy + dy*dz + dx*dz)
	}
	hTot, sTot := 0, 0
	for r := 0; r < ranks; r++ {
		hTot += surface(hil, r*share, (r+1)*share)
		sTot += surface(snk, r*share, (r+1)*share)
	}
	if hTot >= sTot {
		t.Errorf("hilbert surface %d should beat snake %d", hTot, sTot)
	}
}

func TestMorton3RoundTripViaTables(t *testing.T) {
	ix := MustNew3(SchemeMorton, 8, 4, 2)
	for idx := 0; idx < 8*4*2; idx++ {
		x, y, z := ix.Coords(idx)
		if ix.Index(x, y, z) != idx {
			t.Fatalf("morton3 round trip failed at %d", idx)
		}
	}
}

func TestCompact3Bits(t *testing.T) {
	// Interleave by hand: x bits at positions 0,3,6...
	v := uint64(0)
	x := uint64(0b1011)
	for b := 0; b < 4; b++ {
		v |= (x >> uint(b) & 1) << uint(3*b)
	}
	if got := compact3Bits(v); got != x {
		t.Errorf("compact3Bits = %b, want %b", got, x)
	}
}

func TestNew3Rejects(t *testing.T) {
	if _, err := New3(SchemeHilbert, 0, 1, 1); err == nil {
		t.Error("expected error for zero extent")
	}
	if _, err := New3("spiral", 2, 2, 2); err == nil {
		t.Error("expected error for unknown scheme")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew3 must panic")
		}
	}()
	MustNew3("spiral", 2, 2, 2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
