package sfc

// N-dimensional Hilbert indexing (Skilling's transpose algorithm,
// "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004). The paper
// notes its indexing scheme "can be generalized to n-dimensions"; this file
// provides that generalisation and the 2-D tests pin it against the
// quadrant-rotation implementation in hilbert.go.

// HilbertAxesToIndex maps a point X (one coordinate per dimension, each in
// [0, 2^bits)) to its scalar Hilbert index. X is not modified.
func HilbertAxesToIndex(x []uint32, bitCount int) uint64 {
	n := len(x)
	X := append([]uint32(nil), x...)
	axesToTranspose(X, bitCount)
	// Interleave: bit b of dimension i goes to position (bits-1-b)*n + i
	// counting from the most significant end.
	var idx uint64
	for b := bitCount - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			idx = idx<<1 | uint64((X[i]>>uint(b))&1)
		}
	}
	return idx
}

// HilbertIndexToAxes inverts HilbertAxesToIndex, filling x with the point's
// coordinates.
func HilbertIndexToAxes(idx uint64, bitCount int, x []uint32) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	pos := bitCount*n - 1
	for b := bitCount - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			bit := uint32(idx>>uint(pos)) & 1
			x[i] |= bit << uint(b)
			pos--
		}
	}
	transposeToAxes(x, bitCount)
}

// axesToTranspose converts coordinates into Skilling's "transpose" Hilbert
// representation, in place.
func axesToTranspose(X []uint32, b int) {
	n := len(X)
	M := uint32(1) << uint(b-1)
	// Inverse undo.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < n; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert
			} else { // exchange
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		X[i] ^= X[i-1]
	}
	t := uint32(0)
	for Q := M; Q > 1; Q >>= 1 {
		if X[n-1]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < n; i++ {
		X[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(X []uint32, b int) {
	n := len(X)
	N := uint32(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := X[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := n - 1; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				tt := (X[0] ^ X[i]) & P
				X[0] ^= tt
				X[i] ^= tt
			}
		}
	}
}
