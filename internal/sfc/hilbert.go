package sfc

import (
	"fmt"
	"math/bits"
)

// HilbertXY2D maps cell (x, y) on an n×n grid (n a power of two) to its
// distance along the Hilbert curve. Classic quadrant-rotation formulation.
func HilbertXY2D(n, x, y int) int {
	d := 0
	for s := n / 2; s > 0; s /= 2 {
		rx, ry := 0, 0
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertD2XY inverts HilbertXY2D: it maps curve distance d on an n×n grid
// to cell coordinates.
func HilbertD2XY(n, d int) (x, y int) {
	t := d
	for s := 1; s < n; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/reflects the quadrant as the curve recursion demands.
func hilbertRot(s, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Hilbert is an Indexer that orders the cells of a W×H grid by their
// position along the Hilbert curve of the enclosing power-of-two square,
// with ranks compacted so that indices are exactly 0..W*H−1. Lookups in
// both directions are O(1) table reads.
type Hilbert struct {
	w, h      int
	cellToIdx []int32 // [y*w+x] -> compact curve rank
	idxToCell []int32 // rank -> y*w+x
}

// NewHilbert builds the Hilbert indexer for a w×h grid.
func NewHilbert(w, h int) (*Hilbert, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sfc: invalid hilbert grid %dx%d", w, h)
	}
	return newCompacted(w, h, true), nil
}

// NewMorton builds a Morton (Z-order) indexer for a w×h grid, compacted the
// same way as Hilbert. Morton preserves multi-dimensional locality on
// average but has long jumps at power-of-two boundaries.
func NewMorton(w, h int) (*Morton, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sfc: invalid morton grid %dx%d", w, h)
	}
	return &Morton{Hilbert: *newCompacted(w, h, false)}, nil
}

// newCompacted walks the enclosing square's curve in rank order and assigns
// consecutive compact indices to the cells inside the rectangle, via the
// shared buildCompactTables walker. The 2-D Hilbert curve itself stays the
// classic quadrant-rotation formulation (HilbertD2XY) — only the table
// compaction is shared with 3-D.
func newCompacted(w, h int, hilbert bool) *Hilbert {
	side := SideForGrid(w, h)
	hx := &Hilbert{w: w, h: h}
	hx.cellToIdx, hx.idxToCell = buildCompactTables(w*h, uint64(side)*uint64(side),
		func(rank uint64) (int32, bool) {
			var x, y int
			if hilbert {
				x, y = HilbertD2XY(side, int(rank))
			} else {
				x, y = mortonD2XY(int(rank))
			}
			if x >= w || y >= h {
				return 0, false
			}
			return int32(y*w + x), true
		})
	return hx
}

// Index implements Indexer.
func (hx *Hilbert) Index(x, y int) int { return int(hx.cellToIdx[y*hx.w+x]) }

// Coords implements Indexer.
func (hx *Hilbert) Coords(idx int) (int, int) {
	c := int(hx.idxToCell[idx])
	return c % hx.w, c / hx.w
}

// Size implements Indexer.
func (hx *Hilbert) Size() (int, int) { return hx.w, hx.h }

// Name implements Indexer.
func (hx *Hilbert) Name() string { return SchemeHilbert }

// Morton is the Z-order counterpart of Hilbert, sharing its compacted-table
// machinery.
type Morton struct{ Hilbert }

// Name implements Indexer.
func (m *Morton) Name() string { return SchemeMorton }

// mortonD2XY de-interleaves the bits of d into (x, y).
func mortonD2XY(d int) (x, y int) {
	u := uint64(d)
	x = int(compactBits(u))
	y = int(compactBits(u >> 1))
	return x, y
}

// MortonXY2D interleaves the bits of x and y (x in the even positions).
func MortonXY2D(x, y int) int {
	return int(spreadBits(uint64(x)) | spreadBits(uint64(y))<<1)
}

// spreadBits inserts a zero between each of the low 32 bits of v.
func spreadBits(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compactBits inverts spreadBits (keeps the even-position bits of v).
func compactBits(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// SideForGrid returns the power-of-two side of the enclosing square used by
// the compacted curves for a w×h grid.
func SideForGrid(w, h int) int {
	m := w
	if h > m {
		m = h
	}
	if m <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(m-1))
}
