package sfc

// Dimension-independent index-construction machinery shared by the 2-D and
// 3-D curve indexers. Two pieces recur in every scheme:
//
//   - table compaction: Hilbert and Morton curves are defined on enclosing
//     power-of-two boxes; embedding a general W×H(×D) grid means walking the
//     box curve in rank order and assigning consecutive compact indices to
//     the cells that fall inside the grid, and
//   - the boustrophedon row formula: snake ordering in any dimension is
//     "row-major over rows, with x reversed on odd rows" once the rows are
//     themselves linearised (y in 2-D; the z-alternating z·H+y strip in 3-D).
//
// Keeping one implementation of each here means the 2-D and 3-D indexers
// cannot drift apart; the property tests cross-check them against the
// closed-form definitions.

// buildCompactTables walks `total` curve ranks of an enclosing power-of-two
// box. cellAt maps a curve rank to the row-major cell number of the cell at
// that rank, or ok=false when the rank falls outside the target grid. Cells
// are assigned consecutive compact indices in rank order; the returned
// tables are mutually inverse bijections over 0..numCells−1.
func buildCompactTables(numCells int, total uint64, cellAt func(rank uint64) (cell int32, ok bool)) (cellToIdx, idxToCell []int32) {
	cellToIdx = make([]int32, numCells)
	idxToCell = make([]int32, numCells)
	next := int32(0)
	for rank := uint64(0); rank < total; rank++ {
		cell, ok := cellAt(rank)
		if !ok {
			continue
		}
		cellToIdx[cell] = next
		idxToCell[next] = cell
		next++
	}
	return cellToIdx, idxToCell
}

// snakeRowIndex is the shared boustrophedon formula: cells are ordered row
// by row (rows of width w, already linearised by the caller), with the x
// direction reversed on odd rows so consecutive indices stay adjacent.
func snakeRowIndex(w, row, x int) int {
	if row%2 == 1 {
		x = w - 1 - x
	}
	return row*w + x
}

// snakeRowCoords inverts snakeRowIndex.
func snakeRowCoords(w, idx int) (row, x int) {
	row = idx / w
	x = idx % w
	if row%2 == 1 {
		x = w - 1 - x
	}
	return row, x
}
