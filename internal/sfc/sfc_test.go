package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var allSchemes = []string{SchemeHilbert, SchemeSnake, SchemeRowMajor, SchemeMorton}

var testGrids = [][2]int{
	{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {64, 64},
	{8, 4}, {4, 8}, {128, 64}, {16, 3}, {3, 16}, {5, 7}, {1, 9},
}

func TestIndexerBijection(t *testing.T) {
	for _, scheme := range allSchemes {
		for _, g := range testGrids {
			w, h := g[0], g[1]
			ix, err := New(scheme, w, h)
			if err != nil {
				t.Fatalf("New(%s, %d, %d): %v", scheme, w, h, err)
			}
			seen := make([]bool, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					idx := ix.Index(x, y)
					if idx < 0 || idx >= w*h {
						t.Fatalf("%s %dx%d: Index(%d,%d) = %d out of range", scheme, w, h, x, y, idx)
					}
					if seen[idx] {
						t.Fatalf("%s %dx%d: index %d assigned twice", scheme, w, h, idx)
					}
					seen[idx] = true
					rx, ry := ix.Coords(idx)
					if rx != x || ry != y {
						t.Fatalf("%s %dx%d: Coords(Index(%d,%d)) = (%d,%d)", scheme, w, h, x, y, rx, ry)
					}
				}
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining property: consecutive Hilbert indices on a power-of-two
	// square are 4-neighbour adjacent cells.
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		px, py := HilbertD2XY(n, 0)
		for d := 1; d < n*n; d++ {
			x, y := HilbertD2XY(n, d)
			dist := abs(x-px) + abs(y-py)
			if dist != 1 {
				t.Fatalf("n=%d: cells at d=%d,%d are (%d,%d),(%d,%d): manhattan %d, want 1",
					n, d-1, d, px, py, x, y, dist)
			}
			px, py = x, y
		}
	}
}

func TestSnakeAdjacency(t *testing.T) {
	// Snake order is also a Hamiltonian path on the grid graph.
	for _, g := range testGrids {
		w, h := g[0], g[1]
		if w*h == 1 {
			continue
		}
		s := Snake{W: w, H: h}
		px, py := s.Coords(0)
		for d := 1; d < w*h; d++ {
			x, y := s.Coords(d)
			if abs(x-px)+abs(y-py) != 1 {
				t.Fatalf("snake %dx%d: jump between d=%d and d=%d", w, h, d-1, d)
			}
			px, py = x, y
		}
	}
}

func TestHilbertXY2DRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9)) // 2..512
		x, y := rng.Intn(n), rng.Intn(n)
		d := HilbertXY2D(n, x, y)
		rx, ry := HilbertD2XY(n, d)
		return rx == x && ry == y && d >= 0 && d < n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHilbertMatchesTableImplementation(t *testing.T) {
	// For square power-of-two grids the compacted-table indexer must agree
	// with the direct bit-twiddling functions.
	for _, n := range []int{2, 4, 16, 64} {
		hx, err := NewHilbert(n, n)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if got, want := hx.Index(x, y), HilbertXY2D(n, x, y); got != want {
					t.Fatalf("n=%d (%d,%d): table %d != direct %d", n, x, y, got, want)
				}
			}
		}
	}
}

func TestHilbertRectCompactionPreservesOrder(t *testing.T) {
	// Compacted rectangle indices must be ordered consistently with the
	// enclosing square's curve ranks.
	w, h := 12, 5
	hx, err := NewHilbert(w, h)
	if err != nil {
		t.Fatal(err)
	}
	side := SideForGrid(w, h)
	type cell struct{ rank, idx int }
	var cells []cell
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cells = append(cells, cell{HilbertXY2D(side, x, y), hx.Index(x, y)})
		}
	}
	for i := range cells {
		for j := range cells {
			if (cells[i].rank < cells[j].rank) != (cells[i].idx < cells[j].idx) && cells[i].rank != cells[j].rank {
				t.Fatalf("compaction broke order: ranks %d,%d idx %d,%d",
					cells[i].rank, cells[j].rank, cells[i].idx, cells[j].idx)
			}
		}
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y uint16) bool {
		d := MortonXY2D(int(x), int(y))
		rx, ry := mortonD2XY(d)
		return rx == int(x) && ry == int(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNDHilbertMatches2D(t *testing.T) {
	// Skilling's n-D algorithm restricted to 2-D must produce a curve with
	// the same locality structure; we require exact agreement up to the
	// standard orientation, so compare via round-trip + adjacency + span.
	const b = 5 // 32x32
	n := 1 << b
	seen := make(map[uint64]bool)
	var px, py uint32
	for d := uint64(0); d < uint64(n*n); d++ {
		x := make([]uint32, 2)
		HilbertIndexToAxes(d, b, x)
		if x[0] >= uint32(n) || x[1] >= uint32(n) {
			t.Fatalf("d=%d out of range coords %v", d, x)
		}
		if back := HilbertAxesToIndex(x, b); back != d {
			t.Fatalf("round trip failed: d=%d coords=%v back=%d", d, x, back)
		}
		if seen[uint64(x[0])<<32|uint64(x[1])] {
			t.Fatalf("duplicate coords at d=%d: %v", d, x)
		}
		seen[uint64(x[0])<<32|uint64(x[1])] = true
		if d > 0 {
			dist := absU(x[0], px) + absU(x[1], py)
			if dist != 1 {
				t.Fatalf("nd curve not adjacent at d=%d: (%d,%d)->(%d,%d)", d, px, py, x[0], x[1])
			}
		}
		px, py = x[0], x[1]
	}
}

func TestNDHilbert3D(t *testing.T) {
	const b = 3 // 8x8x8
	n := 1 << b
	total := uint64(n * n * n)
	var prev [3]uint32
	for d := uint64(0); d < total; d++ {
		x := make([]uint32, 3)
		HilbertIndexToAxes(d, b, x)
		if back := HilbertAxesToIndex(x, b); back != d {
			t.Fatalf("3d round trip failed at d=%d", d)
		}
		if d > 0 {
			dist := absU(x[0], prev[0]) + absU(x[1], prev[1]) + absU(x[2], prev[2])
			if dist != 1 {
				t.Fatalf("3d curve not adjacent at d=%d", d)
			}
		}
		copy(prev[:], x)
	}
}

func TestLocalityHilbertBeatsSnake(t *testing.T) {
	// Quantify the paper's Section 5.1 claim: for a contiguous index range
	// (one processor's share), the Hilbert subdomain has a smaller bounding
	// box perimeter than the snake subdomain (high aspect-ratio strips).
	const n = 64
	const ranks = 16
	share := n * n / ranks
	hil := MustNew(SchemeHilbert, n, n)
	snk := MustNew(SchemeSnake, n, n)
	perim := func(ix Indexer, lo, hi int) int {
		minX, minY, maxX, maxY := n, n, -1, -1
		for d := lo; d < hi; d++ {
			x, y := ix.Coords(d)
			if x < minX {
				minX = x
			}
			if y < minY {
				minY = y
			}
			if x > maxX {
				maxX = x
			}
			if y > maxY {
				maxY = y
			}
		}
		return 2 * ((maxX - minX + 1) + (maxY - minY + 1))
	}
	hTot, sTot := 0, 0
	for r := 0; r < ranks; r++ {
		hTot += perim(hil, r*share, (r+1)*share)
		sTot += perim(snk, r*share, (r+1)*share)
	}
	if hTot >= sTot {
		t.Errorf("hilbert total perimeter %d should beat snake %d", hTot, sTot)
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(SchemeHilbert, 0, 4); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := New("zigzag", 4, 4); err == nil {
		t.Error("expected error for unknown scheme")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on error")
		}
	}()
	MustNew("zigzag", 4, 4)
}

func TestSideForGrid(t *testing.T) {
	cases := []struct{ w, h, want int }{
		{1, 1, 1}, {2, 2, 2}, {3, 2, 4}, {128, 64, 128}, {129, 1, 256}, {512, 256, 512},
	}
	for _, c := range cases {
		if got := SideForGrid(c.w, c.h); got != c.want {
			t.Errorf("SideForGrid(%d,%d) = %d, want %d", c.w, c.h, got, c.want)
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func absU(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}
