// Package sfc provides the space-filling-curve index schemes the paper uses
// to linearise the two-dimensional cell space: Hilbert indexing (the paper's
// proposal), snake-like (boustrophedon) indexing (the paper's comparison
// baseline), plus row-major and Morton orders as additional baselines.
//
// An Indexer maps cell coordinates on a 2^k × 2^k (or general rectangular)
// grid to a one-dimensional index and back. Hilbert indexing preserves
// spatial proximity along both dimensions: cells with nearby indices are
// nearby in space, which is what makes index-sorted particle subdomains
// compact and cheap to communicate with their aligned mesh subdomains.
package sfc

import "fmt"

// Indexer linearises a W×H grid of cells. Implementations must be
// bijections from {0..W-1}×{0..H-1} onto {0..W*H-1}.
type Indexer interface {
	// Index returns the 1-D index of cell (x, y).
	Index(x, y int) int
	// Coords inverts Index.
	Coords(idx int) (x, y int)
	// Size returns the grid extents (W, H).
	Size() (w, h int)
	// Name identifies the scheme ("hilbert", "snake", ...).
	Name() string
}

// Scheme names accepted by New.
const (
	SchemeHilbert  = "hilbert"
	SchemeSnake    = "snake"
	SchemeRowMajor = "rowmajor"
	SchemeMorton   = "morton"
)

// New constructs the named Indexer for a w×h grid. Hilbert and Morton
// require power-of-two extents and are generalised to rectangles by
// embedding in the enclosing square (still a bijection onto 0..w*h-1 after
// rank compaction; see hilbertRect).
func New(scheme string, w, h int) (Indexer, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sfc: invalid grid %dx%d", w, h)
	}
	switch scheme {
	case SchemeHilbert:
		return NewHilbert(w, h)
	case SchemeSnake:
		return Snake{W: w, H: h}, nil
	case SchemeRowMajor:
		return RowMajor{W: w, H: h}, nil
	case SchemeMorton:
		return NewMorton(w, h)
	default:
		return nil, fmt.Errorf("sfc: unknown scheme %q", scheme)
	}
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(scheme string, w, h int) Indexer {
	ix, err := New(scheme, w, h)
	if err != nil {
		panic(err)
	}
	return ix
}

// RowMajor orders cells row by row, left to right in every row. Indices are
// close along a row but distance-H apart vertically.
type RowMajor struct{ W, H int }

// Index implements Indexer.
func (r RowMajor) Index(x, y int) int { return y*r.W + x }

// Coords implements Indexer.
func (r RowMajor) Coords(idx int) (int, int) { return idx % r.W, idx / r.W }

// Size implements Indexer.
func (r RowMajor) Size() (int, int) { return r.W, r.H }

// Name implements Indexer.
func (r RowMajor) Name() string { return SchemeRowMajor }

// Snake orders cells row by row, alternating direction every row
// (boustrophedon). Consecutive indices are always spatially adjacent, but
// the curve only preserves proximity along one dimension: index distance
// between vertical neighbours is still Θ(W). This is the "snakelike
// indexing" the paper compares Hilbert indexing against.
type Snake struct{ W, H int }

// Index implements Indexer (shared boustrophedon formula; rows are y).
func (s Snake) Index(x, y int) int { return snakeRowIndex(s.W, y, x) }

// Coords implements Indexer.
func (s Snake) Coords(idx int) (int, int) {
	y, x := snakeRowCoords(s.W, idx)
	return x, y
}

// Size implements Indexer.
func (s Snake) Size() (int, int) { return s.W, s.H }

// Name implements Indexer.
func (s Snake) Name() string { return SchemeSnake }
