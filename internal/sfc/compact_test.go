package sfc

import "testing"

// TestSnakeSharedFormulaMatchesClosedForm pins the shared boustrophedon
// formula to the closed-form 2-D definition the paper describes, across odd
// and even extents.
func TestSnakeSharedFormulaMatchesClosedForm(t *testing.T) {
	for _, wh := range [][2]int{{1, 1}, {4, 4}, {5, 3}, {8, 7}, {3, 8}} {
		w, h := wh[0], wh[1]
		s := Snake{W: w, H: h}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := y*w + x
				if y%2 == 1 {
					want = y*w + (w - 1 - x)
				}
				if got := s.Index(x, y); got != want {
					t.Fatalf("snake %dx%d: Index(%d,%d)=%d want %d", w, h, x, y, got, want)
				}
				gx, gy := s.Coords(s.Index(x, y))
				if gx != x || gy != y {
					t.Fatalf("snake %dx%d: Coords round-trip (%d,%d)→(%d,%d)", w, h, x, y, gx, gy)
				}
			}
		}
	}
}

// TestSnake3DegeneratesToSnake2D: with depth 1 (and even H so the plane-seam
// reversal is a no-op) the 3-D snake must coincide with the 2-D snake —
// the cross-dimension property that one shared formula guarantees.
func TestSnake3DegeneratesToSnake2D(t *testing.T) {
	for _, wh := range [][2]int{{4, 4}, {6, 2}, {7, 4}} {
		w, h := wh[0], wh[1]
		s2 := Snake{W: w, H: h}
		s3 := Snake3{W: w, H: h, D: 1}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if s2.Index(x, y) != s3.Index(x, y, 0) {
					t.Fatalf("%dx%d: snake2(%d,%d)=%d snake3=%d", w, h, x, y, s2.Index(x, y), s3.Index(x, y, 0))
				}
			}
		}
	}
}

// bijective checks an index set covers 0..n−1 exactly once.
func bijective(t *testing.T, name string, n int, idx func(cell int) int) {
	t.Helper()
	seen := make([]bool, n)
	for c := 0; c < n; c++ {
		i := idx(c)
		if i < 0 || i >= n {
			t.Fatalf("%s: index %d out of range [0,%d)", name, i, n)
		}
		if seen[i] {
			t.Fatalf("%s: index %d assigned twice", name, i)
		}
		seen[i] = true
	}
}

// TestCompactTablesBijective2D3D: the shared table builder must produce a
// bijection for every scheme in both dimensions, including non-power-of-two
// rectangles/boxes (the compaction case).
func TestCompactTablesBijective2D3D(t *testing.T) {
	for _, scheme := range []string{SchemeHilbert, SchemeMorton} {
		ix := MustNew(scheme, 13, 6)
		bijective(t, scheme+"-2d", 13*6, func(cell int) int {
			return ix.Index(cell%13, cell/13)
		})
		for cell := 0; cell < 13*6; cell++ {
			x, y := ix.Coords(ix.Index(cell%13, cell/13))
			if x != cell%13 || y != cell/13 {
				t.Fatalf("%s-2d: round-trip failed at cell %d", scheme, cell)
			}
		}

		ix3 := MustNew3(scheme, 5, 6, 3)
		bijective(t, scheme+"-3d", 5*6*3, func(cell int) int {
			return ix3.Index(cell%5, (cell/5)%6, cell/30)
		})
		for cell := 0; cell < 5*6*3; cell++ {
			x, y, z := ix3.Coords(ix3.Index(cell%5, (cell/5)%6, cell/30))
			if x != cell%5 || y != (cell/5)%6 || z != cell/30 {
				t.Fatalf("%s-3d: round-trip failed at cell %d", scheme, cell)
			}
		}
	}
}

// TestCompactedHilbert2DMatchesCurveWalk pins the compacted 2-D Hilbert
// table to a direct walk of the quadrant-rotation curve — the table builder
// must not change which curve the 2-D indexer exposes (goldens depend on
// it).
func TestCompactedHilbert2DMatchesCurveWalk(t *testing.T) {
	w, h := 11, 5
	ix := MustNew(SchemeHilbert, w, h)
	side := SideForGrid(w, h)
	next := 0
	for d := 0; d < side*side; d++ {
		x, y := HilbertD2XY(side, d)
		if x >= w || y >= h {
			continue
		}
		if got := ix.Index(x, y); got != next {
			t.Fatalf("compacted hilbert: Index(%d,%d)=%d want %d", x, y, got, next)
		}
		next++
	}
	if next != w*h {
		t.Fatalf("walked %d cells, want %d", next, w*h)
	}
}
