package sfc

import "fmt"

// The paper notes that its indexing scheme "can be generalized to
// n-dimensions and used to convert an n-dimensional index into a
// one-dimensional index such that proximity in the n-dimensions is
// generally maintained". This file provides the three-dimensional
// instantiation used by the 3-D partitioning analysis: Hilbert (via
// Skilling's algorithm in nd.go), snakelike, row-major and Morton orders
// over a W×H×D cell box.

// Indexer3 linearises a W×H×D grid of cells; a bijection onto 0..W*H*D−1.
type Indexer3 interface {
	// Index returns the 1-D index of cell (x, y, z).
	Index(x, y, z int) int
	// Coords inverts Index.
	Coords(idx int) (x, y, z int)
	// Size returns the box extents.
	Size() (w, h, d int)
	// Name identifies the scheme.
	Name() string
}

// New3 constructs the named 3-D Indexer for a w×h×d box. Hilbert and
// Morton embed the box in the enclosing power-of-two cube and compact the
// curve ranks, exactly like their 2-D counterparts.
func New3(scheme string, w, h, d int) (Indexer3, error) {
	if w <= 0 || h <= 0 || d <= 0 {
		return nil, fmt.Errorf("sfc: invalid 3-d box %dx%dx%d", w, h, d)
	}
	switch scheme {
	case SchemeHilbert:
		return newCompacted3(w, h, d, curveHilbert3), nil
	case SchemeMorton:
		return newCompacted3(w, h, d, curveMorton3), nil
	case SchemeSnake:
		return Snake3{W: w, H: h, D: d}, nil
	case SchemeRowMajor:
		return RowMajor3{W: w, H: h, D: d}, nil
	default:
		return nil, fmt.Errorf("sfc: unknown scheme %q", scheme)
	}
}

// MustNew3 is New3 for known-good arguments; it panics on error.
func MustNew3(scheme string, w, h, d int) Indexer3 {
	ix, err := New3(scheme, w, h, d)
	if err != nil {
		panic(err)
	}
	return ix
}

// RowMajor3 orders cells x-fastest, then y, then z.
type RowMajor3 struct{ W, H, D int }

// Index implements Indexer3.
func (r RowMajor3) Index(x, y, z int) int { return (z*r.H+y)*r.W + x }

// Coords implements Indexer3.
func (r RowMajor3) Coords(idx int) (int, int, int) {
	x := idx % r.W
	y := (idx / r.W) % r.H
	z := idx / (r.W * r.H)
	return x, y, z
}

// Size implements Indexer3.
func (r RowMajor3) Size() (int, int, int) { return r.W, r.H, r.D }

// Name implements Indexer3.
func (r RowMajor3) Name() string { return SchemeRowMajor }

// Snake3 is the boustrophedon order in three dimensions: x alternates per
// row, y alternates per plane — a Hamiltonian path on the box grid, but
// with locality in essentially one dimension only.
type Snake3 struct{ W, H, D int }

// Index implements Indexer3. The x direction alternates with the global
// row parity (z·H + yy) so the path stays continuous across plane seams
// even for odd H; the per-row formula is the shared snakeRowIndex.
func (s Snake3) Index(x, y, z int) int {
	yy := y
	if z%2 == 1 {
		yy = s.H - 1 - y
	}
	return snakeRowIndex(s.W, z*s.H+yy, x)
}

// Coords implements Indexer3.
func (s Snake3) Coords(idx int) (int, int, int) {
	row, x := snakeRowCoords(s.W, idx)
	z := row / s.H
	yy := row % s.H
	y := yy
	if z%2 == 1 {
		y = s.H - 1 - yy
	}
	return x, y, z
}

// Size implements Indexer3.
func (s Snake3) Size() (int, int, int) { return s.W, s.H, s.D }

// Name implements Indexer3.
func (s Snake3) Name() string { return SchemeSnake }

// compacted3 is the table-compacted curve over the enclosing cube.
type compacted3 struct {
	w, h, d   int
	name      string
	cellToIdx []int32
	idxToCell []int32
}

type curveKind3 int

const (
	curveHilbert3 curveKind3 = iota
	curveMorton3
)

func newCompacted3(w, h, d int, kind curveKind3) *compacted3 {
	side := SideForGrid(SideForGrid(w, h), d) // max extent rounded up to pow2
	bits := 0
	for 1<<bits < side {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	c := &compacted3{w: w, h: h, d: d}
	switch kind {
	case curveHilbert3:
		c.name = SchemeHilbert
	case curveMorton3:
		c.name = SchemeMorton
	}
	total := uint64(1) << uint(3*bits)
	coords := make([]uint32, 3)
	c.cellToIdx, c.idxToCell = buildCompactTables(w*h*d, total,
		func(rank uint64) (int32, bool) {
			var x, y, z int
			if kind == curveHilbert3 {
				HilbertIndexToAxes(rank, bits, coords)
				x, y, z = int(coords[0]), int(coords[1]), int(coords[2])
			} else {
				x = int(compact3Bits(rank))
				y = int(compact3Bits(rank >> 1))
				z = int(compact3Bits(rank >> 2))
			}
			if x >= w || y >= h || z >= d {
				return 0, false
			}
			return int32((z*h+y)*w + x), true
		})
	return c
}

// compact3Bits keeps every third bit of v (positions 0, 3, 6, …), the
// inverse of 3-way Morton interleaving for one dimension.
func compact3Bits(v uint64) uint64 {
	var out uint64
	for b := 0; b < 21; b++ {
		out |= (v >> uint(3*b) & 1) << uint(b)
	}
	return out
}

// Index implements Indexer3.
func (c *compacted3) Index(x, y, z int) int { return int(c.cellToIdx[(z*c.h+y)*c.w+x]) }

// Coords implements Indexer3.
func (c *compacted3) Coords(idx int) (int, int, int) {
	cell := int(c.idxToCell[idx])
	x := cell % c.w
	y := (cell / c.w) % c.h
	z := cell / (c.w * c.h)
	return x, y, z
}

// Size implements Indexer3.
func (c *compacted3) Size() (int, int, int) { return c.w, c.h, c.d }

// Name implements Indexer3.
func (c *compacted3) Name() string { return c.name }
