package policy

import "fmt"

// Split selects how the SFC-sorted particle order is cut into P chunks.
type Split int

const (
	// SplitEqualCount cuts at equal particle counts — the paper's scheme
	// and the default everywhere.
	SplitEqualCount Split = iota
	// SplitCostWeighted cuts at equal cumulative per-cell cost, using the
	// cost ledger's weight estimates.
	SplitCostWeighted
)

// Movement selects how particles reach their new owners.
type Movement int

const (
	// MovementLagrangian keeps particles aligned with the SFC split of the
	// particle array (the paper's direct Lagrangian movement).
	MovementLagrangian Movement = iota
	// MovementEulerian sends every particle to the rank owning its cell,
	// aligning the particle array with the mesh BLOCK distribution
	// (Sauget & Latu's Eulerian alternative; wins when particles cluster
	// where their fields are).
	MovementEulerian
)

// Strategy is one point of the {split} × {movement} layout space a
// Decision can name. The zero value — equal-count Lagrangian — is the
// paper's scheme and the byte-identical default.
type Strategy struct {
	Split    Split
	Movement Movement
}

// Named strategies. Eulerian movement realigns particles with the mesh
// regardless of splitter, so it is exposed as a single strategy.
var (
	EqualCount   = Strategy{}
	CostWeighted = Strategy{Split: SplitCostWeighted}
	Eulerian     = Strategy{Movement: MovementEulerian}
)

// String implements fmt.Stringer with the flag-value names.
func (s Strategy) String() string {
	if s.Movement == MovementEulerian {
		return "eulerian"
	}
	if s.Split == SplitCostWeighted {
		return "cost-weighted"
	}
	return "equal-count"
}

// ParseStrategy inverts String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "equal-count", "":
		return EqualCount, nil
	case "cost-weighted":
		return CostWeighted, nil
	case "eulerian":
		return Eulerian, nil
	}
	return Strategy{}, fmt.Errorf("policy: unknown strategy %q (want equal-count|cost-weighted|eulerian)", name)
}

// CostWeightUser is the optional interface a Policy implements to declare
// whether its decisions can ever name the cost-weighted split. The
// pipeline skips the per-iteration cost-ledger observation — real
// wall-clock work per particle, though never simulated time — for policies
// that answer false. Policies that do not implement it are observed
// conservatively: an unknown Decide may ask for cost weights at any time.
type CostWeightUser interface {
	UsesCostWeights() bool
}

// UsesCostWeights implements CostWeightUser: Static never redistributes.
func (Static) UsesCostWeights() bool { return false }

// UsesCostWeights implements CostWeightUser.
func (p *Periodic) UsesCostWeights() bool { return p.Strategy.Split == SplitCostWeighted }

// UsesCostWeights implements CostWeightUser.
func (d *Dynamic) UsesCostWeights() bool { return d.Strategy.Split == SplitCostWeighted }

// WithStrategy decorates a Factory so every policy it builds decides the
// fixed strategy s when it fires. Policies that do not expose SetStrategy
// (Static never fires; Adaptive chooses for itself) pass through unchanged.
func WithStrategy(f Factory, s Strategy) Factory {
	return func() Policy {
		p := f()
		if fixed, ok := p.(interface{ SetStrategy(Strategy) }); ok {
			fixed.SetStrategy(s)
		}
		return p
	}
}
