// Checkpoint support: policies expose their mutable decision state as a
// flat float vector so the restart image preserves the balancer's memory
// (Sauget & Latu's observation that recovery must not reset the policy).
// Configuration fields (K, Strategy, the chooser) are NOT part of the
// state — they are rebuilt from the run configuration on restore, and a
// shard written under one policy configuration is refused by the
// pipeline's signature check before RestoreState is ever called.

package policy

import "fmt"

// StateCodec is the optional interface a Policy implements to make its
// mutable decision state checkpointable. AppendState appends the state to
// dst and returns it; RestoreState replaces the current state with a
// vector previously produced by AppendState on an identically configured
// policy. Policies without the interface carry no state across a restart.
type StateCodec interface {
	AppendState(dst []float64) []float64
	RestoreState(src []float64) error
}

// AppendState implements StateCodec: Static has no state.
func (Static) AppendState(dst []float64) []float64 { return dst }

// RestoreState implements StateCodec.
func (Static) RestoreState(src []float64) error {
	if len(src) != 0 {
		return fmt.Errorf("policy: static restore of %d values (want 0)", len(src))
	}
	return nil
}

// AppendState implements StateCodec: Periodic's decisions depend only on
// the iteration number, so there is no mutable state.
func (p *Periodic) AppendState(dst []float64) []float64 { return dst }

// RestoreState implements StateCodec.
func (p *Periodic) RestoreState(src []float64) error {
	if len(src) != 0 {
		return fmt.Errorf("policy: periodic restore of %d values (want 0)", len(src))
	}
	return nil
}

// dynamicStateLen is Dynamic's state width: i0, t0, haveT0, tRedist.
const dynamicStateLen = 4

// AppendState implements StateCodec: the SAR baseline and the measured
// redistribution cost.
func (d *Dynamic) AppendState(dst []float64) []float64 {
	have := 0.0
	if d.haveT0 {
		have = 1
	}
	return append(dst, float64(d.i0), d.t0, have, d.tRedist)
}

// RestoreState implements StateCodec.
func (d *Dynamic) RestoreState(src []float64) error {
	if len(src) != dynamicStateLen {
		return fmt.Errorf("policy: dynamic restore of %d values (want %d)", len(src), dynamicStateLen)
	}
	d.i0 = int(src[0])
	d.t0 = src[1]
	d.haveT0 = src[2] != 0
	d.tRedist = src[3]
	return nil
}

// adaptiveStateLen is Adaptive's own state width (the inner trigger's
// state follows): committed and pending strategy coordinates.
const adaptiveStateLen = 4

// AppendState implements StateCodec: the committed/pending strategies
// followed by the inner when-trigger's state (when it has any).
func (a *Adaptive) AppendState(dst []float64) []float64 {
	dst = append(dst,
		float64(a.committed.Split), float64(a.committed.Movement),
		float64(a.pending.Split), float64(a.pending.Movement))
	if sc, ok := a.When.(StateCodec); ok {
		dst = sc.AppendState(dst)
	}
	return dst
}

// RestoreState implements StateCodec.
func (a *Adaptive) RestoreState(src []float64) error {
	if len(src) < adaptiveStateLen {
		return fmt.Errorf("policy: adaptive restore of %d values (want >= %d)", len(src), adaptiveStateLen)
	}
	a.committed = Strategy{Split: Split(src[0]), Movement: Movement(src[1])}
	a.pending = Strategy{Split: Split(src[2]), Movement: Movement(src[3])}
	rest := src[adaptiveStateLen:]
	if sc, ok := a.When.(StateCodec); ok {
		return sc.RestoreState(rest)
	}
	if len(rest) != 0 {
		return fmt.Errorf("policy: adaptive restore left %d values for a stateless trigger", len(rest))
	}
	return nil
}
