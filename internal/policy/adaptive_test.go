package policy

import "testing"

// TestStrategyStringParseRoundTrip: every named strategy survives the
// String/ParseStrategy round trip, the empty name is equal-count, and
// unknown names error.
func TestStrategyStringParseRoundTrip(t *testing.T) {
	for _, s := range []Strategy{EqualCount, CostWeighted, Eulerian} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v: got %v, err %v", s, got, err)
		}
	}
	if s, err := ParseStrategy(""); err != nil || s != EqualCount {
		t.Errorf("empty name: got %v, err %v", s, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestWithStrategyFixesDecision: a WithStrategy-decorated Periodic decides
// the fixed strategy on every firing; Static passes through unchanged.
func TestWithStrategyFixesDecision(t *testing.T) {
	p := WithStrategy(NewPeriodic(2), CostWeighted)()
	fired := 0
	for i := 0; i < 10; i++ {
		d := p.Decide(i, 1.0)
		if d.Redistribute {
			fired++
			if d.Strategy != CostWeighted {
				t.Fatalf("iter %d decided %v, want cost-weighted", i, d.Strategy)
			}
			p.NotifyRedistribution(i, 0.1)
		}
	}
	if fired == 0 {
		t.Fatal("decorated periodic never fired")
	}

	dyn := WithStrategy(NewDynamic(), Eulerian)().(*Dynamic)
	if dyn.Strategy != Eulerian {
		t.Errorf("WithStrategy did not set Dynamic's strategy")
	}

	if _, ok := WithStrategy(NewStatic(), CostWeighted)().(Static); !ok {
		t.Error("Static did not pass through WithStrategy")
	}
}

// TestDefaultDecisionsAreEqualCount: undecorated policies decide the
// zero-value strategy — the byte-identical default path.
func TestDefaultDecisionsAreEqualCount(t *testing.T) {
	p := NewPeriodic(1)()
	d := p.Decide(0, 1.0)
	if !d.Redistribute || d.Strategy != EqualCount {
		t.Fatalf("default periodic decision %+v, want equal-count rebalance", d)
	}
}

// TestAdaptiveChoosesViaChooser: the inner trigger gates the timing, the
// chooser picks the strategy, and a successful notification commits it.
func TestAdaptiveChoosesViaChooser(t *testing.T) {
	a := NewAdaptiveEvery(3)().(*Adaptive)
	var sawCurrent []Strategy
	a.SetChooser(func(iter int, current Strategy) Strategy {
		sawCurrent = append(sawCurrent, current)
		return CostWeighted
	})

	if d := a.Decide(0, 1.0); d.Redistribute {
		t.Fatal("adaptive fired off the periodic cadence")
	}
	d := a.Decide(2, 1.0)
	if !d.Redistribute || d.Strategy != CostWeighted {
		t.Fatalf("decision %+v, want cost-weighted rebalance", d)
	}
	if a.Strategy() != EqualCount {
		t.Fatal("strategy committed before NotifyRedistribution")
	}
	a.NotifyRedistribution(2, 0.5)
	if a.Strategy() != CostWeighted {
		t.Fatal("strategy not committed after successful redistribution")
	}
	if len(sawCurrent) != 1 || sawCurrent[0] != EqualCount {
		t.Errorf("chooser saw current %v, want one equal-count call", sawCurrent)
	}

	// The next firing presents the committed strategy as current.
	a.Decide(5, 1.0)
	if len(sawCurrent) != 2 || sawCurrent[1] != CostWeighted {
		t.Errorf("second chooser call saw %v, want cost-weighted", sawCurrent)
	}
}

// TestAdaptiveRollbackWithoutNotify: when a decided rebuild fails (the
// pipeline rolls back and does NOT notify), the pending strategy is
// discarded: the committed strategy and the retry cadence are unchanged,
// and the next successful attempt commits its own fresh choice.
func TestAdaptiveRollbackWithoutNotify(t *testing.T) {
	a := NewAdaptiveEvery(2)().(*Adaptive)
	choice := CostWeighted
	a.SetChooser(func(int, Strategy) Strategy { return choice })

	d := a.Decide(1, 1.0)
	if !d.Redistribute || d.Strategy != CostWeighted {
		t.Fatalf("decision %+v", d)
	}
	// Rebuild failed: no notification. Nothing may have committed.
	if a.Strategy() != EqualCount {
		t.Fatal("failed attempt leaked into committed strategy")
	}

	// Trigger retries on cadence, chooser now picks differently.
	choice = Eulerian
	d = a.Decide(3, 1.0)
	if !d.Redistribute || d.Strategy != Eulerian {
		t.Fatalf("retry decision %+v, want eulerian", d)
	}
	a.NotifyRedistribution(3, 0.5)
	if a.Strategy() != Eulerian {
		t.Fatal("retry's choice not committed")
	}
}

// TestAdaptiveWithoutChooserKeepsCurrent: with no chooser installed the
// adaptive policy behaves like its inner trigger with the committed
// (initially equal-count) strategy.
func TestAdaptiveWithoutChooserKeepsCurrent(t *testing.T) {
	a := NewAdaptiveEvery(1)().(*Adaptive)
	d := a.Decide(0, 1.0)
	if !d.Redistribute || d.Strategy != EqualCount {
		t.Fatalf("decision %+v, want equal-count", d)
	}
}

// TestAdaptiveSARTrigger: NewAdaptive wraps the SAR dynamic trigger and
// inherits its baseline/threshold behaviour.
func TestAdaptiveSARTrigger(t *testing.T) {
	a := NewAdaptive()().(*Adaptive)
	a.NotifyRedistribution(-1, 2.0)
	if a.Decide(0, 1.0).Redistribute {
		t.Fatal("fired while establishing baseline")
	}
	if a.Decide(2, 1.5).Redistribute {
		t.Fatal("fired below threshold")
	}
	if !a.Decide(3, 2.0).Redistribute {
		t.Fatal("did not fire above threshold")
	}
}
