package policy

// Adaptive reruns the paper's Table 1 comparison as a live decision
// procedure: an inner when-trigger (SAR by default) decides *when* to
// redistribute, and a chooser callback — installed by the pipeline, which
// owns the cost ledger — scores the candidate strategies against measured
// per-cell costs to decide *which* layout to rebuild.
//
// The chosen strategy is committed only when NotifyRedistribution reports
// the rebuild succeeded. A failed, rolled-back redistribution therefore
// rolls back the strategy state too: the policy never hears about the
// attempt, keeps its previous committed strategy, and the when-trigger's
// retry behaviour is exactly that of the inner policy.
type Adaptive struct {
	// When is the inner trigger policy deciding the redistribution moments;
	// its own strategy field is ignored.
	When Policy

	chooser   func(iter int, current Strategy) Strategy
	committed Strategy
	pending   Strategy
}

// NewAdaptive returns a Factory for Adaptive over the SAR dynamic trigger.
func NewAdaptive() Factory {
	return func() Policy { return &Adaptive{When: &Dynamic{}} }
}

// NewAdaptiveEvery returns a Factory for Adaptive over a Periodic(k)
// trigger — useful when the redistribution cadence should be fixed while
// the strategy still adapts.
func NewAdaptiveEvery(k int) Factory {
	return func() Policy { return &Adaptive{When: &Periodic{K: k}} }
}

// SetChooser installs the strategy-scoring callback. Without one, Adaptive
// keeps deciding its current committed strategy (initially equal-count).
// The chooser must be deterministic and cross-rank agreed — the pipeline's
// chooser derives everything from allgathered ledger state.
func (a *Adaptive) SetChooser(f func(iter int, current Strategy) Strategy) { a.chooser = f }

// Strategy returns the currently committed strategy.
func (a *Adaptive) Strategy() Strategy { return a.committed }

// Decide implements Policy: the inner trigger decides when; the chooser
// decides what. The choice stays pending until the rebuild succeeds.
func (a *Adaptive) Decide(iter int, iterTime float64) Decision {
	if !a.When.Decide(iter, iterTime).Redistribute {
		return KeepLayout
	}
	a.pending = a.committed
	if a.chooser != nil {
		a.pending = a.chooser(iter, a.committed)
	}
	return Rebalance(a.pending)
}

// NotifyRedistribution implements Policy: forwards to the inner trigger
// and commits the pending strategy — the rollback seam for failed
// attempts, which never reach this method.
func (a *Adaptive) NotifyRedistribution(iter int, redistTime float64) {
	a.When.NotifyRedistribution(iter, redistTime)
	a.committed = a.pending
}

// Name implements Policy.
func (a *Adaptive) Name() string { return "adaptive(" + a.When.Name() + ")" }

// UsesCostWeights implements CostWeightUser: the chooser scores every
// candidate layout from the ledger, so observation must always run.
func (a *Adaptive) UsesCostWeights() bool { return true }
