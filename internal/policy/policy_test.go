package policy

import "testing"

func TestStaticNeverFires(t *testing.T) {
	p := NewStatic()()
	p.NotifyRedistribution(-1, 1.0)
	for i := 0; i < 1000; i++ {
		if p.Decide(i, float64(i)*100).Redistribute {
			t.Fatalf("static fired at %d", i)
		}
	}
	if p.Name() != "static" {
		t.Errorf("name %q", p.Name())
	}
}

func TestPeriodicFiresEveryK(t *testing.T) {
	p := NewPeriodic(5)()
	var fired []int
	for i := 0; i < 20; i++ {
		if p.Decide(i, 1.0).Redistribute {
			fired = append(fired, i)
			p.NotifyRedistribution(i, 0.5)
		}
	}
	want := []int{4, 9, 14, 19}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if p.Name() != "periodic(5)" {
		t.Errorf("name %q", p.Name())
	}
}

func TestPeriodicZeroNeverFires(t *testing.T) {
	p := NewPeriodic(0)()
	for i := 0; i < 10; i++ {
		if p.Decide(i, 1).Redistribute {
			t.Fatal("periodic(0) fired")
		}
	}
}

func TestDynamicSARCondition(t *testing.T) {
	p := NewDynamic()()
	p.NotifyRedistribution(-1, 2.0) // T_redist = 2

	// Iteration 0 establishes t0 = 1.0 and must not fire.
	if p.Decide(0, 1.0).Redistribute {
		t.Fatal("fired while establishing baseline")
	}
	// (t1 − t0)·(i1 − i0) = (1.5−1.0)·(2−(−1)) = 1.5 < 2: no fire.
	if p.Decide(2, 1.5).Redistribute {
		t.Fatal("fired below threshold")
	}
	// (2.0−1.0)·(3−(−1)) = 4 ≥ 2: fire.
	if !p.Decide(3, 2.0).Redistribute {
		t.Fatal("did not fire above threshold")
	}
	p.NotifyRedistribution(3, 3.0)

	// New epoch: baseline re-established from the next iteration.
	if p.Decide(4, 1.2).Redistribute {
		t.Fatal("fired on baseline iteration of new epoch")
	}
	// (1.4−1.2)·(10−3) = 1.4 < 3: no fire.
	if p.Decide(10, 1.4).Redistribute {
		t.Fatal("fired below new threshold")
	}
	// (1.8−1.2)·(11−3) = 4.8 ≥ 3: fire.
	if !p.Decide(11, 1.8).Redistribute {
		t.Fatal("did not fire in new epoch")
	}
}

func TestDynamicNoFireWhenTimesFlat(t *testing.T) {
	p := NewDynamic()()
	p.NotifyRedistribution(-1, 0.5)
	for i := 0; i < 500; i++ {
		if p.Decide(i, 1.0).Redistribute {
			t.Fatalf("fired at %d with flat iteration times", i)
		}
	}
}

func TestDynamicNoFireWithZeroEstimate(t *testing.T) {
	// Without any redistribution-cost estimate the policy must hold off
	// (tRedist = 0 would otherwise fire on any rise).
	p := NewDynamic()()
	p.Decide(0, 1.0)
	if p.Decide(1, 100.0).Redistribute {
		t.Fatal("fired with no cost estimate")
	}
}

func TestDynamicFactoryIndependence(t *testing.T) {
	f := NewDynamic()
	a, b := f(), f()
	a.NotifyRedistribution(-1, 1)
	a.Decide(0, 1)
	// b must be unaffected by a's state.
	if b.Decide(0, 100).Redistribute {
		t.Fatal("factory instances share state")
	}
}
