// Package policy implements the redistribution decision policies of the
// paper's Section 5.2: Static (never redistribute), Periodic (every k
// iterations), and Dynamic — the Stop-At-Rise heuristic that triggers
// redistribution when the projected time saved exceeds the measured cost of
// the previous redistribution:
//
//	(t1 − t0) · (i1 − i0) ≥ T_redistribution
//
// where t0 is the iteration time observed right after the last
// redistribution at iteration i0, and t1 is the current iteration time.
//
// A decision carries more than a boolean: it names the layout Strategy to
// rebuild with — which splitter (equal-count or cost-weighted) and which
// movement scheme (Lagrangian or Eulerian). The paper's policies always
// answer with one fixed strategy; the Adaptive policy (adaptive.go) scores
// candidates against live cost measurements first.
//
// Policies are driven with globally agreed values (iteration times reduced
// over all ranks), so every rank instance of the same policy makes the same
// decision at the same iteration.
package policy

import "fmt"

// Decision is a policy's answer: keep the current layout, or rebuild it
// with the named strategy.
type Decision struct {
	Redistribute bool
	Strategy     Strategy
}

// KeepLayout is the no-redistribution decision.
var KeepLayout = Decision{}

// Rebalance returns the decision to rebuild the layout with strategy s.
func Rebalance(s Strategy) Decision { return Decision{Redistribute: true, Strategy: s} }

// Policy decides when — and with which strategy — to redistribute
// particles.
type Policy interface {
	// Decide is called after iteration iter completes in iterTime
	// (simulated seconds, max over ranks) and returns the layout decision
	// for the next iteration.
	Decide(iter int, iterTime float64) Decision
	// NotifyRedistribution records that a redistribution completed at
	// iteration iter, costing redistTime. It is NOT called for failed,
	// rolled-back redistributions — policy state must stay as if the
	// attempt never happened, so the trigger retries.
	NotifyRedistribution(iter int, redistTime float64)
	// Name identifies the policy for reports.
	Name() string
}

// Factory creates one policy instance per rank; instances must be
// deterministic so ranks stay in agreement.
type Factory func() Policy

// Static never redistributes.
type Static struct{}

// Decide implements Policy.
func (Static) Decide(int, float64) Decision { return KeepLayout }

// NotifyRedistribution implements Policy.
func (Static) NotifyRedistribution(int, float64) {}

// Name implements Policy.
func (Static) Name() string { return "static" }

// NewStatic returns a Factory for Static.
func NewStatic() Factory { return func() Policy { return Static{} } }

// Periodic redistributes every K iterations, always with its configured
// Strategy (zero value: equal-count Lagrangian, the paper's scheme).
type Periodic struct {
	K        int
	Strategy Strategy
}

// Decide implements Policy.
func (p *Periodic) Decide(iter int, _ float64) Decision {
	if p.K > 0 && (iter+1)%p.K == 0 {
		return Rebalance(p.Strategy)
	}
	return KeepLayout
}

// NotifyRedistribution implements Policy.
func (p *Periodic) NotifyRedistribution(int, float64) {}

// Name implements Policy.
func (p *Periodic) Name() string { return fmt.Sprintf("periodic(%d)", p.K) }

// SetStrategy fixes the strategy every firing decides (see WithStrategy).
func (p *Periodic) SetStrategy(s Strategy) { p.Strategy = s }

// NewPeriodic returns a Factory for Periodic with period k.
func NewPeriodic(k int) Factory { return func() Policy { return &Periodic{K: k} } }

// Dynamic is the SAR-style policy. Until the first redistribution its
// T_redistribution estimate is the cost of the initial particle
// distribution (reported via NotifyRedistribution at iteration −1 by the
// simulation driver). Every firing decides its configured Strategy (zero
// value: equal-count Lagrangian).
type Dynamic struct {
	Strategy Strategy

	i0      int     // iteration of last redistribution
	t0      float64 // iteration time observed right after it (0 = unseen)
	haveT0  bool
	tRedist float64 // measured cost of the previous redistribution
}

// Decide implements Policy: triggers when (t1−t0)·(i1−i0) ≥ T_redist.
// The decision is monotone in the measured iteration time — extra delay on
// t1 (network jitter, recovery charges) can only move the trigger earlier,
// never suppress it — and a non-positive measurement window (i1 ≤ i0, e.g.
// a caller replaying the redistribution iteration itself) never fires: it
// carries no degradation signal.
func (d *Dynamic) Decide(iter int, iterTime float64) Decision {
	if !d.haveT0 {
		// First iteration after a redistribution establishes the baseline.
		d.t0 = iterTime
		d.haveT0 = true
		return KeepLayout
	}
	window := iter - d.i0
	if window <= 0 {
		return KeepLayout
	}
	saved := (iterTime - d.t0) * float64(window)
	if saved >= d.tRedist && d.tRedist > 0 {
		return Rebalance(d.Strategy)
	}
	return KeepLayout
}

// NotifyRedistribution implements Policy.
func (d *Dynamic) NotifyRedistribution(iter int, redistTime float64) {
	d.i0 = iter
	d.haveT0 = false
	d.tRedist = redistTime
}

// Name implements Policy.
func (d *Dynamic) Name() string { return "dynamic" }

// SetStrategy fixes the strategy every firing decides (see WithStrategy).
func (d *Dynamic) SetStrategy(s Strategy) { d.Strategy = s }

// NewDynamic returns a Factory for Dynamic.
func NewDynamic() Factory { return func() Policy { return &Dynamic{} } }
