package policy

import (
	"math/rand"
	"testing"
)

// prime builds a Dynamic with a known internal state: last redistribution
// at iteration i0 costing tRedist, baseline iteration time t0 established
// at i0+1.
func prime(i0 int, tRedist, t0 float64) *Dynamic {
	d := &Dynamic{}
	d.NotifyRedistribution(i0, tRedist)
	if d.Decide(i0+1, t0).Redistribute {
		panic("baseline-establishing call fired")
	}
	return d
}

// TestDynamicMonotoneInDelay: the SAR decision is monotone in injected
// delay — for any policy state, if Decide fires at measured time t1 it
// fires at t1+δ for every δ ≥ 0. A reliability layer charging recovery time
// can therefore only advance a pending trigger, never mask one.
func TestDynamicMonotoneInDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		i0 := rng.Intn(50)
		tRedist := rng.Float64() * 4
		t0 := 0.5 + rng.Float64()
		iter := i0 + 2 + rng.Intn(30)
		t1 := t0 + (rng.Float64()-0.3)*2 // sometimes below baseline
		fired := prime(i0, tRedist, t0).Decide(iter, t1).Redistribute
		for _, delay := range []float64{0, 1e-9, 1e-3, 0.1, 1, 100} {
			delayed := prime(i0, tRedist, t0).Decide(iter, t1+delay).Redistribute
			if fired && !delayed {
				t.Fatalf("trial %d: fired at t1=%g but not at t1+%g (i0=%d iter=%d t0=%g T=%g)",
					trial, t1, delay, i0, iter, t0, tRedist)
			}
		}
	}
}

// TestDynamicFirstTriggerNotLaterUnderDelay: across a whole measured
// iteration-time stream, pointwise-inflating every post-baseline
// measurement (injected network delay accumulating over iterations) never
// postpones the first trigger.
func TestDynamicFirstTriggerNotLaterUnderDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	for trial := 0; trial < 500; trial++ {
		base := make([]float64, n)
		t0 := 0.5 + rng.Float64()
		for i := range base {
			// A slowly degrading load balance plus noise.
			base[i] = t0 + 0.02*float64(i)*rng.Float64()
		}
		tRedist := rng.Float64() * 2
		firstFire := func(delay float64) int {
			d := &Dynamic{}
			d.NotifyRedistribution(-1, tRedist)
			for i := 0; i < n; i++ {
				t1 := base[i]
				if i > 0 {
					t1 += delay * float64(i) // delay accrues after the baseline
				}
				if d.Decide(i, t1).Redistribute {
					return i
				}
			}
			return n
		}
		clean := firstFire(0)
		for _, delay := range []float64{1e-6, 1e-3, 0.05} {
			if perturbed := firstFire(delay); perturbed > clean {
				t.Fatalf("trial %d: delay %g postponed the first trigger: %d > %d",
					trial, delay, perturbed, clean)
			}
		}
	}
}

// TestDynamicNeverFiresOnZeroWindow: a measurement window of zero (or
// negative) length — Decide called for the redistribution iteration itself
// or an earlier one — never triggers, no matter how large the measured
// time.
func TestDynamicNeverFiresOnZeroWindow(t *testing.T) {
	for _, iterTime := range []float64{0, 1, 1e6, 1e300} {
		d := prime(10, 0.5, 1.0)
		if d.Decide(10, iterTime).Redistribute {
			t.Errorf("fired on zero-length window at iterTime=%g", iterTime)
		}
		if d.Decide(9, iterTime).Redistribute {
			t.Errorf("fired on negative window at iterTime=%g", iterTime)
		}
		// A genuine window with the same measurement still fires when the
		// projected saving clears the threshold (the guard is about the
		// window, not a blanket suppression).
		if iterTime >= 2 && !d.Decide(11, iterTime).Redistribute {
			t.Errorf("did not fire on a one-iteration window at iterTime=%g", iterTime)
		}
	}
}

// TestDynamicZeroWindowLeavesStateIntact: a zero-window call is a no-op —
// it neither fires nor disturbs the established baseline.
func TestDynamicZeroWindowLeavesStateIntact(t *testing.T) {
	d := prime(10, 0.5, 1.0)
	_ = d.Decide(10, 1e9).Redistribute // zero window, huge measurement
	if !d.Decide(12, 2.0).Redistribute {
		t.Error("baseline was disturbed by a zero-window call")
	}
}
