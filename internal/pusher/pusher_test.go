package pusher

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

func TestWeightsSumToOne(t *testing.T) {
	g := mesh.NewGrid(16, 8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := rng.Float64()*16, rng.Float64()*8
		w := Weights(g, x, y)
		sum := w.W[0] + w.W[1] + w.W[2] + w.W[3]
		if math.Abs(sum-1) > 1e-12 {
			return false
		}
		for _, v := range w.W {
			if v < 0 || v > 1 {
				return false
			}
		}
		return w.CX >= 0 && w.CX < 16 && w.CY >= 0 && w.CY < 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestWeightsAtVertexAreDelta(t *testing.T) {
	g := mesh.NewGrid(8, 8)
	w := Weights(g, 3.0, 5.0)
	if w.CX != 3 || w.CY != 5 {
		t.Fatalf("cell (%d,%d), want (3,5)", w.CX, w.CY)
	}
	if w.W[0] != 1 || w.W[1] != 0 || w.W[2] != 0 || w.W[3] != 0 {
		t.Errorf("on-vertex weights %v, want delta at vertex 0", w.W)
	}
}

func TestWeightsCellCentre(t *testing.T) {
	g := mesh.NewGrid(8, 8)
	w := Weights(g, 2.5, 4.5)
	for k, v := range w.W {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("centre weight[%d] = %g, want 0.25", k, v)
		}
	}
}

func TestWeightsUpperBoundaryClamped(t *testing.T) {
	g := mesh.NewGrid(4, 4)
	// Position that wraps to ~0 stays in a valid cell with valid weights.
	w := Weights(g, 4.0-1e-16, 2)
	sum := w.W[0] + w.W[1] + w.W[2] + w.W[3]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("boundary weights sum %g", sum)
	}
}

func newSingle(px, py, pz float64) *particle.Store {
	s := particle.NewStore(1, -1, 1)
	s.Append(2, 2, px, py, pz, 0)
	return s
}

func TestBorisPushPureElectric(t *testing.T) {
	// Zero B: two half kicks equal one full kick q·E·dt.
	s := newSingle(0, 0, 0)
	BorisPush(s, 0, 1, 0, 0, 0, 0, 0, 0.5)
	want := -1.0 * 1 * 0.5 // q = −1
	if math.Abs(s.Px[0]-want) > 1e-14 {
		t.Errorf("px = %g, want %g", s.Px[0], want)
	}
	if s.Py[0] != 0 || s.Pz[0] != 0 {
		t.Errorf("transverse momenta changed: %g %g", s.Py[0], s.Pz[0])
	}
}

func TestBorisPushPureMagneticPreservesEnergy(t *testing.T) {
	// Magnetic field does no work: |p| must be conserved exactly by the
	// rotation (a defining property of the Boris scheme).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSingle(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		p0 := math.Sqrt(s.Px[0]*s.Px[0] + s.Py[0]*s.Py[0] + s.Pz[0]*s.Pz[0])
		for i := 0; i < 50; i++ {
			BorisPush(s, 0, 0, 0, 0, rng.Float64(), rng.Float64(), 2*rng.Float64()-1, 0.1)
		}
		p1 := math.Sqrt(s.Px[0]*s.Px[0] + s.Py[0]*s.Py[0] + s.Pz[0]*s.Pz[0])
		return math.Abs(p1-p0) < 1e-10*(1+p0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBorisGyration(t *testing.T) {
	// In a uniform Bz, a particle gyrates: after many small steps the
	// momentum vector rotates through ~ωc·t with |p| fixed.
	s := newSingle(0.1, 0, 0)
	dt := 0.01
	steps := 1000
	for i := 0; i < steps; i++ {
		BorisPush(s, 0, 0, 0, 0, 0, 0, 1.0, dt)
	}
	p1 := math.Hypot(s.Px[0], s.Py[0])
	if math.Abs(p1-0.1) > 1e-12 {
		t.Errorf("|p| drifted to %g", p1)
	}
	// q/m = −1, γ ≈ 1.005: rotation angle ≈ −ωc·t = +t/γ for q<0... just
	// assert the vector actually rotated away from the x axis at some
	// point and returned near it after a full period 2πγ.
	if s.Px[0] == 0.1 && s.Py[0] == 0 {
		t.Error("momentum never rotated")
	}
}

func TestMoveStraightLine(t *testing.T) {
	g := mesh.NewGrid(8, 8)
	s := newSingle(0.3, 0.4, 0) // gamma = sqrt(1.25)
	s.X[0], s.Y[0] = 1, 1
	gamma := math.Sqrt(1.25)
	Move(s, 0, g, 1.0)
	if math.Abs(s.X[0]-(1+0.3/gamma)) > 1e-14 || math.Abs(s.Y[0]-(1+0.4/gamma)) > 1e-14 {
		t.Errorf("moved to (%g,%g)", s.X[0], s.Y[0])
	}
}

func TestMoveWrapsPeriodically(t *testing.T) {
	g := mesh.NewGrid(4, 4)
	s := newSingle(10, 0, 0) // v ≈ c
	s.X[0], s.Y[0] = 3.9, 0.5
	Move(s, 0, g, 1.0)
	if s.X[0] < 0 || s.X[0] >= 4 {
		t.Errorf("x = %g not wrapped", s.X[0])
	}
}

func TestSpeedSubluminal(t *testing.T) {
	f := func(px, py, pz float64) bool {
		if math.IsNaN(px) || math.IsInf(px, 0) || math.Abs(px) > 1e150 ||
			math.IsNaN(py) || math.IsInf(py, 0) || math.Abs(py) > 1e150 ||
			math.IsNaN(pz) || math.IsInf(pz, 0) || math.Abs(pz) > 1e150 {
			return true
		}
		s := newSingle(px, py, pz)
		v := Speed(s, 0)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedStaysSubluminalUnderHugeKicks(t *testing.T) {
	// Relativistic push: arbitrarily large E kicks never exceed c.
	s := newSingle(0, 0, 0)
	for i := 0; i < 20; i++ {
		BorisPush(s, 0, 1e6, 0, 0, 0, 0, 0, 1)
		if v := Speed(s, 0); v >= 1 {
			t.Fatalf("superluminal after kick %d: v=%g", i, v)
		}
	}
	if g := s.Gamma(0); g < 1e3 {
		t.Errorf("expected ultra-relativistic gamma, got %g", g)
	}
}

func TestVertexOffsetsMatchWeightOrder(t *testing.T) {
	// Weight k belongs to vertex (CX+off[k][0], CY+off[k][1]): placing the
	// particle near a vertex concentrates weight on that vertex.
	g := mesh.NewGrid(8, 8)
	eps := 0.01
	targets := [][2]float64{{2 + eps, 3 + eps}, {3 - eps, 3 + eps}, {2 + eps, 4 - eps}, {3 - eps, 4 - eps}}
	for k, pos := range targets {
		w := Weights(g, pos[0], pos[1])
		best, bi := -1.0, -1
		for i, v := range w.W {
			if v > best {
				best, bi = v, i
			}
		}
		if bi != k {
			t.Errorf("position near vertex %d has max weight at %d", k, bi)
		}
		vx := w.CX + VertexOffsets[k][0]
		vy := w.CY + VertexOffsets[k][1]
		if math.Abs(float64(vx)-pos[0]) > 1.0 || math.Abs(float64(vy)-pos[1]) > 1.0 {
			t.Errorf("vertex %d at (%d,%d) not adjacent to (%g,%g)", k, vx, vy, pos[0], pos[1])
		}
	}
}
