// Package pusher implements the per-particle kernels of the PIC time step:
// bilinear (cloud-in-cell) interpolation weights between a particle and the
// four vertex grid points of its cell, used by both the scatter and gather
// phases, and the relativistic Boris push that advances momenta and
// positions.
package pusher

import (
	"math"

	"picpar/internal/mesh"
	"picpar/internal/particle"
)

// VertexOffsets enumerates the four vertices of a cell relative to its
// lower-left grid point, in the order weights are produced.
var VertexOffsets = [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}}

// Modelled compute work (in δ units) per particle per vertex / per particle,
// matching the T_s_comp, T_g_comp and T_push terms of the paper's analysis.
const (
	// ScatterWorkPerVertex covers index computation, weight evaluation and
	// the four accumulations for one vertex (steps 1–3 of the paper's
	// scatter description): ~12 flops.
	ScatterWorkPerVertex = 12
	// GatherWorkPerVertex covers interpolating six field components from
	// one vertex: ~14 flops.
	GatherWorkPerVertex = 14
	// PushWorkPerParticle covers the Boris rotation and position update:
	// ~50 flops.
	PushWorkPerParticle = 50
)

// Interp holds the interpolation footprint of one particle: its cell and
// the bilinear weights of the cell's four vertices.
type Interp struct {
	CX, CY int
	W      [4]float64
}

// Weights computes the CIC interpolation of position (x, y) on grid g.
// The weights are non-negative and sum to 1.
func Weights(g mesh.Grid, x, y float64) Interp {
	cx, cy := g.CellOf(x, y)
	// Fractional offsets inside the cell, in [0, 1).
	fx := x/g.Dx() - float64(cx)
	fy := y/g.Dy() - float64(cy)
	// Positions exactly on the upper wrap boundary produce fx slightly
	// outside [0,1) after CellOf clamping; clamp to keep weights valid.
	fx = clamp01(fx)
	fy = clamp01(fy)
	return Interp{
		CX: cx,
		CY: cy,
		W: [4]float64{
			(1 - fx) * (1 - fy),
			fx * (1 - fy),
			(1 - fx) * fy,
			fx * fy,
		},
	}
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f >= 1 {
		return math.Nextafter(1, 0)
	}
	return f
}

// BorisPush advances the momentum of particle i of s by dt under fields
// (ex, ey, ez, bx, by, bz) using the relativistic Boris scheme: half
// electric kick, magnetic rotation, half electric kick.
func BorisPush(s *particle.Store, i int, ex, ey, ez, bx, by, bz, dt float64) {
	qmdt2 := s.Charge / s.Mass * dt / 2

	// Half electric acceleration.
	ux := s.Px[i] + qmdt2*ex
	uy := s.Py[i] + qmdt2*ey
	uz := s.Pz[i] + qmdt2*ez

	// Magnetic rotation at the mid-step Lorentz factor.
	gamma := math.Sqrt(1 + ux*ux + uy*uy + uz*uz)
	tx, ty, tz := qmdt2*bx/gamma, qmdt2*by/gamma, qmdt2*bz/gamma
	t2 := tx*tx + ty*ty + tz*tz
	sx, sy, sz := 2*tx/(1+t2), 2*ty/(1+t2), 2*tz/(1+t2)

	// u' = u + u × t
	upx := ux + uy*tz - uz*ty
	upy := uy + uz*tx - ux*tz
	upz := uz + ux*ty - uy*tx
	// u⁺ = u + u' × s
	ux += upy*sz - upz*sy
	uy += upz*sx - upx*sz
	uz += upx*sy - upy*sx

	// Half electric acceleration.
	s.Px[i] = ux + qmdt2*ex
	s.Py[i] = uy + qmdt2*ey
	s.Pz[i] = uz + qmdt2*ez
}

// Move advances the position of particle i of s by dt using its current
// momentum, wrapping periodically on grid g.
func Move(s *particle.Store, i int, g mesh.Grid, dt float64) {
	gamma := s.Gamma(i)
	x := s.X[i] + s.Px[i]/gamma*dt
	y := s.Y[i] + s.Py[i]/gamma*dt
	s.X[i], s.Y[i] = g.WrapPosition(x, y)
}

// Speed returns |v| of particle i (always < 1 = c).
func Speed(s *particle.Store, i int) float64 {
	g := s.Gamma(i)
	return math.Sqrt(s.Px[i]*s.Px[i]+s.Py[i]*s.Py[i]+s.Pz[i]*s.Pz[i]) / g
}
