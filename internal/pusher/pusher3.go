// The three-dimensional counterparts of the per-particle kernels: trilinear
// (cloud-in-cell) weights over the eight vertices of a 3-D cell and the
// position update. The Boris momentum push is already dimension-independent
// (particles carry full 3-momenta in 2d3v), so BorisPush is shared.

package pusher

import (
	"picpar/internal/mesh3"
	"picpar/internal/particle"
)

// VertexOffsets3 enumerates the eight vertices of a 3-D cell relative to
// its lower corner grid point, in the order weights are produced
// (x fastest, then y, then z).
var VertexOffsets3 = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// Interp3 holds the interpolation footprint of one 3-D particle: its cell
// and the trilinear weights of the cell's eight vertices.
type Interp3 struct {
	CX, CY, CZ int
	W          [8]float64
}

// Weights3 computes the CIC interpolation of position (x, y, z) on grid g.
// The weights are non-negative and sum to 1.
func Weights3(g mesh3.Grid, x, y, z float64) Interp3 {
	cx, cy, cz := g.CellOf(x, y, z)
	fx := x/g.Dx() - float64(cx)
	fy := y/g.Dy() - float64(cy)
	fz := z/g.Dz() - float64(cz)
	fx = clamp01(fx)
	fy = clamp01(fy)
	fz = clamp01(fz)
	wx0, wy0, wz0 := 1-fx, 1-fy, 1-fz
	return Interp3{
		CX: cx,
		CY: cy,
		CZ: cz,
		W: [8]float64{
			wx0 * wy0 * wz0,
			fx * wy0 * wz0,
			wx0 * fy * wz0,
			fx * fy * wz0,
			wx0 * wy0 * fz,
			fx * wy0 * fz,
			wx0 * fy * fz,
			fx * fy * fz,
		},
	}
}

// Move3 advances the position of particle i of s by dt using its current
// momentum, wrapping periodically on grid g.
func Move3(s *particle.Store, i int, g mesh3.Grid, dt float64) {
	gamma := s.Gamma(i)
	x := s.X[i] + s.Px[i]/gamma*dt
	y := s.Y[i] + s.Py[i]/gamma*dt
	z := s.Z[i] + s.Pz[i]/gamma*dt
	s.X[i], s.Y[i], s.Z[i] = g.WrapPosition(x, y, z)
}
