package jobspec

import (
	"encoding/json"
	"testing"
)

func TestParseMesh(t *testing.T) {
	ext, err := ParseMesh("128x64", 2)
	if err != nil || ext[0] != 128 || ext[1] != 64 {
		t.Errorf("ParseMesh: %v %v", ext, err)
	}
	if _, err := ParseMesh("128X64", 2); err != nil {
		t.Errorf("upper-case separator rejected: %v", err)
	}
	ext, err = ParseMesh("32x16x8", 3)
	if err != nil || ext[0] != 32 || ext[1] != 16 || ext[2] != 8 {
		t.Errorf("ParseMesh 3-D: %v %v", ext, err)
	}
	for _, bad := range []string{"128", "128x64x32", "ax64", ""} {
		if _, err := ParseMesh(bad, 2); err == nil {
			t.Errorf("ParseMesh(%q, 2) accepted", bad)
		}
	}
	for _, bad := range []string{"32x16", "32x16xq"} {
		if _, err := ParseMesh(bad, 3); err == nil {
			t.Errorf("ParseMesh(%q, 3) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"static", "dynamic", "periodic:5", "adaptive", "adaptive:3"} {
		f, err := ParsePolicy(good)
		if err != nil || f == nil {
			t.Errorf("ParsePolicy(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "nope", "periodic:", "periodic:0", "periodic:x", "adaptive:-1"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

// TestSpecConfigDefaults: a zero spec defers everything to pic's own
// defaulting — the resulting config must pass pic validation via Run's
// entry path untouched (checked indirectly by building a tiny run).
func TestSpecConfigDefaults(t *testing.T) {
	cfg, err := Spec{}.Config()
	if err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if cfg.Grid.Nx != 0 || cfg.Policy != nil || cfg.P != 0 {
		t.Errorf("zero spec pinned fields: %+v", cfg)
	}
}

// TestSpecConfigRoundTrip: a JSON document — the picserve submission wire
// format — builds the same config a flag-driven caller would.
func TestSpecConfigRoundTrip(t *testing.T) {
	doc := `{"mesh":"32x16","particles":2048,"ranks":4,"iterations":10,
	         "distribution":"irregular","seed":7,"policy":"static"}`
	var sp Spec
	if err := json.Unmarshal([]byte(doc), &sp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	if cfg.Grid.Nx != 32 || cfg.Grid.Ny != 16 || cfg.P != 4 ||
		cfg.NumParticles != 2048 || cfg.Iterations != 10 ||
		cfg.Distribution != "irregular" || cfg.Seed != 7 {
		t.Errorf("config mismatch: %+v", cfg)
	}
	if cfg.Policy == nil || cfg.Policy().Name() != "static" {
		t.Errorf("policy not static")
	}
}

// TestSpecConfigErrors: malformed fields are refused with a jobspec error,
// not passed through to blow up inside pic.
func TestSpecConfigErrors(t *testing.T) {
	for _, sp := range []Spec{
		{Mesh: "32"},
		{Mesh: "axb"},
		{Dims: 3, Mesh: "32x16"},
		{Policy: "sometimes"},
		{Strategy: "zigzag"},
	} {
		if _, err := sp.Config(); err == nil {
			t.Errorf("spec %+v accepted", sp)
		}
	}
}

// TestSpecStrategyWrap: a strategy pin wraps the policy factory even when
// the policy itself was defaulted.
func TestSpecStrategyWrap(t *testing.T) {
	cfg, err := Spec{Strategy: "cost-weighted"}.Config()
	if err != nil {
		t.Fatalf("strategy-only spec: %v", err)
	}
	if cfg.Policy == nil {
		t.Fatal("no policy factory")
	}
	// The wrapped factory must still build a working policy.
	if cfg.Policy() == nil {
		t.Fatal("factory built nil policy")
	}
}
