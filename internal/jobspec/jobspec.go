// Package jobspec is the one place a textual simulation description — CLI
// flags or a JSON document — becomes a pic.Config. cmd/picsim (flags),
// cmd/picbench (fixed sweep workloads) and cmd/picserve (JSON job
// submissions) all build their configurations through Spec, so the three
// entrypoints cannot drift: a policy spelling or mesh syntax accepted by one
// is accepted by all.
package jobspec

import (
	"fmt"
	"strconv"
	"strings"

	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// Spec is the serialisable description of one simulation job. The zero
// value of every field defers to pic.Config's defaulting (withDefaults):
// only what a caller states explicitly is pinned. JSON field names are the
// wire contract of the picserve submission API.
type Spec struct {
	// Dims is the spatial dimensionality, 2 (default) or 3.
	Dims int `json:"dims,omitempty"`
	// Mesh is the global grid, "NXxNY" (2-D) or "NXxNYxNZ" (3-D); empty
	// uses the pic defaults (64x32 / 16x16x16).
	Mesh string `json:"mesh,omitempty"`
	// Particles is the global particle count n.
	Particles int `json:"particles,omitempty"`
	// Ranks is the number of ranks (processors) P.
	Ranks int `json:"ranks,omitempty"`
	// Iterations is the number of PIC time steps.
	Iterations int `json:"iterations,omitempty"`
	// Distribution, Indexing, Table and Topology are passed through to
	// pic.Config verbatim (pic validates the spellings).
	Distribution string `json:"distribution,omitempty"`
	Indexing     string `json:"indexing,omitempty"`
	Table        string `json:"table,omitempty"`
	Topology     string `json:"topology,omitempty"`
	// Policy is the redistribution policy:
	// static|dynamic|periodic:<k>|adaptive|adaptive:<k>. Empty means the
	// pic default (static).
	Policy string `json:"policy,omitempty"`
	// Strategy pins the layout strategy the policy's firings rebuild into:
	// equal-count|cost-weighted|eulerian. Empty keeps the policy's own
	// choice (equal-count, or per-firing under adaptive).
	Strategy string `json:"strategy,omitempty"`
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64 `json:"seed,omitempty"`
	// Thermal is the thermal momentum spread (p/mc); 0 = default 0.3.
	Thermal float64 `json:"thermal,omitempty"`
	// Modern selects the modern-cluster cost model instead of CM-5.
	Modern bool `json:"modern,omitempty"`
	// Workers is the shared-memory worker count per rank; 0 = $PICPAR_PROCS
	// or 1. Results are byte-identical for any count.
	Workers int `json:"workers,omitempty"`
	// Diagnostics enables energy histories; Verify enables per-iteration
	// invariant checks (charged compute — changes timings).
	Diagnostics bool `json:"diagnostics,omitempty"`
	Verify      bool `json:"verify,omitempty"`
	// Checkpoint fields mirror pic.Config; picserve overrides CheckpointDir
	// with the job's own directory.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	CheckpointKeep  int    `json:"checkpoint_keep,omitempty"`
	Recover         bool   `json:"recover,omitempty"`
}

// Config builds the pic.Config the spec describes. Unset fields stay zero
// so pic's own defaulting and validation run unchanged; errors name the
// offending spec field.
func (s Spec) Config() (pic.Config, error) {
	cfg := pic.Config{
		Dims:         s.Dims,
		P:            s.Ranks,
		NumParticles: s.Particles,
		Distribution: s.Distribution,
		Seed:         s.Seed,
		Iterations:   s.Iterations,
		Indexing:     s.Indexing,
		Table:        s.Table,
		Topology:     s.Topology,
		Thermal:      s.Thermal,
		Diagnostics:  s.Diagnostics,
		Verify:       s.Verify,
		Workers:      s.Workers,

		CheckpointDir:   s.CheckpointDir,
		CheckpointEvery: s.CheckpointEvery,
		CheckpointKeep:  s.CheckpointKeep,
		Recover:         s.Recover,
	}
	dim := s.Dims
	if dim == 0 {
		dim = 2
	}
	if s.Mesh != "" {
		ext, err := ParseMesh(s.Mesh, dim)
		if err != nil {
			return pic.Config{}, err
		}
		if dim == 3 {
			cfg.Grid3 = mesh3.NewGrid(ext[0], ext[1], ext[2])
		} else {
			cfg.Grid = mesh.NewGrid(ext[0], ext[1])
		}
	}
	if s.Policy != "" {
		pol, err := ParsePolicy(s.Policy)
		if err != nil {
			return pic.Config{}, err
		}
		cfg.Policy = pol
	}
	if s.Strategy != "" {
		strat, err := policy.ParseStrategy(s.Strategy)
		if err != nil {
			return pic.Config{}, err
		}
		if cfg.Policy == nil {
			cfg.Policy = policy.NewStatic()
		}
		cfg.Policy = policy.WithStrategy(cfg.Policy, strat)
	}
	if s.Modern {
		cfg.Machine = machine.Modern()
	}
	return cfg, nil
}

// ParseMesh parses "NXxNY" (dim 2) or "NXxNYxNZ" (dim 3), case-insensitive
// on the separator, into the extent list.
func ParseMesh(s string, dim int) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != dim {
		return nil, fmt.Errorf("jobspec: mesh %q has %d extents, want %d for dims %d",
			s, len(parts), dim, dim)
	}
	ext := make([]int, dim)
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("jobspec: mesh extent %q: %v", part, err)
		}
		ext[i] = v
	}
	return ext, nil
}

// ParsePolicy parses the policy spelling shared by every entrypoint:
// static|dynamic|periodic:<k>|adaptive|adaptive:<k>.
func ParsePolicy(s string) (policy.Factory, error) {
	switch {
	case s == "static":
		return policy.NewStatic(), nil
	case s == "dynamic":
		return policy.NewDynamic(), nil
	case s == "adaptive":
		return policy.NewAdaptive(), nil
	case strings.HasPrefix(s, "periodic:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "periodic:"))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("jobspec: bad period in policy %q", s)
		}
		return policy.NewPeriodic(k), nil
	case strings.HasPrefix(s, "adaptive:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "adaptive:"))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("jobspec: bad period in policy %q", s)
		}
		return policy.NewAdaptiveEvery(k), nil
	}
	return nil, fmt.Errorf("jobspec: unknown policy %q (want static|dynamic|periodic:<k>|adaptive[:<k>])", s)
}
