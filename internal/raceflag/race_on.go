//go:build race

// Package raceflag exposes whether the race detector is compiled in, so
// allocation-count assertions (which the race runtime distorts) can skip
// themselves under `go test -race`.
package raceflag

// Enabled reports whether this binary was built with -race.
const Enabled = true
