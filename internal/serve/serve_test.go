package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"picpar/internal/comm"
	"picpar/internal/jobspec"
	"picpar/internal/pic"
)

// goldenSpec is the repo-wide golden configuration (scripts/netsmoke.sh):
// small, irregular, deterministic.
func goldenSpec() jobspec.Spec {
	return jobspec.Spec{
		Mesh: "32x16", Particles: 2048, Ranks: 4, Iterations: 10,
		Distribution: "irregular", Seed: 7, Policy: "static",
		CheckpointEvery: 3, CheckpointKeep: 100,
	}
}

// goldenReference runs the golden spec undisturbed, in-process, without
// checkpointing, and returns the distilled result.
func goldenReference(t *testing.T) *JobResult {
	t.Helper()
	cfg, err := goldenSpec().Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pic.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ResultOf(res)
}

func quietLog(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf("picserve: "+format, args...) }
}

func newTestServer(t *testing.T, dir string, r Runner, lim Limits) *Server {
	t.Helper()
	s, err := New(dir, r, lim, quietLog(t))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, s *Server, id string, want State) Manifest {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		m, err := s.Manifest(id)
		if err != nil {
			t.Fatal(err)
		}
		if m.State == want {
			return m
		}
		if m.State.Terminal() {
			t.Fatalf("job %s reached %s (reason %s: %s), want %s", id, m.State, m.Reason, m.Detail, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, m.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitRunsToDoneByteIdentical: the whole happy path — a golden job
// submitted over HTTP runs to done and its persisted result matches an
// undisturbed in-process run exactly.
func TestSubmitRunsToDoneByteIdentical(t *testing.T) {
	ref := goldenReference(t)
	dir := t.TempDir()
	s := newTestServer(t, dir, LocalRunner{}, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(goldenSpec())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.ID == "" || m.State != StateQueued {
		t.Fatalf("submitted manifest %+v", m)
	}

	fin := waitState(t, s, m.ID, StateDone)
	if fin.Result == nil {
		t.Fatal("done job has no result")
	}
	if fin.Result.TotalTime != ref.TotalTime || fin.Result.Fingerprint != ref.Fingerprint {
		t.Errorf("served run differs: total %.7f/%s, want %.7f/%s",
			fin.Result.TotalTime, fin.Result.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
	// The manifest on disk agrees with the one in memory.
	onDisk, err := ReadManifest(JobDir(dir, m.ID))
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateDone || onDisk.Result == nil ||
		onDisk.Result.Fingerprint != fin.Result.Fingerprint {
		t.Errorf("persisted manifest diverges: %+v", onDisk)
	}
}

// blockingRunner parks every attempt until released; it signals each
// attempt's start and honours cancellation.
type blockingRunner struct {
	started chan string   // receives job ids as attempts begin
	release chan struct{} // close to let attempts finish
	result  *JobResult
	err     error
}

func (r *blockingRunner) Run(ctx context.Context, rc RunContext) (*JobResult, error) {
	select {
	case r.started <- rc.Manifest.ID:
	default:
	}
	select {
	case <-r.release:
		if r.err != nil {
			return nil, r.err
		}
		res := *r.result
		return &res, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
	}
	return resp, []byte(buf.String())
}

// TestAdmissionControl: the queue is bounded with a typed 429, per-job
// caps are typed 400s, and a draining daemon answers a typed 503 — the
// daemon never accepts work it cannot finish, and never hangs a client.
func TestAdmissionControl(t *testing.T) {
	run := &blockingRunner{
		started: make(chan string, 8),
		release: make(chan struct{}),
		result:  &JobResult{Fingerprint: "0"},
	}
	s := newTestServer(t, t.TempDir(), run, Limits{MaxActive: 1, MaxQueue: 1, MaxRanks: 4, MaxIterations: 50})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	spec := jobspec.Spec{Ranks: 2, Iterations: 5}

	// First job occupies the single active slot...
	resp, _ := postJSON(t, ts.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	<-run.started
	// ...second fills the queue...
	if resp, _ := postJSON(t, ts.URL+"/jobs", spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}
	// ...third is refused with the typed 429.
	resp, body := postJSON(t, ts.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	var re RejectError
	if json.Unmarshal(body, &re); re.Reason != ReasonQueueFull {
		t.Errorf("429 reason %q, want %q", re.Reason, ReasonQueueFull)
	}

	// Caps: rank and iteration overruns are typed 400s.
	resp, body = postJSON(t, ts.URL+"/jobs", jobspec.Spec{Ranks: 64})
	if json.Unmarshal(body, &re); resp.StatusCode != http.StatusBadRequest || re.Reason != ReasonOverRankCap {
		t.Errorf("over-rank: status %d reason %q", resp.StatusCode, re.Reason)
	}
	resp, body = postJSON(t, ts.URL+"/jobs", jobspec.Spec{Ranks: 2, Iterations: 999})
	if json.Unmarshal(body, &re); resp.StatusCode != http.StatusBadRequest || re.Reason != ReasonOverIterCap {
		t.Errorf("over-iter: status %d reason %q", resp.StatusCode, re.Reason)
	}
	// A malformed spec is a typed 400, not a 500.
	resp, body = postJSON(t, ts.URL+"/jobs", jobspec.Spec{Mesh: "banana"})
	if json.Unmarshal(body, &re); resp.StatusCode != http.StatusBadRequest || re.Reason != ReasonBadSpec {
		t.Errorf("bad spec: status %d reason %q", resp.StatusCode, re.Reason)
	}

	// Draining: admission closes with the typed 503, promptly.
	close(run.release)
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/jobs", spec)
	if json.Unmarshal(body, &re); resp.StatusCode != http.StatusServiceUnavailable || re.Reason != ReasonDraining {
		t.Errorf("draining: status %d reason %q, want 503 %q", resp.StatusCode, re.Reason, ReasonDraining)
	}
	// And /healthz reports it.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "draining" {
		t.Errorf("healthz status %v, want draining", hz["status"])
	}
}

// TestRetryBudgetThenTypedFailure: a job whose attempts keep dying retries
// with backoff up to the attempt budget, then fails with a typed reason —
// respawn-budget-exhausted when the attempts died of rank churn.
func TestRetryBudgetThenTypedFailure(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	run := runnerFunc(func(ctx context.Context, rc RunContext) (*JobResult, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		return nil, &comm.LaunchError{
			Failures: []comm.RankFailure{{Rank: 2, Err: errors.New("kept dying")}},
			World:    "job " + rc.Manifest.ID + ", P=4",
		}
	})
	s := newTestServer(t, t.TempDir(), run, Limits{MaxAttempts: 3, RetryBackoff: time.Millisecond})
	m, err := s.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, m.ID)
	if fin.State != StateFailed || fin.Reason != ReasonRespawnBudget {
		t.Fatalf("state %s reason %q, want failed/%s", fin.State, fin.Reason, ReasonRespawnBudget)
	}
	if !strings.Contains(fin.Detail, "rank 2") {
		t.Errorf("failure detail does not name the dying rank: %q", fin.Detail)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Errorf("%d attempts, want the full budget of 3", attempts)
	}
}

type runnerFunc func(context.Context, RunContext) (*JobResult, error)

func (f runnerFunc) Run(ctx context.Context, rc RunContext) (*JobResult, error) { return f(ctx, rc) }

func waitTerminal(t *testing.T, s *Server, id string) Manifest {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		m, err := s.Manifest(id)
		if err != nil {
			t.Fatal(err)
		}
		if m.State.Terminal() {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, m.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWallTimeDeadline: an attempt that outlives the wall cap is killed
// and the job fails with the typed wall-time reason.
func TestWallTimeDeadline(t *testing.T) {
	run := &blockingRunner{started: make(chan string, 1), release: make(chan struct{})}
	s := newTestServer(t, t.TempDir(), run, Limits{MaxWall: 50 * time.Millisecond})
	m, err := s.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, m.ID)
	if fin.State != StateFailed || fin.Reason != ReasonWallTime {
		t.Errorf("state %s reason %q, want failed/%s", fin.State, fin.Reason, ReasonWallTime)
	}
}

// TestCancelQueuedAndRunning: cancellation is honoured in both live
// states, with typed results, and a second cancel is a typed conflict.
func TestCancelQueuedAndRunning(t *testing.T) {
	run := &blockingRunner{started: make(chan string, 4), release: make(chan struct{})}
	s := newTestServer(t, t.TempDir(), run, Limits{MaxActive: 1})

	running, err := s.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-run.started
	queued, err := s.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if m := waitTerminal(t, s, queued.ID); m.State != StateCancelled {
		t.Errorf("queued job: %s, want cancelled", m.State)
	}
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if m := waitTerminal(t, s, running.ID); m.State != StateCancelled || m.Reason != ReasonCancelled {
		t.Errorf("running job: %s/%s, want cancelled", m.State, m.Reason)
	}
	err = s.Cancel(running.ID)
	var re *RejectError
	if !errors.As(err, &re) || re.Reason != ReasonConflict {
		t.Errorf("second cancel: %v, want typed conflict", err)
	}
	if err := s.Cancel("j-nope"); err == nil {
		t.Error("cancelling an unknown job succeeded")
	}
}

// slowingRunner wraps LocalRunner, stretching each iteration so a drain
// lands mid-run deterministically, and signalling the first iteration.
// When gate is non-nil, no iteration event is forwarded until it closes.
type slowingRunner struct {
	inner   Runner
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
	delay   time.Duration
}

func (r *slowingRunner) Run(ctx context.Context, rc RunContext) (*JobResult, error) {
	on := rc.OnIteration
	rc.OnIteration = func(ev IterEvent) {
		r.once.Do(func() { close(r.started) })
		if r.gate != nil {
			<-r.gate
		}
		time.Sleep(r.delay)
		if on != nil {
			on(ev)
		}
	}
	return r.inner.Run(ctx, rc)
}

// TestDrainThenRestartFinishesByteIdentical is the tentpole gate in-Go:
// SIGTERM-style drain checkpoints the running job and parks it; a fresh
// Server over the same data directory (the restarted daemon) re-adopts
// it, resumes from the drain epoch, and finishes with the exact
// fingerprint and TotalTime of a run that was never disturbed.
func TestDrainThenRestartFinishesByteIdentical(t *testing.T) {
	ref := goldenReference(t)
	dir := t.TempDir()

	run := &slowingRunner{inner: LocalRunner{}, started: make(chan struct{}), delay: 30 * time.Millisecond}
	s1 := newTestServer(t, dir, run, Limits{})
	m, err := s1.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-run.started // the job is mid-simulation
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer dcancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	parked, err := s1.Manifest(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if parked.State != StateCheckpointing {
		t.Fatalf("after drain: state %s, want checkpointing", parked.State)
	}

	// "Restart": a new Server over the same directory adopts and finishes.
	s2 := newTestServer(t, dir, LocalRunner{}, Limits{})
	fin := waitState(t, s2, m.ID, StateDone)
	if fin.Result == nil {
		t.Fatal("resumed job has no result")
	}
	if fin.Result.TotalTime != ref.TotalTime || fin.Result.Fingerprint != ref.Fingerprint {
		t.Errorf("drain+restart differs: total %.7f/%s, want %.7f/%s",
			fin.Result.TotalTime, fin.Result.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
	dctx2, dcancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel2()
	_ = s2.Drain(dctx2)
}

// TestAbruptDeathAdoptionResumesByteIdentical: the kill -9 shape, in-Go. A
// job directory left behind mid-run — manifest still saying "running",
// checkpoint epochs up to an arbitrary boundary — is adopted by a fresh
// daemon, resumed from the newest complete epoch, and finishes
// byte-identically. (The real kill -9 of the daemon process is
// scripts/servesmoke.sh.)
func TestAbruptDeathAdoptionResumesByteIdentical(t *testing.T) {
	ref := goldenReference(t)
	dir := t.TempDir()
	id := "j-dead0000"
	jd := JobDir(dir, id)

	// Fabricate the wreckage: run the golden job with a mid-run stop so
	// the ckpt directory holds a partial history, then write a manifest
	// frozen in "running" — exactly what a daemon killed with -9 leaves.
	cfg, err := goldenSpec().Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointDir = CheckpointDir(jd)
	var stopped bool
	cfg.OnIteration = func(rec pic.IterationRecord) {
		if rec.Iter == 4 {
			stopped = true
		}
	}
	cfg.StopRequested = func() bool { return stopped }
	if err := os.MkdirAll(jd, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := pic.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(jd, &Manifest{
		ID: id, Spec: goldenSpec(), State: StateRunning,
		Submitted: time.Now().UTC(), Attempts: 1,
	}); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, dir, LocalRunner{}, Limits{})
	fin := waitState(t, s, id, StateDone)
	if fin.Result == nil {
		t.Fatal("adopted job has no result")
	}
	if fin.Result.TotalTime != ref.TotalTime || fin.Result.Fingerprint != ref.Fingerprint {
		t.Errorf("adopted run differs: total %.7f/%s, want %.7f/%s",
			fin.Result.TotalTime, fin.Result.Fingerprint, ref.TotalTime, ref.Fingerprint)
	}
	if fin.Attempts < 2 {
		t.Errorf("adoption did not preserve the attempt count: %d", fin.Attempts)
	}
}

// TestEventsStreamDiagnostics: the SSE endpoint streams one iter event per
// iteration with the redistribution diagnostics aboard, then a state
// event, then closes at the terminal state.
func TestEventsStreamDiagnostics(t *testing.T) {
	dir := t.TempDir()
	run := &slowingRunner{
		inner: LocalRunner{}, started: make(chan struct{}),
		gate: make(chan struct{}), delay: 2 * time.Millisecond,
	}
	s := newTestServer(t, dir, run, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := goldenSpec()
	spec.Policy = "periodic:3" // guarantees redistributions → strategy fields populated
	m, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var iters []IterEvent
	var states []string
	sc := bufio.NewScanner(resp.Body)
	event := ""
	gateOpen := false
	for sc.Scan() {
		if !gateOpen {
			// The handler subscribes before its first frame, so once any
			// line arrives the subscription is live; release the iteration
			// events that were held back.
			close(run.gate)
			gateOpen = true
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "iter":
				var ev IterEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad iter frame %q: %v", data, err)
				}
				iters = append(iters, ev)
			case "state":
				var st map[string]string
				_ = json.Unmarshal([]byte(data), &st)
				states = append(states, st["state"])
			}
		}
	}
	// The stream closed because the job reached a terminal state.
	if len(iters) != 10 {
		t.Errorf("streamed %d iter events, want 10", len(iters))
	}
	sawRedist := false
	for i, ev := range iters {
		if ev.Iter != i {
			t.Errorf("iter event %d carries Iter %d", i, ev.Iter)
		}
		if ev.Redistributed {
			sawRedist = true
			if ev.RedistStrategy == "" {
				t.Errorf("iter %d redistributed without a strategy", ev.Iter)
			}
		}
	}
	if !sawRedist {
		t.Error("periodic:3 run streamed no redistribution events")
	}
	if len(states) == 0 || states[len(states)-1] != string(StateDone) {
		t.Errorf("state events %v, want to end in done", states)
	}
	fin := waitTerminal(t, s, m.ID)
	if fin.State != StateDone {
		t.Fatalf("job ended %s", fin.State)
	}
}

// TestHubDropsForSlowConsumers: a subscriber that stops reading loses
// frames instead of stalling the publisher, and learns how many via a gap
// event once it reads again.
func TestHubDropsForSlowConsumers(t *testing.T) {
	h := newHub()
	ch, cancel := h.subscribe()
	defer cancel()
	// Publish far past the buffer without consuming.
	for i := 0; i < subCap+50; i++ {
		h.publish("iter", IterEvent{Iter: i})
	}
	// The publisher never blocked (we are here). Drain: buffered frames
	// first, then the gap notice on the next publish.
	got := 0
	for len(ch) > 0 {
		<-ch
		got++
	}
	if got > subCap {
		t.Fatalf("buffered %d frames, cap is %d", got, subCap)
	}
	h.publish("iter", IterEvent{Iter: -1})
	f := <-ch
	if f.Event != "gap" {
		t.Fatalf("first frame after catch-up is %q, want gap", f.Event)
	}
	var gap map[string]int
	if err := json.Unmarshal(f.Data, &gap); err != nil || gap["dropped"] != 50 {
		t.Errorf("gap frame %s, want dropped=50", f.Data)
	}
	if f = <-ch; f.Event != "iter" {
		t.Errorf("frame after gap is %q, want the live iter", f.Event)
	}
}

// TestJobzAndHealthz: the observability endpoints answer.
func TestJobzAndHealthz(t *testing.T) {
	s := newTestServer(t, t.TempDir(), LocalRunner{}, Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	m, err := s.Submit(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, m.ID, StateDone)
	for _, path := range []string{"/jobz", "/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var ms []Manifest
		err = json.NewDecoder(resp.Body).Decode(&ms)
		resp.Body.Close()
		if err != nil || len(ms) != 1 || ms[0].ID != m.ID {
			t.Errorf("%s: %v (%d manifests)", path, err, len(ms))
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || hz["status"] != "ok" {
		t.Errorf("healthz: %v %v", hz, err)
	}
}

// TestManifestAtomicRoundTrip: manifests and results survive the disk
// round trip unchanged, and a stale result is cleared before reuse.
func TestManifestAtomicRoundTrip(t *testing.T) {
	jd := JobDir(t.TempDir(), "j-x")
	m := &Manifest{ID: "j-x", Spec: goldenSpec(), State: StateRunning,
		Submitted: time.Now().UTC().Truncate(time.Second), Attempts: 2, PGID: 4242}
	if err := WriteManifest(jd, m); err == nil {
		t.Fatal("manifest written into a nonexistent job dir")
	}
	if err := os.MkdirAll(jd, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(jd, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(jd)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.State != m.State || got.PGID != 4242 || got.Attempts != 2 {
		t.Errorf("round trip: %+v", got)
	}
	r := &JobResult{TotalTime: 1.25, Fingerprint: "00ff"}
	if err := WriteResult(jd, r); err != nil {
		t.Fatal(err)
	}
	rr, err := ReadResult(jd)
	if err != nil || rr.Fingerprint != "00ff" {
		t.Fatalf("result round trip: %+v %v", rr, err)
	}
	RemoveResult(jd)
	if _, err := ReadResult(jd); err == nil {
		t.Error("stale result survived RemoveResult")
	}
}
