package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

type warnCapture struct {
	mu   sync.Mutex
	msgs []string
}

func (w *warnCapture) add(format string, args []any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.msgs = append(w.msgs, fmt.Sprintf(format, args...))
}

func (w *warnCapture) all() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.msgs...)
}

func captureWarnings(t *testing.T) *warnCapture {
	t.Helper()
	w := &warnCapture{}
	old := warnf
	warnf = func(format string, args ...any) { w.add(format, args) }
	t.Cleanup(func() { warnf = old })
	return w
}

func TestEnvAddr(t *testing.T) {
	w := captureWarnings(t)

	t.Setenv("PICSERVE_ADDR", "")
	if got := EnvAddr("127.0.0.1:7070"); got != "127.0.0.1:7070" {
		t.Errorf("unset: %q", got)
	}
	t.Setenv("PICSERVE_ADDR", "0.0.0.0:9090")
	if got := EnvAddr("127.0.0.1:7070"); got != "0.0.0.0:9090" {
		t.Errorf("set: %q", got)
	}
	if len(w.all()) != 0 {
		t.Errorf("valid values warned: %v", w.all())
	}

	t.Setenv("PICSERVE_ADDR", "not an address")
	if got := EnvAddr("127.0.0.1:7070"); got != "127.0.0.1:7070" {
		t.Errorf("malformed: %q", got)
	}
	msgs := w.all()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "PICSERVE_ADDR") ||
		!strings.Contains(msgs[0], "not an address") {
		t.Errorf("malformed value not loudly rejected: %v", msgs)
	}
}
