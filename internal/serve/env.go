// Environment knobs for the daemon, following the repo's loud-reject
// discipline: a malformed value is warned about and ignored, never
// silently honoured and never fatal.

package serve

import (
	"fmt"
	"net"
	"os"
)

// warnf is swappable so tests can capture warnings.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// EnvAddr resolves the daemon listen address from PICSERVE_ADDR, falling
// back to def when unset. A value that is not host:port is malformed and
// rejected loudly (warn + fallback), matching the PICPAR_CKPT_DIR pattern.
func EnvAddr(def string) string {
	v, ok := os.LookupEnv("PICSERVE_ADDR")
	if !ok || v == "" {
		return def
	}
	if _, _, err := net.SplitHostPort(v); err != nil {
		warnf("picserve: malformed PICSERVE_ADDR=%q (%v); using default %q", v, err, def)
		return def
	}
	return v
}
