// The Runner seam: how the daemon actually executes one job attempt.
//
// LocalRunner runs the simulation in-process over the goroutine backend —
// the fast path for tests and single-host use. ProcessRunner launches a
// coordinator plus one OS process per rank under elastic supervision: a
// dead rank is respawned with capped-exponential backoff until the budget
// runs dry, the whole worker world lives in one process group whose id is
// persisted so a restarted daemon can kill orphans, and a drain request
// becomes SIGTERM to the group (workers checkpoint at the next iteration
// boundary and exit cleanly). Both runners honour the same contract, so
// every state-machine test against LocalRunner also covers the daemon's
// handling of ProcessRunner outcomes.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"picpar/internal/comm"
	"picpar/internal/pic"
)

// RunContext is everything a Runner gets about the attempt it executes.
type RunContext struct {
	Manifest Manifest // snapshot of the job at attempt start
	Dir      string   // the job directory (manifest, ckpt/, result.json)
	// OnIteration receives each completed iteration's diagnostics. It must
	// not block (the serve hub drops frames, never stalls).
	OnIteration func(IterEvent)
	// SetPGID persists the attempt's worker process group (ProcessRunner
	// only) so a restarted daemon can kill orphans before relaunching.
	SetPGID func(int)
	// Log emits operational lines (respawns, backoff waits) to the daemon
	// log. Never nil when the server drives the runner.
	Log func(format string, args ...any)
}

// Runner executes one attempt of a job. Cancelling ctx requests a graceful
// drain: the runner should stop at an iteration boundary with a final
// checkpoint and return a Stopped result (context.Cause distinguishes
// drain from cancel from deadline at the caller). A returned error means
// the attempt died; the job directory's checkpoints decide where the next
// attempt resumes.
type Runner interface {
	Run(ctx context.Context, rc RunContext) (*JobResult, error)
}

// IterEventOf distills a pic iteration record to its wire form.
func IterEventOf(rec pic.IterationRecord) IterEvent {
	return IterEvent{
		Iter:           rec.Iter,
		Time:           rec.Time,
		Compute:        rec.Compute,
		Redistributed:  rec.Redistributed,
		RedistStrategy: rec.RedistStrategy,
		BusyImbalance:  rec.BusyImbalance,
		FieldEnergy:    rec.FieldEnergy,
		KineticEnergy:  rec.KineticEnergy,
	}
}

// ResultOf distills a pic result.
func ResultOf(res *pic.Result) *JobResult {
	return &JobResult{
		TotalTime:           res.TotalTime,
		Fingerprint:         fmt.Sprintf("%016x", res.Fingerprint),
		InitTime:            res.InitTime,
		ComputeMax:          res.ComputeMax,
		Efficiency:          res.Efficiency,
		NumRedistributions:  res.NumRedistributions,
		FinalParticleCount:  res.FinalParticleCount,
		CompletedIterations: res.CompletedIterations,
		Stopped:             res.Stopped,
	}
}

// jobConfig builds the pic.Config for one attempt: the job's spec, pinned
// to the job's own checkpoint directory, always recovering (a first
// attempt over an empty directory is byte-identical to a fresh start).
func jobConfig(rc RunContext) (pic.Config, error) {
	cfg, err := rc.Manifest.Spec.Config()
	if err != nil {
		return pic.Config{}, err
	}
	cfg.CheckpointDir = CheckpointDir(rc.Dir)
	cfg.Recover = true
	return cfg, nil
}

// LocalRunner executes the attempt in-process on the goroutine backend.
type LocalRunner struct{}

func (LocalRunner) Run(ctx context.Context, rc RunContext) (*JobResult, error) {
	cfg, err := jobConfig(rc)
	if err != nil {
		return nil, err
	}
	var stop atomic.Bool
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-done:
		}
	}()
	cfg.StopRequested = stop.Load
	if rc.OnIteration != nil {
		on := rc.OnIteration
		cfg.OnIteration = func(rec pic.IterationRecord) { on(IterEventOf(rec)) }
	}
	res, runErr := runLocal(cfg)
	if runErr != nil {
		return nil, runErr
	}
	return ResultOf(res), nil
}

// runLocal converts a rank panic into an error instead of taking the
// daemon down with a sick job.
func runLocal(cfg pic.Config) (res *pic.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: run panicked: %v", r)
		}
	}()
	return pic.Run(cfg)
}

// ProcessRunner executes the attempt as one coordinator plus P worker
// processes under elastic supervision.
type ProcessRunner struct {
	// Command builds the (unstarted) worker command for one rank of the
	// job: typically the daemon binary re-executed in -worker mode. The
	// worker must join the coordinator at coord, run its rank with
	// recovery on, emit IterEvent JSONL on stdout (rank 0), write
	// result.json (rank 0) and exit 0 — or exit 0 with a Stopped result
	// after a SIGTERM drain.
	Command func(rc RunContext, coord string, rank int) *exec.Cmd

	// Grace bounds how long peers of a failed rank may take to fail on
	// their own before the supervisor kills them. Default 15s.
	Grace time.Duration
	// RespawnBudget is the total respawns one attempt may consume.
	// Default 2*P.
	RespawnBudget int
	// Backoff is the wait before the first respawn, doubling per respawn
	// up to MaxBackoff. Defaults 250ms / 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (p ProcessRunner) Run(ctx context.Context, rc RunContext) (*JobResult, error) {
	cfg, err := jobConfig(rc) // validates the spec before any process starts
	if err != nil {
		return nil, err
	}
	ranks := cfg.P

	co, err := comm.StartCoordinator("127.0.0.1:0", ranks, 0)
	if err != nil {
		return nil, fmt.Errorf("serve: coordinator: %w", err)
	}
	defer co.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.ServeElastic() }()

	// A stale result.json from a previous attempt must never pass for this
	// attempt's outcome.
	RemoveResult(rc.Dir)

	// All workers share one process group, led by the first spawn; the
	// group id is persisted so a daemon killed and restarted mid-job can
	// kill the whole orphaned world before relaunching.
	pgid := 0
	spawn := func(rank int) (*comm.RankProc, error) {
		cmd := p.Command(rc, co.Addr(), rank)
		if cmd.SysProcAttr == nil {
			cmd.SysProcAttr = &syscall.SysProcAttr{}
		}
		cmd.SysProcAttr.Setpgid = true
		cmd.SysProcAttr.Pgid = pgid
		forwardIterLines(cmd, rc.OnIteration)
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		if pgid == 0 {
			pgid = cmd.Process.Pid
			if rc.SetPGID != nil {
				rc.SetPGID(pgid)
			}
		}
		rc.Log("job %s: rank %d pid %d", rc.Manifest.ID, rank, cmd.Process.Pid)
		return &comm.RankProc{Rank: rank, Cmd: cmd}, nil
	}

	procs := make([]*comm.RankProc, ranks)
	for k := 0; k < ranks; k++ {
		proc, serr := spawn(k)
		if serr != nil {
			for _, q := range procs[:k] {
				_ = q.Cmd.Process.Kill()
				_ = q.Cmd.Wait()
			}
			return nil, fmt.Errorf("serve: start rank %d: %w", k, serr)
		}
		procs[k] = proc
	}

	// Drain/cancel delivery: context cancellation becomes a signal to the
	// worker group. A drain (errDrain cause) sends SIGTERM — workers stop
	// at the next iteration boundary with a final checkpoint and exit
	// cleanly. Any other cause (operator cancel, deadline) kills the group.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			sig := syscall.SIGKILL
			if errors.Is(context.Cause(ctx), errDrain) {
				sig = syscall.SIGTERM
			}
			_ = syscall.Kill(-pgid, sig)
		case <-watchDone:
		}
	}()

	grace := p.Grace
	if grace <= 0 {
		grace = 15 * time.Second
	}
	budget := p.RespawnBudget
	if budget <= 0 {
		budget = 2 * ranks
	}
	backoff := p.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	maxBackoff := p.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}

	respawns := 0
	respawn := func(rank int) (*comm.RankProc, error) {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("attempt ending: %w", context.Cause(ctx))
		}
		wait := backoff
		for i := 0; i < respawns && wait < maxBackoff; i++ {
			wait *= 2
		}
		if wait > maxBackoff {
			wait = maxBackoff
		}
		respawns++
		rc.Log("job %s: rank %d died, respawning in %v (%d/%d)",
			rc.Manifest.ID, rank, wait, respawns, budget)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, fmt.Errorf("attempt ending: %w", context.Cause(ctx))
		}
		return spawn(rank)
	}

	worldDesc := fmt.Sprintf("job %s, P=%d", rc.Manifest.ID, ranks)
	supErr := comm.SuperviseRanksElastic(procs, grace, respawn, budget, worldDesc)
	if rc.SetPGID != nil {
		rc.SetPGID(0) // every worker has been reaped
	}
	if supErr != nil {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, supErr
	}
	co.Close()
	if serr := <-serveErr; serr != nil {
		return nil, fmt.Errorf("serve: coordinator: %w", serr)
	}
	res, rerr := ReadResult(rc.Dir)
	if rerr != nil {
		return nil, fmt.Errorf("serve: worker world exited cleanly but left no result: %w", rerr)
	}
	return res, nil
}

// forwardIterLines wires a worker's stdout into the iteration-event
// callback: each line holding an IterEvent JSON document is forwarded,
// anything else is ignored (rank >0 workers emit nothing).
func forwardIterLines(cmd *exec.Cmd, on func(IterEvent)) {
	if on == nil {
		return
	}
	cmd.Stdout = &lineSplitter{onLine: func(line []byte) {
		var ev IterEvent
		if err := json.Unmarshal(line, &ev); err == nil {
			on(ev)
		}
	}}
}

// lineSplitter buffers written bytes and invokes onLine per complete line.
// exec.Cmd copies the child's stdout into it from one goroutine and Waits
// for the copy to finish, so onLine never races the supervisor.
type lineSplitter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	onLine func([]byte)
}

func (l *lineSplitter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.Write(p)
	for {
		b := l.buf.Bytes()
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := bytes.TrimSpace(b[:i])
		if len(line) > 0 {
			l.onLine(line)
		}
		l.buf.Next(i + 1)
	}
}
